// quora_trace — summarize a structured trace transcript.
//
//   quora_trace FILE...
//
// Reads the compact text transcript written by the --trace flags of
// quora_cli, quora_chaos, and the bench binaries (one event per line:
// time, kind, site, request, a, x — see src/obs/trace.hpp for the
// payload taxonomy) and prints, per file:
//
//   - event counts by kind;
//   - top denial reasons (decoded from access-deny payloads);
//   - access latency (submit -> grant/deny) and coordination-round
//     latency (round-start -> round-finish) histograms, matched by
//     request id.
//
// Chrome JSON traces are for ui.perfetto.dev; point this tool at the
// text form. Exit status: 0 summarized, 2 usage, I/O, or parse errors.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <iterator>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "msg/cluster.hpp"
#include "obs/trace.hpp"

namespace {

using namespace quora;

struct ParsedEvent {
  double time = 0.0;
  std::string kind;
  std::uint32_t site = 0;
  std::uint64_t request = 0;
  std::uint64_t a = 0;
  unsigned x = 0;
};

/// Latency histogram mirroring the cluster's bucket plan, plus overflow.
struct LatencyHist {
  static constexpr double kBounds[] = {0.001, 0.002, 0.005, 0.01, 0.02, 0.05,
                                       0.1,   0.2,   0.5,   1.0,  2.0,  5.0};
  static constexpr std::size_t kBuckets = std::size(kBounds) + 1;
  std::uint64_t counts[kBuckets] = {};
  std::uint64_t total = 0;
  double sum = 0.0;
  double max = 0.0;

  void record(double v) {
    std::size_t b = 0;
    while (b < std::size(kBounds) && v > kBounds[b]) ++b;
    ++counts[b];
    ++total;
    sum += v;
    if (v > max) max = v;
  }

  void print(std::ostream& out, const char* title) const {
    out << "  " << title << ": " << total << " samples";
    if (total == 0) {
      out << '\n';
      return;
    }
    char line[96];
    std::snprintf(line, sizeof(line), ", mean=%.6fs max=%.6fs\n",
                  sum / static_cast<double>(total), max);
    out << line;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      if (counts[b] == 0) continue;
      if (b < std::size(kBounds)) {
        std::snprintf(line, sizeof(line), "    le=%-6g %10llu  ", kBounds[b],
                      static_cast<unsigned long long>(counts[b]));
      } else {
        std::snprintf(line, sizeof(line), "    le=+inf  %10llu  ",
                      static_cast<unsigned long long>(counts[b]));
      }
      out << line;
      // A 1-to-50-column bar scaled to the largest bucket.
      std::uint64_t peak = 0;
      for (const std::uint64_t c : counts) peak = c > peak ? c : peak;
      const auto width = static_cast<std::size_t>(
          50.0 * static_cast<double>(counts[b]) / static_cast<double>(peak));
      out << std::string(width == 0 ? 1 : width, '#') << '\n';
    }
  }
};

struct Summary {
  std::map<std::string, std::uint64_t> counts_by_kind;
  std::uint64_t denials_by_reason[msg::kDenyReasonCount] = {};
  std::uint64_t unknown_reason = 0;
  LatencyHist access_latency;
  LatencyHist round_latency;
  std::uint64_t events = 0;
  double t_first = 0.0;
  double t_last = 0.0;
  // Open intervals awaiting their closing event, keyed by request id.
  std::map<std::uint64_t, double> open_accesses;
  std::map<std::uint64_t, double> open_rounds;

  void add(const ParsedEvent& e) {
    if (events == 0) t_first = e.time;
    t_last = e.time;
    ++events;
    ++counts_by_kind[e.kind];
    if (e.kind == "access-submit") {
      open_accesses[e.request] = e.time;
    } else if (e.kind == "access-grant" || e.kind == "access-deny") {
      if (e.kind == "access-deny") {
        if (e.x < msg::kDenyReasonCount) {
          ++denials_by_reason[e.x];
        } else {
          ++unknown_reason;
        }
      }
      const auto it = open_accesses.find(e.request);
      if (it != open_accesses.end()) {
        access_latency.record(e.time - it->second);
        open_accesses.erase(it);
      }
    } else if (e.kind == "round-start") {
      if (e.a != 0) {
        // A retry: this round supersedes request id `a`. Chain the open
        // submit forward so the access latency spans every attempt, and
        // close the abandoned round.
        const auto prev = open_accesses.find(e.a);
        if (prev != open_accesses.end()) {
          open_accesses[e.request] = prev->second;
          open_accesses.erase(prev);
        }
        open_rounds.erase(e.a);
      }
      open_rounds[e.request] = e.time;
    } else if (e.kind == "round-finish") {
      const auto it = open_rounds.find(e.request);
      if (it != open_rounds.end()) {
        round_latency.record(e.time - it->second);
        open_rounds.erase(it);
      }
    }
  }
};

bool parse_line(const std::string& line, ParsedEvent& e) {
  std::istringstream in(line);
  if (!(in >> e.time >> e.kind >> e.site >> e.request >> e.a >> e.x)) {
    return false;
  }
  std::string rest;
  return !(in >> rest);  // trailing junk is a malformed line
}

int summarize(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "quora_trace: cannot open " << path << '\n';
    return 2;
  }

  Summary summary;
  std::string line;
  std::uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line_no == 1 && line.front() == '{') {
      std::cerr << "quora_trace: " << path
                << " looks like a Chrome JSON trace; open it in "
                   "ui.perfetto.dev, or re-record without the .json "
                   "extension for the text transcript this tool reads\n";
      return 2;
    }
    ParsedEvent e;
    if (!parse_line(line, e)) {
      std::cerr << "quora_trace: " << path << ':' << line_no
                << ": malformed trace line: " << line << '\n';
      return 2;
    }
    summary.add(e);
  }

  std::cout << "== " << path << ": " << summary.events << " events";
  if (summary.events > 0) {
    char span[64];
    std::snprintf(span, sizeof(span), ", t=[%.6f, %.6f]", summary.t_first,
                  summary.t_last);
    std::cout << span;
  }
  std::cout << " ==\n";
  if (summary.events == 0) return 0;

  std::cout << "  events by kind:\n";
  for (const auto& [kind, count] : summary.counts_by_kind) {
    std::cout << "    " << kind;
    for (std::size_t pad = kind.size(); pad < 16; ++pad) std::cout << ' ';
    std::cout << count << '\n';
  }

  // Denial reasons, largest first (stable order among equals: reason code).
  std::vector<std::pair<std::uint64_t, std::size_t>> denies;
  std::uint64_t total_denies = summary.unknown_reason;
  for (std::size_t r = 1; r < msg::kDenyReasonCount; ++r) {
    total_denies += summary.denials_by_reason[r];
    if (summary.denials_by_reason[r] > 0) {
      denies.emplace_back(summary.denials_by_reason[r], r);
    }
  }
  if (total_denies > 0) {
    std::sort(denies.begin(), denies.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
              });
    std::cout << "  denials (" << total_denies << "):\n";
    char row[96];
    for (const auto& [count, reason] : denies) {
      std::snprintf(row, sizeof(row), "    %-20s %10llu  %5.1f%%\n",
                    msg::deny_reason_name(static_cast<msg::DenyReason>(reason)),
                    static_cast<unsigned long long>(count),
                    100.0 * static_cast<double>(count) /
                        static_cast<double>(total_denies));
      std::cout << row;
    }
    if (summary.unknown_reason > 0) {
      std::snprintf(row, sizeof(row), "    %-20s %10llu\n", "unknown-reason",
                    static_cast<unsigned long long>(summary.unknown_reason));
      std::cout << row;
    }
  }

  summary.access_latency.print(std::cout, "access latency (submit->decide)");
  summary.round_latency.print(std::cout, "round latency (start->finish)");
  if (!summary.open_accesses.empty() || !summary.open_rounds.empty()) {
    std::cout << "  unmatched: " << summary.open_accesses.size()
              << " accesses, " << summary.open_rounds.size()
              << " rounds still open (ring overflow or truncated run)\n";
  }
  return 0;
}

} // namespace

int main(int argc, char** argv) {
  if (argc < 2 || std::string_view(argv[1]) == "--help" ||
      std::string_view(argv[1]) == "-h") {
    std::cerr << "usage: quora_trace FILE...\n"
                 "Summarizes compact text traces recorded via --trace "
                 "(see docs/OBSERVABILITY.md).\n";
    return argc < 2 ? 2 : 0;
  }
  int status = 0;
  for (int i = 1; i < argc; ++i) {
    const int rc = summarize(argv[i]);
    if (rc != 0) status = rc;
    if (i + 1 < argc) std::cout << '\n';
  }
  return status;
}
