#pragma once

#include <string>
#include <vector>

#include "lint_driver.hpp"
#include "lint_types.hpp"

namespace quora::lint {

/// True when this binary was built with the Clang LibTooling frontend
/// (cmake -DQUORA_LINT=ON, needs the LLVM/Clang dev packages). Without
/// it the token engine still implements every check lexically; the AST
/// engine adds type resolution — unordered aliases/members (L004), real
/// obs handle types instead of naming conventions (L005), and
/// declaration-resolved entropy calls (L003).
bool ast_engine_available();

/// Runs the AST checks over `files` using the compilation database in
/// `opts.compdb_dir` (compile_commands.json). Appends raw findings —
/// the caller applies suppressions/baseline and dedupes against the
/// token engine's overlapping results. Returns false on setup failure
/// (no database, not compiled in) with `error` set; per-file parse
/// diagnostics are findings-independent and reported on stderr by Clang.
bool run_ast_engine(const DriverOptions& opts,
                    const std::vector<std::string>& files,
                    std::vector<Finding>* out, std::string* error);

} // namespace quora::lint
