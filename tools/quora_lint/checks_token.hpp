#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "lint_types.hpp"

namespace quora::lint {

/// Which checks apply to one file. The driver computes this from the
/// repo-relative path (see `scope_for_path` in the driver); tests can
/// force everything on with --all-scopes.
struct CheckScope {
  bool macro_args = true;    // L001 + L002 — everywhere
  bool entropy = false;      // L003 — deterministic layers only
  bool unordered = false;    // L004 — transcript-feeding modules only
  bool raw_obs = false;      // L005 — src/ minus src/obs
  bool concurrency = false;  // L009 — protocol layers the model checker
                             // schedules (src/msg, src/quorum, src/fault,
                             // src/model)
};

/// Runs the lexical implementations of L001–L005 and L009 over one file's
/// text and appends findings (suppression/baseline matching is the
/// driver's job).
///
/// What the token engine can and cannot see is documented per check in
/// docs/STATIC_ANALYSIS.md; the short version: it is macro-expansion- and
/// type-blind, so L004/L005 use declaration tracking and the repo's
/// naming conventions (`obs_*` handles, `*trace*` recorder pointers),
/// while the AST engine (QUORA_LINT=ON) resolves real types.
void run_token_checks(std::string_view path, std::string_view text,
                      const CheckScope& scope, std::vector<Finding>* out);

} // namespace quora::lint
