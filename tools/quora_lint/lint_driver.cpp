#include "lint_driver.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "checks_program.hpp"
#include "source_scan.hpp"
#include "token_model.hpp"

namespace fs = std::filesystem;

namespace quora::lint {

namespace {

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

bool is_source_file(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" ||
         ext == ".h";
}

std::string to_repo_relative(const fs::path& p, const fs::path& root) {
  std::error_code ec;
  fs::path rel = fs::proximate(p, root, ec);
  std::string s = (ec || rel.empty() ? p : rel).generic_string();
  // A path that escapes the root stays as given — still reportable.
  return s;
}

} // namespace

CheckScope scope_for_path(std::string_view rel_path, bool all_scopes) {
  CheckScope scope;
  if (all_scopes) {
    scope.macro_args = scope.entropy = scope.unordered = scope.raw_obs =
        scope.concurrency = true;
    return scope;
  }
  scope.macro_args = true;
  for (std::string_view dir : {"src/sim/", "src/msg/", "src/core/",
                               "src/conn/", "src/fault/", "src/dyn/",
                               "src/model/"}) {
    if (starts_with(rel_path, dir)) scope.entropy = true;
  }
  for (std::string_view dir : {"src/fault/", "src/obs/", "src/report/"}) {
    if (starts_with(rel_path, dir)) scope.unordered = true;
  }
  scope.raw_obs =
      starts_with(rel_path, "src/") && !starts_with(rel_path, "src/obs/");
  // L009 guards the layers the explorer single-steps deterministically:
  // a raw primitive there would introduce scheduling the model cannot see.
  for (std::string_view dir :
       {"src/msg/", "src/quorum/", "src/fault/", "src/model/"}) {
    if (starts_with(rel_path, dir)) scope.concurrency = true;
  }
  return scope;
}

std::vector<std::string> collect_files(const DriverOptions& opts,
                                       std::vector<std::string>* problems) {
  const fs::path root = fs::path(opts.root);
  std::vector<std::string> inputs = opts.paths;
  if (inputs.empty()) inputs = {"src", "tools", "bench"};
  std::vector<std::string> files;
  for (const std::string& in : inputs) {
    fs::path p = fs::path(in);
    if (p.is_relative()) p = root / p;
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (fs::recursive_directory_iterator it(p, ec), end; it != end;
           it.increment(ec)) {
        if (ec) break;
        if (it->is_regular_file() && is_source_file(it->path())) {
          files.push_back(to_repo_relative(it->path(), root));
        }
      }
      if (ec && problems != nullptr) {
        problems->push_back("cannot walk '" + in + "': " + ec.message());
      }
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(to_repo_relative(p, root));
    } else if (problems != nullptr) {
      problems->push_back("no such file or directory: '" + in + "'");
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

bool read_file(const std::string& path, std::string* text, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open '" + path + "'";
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  *text = buf.str();
  return true;
}

void apply_suppressions(const DriverOptions& opts,
                        std::vector<Finding>* findings,
                        std::vector<std::string>* problems) {
  Baseline baseline;
  if (!opts.baseline_path.empty()) {
    std::string text;
    std::string error;
    if (!read_file(opts.baseline_path, &text, &error)) {
      problems->push_back("baseline: " + error);
    } else {
      baseline = Baseline::parse(text, problems);
    }
  }
  // Group by path so each file's suppression comments are scanned once.
  std::string current_path;
  Suppressions sup;
  bool have_sup = false;
  std::sort(findings->begin(), findings->end(), finding_less);
  for (Finding& f : *findings) {
    if (f.path != current_path) {
      current_path = f.path;
      have_sup = false;
      std::string text;
      std::string error;
      fs::path abs = fs::path(f.path);
      if (abs.is_relative()) abs = fs::path(opts.root) / abs;
      if (read_file(abs.string(), &text, &error)) {
        sup = scan_suppressions(text);
        have_sup = true;
        for (const auto& [line, what] : sup.problems) {
          problems->push_back(f.path + ":" + std::to_string(line) +
                              ": malformed suppression: " + what);
        }
      }
    }
    if (have_sup && sup.allows(f.code, f.line)) f.suppressed = true;
    if (!f.suppressed && baseline.contains(f)) f.baselined = true;
  }
}

void dedupe_findings(std::vector<Finding>* findings) {
  std::sort(findings->begin(), findings->end(), finding_less);
  findings->erase(
      std::unique(findings->begin(), findings->end(),
                  [](const Finding& a, const Finding& b) {
                    return a.code == b.code && a.path == b.path &&
                           a.line == b.line;
                  }),
      findings->end());
}

RunResult run_token_engine(const DriverOptions& opts) {
  RunResult result;
  const std::vector<std::string> files = collect_files(opts, &result.problems);
  ProgramModel model;
  for (const std::string& rel : files) {
    fs::path abs = fs::path(rel);
    if (abs.is_relative()) abs = fs::path(opts.root) / abs;
    std::string text;
    std::string error;
    if (!read_file(abs.string(), &text, &error)) {
      result.problems.push_back(error);
      continue;
    }
    const CheckScope scope = scope_for_path(rel, opts.all_scopes);
    run_token_checks(rel, text, scope, &result.findings);
    // The whole-program model accumulates across the sweep; the
    // interprocedural pass runs once afterwards, when every function
    // definition and member type has been seen.
    build_token_model(rel, text, &model);
    // Malformed suppression comments are reported even in files with no
    // findings — a typo must never silently disable a future suppression.
    for (const auto& [line, what] : scan_suppressions(text).problems) {
      result.problems.push_back(rel + ":" + std::to_string(line) +
                                ": malformed suppression: " + what);
    }
  }
  run_program_checks(model, opts.all_scopes, &result.findings);
  std::sort(result.problems.begin(), result.problems.end());
  result.problems.erase(
      std::unique(result.problems.begin(), result.problems.end()),
      result.problems.end());
  // apply_suppressions re-scans per file; cheap relative to the sweep and
  // keeps one code path for both engines.
  std::vector<std::string> sup_problems;
  apply_suppressions(opts, &result.findings, &sup_problems);
  for (std::string& p : sup_problems) {
    if (std::find(result.problems.begin(), result.problems.end(), p) ==
        result.problems.end()) {
      result.problems.push_back(std::move(p));
    }
  }
  return result;
}

} // namespace quora::lint
