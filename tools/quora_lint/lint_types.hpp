#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace quora::lint {

/// Machine-readable check codes. Same philosophy as `io::AuditCode`
/// (quora-check): one code per *reason* a source file violates the
/// repo's determinism or macro-discipline invariants, so CI artifacts
/// and tests can assert on the reason, not just the rejection.
///
/// The taxonomy is documented in docs/STATIC_ANALYSIS.md; codes are
/// append-only (L006+ for new checks) so baselines stay stable.
enum class LintCode : std::uint8_t {
  kL001SideEffectObsArg,       // side effect in QUORA_TRACE / QUORA_METRIC_*
  kL002SideEffectContractArg,  // side effect in QUORA_ASSERT / INVARIANT / ...
  kL003ForbiddenEntropy,       // random_device / rand / time / *_clock::now
                               // in the deterministic sim layers
  kL004UnorderedIteration,     // iterating an unordered container in
                               // transcript-feeding code
  kL005RawObsCall,             // raw TraceRecorder / metric-handle call that
                               // bypasses the QUORA_OBS gating macros
  kL006HotPathAllocation,      // QUORA_HOT_PATH function transitively reaches
                               // a heap allocation (new/delete, container
                               // growth, string construction)
  kL007CrossShardState,        // shard confinement: entry point of one domain
                               // reaches another domain's QUORA_SHARD_LOCAL
                               // state, or the annotations themselves conflict
  kL008UnsharedGlobalState,    // mutable global/static reachable from an
                               // annotated hot path without QUORA_SHARD_SHARED
  kL009RawConcurrencyPrimitive,  // std::mutex / std::atomic / thread_local in
                                 // a protocol layer outside QUORA_SHARD_SHARED
                                 // state — the simulator owns all scheduling
};

inline constexpr std::size_t kLintCodeCount = 9;

/// Stable "L001".."L005" tag (what suppressions and baselines name).
const char* lint_code_tag(LintCode code);

/// Stable kebab-case slug (what the JSON `code` field carries), mirroring
/// quora-check's code naming style.
const char* lint_code_name(LintCode code);

/// One-line human summary of what the check enforces.
const char* lint_code_summary(LintCode code);

/// Parses "L001".."L005" (case-insensitive). Returns false on anything
/// else — unknown tags in suppression comments are themselves reported.
bool parse_lint_code_tag(std::string_view tag, LintCode* out);

enum class LintSeverity : std::uint8_t { kWarning, kError };

const char* lint_severity_name(LintSeverity severity);

/// One finding: a (code, location, message) triple. `path` is stored as
/// given on the command line / compile database (normalized to
/// repo-relative by the driver when possible) so baselines are portable
/// across checkouts.
struct Finding {
  LintCode code = LintCode::kL001SideEffectObsArg;
  LintSeverity severity = LintSeverity::kError;
  std::string path;
  unsigned line = 0;
  unsigned column = 0;
  std::string message;
  bool suppressed = false;   // matched an inline allow-comment
  bool baselined = false;    // matched the checked-in baseline file
};

/// Stable ordering for reports: path, then line, then column, then code.
bool finding_less(const Finding& a, const Finding& b);

/// Counts findings that are neither suppressed nor baselined.
std::size_t unsuppressed_count(const std::vector<Finding>& findings);

/// Text report, one finding per line:
///   path:line:col: severity: [L00x determinism-slug] message
/// Suppressed/baselined findings are annotated when `show_suppressed`.
void write_findings_text(std::ostream& out, const std::vector<Finding>& findings,
                         bool show_suppressed);

/// JSON array of {code, severity, path, line, column, message} objects —
/// the shared CI artifact schema also emitted by `quora_check --json`
/// (which omits line/column; consumers must treat fields as optional).
/// Suppressed and baselined findings are omitted unless `include_all`,
/// in which case they carry "suppressed": true / "baselined": true.
void write_findings_json(std::ostream& out, const std::vector<Finding>& findings,
                         bool include_all);

/// Minimal JSON string escaping shared by the writers.
void write_json_string(std::ostream& out, std::string_view s);

} // namespace quora::lint
