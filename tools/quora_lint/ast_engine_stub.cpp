// Stub compiled when QUORA_LINT=OFF: the binary still ships every check
// through the token engine, but --engine=ast reports that the LibTooling
// frontend is not in this build.

#include "ast_engine.hpp"

namespace quora::lint {

bool ast_engine_available() { return false; }

bool run_ast_engine(const DriverOptions&, const std::vector<std::string>&,
                    std::vector<Finding>*, std::string* error) {
  if (error != nullptr) {
    *error =
        "this quora_lint was built without the Clang frontend; reconfigure "
        "with -DQUORA_LINT=ON (needs llvm-dev + libclang-dev) or use "
        "--engine=token";
  }
  return false;
}

} // namespace quora::lint
