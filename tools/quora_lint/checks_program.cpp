// Interprocedural checks over the shared program model — the engine-
// agnostic half of the whole-program analyzer. See checks_program.hpp
// for the check inventory and docs/STATIC_ANALYSIS.md for the
// annotation vocabulary and the call-graph caveats.

#include "checks_program.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <string_view>

#include "lint_driver.hpp"

namespace quora::lint {

namespace {

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}
bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

/// `qualified` matches `key` when equal or when `qualified` ends in
/// "::key" — the token engine records partially qualified types
/// ("conn::LiveNetwork") that must find fully qualified nodes
/// ("quora::conn::LiveNetwork").
bool qualified_matches(std::string_view qualified, std::string_view key) {
  if (qualified == key) return true;
  if (qualified.size() > key.size() + 2 && ends_with(qualified, key) &&
      qualified.substr(qualified.size() - key.size() - 2, 2) == "::") {
    return true;
  }
  return false;
}

class Analysis {
public:
  Analysis(const ProgramModel& model, bool all_scopes,
           std::vector<Finding>* out)
      : model_(model), all_scopes_(all_scopes), out_(out) {
    for (std::size_t i = 0; i < model_.funcs.size(); ++i) {
      by_name_[model_.funcs[i].name].push_back(static_cast<int>(i));
    }
  }

  void run() {
    resolve_edges();
    compute_summaries();
    check_macro_arg_calls();   // L001 / L002
    check_entropy_calls();     // L003
    check_hot_paths();         // L006
    check_shard_annotations(); // L007 (annotation misuse)
    check_shard_reach();       // L007 (cross-domain reach)
    check_global_state();      // L008
  }

private:
  int find_func(std::string_view key) const {
    int found = -1;
    for (std::size_t i = 0; i < model_.funcs.size(); ++i) {
      if (qualified_matches(model_.funcs[i].qualified, key)) {
        if (found >= 0) return -1;  // ambiguous
        found = static_cast<int>(i);
      }
    }
    return found;
  }

  int find_var(std::string_view key) const {
    int found = -1;
    for (std::size_t i = 0; i < model_.vars.size(); ++i) {
      if (qualified_matches(model_.vars[i].qualified, key)) {
        if (found >= 0) return -1;
        found = static_cast<int>(i);
      }
    }
    return found;
  }

  /// Member-type lookup with suffix matching on the class part.
  std::string member_type(std::string_view class_and_member) const {
    auto it = model_.member_types.find(std::string(class_and_member));
    if (it != model_.member_types.end()) return it->second;
    for (const auto& [key, ty] : model_.member_types) {
      if (qualified_matches(key, class_and_member)) return ty;
    }
    return {};
  }

  /// Resolves one call site to a model function index, or -1.
  /// `caller_class` is the qualified enclosing record of the caller
  /// ("" for free functions).
  int resolve_call(const CallSite& call, const std::string& caller_class) const {
    if (!call.resolved.empty()) {
      return find_func(call.resolved);
    }
    if (starts_with(call.qualifier, "@member:")) {
      // Receiver is a member whose declared type was not yet known at
      // scan time; retry against the completed member-type table.
      const std::string ty = member_type(call.qualifier.substr(8));
      if (ty.empty()) return -1;
      return find_func(ty + "::" + call.name);
    }
    if (!call.object_type.empty()) {
      return find_func(call.object_type + "::" + call.name);
    }
    if (call.implicit_this && !caller_class.empty()) {
      const int same_class = find_func(caller_class + "::" + call.name);
      if (same_class >= 0) return same_class;
    }
    if (!call.qualifier.empty()) {
      return find_func(call.qualifier + "::" + call.name);
    }
    // Last resort: a unique free function with this bare name. Unique-
    // match-only keeps the fallback from fabricating edges between
    // same-named methods of unrelated classes.
    auto it = by_name_.find(call.name);
    if (it == by_name_.end()) return -1;
    int found = -1;
    for (int idx : it->second) {
      if (!model_.funcs[static_cast<std::size_t>(idx)].class_name.empty() &&
          !call.implicit_this) {
        continue;  // method of some class; an unqualified non-member call
                   // cannot reach it
      }
      if (found >= 0) return -1;
      found = idx;
    }
    return found;
  }

  /// Resolves one variable reference from function `f`, or -1.
  int resolve_ref(const FuncNode& f, const VarRef& ref) const {
    if (!ref.resolved.empty()) return find_var(ref.resolved);
    if (ref.member_hint) {
      if (f.class_name.empty()) return -1;
      return find_var(f.class_name + "::" + ref.name);
    }
    // Global by bare name (token convention: g_* / s_*), unique match.
    int found = -1;
    for (std::size_t i = 0; i < model_.vars.size(); ++i) {
      const VarNode& v = model_.vars[i];
      if (v.name != ref.name || !v.class_name.empty()) continue;
      if (found >= 0) return -1;
      found = static_cast<int>(i);
    }
    return found;
  }

  void resolve_edges() {
    edges_.assign(model_.funcs.size(), {});
    for (std::size_t i = 0; i < model_.funcs.size(); ++i) {
      const FuncNode& f = model_.funcs[i];
      for (const CallSite& call : f.calls) {
        const int target = resolve_call(call, f.class_name);
        if (target >= 0 && target != static_cast<int>(i)) {
          edges_[i].push_back(target);
        }
      }
    }
  }

  /// Fixed-point transitive summaries. Traversal stops at
  /// QUORA_ANALYSIS_BOUNDARY callees for both; const member functions
  /// additionally stop the side-effect (impurity) summary.
  void compute_summaries() {
    impure_.assign(model_.funcs.size(), false);
    entropic_.assign(model_.funcs.size(), false);
    for (std::size_t i = 0; i < model_.funcs.size(); ++i) {
      for (const Fact& fact : model_.funcs[i].facts) {
        if (fact.kind == FactKind::kMutation) impure_[i] = true;
        if (fact.kind == FactKind::kEntropy) entropic_[i] = true;
      }
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t i = 0; i < model_.funcs.size(); ++i) {
        for (const int t : edges_[i]) {
          const FuncNode& callee = model_.funcs[static_cast<std::size_t>(t)];
          if (callee.boundary) continue;
          if (!impure_[i] && impure_[static_cast<std::size_t>(t)] &&
              !callee.is_const) {
            impure_[i] = true;
            changed = true;
          }
          if (!entropic_[i] && entropic_[static_cast<std::size_t>(t)]) {
            entropic_[i] = true;
            changed = true;
          }
        }
      }
    }
  }

  /// A short witness chain from `from` to the nearest fact of `kind`,
  /// e.g. "helper -> bump (increment of 'g_hits')".
  std::string witness(int from, FactKind kind) const {
    const std::vector<bool>& summary =
        kind == FactKind::kEntropy ? entropic_ : impure_;
    std::vector<int> parent(model_.funcs.size(), -2);
    std::deque<int> queue;
    queue.push_back(from);
    parent[static_cast<std::size_t>(from)] = -1;
    int hit = -1;
    const Fact* hit_fact = nullptr;
    while (!queue.empty() && hit < 0) {
      const int cur = queue.front();
      queue.pop_front();
      for (const Fact& fact : model_.funcs[static_cast<std::size_t>(cur)].facts) {
        if (fact.kind == kind) {
          hit = cur;
          hit_fact = &fact;
          break;
        }
      }
      if (hit >= 0) break;
      for (const int t : edges_[static_cast<std::size_t>(cur)]) {
        const FuncNode& callee = model_.funcs[static_cast<std::size_t>(t)];
        if (callee.boundary) continue;
        if (kind == FactKind::kMutation && callee.is_const) continue;
        if (parent[static_cast<std::size_t>(t)] != -2) continue;
        if (!summary[static_cast<std::size_t>(t)]) continue;
        parent[static_cast<std::size_t>(t)] = cur;
        queue.push_back(t);
      }
    }
    if (hit < 0) return model_.funcs[static_cast<std::size_t>(from)].qualified;
    std::vector<int> path;
    for (int cur = hit; cur != -1; cur = parent[static_cast<std::size_t>(cur)])
      path.push_back(cur);
    std::string s;
    for (auto it = path.rbegin(); it != path.rend(); ++it) {
      if (!s.empty()) s += " -> ";
      s += model_.funcs[static_cast<std::size_t>(*it)].qualified;
    }
    if (hit_fact != nullptr) s += " (" + hit_fact->detail + ")";
    return s;
  }

  void report(LintCode code, const std::string& path, unsigned line,
              unsigned column, std::string message) {
    Finding f;
    f.code = code;
    f.severity = LintSeverity::kError;
    f.path = path;
    f.line = line;
    f.column = column;
    f.message = std::move(message);
    out_->push_back(std::move(f));
  }

  // ---- L001 / L002: calls inside compiled-out macro arguments ----
  void check_macro_arg_calls() {
    for (const MacroArgCall& mac : model_.macro_arg_calls) {
      const int target = resolve_call(mac.call, mac.caller_class);
      if (target < 0) continue;
      const FuncNode& callee = model_.funcs[static_cast<std::size_t>(target)];
      if (callee.is_const || callee.boundary) continue;
      if (!impure_[static_cast<std::size_t>(target)]) continue;
      report(mac.code, mac.path, mac.call.line, mac.call.column,
             "call to '" + callee.qualified + "' inside " + mac.macro +
                 " argument reaches a side effect [" +
                 witness(target, FactKind::kMutation) + "]; " +
                 (mac.code == LintCode::kL001SideEffectObsArg
                      ? "the expression is removed when QUORA_OBS=OFF — "
                        "hoist the call out of the macro"
                      : "contracts compile out in Release — hoist the call "
                        "out of the macro"));
    }
  }

  // ---- L003: calls that launder entropy through a helper ----
  void check_entropy_calls() {
    for (std::size_t i = 0; i < model_.funcs.size(); ++i) {
      const FuncNode& f = model_.funcs[i];
      if (!f.has_body) continue;
      if (!scope_for_path(f.path, all_scopes_).entropy) continue;
      for (const CallSite& call : f.calls) {
        const int target = resolve_call(call, f.class_name);
        if (target < 0 || target == static_cast<int>(i)) continue;
        const FuncNode& callee = model_.funcs[static_cast<std::size_t>(target)];
        if (callee.boundary) continue;
        if (!entropic_[static_cast<std::size_t>(target)]) continue;
        report(LintCode::kL003ForbiddenEntropy, f.path, call.line, call.column,
               "call to '" + callee.qualified +
                   "' reaches a forbidden entropy source [" +
                   witness(target, FactKind::kEntropy) +
                   "] in a deterministic layer; all randomness must come "
                   "from the seeded rng:: xoshiro streams (src/rng)");
      }
    }
  }

  /// Multi-source BFS over call edges from `roots`, honoring
  /// QUORA_ANALYSIS_BOUNDARY. Returns parents for chain reconstruction
  /// (-1 for roots, -2 for unreached).
  std::vector<int> reach(const std::vector<int>& roots) const {
    std::vector<int> parent(model_.funcs.size(), -2);
    std::deque<int> queue;
    for (const int r : roots) {
      if (parent[static_cast<std::size_t>(r)] != -2) continue;
      parent[static_cast<std::size_t>(r)] = -1;
      queue.push_back(r);
    }
    while (!queue.empty()) {
      const int cur = queue.front();
      queue.pop_front();
      for (const int t : edges_[static_cast<std::size_t>(cur)]) {
        if (parent[static_cast<std::size_t>(t)] != -2) continue;
        if (model_.funcs[static_cast<std::size_t>(t)].boundary) continue;
        parent[static_cast<std::size_t>(t)] = cur;
        queue.push_back(t);
      }
    }
    return parent;
  }

  std::string chain(const std::vector<int>& parent, int node) const {
    std::vector<int> path;
    for (int cur = node; cur != -1; cur = parent[static_cast<std::size_t>(cur)])
      path.push_back(cur);
    std::string s;
    for (auto it = path.rbegin(); it != path.rend(); ++it) {
      if (!s.empty()) s += " -> ";
      s += model_.funcs[static_cast<std::size_t>(*it)].qualified;
    }
    return s;
  }

  // ---- L006: allocations reachable from QUORA_HOT_PATH ----
  void check_hot_paths() {
    std::vector<int> roots;
    for (std::size_t i = 0; i < model_.funcs.size(); ++i) {
      if (model_.funcs[i].hot_path) roots.push_back(static_cast<int>(i));
    }
    if (roots.empty()) return;
    const std::vector<int> parent = reach(roots);
    for (std::size_t i = 0; i < model_.funcs.size(); ++i) {
      if (parent[i] == -2) continue;
      const FuncNode& f = model_.funcs[i];
      if (f.alloc_ok) continue;
      for (const Fact& fact : f.facts) {
        if (fact.kind != FactKind::kAllocation) continue;
        report(LintCode::kL006HotPathAllocation, f.path, fact.line,
               fact.column,
               "heap allocation (" + fact.detail +
                   ") on a QUORA_HOT_PATH call chain [" +
                   chain(parent, static_cast<int>(i)) +
                   "]; hot paths must be transitively allocation-free — "
                   "pre-reserve and mark the owner QUORA_ALLOC_OK (backed "
                   "by quora_bench --alloc-check) or restructure");
      }
    }
  }

  // ---- L007 (annotation misuse on symbols) ----
  void check_shard_annotations() {
    for (const VarNode& v : model_.vars) {
      if (v.shard_local && v.shard_shared) {
        report(LintCode::kL007CrossShardState, v.path, v.line, v.column,
               "'" + v.qualified +
                   "' is annotated both QUORA_SHARD_LOCAL and "
                   "QUORA_SHARD_SHARED; a symbol is one or the other");
      }
      if (v.shard_local && v.static_storage) {
        report(LintCode::kL007CrossShardState, v.path, v.line, v.column,
               "QUORA_SHARD_LOCAL on static-storage symbol '" + v.qualified +
                   "'; shard-local state must live in per-shard instances, "
                   "not globals/statics");
      }
    }
  }

  // ---- L007 (cross-domain reach) ----
  void check_shard_reach() {
    std::set<std::string> reported;  // path:line:domain
    for (std::size_t e = 0; e < model_.funcs.size(); ++e) {
      const FuncNode& entry = model_.funcs[e];
      if (entry.entry_domain.empty()) continue;
      const std::vector<int> parent = reach({static_cast<int>(e)});
      for (std::size_t i = 0; i < model_.funcs.size(); ++i) {
        if (parent[i] == -2) continue;
        const FuncNode& f = model_.funcs[i];
        for (const VarRef& ref : f.var_refs) {
          const int vi = resolve_ref(f, ref);
          if (vi < 0) continue;
          const VarNode& v = model_.vars[static_cast<std::size_t>(vi)];
          if (!v.shard_local || v.local_domain == entry.entry_domain) continue;
          const std::string key = f.path + ":" + std::to_string(ref.line) +
                                  ":" + entry.entry_domain;
          if (!reported.insert(key).second) continue;
          report(LintCode::kL007CrossShardState, f.path, ref.line, ref.column,
                 "QUORA_SHARD_ENTRY(" + entry.entry_domain + ") '" +
                     entry.qualified + "' reaches QUORA_SHARD_LOCAL(" +
                     v.local_domain + ") state '" + v.qualified + "' [" +
                     chain(parent, static_cast<int>(i)) +
                     "]; shards may only touch their own domain's state");
        }
      }
    }
  }

  // ---- L008: unshared mutable globals on annotated paths ----
  void check_global_state() {
    std::vector<int> roots;
    for (std::size_t i = 0; i < model_.funcs.size(); ++i) {
      if (model_.funcs[i].hot_path || !model_.funcs[i].entry_domain.empty())
        roots.push_back(static_cast<int>(i));
    }
    if (roots.empty()) return;
    const std::vector<int> parent = reach(roots);
    std::set<std::string> reported;  // path:line
    for (std::size_t i = 0; i < model_.funcs.size(); ++i) {
      if (parent[i] == -2) continue;
      const FuncNode& f = model_.funcs[i];
      for (const VarRef& ref : f.var_refs) {
        const int vi = resolve_ref(f, ref);
        if (vi < 0) continue;
        const VarNode& v = model_.vars[static_cast<std::size_t>(vi)];
        if (!v.static_storage || v.is_const || v.shard_shared || v.shard_local)
          continue;
        const std::string key = f.path + ":" + std::to_string(ref.line);
        if (!reported.insert(key).second) continue;
        report(LintCode::kL008UnsharedGlobalState, f.path, ref.line,
               ref.column,
               "mutable global/static '" + v.qualified +
                   "' referenced on an annotated hot path [" +
                   chain(parent, static_cast<int>(i)) +
                   "]; make it const or declare the sharing explicitly "
                   "with QUORA_SHARD_SHARED");
      }
    }
  }

  const ProgramModel& model_;
  const bool all_scopes_;
  std::vector<Finding>* out_;
  std::map<std::string, std::vector<int>> by_name_;
  std::vector<std::vector<int>> edges_;
  std::vector<bool> impure_;
  std::vector<bool> entropic_;
};

} // namespace

void run_program_checks(const ProgramModel& model, bool all_scopes,
                        std::vector<Finding>* out) {
  Analysis analysis(model, all_scopes, out);
  analysis.run();
}

} // namespace quora::lint
