#include "lint_types.hpp"

#include <algorithm>
#include <cctype>
#include <ostream>
#include <tuple>

namespace quora::lint {

namespace {

struct CodeRow {
  LintCode code;
  const char* tag;
  const char* name;
  const char* summary;
};

// Append-only; tags are what baselines and suppression comments store.
constexpr CodeRow kCodes[kLintCodeCount] = {
    {LintCode::kL001SideEffectObsArg, "L001", "obs-macro-side-effect",
     "argument to QUORA_TRACE / QUORA_METRIC_* has a side effect; the "
     "expression vanishes when QUORA_OBS=OFF, so the two builds diverge"},
    {LintCode::kL002SideEffectContractArg, "L002", "contract-side-effect",
     "argument to QUORA_ASSERT / QUORA_INVARIANT / QUORA_PRECONDITION has "
     "a side effect; contracts compile out in Release builds"},
    {LintCode::kL003ForbiddenEntropy, "L003", "forbidden-entropy-source",
     "nondeterministic source (std::random_device, rand, time, "
     "*_clock::now) in a deterministic layer; draw from the seeded "
     "rng:: streams instead"},
    {LintCode::kL004UnorderedIteration, "L004", "unordered-iteration",
     "iteration over an unordered container in transcript-feeding code; "
     "iteration order is unspecified and breaks byte-stable replays"},
    {LintCode::kL005RawObsCall, "L005", "raw-obs-call",
     "raw TraceRecorder / metric-handle call bypasses the QUORA_TRACE / "
     "QUORA_METRIC_* gating macros, so it survives QUORA_OBS=OFF builds"},
    {LintCode::kL006HotPathAllocation, "L006", "hot-path-allocation",
     "function reachable from a QUORA_HOT_PATH entry performs a heap "
     "allocation (new/delete, container growth, string construction); "
     "hot paths must be transitively allocation-free"},
    {LintCode::kL007CrossShardState, "L007", "cross-shard-state",
     "shard confinement violation: an annotated entry point reaches "
     "QUORA_SHARD_LOCAL state of a different domain, or the shard "
     "annotations on one symbol conflict"},
    {LintCode::kL008UnsharedGlobalState, "L008", "unshared-global-state",
     "mutable global/static state reachable from an annotated hot path "
     "is neither const nor QUORA_SHARD_SHARED; shared state must be "
     "declared before the parallel simulator can rely on it"},
    {LintCode::kL009RawConcurrencyPrimitive, "L009",
     "raw-concurrency-primitive",
     "raw std::mutex / std::atomic / thread_local in a protocol layer; "
     "the simulator and model checker own all scheduling, so ad-hoc "
     "synchronization hides interleavings from them — declare the state "
     "QUORA_SHARD_SHARED or keep it out of the protocol layers"},
};

const CodeRow& row(LintCode code) {
  return kCodes[static_cast<std::size_t>(code)];
}

} // namespace

const char* lint_code_tag(LintCode code) { return row(code).tag; }
const char* lint_code_name(LintCode code) { return row(code).name; }
const char* lint_code_summary(LintCode code) { return row(code).summary; }

bool parse_lint_code_tag(std::string_view tag, LintCode* out) {
  if (tag.size() != 4) return false;
  std::string upper(tag);
  std::transform(upper.begin(), upper.end(), upper.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  for (const CodeRow& r : kCodes) {
    if (upper == r.tag) {
      if (out != nullptr) *out = r.code;
      return true;
    }
  }
  return false;
}

const char* lint_severity_name(LintSeverity severity) {
  return severity == LintSeverity::kError ? "error" : "warning";
}

bool finding_less(const Finding& a, const Finding& b) {
  return std::tie(a.path, a.line, a.column, a.code, a.message) <
         std::tie(b.path, b.line, b.column, b.code, b.message);
}

std::size_t unsuppressed_count(const std::vector<Finding>& findings) {
  std::size_t n = 0;
  for (const Finding& f : findings) {
    if (!f.suppressed && !f.baselined) ++n;
  }
  return n;
}

void write_findings_text(std::ostream& out, const std::vector<Finding>& findings,
                         bool show_suppressed) {
  for (const Finding& f : findings) {
    if ((f.suppressed || f.baselined) && !show_suppressed) continue;
    out << f.path << ':' << f.line << ':' << f.column << ": "
        << lint_severity_name(f.severity) << ": [" << lint_code_tag(f.code)
        << ' ' << lint_code_name(f.code) << "] " << f.message;
    if (f.suppressed) out << " (suppressed)";
    if (f.baselined) out << " (baselined)";
    out << '\n';
  }
}

void write_json_string(std::ostream& out, std::string_view s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      case '\r': out << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          out << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

void write_findings_json(std::ostream& out, const std::vector<Finding>& findings,
                         bool include_all) {
  out << '[';
  bool first = true;
  for (const Finding& f : findings) {
    if ((f.suppressed || f.baselined) && !include_all) continue;
    out << (first ? "\n" : ",\n") << "  {\"code\": ";
    write_json_string(out, lint_code_name(f.code));
    out << ", \"tag\": ";
    write_json_string(out, lint_code_tag(f.code));
    out << ", \"severity\": ";
    write_json_string(out, lint_severity_name(f.severity));
    out << ", \"path\": ";
    write_json_string(out, f.path);
    out << ", \"line\": " << f.line << ", \"column\": " << f.column
        << ", \"message\": ";
    write_json_string(out, f.message);
    if (f.suppressed) out << ", \"suppressed\": true";
    if (f.baselined) out << ", \"baselined\": true";
    out << '}';
    first = false;
  }
  out << (first ? "]\n" : "\n]\n");
}

} // namespace quora::lint
