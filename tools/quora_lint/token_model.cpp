// Token-engine builder for the whole-program model (program_model.hpp).
//
// A single lexical pass per file reconstructs just enough structure for
// the interprocedural checks: namespace/class nesting, function
// definitions (with qualified names, so out-of-line members in a .cpp
// merge with their annotated declaration in the .hpp), member/global
// variable declarations, and per-body facts + call sites. It is
// deliberately conservative — the AST engine rebuilds the same model
// with real semantics — but the fixture suite pins the cases this
// approximation must not miss.

#include "token_model.hpp"

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "source_scan.hpp"

namespace quora::lint {

namespace {

bool is_punct(const Token& t, std::string_view s) {
  return t.kind == Token::Kind::kPunct && t.text == s;
}
bool is_ident(const Token& t, std::string_view s) {
  return t.kind == Token::Kind::kIdent && t.text == s;
}
bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}
bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::size_t match_paren(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (is_punct(toks[i], "(")) ++depth;
    if (is_punct(toks[i], ")") && --depth == 0) return i + 1;
  }
  return toks.size();
}

std::size_t match_brace(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (is_punct(toks[i], "{")) ++depth;
    if (is_punct(toks[i], "}") && --depth == 0) return i + 1;
  }
  return toks.size();
}

std::size_t match_angle(const std::vector<Token>& toks, std::size_t i) {
  int depth = 0;
  for (std::size_t j = i; j < toks.size(); ++j) {
    if (is_punct(toks[j], "<")) ++depth;
    if (is_punct(toks[j], ">") && --depth == 0) return j + 1;
    if (is_punct(toks[j], ">>")) {
      depth -= 2;
      if (depth <= 0) return j + 1;
    }
    if (is_punct(toks[j], ";") || is_punct(toks[j], "{")) return i;
  }
  return i;
}

// Container members whose call implies (possibly amortized) heap growth.
// Bare `push`/`pop` are deliberately absent: they name both the repo's
// non-allocating 4-ary heap API and std::priority_queue, and linking the
// two by name would fabricate allocations (the AST engine resolves the
// real receiver type instead).
constexpr std::array<std::string_view, 12> kGrowthMembers = {
    "push_back",   "emplace_back", "push_front", "emplace_front",
    "insert",      "emplace",      "emplace_hint", "resize",
    "reserve",     "shrink_to_fit", "append",     "assign"};

constexpr std::array<std::string_view, 11> kAssignOps = {
    "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="};

// Mutating member calls that make a function impure when invoked on
// member ("x_") or global ("g_x") state; mirrors checks_token.cpp.
constexpr std::array<std::string_view, 17> kMutatingMembers = {
    "push_back", "pop_back",      "push",       "pop",   "insert",
    "erase",     "clear",         "emplace",    "emplace_back",
    "emplace_front", "push_front", "pop_front", "reset", "release",
    "swap",      "next_u64",      "next_double"};

constexpr std::array<std::string_view, 3> kForbiddenClocks = {
    "system_clock", "steady_clock", "high_resolution_clock"};
constexpr std::array<std::string_view, 5> kForbiddenEngines = {
    "mt19937", "mt19937_64", "default_random_engine", "minstd_rand",
    "minstd_rand0"};

// Macros whose arguments compile out; calls inside them feed the
// interprocedural L001/L002 pass. QUORA_OBS_ONLY is exempt by design:
// the whole statement is declared obs-only, so reaching obs state
// through a helper is sanctioned there (see docs/STATIC_ANALYSIS.md).
struct MacroArgRule {
  std::string_view name;
  LintCode code;
};
constexpr std::array<MacroArgRule, 7> kMacroArgRules = {{
    {"QUORA_TRACE", LintCode::kL001SideEffectObsArg},
    {"QUORA_METRIC_ADD", LintCode::kL001SideEffectObsArg},
    {"QUORA_METRIC_RECORD", LintCode::kL001SideEffectObsArg},
    {"QUORA_METRIC_SET", LintCode::kL001SideEffectObsArg},
    {"QUORA_ASSERT", LintCode::kL002SideEffectContractArg},
    {"QUORA_INVARIANT", LintCode::kL002SideEffectContractArg},
    {"QUORA_PRECONDITION", LintCode::kL002SideEffectContractArg},
}};

bool is_keyword(std::string_view s) {
  static constexpr std::array<std::string_view, 32> kKeywords = {
      "if",       "else",    "for",      "while",   "do",      "switch",
      "case",     "default", "return",   "break",   "continue", "goto",
      "sizeof",   "alignof", "decltype", "typeid",  "new",     "delete",
      "static_cast", "dynamic_cast", "const_cast", "reinterpret_cast",
      "throw",    "try",     "catch",    "co_await", "co_return", "co_yield",
      "this",     "operator", "static_assert", "noexcept"};
  for (std::string_view k : kKeywords) {
    if (s == k) return true;
  }
  return false;
}

bool is_decl_keyword(std::string_view s) {
  static constexpr std::array<std::string_view, 14> kDeclKeywords = {
      "static", "const",    "constexpr", "mutable", "inline",  "virtual",
      "explicit", "volatile", "typename", "register", "thread_local",
      "extern", "consteval", "constinit"};
  for (std::string_view k : kDeclKeywords) {
    if (s == k) return true;
  }
  return false;
}

/// Builtin type words that may appear in multi-token runs ("unsigned
/// long long"); the type-chain scanner consumes whole runs so the
/// declarator name that follows is not mistaken for the type.
bool is_builtin_type_word(std::string_view s) {
  static constexpr std::array<std::string_view, 10> kBuiltins = {
      "unsigned", "signed", "long", "short", "int",
      "char",     "double", "float", "bool",  "void"};
  for (std::string_view k : kBuiltins) {
    if (s == k) return true;
  }
  return false;
}

/// Annotation macros (src/core/analysis_annotations.hpp) recognized
/// lexically; `takes_domain` macros carry one identifier argument.
struct PendingAnnotations {
  bool hot_path = false;
  bool boundary = false;
  bool alloc_ok = false;
  bool shard_shared = false;
  bool shard_local = false;
  std::string entry_domain;
  std::string local_domain;

  bool any() const {
    return hot_path || boundary || alloc_ok || shard_shared || shard_local ||
           !entry_domain.empty();
  }
  void clear() { *this = PendingAnnotations(); }
};

/// Consumes an annotation macro at `i` if present; returns the index one
/// past it (or `i` unchanged).
std::size_t take_annotation(const std::vector<Token>& toks, std::size_t i,
                            PendingAnnotations* pending) {
  if (toks[i].kind != Token::Kind::kIdent) return i;
  const std::string& s = toks[i].text;
  if (s == "QUORA_HOT_PATH") {
    pending->hot_path = true;
    return i + 1;
  }
  if (s == "QUORA_ANALYSIS_BOUNDARY") {
    pending->boundary = true;
    return i + 1;
  }
  if (s == "QUORA_ALLOC_OK") {
    pending->alloc_ok = true;
    return i + 1;
  }
  if (s == "QUORA_SHARD_SHARED") {
    pending->shard_shared = true;
    return i + 1;
  }
  if ((s == "QUORA_SHARD_ENTRY" || s == "QUORA_SHARD_LOCAL") &&
      i + 3 < toks.size() && is_punct(toks[i + 1], "(") &&
      toks[i + 2].kind == Token::Kind::kIdent && is_punct(toks[i + 3], ")")) {
    if (s == "QUORA_SHARD_ENTRY") {
      pending->entry_domain = toks[i + 2].text;
    } else {
      pending->shard_local = true;
      pending->local_domain = toks[i + 2].text;
    }
    return i + 4;
  }
  return i;
}

std::string join_scope(const std::vector<std::string>& scopes,
                       const std::string& leaf) {
  std::string out;
  for (const std::string& s : scopes) {
    if (s.empty()) continue;
    if (!out.empty()) out += "::";
    out += s;
  }
  if (!leaf.empty()) {
    if (!out.empty()) out += "::";
    out += leaf;
  }
  return out;
}

class Builder {
public:
  Builder(std::string_view path, ProgramModel* model)
      : path_(path), model_(model) {}

  void run(const std::vector<Token>& toks) {
    scan_declarative(toks, 0, toks.size(), /*class_name=*/"");
  }

private:
  FuncNode* intern_func(const std::string& qualified) {
    for (FuncNode& f : model_->funcs) {
      if (f.qualified == qualified) return &f;
    }
    FuncNode node;
    node.qualified = qualified;
    model_->funcs.push_back(std::move(node));
    return &model_->funcs.back();
  }

  VarNode* intern_var(const std::string& qualified) {
    for (VarNode& v : model_->vars) {
      if (v.qualified == qualified) return &v;
    }
    VarNode node;
    node.qualified = qualified;
    model_->vars.push_back(std::move(node));
    return &model_->vars.back();
  }

  /// Declarative (namespace or class body) scope: [begin, end).
  /// `class_name` is the qualified enclosing record, "" at namespace scope.
  void scan_declarative(const std::vector<Token>& toks, std::size_t begin,
                        std::size_t end, const std::string& class_name) {
    PendingAnnotations pending;
    std::size_t i = begin;
    while (i < end) {
      const Token& t = toks[i];
      // Attribute blocks [[...]] — skip.
      if (is_punct(t, "[") && i + 1 < end && is_punct(toks[i + 1], "[")) {
        int depth = 0;
        while (i < end) {
          if (is_punct(toks[i], "[")) ++depth;
          if (is_punct(toks[i], "]") && --depth == 0) break;
          ++i;
        }
        ++i;
        continue;
      }
      if (t.kind == Token::Kind::kPunct) {
        if (t.text == ";") pending.clear();
        ++i;
        continue;
      }
      if (t.kind != Token::Kind::kIdent) {
        ++i;
        continue;
      }
      const std::size_t after_ann = take_annotation(toks, i, &pending);
      if (after_ann != i) {
        i = after_ann;
        continue;
      }
      if (t.text == "namespace") {
        // namespace a::b { ... }   |   namespace { ... }
        std::vector<std::string> parts;
        std::size_t j = i + 1;
        while (j < end && toks[j].kind == Token::Kind::kIdent) {
          parts.push_back(toks[j].text);
          ++j;
          if (j < end && is_punct(toks[j], "::")) ++j;
        }
        if (j < end && is_punct(toks[j], "{")) {
          const std::size_t close = match_brace(toks, j);
          for (const std::string& p : parts) namespaces_.push_back(p);
          scan_declarative(toks, j + 1, close - 1, class_name);
          for (std::size_t k = 0; k < parts.size(); ++k) namespaces_.pop_back();
          i = close;
        } else {
          i = j + 1;  // namespace alias / using-directive tail
        }
        pending.clear();
        continue;
      }
      if (t.text == "class" || t.text == "struct") {
        // Find the record name, then the body (skipping base clauses).
        std::size_t j = i + 1;
        // Skip attributes and alignas between keyword and name.
        std::string name;
        while (j < end) {
          if (toks[j].kind == Token::Kind::kIdent &&
              !is_decl_keyword(toks[j].text) && toks[j].text != "final") {
            name = toks[j].text;
            ++j;
            if (j < end && is_punct(toks[j], "<")) j = match_angle(toks, j);
            break;
          }
          ++j;
        }
        // Walk to `{` (definition) or `;` (forward decl).
        while (j < end && !is_punct(toks[j], "{") && !is_punct(toks[j], ";")) {
          if (is_punct(toks[j], "<")) {
            const std::size_t adv = match_angle(toks, j);
            j = adv == j ? j + 1 : adv;
            continue;
          }
          ++j;
        }
        if (j < end && is_punct(toks[j], "{") && !name.empty()) {
          const std::size_t close = match_brace(toks, j);
          const std::string qualified =
              class_name.empty() ? join_scope(namespaces_, name)
                                 : class_name + "::" + name;
          scan_declarative(toks, j + 1, close - 1, qualified);
          i = close;
        } else {
          i = j + 1;
        }
        pending.clear();
        continue;
      }
      if (t.text == "enum" || t.text == "using" || t.text == "typedef" ||
          t.text == "friend" || t.text == "static_assert" ||
          t.text == "template") {
        // Skip the whole construct: templates are re-entered at the
        // declaration they introduce; the rest carries nothing we model.
        if (t.text == "template" && i + 1 < end && is_punct(toks[i + 1], "<")) {
          const std::size_t adv = match_angle(toks, i + 1);
          i = adv == i + 1 ? i + 2 : adv;
          continue;  // keep pending annotations for the templated decl
        }
        while (i < end && !is_punct(toks[i], ";") && !is_punct(toks[i], "{"))
          ++i;
        if (i < end && is_punct(toks[i], "{")) i = match_brace(toks, i);
        while (i < end && !is_punct(toks[i], ";")) ++i;
        ++i;
        pending.clear();
        continue;
      }
      // Access labels (class scope): `public:` etc.
      if ((t.text == "public" || t.text == "private" || t.text == "protected") &&
          i + 1 < end && is_punct(toks[i + 1], ":")) {
        i += 2;
        continue;
      }
      // General declaration: parse one statement.
      i = scan_statement(toks, i, end, class_name, &pending);
    }
  }

  /// One declaration statement at declarative scope starting at `i`.
  /// Returns the index one past it.
  std::size_t scan_statement(const std::vector<Token>& toks, std::size_t i,
                             std::size_t end, const std::string& class_name,
                             PendingAnnotations* pending) {
    auto skip_rest = [&](std::size_t j) {
      while (j < end && !is_punct(toks[j], ";")) {
        if (is_punct(toks[j], "{")) {
          j = match_brace(toks, j);
          continue;
        }
        ++j;
      }
      pending->clear();
      return j < end ? j + 1 : end;
    };

    bool is_static = false;
    bool is_const = false;
    std::size_t j = i;
    // Leading specifiers, annotations, attributes.
    while (j < end) {
      const std::size_t after_ann = take_annotation(toks, j, pending);
      if (after_ann != j) {
        j = after_ann;
        continue;
      }
      if (toks[j].kind == Token::Kind::kIdent && is_decl_keyword(toks[j].text)) {
        if (toks[j].text == "static") is_static = true;
        if (toks[j].text == "const" || toks[j].text == "constexpr")
          is_const = true;
        ++j;
        continue;
      }
      if (is_punct(toks[j], "[") && j + 1 < end && is_punct(toks[j + 1], "[")) {
        int depth = 0;
        while (j < end) {
          if (is_punct(toks[j], "[")) ++depth;
          if (is_punct(toks[j], "]") && --depth == 0) break;
          ++j;
        }
        ++j;
        continue;
      }
      break;
    }
    if (j >= end || toks[j].kind != Token::Kind::kIdent) return skip_rest(j);
    if (is_keyword(toks[j].text)) {
      if (toks[j].text == "operator" || toks[j].text == "this")
        return skip_rest(j);
      return skip_rest(j);
    }

    // Type (or constructor-name) chain: a::b::c<...>, with */& suffixes.
    std::vector<std::string> chain;
    while (j < end && toks[j].kind == Token::Kind::kIdent &&
           !is_decl_keyword(toks[j].text)) {
      chain.push_back(toks[j].text);
      ++j;
      if (j < end && is_punct(toks[j], "<")) {
        const std::size_t adv = match_angle(toks, j);
        if (adv != j) j = adv;
      }
      if (j < end && is_punct(toks[j], "::")) {
        ++j;
        continue;
      }
      // "unsigned long long x" — keep consuming the builtin run.
      if (is_builtin_type_word(chain.back()) && j < end &&
          toks[j].kind == Token::Kind::kIdent &&
          is_builtin_type_word(toks[j].text)) {
        continue;
      }
      break;
    }
    if (chain.empty()) return skip_rest(j);
    while (j < end && (is_punct(toks[j], "*") || is_punct(toks[j], "&") ||
                       is_punct(toks[j], "&&") ||
                       (toks[j].kind == Token::Kind::kIdent &&
                        is_decl_keyword(toks[j].text)))) {
      if (toks[j].kind == Token::Kind::kIdent &&
          (toks[j].text == "const" || toks[j].text == "constexpr"))
        is_const = true;
      ++j;
    }

    // Constructor / conversion-style: chain directly followed by `(`.
    if (j < end && is_punct(toks[j], "(")) {
      return scan_function(toks, j, end, class_name, chain, pending);
    }
    if (j >= end || toks[j].kind != Token::Kind::kIdent) return skip_rest(j);

    // Declarator name chain (handles out-of-line `Type Class::name`).
    std::vector<std::string> name_chain;
    const Token& name_tok = toks[j];
    while (j < end && toks[j].kind == Token::Kind::kIdent) {
      name_chain.push_back(toks[j].text);
      ++j;
      if (j < end && is_punct(toks[j], "<")) {
        const std::size_t adv = match_angle(toks, j);
        if (adv != j) j = adv;
      }
      if (j < end && is_punct(toks[j], "::")) {
        ++j;
        continue;
      }
      break;
    }
    if (name_chain.empty()) return skip_rest(j);

    if (j < end && is_punct(toks[j], "(")) {
      return scan_function(toks, j, end, class_name, name_chain, pending,
                           &chain, is_const);
    }
    if (j < end && (is_punct(toks[j], ";") || is_punct(toks[j], "=") ||
                    is_punct(toks[j], "{") || is_punct(toks[j], "["))) {
      // Variable / data-member declaration.
      const std::string& var_name = name_chain.back();
      std::string owner = class_name;
      if (name_chain.size() > 1) {
        // Out-of-line static member definition `int Class::member = ...`.
        owner = join_scope(namespaces_, "");
        for (std::size_t k = 0; k + 1 < name_chain.size(); ++k) {
          owner += owner.empty() ? name_chain[k] : "::" + name_chain[k];
        }
        is_static = true;
      }
      std::string type;
      for (const std::string& part : chain) {
        type += type.empty() ? part : "::" + part;
      }
      const std::string qualified =
          owner.empty() ? join_scope(namespaces_, var_name)
                        : owner + "::" + var_name;
      if (!class_name.empty()) {
        model_->member_types[qualified] = type;
      }
      const bool record = pending->any() || class_name.empty() ||
                          is_static;
      if (record && type != "auto") {
        VarNode* v = intern_var(qualified);
        v->name = var_name;
        v->class_name = owner.empty() ? class_name : owner;
        if (v->path.empty()) {
          v->path = path_;
          v->line = name_tok.line;
          v->column = name_tok.column;
        }
        v->is_const = v->is_const || is_const;
        v->static_storage = v->static_storage || is_static || class_name.empty();
        v->shard_shared = v->shard_shared || pending->shard_shared;
        if (pending->shard_local) {
          v->shard_local = true;
          v->local_domain = pending->local_domain;
        }
      }
      return skip_rest(j);
    }
    return skip_rest(j);
  }

  /// `open` points at the parameter-list `(` of a function declarator
  /// whose name chain is `name_chain`. Creates/merges the FuncNode and
  /// scans the body when this is a definition.
  std::size_t scan_function(const std::vector<Token>& toks, std::size_t open,
                            std::size_t end, const std::string& class_name,
                            const std::vector<std::string>& name_chain,
                            PendingAnnotations* pending,
                            const std::vector<std::string>* type_chain = nullptr,
                            bool /*type_const*/ = false) {
    (void)type_chain;
    const std::size_t params_end = match_paren(toks, open);
    // Trailer: const/noexcept/override/final/-> type ... then `{`, `;`,
    // `= default;`, `= delete;`, `= 0;`, or a ctor-initializer list.
    bool is_const_member = false;
    std::size_t j = params_end;
    std::size_t body = 0;
    while (j < end) {
      if (toks[j].kind == Token::Kind::kIdent) {
        if (toks[j].text == "const") is_const_member = true;
        if (toks[j].text == "noexcept" && j + 1 < end &&
            is_punct(toks[j + 1], "(")) {
          j = match_paren(toks, j + 1);
          continue;
        }
        ++j;
        continue;
      }
      if (is_punct(toks[j], "->")) {
        ++j;
        continue;
      }
      if (is_punct(toks[j], "<")) {
        const std::size_t adv = match_angle(toks, j);
        j = adv == j ? j + 1 : adv;
        continue;
      }
      if (is_punct(toks[j], "::")) {
        ++j;
        continue;
      }
      if (is_punct(toks[j], ":")) {
        // Constructor initializer list: ident group [, ident group]... `{`
        ++j;
        while (j < end && !is_punct(toks[j], "{")) {
          if (is_punct(toks[j], "(")) {
            j = match_paren(toks, j);
            continue;
          }
          if (is_punct(toks[j], "<")) {
            const std::size_t adv = match_angle(toks, j);
            j = adv == j ? j + 1 : adv;
            continue;
          }
          // Brace-init member `m_{...}` — but `{` also starts the body;
          // a member brace-init is always directly preceded by an ident
          // or a closing angle. Disambiguate: treat `{` after ident as
          // member init, anything else as body.
          if (j + 1 < end && toks[j].kind == Token::Kind::kIdent &&
              is_punct(toks[j + 1], "{")) {
            j = match_brace(toks, j + 1);
            continue;
          }
          ++j;
        }
        continue;
      }
      if (is_punct(toks[j], "{")) {
        body = j;
        break;
      }
      if (is_punct(toks[j], ";")) break;
      if (is_punct(toks[j], "=")) {
        // = default / = delete / = 0   (pure virtual)
        j += 2;
        continue;
      }
      ++j;
    }

    const std::string& fn_name = name_chain.back();
    std::string owner = class_name;
    if (name_chain.size() > 1) {
      // Out-of-line definition `Class::name` — qualify against the
      // enclosing namespaces.
      std::vector<std::string> quals(name_chain.begin(), name_chain.end() - 1);
      owner = join_scope(namespaces_, "");
      for (const std::string& q : quals) {
        owner += owner.empty() ? q : "::" + q;
      }
    }
    const std::string qualified =
        owner.empty() ? join_scope(namespaces_, fn_name)
                      : owner + "::" + fn_name;

    FuncNode* node = intern_func(qualified);
    node->name = fn_name;
    if (node->class_name.empty()) node->class_name = owner;
    node->is_const = node->is_const || is_const_member;
    node->hot_path = node->hot_path || pending->hot_path;
    node->boundary = node->boundary || pending->boundary;
    node->alloc_ok = node->alloc_ok || pending->alloc_ok;
    if (node->entry_domain.empty()) node->entry_domain = pending->entry_domain;
    pending->clear();

    if (body == 0) {
      if (node->path.empty()) {
        node->path = path_;
        node->line = toks[open].line;
        node->column = toks[open].column;
      }
      return j < end ? j + 1 : end;
    }
    const std::size_t close = match_brace(toks, body);
    if (!node->has_body) {
      node->has_body = true;
      node->path = path_;
      node->line = toks[open].line;
      node->column = toks[open].column;
      scan_body(toks, body + 1, close - 1, node, qualified, owner);
    }
    return close;
  }

  /// Function body [begin, end): facts, call sites, variable references,
  /// macro-argument calls, and local declared types for receiver
  /// resolution.
  void scan_body(const std::vector<Token>& toks, std::size_t begin,
                 std::size_t end, FuncNode* node, const std::string& qualified,
                 const std::string& class_name) {
    std::vector<std::pair<std::string, std::string>> local_types;
    auto local_type_of = [&](const std::string& name) -> std::string {
      for (const auto& [n, ty] : local_types) {
        if (n == name) return ty;
      }
      return {};
    };
    auto add_fact = [&](FactKind kind, const Token& at, std::string detail) {
      Fact f;
      f.kind = kind;
      f.line = at.line;
      f.column = at.column;
      f.detail = std::move(detail);
      node->facts.push_back(std::move(f));
    };
    auto is_state_name = [](std::string_view s) {
      return ends_with(s, "_") || starts_with(s, "g_") || starts_with(s, "s_");
    };

    for (std::size_t i = begin; i < end; ++i) {
      const Token& t = toks[i];
      if (t.kind == Token::Kind::kPunct) {
        // ++x_ / x_++ / --g_n ... on member/global state → mutation.
        if (t.text == "++" || t.text == "--") {
          std::string_view target;
          if (i > begin && toks[i - 1].kind == Token::Kind::kIdent)
            target = toks[i - 1].text;
          else if (i + 1 < end && toks[i + 1].kind == Token::Kind::kIdent)
            target = toks[i + 1].text;
          if (is_state_name(target)) {
            add_fact(FactKind::kMutation, t,
                     (t.text == "++" ? "increment of '" : "decrement of '") +
                         std::string(target) + "'");
          }
          continue;
        }
        bool is_assign = false;
        for (std::string_view op : kAssignOps) is_assign |= t.text == op;
        if (is_assign) {
          if (t.text == "=") {
            if (i > begin && is_punct(toks[i - 1], "[")) continue;
            if (i + 1 < end && is_punct(toks[i + 1], "]")) continue;
          }
          if (i > begin && toks[i - 1].kind == Token::Kind::kIdent &&
              is_state_name(toks[i - 1].text)) {
            add_fact(FactKind::kMutation, t,
                     "assignment ('" + t.text + "') to '" + toks[i - 1].text +
                         "'");
          }
          continue;
        }
        continue;
      }
      if (t.kind != Token::Kind::kIdent) continue;

      // --- entropy facts (mirrors check_entropy) ---
      const bool next_is_call = i + 1 < end && is_punct(toks[i + 1], "(");
      const bool prev_member =
          i > begin && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"));
      const bool prev_scope = i > begin && is_punct(toks[i - 1], "::");
      if (t.text == "random_device") {
        add_fact(FactKind::kEntropy, t, "std::random_device");
        continue;
      }
      {
        bool engine = false;
        for (std::string_view e : kForbiddenEngines) engine |= t.text == e;
        if (engine) {
          add_fact(FactKind::kEntropy, t, "std::" + t.text);
          continue;
        }
      }
      if ((t.text == "rand" || t.text == "srand") && next_is_call &&
          !prev_member) {
        add_fact(FactKind::kEntropy, t, "'" + t.text + "()'");
        // fall through: also a (dead) call edge — skip it.
        i = match_paren(toks, i + 1) - 1;
        continue;
      }
      if ((t.text == "time" || t.text == "clock") && next_is_call && prev_scope) {
        add_fact(FactKind::kEntropy, t, "'" + t.text + "()' wall-clock call");
        i = match_paren(toks, i + 1) - 1;
        continue;
      }
      {
        bool clock_now = false;
        for (std::string_view c : kForbiddenClocks) {
          if (t.text == c && i + 2 < end && is_punct(toks[i + 1], "::") &&
              is_ident(toks[i + 2], "now")) {
            clock_now = true;
          }
        }
        if (clock_now) {
          add_fact(FactKind::kEntropy, t, "std::chrono::" + t.text + "::now()");
          continue;
        }
      }

      // --- allocations ---
      if (t.text == "new") {
        add_fact(FactKind::kAllocation, t, "'new' expression");
        continue;
      }
      if (t.text == "delete" && !(i + 1 < end && is_punct(toks[i + 1], ";")) ) {
        // plain `delete p;` and `delete[] p;` — but not `= delete`.
        if (!(i > begin && is_punct(toks[i - 1], "="))) {
          add_fact(FactKind::kAllocation, t, "'delete' expression");
        }
        continue;
      }

      // --- macro-argument calls (interprocedural L001/L002) ---
      if (next_is_call) {
        const MacroArgRule* rule = nullptr;
        for (const MacroArgRule& r : kMacroArgRules) {
          if (t.text == r.name) rule = &r;
        }
        if (rule != nullptr) {
          const std::size_t close = match_paren(toks, i + 1);
          collect_macro_arg_calls(toks, i + 2, close - 1, *rule, class_name,
                                  local_types);
          i = close - 1;
          continue;
        }
        if (t.text == "QUORA_OBS_ONLY") {
          // Sanctioned obs-only statement: skip the argument entirely so
          // its obs-state mutations don't poison the enclosing summary.
          i = match_paren(toks, i + 1) - 1;
          continue;
        }
      }

      // --- member/global state references ---
      if (ends_with(t.text, "_") && !next_is_call) {
        VarRef ref;
        ref.name = t.text;
        ref.member_hint = true;
        ref.line = t.line;
        ref.column = t.column;
        node->var_refs.push_back(std::move(ref));
      } else if ((starts_with(t.text, "g_") || starts_with(t.text, "s_")) &&
                 !next_is_call && !prev_member) {
        VarRef ref;
        ref.name = t.text;
        ref.line = t.line;
        ref.column = t.column;
        node->var_refs.push_back(std::move(ref));
      }

      // --- calls ---
      if (next_is_call && !is_keyword(t.text) && !is_decl_keyword(t.text)) {
        // `new Foo(...)` is an allocation, not a call edge.
        if (i > begin && is_ident(toks[i - 1], "new")) continue;
        bool growth = false;
        for (std::string_view g : kGrowthMembers) growth |= t.text == g;
        if (growth && prev_member) {
          add_fact(FactKind::kAllocation, t,
                   "container growth call '" + t.text + "'");
          // No call edge: receiver is (almost always) a std container;
          // name-linking `insert`/`assign` across classes fabricates
          // paths the AST engine would never produce.
          std::string obj = i >= begin + 2 &&
                                    toks[i - 2].kind == Token::Kind::kIdent
                                ? toks[i - 2].text
                                : std::string();
          if (is_state_name(obj)) {
            add_fact(FactKind::kMutation, t,
                     "call to mutating member '" + t.text + "' on '" + obj +
                         "'");
          }
          continue;
        }
        if (t.text == "to_string" && prev_scope) {
          add_fact(FactKind::kAllocation, t, "std::to_string call");
          continue;
        }
        CallSite call;
        call.name = t.text;
        call.line = t.line;
        call.column = t.column;
        if (prev_member) {
          std::string obj;
          if (i >= begin + 2 && toks[i - 2].kind == Token::Kind::kIdent)
            obj = toks[i - 2].text;
          if (obj == "this") {
            call.implicit_this = true;
          } else if (!obj.empty()) {
            std::string ty = local_type_of(obj);
            if (ty.empty() && !class_name.empty()) {
              auto it = model_->member_types.find(class_name + "::" + obj);
              if (it != model_->member_types.end()) ty = it->second;
            }
            if (!ty.empty()) {
              call.object_type = ty;
            } else {
              // Defer: checks_program retries member_types with the full
              // model via "<class>::<obj>" spelled in the qualifier slot.
              call.qualifier = "";
              call.object_type = "";
              call.name = t.text;
              // Encode the receiver so late resolution can try again.
              call.resolved = "";
              call.object_type = "";
              call.qualifier = "@member:" + class_name + "::" + obj;
            }
          }
          // Mutating member call on state → mutation fact.
          bool mutating = false;
          for (std::string_view m : kMutatingMembers) mutating |= t.text == m;
          if (mutating && is_state_name(obj)) {
            add_fact(FactKind::kMutation, t,
                     "call to mutating member '" + t.text + "' on '" + obj +
                         "'");
          }
        } else if (prev_scope) {
          // Explicit qualifier chain: walk backwards a::b::name.
          std::vector<std::string> quals;
          std::size_t k = i - 1;
          while (k > begin && is_punct(toks[k], "::") &&
                 toks[k - 1].kind == Token::Kind::kIdent) {
            quals.push_back(toks[k - 1].text);
            if (k < 2) break;
            k -= 2;
          }
          std::string q;
          for (auto it = quals.rbegin(); it != quals.rend(); ++it) {
            q += q.empty() ? *it : "::" + *it;
          }
          call.qualifier = q;
          if (q == "rng") {
            add_fact(FactKind::kMutation, t,
                     "rng:: draw ('rng::" + t.text + "') advances a stream");
          }
        } else {
          call.implicit_this = !class_name.empty();
        }
        node->calls.push_back(std::move(call));
        continue;
      }

      // --- local declared types (for receiver resolution) ---
      // Pattern: IdentChain ident (; = { () — `Helper h;` → h: Helper.
      if (!is_keyword(t.text) && !is_decl_keyword(t.text) && i + 1 < end) {
        std::size_t j = i;
        std::vector<std::string> chain;
        while (j < end && toks[j].kind == Token::Kind::kIdent &&
               !is_keyword(toks[j].text) && !is_decl_keyword(toks[j].text)) {
          chain.push_back(toks[j].text);
          ++j;
          if (j < end && is_punct(toks[j], "<")) {
            const std::size_t adv = match_angle(toks, j);
            if (adv != j) j = adv;
          }
          if (j < end && is_punct(toks[j], "::")) {
            ++j;
            continue;
          }
          break;
        }
        while (j < end &&
               (is_punct(toks[j], "*") || is_punct(toks[j], "&"))) {
          ++j;
        }
        if (chain.size() >= 1 && j < end &&
            toks[j].kind == Token::Kind::kIdent &&
            !is_keyword(toks[j].text) && j + 1 < end &&
            (is_punct(toks[j + 1], ";") || is_punct(toks[j + 1], "=") ||
             is_punct(toks[j + 1], "{") || is_punct(toks[j + 1], "("))) {
          std::string ty;
          for (const std::string& part : chain) {
            ty += ty.empty() ? part : "::" + part;
          }
          if (ty != "auto" && ty != "return") {
            local_types.emplace_back(toks[j].text, ty);
          }
        }
      }
    }
    (void)qualified;
  }

  /// Calls inside one compiled-out macro argument range [begin, end).
  void collect_macro_arg_calls(
      const std::vector<Token>& toks, std::size_t begin, std::size_t end,
      const MacroArgRule& rule, const std::string& class_name,
      const std::vector<std::pair<std::string, std::string>>& local_types) {
    auto local_type_of = [&](const std::string& name) -> std::string {
      for (const auto& [n, ty] : local_types) {
        if (n == name) return ty;
      }
      return {};
    };
    for (std::size_t i = begin; i < end; ++i) {
      const Token& t = toks[i];
      if (t.kind != Token::Kind::kIdent) continue;
      if (!(i + 1 < end && is_punct(toks[i + 1], "("))) continue;
      if (is_keyword(t.text) || is_decl_keyword(t.text)) continue;
      bool growth = false;
      for (std::string_view g : kGrowthMembers) growth |= t.text == g;
      if (growth) continue;  // direct-side-effect check already owns these
      MacroArgCall mac;
      mac.code = rule.code;
      mac.macro = std::string(rule.name);
      mac.path = path_;
      mac.caller_class = class_name;
      mac.call.name = t.text;
      mac.call.line = t.line;
      mac.call.column = t.column;
      const bool prev_member =
          i > begin &&
          (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"));
      const bool prev_scope = i > begin && is_punct(toks[i - 1], "::");
      if (prev_member) {
        std::string obj;
        if (i >= begin + 2 && toks[i - 2].kind == Token::Kind::kIdent)
          obj = toks[i - 2].text;
        if (obj == "this") {
          mac.call.implicit_this = true;
        } else if (!obj.empty()) {
          const std::string ty = local_type_of(obj);
          if (!ty.empty()) {
            mac.call.object_type = ty;
          } else {
            mac.call.qualifier = "@member:" + class_name + "::" + obj;
          }
        }
      } else if (prev_scope) {
        std::vector<std::string> quals;
        std::size_t k = i - 1;
        while (k > begin && is_punct(toks[k], "::") &&
               toks[k - 1].kind == Token::Kind::kIdent) {
          quals.push_back(toks[k - 1].text);
          if (k < 2) break;
          k -= 2;
        }
        std::string q;
        for (auto it = quals.rbegin(); it != quals.rend(); ++it) {
          q += q.empty() ? *it : "::" + *it;
        }
        mac.call.qualifier = q;
      } else {
        mac.call.implicit_this = !class_name.empty();
      }
      model_->macro_arg_calls.push_back(std::move(mac));
    }
  }

  std::string path_;
  ProgramModel* model_;
  std::vector<std::string> namespaces_;
};

} // namespace

void build_token_model(std::string_view path, std::string_view text,
                       ProgramModel* model) {
  const std::vector<Token> toks = lex(text);
  Builder builder(path, model);
  builder.run(toks);
}

} // namespace quora::lint
