#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint_types.hpp"

namespace quora::lint {

/// One lexical token of a C++ source file. The lexer is deliberately
/// simple — it understands comments, string/char literals (including raw
/// strings), preprocessor lines, identifiers, numbers, and multi-character
/// operators — which is exactly enough for the token-level checks. It does
/// NOT expand macros or resolve types; that is the AST engine's job.
struct Token {
  enum class Kind : std::uint8_t { kIdent, kNumber, kString, kPunct };
  Kind kind = Kind::kPunct;
  std::string text;
  unsigned line = 1;
  unsigned column = 1;
};

/// Lexes `text` into tokens. Comments and whole preprocessor directives
/// (with `\` continuations) produce no tokens — so macro *definitions*
/// never trigger the checks, only macro *uses* do. Malformed input never
/// throws; the lexer resynchronizes at the next character.
std::vector<Token> lex(std::string_view text);

/// Inline suppressions:
///
///   sum += w;  // quora-lint: allow(L001) merge counter is obs-only state
///   // quora-lint: allow(L003,L004) wall-clock is reporting-only here
///   code_on_next_line();
///
/// An allow-comment suppresses matching findings on its own line and on
/// the line directly below it (so both trailing and comment-above styles
/// work). A reason after the closing parenthesis is required by
/// convention and checked: a bare `allow(...)` is reported as malformed.
struct Suppressions {
  /// line -> codes allowed on that line.
  std::map<unsigned, std::set<LintCode>> allowed;
  /// Malformed directives (a quora-lint marker that did not parse):
  /// (line, what-was-wrong). The driver reports these as hard errors so
  /// a typo can never silently un-suppress a finding.
  std::vector<std::pair<unsigned, std::string>> problems;

  bool allows(LintCode code, unsigned line) const;
};

/// Scans raw source text (not tokens — the directives live in comments)
/// for quora-lint suppression comments.
Suppressions scan_suppressions(std::string_view text);

/// Checked-in baseline of accepted findings, one per line:
///
///   # comment
///   L003<TAB>src/sim/simulator.cpp<TAB>42
///
/// Keys are (tag, path, line); paths are repo-relative with forward
/// slashes. Line numbers drift with edits by design: a baseline is a
/// burn-down list, not a permanent suppression (see
/// docs/STATIC_ANALYSIS.md — permanent exemptions belong in an inline
/// allow-comment with a reason).
class Baseline {
public:
  /// Parses baseline text. Malformed lines land in `problems`.
  static Baseline parse(std::string_view text,
                        std::vector<std::string>* problems);

  bool contains(const Finding& f) const;
  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

  /// Serializes `findings` (unsuppressed only) as baseline text, sorted.
  static std::string render(const std::vector<Finding>& findings);

private:
  std::set<std::string> entries_;  // "tag\tpath\tline"
};

} // namespace quora::lint
