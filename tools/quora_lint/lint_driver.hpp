#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "checks_token.hpp"
#include "lint_types.hpp"

namespace quora::lint {

struct DriverOptions {
  /// Files or directories to sweep (directories are walked recursively
  /// for .cpp/.cc/.hpp/.h). Empty means the default sweep: src, tools,
  /// bench under `root`.
  std::vector<std::string> paths;
  /// Repo root; findings report paths relative to it. Default: cwd.
  std::string root = ".";
  /// Directory holding compile_commands.json (AST engine only).
  std::string compdb_dir;
  /// Baseline file of accepted findings ("" = none).
  std::string baseline_path;
  /// Treat every file as in scope for every check (fixture tests).
  bool all_scopes = false;
};

/// Maps a repo-relative path (forward slashes) to the checks that apply:
///   L001/L002  everywhere;
///   L003       src/{sim,msg,core,conn,fault,dyn} — the layers the golden
///              transcripts replay;
///   L004       src/{fault,obs,report} — the modules that format
///              transcripts and reports;
///   L005       src/ minus src/obs (the layer's own internals are exempt).
CheckScope scope_for_path(std::string_view rel_path, bool all_scopes);

/// Expands `opts.paths` (or the default sweep set) into a sorted list of
/// repo-relative source files. Nonexistent inputs land in `problems`.
std::vector<std::string> collect_files(const DriverOptions& opts,
                                       std::vector<std::string>* problems);

struct RunResult {
  std::vector<Finding> findings;        // sorted; includes suppressed/baselined
  std::vector<std::string> problems;    // malformed suppressions, I/O errors —
                                        // hard failures, never ignorable
};

/// Runs the token engine over the file set: lexes each file, applies the
/// in-scope checks, then marks inline suppressions and baseline hits.
RunResult run_token_engine(const DriverOptions& opts);

/// Marks suppressions/baseline on externally produced findings (the AST
/// engine emits raw findings; this gives them the same treatment).
void apply_suppressions(const DriverOptions& opts, std::vector<Finding>* findings,
                        std::vector<std::string>* problems);

/// Sorts and removes duplicate (code, path, line) findings — the token and
/// AST engines overlap by design; one report line per defect.
void dedupe_findings(std::vector<Finding>* findings);

/// Reads a whole file; returns false (and fills `error`) on I/O failure.
bool read_file(const std::string& path, std::string* text, std::string* error);

} // namespace quora::lint
