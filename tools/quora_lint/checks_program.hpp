#pragma once

#include <vector>

#include "lint_types.hpp"
#include "program_model.hpp"

namespace quora::lint {

/// Runs the interprocedural checks over a populated program model.
/// Engine-agnostic: both the token and AST builders feed the same model
/// shape, so findings land at identical (code, path, line) keys and the
/// driver's dedupe merges the two engines' results.
///
///   L001/L002 (interprocedural): a call written inside a compiled-out
///             macro argument resolves to a function that transitively
///             mutates state (const member functions and
///             QUORA_ANALYSIS_BOUNDARY stop the traversal).
///   L003 (interprocedural): a call in an entropy-scoped file resolves
///             to a function that transitively reaches a forbidden
///             entropy source.
///   L006: an allocation fact in any function reachable from a
///             QUORA_HOT_PATH root (QUORA_ALLOC_OK bodies are exempt,
///             their callees are not).
///   L007: conflicting/misplaced shard annotations, and an entry point
///             of one domain reaching another domain's
///             QUORA_SHARD_LOCAL state.
///   L008: a mutable global/static that is neither const nor
///             QUORA_SHARD_SHARED, referenced from code reachable from
///             an annotated hot path or shard entry.
///
/// `all_scopes` mirrors DriverOptions::all_scopes (fixtures): it widens
/// the L003 caller-file scoping exactly like the per-file checks.
void run_program_checks(const ProgramModel& model, bool all_scopes,
                        std::vector<Finding>* out);

} // namespace quora::lint
