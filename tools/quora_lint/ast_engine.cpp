// Clang LibTooling frontend, compiled only with -DQUORA_LINT=ON.
//
// The token engine (checks_token.cpp) implements every check lexically;
// this engine re-runs L003/L004/L005 with real type information so that
// aliases (`using Map = std::unordered_map<...>`), members declared in a
// different file, and handle types the naming convention misses are all
// caught. Findings overlap with the token engine's by design; the driver
// dedupes on (code, path, line).

#include "ast_engine.hpp"

#include <filesystem>
#include <memory>
#include <string>

#include "clang/AST/ASTConsumer.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/ExprCXX.h"
#include "clang/AST/RecursiveASTVisitor.h"
#include "clang/AST/StmtCXX.h"
#include "clang/Frontend/CompilerInstance.h"
#include "clang/Frontend/FrontendAction.h"
#include "clang/Lex/Lexer.h"
#include "clang/Tooling/CompilationDatabase.h"
#include "clang/Tooling/Tooling.h"

namespace quora::lint {

namespace {

namespace fs = std::filesystem;

bool contains(llvm::StringRef haystack, llvm::StringRef needle) {
  return haystack.find(needle) != llvm::StringRef::npos;
}

class LintVisitor : public clang::RecursiveASTVisitor<LintVisitor> {
public:
  LintVisitor(clang::ASTContext& ctx, const DriverOptions& opts,
              std::vector<Finding>* out)
      : ctx_(ctx), opts_(opts), out_(out) {}

  bool VisitVarDecl(clang::VarDecl* d) {
    Location where;
    if (!locate(d->getLocation(), &where)) return true;
    if (!scope_for_path(where.path, opts_.all_scopes).entropy) return true;
    const std::string ty = d->getType().getCanonicalType().getAsString();
    for (const char* bad :
         {"random_device", "mersenne_twister_engine",
          "linear_congruential_engine", "subtract_with_carry_engine"}) {
      if (ty.find(bad) != std::string::npos) {
        report(LintCode::kL003ForbiddenEntropy, where,
               "declaration of '" + d->getNameAsString() + "' has type std::" +
                   bad +
                   " in a deterministic layer; all randomness must come from "
                   "the seeded rng:: xoshiro streams (src/rng)");
        break;
      }
    }
    return true;
  }

  bool VisitCallExpr(clang::CallExpr* e) {
    const clang::FunctionDecl* callee = e->getDirectCallee();
    if (callee == nullptr) return true;
    Location where;
    if (!locate(e->getBeginLoc(), &where)) return true;
    const CheckScope scope = scope_for_path(where.path, opts_.all_scopes);
    const std::string name = callee->getQualifiedNameAsString();
    if (scope.entropy) {
      const bool clock_now = name.rfind("std::chrono", 0) == 0 &&
                             name.find("clock::now") != std::string::npos;
      const bool c_entropy = name == "rand" || name == "srand" ||
                             name == "std::rand" || name == "std::srand" ||
                             name == "time" || name == "std::time" ||
                             name == "clock" || name == "std::clock";
      if (clock_now || c_entropy) {
        report(LintCode::kL003ForbiddenEntropy, where,
               "call to '" + name +
                   "' in a deterministic layer; all randomness and time must "
                   "come from the seeded rng:: streams and simulated clocks");
      }
    }
    if (scope.unordered && (name == "std::accumulate" ||
                            name == "std::reduce") &&
        e->getNumArgs() >= 1) {
      const clang::Expr* arg = e->getArg(0)->IgnoreImplicit();
      if (const auto* call = llvm::dyn_cast<clang::CXXMemberCallExpr>(arg)) {
        const clang::CXXMethodDecl* m = call->getMethodDecl();
        if (m != nullptr &&
            (m->getNameAsString() == "begin" ||
             m->getNameAsString() == "cbegin") &&
            is_unordered(call->getImplicitObjectArgument()->getType())) {
          report(LintCode::kL004UnorderedIteration, where,
                 "'" + name +
                     "' over an unordered container in transcript-feeding "
                     "code; iteration order is unspecified and breaks "
                     "byte-stable replays");
        }
      }
    }
    return true;
  }

  bool VisitCXXMemberCallExpr(clang::CXXMemberCallExpr* e) {
    const clang::CXXMethodDecl* m = e->getMethodDecl();
    if (m == nullptr) return true;
    const std::string name = m->getQualifiedNameAsString();
    const bool is_raw_obs = name == "quora::obs::TraceRecorder::record" ||
                            name == "quora::obs::TraceRecorder::record_at" ||
                            name == "quora::obs::Counter::add" ||
                            name == "quora::obs::Histogram::record" ||
                            name == "quora::obs::Gauge::set";
    if (!is_raw_obs) return true;
    const clang::SourceLocation loc = e->getExprLoc();
    // Calls written through the gating macros expand from QUORA_TRACE /
    // QUORA_METRIC_* / QUORA_OBS_ONLY; those are the sanctioned spellings.
    if (loc.isMacroID()) {
      const llvm::StringRef macro = clang::Lexer::getImmediateMacroName(
          loc, ctx_.getSourceManager(), ctx_.getLangOpts());
      if (macro.startswith("QUORA_")) return true;
    }
    Location where;
    if (!locate(loc, &where)) return true;
    if (!scope_for_path(where.path, opts_.all_scopes).raw_obs) return true;
    report(LintCode::kL005RawObsCall, where,
           "raw call to '" + name +
               "' bypasses the QUORA_OBS gate — use the QUORA_TRACE / "
               "QUORA_METRIC_* macros so the call vanishes in "
               "QUORA_OBS=OFF builds");
    return true;
  }

  bool VisitCXXForRangeStmt(clang::CXXForRangeStmt* s) {
    const clang::Expr* range = s->getRangeInit();
    if (range == nullptr) return true;
    Location where;
    if (!locate(s->getForLoc(), &where)) return true;
    if (!scope_for_path(where.path, opts_.all_scopes).unordered) return true;
    if (is_unordered(range->getType())) {
      report(LintCode::kL004UnorderedIteration, where,
             "range-for over an unordered container in transcript-feeding "
             "code; iteration order is unspecified and breaks byte-stable "
             "replays — use a sorted copy or an ordered container");
    }
    return true;
  }

private:
  struct Location {
    std::string path;
    unsigned line = 0;
    unsigned column = 0;
  };

  bool is_unordered(clang::QualType ty) const {
    const std::string s = ty.getNonReferenceType()
                              .getCanonicalType()
                              .getUnqualifiedType()
                              .getAsString();
    return s.find("unordered_map") != std::string::npos ||
           s.find("unordered_set") != std::string::npos ||
           s.find("unordered_multimap") != std::string::npos ||
           s.find("unordered_multiset") != std::string::npos;
  }

  /// Resolves a location to a repo-relative path; returns false for
  /// system headers and files outside the repo root.
  bool locate(clang::SourceLocation loc, Location* out) const {
    const clang::SourceManager& sm = ctx_.getSourceManager();
    const clang::SourceLocation exp = sm.getExpansionLoc(loc);
    if (exp.isInvalid() || sm.isInSystemHeader(exp)) return false;
    const clang::PresumedLoc p = sm.getPresumedLoc(exp);
    if (p.isInvalid()) return false;
    std::error_code ec;
    const fs::path abs = fs::weakly_canonical(fs::path(p.getFilename()), ec);
    const fs::path root = fs::weakly_canonical(fs::path(opts_.root), ec);
    fs::path rel = abs.lexically_relative(root);
    if (rel.empty() || *rel.begin() == "..") return false;
    out->path = rel.generic_string();
    out->line = p.getLine();
    out->column = p.getColumn();
    return true;
  }

  void report(LintCode code, const Location& where, std::string message) {
    Finding f;
    f.code = code;
    f.severity = LintSeverity::kError;
    f.path = where.path;
    f.line = where.line;
    f.column = where.column;
    f.message = std::move(message);
    out_->push_back(std::move(f));
  }

  clang::ASTContext& ctx_;
  const DriverOptions& opts_;
  std::vector<Finding>* out_;
};

class LintConsumer : public clang::ASTConsumer {
public:
  LintConsumer(const DriverOptions& opts, std::vector<Finding>* out)
      : opts_(opts), out_(out) {}
  void HandleTranslationUnit(clang::ASTContext& ctx) override {
    LintVisitor visitor(ctx, opts_, out_);
    visitor.TraverseDecl(ctx.getTranslationUnitDecl());
  }

private:
  const DriverOptions& opts_;
  std::vector<Finding>* out_;
};

class LintAction : public clang::ASTFrontendAction {
public:
  LintAction(const DriverOptions& opts, std::vector<Finding>* out)
      : opts_(opts), out_(out) {}
  std::unique_ptr<clang::ASTConsumer> CreateASTConsumer(
      clang::CompilerInstance&, llvm::StringRef) override {
    return std::make_unique<LintConsumer>(opts_, out_);
  }

private:
  const DriverOptions& opts_;
  std::vector<Finding>* out_;
};

class LintActionFactory : public clang::tooling::FrontendActionFactory {
public:
  LintActionFactory(const DriverOptions& opts, std::vector<Finding>* out)
      : opts_(opts), out_(out) {}
  std::unique_ptr<clang::FrontendAction> create() override {
    return std::make_unique<LintAction>(opts_, out_);
  }

private:
  const DriverOptions& opts_;
  std::vector<Finding>* out_;
};

} // namespace

bool ast_engine_available() { return true; }

bool run_ast_engine(const DriverOptions& opts,
                    const std::vector<std::string>& files,
                    std::vector<Finding>* out, std::string* error) {
  const std::string dir = opts.compdb_dir.empty() ? "." : opts.compdb_dir;
  std::string db_error;
  std::unique_ptr<clang::tooling::CompilationDatabase> db =
      clang::tooling::CompilationDatabase::autoDetectFromDirectory(dir,
                                                                   db_error);
  if (db == nullptr) {
    if (error != nullptr) {
      *error = "no compilation database in '" + dir + "': " + db_error +
               " (configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON, e.g. "
               "the 'lint' preset)";
    }
    return false;
  }
  // Run over the intersection of the requested sweep and the TUs the
  // database knows; headers are analyzed through the TUs including them.
  std::error_code ec;
  const fs::path root = fs::weakly_canonical(fs::path(opts.root), ec);
  std::vector<std::string> sources;
  for (const std::string& abs : db->getAllFiles()) {
    const fs::path rel =
        fs::weakly_canonical(fs::path(abs), ec).lexically_relative(root);
    if (rel.empty() || *rel.begin() == "..") continue;
    const std::string rel_str = rel.generic_string();
    bool wanted = false;
    for (const std::string& f : files) {
      if (f == rel_str) wanted = true;
    }
    if (wanted) sources.push_back(abs);
  }
  if (sources.empty()) {
    if (error != nullptr) {
      *error = "compilation database in '" + dir +
               "' has no entries for the requested paths";
    }
    return false;
  }
  clang::tooling::ClangTool tool(*db, sources);
  LintActionFactory factory(opts, out);
  const int rc = tool.run(&factory);
  if (rc != 0) {
    if (error != nullptr) {
      *error = "one or more translation units failed to parse (see "
               "diagnostics above)";
    }
    return false;
  }
  return true;
}

} // namespace quora::lint
