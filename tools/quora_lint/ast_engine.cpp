// Clang LibTooling frontend, compiled only with -DQUORA_LINT=ON.
//
// The token engine (checks_token.cpp) implements every check lexically;
// this engine re-runs L003/L004/L005 with real type information so that
// aliases (`using Map = std::unordered_map<...>`), members declared in a
// different file, and handle types the naming convention misses are all
// caught. Findings overlap with the token engine's by design; the driver
// dedupes on (code, path, line).

#include "ast_engine.hpp"

#include <array>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>

#include "checks_program.hpp"
#include "program_model.hpp"

#include "clang/AST/ASTConsumer.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/Attr.h"
#include "clang/AST/ExprCXX.h"
#include "clang/AST/RecursiveASTVisitor.h"
#include "clang/AST/StmtCXX.h"
#include "clang/Frontend/CompilerInstance.h"
#include "clang/Frontend/FrontendAction.h"
#include "clang/Lex/Lexer.h"
#include "clang/Tooling/CompilationDatabase.h"
#include "clang/Tooling/Tooling.h"

namespace quora::lint {

namespace {

namespace fs = std::filesystem;

class LintVisitor : public clang::RecursiveASTVisitor<LintVisitor> {
public:
  LintVisitor(clang::ASTContext& ctx, const DriverOptions& opts,
              std::vector<Finding>* out)
      : ctx_(ctx), opts_(opts), out_(out) {}

  bool VisitVarDecl(clang::VarDecl* d) {
    Location where;
    if (!locate(d->getLocation(), &where)) return true;
    if (!scope_for_path(where.path, opts_.all_scopes).entropy) return true;
    const std::string ty = d->getType().getCanonicalType().getAsString();
    for (const char* bad :
         {"random_device", "mersenne_twister_engine",
          "linear_congruential_engine", "subtract_with_carry_engine"}) {
      if (ty.find(bad) != std::string::npos) {
        report(LintCode::kL003ForbiddenEntropy, where,
               "declaration of '" + d->getNameAsString() + "' has type std::" +
                   bad +
                   " in a deterministic layer; all randomness must come from "
                   "the seeded rng:: xoshiro streams (src/rng)");
        break;
      }
    }
    return true;
  }

  bool VisitCallExpr(clang::CallExpr* e) {
    const clang::FunctionDecl* callee = e->getDirectCallee();
    if (callee == nullptr) return true;
    Location where;
    if (!locate(e->getBeginLoc(), &where)) return true;
    const CheckScope scope = scope_for_path(where.path, opts_.all_scopes);
    const std::string name = callee->getQualifiedNameAsString();
    if (scope.entropy) {
      const bool clock_now = name.rfind("std::chrono", 0) == 0 &&
                             name.find("clock::now") != std::string::npos;
      const bool c_entropy = name == "rand" || name == "srand" ||
                             name == "std::rand" || name == "std::srand" ||
                             name == "time" || name == "std::time" ||
                             name == "clock" || name == "std::clock";
      if (clock_now || c_entropy) {
        report(LintCode::kL003ForbiddenEntropy, where,
               "call to '" + name +
                   "' in a deterministic layer; all randomness and time must "
                   "come from the seeded rng:: streams and simulated clocks");
      }
    }
    if (scope.unordered && (name == "std::accumulate" ||
                            name == "std::reduce") &&
        e->getNumArgs() >= 1) {
      const clang::Expr* arg = e->getArg(0)->IgnoreImplicit();
      if (const auto* call = llvm::dyn_cast<clang::CXXMemberCallExpr>(arg)) {
        const clang::CXXMethodDecl* m = call->getMethodDecl();
        if (m != nullptr &&
            (m->getNameAsString() == "begin" ||
             m->getNameAsString() == "cbegin") &&
            is_unordered(call->getImplicitObjectArgument()->getType())) {
          report(LintCode::kL004UnorderedIteration, where,
                 "'" + name +
                     "' over an unordered container in transcript-feeding "
                     "code; iteration order is unspecified and breaks "
                     "byte-stable replays");
        }
      }
    }
    return true;
  }

  bool VisitCXXMemberCallExpr(clang::CXXMemberCallExpr* e) {
    const clang::CXXMethodDecl* m = e->getMethodDecl();
    if (m == nullptr) return true;
    const std::string name = m->getQualifiedNameAsString();
    const bool is_raw_obs = name == "quora::obs::TraceRecorder::record" ||
                            name == "quora::obs::TraceRecorder::record_at" ||
                            name == "quora::obs::Counter::add" ||
                            name == "quora::obs::Histogram::record" ||
                            name == "quora::obs::Gauge::set";
    if (!is_raw_obs) return true;
    const clang::SourceLocation loc = e->getExprLoc();
    // Calls written through the gating macros expand from QUORA_TRACE /
    // QUORA_METRIC_* / QUORA_OBS_ONLY; those are the sanctioned spellings.
    if (loc.isMacroID()) {
      const llvm::StringRef macro = clang::Lexer::getImmediateMacroName(
          loc, ctx_.getSourceManager(), ctx_.getLangOpts());
      if (macro.startswith("QUORA_")) return true;
    }
    Location where;
    if (!locate(loc, &where)) return true;
    if (!scope_for_path(where.path, opts_.all_scopes).raw_obs) return true;
    report(LintCode::kL005RawObsCall, where,
           "raw call to '" + name +
               "' bypasses the QUORA_OBS gate — use the QUORA_TRACE / "
               "QUORA_METRIC_* macros so the call vanishes in "
               "QUORA_OBS=OFF builds");
    return true;
  }

  bool VisitCXXForRangeStmt(clang::CXXForRangeStmt* s) {
    const clang::Expr* range = s->getRangeInit();
    if (range == nullptr) return true;
    Location where;
    if (!locate(s->getForLoc(), &where)) return true;
    if (!scope_for_path(where.path, opts_.all_scopes).unordered) return true;
    if (is_unordered(range->getType())) {
      report(LintCode::kL004UnorderedIteration, where,
             "range-for over an unordered container in transcript-feeding "
             "code; iteration order is unspecified and breaks byte-stable "
             "replays — use a sorted copy or an ordered container");
    }
    return true;
  }

private:
  struct Location {
    std::string path;
    unsigned line = 0;
    unsigned column = 0;
  };

  bool is_unordered(clang::QualType ty) const {
    const std::string s = ty.getNonReferenceType()
                              .getCanonicalType()
                              .getUnqualifiedType()
                              .getAsString();
    return s.find("unordered_map") != std::string::npos ||
           s.find("unordered_set") != std::string::npos ||
           s.find("unordered_multimap") != std::string::npos ||
           s.find("unordered_multiset") != std::string::npos;
  }

  /// Resolves a location to a repo-relative path; returns false for
  /// system headers and files outside the repo root.
  bool locate(clang::SourceLocation loc, Location* out) const {
    const clang::SourceManager& sm = ctx_.getSourceManager();
    const clang::SourceLocation exp = sm.getExpansionLoc(loc);
    if (exp.isInvalid() || sm.isInSystemHeader(exp)) return false;
    const clang::PresumedLoc p = sm.getPresumedLoc(exp);
    if (p.isInvalid()) return false;
    std::error_code ec;
    const fs::path abs = fs::weakly_canonical(fs::path(p.getFilename()), ec);
    const fs::path root = fs::weakly_canonical(fs::path(opts_.root), ec);
    fs::path rel = abs.lexically_relative(root);
    if (rel.empty() || *rel.begin() == "..") return false;
    out->path = rel.generic_string();
    out->line = p.getLine();
    out->column = p.getColumn();
    return true;
  }

  void report(LintCode code, const Location& where, std::string message) {
    Finding f;
    f.code = code;
    f.severity = LintSeverity::kError;
    f.path = where.path;
    f.line = where.line;
    f.column = where.column;
    f.message = std::move(message);
    out_->push_back(std::move(f));
  }

  clang::ASTContext& ctx_;
  const DriverOptions& opts_;
  std::vector<Finding>* out_;
};

// ---------------------------------------------------------------------
// Whole-program model builder (program_model.hpp). One ProgramModel
// accumulates across every TU in the compilation database — ClangTool
// runs them sequentially — and the shared interprocedural pass
// (checks_program.cpp) runs once at the end, exactly like the token
// engine's model pass, so both engines land findings on identical
// (code, path, line) keys.
// ---------------------------------------------------------------------

/// Resolves a location to a repo-relative path; returns false for system
/// headers and files outside the repo root. (Free-function twin of
/// LintVisitor::locate for use by the model builder.)
struct ModelLocation {
  std::string path;
  unsigned line = 0;
  unsigned column = 0;
};

bool locate_in_root(const clang::SourceManager& sm, const std::string& root,
                    clang::SourceLocation loc, ModelLocation* out) {
  const clang::SourceLocation exp = sm.getExpansionLoc(loc);
  if (exp.isInvalid() || sm.isInSystemHeader(exp)) return false;
  const clang::PresumedLoc p = sm.getPresumedLoc(exp);
  if (p.isInvalid()) return false;
  std::error_code ec;
  const fs::path abs = fs::weakly_canonical(fs::path(p.getFilename()), ec);
  const fs::path root_path = fs::weakly_canonical(fs::path(root), ec);
  fs::path rel = abs.lexically_relative(root_path);
  if (rel.empty() || *rel.begin() == "..") return false;
  out->path = rel.generic_string();
  out->line = p.getLine();
  out->column = p.getColumn();
  return true;
}

/// True when `loc` expands from one of the repo's QUORA_* macros. The
/// perf baseline is the QUORA_OBS=OFF build, and contracts compile out
/// of Release: code that exists only inside those macros must not feed
/// the hot-path/shard analysis (the L001/L002 token checks own what
/// happens inside compiled-out arguments).
bool in_quora_macro(const clang::SourceManager& sm,
                    const clang::LangOptions& lang_opts,
                    clang::SourceLocation loc) {
  while (loc.isMacroID()) {
    const llvm::StringRef macro =
        clang::Lexer::getImmediateMacroName(loc, sm, lang_opts);
    if (macro.startswith("QUORA_")) return true;
    loc = sm.getImmediateMacroCallerLoc(loc);
  }
  return false;
}

// Mirrors token_model.cpp: bare `push`/`pop` deliberately absent (the
// 4-ary heap API shares those names and is non-allocating).
constexpr std::array<llvm::StringLiteral, 12> kGrowthMembers = {
    llvm::StringLiteral("push_back"),     llvm::StringLiteral("emplace_back"),
    llvm::StringLiteral("push_front"),    llvm::StringLiteral("emplace_front"),
    llvm::StringLiteral("insert"),        llvm::StringLiteral("emplace"),
    llvm::StringLiteral("emplace_hint"),  llvm::StringLiteral("resize"),
    llvm::StringLiteral("reserve"),       llvm::StringLiteral("shrink_to_fit"),
    llvm::StringLiteral("append"),        llvm::StringLiteral("assign")};

/// Applies one "quora::..." annotation string to a function node.
void apply_func_annotation(llvm::StringRef ann, FuncNode* node) {
  if (ann == "quora::hot_path") node->hot_path = true;
  if (ann == "quora::analysis_boundary") node->boundary = true;
  if (ann == "quora::alloc_ok") node->alloc_ok = true;
  if (ann.startswith("quora::shard_entry:") && node->entry_domain.empty()) {
    node->entry_domain = ann.substr(strlen("quora::shard_entry:")).str();
  }
}

void apply_var_annotation(llvm::StringRef ann, VarNode* node) {
  if (ann == "quora::shard_shared") node->shard_shared = true;
  if (ann.startswith("quora::shard_local:")) {
    node->shard_local = true;
    node->local_domain = ann.substr(strlen("quora::shard_local:")).str();
  }
}

class ModelVisitor : public clang::RecursiveASTVisitor<ModelVisitor> {
public:
  ModelVisitor(clang::ASTContext& ctx, const DriverOptions& opts,
               ProgramModel* model)
      : ctx_(ctx), opts_(opts), model_(model) {}

  bool VisitFunctionDecl(clang::FunctionDecl* d) {
    // While a body is being traversed manually (current_ set), skip nested
    // definitions (local classes): interning one could reallocate
    // model_->funcs under current_. The automatic child traversal revisits
    // the same declaration afterwards with current_ == nullptr and interns
    // it then.
    if (current_ != nullptr) return true;
    if (!d->isThisDeclarationADefinition() || d->isImplicit()) return true;
    if (const auto* m = llvm::dyn_cast<clang::CXXMethodDecl>(d)) {
      // Lambda bodies are scanned as part of their enclosing function,
      // matching the token engine's attribution.
      if (m->getParent()->isLambda()) return true;
    }
    ModelLocation where;
    if (!locate_in_root(ctx_.getSourceManager(), opts_.root, d->getLocation(),
                        &where)) {
      return true;
    }
    FuncNode* node = intern_func(d->getQualifiedNameAsString());
    node->name = d->getNameAsString();
    if (const auto* m = llvm::dyn_cast<clang::CXXMethodDecl>(d)) {
      node->class_name = m->getParent()->getQualifiedNameAsString();
      node->is_const = node->is_const || m->isConst();
    }
    for (const clang::FunctionDecl* rd : d->redecls()) {
      for (const auto* attr : rd->specific_attrs<clang::AnnotateAttr>()) {
        apply_func_annotation(attr->getAnnotation(), node);
      }
    }
    if (node->has_body) return true;  // inline body already seen in another TU
    node->has_body = true;
    node->path = where.path;
    node->line = where.line;
    node->column = where.column;
    current_ = node;
    if (const auto* ctor = llvm::dyn_cast<clang::CXXConstructorDecl>(d)) {
      for (const clang::CXXCtorInitializer* init : ctor->inits()) {
        if (init->getInit() != nullptr) TraverseStmt(init->getInit());
      }
    }
    TraverseStmt(d->getBody());
    current_ = nullptr;
    return true;
  }

  bool VisitFieldDecl(clang::FieldDecl* d) {
    bool annotated = false;
    for (const auto* attr : d->specific_attrs<clang::AnnotateAttr>()) {
      annotated |= llvm::StringRef(attr->getAnnotation()).startswith("quora::");
    }
    if (annotated) intern_field(d);
    return true;
  }

  bool VisitVarDecl(clang::VarDecl* d) {
    if (!d->hasGlobalStorage()) return true;
    ModelLocation where;
    if (!locate_in_root(ctx_.getSourceManager(), opts_.root, d->getLocation(),
                        &where)) {
      return true;
    }
    intern_global(d);
    return true;
  }

  // --- body facts / calls / refs (only fire while current_ is set) ---

  bool VisitCXXNewExpr(clang::CXXNewExpr* e) {
    add_alloc_fact(e->getBeginLoc(), "'new' expression");
    return true;
  }
  bool VisitCXXDeleteExpr(clang::CXXDeleteExpr* e) {
    add_alloc_fact(e->getBeginLoc(), "'delete' expression");
    return true;
  }

  bool VisitCXXMemberCallExpr(clang::CXXMemberCallExpr* e) {
    if (current_ == nullptr) return true;
    const clang::CXXMethodDecl* m = e->getMethodDecl();
    if (m == nullptr) return true;
    const std::string name = m->getNameAsString();
    for (llvm::StringRef growth : kGrowthMembers) {
      if (name == growth) {
        add_alloc_fact(e->getExprLoc(), "container growth call '" + name + "'");
        return true;  // no call edge, mirroring the token engine
      }
    }
    return true;
  }

  bool VisitCallExpr(clang::CallExpr* e) {
    if (current_ == nullptr) return true;
    const clang::FunctionDecl* callee = e->getDirectCallee();
    if (callee == nullptr) return true;
    const std::string qualified = callee->getQualifiedNameAsString();
    const clang::SourceLocation loc = e->getExprLoc();
    if (in_quora_macro(ctx_.getSourceManager(), ctx_.getLangOpts(), loc))
      return true;
    ModelLocation where;
    if (!locate_in_root(ctx_.getSourceManager(), opts_.root, loc, &where))
      return true;
    if (qualified == "std::to_string") {
      add_alloc_fact(loc, "std::to_string call");
      return true;
    }
    if (const auto* m = llvm::dyn_cast<clang::CXXMethodDecl>(callee)) {
      const std::string name = m->getNameAsString();
      for (llvm::StringRef growth : kGrowthMembers) {
        if (name == growth) return true;  // handled as an allocation fact
      }
    }
    // Entropy facts (the direct L003 checks also report these; the model
    // needs them as chain leaves for call sites in *other* functions).
    const bool clock_now = qualified.rfind("std::chrono", 0) == 0 &&
                           qualified.find("clock::now") != std::string::npos;
    const bool c_entropy = qualified == "rand" || qualified == "srand" ||
                           qualified == "std::rand" ||
                           qualified == "std::srand" || qualified == "time" ||
                           qualified == "std::time" || qualified == "clock" ||
                           qualified == "std::clock";
    if (clock_now || c_entropy) {
      Fact f;
      f.kind = FactKind::kEntropy;
      f.line = where.line;
      f.column = where.column;
      f.detail = "'" + qualified + "' call";
      current_->facts.push_back(std::move(f));
      return true;
    }
    CallSite call;
    call.resolved = qualified;
    call.name = callee->getNameAsString();
    call.line = where.line;
    call.column = where.column;
    current_->calls.push_back(std::move(call));
    return true;
  }

  bool VisitDeclRefExpr(clang::DeclRefExpr* e) {
    if (current_ == nullptr) return true;
    const auto* vd = llvm::dyn_cast<clang::VarDecl>(e->getDecl());
    if (vd == nullptr || !vd->hasGlobalStorage()) return true;
    const clang::SourceLocation loc = e->getLocation();
    if (in_quora_macro(ctx_.getSourceManager(), ctx_.getLangOpts(), loc))
      return true;
    const VarNode* node = intern_global(vd);
    if (node == nullptr) return true;
    ModelLocation where;
    if (!locate_in_root(ctx_.getSourceManager(), opts_.root, loc, &where))
      return true;
    VarRef ref;
    ref.resolved = node->qualified;
    ref.name = vd->getNameAsString();
    ref.line = where.line;
    ref.column = where.column;
    current_->var_refs.push_back(std::move(ref));
    return true;
  }

  bool VisitMemberExpr(clang::MemberExpr* e) {
    if (current_ == nullptr) return true;
    const auto* fd = llvm::dyn_cast<clang::FieldDecl>(e->getMemberDecl());
    if (fd == nullptr) return true;
    bool annotated = false;
    for (const auto* attr : fd->specific_attrs<clang::AnnotateAttr>()) {
      annotated |= llvm::StringRef(attr->getAnnotation()).startswith("quora::");
    }
    if (!annotated) return true;
    const clang::SourceLocation loc = e->getMemberLoc();
    if (in_quora_macro(ctx_.getSourceManager(), ctx_.getLangOpts(), loc))
      return true;
    const VarNode* node = intern_field(fd);
    if (node == nullptr) return true;
    ModelLocation where;
    if (!locate_in_root(ctx_.getSourceManager(), opts_.root, loc, &where))
      return true;
    VarRef ref;
    ref.resolved = node->qualified;
    ref.name = fd->getNameAsString();
    ref.line = where.line;
    ref.column = where.column;
    current_->var_refs.push_back(std::move(ref));
    return true;
  }

private:
  FuncNode* intern_func(const std::string& qualified) {
    for (FuncNode& f : model_->funcs) {
      if (f.qualified == qualified) return &f;
    }
    FuncNode node;
    node.qualified = qualified;
    model_->funcs.push_back(std::move(node));
    return &model_->funcs.back();
  }

  VarNode* intern_var_key(const std::string& key) {
    for (VarNode& v : model_->vars) {
      if (v.qualified == key) return &v;
    }
    VarNode node;
    node.qualified = key;
    model_->vars.push_back(std::move(node));
    return &model_->vars.back();
  }

  /// Key that stays unique for same-named static locals in different
  /// functions yet stable across TUs (the canonical declaration's
  /// location is the same wherever the header is included).
  VarNode* intern_global(const clang::VarDecl* d) {
    const clang::VarDecl* canon = d->getCanonicalDecl();
    ModelLocation where;
    if (!locate_in_root(ctx_.getSourceManager(), opts_.root,
                        canon->getLocation(), &where)) {
      return nullptr;
    }
    std::string key = canon->getQualifiedNameAsString();
    if (canon->isStaticLocal()) {
      key += "@" + where.path + ":" + std::to_string(where.line);
    }
    VarNode* node = intern_var_key(key);
    node->name = canon->getNameAsString();
    node->path = where.path;
    node->line = where.line;
    node->column = where.column;
    node->static_storage = true;
    node->is_const = canon->getType().isConstQualified() ||
                     canon->isConstexpr();
    for (const clang::VarDecl* rd : canon->redecls()) {
      for (const auto* attr : rd->specific_attrs<clang::AnnotateAttr>()) {
        apply_var_annotation(attr->getAnnotation(), node);
      }
    }
    return node;
  }

  VarNode* intern_field(const clang::FieldDecl* d) {
    ModelLocation where;
    if (!locate_in_root(ctx_.getSourceManager(), opts_.root, d->getLocation(),
                        &where)) {
      return nullptr;
    }
    VarNode* node = intern_var_key(d->getQualifiedNameAsString());
    node->name = d->getNameAsString();
    node->class_name = d->getParent()->getQualifiedNameAsString();
    node->path = where.path;
    node->line = where.line;
    node->column = where.column;
    node->is_const = d->getType().isConstQualified();
    for (const auto* attr : d->specific_attrs<clang::AnnotateAttr>()) {
      apply_var_annotation(attr->getAnnotation(), node);
    }
    return node;
  }

  void add_alloc_fact(clang::SourceLocation loc, std::string detail) {
    if (current_ == nullptr) return;
    if (in_quora_macro(ctx_.getSourceManager(), ctx_.getLangOpts(), loc))
      return;
    ModelLocation where;
    if (!locate_in_root(ctx_.getSourceManager(), opts_.root, loc, &where))
      return;
    Fact f;
    f.kind = FactKind::kAllocation;
    f.line = where.line;
    f.column = where.column;
    f.detail = std::move(detail);
    current_->facts.push_back(std::move(f));
  }

  clang::ASTContext& ctx_;
  const DriverOptions& opts_;
  ProgramModel* model_;
  FuncNode* current_ = nullptr;
};

class LintConsumer : public clang::ASTConsumer {
public:
  LintConsumer(const DriverOptions& opts, std::vector<Finding>* out,
               ProgramModel* model)
      : opts_(opts), out_(out), model_(model) {}
  void HandleTranslationUnit(clang::ASTContext& ctx) override {
    LintVisitor visitor(ctx, opts_, out_);
    visitor.TraverseDecl(ctx.getTranslationUnitDecl());
    ModelVisitor model_visitor(ctx, opts_, model_);
    model_visitor.TraverseDecl(ctx.getTranslationUnitDecl());
  }

private:
  const DriverOptions& opts_;
  std::vector<Finding>* out_;
  ProgramModel* model_;
};

class LintAction : public clang::ASTFrontendAction {
public:
  LintAction(const DriverOptions& opts, std::vector<Finding>* out,
             ProgramModel* model)
      : opts_(opts), out_(out), model_(model) {}
  std::unique_ptr<clang::ASTConsumer> CreateASTConsumer(
      clang::CompilerInstance&, llvm::StringRef) override {
    return std::make_unique<LintConsumer>(opts_, out_, model_);
  }

private:
  const DriverOptions& opts_;
  std::vector<Finding>* out_;
  ProgramModel* model_;
};

class LintActionFactory : public clang::tooling::FrontendActionFactory {
public:
  LintActionFactory(const DriverOptions& opts, std::vector<Finding>* out,
                    ProgramModel* model)
      : opts_(opts), out_(out), model_(model) {}
  std::unique_ptr<clang::FrontendAction> create() override {
    return std::make_unique<LintAction>(opts_, out_, model_);
  }

private:
  const DriverOptions& opts_;
  std::vector<Finding>* out_;
  ProgramModel* model_;
};

} // namespace

bool ast_engine_available() { return true; }

bool run_ast_engine(const DriverOptions& opts,
                    const std::vector<std::string>& files,
                    std::vector<Finding>* out, std::string* error) {
  const std::string dir = opts.compdb_dir.empty() ? "." : opts.compdb_dir;
  std::string db_error;
  std::unique_ptr<clang::tooling::CompilationDatabase> db =
      clang::tooling::CompilationDatabase::autoDetectFromDirectory(dir,
                                                                   db_error);
  if (db == nullptr) {
    if (error != nullptr) {
      *error = "no compilation database in '" + dir + "': " + db_error +
               " (configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON, e.g. "
               "the 'lint' preset)";
    }
    return false;
  }
  // Run over the intersection of the requested sweep and the TUs the
  // database knows; headers are analyzed through the TUs including them.
  std::error_code ec;
  const fs::path root = fs::weakly_canonical(fs::path(opts.root), ec);
  std::vector<std::string> sources;
  for (const std::string& abs : db->getAllFiles()) {
    const fs::path rel =
        fs::weakly_canonical(fs::path(abs), ec).lexically_relative(root);
    if (rel.empty() || *rel.begin() == "..") continue;
    const std::string rel_str = rel.generic_string();
    bool wanted = false;
    for (const std::string& f : files) {
      if (f == rel_str) wanted = true;
    }
    if (wanted) sources.push_back(abs);
  }
  if (sources.empty()) {
    if (error != nullptr) {
      *error = "compilation database in '" + dir +
               "' has no entries for the requested paths";
    }
    return false;
  }
  clang::tooling::ClangTool tool(*db, sources);
  ProgramModel model;
  LintActionFactory factory(opts, out, &model);
  const int rc = tool.run(&factory);
  if (rc != 0) {
    if (error != nullptr) {
      *error = "one or more translation units failed to parse (see "
               "diagnostics above)";
    }
    return false;
  }
  // The per-TU visitors populated one shared model; the interprocedural
  // checks run over the merged call graph exactly once.
  run_program_checks(model, opts.all_scopes, out);
  return true;
}

} // namespace quora::lint
