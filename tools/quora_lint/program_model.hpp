#pragma once

// Whole-program model shared by the two lint engines.
//
// Both engines populate the same structures — the AST engine from Clang
// declarations across every TU in compile_commands.json, the token
// engine from a conservative function-definition/call-site scan of the
// swept files — and one shared pass (checks_program.cpp) runs the
// interprocedural checks over the result. Keeping the model and the
// checks engine-agnostic is what lets the fixtures demand identical
// (code, path, line) findings from both engines: only the *builders*
// differ in fidelity, documented in docs/STATIC_ANALYSIS.md.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "lint_types.hpp"

namespace quora::lint {

enum class FactKind : std::uint8_t {
  kAllocation,  // new/delete, container growth member call, std::to_string
  kMutation,    // state write that survives macro removal (L001/L002 chains)
  kEntropy,     // forbidden entropy source (L003 chains)
};

/// One thing a function body does, at a source position.
struct Fact {
  FactKind kind = FactKind::kMutation;
  unsigned line = 0;
  unsigned column = 0;
  std::string detail;  // human fragment, e.g. "container growth 'push_back'"
};

/// One call site inside a function body. `resolved` carries the fully
/// qualified callee when the builder could resolve it (always, for the
/// AST engine); the remaining fields are the token engine's resolution
/// hints, consumed by the shared resolver in checks_program.cpp.
struct CallSite {
  std::string resolved;     // qualified callee name ("" = unresolved)
  std::string name;         // bare callee name, always set
  std::string qualifier;    // explicit qualifier as written ("std", "rng", ...)
  std::string object_type;  // type of `x` in `x.f()` / `x->f()`, when known
  bool implicit_this = false;  // unqualified call inside a member function
  unsigned line = 0;
  unsigned column = 0;
};

/// One reference to a variable the checks may care about (globals,
/// statics, annotated members).
struct VarRef {
  std::string resolved;  // qualified variable name ("" = unresolved)
  std::string name;      // bare name, always set
  bool member_hint = false;  // token engine: looks like an enclosing-class
                             // member (trailing-underscore convention)
  unsigned line = 0;
  unsigned column = 0;
};

/// One function definition.
struct FuncNode {
  std::string qualified;   // e.g. "quora::sim::EventQueue::push"
  std::string name;        // bare name, e.g. "push"
  std::string class_name;  // enclosing record ("" for free functions)
  std::string path;        // repo-relative definition file
  unsigned line = 0;
  unsigned column = 0;
  bool is_const = false;   // const member function — purity barrier for
                           // the L001/L002 side-effect summaries
  bool has_body = false;   // definition seen (declaration-only nodes carry
                           // annotations for the merge, nothing else)
  // Annotations (src/core/analysis_annotations.hpp):
  bool hot_path = false;       // QUORA_HOT_PATH
  bool boundary = false;       // QUORA_ANALYSIS_BOUNDARY
  bool alloc_ok = false;       // QUORA_ALLOC_OK
  std::string entry_domain;    // QUORA_SHARD_ENTRY(domain), "" if absent

  std::vector<Fact> facts;
  std::vector<CallSite> calls;
  std::vector<VarRef> var_refs;
};

/// One variable with static storage or a shard annotation.
struct VarNode {
  std::string qualified;   // e.g. "quora::msg::Cluster::queue_"
  std::string name;        // bare name
  std::string class_name;  // enclosing record ("" for globals/statics)
  std::string path;
  unsigned line = 0;
  unsigned column = 0;
  bool is_const = false;        // const/constexpr — always allowed
  bool static_storage = false;  // global, static local, or static member
  bool shard_shared = false;    // QUORA_SHARD_SHARED
  bool shard_local = false;     // QUORA_SHARD_LOCAL(domain)
  std::string local_domain;     // the domain argument, "" unless shard_local
};

/// A call written inside a compiled-out macro argument (QUORA_TRACE /
/// QUORA_METRIC_* → L001, contracts → L002). Token engine only: the AST
/// engine cannot see arguments the preprocessor removed, which is why
/// the token model always runs underneath the AST engine.
struct MacroArgCall {
  LintCode code = LintCode::kL001SideEffectObsArg;
  std::string macro;         // macro name for the message
  std::string path;          // caller file (the finding's location)
  std::string caller_class;  // enclosing record for implicit-this resolution
  CallSite call;
};

struct ProgramModel {
  std::vector<FuncNode> funcs;
  std::vector<VarNode> vars;
  std::vector<MacroArgCall> macro_arg_calls;
  /// Token engine only: (class-qualified member name -> declared type),
  /// e.g. "quora::sim::Simulator::live_" -> "conn::LiveNetwork", for
  /// resolving `x.f()` receivers after every file has been scanned.
  std::map<std::string, std::string> member_types;
};

} // namespace quora::lint
