#pragma once

#include <string_view>

#include "program_model.hpp"

namespace quora::lint {

/// Scans one file's tokens into the whole-program model: function
/// definitions/declarations (merged by qualified name across files),
/// annotated members and namespace-scope variables, body facts
/// (allocations, mutations, entropy), call sites with resolution hints,
/// and calls written inside compiled-out macro arguments.
///
/// The scan is lexical and therefore approximate; its known blind spots
/// (templates instantiated elsewhere, overload sets, mutation through
/// references) are documented in docs/STATIC_ANALYSIS.md. The fixture
/// suite pins the cases it must not miss.
void build_token_model(std::string_view path, std::string_view text,
                       ProgramModel* model);

} // namespace quora::lint
