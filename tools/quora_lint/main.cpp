// quora_lint — semantic linter for the repo's determinism and
// macro-discipline invariants (docs/STATIC_ANALYSIS.md).
//
//   quora_lint [options] [PATH...]
//
// PATHs are files or directories (walked recursively for C++ sources);
// the default sweep is src/, tools/, and bench/ under --root. Two
// engines implement the checks: the always-available token engine
// (lexical, macro- and type-blind) and, when built with -DQUORA_LINT=ON,
// a Clang LibTooling engine that re-runs L003–L005 with real type
// information over compile_commands.json. Both engines additionally
// feed a whole-program model (call graph + annotation vocabulary of
// src/core/analysis_annotations.hpp) whose interprocedural pass makes
// L001–L003 transitive and implements L006–L008. Findings:
//
//   L001  side effect in a QUORA_TRACE / QUORA_METRIC_* argument
//   L002  side effect in a QUORA_ASSERT / INVARIANT / PRECONDITION
//   L003  forbidden entropy source in a deterministic layer
//   L004  unordered-container iteration in transcript-feeding code
//   L005  raw obs call bypassing the QUORA_OBS gating macros
//   L006  heap allocation reachable from a QUORA_HOT_PATH root
//   L007  cross-shard state reach / shard-annotation misuse
//   L008  undeclared mutable global on an annotated hot path
//   L009  raw concurrency primitive in a protocol layer
//
// Exit status mirrors quora_check: 0 clean, 1 unsuppressed findings,
// 2 usage/I-O problems or malformed suppression comments.

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "ast_engine.hpp"
#include "io/config_audit.hpp"
#include "lint_driver.hpp"
#include "lint_types.hpp"
#include "source_scan.hpp"

namespace {

using namespace quora::lint;

constexpr LintCode kAllCodes[] = {
    LintCode::kL001SideEffectObsArg, LintCode::kL002SideEffectContractArg,
    LintCode::kL003ForbiddenEntropy, LintCode::kL004UnorderedIteration,
    LintCode::kL005RawObsCall,       LintCode::kL006HotPathAllocation,
    LintCode::kL007CrossShardState,  LintCode::kL008UnsharedGlobalState,
    LintCode::kL009RawConcurrencyPrimitive};
static_assert(sizeof(kAllCodes) / sizeof(kAllCodes[0]) == kLintCodeCount,
              "keep kAllCodes in sync with the LintCode taxonomy");

[[noreturn]] void usage(int status) {
  (status == 0 ? std::cout : std::cerr)
      << "usage: quora_lint [options] [PATH...]\n"
         "  --engine=token|ast   force an engine (default: ast when built "
         "in, else token)\n"
         "  --json[=FILE]        machine-readable findings (default stdout)\n"
         "  --sarif FILE         also write findings as SARIF 2.1.0 (code "
         "scanning)\n"
         "  --baseline FILE      accepted-findings file; matches don't fail "
         "the run\n"
         "  --write-baseline FILE  write current unsuppressed findings and "
         "exit 0\n"
         "  --compdb DIR         directory with compile_commands.json (ast "
         "engine)\n"
         "  --root DIR           repo root for relative paths (default .)\n"
         "  --all-scopes         apply every check to every file (fixtures)\n"
         "  --show-suppressed    include suppressed/baselined findings in "
         "output\n"
         "  --list-checks        print the check table and exit\n"
         "  --quiet              no summary line on stderr\n";
  std::exit(status);
}

void list_checks() {
  for (const LintCode c : kAllCodes) {
    std::cout << lint_code_tag(c) << "  " << lint_code_name(c) << "\n      "
              << lint_code_summary(c) << '\n';
  }
}

/// Findings as SARIF 2.1.0 through the shared io writer; suppressed and
/// baselined findings never reach the code-scanning feed.
bool write_sarif_file(const std::string& path,
                      const std::vector<Finding>& findings) {
  std::vector<quora::io::SarifRule> rules;
  for (const LintCode c : kAllCodes) {
    quora::io::SarifRule rule;
    rule.id = lint_code_tag(c);
    rule.name = lint_code_name(c);
    rule.short_description = lint_code_summary(c);
    rules.push_back(std::move(rule));
  }
  std::vector<quora::io::SarifResult> results;
  for (const Finding& f : findings) {
    if (f.suppressed || f.baselined) continue;
    quora::io::SarifResult r;
    r.rule_id = lint_code_tag(f.code);
    r.level = f.severity == LintSeverity::kError ? "error" : "warning";
    r.message = f.message;
    r.path = f.path;
    r.line = f.line;
    r.column = f.column;
    results.push_back(std::move(r));
  }
  std::ofstream out(path);
  if (!out) return false;
  quora::io::write_sarif(out, "quora_lint", "", rules, results);
  return true;
}

} // namespace

int main(int argc, char** argv) {
  DriverOptions opts;
  bool json = false;
  std::string json_path;
  std::string sarif_path;
  std::string write_baseline_path;
  std::string engine = ast_engine_available() ? "ast" : "token";
  bool show_suppressed = false;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::string {
      if (++i >= argc) {
        std::cerr << "quora_lint: " << flag << " needs a value\n";
        usage(2);
      }
      return argv[i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(0);
    } else if (arg == "--list-checks") {
      list_checks();
      return 0;
    } else if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json = true;
      json_path = arg.substr(7);
    } else if (arg == "--sarif") {
      sarif_path = value("--sarif");
    } else if (arg.rfind("--engine=", 0) == 0) {
      engine = arg.substr(9);
      if (engine != "token" && engine != "ast") {
        std::cerr << "quora_lint: unknown engine '" << engine << "'\n";
        usage(2);
      }
    } else if (arg == "--baseline") {
      opts.baseline_path = value("--baseline");
    } else if (arg == "--write-baseline") {
      write_baseline_path = value("--write-baseline");
    } else if (arg == "--compdb") {
      opts.compdb_dir = value("--compdb");
    } else if (arg == "--root") {
      opts.root = value("--root");
    } else if (arg == "--all-scopes") {
      opts.all_scopes = true;
    } else if (arg == "--show-suppressed") {
      show_suppressed = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "quora_lint: unknown option " << arg << '\n';
      usage(2);
    } else {
      opts.paths.push_back(arg);
    }
  }

  // The token engine always runs: L001/L002 are lexical by nature (the
  // whole point is what the preprocessor removes), and its L003–L005
  // approximations catch most defects without any build. The AST engine
  // layers type-resolved findings on top; dedupe keeps one line each.
  RunResult result = run_token_engine(opts);
  if (engine == "ast") {
    std::vector<std::string> dummy;
    const std::vector<std::string> files = collect_files(opts, &dummy);
    std::string error;
    std::vector<Finding> ast_findings;
    if (!run_ast_engine(opts, files, &ast_findings, &error)) {
      std::cerr << "quora_lint: ast engine: " << error << '\n';
      return 2;
    }
    apply_suppressions(opts, &ast_findings, &result.problems);
    result.findings.insert(result.findings.end(), ast_findings.begin(),
                           ast_findings.end());
    dedupe_findings(&result.findings);
  }

  for (const std::string& p : result.problems) {
    std::cerr << "quora_lint: " << p << '\n';
  }

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path);
    if (!out) {
      std::cerr << "quora_lint: cannot write " << write_baseline_path << '\n';
      return 2;
    }
    out << Baseline::render(result.findings);
    std::cerr << "quora_lint: wrote baseline (" << unsuppressed_count(result.findings)
              << " entries) to " << write_baseline_path << '\n';
    return result.problems.empty() ? 0 : 2;
  }

  if (!sarif_path.empty() && !write_sarif_file(sarif_path, result.findings)) {
    std::cerr << "quora_lint: cannot write " << sarif_path << '\n';
    return 2;
  }

  if (json) {
    if (!json_path.empty()) {
      std::ofstream out(json_path);
      if (!out) {
        std::cerr << "quora_lint: cannot write " << json_path << '\n';
        return 2;
      }
      write_findings_json(out, result.findings, show_suppressed);
    } else {
      write_findings_json(std::cout, result.findings, show_suppressed);
    }
  } else {
    write_findings_text(std::cout, result.findings, show_suppressed);
  }

  const std::size_t open = unsuppressed_count(result.findings);
  if (!quiet) {
    std::cerr << "quora_lint: " << engine << " engine, "
              << result.findings.size() << " finding(s), " << open
              << " unsuppressed\n";
  }
  if (!result.problems.empty()) return 2;
  return open == 0 ? 0 : 1;
}
