#include "source_scan.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <sstream>

namespace quora::lint {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Multi-character operators, longest first so greedy matching works.
constexpr std::array<std::string_view, 25> kMultiPunct = {
    "<<=", ">>=", "<=>", "->*", "...", "::", "->", "++", "--",
    "<<",  ">>",  "<=",  ">=",  "==",  "!=", "&&", "||", "+=",
    "-=",  "*=",  "/=",  "%=",  "&=",  "|=", "^=",
};

struct Cursor {
  std::string_view text;
  std::size_t i = 0;
  unsigned line = 1;
  unsigned column = 1;

  bool done() const { return i >= text.size(); }
  char peek(std::size_t ahead = 0) const {
    return i + ahead < text.size() ? text[i + ahead] : '\0';
  }
  void advance() {
    if (done()) return;
    if (text[i] == '\n') {
      ++line;
      column = 1;
    } else {
      ++column;
    }
    ++i;
  }
  void advance_n(std::size_t n) {
    for (std::size_t k = 0; k < n; ++k) advance();
  }
};

/// Consumes a quoted literal starting at the opening quote. Handles
/// escapes; raw strings are handled by the caller before reaching here.
void skip_quoted(Cursor& c, char quote) {
  c.advance();  // opening quote
  while (!c.done()) {
    const char ch = c.peek();
    if (ch == '\\') {
      c.advance_n(2);
      continue;
    }
    c.advance();
    if (ch == quote || ch == '\n') break;  // unterminated: resync at EOL
  }
}

/// Consumes R"delim( ... )delim" starting at the '"'.
void skip_raw_string(Cursor& c) {
  c.advance();  // the '"'
  std::string delim;
  while (!c.done() && c.peek() != '(' && delim.size() < 16) {
    delim.push_back(c.peek());
    c.advance();
  }
  const std::string close = ")" + delim + "\"";
  while (!c.done()) {
    if (c.text.compare(c.i, close.size(), close) == 0) {
      c.advance_n(close.size());
      return;
    }
    c.advance();
  }
}

/// Consumes a preprocessor directive including `\` line continuations.
void skip_preprocessor_line(Cursor& c) {
  while (!c.done()) {
    const char ch = c.peek();
    if (ch == '\\' && c.peek(1) == '\n') {
      c.advance_n(2);
      continue;
    }
    // Comments inside directives still nest line continuations correctly
    // enough for our purposes; just consume to end of (logical) line.
    c.advance();
    if (ch == '\n') return;
  }
}

} // namespace

std::vector<Token> lex(std::string_view text) {
  std::vector<Token> out;
  Cursor c{text};
  bool at_line_start = true;  // only whitespace seen on this line so far
  while (!c.done()) {
    const char ch = c.peek();
    if (ch == '\n') {
      at_line_start = true;
      c.advance();
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(ch))) {
      c.advance();
      continue;
    }
    if (ch == '#' && at_line_start) {
      skip_preprocessor_line(c);
      at_line_start = true;
      continue;
    }
    at_line_start = false;
    if (ch == '/' && c.peek(1) == '/') {
      while (!c.done() && c.peek() != '\n') c.advance();
      continue;
    }
    if (ch == '/' && c.peek(1) == '*') {
      c.advance_n(2);
      while (!c.done() && !(c.peek() == '*' && c.peek(1) == '/')) c.advance();
      c.advance_n(2);
      continue;
    }
    const unsigned line = c.line;
    const unsigned column = c.column;
    if (ch == '"') {
      skip_quoted(c, '"');
      out.push_back({Token::Kind::kString, "\"\"", line, column});
      continue;
    }
    if (ch == '\'') {
      skip_quoted(c, '\'');
      out.push_back({Token::Kind::kString, "''", line, column});
      continue;
    }
    if (is_ident_start(ch)) {
      std::string ident;
      while (!c.done() && is_ident_char(c.peek())) {
        ident.push_back(c.peek());
        c.advance();
      }
      // Raw / prefixed string literal: R"(...)", u8"...", L'x', ...
      if (!c.done() && c.peek() == '"' &&
          (ident == "R" || ident == "u8R" || ident == "uR" || ident == "LR")) {
        skip_raw_string(c);
        out.push_back({Token::Kind::kString, "\"\"", line, column});
        continue;
      }
      if (!c.done() && (c.peek() == '"' || c.peek() == '\'') &&
          (ident == "u8" || ident == "u" || ident == "U" || ident == "L")) {
        skip_quoted(c, c.peek());
        out.push_back({Token::Kind::kString, "\"\"", line, column});
        continue;
      }
      out.push_back({Token::Kind::kIdent, std::move(ident), line, column});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(ch)) ||
        (ch == '.' && std::isdigit(static_cast<unsigned char>(c.peek(1))))) {
      std::string num;
      while (!c.done()) {
        const char d = c.peek();
        if (is_ident_char(d) || d == '.' || d == '\'') {
          num.push_back(d);
          c.advance();
          continue;
        }
        // Exponent sign: 1e-5, 0x1p+3
        if ((d == '+' || d == '-') && !num.empty()) {
          const char prev = static_cast<char>(
              std::tolower(static_cast<unsigned char>(num.back())));
          if (prev == 'e' || prev == 'p') {
            num.push_back(d);
            c.advance();
            continue;
          }
        }
        break;
      }
      out.push_back({Token::Kind::kNumber, std::move(num), line, column});
      continue;
    }
    // Punctuation: longest multi-char match first.
    std::string_view matched;
    for (std::string_view op : kMultiPunct) {
      if (c.text.compare(c.i, op.size(), op) == 0) {
        matched = op;
        break;
      }
    }
    if (!matched.empty()) {
      out.push_back({Token::Kind::kPunct, std::string(matched), line, column});
      c.advance_n(matched.size());
      continue;
    }
    out.push_back({Token::Kind::kPunct, std::string(1, ch), line, column});
    c.advance();
  }
  return out;
}

bool Suppressions::allows(LintCode code, unsigned line) const {
  for (const unsigned l : {line, line > 0 ? line - 1 : 0u}) {
    const auto it = allowed.find(l);
    if (it != allowed.end() && it->second.count(code) != 0) return true;
  }
  return false;
}

Suppressions scan_suppressions(std::string_view text) {
  Suppressions out;
  // Assembled at runtime so the scanner never trips over its own source.
  const std::string kMarker = std::string("quora-lint") + ":";
  std::size_t pos = 0;
  unsigned line = 1;
  std::size_t line_start = 0;
  while (line_start < text.size()) {
    std::size_t line_end = text.find('\n', line_start);
    if (line_end == std::string_view::npos) line_end = text.size();
    const std::string_view l = text.substr(line_start, line_end - line_start);
    pos = l.find(kMarker);
    if (pos != std::string_view::npos) {
      std::string_view rest = l.substr(pos + kMarker.size());
      // Expect: allow(L001[, L002...]) reason...
      const std::size_t a = rest.find_first_not_of(" \t");
      bool ok = false;
      if (a != std::string_view::npos &&
          rest.substr(a).rfind("allow(", 0) == 0) {
        std::string_view tags = rest.substr(a + 6);
        const std::size_t close = tags.find(')');
        if (close != std::string_view::npos) {
          std::string_view reason = tags.substr(close + 1);
          tags = tags.substr(0, close);
          std::set<LintCode> codes;
          ok = !tags.empty();
          std::size_t start = 0;
          while (ok && start <= tags.size()) {
            std::size_t comma = tags.find(',', start);
            if (comma == std::string_view::npos) comma = tags.size();
            std::string_view tag = tags.substr(start, comma - start);
            while (!tag.empty() && (tag.front() == ' ' || tag.front() == '\t'))
              tag.remove_prefix(1);
            while (!tag.empty() && (tag.back() == ' ' || tag.back() == '\t'))
              tag.remove_suffix(1);
            LintCode code;
            if (!parse_lint_code_tag(tag, &code)) {
              out.problems.emplace_back(
                  line, "unknown lint code '" + std::string(tag) + "'");
              ok = false;
              break;
            }
            codes.insert(code);
            if (comma == tags.size()) break;
            start = comma + 1;
          }
          if (ok && reason.find_first_not_of(" \t\r") == std::string_view::npos) {
            out.problems.emplace_back(
                line, "missing reason after allow(...) — say why");
            ok = false;
          }
          if (ok) out.allowed[line].insert(codes.begin(), codes.end());
        } else {
          out.problems.emplace_back(line, "unterminated allow(");
        }
      } else {
        out.problems.emplace_back(
            line,
            "expected 'allow(L00x[,...]) reason' after the quora-lint marker");
      }
    }
    line_start = line_end + 1;
    ++line;
  }
  return out;
}

Baseline Baseline::parse(std::string_view text,
                         std::vector<std::string>* problems) {
  Baseline b;
  std::size_t line_start = 0;
  unsigned line_no = 1;
  while (line_start < text.size()) {
    std::size_t line_end = text.find('\n', line_start);
    if (line_end == std::string_view::npos) line_end = text.size();
    std::string_view l = text.substr(line_start, line_end - line_start);
    if (!l.empty() && l.back() == '\r') l.remove_suffix(1);
    line_start = line_end + 1;
    const unsigned this_line = line_no++;
    if (l.empty() || l[0] == '#') continue;
    const std::size_t t1 = l.find('\t');
    const std::size_t t2 = t1 == std::string_view::npos
                               ? std::string_view::npos
                               : l.find('\t', t1 + 1);
    LintCode code;
    bool ok = t2 != std::string_view::npos &&
              parse_lint_code_tag(l.substr(0, t1), &code);
    if (ok) {
      const std::string_view num = l.substr(t2 + 1);
      ok = !num.empty() && num.find_first_not_of("0123456789") ==
                               std::string_view::npos;
    }
    if (!ok) {
      if (problems != nullptr) {
        problems->push_back("baseline line " + std::to_string(this_line) +
                            ": expected 'L00x<TAB>path<TAB>line', got '" +
                            std::string(l) + "'");
      }
      continue;
    }
    b.entries_.insert(std::string(l));
  }
  return b;
}

bool Baseline::contains(const Finding& f) const {
  std::string key = std::string(lint_code_tag(f.code)) + "\t" + f.path + "\t" +
                    std::to_string(f.line);
  return entries_.count(key) != 0;
}

std::string Baseline::render(const std::vector<Finding>& findings) {
  std::vector<Finding> sorted = findings;
  std::sort(sorted.begin(), sorted.end(), finding_less);
  std::ostringstream out;
  out << "# quora_lint baseline — one accepted finding per line.\n"
         "# Format: TAG<TAB>path<TAB>line. Regenerate with\n"
         "#   quora_lint --write-baseline <this file> <paths...>\n"
         "# Prefer an inline allow-comment with a reason for anything\n"
         "# that should stay exempt; the baseline is a burn-down list.\n";
  std::set<std::string> seen;
  for (const Finding& f : sorted) {
    if (f.suppressed) continue;
    std::string key = std::string(lint_code_tag(f.code)) + "\t" + f.path +
                      "\t" + std::to_string(f.line);
    if (seen.insert(key).second) out << key << '\n';
  }
  return out.str();
}

} // namespace quora::lint
