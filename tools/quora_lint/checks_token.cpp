#include "checks_token.hpp"

#include <array>
#include <set>
#include <string>

#include "source_scan.hpp"

namespace quora::lint {

namespace {

bool is_punct(const Token& t, std::string_view s) {
  return t.kind == Token::Kind::kPunct && t.text == s;
}
bool is_ident(const Token& t, std::string_view s) {
  return t.kind == Token::Kind::kIdent && t.text == s;
}
bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

/// Index one past the `)` matching the `(` at `open` (or tokens.size()).
std::size_t match_paren(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (is_punct(toks[i], "(")) ++depth;
    if (is_punct(toks[i], ")") && --depth == 0) return i + 1;
  }
  return toks.size();
}

/// Skips balanced template arguments: `i` points at `<`; returns the index
/// one past the matching `>`. Treats `>>` as closing two levels (C++11
/// rules). Gives up (returns `i`) if nothing closes within the file.
std::size_t match_angle(const std::vector<Token>& toks, std::size_t i) {
  int depth = 0;
  for (std::size_t j = i; j < toks.size(); ++j) {
    if (is_punct(toks[j], "<")) ++depth;
    if (is_punct(toks[j], ">") && --depth == 0) return j + 1;
    if (is_punct(toks[j], ">>")) {
      depth -= 2;
      if (depth <= 0) return j + 1;
    }
    // A statement boundary means this `<` was a comparison after all.
    if (is_punct(toks[j], ";") || is_punct(toks[j], "{")) return i;
  }
  return i;
}

constexpr std::array<std::string_view, 11> kAssignOps = {
    "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="};

constexpr std::array<std::string_view, 17> kMutatingMembers = {
    "push_back", "pop_back",      "push",       "pop",   "insert",
    "erase",     "clear",         "emplace",    "emplace_back",
    "emplace_front", "push_front", "pop_front", "reset", "release",
    "swap",      "next_u64",      "next_double"};

struct SideEffect {
  std::size_t index;        // token that constitutes the side effect
  std::string description;  // e.g. "increment of 'attempts'"
};

/// Identifier adjacent to a mutation token, used both for diagnostics and
/// for the QUORA_OBS_ONLY obs_* exemption. For `x++`/`x +=` that is the
/// identifier before the operator; for `++x` the one after.
std::string_view mutation_target(const std::vector<Token>& toks,
                                 std::size_t op, std::size_t begin,
                                 std::size_t end) {
  if (op > begin && toks[op - 1].kind == Token::Kind::kIdent)
    return toks[op - 1].text;
  if (op + 1 < end && toks[op + 1].kind == Token::Kind::kIdent)
    return toks[op + 1].text;
  return {};
}

/// Scans the token range [begin, end) — the argument list of one macro
/// invocation — for expressions with side effects.
std::vector<SideEffect> scan_side_effects(const std::vector<Token>& toks,
                                          std::size_t begin, std::size_t end,
                                          bool allow_obs_targets) {
  std::vector<SideEffect> out;
  auto target_is_obs = [&](std::size_t op) {
    return starts_with(mutation_target(toks, op, begin, end), "obs_");
  };
  for (std::size_t i = begin; i < end; ++i) {
    const Token& t = toks[i];
    if (t.kind == Token::Kind::kPunct) {
      if (t.text == "++" || t.text == "--") {
        if (allow_obs_targets && target_is_obs(i)) continue;
        out.push_back({i, (t.text == "++" ? "increment of '" : "decrement of '") +
                              std::string(mutation_target(toks, i, begin, end)) +
                              "'"});
        continue;
      }
      bool is_assign = false;
      for (std::string_view op : kAssignOps) is_assign = is_assign || t.text == op;
      if (is_assign) {
        // `[=]` / `[&x = y]` lambda captures are not mutations; neither is
        // a designated initializer `{.field = v}` (fresh object, no state).
        if (t.text == "=") {
          if (i > begin && is_punct(toks[i - 1], "[")) continue;
          if (i + 1 < end && is_punct(toks[i + 1], "]")) continue;
          if (i >= begin + 2 && toks[i - 1].kind == Token::Kind::kIdent &&
              is_punct(toks[i - 2], ".") &&
              (i < begin + 3 || is_punct(toks[i - 3], "{") ||
               is_punct(toks[i - 3], ","))) {
            continue;
          }
        }
        if (allow_obs_targets && target_is_obs(i)) continue;
        out.push_back({i, "assignment ('" + t.text + "') to '" +
                              std::string(mutation_target(toks, i, begin, end)) +
                              "'"});
        continue;
      }
      continue;
    }
    if (t.kind != Token::Kind::kIdent) continue;
    if (t.text == "new" || t.text == "delete") {
      out.push_back({i, "'" + t.text + "' expression"});
      continue;
    }
    // gen_.next_u64(), votes.push_back(...) — known-mutating member call.
    if (i > begin && i + 1 < end && is_punct(toks[i + 1], "(") &&
        (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"))) {
      for (std::string_view m : kMutatingMembers) {
        if (t.text == m) {
          out.push_back({i, "call to mutating member '" + t.text + "'"});
          break;
        }
      }
      continue;
    }
    // rng::exponential(gen_, ...) — every draw advances a seeded stream,
    // so a draw inside a compiled-out macro diverges the RNG sequence.
    if (i >= begin + 2 && is_punct(toks[i - 1], "::") &&
        is_ident(toks[i - 2], "rng") && i + 1 < end &&
        is_punct(toks[i + 1], "(")) {
      out.push_back({i, "rng:: draw ('rng::" + t.text + "') advances a stream"});
      continue;
    }
  }
  return out;
}

struct MacroRule {
  std::string_view name;
  LintCode code;
  bool allow_obs_targets;  // QUORA_OBS_ONLY: obs_* state may mutate
};

constexpr std::array<MacroRule, 8> kMacroRules = {{
    {"QUORA_TRACE", LintCode::kL001SideEffectObsArg, false},
    {"QUORA_METRIC_ADD", LintCode::kL001SideEffectObsArg, false},
    {"QUORA_METRIC_RECORD", LintCode::kL001SideEffectObsArg, false},
    {"QUORA_METRIC_SET", LintCode::kL001SideEffectObsArg, false},
    {"QUORA_OBS_ONLY", LintCode::kL001SideEffectObsArg, true},
    {"QUORA_ASSERT", LintCode::kL002SideEffectContractArg, false},
    {"QUORA_INVARIANT", LintCode::kL002SideEffectContractArg, false},
    {"QUORA_PRECONDITION", LintCode::kL002SideEffectContractArg, false},
}};

void check_macro_args(std::string_view path, const std::vector<Token>& toks,
                      std::vector<Finding>* out) {
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent || !is_punct(toks[i + 1], "("))
      continue;
    const MacroRule* rule = nullptr;
    for (const MacroRule& r : kMacroRules) {
      if (toks[i].text == r.name) {
        rule = &r;
        break;
      }
    }
    if (rule == nullptr) continue;
    const std::size_t close = match_paren(toks, i + 1);
    for (const SideEffect& se :
         scan_side_effects(toks, i + 2, close - 1, rule->allow_obs_targets)) {
      const Token& at = toks[se.index];
      Finding f;
      f.code = rule->code;
      f.severity = LintSeverity::kError;
      f.path = std::string(path);
      f.line = at.line;
      f.column = at.column;
      f.message = se.description + " inside " + std::string(rule->name) +
                  " argument; " +
                  (rule->code == LintCode::kL001SideEffectObsArg
                       ? "the expression is removed when QUORA_OBS=OFF — "
                         "hoist the side effect out of the macro"
                       : "contracts compile out in Release — hoist the side "
                         "effect out of the macro");
      out->push_back(std::move(f));
    }
    i = close > i ? close - 1 : i;
  }
}

constexpr std::array<std::string_view, 3> kForbiddenClocks = {
    "system_clock", "steady_clock", "high_resolution_clock"};
constexpr std::array<std::string_view, 5> kForbiddenEngines = {
    "mt19937", "mt19937_64", "default_random_engine", "minstd_rand",
    "minstd_rand0"};

void check_entropy(std::string_view path, const std::vector<Token>& toks,
                   std::vector<Finding>* out) {
  auto report = [&](const Token& at, const std::string& what) {
    Finding f;
    f.code = LintCode::kL003ForbiddenEntropy;
    f.severity = LintSeverity::kError;
    f.path = std::string(path);
    f.line = at.line;
    f.column = at.column;
    f.message = what +
                " in a deterministic layer; all randomness must come from "
                "the seeded rng:: xoshiro streams (src/rng)";
    out->push_back(std::move(f));
  };
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Token::Kind::kIdent) continue;
    const bool next_is_call = i + 1 < toks.size() && is_punct(toks[i + 1], "(");
    const bool prev_member =
        i > 0 && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"));
    if (t.text == "random_device") {
      report(t, "std::random_device");
      continue;
    }
    for (std::string_view e : kForbiddenEngines) {
      if (t.text == e) report(t, "std::" + t.text + " (unseeded-by-policy engine)");
    }
    if ((t.text == "rand" || t.text == "srand") && next_is_call && !prev_member) {
      report(t, "'" + t.text + "()'");
      continue;
    }
    if ((t.text == "time" || t.text == "clock") && next_is_call &&
        i > 0 && is_punct(toks[i - 1], "::")) {
      report(t, "'" + t.text + "()' wall-clock call");
      continue;
    }
    for (std::string_view c : kForbiddenClocks) {
      if (t.text == c && i + 2 < toks.size() && is_punct(toks[i + 1], "::") &&
          is_ident(toks[i + 2], "now")) {
        report(t, "std::chrono::" + t.text + "::now()");
      }
    }
  }
}

constexpr std::array<std::string_view, 4> kUnorderedTypes = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

void check_unordered(std::string_view path, const std::vector<Token>& toks,
                     std::vector<Finding>* out) {
  // Pass 1: names declared (in this file) with an unordered type. This is
  // flow-insensitive and file-local — the AST engine resolves aliases and
  // members declared elsewhere.
  std::set<std::string> unordered_vars;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    bool is_unordered = false;
    for (std::string_view u : kUnorderedTypes) is_unordered |= t.text == u;
    if (t.kind != Token::Kind::kIdent || !is_unordered) continue;
    std::size_t j = i + 1;
    if (j < toks.size() && is_punct(toks[j], "<")) j = match_angle(toks, j);
    while (j < toks.size() &&
           (is_punct(toks[j], "&") || is_punct(toks[j], "*") ||
            is_ident(toks[j], "const")))
      ++j;
    if (j < toks.size() && toks[j].kind == Token::Kind::kIdent)
      unordered_vars.insert(toks[j].text);
  }
  auto report = [&](const Token& at, const std::string& what) {
    Finding f;
    f.code = LintCode::kL004UnorderedIteration;
    f.severity = LintSeverity::kError;
    f.path = std::string(path);
    f.line = at.line;
    f.column = at.column;
    f.message = what +
                " iterates an unordered container in transcript-feeding "
                "code; iteration order is unspecified and breaks "
                "byte-stable replays — use a sorted copy or an ordered "
                "container";
    out->push_back(std::move(f));
  };
  if (unordered_vars.empty()) return;
  // Pass 2: range-for and std::accumulate over those names.
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (is_ident(toks[i], "for") && is_punct(toks[i + 1], "(")) {
      const std::size_t close = match_paren(toks, i + 1);
      int depth = 0;
      std::size_t colon = 0;
      for (std::size_t j = i + 1; j < close; ++j) {
        if (is_punct(toks[j], "(")) ++depth;
        if (is_punct(toks[j], ")")) --depth;
        if (depth == 1 && is_punct(toks[j], ":")) {
          colon = j;
          break;
        }
      }
      if (colon == 0) continue;
      for (std::size_t j = colon + 1; j + 1 < close; ++j) {
        if (toks[j].kind == Token::Kind::kIdent &&
            unordered_vars.count(toks[j].text) != 0) {
          report(toks[i], "range-for over '" + toks[j].text + "'");
          break;
        }
      }
    }
    if (is_ident(toks[i], "accumulate") && is_punct(toks[i + 1], "(")) {
      const std::size_t close = match_paren(toks, i + 1);
      for (std::size_t j = i + 2; j + 2 < close; ++j) {
        if (toks[j].kind == Token::Kind::kIdent &&
            unordered_vars.count(toks[j].text) != 0 &&
            (is_punct(toks[j + 1], ".") || is_punct(toks[j + 1], "->")) &&
            (is_ident(toks[j + 2], "begin") || is_ident(toks[j + 2], "cbegin"))) {
          report(toks[i], "std::accumulate over '" + toks[j].text + "'");
          break;
        }
      }
    }
  }
}

bool contains_ci(std::string_view haystack, std::string_view needle) {
  if (needle.size() > haystack.size()) return false;
  for (std::size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    bool match = true;
    for (std::size_t j = 0; j < needle.size(); ++j) {
      const char a = static_cast<char>(
          std::tolower(static_cast<unsigned char>(haystack[i + j])));
      if (a != needle[j]) {
        match = false;
        break;
      }
    }
    if (match) return true;
  }
  return false;
}

void check_raw_obs(std::string_view path, const std::vector<Token>& toks,
                   std::vector<Finding>* out) {
  auto report = [&](const Token& at, const std::string& what,
                    const std::string& use_instead) {
    Finding f;
    f.code = LintCode::kL005RawObsCall;
    f.severity = LintSeverity::kError;
    f.path = std::string(path);
    f.line = at.line;
    f.column = at.column;
    f.message = what + " bypasses the QUORA_OBS gate — use " + use_instead +
                " so the call vanishes in QUORA_OBS=OFF builds";
    out->push_back(std::move(f));
  };
  for (std::size_t i = 2; i + 1 < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Token::Kind::kIdent || !is_punct(toks[i + 1], "(")) continue;
    if (!is_punct(toks[i - 1], ".") && !is_punct(toks[i - 1], "->")) continue;
    if (toks[i - 2].kind != Token::Kind::kIdent) continue;
    const std::string& obj = toks[i - 2].text;
    // trace_->record(...) / recorder.record_at(...): raw TraceRecorder
    // call (the repo convention names recorder pointers "*trace*").
    if ((t.text == "record" || t.text == "record_at") &&
        contains_ci(obj, "trace")) {
      report(t, "raw TraceRecorder::" + t.text + " call on '" + obj + "'",
             "QUORA_TRACE(...)");
      continue;
    }
    // obs_grants_.add(1) / obs_latency_.record(v) / obs_depth_.set(v):
    // raw metric-handle call (handles are named obs_* by convention).
    if ((t.text == "add" || t.text == "record" || t.text == "set") &&
        starts_with(obj, "obs_")) {
      const char* macro = t.text == "add"
                              ? "QUORA_METRIC_ADD(...)"
                              : (t.text == "record" ? "QUORA_METRIC_RECORD(...)"
                                                    : "QUORA_METRIC_SET(...)");
      report(t, "raw metric-handle ." + t.text + " call on '" + obj + "'",
             macro);
    }
  }
}

// The std:: vocabulary L009 forbids in protocol layers. `atomic_*`
// (atomic_int, atomic_flag, atomic_load, ...) is matched by prefix below.
constexpr std::array<std::string_view, 9> kSyncPrimitives = {
    "mutex",          "recursive_mutex",    "shared_mutex",
    "timed_mutex",    "recursive_timed_mutex", "shared_timed_mutex",
    "atomic",         "condition_variable", "condition_variable_any"};

/// True when a QUORA_SHARD_SHARED annotation opens the declaration the
/// token at `i` belongs to: scan back to the previous statement boundary.
/// Initializer braces come after the type name, so they never mask the
/// annotation; a boundary before finding it means the declaration (or a
/// mid-function use) is unannotated.
bool declared_shard_shared(const std::vector<Token>& toks, std::size_t i) {
  while (i-- > 0) {
    const Token& t = toks[i];
    if (is_punct(t, ";") || is_punct(t, "{") || is_punct(t, "}")) return false;
    if (is_ident(t, "QUORA_SHARD_SHARED")) return true;
  }
  return false;
}

void check_concurrency(std::string_view path, const std::vector<Token>& toks,
                       std::vector<Finding>* out) {
  auto report = [&](const Token& at, const std::string& what) {
    Finding f;
    f.code = LintCode::kL009RawConcurrencyPrimitive;
    f.severity = LintSeverity::kError;
    f.path = std::string(path);
    f.line = at.line;
    f.column = at.column;
    f.message = what +
                " in a protocol layer; the simulator and the model checker "
                "single-step these modules, so raw synchronization hides "
                "interleavings from them — declare deliberately shared "
                "state QUORA_SHARD_SHARED or hoist the primitive out";
    out->push_back(std::move(f));
  };
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Token::Kind::kIdent) continue;
    // `thread_local` is a keyword: no std:: qualification to anchor on.
    if (t.text == "thread_local") {
      if (!declared_shard_shared(toks, i)) report(t, "'thread_local' storage");
      continue;
    }
    // Everything else must be spelled std::-qualified to count — bare
    // `mutex`/`atomic` identifiers are common false-positive territory
    // (member names, template parameters); the AST engine resolves those.
    if (i < 2 || !is_punct(toks[i - 1], "::") || !is_ident(toks[i - 2], "std"))
      continue;
    bool sync = starts_with(t.text, "atomic_");
    for (std::string_view s : kSyncPrimitives) sync = sync || t.text == s;
    if (sync && !declared_shard_shared(toks, i)) report(t, "std::" + t.text);
  }
}

} // namespace

void run_token_checks(std::string_view path, std::string_view text,
                      const CheckScope& scope, std::vector<Finding>* out) {
  const std::vector<Token> toks = lex(text);
  if (scope.macro_args) check_macro_args(path, toks, out);
  if (scope.entropy) check_entropy(path, toks, out);
  if (scope.unordered) check_unordered(path, toks, out);
  if (scope.raw_obs) check_raw_obs(path, toks, out);
  if (scope.concurrency) check_concurrency(path, toks, out);
}

} // namespace quora::lint
