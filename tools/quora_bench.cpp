// quora-bench — the pinned performance harness behind BENCH_*.json.
//
//   quora_bench [--quick] [--json PATH] [--rev NAME] [--seed N]
//   quora_bench --alloc-check [--quick] [--seed N]
//
// Runs a fixed-seed subset of the perf surface that the ROADMAP cares
// about — event-queue churn (single-heap and sharded), component-tracker
// refresh under link flips (dense word-parallel path on the 101-site
// topologies, sparse CSR path on the 50k/250k scale points, plus a
// 1M-site construct+rebuild smoke), and two end-to-end simulation
// workloads (topology 256 and topology 4949) — and emits
// machine-readable numbers: ns/op, accesses/sec,
// tracker rebuilds/sec, and heap allocations observed by a global
// counting hook. scripts/bench_compare.py diffs two of these JSONs with
// a regression threshold; docs/PERFORMANCE.md describes the schema and
// how to refresh the checked-in baseline.
//
// The workloads are pinned (fixed seeds, fixed iteration counts per
// mode) so two runs of the same binary do identical work and two
// binaries at different revisions are comparable op-for-op. `--quick`
// shrinks every case ~10-20x for CI smoke use; quick and full numbers
// are not comparable to each other (the JSON records the mode).
//
// `--alloc-check` replaces the timing runs with a steady-state allocation
// audit of the QUORA_HOT_PATH / QUORA_ALLOC_OK call chains the linter's
// L006 reasons about (src/core/analysis_annotations.hpp): each case warms
// up outside the measured region, then asserts the global counting hook
// stays flat across the steady-state loop. This is the runtime half of
// the static claim — the lint check proves nothing *new* allocates on an
// annotated chain, the alloc check proves the amortized-growth exemptions
// (QUORA_ALLOC_OK, the EventQueue allow) really amortize to zero.
//
// Exit status: 0 on success, 1 when --alloc-check observes an allocation,
// 2 on usage or I/O errors.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <new>
#include <string>
#include <vector>

#include "conn/component_tracker.hpp"
#include "conn/live_network.hpp"
#include "net/builders.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro256ss.hpp"
#include "sim/event.hpp"
#include "sim/sharded_queue.hpp"
#include "sim/simulator.hpp"

// ---------------------------------------------------------------------------
// Global allocation counting hook. Counts every operator new in the
// process; cases snapshot the counter around their measured region, so
// steady-state hot paths can be asserted allocation-free.
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};
} // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace quora;
using Clock = std::chrono::steady_clock;

[[noreturn]] void usage(int code) {
  std::cerr << "usage: quora_bench [--quick] [--json PATH] [--rev NAME] [--seed N]\n"
               "       quora_bench --alloc-check [--quick] [--seed N]\n"
               "  --quick        ~10-20x smaller pinned workloads (CI smoke)\n"
               "  --json PATH    write the machine-readable report to PATH\n"
               "  --rev NAME     revision label recorded in the report\n"
               "  --seed N       root seed (default 42; changes the workload!)\n"
               "  --alloc-check  assert the annotated hot paths allocate zero\n"
               "                 bytes in steady state (exit 1 on any alloc)\n";
  std::exit(code);
}

struct Options {
  bool quick = false;
  bool alloc_check = false;
  std::string json_path;
  std::string revision = "unknown";
  std::uint64_t seed = 42;
};

struct CaseResult {
  std::string name;
  std::uint64_t items = 0;   // measured operations (pops, flips, accesses)
  double wall_s = 0.0;
  std::uint64_t allocations = 0;
  std::uint64_t alloc_bytes = 0;
  // Optional extras; negative = not applicable.
  double accesses_per_sec = -1.0;
  double rebuilds = -1.0;
  double rebuilds_per_sec = -1.0;

  double ns_per_op() const {
    return items == 0 ? 0.0 : wall_s * 1e9 / static_cast<double>(items);
  }
  double ops_per_sec() const {
    return wall_s <= 0.0 ? 0.0 : static_cast<double>(items) / wall_s;
  }
};

/// Measures `body(items)` with the allocation counter snapshotted around it.
template <typename Body>
CaseResult run_case(const std::string& name, std::uint64_t items, Body body) {
  CaseResult r;
  r.name = name;
  r.items = items;
  const std::uint64_t a0 = g_alloc_count.load(std::memory_order_relaxed);
  const std::uint64_t b0 = g_alloc_bytes.load(std::memory_order_relaxed);
  const auto t0 = Clock::now();
  body(items, r);
  const auto t1 = Clock::now();
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.allocations = g_alloc_count.load(std::memory_order_relaxed) - a0;
  r.alloc_bytes = g_alloc_bytes.load(std::memory_order_relaxed) - b0;
  std::cout << "  " << name << ": " << r.items << " ops in " << r.wall_s
            << " s (" << r.ns_per_op() << " ns/op, " << r.allocations
            << " allocs)";
  if (r.rebuilds >= 0.0) std::cout << ", rebuilds=" << r.rebuilds;
  std::cout << '\n';
  return r;
}

CaseResult bench_event_queue(const Options& opt) {
  const std::uint64_t n = opt.quick ? 1'000'000 : 20'000'000;
  return run_case("event_queue_churn", n, [&](std::uint64_t items, CaseResult&) {
    sim::EventQueue queue;
    rng::Xoshiro256ss gen(opt.seed);
    for (int i = 0; i < 4096; ++i) {
      queue.push(gen.next_double(), sim::EventKind::kAccess, 0);
    }
    double sink = 0.0;
    for (std::uint64_t i = 0; i < items; ++i) {
      const sim::Event e = queue.pop();
      sink += e.time;
      queue.push(e.time + rng::exponential(gen, 1.0), sim::EventKind::kAccess,
                 static_cast<std::uint32_t>(i & 0xff));
    }
    if (sink < 0.0) std::abort();  // defeat dead-code elimination
  });
}

// Item counts are sized per topology by measured per-op cost (roughly
// half the flips trigger a full rebuild) so every case finishes in well
// under ~15 s of full-mode wall clock; see the call sites.
CaseResult bench_tracker(const Options& opt, const std::string& name,
                         const net::Topology& topo, std::uint64_t items_full,
                         std::uint64_t items_quick) {
  const std::uint64_t n = opt.quick ? items_quick : items_full;
  return run_case("tracker_" + name, n, [&](std::uint64_t items, CaseResult& r) {
    conn::LiveNetwork live(topo);
    conn::ComponentTracker tracker(live);
    rng::Xoshiro256ss gen(opt.seed ^ 7);
    const std::uint64_t rebuilds0 = tracker.stats().full_rebuilds;
    net::Vote sink = 0;
    for (std::uint64_t i = 0; i < items; ++i) {
      const auto link =
          static_cast<net::LinkId>(rng::uniform_index(gen, topo.link_count()));
      live.set_link_up(link, !live.is_link_up(link));
      sink += tracker.component_votes(0);
    }
    if (sink == 0xffffffff) std::abort();
    r.rebuilds = static_cast<double>(tracker.stats().full_rebuilds - rebuilds0);
    r.rebuilds_per_sec = 0.0;  // filled after wall_s is known, below
  });
}

CaseResult bench_sharded_queue(const Options& opt) {
  const std::uint64_t n = opt.quick ? 500'000 : 10'000'000;
  return run_case("sharded_queue_churn", n,
                  [&](std::uint64_t items, CaseResult&) {
    // Same churn shape as event_queue_churn, spread over 16 shards; each
    // pop is re-pushed into the shard it came from, so every shard heap
    // holds a constant population and the global (time, shard, seq) merge
    // is exercised on every operation.
    constexpr std::uint32_t kShards = 16;
    sim::ShardedEventQueue queue(kShards);
    rng::Xoshiro256ss gen(opt.seed);
    for (std::uint32_t i = 0; i < 4096; ++i) {
      queue.push(i % kShards, gen.next_double(), sim::EventKind::kAccess, 0);
    }
    double sink = 0.0;
    for (std::uint64_t i = 0; i < items; ++i) {
      const sim::ShardEvent e = queue.pop();
      sink += e.time;
      queue.push(e.shard, e.time + rng::exponential(gen, 1.0),
                 sim::EventKind::kAccess, static_cast<std::uint32_t>(i & 0xff));
    }
    if (sink < 0.0) std::abort();
  });
}

// 1M-site construct+rebuild smoke: proves the sparse path and every
// ctor-reserved buffer scale to ROADMAP item 4's top end. Each item is
// one link-down flip (forcing a full 1M-site rebuild on the next query)
// followed by the recovery merge; topology construction is inside the
// measured region deliberately — at this size the builders are part of
// the story.
CaseResult bench_scale_1m(const Options& opt) {
  const std::uint64_t n = opt.quick ? 4 : 8;
  return run_case("scale_grid1m_smoke", n,
                  [&](std::uint64_t items, CaseResult& r) {
    const auto topo = net::make_grid(1000, 1000);
    conn::LiveNetwork live(topo);
    conn::ComponentTracker tracker(live);
    rng::Xoshiro256ss gen(opt.seed ^ 13);
    const std::uint64_t rebuilds0 = tracker.stats().full_rebuilds;
    net::Vote sink = 0;
    for (std::uint64_t i = 0; i < items; ++i) {
      const auto link =
          static_cast<net::LinkId>(rng::uniform_index(gen, topo.link_count()));
      live.set_link_up(link, false);
      sink += tracker.component_votes(0);
      live.set_link_up(link, true);
      sink += tracker.max_component_votes();
    }
    if (sink == 0xffffffff) std::abort();
    r.rebuilds = static_cast<double>(tracker.stats().full_rebuilds - rebuilds0);
    r.rebuilds_per_sec = 0.0;
  });
}

/// Mirrors the measurement loop of the real experiments: per access, the
/// observer queries the votes reachable from the submitting site.
class VotesProbe : public sim::AccessObserver {
public:
  void on_access(const sim::Simulator& sim, const sim::AccessEvent& ev) override {
    votes_seen += sim.tracker().component_votes(ev.site);
  }
  std::uint64_t votes_seen = 0;
};

CaseResult bench_sim_e2e(const Options& opt, const std::string& name,
                         const net::Topology& topo, std::uint64_t accesses_full,
                         std::uint64_t accesses_quick) {
  const std::uint64_t n = opt.quick ? accesses_quick : accesses_full;
  return run_case("sim_e2e_" + name, n, [&](std::uint64_t items, CaseResult& r) {
    sim::SimConfig config;
    sim::AccessSpec spec;
    sim::Simulator sim(topo, config, spec, opt.seed);
    VotesProbe probe;
    sim.add_access_observer(&probe);
    // Warm up outside nothing: the warm-up is part of the pinned work so
    // the trajectory is identical across revisions.
    const std::uint64_t rebuilds0 = sim.tracker().stats().full_rebuilds;
    sim.run_accesses(items);
    if (probe.votes_seen == 0xffffffff) std::abort();
    r.rebuilds = static_cast<double>(sim.tracker().stats().full_rebuilds - rebuilds0);
  });
}

// ---------------------------------------------------------------------------
// --alloc-check: the runtime verification behind the L006 annotations.

/// Allocation-counter delta across `body` (the caller does all setup and
/// warm-up first, so the delta is the steady-state figure).
template <typename Body>
std::uint64_t allocs_during(Body&& body) {
  const std::uint64_t a0 = g_alloc_count.load(std::memory_order_relaxed);
  body();
  return g_alloc_count.load(std::memory_order_relaxed) - a0;
}

int run_alloc_check(const Options& opt) {
  struct Check {
    std::string name;
    std::uint64_t allocations;
  };
  std::vector<Check> checks;

  {
    // sim::EventQueue push/pop (QUORA_HOT_PATH) at constant queue depth:
    // the pop hands a slot back before the next push, so the inline
    // allow(L006) on heap_.push_back must never reach the allocator.
    sim::EventQueue queue;
    rng::Xoshiro256ss gen(opt.seed);
    for (int i = 0; i < 4096; ++i) {
      queue.push(gen.next_double(), sim::EventKind::kAccess, 0);
    }
    const std::uint64_t iters = opt.quick ? 100'000 : 2'000'000;
    double sink = 0.0;
    const std::uint64_t n = allocs_during([&] {
      for (std::uint64_t i = 0; i < iters; ++i) {
        const sim::Event e = queue.pop();
        sink += e.time;
        queue.push(e.time + rng::exponential(gen, 1.0), sim::EventKind::kAccess,
                   static_cast<std::uint32_t>(i & 0xff));
      }
    });
    if (sink < 0.0) std::abort();
    checks.push_back({"event_queue_steady_state", n});
  }

  {
    // sim::ShardedEventQueue push/pop (QUORA_HOT_PATH) at constant
    // per-shard depth: pops are re-pushed into their shard of origin, so
    // the inline allow(L006) on the per-shard heap growth must amortize
    // to zero exactly like the single-heap queue's.
    constexpr std::uint32_t kShards = 16;
    sim::ShardedEventQueue queue(kShards);
    rng::Xoshiro256ss gen(opt.seed ^ 3);
    for (std::uint32_t i = 0; i < 4096; ++i) {
      queue.push(i % kShards, gen.next_double(), sim::EventKind::kAccess, 0);
    }
    const std::uint64_t iters = opt.quick ? 100'000 : 2'000'000;
    double sink = 0.0;
    const std::uint64_t n = allocs_during([&] {
      for (std::uint64_t i = 0; i < iters; ++i) {
        const sim::ShardEvent e = queue.pop();
        sink += e.time;
        queue.push(e.shard, e.time + rng::exponential(gen, 1.0),
                   sim::EventKind::kAccess, static_cast<std::uint32_t>(i & 0xff));
      }
    });
    if (sink < 0.0) std::abort();
    checks.push_back({"sharded_queue_steady_state", n});
  }

  {
    // conn::ComponentTracker refresh + hot-path queries under link churn:
    // the QUORA_ALLOC_OK rebuild/compact/apply paths must stay inside the
    // capacity the constructor reserved. votes_by_label() forces the
    // compaction path too, not just the scalar queries.
    const auto topo = net::make_ring(101);
    conn::LiveNetwork live(topo);
    conn::ComponentTracker tracker(live);
    rng::Xoshiro256ss gen(opt.seed ^ 7);
    net::Vote sink = 0;
    const auto churn = [&](std::uint64_t iters) {
      for (std::uint64_t i = 0; i < iters; ++i) {
        const auto link =
            static_cast<net::LinkId>(rng::uniform_index(gen, topo.link_count()));
        live.set_link_up(link, !live.is_link_up(link));
        sink += tracker.component_votes(0);
        sink += tracker.max_component_votes();
        sink += static_cast<net::Vote>(tracker.votes_by_label().size());
      }
    };
    churn(1024);  // warm-up: touch every lazily-sized buffer once
    const std::uint64_t n =
        allocs_during([&] { churn(opt.quick ? 50'000 : 500'000); });
    if (sink == 0xffffffff) std::abort();
    checks.push_back({"tracker_refresh_steady_state", n});
  }

  {
    // Dense word-parallel rebuild path (101 complete sites stay within
    // kDenseAdjacencyMaxSites) plus the member_words packed-bitset query:
    // both must live inside the ctor-reserved word buffers.
    const auto topo = net::make_fully_connected(101);
    conn::LiveNetwork live(topo);
    conn::ComponentTracker tracker(live);
    rng::Xoshiro256ss gen(opt.seed ^ 11);
    std::uint64_t sink = 0;
    const auto churn = [&](std::uint64_t iters) {
      for (std::uint64_t i = 0; i < iters; ++i) {
        const auto link =
            static_cast<net::LinkId>(rng::uniform_index(gen, topo.link_count()));
        live.set_link_up(link, !live.is_link_up(link));
        sink += tracker.component_votes(0);
        sink += tracker.member_words(0).front();
      }
    };
    churn(256);  // warm-up
    const std::uint64_t n =
        allocs_during([&] { churn(opt.quick ? 5'000 : 50'000); });
    if (sink == 0xffffffff) std::abort();
    checks.push_back({"tracker_dense_rebuild_steady_state", n});
  }

  {
    // Sparse CSR rebuild path at the topology-50k scale point: the same
    // churn over a 224x224 grid, reduced iteration count (each rebuild
    // walks 50k sites). Guards the large-topology buffers the scale
    // cases introduced.
    const auto topo = net::make_grid(224, 224);
    conn::LiveNetwork live(topo);
    conn::ComponentTracker tracker(live);
    rng::Xoshiro256ss gen(opt.seed ^ 5);
    net::Vote sink = 0;
    const auto churn = [&](std::uint64_t iters) {
      for (std::uint64_t i = 0; i < iters; ++i) {
        const auto link =
            static_cast<net::LinkId>(rng::uniform_index(gen, topo.link_count()));
        live.set_link_up(link, !live.is_link_up(link));
        sink += tracker.component_votes(0);
        sink += tracker.max_component_votes();
      }
    };
    churn(64);  // warm-up
    const std::uint64_t n = allocs_during([&] { churn(opt.quick ? 200 : 2'000); });
    if (sink == 0xffffffff) std::abort();
    checks.push_back({"tracker_sparse_grid50k_steady_state", n});
  }

  {
    // sim::Simulator::run_accesses (QUORA_HOT_PATH + sim shard entry),
    // end to end with the measurement observer attached — the exact chain
    // the linter walks from the annotated root.
    const auto topo = net::make_ring_with_chords(101, 256);
    sim::SimConfig config;
    sim::AccessSpec spec;
    sim::Simulator sim(topo, config, spec, opt.seed);
    VotesProbe probe;
    sim.add_access_observer(&probe);
    sim.run_accesses(opt.quick ? 2'000 : 20'000);  // warm-up
    const std::uint64_t n = allocs_during(
        [&] { sim.run_accesses(opt.quick ? 20'000 : 200'000); });
    if (probe.votes_seen == 0xffffffff) std::abort();
    checks.push_back({"simulator_access_loop", n});
  }

  bool clean = true;
  for (const Check& c : checks) {
    const bool ok = c.allocations == 0;
    clean = clean && ok;
    std::cout << "  " << (ok ? "PASS" : "FAIL") << ' ' << c.name << ": "
              << c.allocations << " steady-state allocation(s)\n";
  }
  std::cout << (clean ? "alloc-check: all hot paths allocation-free\n"
                      : "alloc-check: FAILED — an annotated hot path reached "
                        "the allocator\n");
  return clean ? 0 : 1;
}

void finish_rates(CaseResult& r) {
  if (r.rebuilds >= 0.0 && r.wall_s > 0.0) {
    r.rebuilds_per_sec = r.rebuilds / r.wall_s;
  }
}

void write_json(std::ostream& out, const Options& opt,
                const std::vector<CaseResult>& cases) {
  out.precision(17);
  out << "{\n"
      << "  \"schema\": \"quora-bench/1\",\n"
      << "  \"revision\": \"" << opt.revision << "\",\n"
      << "  \"mode\": \"" << (opt.quick ? "quick" : "full") << "\",\n"
      << "  \"seed\": " << opt.seed << ",\n"
      << "  \"cases\": [\n";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const CaseResult& r = cases[i];
    out << "    {\"name\": \"" << r.name << "\", \"items\": " << r.items
        << ", \"wall_s\": " << r.wall_s << ", \"ns_per_op\": " << r.ns_per_op()
        << ", \"ops_per_sec\": " << r.ops_per_sec()
        << ", \"allocations\": " << r.allocations
        << ", \"alloc_bytes\": " << r.alloc_bytes;
    if (r.accesses_per_sec >= 0.0) {
      out << ", \"accesses_per_sec\": " << r.accesses_per_sec;
    }
    if (r.rebuilds >= 0.0) {
      out << ", \"rebuilds\": " << r.rebuilds
          << ", \"rebuilds_per_sec\": " << r.rebuilds_per_sec;
    }
    out << '}' << (i + 1 < cases.size() ? "," : "") << '\n';
  }
  out << "  ]\n}\n";
}

} // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "quora_bench: missing value for " << arg << '\n';
        usage(2);
      }
      return argv[++i];
    };
    if (arg == "--quick") {
      opt.quick = true;
    } else if (arg == "--alloc-check") {
      opt.alloc_check = true;
    } else if (arg == "--json") {
      opt.json_path = need_value();
    } else if (arg == "--rev") {
      opt.revision = need_value();
    } else if (arg == "--seed") {
      char* end = nullptr;
      opt.seed = std::strtoull(need_value(), &end, 0);
      if (end == nullptr || *end != '\0') {
        std::cerr << "quora_bench: --seed expects an integer\n";
        usage(2);
      }
    } else if (arg == "--help" || arg == "-h") {
      usage(0);
    } else {
      std::cerr << "quora_bench: unknown option " << arg << '\n';
      usage(2);
    }
  }

  if (opt.alloc_check) {
    std::cout << "quora_bench --alloc-check (" << (opt.quick ? "quick" : "full")
              << " mode, seed " << opt.seed << ")\n";
    return run_alloc_check(opt);
  }

  std::cout << "quora_bench (" << (opt.quick ? "quick" : "full")
            << " mode, seed " << opt.seed << ")\n";

  std::vector<CaseResult> cases;
  cases.push_back(bench_event_queue(opt));
  cases.push_back(bench_sharded_queue(opt));

  // Tracker case sizing (satellite of ISSUE 8): ~1 µs/flip on the sparse
  // ring and ~2-20 µs/flip on the dense/scale topologies, so the counts
  // below keep every case under ~15 s full-mode wall clock. The dense
  // 101-site cases ran 2M items (~110 s each) before the word-parallel
  // rebuild landed; 500k at the new per-op cost is both comparable and
  // fast.
  {
    const auto ring = net::make_ring(101);
    cases.push_back(bench_tracker(opt, "ring101", ring, 2'000'000, 100'000));
  }
  {
    const auto complete = net::make_fully_connected(101);
    cases.push_back(bench_tracker(opt, "complete101", complete, 500'000, 25'000));
  }
  {
    const auto t4949 = net::make_ring_with_chords(101, 4949);
    cases.push_back(bench_tracker(opt, "topology4949", t4949, 500'000, 25'000));
  }
  {
    // topology-50k scale point: 224x224 grid (50176 sites), sparse path.
    // A full rebuild is ~n+m work; ~half of the flips trigger one.
    const auto grid = net::make_grid(224, 224);
    cases.push_back(bench_tracker(opt, "grid50k", grid, 10'000, 250));
  }
  {
    // topology-250k scale point: geo deployment, 50 regions x 5 DCs x
    // 50 racks x 20 sites = 250k sites. Rack-of-20 cliques keep the link
    // count ~2.6M, so a full rebuild is ~30 ms; at ~every flip forcing
    // one (short runs hit fresh links, so almost all flips are downs),
    // 400 items stays inside the 15 s budget.
    net::GeoSpec geo;
    geo.regions = 50;
    geo.dcs_per_region = 5;
    geo.racks_per_dc = 50;
    geo.sites_per_rack = 20;
    const auto t = net::make_geo(geo);
    cases.push_back(bench_tracker(opt, "geo250k", t, 400, 25));
  }
  cases.push_back(bench_scale_1m(opt));
  {
    const auto t256 = net::make_ring_with_chords(101, 256);
    cases.push_back(bench_sim_e2e(opt, "topology256", t256, 400'000, 30'000));
  }
  {
    const auto t4949 = net::make_fully_connected(101);
    cases.push_back(bench_sim_e2e(opt, "topology4949", t4949, 150'000, 10'000));
  }
  for (CaseResult& r : cases) {
    finish_rates(r);
    if (r.name.rfind("sim_e2e_", 0) == 0) r.accesses_per_sec = r.ops_per_sec();
  }

  if (!opt.json_path.empty()) {
    std::ofstream out(opt.json_path);
    if (!out) {
      std::cerr << "quora_bench: cannot open " << opt.json_path << '\n';
      return 2;
    }
    write_json(out, opt, cases);
    std::cout << "json written to " << opt.json_path << '\n';
  }
  return 0;
}
