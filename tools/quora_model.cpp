// quora-model — bounded explicit-state model checking of the cluster/QR
// protocol over a small declarative scope.
//
//   quora_model [--no-dpor] [--depth N] [--states N] [--mutate NAME]
//               [--no-mutations] [--emit-chaos FILE] [--quiet] SCOPE...
//
// Each SCOPE is a `.model` file (see src/model/scope.hpp and
// docs/MODEL_CHECKING.md): a topology, an initial quorum assignment, up
// to 3 scripted accesses, and a fault alphabet of up to 4 actions. The
// explorer drives the *real* msg::Cluster protocol code through every
// admissible interleaving — per-direction FIFO delivery is the only
// ordering constraint — checking msg::check_safety plus the model-level
// properties (QR monotonicity, installed-assignment intersection,
// grant-backed-by-quorum) at every reached state.
//
// Sleep-set DPOR prunes commuting schedules; --no-dpor disables it for
// cross-validation (same verdict, more states). On a violation the trace
// is minimized greedily and, with --emit-chaos, rendered as a `.chaos`
// plan whose embedded seed replays the same violation under quora_chaos.
//
// Exit status: 0 every scope explored safe, 1 a violation was found,
// 2 usage, I/O, or scope-audit problems — CI gates on it directly.

#include <cstdint>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "model/chaos_emit.hpp"
#include "model/explorer.hpp"
#include "model/scope.hpp"

namespace {

[[noreturn]] void usage() {
  std::cerr
      << "usage: quora_model [--no-dpor] [--depth N] [--states N]\n"
         "                   [--mutate NAME] [--no-mutations]\n"
         "                   [--emit-chaos FILE] [--quiet] SCOPE...\n"
         "  --no-dpor         explore without partial-order reduction\n"
         "                    (cross-validation: same verdict, more states)\n"
         "  --depth N         override the scope's path-depth bound\n"
         "  --states N        override the scope's visited-state budget\n"
         "  --mutate NAME     enable a seeded protocol mutation on top of\n"
         "                    the scope (accept-stale-qr |\n"
         "                    skip-crash-cleanup)\n"
         "  --no-mutations    ignore the scope's 'mutate' lines (run the\n"
         "                    unmutated protocol in the same scope)\n"
         "  --emit-chaos FILE write the first minimized counterexample as\n"
         "                    a replayable .chaos plan\n"
         "  --quiet           suppress per-scope statistics\n";
  std::exit(2);
}

std::optional<std::uint64_t> parse_u64(const std::string& s) {
  try {
    std::size_t pos = 0;
    const unsigned long long v = std::stoull(s, &pos);
    if (pos != s.size()) return std::nullopt;
    return v;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

} // namespace

int main(int argc, char** argv) {
  using namespace quora;

  model::Options options;
  std::optional<std::uint64_t> depth_override;
  std::optional<std::uint64_t> states_override;
  std::vector<std::string> extra_mutations;
  bool no_mutations = false;
  std::string emit_path;
  bool quiet = false;
  std::vector<std::string> scopes;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (++i >= argc) {
        std::cerr << "quora_model: " << arg << " needs a value\n";
        usage();
      }
      return argv[i];
    };
    if (arg == "--no-dpor") {
      options.dpor = false;
    } else if (arg == "--depth") {
      depth_override = parse_u64(value());
      if (!depth_override) usage();
    } else if (arg == "--states") {
      states_override = parse_u64(value());
      if (!states_override) usage();
    } else if (arg == "--mutate") {
      extra_mutations.push_back(value());
    } else if (arg == "--no-mutations") {
      no_mutations = true;
    } else if (arg == "--emit-chaos") {
      emit_path = value();
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "quora_model: unknown option " << arg << '\n';
      usage();
    } else {
      scopes.push_back(arg);
    }
  }
  if (scopes.empty()) usage();

  bool any_violation = false;
  bool emitted = false;
  for (const std::string& path : scopes) {
    // Audit first: an out-of-scope file would either mislead (silently
    // unexplorable) or blow the budgets, so it is a hard error.
    model::Scope scope;
    try {
      const io::AuditReport audit = model::audit_model_file(path);
      if (!audit.ok()) {
        std::cerr << "quora_model: " << path << " fails its scope audit:\n";
        io::write_report(std::cerr, audit);
        return 2;
      }
      scope = model::load_model_file(path);
    } catch (const std::exception& e) {
      std::cerr << "quora_model: " << e.what() << '\n';
      return 2;
    }
    if (depth_override) scope.max_depth = *depth_override;
    if (states_override) scope.max_states = *states_override;
    if (no_mutations) scope.chaos.mutations.clear();
    for (const std::string& m : extra_mutations) {
      scope.chaos.mutations.push_back(m);
    }

    if (!quiet) {
      std::cout << "== " << path << '\n'
                << "scope " << scope.name() << ": "
                << scope.chaos.system->topology.site_count() << " sites, "
                << scope.accesses.size() << " access(es), "
                << scope.faults.size() << " fault(s), depth "
                << scope.max_depth << ", states " << scope.max_states
                << (options.dpor ? "" : ", dpor off") << '\n';
    }

    model::Explorer explorer(scope, options);
    const std::optional<model::Violation> violation = explorer.run();
    const model::Stats& stats = explorer.stats();
    if (!quiet) {
      std::cout << "explored " << stats.explored << " states ("
                << stats.unique_states << " unique), " << stats.transitions
                << " transitions, " << stats.visited_hits
                << " visited hits, " << stats.sleep_pruned
                << " sleep-set prunes, max depth " << stats.max_depth_seen
                << '\n';
    }

    if (!violation) {
      if (!quiet) {
        if (stats.state_capped) {
          std::cout << "INCOMPLETE: state budget exhausted before the scope "
                       "was covered\n";
        } else if (stats.depth_capped) {
          std::cout << "no violation up to depth " << scope.max_depth
                    << " (some paths were cut off)\n";
        } else {
          std::cout << "exhausted: no violation reachable in this scope\n";
        }
      }
      continue;
    }

    any_violation = true;
    std::cout << "VIOLATION in " << path << ':' << '\n';
    for (const msg::SafetyViolation& v : violation->safety.violations) {
      std::cout << "  " << v.message << '\n';
    }
    for (const model::PropertyViolation& p : violation->properties) {
      std::cout << "  [" << p.code << "] " << p.message << '\n';
    }

    const std::vector<model::Choice> minimized =
        explorer.minimize(*violation);
    std::cout << "minimized counterexample (" << minimized.size()
              << " of " << violation->trace.size() << " steps):\n";
    for (std::size_t i = 0; i < minimized.size(); ++i) {
      std::cout << "  " << (i + 1) << ". " << minimized[i].describe(scope)
                << '\n';
    }

    if (!emit_path.empty() && !emitted) {
      model::Violation final = *violation;
      if (std::optional<model::Violation> replayed =
              explorer.replay(minimized)) {
        final = *replayed;
      }
      const model::EmittedChaos chaos = model::emit_chaos(scope, final);
      std::ofstream out(emit_path);
      if (!out) {
        std::cerr << "quora_model: cannot write " << emit_path << '\n';
        return 2;
      }
      out << chaos.text;
      emitted = true;
      std::cout << "counterexample written to " << emit_path
                << (chaos.validated
                        ? " (replay validated in-process: seed " +
                              std::to_string(chaos.seed) + ", step " +
                              std::to_string(chaos.step) + ")"
                        : " (replay NOT validated in-process)")
                << '\n';
    }
  }
  return any_violation ? 1 : 0;
}
