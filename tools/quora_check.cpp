// quora-check — static audit of topology/vote/quorum configurations,
// .chaos fault-plan scenarios, and .model explorer scopes.
//
//   quora_check [--json] [--strict] [--quiet] FILE...
//
// Loads each configuration (the topology text format of io/topology_io
// plus the checker directives `quorum`, `total_votes`, `qr_version` — see
// io/config_audit.hpp) and audits it without running anything: quorum
// intersection and write-write intersection, read/write complementarity,
// vote-sum consistency, QR version staleness, statically unreachable
// votes/quorums, dominated assignments, and (for small systems) the
// enumerated coterie properties.
//
// Output is one finding per line, `severity<TAB>code<TAB>message`, or —
// with --json — a single JSON array of {code, severity, path, message}
// objects covering every FILE (the same artifact schema quora_lint
// emits, so CI dashboards consume one format). Exit status: 0 when every
// file passes (no errors; with --strict, no warnings either), 1 when any
// file fails, 2 on usage or I/O problems — so CI can gate on it directly.

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "fault/chaos_audit.hpp"
#include "io/config_audit.hpp"
#include "model/scope.hpp"

namespace {

bool has_suffix(const std::string& path, const std::string& suffix) {
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool is_chaos_file(const std::string& path) {
  return has_suffix(path, ".chaos");
}

bool is_model_file(const std::string& path) {
  return has_suffix(path, ".model");
}

[[noreturn]] void usage() {
  std::cerr << "usage: quora_check [--json] [--sarif FILE] [--strict] "
               "[--quiet] FILE...\n"
               "  --json        one JSON array of {code, severity, path, "
               "message}\n"
               "                findings across all FILEs\n"
               "  --sarif FILE  also write the findings as SARIF 2.1.0\n"
               "  --strict      treat warnings as failures\n"
               "  --quiet       suppress per-file PASS lines\n";
  std::exit(2);
}

} // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool strict = false;
  bool quiet = false;
  std::string sarif_path;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--sarif") {
      if (++i >= argc) {
        std::cerr << "quora_check: --sarif needs a value\n";
        usage();
      }
      sarif_path = argv[i];
    } else if (arg == "--strict") {
      strict = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "quora_check: unknown option " << arg << '\n';
      usage();
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) usage();

  bool any_failed = false;
  bool first_json_finding = true;
  std::vector<quora::io::SarifResult> sarif_results;
  if (json) std::cout << "[";
  for (const std::string& file : files) {
    quora::io::AuditReport report;
    try {
      // .chaos scenarios get the fault-plan audit (schedule sanity plus
      // topology range checks), .model scopes the explorer-scope audit
      // (model-scope-config); everything else is a plain configuration.
      report = is_chaos_file(file)   ? quora::fault::audit_chaos_file(file)
               : is_model_file(file) ? quora::model::audit_model_file(file)
                                     : quora::io::audit_config_file(file);
    } catch (const std::exception& e) {
      std::cerr << "quora_check: " << e.what() << '\n';
      return 2;
    }
    const bool failed = !report.ok() || (strict && report.warning_count() > 0);
    any_failed = any_failed || failed;
    if (!sarif_path.empty()) {
      for (const quora::io::AuditFinding& f : report.findings) {
        sarif_results.push_back(quora::io::audit_sarif_result(f, file));
      }
    }
    if (json) {
      for (const quora::io::AuditFinding& f : report.findings) {
        std::cout << (first_json_finding ? "\n  " : ",\n  ");
        quora::io::write_finding_json(std::cout, f, file);
        first_json_finding = false;
      }
    } else {
      if (files.size() > 1) std::cout << "== " << file << '\n';
      quora::io::write_report(std::cout, report);
      if (!quiet) {
        std::cout << (failed ? "FAIL " : "PASS ") << file << " ("
                  << report.error_count() << " error(s), "
                  << report.warning_count() << " warning(s))\n";
      }
    }
  }
  if (json) std::cout << (first_json_finding ? "]\n" : "\n]\n");
  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path);
    if (!out) {
      std::cerr << "quora_check: cannot write " << sarif_path << '\n';
      return 2;
    }
    quora::io::write_sarif(out, "quora_check", "", quora::io::audit_sarif_rules(),
                           sarif_results);
  }
  return any_failed ? 1 : 0;
}
