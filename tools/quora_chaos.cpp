// quora-chaos — deterministic chaos soak harness for the message-level
// protocol.
//
//   quora_chaos [--seed N] [--horizon T] [--max-retries K] [--log FILE]
//               [--trace FILE] [--metrics FILE] [--adapt ...]
//               [--verify-determinism] [--quiet] PLAN.chaos...
//   quora_chaos --sweep [--seeds N] [--report FILE.json] PLAN.chaos...
//   quora_chaos --race [--seeds N] [--report FILE.json] PLAN.chaos...
//
// Each plan file (grammar: docs/FAULT_INJECTION.md) carries its own
// topology, initial quorum assignment, seed, and horizon; the flags
// override the file. The harness audits the plan statically (quora_check's
// chaos rules), replays it against a `msg::Cluster` with the fault
// injector attached, and then audits the run against the protocol's
// safety invariants (msg/invariants.hpp):
//
//   1. granted reads observe every previously decided write;
//   2. no two writes commit the same version;
//   3. nothing is granted under a superseded QR assignment;
//   4. decision times are causal.
//
// Fault plans may tank availability — they must never produce a safety
// violation. With --verify-determinism every plan is replayed twice and
// the two event logs compared byte for byte.
//
// --sweep runs the scenario matrix instead: every plan under --seeds
// consecutive seeds (starting at the plan's own seed, or --seed), and
// reports a Table-1-style per-failure-domain breakdown — availability
// and mean decided-access latency per region (level-1 domain) of an
// annotated topology, "-" for unannotated sites. --report additionally
// writes the aggregate as a JSON artifact for CI trending.
//
// --adapt attaches the closed-loop controller (src/adapt) to every run:
// the cluster estimates f_i(v) on-line, re-runs the Figure-1 optimizer
// each --adapt-epoch seconds, and installs via §2.2 when the predicted
// gain clears --adapt-threshold for --adapt-dwell consecutive epochs.
// --adapt-min-write switches the optimizer to the §5.4 write-constrained
// objective; --adapt-omega to the weighted objective.
//
// --race is the acceptance experiment: each plan runs twice per seed with
// identical seeds — once frozen (the plan's initial assignment, loop
// detached) and once adaptive — and the report compares availability over
// the tail half of the horizon, where a drifting workload or failure ramp
// has settled into the new regime. Plans containing `alpha`/`reliability`
// /`rho` regime shifts run with the live background failure process
// (reliability 0.96, rho 1/128) instead of the usual scripted-faults-only
// suppression, so `at T rho X` ramps actually bite.
//
// Exit status: 0 all plans safe (and deterministic, if requested);
// 1 a safety-invariant violation or determinism mismatch; 2 usage,
// I/O, or plan-audit errors.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "adapt/controller.hpp"
#include "fault/chaos_audit.hpp"
#include "fault/event_log.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "io/config_audit.hpp"
#include "msg/cluster.hpp"
#include "msg/invariants.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using namespace quora;

[[noreturn]] void usage() {
  std::cerr
      << "usage: quora_chaos [options] PLAN.chaos...\n"
         "  --seed N              override the plan's seed\n"
         "  --horizon T           override the plan's horizon (simulated time)\n"
         "  --max-retries K       coordinator retry budget (default 2)\n"
         "  --log FILE            append every run's event log to FILE\n"
         "  --trace FILE          record a structured event trace of each plan's\n"
         "                        primary run (.json => Chrome trace_event)\n"
         "  --metrics FILE        dump the metrics registry (all plans pooled)\n"
         "  --verify-determinism  run each plan twice, diff the event logs\n"
         "  --quiet               only print per-plan verdict lines\n"
         "  --sweep               scenario-sweep mode: run every plan under\n"
         "                        --seeds consecutive seeds and report a\n"
         "                        per-region availability/latency table\n"
         "  --seeds N             seeds per plan in --sweep/--race (default 3)\n"
         "  --report FILE         write the sweep/race aggregate as JSON\n"
         "  --adapt               attach the closed-loop quorum optimizer\n"
         "  --adapt-epoch T       controller epoch length (default 50)\n"
         "  --adapt-threshold X   hysteresis gain threshold (default 0.02)\n"
         "  --adapt-dwell N       epochs the gain must persist (default 2)\n"
         "  --adapt-min-write X   switch to the write-constrained objective\n"
         "                        with floor A(0, q_r) >= X\n"
         "  --adapt-omega W       switch to the weighted objective with\n"
         "                        write weight W\n"
         "  --race                adaptive-vs-frozen race: each plan runs\n"
         "                        both ways per seed; report compares\n"
         "                        tail-half availability\n";
  std::exit(2);
}

struct Options {
  std::optional<std::uint64_t> seed;
  std::optional<double> horizon;
  std::uint32_t max_retries = 2;
  std::string log_path;
  std::string trace_path;
  std::string metrics_path;
  bool verify_determinism = false;
  bool quiet = false;
  bool sweep = false;
  std::uint32_t sweep_seeds = 3;
  std::string report_path;
  bool adapt = false;
  bool race = false;
  adapt::AdaptiveController::Options adapt_opts;
  std::vector<std::string> plans;
};

/// Per-failure-domain (region) slice of one run or sweep: decided
/// accesses whose *origin* lies in that region.
struct RegionStats {
  std::string region;  // level-1 domain prefix; "-" for unannotated sites
  std::uint64_t accesses = 0;
  std::uint64_t granted = 0;
  double latency_sum = 0.0;  // decide - submit, over decided accesses
};

RegionStats& region_slot(std::vector<RegionStats>& regions,
                         const std::string& name) {
  for (RegionStats& r : regions) {
    if (r.region == name) return r;
  }
  regions.push_back(RegionStats{name, 0, 0, 0.0});
  return regions.back();
}

struct RunResult {
  fault::EventLog log;
  msg::SafetyReport safety;
  std::uint64_t decided = 0;
  std::uint64_t granted = 0;
  std::uint64_t denied_by[msg::kDenyReasonCount] = {};
  std::uint64_t retries = 0;
  std::uint64_t stale_rejections = 0;
  std::uint64_t installs = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t messages_duplicated = 0;
  std::uint64_t tail_decided = 0;   // accesses submitted in [horizon/2, horizon)
  std::uint64_t tail_granted = 0;
  std::uint64_t adapt_epochs = 0;
  std::uint64_t adapt_installs = 0;
  std::vector<RegionStats> regions;  // sorted by first appearance
};

bool plan_shifts_failure_rates(const fault::FaultPlan& plan) {
  for (const fault::Action& a : plan.actions()) {
    if (a.kind == fault::Action::Kind::kSetReliability ||
        a.kind == fault::Action::Kind::kSetRho) {
      return true;
    }
  }
  return false;
}

RunResult run_plan(const fault::ChaosSpec& spec, std::uint64_t seed,
                   double horizon, std::uint32_t max_retries,
                   obs::Registry* registry = nullptr,
                   obs::TraceRecorder* trace = nullptr,
                   const adapt::AdaptiveController::Options* adapt_opts =
                       nullptr) {
  const net::Topology& topo = spec.system->topology;

  msg::Cluster::Params params;
  if (spec.has_quorum) {
    params.spec = spec.quorum;
  } else {
    const net::Vote majority =
        static_cast<net::Vote>(topo.total_votes() / 2 + 1);
    params.spec = quorum::QuorumSpec{majority, majority};
  }
  params.max_retries = max_retries;
  // Seeded protocol mutations (checker-validation fixtures): the plan
  // opts into a known-bad behaviour so the counterexample it carries
  // reproduces the violation. audit_chaos warns on these.
  for (const std::string& m : spec.mutations) {
    if (m == "accept-stale-qr") params.mutations.accept_stale_qr = true;
    if (m == "skip-crash-cleanup") params.mutations.skip_crash_cleanup = true;
  }
  if (plan_shifts_failure_rates(spec.plan)) {
    // The plan ramps the background failure process itself, so that
    // process must be live: the simulator defaults (sites up 96% of the
    // time, failures 128x slower than accesses) are the pre-ramp regime.
    params.config.reliability = 0.96;
    params.config.rho = 1.0 / 128.0;
  } else {
    // The plan is the failure source: background Poisson failures are
    // pushed out past the horizon so every fault in the log is scripted.
    params.config.reliability = 0.999999;
    params.config.rho = 1e-9;
  }

  msg::Cluster cluster(topo, params, seed);
  fault::FaultInjector injector(spec.plan, seed);
  std::optional<adapt::AdaptiveController> controller;
  RunResult result;
  cluster.attach_injector(&injector);
  cluster.attach_log(&result.log);
  if (registry != nullptr) cluster.set_metrics(registry);
  if (trace != nullptr) cluster.set_trace(trace);
  if (adapt_opts != nullptr) {
    controller.emplace(topo.site_count(), topo.total_votes(), *adapt_opts);
    cluster.attach_adaptive(&*controller);
  }
  cluster.run_until(horizon);

  result.safety = msg::check_safety(cluster);
  for (const msg::AccessOutcome& o : cluster.outcomes()) {
    ++result.decided;
    if (o.granted) {
      ++result.granted;
    } else {
      ++result.denied_by[static_cast<std::size_t>(o.deny_reason)];
    }
    if (o.submit_time >= horizon * 0.5) {
      ++result.tail_decided;
      if (o.granted) ++result.tail_granted;
    }
    std::string region =
        topo.has_domains() ? topo.domain_prefix(o.origin, 1) : std::string();
    if (region.empty()) region = "-";
    RegionStats& slot = region_slot(result.regions, region);
    ++slot.accesses;
    if (o.granted) ++slot.granted;
    slot.latency_sum += o.decide_time - o.submit_time;
  }
  if (controller) {
    result.adapt_epochs = controller->epochs();
    result.adapt_installs = controller->installs_recommended();
  }
  result.retries = cluster.retries();
  result.stale_rejections = cluster.stale_rejections();
  result.installs = cluster.installs().size();
  result.messages_sent = cluster.messages_sent();
  result.messages_dropped = cluster.messages_dropped();
  result.messages_duplicated = cluster.messages_duplicated();
  return result;
}

void json_escape(std::ostream& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out << buf;
    } else {
      out << c;
    }
  }
}

/// One plan's sweep aggregate: per-region stats pooled across seeds.
struct PlanSweep {
  std::string name;
  std::string path;
  std::uint64_t first_seed = 0;
  std::uint32_t seeds = 0;
  bool safe = true;
  std::uint64_t decided = 0;
  std::uint64_t granted = 0;
  std::vector<RegionStats> regions;
};

void write_sweep_row(std::ostream& out, const RegionStats& r) {
  const double avail =
      r.accesses == 0 ? 0.0
                      : static_cast<double>(r.granted) /
                            static_cast<double>(r.accesses);
  const double mean_latency =
      r.accesses == 0 ? 0.0 : r.latency_sum / static_cast<double>(r.accesses);
  char buf[160];
  std::snprintf(buf, sizeof buf, "  %-14s %9llu %9llu   %7.4f   %9.4f\n",
                r.region.c_str(),
                static_cast<unsigned long long>(r.accesses),
                static_cast<unsigned long long>(r.granted), avail,
                mean_latency);
  out << buf;
}

void write_sweep_report(std::ostream& out,
                        const std::vector<PlanSweep>& sweeps) {
  out << "{\"quora-chaos-sweep\": 1, \"plans\": [";
  for (std::size_t p = 0; p < sweeps.size(); ++p) {
    const PlanSweep& s = sweeps[p];
    if (p != 0) out << ", ";
    out << "{\"name\": \"";
    json_escape(out, s.name);
    out << "\", \"path\": \"";
    json_escape(out, s.path);
    out << "\", \"first_seed\": " << s.first_seed
        << ", \"seeds\": " << s.seeds
        << ", \"safe\": " << (s.safe ? "true" : "false")
        << ", \"accesses\": " << s.decided << ", \"granted\": " << s.granted
        << ", \"regions\": [";
    for (std::size_t i = 0; i < s.regions.size(); ++i) {
      const RegionStats& r = s.regions[i];
      const double avail =
          r.accesses == 0 ? 0.0
                          : static_cast<double>(r.granted) /
                                static_cast<double>(r.accesses);
      const double mean_latency =
          r.accesses == 0 ? 0.0
                          : r.latency_sum / static_cast<double>(r.accesses);
      if (i != 0) out << ", ";
      out << "{\"region\": \"";
      json_escape(out, r.region);
      out << "\", \"accesses\": " << r.accesses
          << ", \"granted\": " << r.granted << ", \"availability\": " << avail
          << ", \"mean_latency\": " << mean_latency << "}";
    }
    out << "]}";
  }
  out << "]}\n";
}

/// --sweep: plan matrix x consecutive seeds, Table-1-style per-domain
/// availability/latency report, optional JSON artifact.
int run_sweep(const Options& opt) {
  std::vector<PlanSweep> sweeps;
  bool any_unsafe = false;
  for (const std::string& path : opt.plans) {
    io::AuditReport audit;
    fault::ChaosSpec spec;
    try {
      audit = fault::audit_chaos_file(path);
      if (audit.ok()) spec = fault::load_chaos_file(path);
    } catch (const std::exception& e) {
      std::cerr << "quora_chaos: " << path << ": " << e.what() << '\n';
      return 2;
    }
    if (!audit.ok()) {
      std::cerr << "quora_chaos: " << path << " fails static audit:\n";
      io::write_report(std::cerr, audit);
      return 2;
    }
    const double horizon = opt.horizon.value_or(spec.horizon);
    if (!(horizon > 0.0)) {
      std::cerr << "quora_chaos: " << path
                << ": no horizon in the plan and none on the command line\n";
      return 2;
    }

    PlanSweep sweep;
    sweep.name = spec.name;
    sweep.path = path;
    sweep.first_seed = opt.seed.value_or(spec.seed);
    sweep.seeds = opt.sweep_seeds;
    for (std::uint32_t k = 0; k < opt.sweep_seeds; ++k) {
      const RunResult run =
          run_plan(spec, sweep.first_seed + k, horizon, opt.max_retries);
      sweep.safe = sweep.safe && run.safety.ok();
      sweep.decided += run.decided;
      sweep.granted += run.granted;
      for (const RegionStats& r : run.regions) {
        RegionStats& slot = region_slot(sweep.regions, r.region);
        slot.accesses += r.accesses;
        slot.granted += r.granted;
        slot.latency_sum += r.latency_sum;
      }
      if (!run.safety.ok()) {
        std::cout << "  SAFETY VIOLATIONS (seed "
                  << sweep.first_seed + k << "):\n";
        for (const quora::msg::SafetyViolation& v : run.safety.violations) {
          std::cout << "    " << v.message << '\n';
        }
      }
    }
    std::sort(sweep.regions.begin(), sweep.regions.end(),
              [](const RegionStats& a, const RegionStats& b) {
                return a.region < b.region;
              });

    std::cout << "sweep " << sweep.name << " (" << path << ")\n"
              << "  seeds=" << sweep.first_seed << ".."
              << sweep.first_seed + opt.sweep_seeds - 1
              << " horizon=" << horizon << '\n'
              << "  region          accesses   granted     avail    "
                 "mean-lat\n";
    for (const RegionStats& r : sweep.regions) {
      write_sweep_row(std::cout, r);
    }
    RegionStats total{"(all)", sweep.decided, sweep.granted, 0.0};
    for (const RegionStats& r : sweep.regions) {
      total.latency_sum += r.latency_sum;
    }
    write_sweep_row(std::cout, total);
    std::cout << (sweep.safe ? "SAFE " : "UNSAFE ") << sweep.name << '\n';
    any_unsafe = any_unsafe || !sweep.safe;
    sweeps.push_back(std::move(sweep));
  }

  if (!opt.report_path.empty()) {
    std::ofstream out(opt.report_path);
    if (!out) {
      std::cerr << "quora_chaos: cannot open " << opt.report_path << '\n';
      return 2;
    }
    write_sweep_report(out, sweeps);
  }
  return any_unsafe ? 1 : 0;
}

/// One side of an adaptive-vs-frozen race, pooled across seeds.
struct RaceSide {
  std::uint64_t decided = 0;
  std::uint64_t granted = 0;
  std::uint64_t tail_decided = 0;
  std::uint64_t tail_granted = 0;
  std::uint64_t installs = 0;
  std::uint64_t epochs = 0;
  bool safe = true;

  void absorb(const RunResult& run) {
    decided += run.decided;
    granted += run.granted;
    tail_decided += run.tail_decided;
    tail_granted += run.tail_granted;
    installs += run.adapt_installs;
    epochs += run.adapt_epochs;
    safe = safe && run.safety.ok();
  }
  double availability() const {
    return decided == 0 ? 0.0
                        : static_cast<double>(granted) /
                              static_cast<double>(decided);
  }
  double tail_availability() const {
    return tail_decided == 0 ? 0.0
                             : static_cast<double>(tail_granted) /
                                   static_cast<double>(tail_decided);
  }
};

struct PlanRace {
  std::string name;
  std::string path;
  std::uint64_t first_seed = 0;
  std::uint32_t seeds = 0;
  double horizon = 0.0;
  RaceSide frozen;
  RaceSide adaptive;

  double margin() const {
    return adaptive.tail_availability() - frozen.tail_availability();
  }
};

void write_race_side(std::ostream& out, const RaceSide& s) {
  out << "{\"accesses\": " << s.decided << ", \"granted\": " << s.granted
      << ", \"availability\": " << s.availability()
      << ", \"tail_accesses\": " << s.tail_decided
      << ", \"tail_availability\": " << s.tail_availability()
      << ", \"installs\": " << s.installs << ", \"epochs\": " << s.epochs
      << ", \"safe\": " << (s.safe ? "true" : "false") << "}";
}

void write_race_report(std::ostream& out, const std::vector<PlanRace>& races) {
  out << "{\"quora-adapt-race\": 1, \"plans\": [";
  for (std::size_t p = 0; p < races.size(); ++p) {
    const PlanRace& r = races[p];
    if (p != 0) out << ", ";
    out << "{\"name\": \"";
    json_escape(out, r.name);
    out << "\", \"path\": \"";
    json_escape(out, r.path);
    out << "\", \"first_seed\": " << r.first_seed << ", \"seeds\": " << r.seeds
        << ", \"horizon\": " << r.horizon << ", \"frozen\": ";
    write_race_side(out, r.frozen);
    out << ", \"adaptive\": ";
    write_race_side(out, r.adaptive);
    out << ", \"tail_margin\": " << r.margin() << "}";
  }
  out << "]}\n";
}

/// --race: the acceptance experiment. Each plan runs frozen and adaptive
/// under the same seeds; the tail half of the horizon — after the plan's
/// regime shift has settled — is where the loop must win.
int run_race(const Options& opt) {
  std::vector<PlanRace> races;
  bool any_unsafe = false;
  for (const std::string& path : opt.plans) {
    io::AuditReport audit;
    fault::ChaosSpec spec;
    try {
      audit = fault::audit_chaos_file(path);
      if (audit.ok()) spec = fault::load_chaos_file(path);
    } catch (const std::exception& e) {
      std::cerr << "quora_chaos: " << path << ": " << e.what() << '\n';
      return 2;
    }
    if (!audit.ok()) {
      std::cerr << "quora_chaos: " << path << " fails static audit:\n";
      io::write_report(std::cerr, audit);
      return 2;
    }
    const double horizon = opt.horizon.value_or(spec.horizon);
    if (!(horizon > 0.0)) {
      std::cerr << "quora_chaos: " << path
                << ": no horizon in the plan and none on the command line\n";
      return 2;
    }

    PlanRace race;
    race.name = spec.name;
    race.path = path;
    race.first_seed = opt.seed.value_or(spec.seed);
    race.seeds = opt.sweep_seeds;
    race.horizon = horizon;
    for (std::uint32_t k = 0; k < opt.sweep_seeds; ++k) {
      const std::uint64_t seed = race.first_seed + k;
      race.frozen.absorb(
          run_plan(spec, seed, horizon, opt.max_retries));
      race.adaptive.absorb(run_plan(spec, seed, horizon, opt.max_retries,
                                    nullptr, nullptr, &opt.adapt_opts));
    }

    char buf[200];
    std::snprintf(buf, sizeof buf,
                  "race %s seeds=%llu..%llu horizon=%g\n"
                  "  frozen    avail=%.4f tail=%.4f (n=%llu)\n"
                  "  adaptive  avail=%.4f tail=%.4f (n=%llu) installs=%llu "
                  "epochs=%llu\n"
                  "  tail margin %+.4f\n",
                  race.name.c_str(),
                  static_cast<unsigned long long>(race.first_seed),
                  static_cast<unsigned long long>(race.first_seed +
                                                  race.seeds - 1),
                  horizon, race.frozen.availability(),
                  race.frozen.tail_availability(),
                  static_cast<unsigned long long>(race.frozen.tail_decided),
                  race.adaptive.availability(),
                  race.adaptive.tail_availability(),
                  static_cast<unsigned long long>(race.adaptive.tail_decided),
                  static_cast<unsigned long long>(race.adaptive.installs),
                  static_cast<unsigned long long>(race.adaptive.epochs),
                  race.margin());
    std::cout << buf;
    const bool safe = race.frozen.safe && race.adaptive.safe;
    std::cout << (safe ? "SAFE " : "UNSAFE ") << race.name << '\n';
    any_unsafe = any_unsafe || !safe;
    races.push_back(std::move(race));
  }

  if (!opt.report_path.empty()) {
    std::ofstream out(opt.report_path);
    if (!out) {
      std::cerr << "quora_chaos: cannot open " << opt.report_path << '\n';
      return 2;
    }
    write_race_report(out, races);
  }
  return any_unsafe ? 1 : 0;
}

} // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "quora_chaos: " << arg << " needs a value\n";
        usage();
      }
      return argv[++i];
    };
    try {
      if (arg == "--seed") {
        opt.seed = std::stoull(value());
      } else if (arg == "--horizon") {
        opt.horizon = std::stod(value());
      } else if (arg == "--max-retries") {
        opt.max_retries = static_cast<std::uint32_t>(std::stoul(value()));
      } else if (arg == "--log") {
        opt.log_path = value();
      } else if (arg == "--trace") {
        opt.trace_path = value();
      } else if (arg == "--metrics") {
        opt.metrics_path = value();
      } else if (arg == "--verify-determinism") {
        opt.verify_determinism = true;
      } else if (arg == "--quiet") {
        opt.quiet = true;
      } else if (arg == "--sweep") {
        opt.sweep = true;
      } else if (arg == "--seeds") {
        opt.sweep_seeds = static_cast<std::uint32_t>(std::stoul(value()));
        if (opt.sweep_seeds == 0) {
          std::cerr << "quora_chaos: --seeds needs at least 1\n";
          usage();
        }
      } else if (arg == "--report") {
        opt.report_path = value();
      } else if (arg == "--adapt") {
        opt.adapt = true;
      } else if (arg == "--adapt-epoch") {
        opt.adapt = true;
        opt.adapt_opts.epoch_length = std::stod(value());
      } else if (arg == "--adapt-threshold") {
        opt.adapt = true;
        opt.adapt_opts.threshold = std::stod(value());
      } else if (arg == "--adapt-dwell") {
        opt.adapt = true;
        opt.adapt_opts.dwell = static_cast<std::uint32_t>(std::stoul(value()));
      } else if (arg == "--adapt-min-write") {
        opt.adapt = true;
        opt.adapt_opts.objective =
            adapt::AdaptiveController::Objective::kWriteConstrained;
        opt.adapt_opts.min_write_availability = std::stod(value());
      } else if (arg == "--adapt-omega") {
        opt.adapt = true;
        opt.adapt_opts.objective =
            adapt::AdaptiveController::Objective::kWeighted;
        opt.adapt_opts.omega = std::stod(value());
      } else if (arg == "--race") {
        opt.race = true;
      } else if (arg == "--help" || arg == "-h") {
        usage();
      } else if (!arg.empty() && arg[0] == '-') {
        std::cerr << "quora_chaos: unknown option " << arg << '\n';
        usage();
      } else {
        opt.plans.push_back(arg);
      }
    } catch (const std::exception&) {
      std::cerr << "quora_chaos: bad value for " << arg << '\n';
      usage();
    }
  }
  if (opt.plans.empty()) usage();
  try {
    opt.adapt_opts.validate();
  } catch (const std::exception& e) {
    std::cerr << "quora_chaos: " << e.what() << '\n';
    return 2;
  }
  if (opt.race) return run_race(opt);
  if (opt.sweep) return run_sweep(opt);

  std::ofstream log_out;
  if (!opt.log_path.empty()) {
    log_out.open(opt.log_path, std::ios::app);
    if (!log_out) {
      std::cerr << "quora_chaos: cannot open " << opt.log_path << '\n';
      return 2;
    }
  }

  if ((!opt.trace_path.empty() || !opt.metrics_path.empty()) &&
      !obs::kEnabled) {
    std::cerr << "quora_chaos: note: built with QUORA_OBS=OFF; "
                 "--trace/--metrics output will be empty\n";
  }
  // Shared across plans: the registry pools, the trace ring keeps the
  // most recent window. Only each plan's primary run records — the
  // --verify-determinism replay stays bare, so a determinism mismatch
  // can never be *caused* by the recorder (its inertness is proven
  // separately by the golden suite).
  std::optional<obs::Registry> obs_registry;
  std::optional<obs::TraceRecorder> obs_trace;
  if (!opt.metrics_path.empty()) obs_registry.emplace();
  if (!opt.trace_path.empty()) obs_trace.emplace();

  bool any_unsafe = false;
  for (const std::string& path : opt.plans) {
    // Static audit first: a plan that fails its own sanity checks is a
    // usage error, not a chaos finding.
    io::AuditReport audit;
    fault::ChaosSpec spec;
    try {
      audit = fault::audit_chaos_file(path);
      if (audit.ok()) spec = fault::load_chaos_file(path);
    } catch (const std::exception& e) {
      std::cerr << "quora_chaos: " << path << ": " << e.what() << '\n';
      return 2;
    }
    if (!audit.ok()) {
      std::cerr << "quora_chaos: " << path << " fails static audit:\n";
      io::write_report(std::cerr, audit);
      return 2;
    }

    const std::uint64_t seed = opt.seed.value_or(spec.seed);
    const double horizon = opt.horizon.value_or(spec.horizon);
    if (!(horizon > 0.0)) {
      std::cerr << "quora_chaos: " << path
                << ": no horizon in the plan and none on the command line\n";
      return 2;
    }

    RunResult run =
        run_plan(spec, seed, horizon, opt.max_retries,
                 obs_registry ? &*obs_registry : nullptr,
                 obs_trace ? &*obs_trace : nullptr,
                 opt.adapt ? &opt.adapt_opts : nullptr);
    bool deterministic = true;
    if (opt.verify_determinism) {
      const RunResult replay =
          run_plan(spec, seed, horizon, opt.max_retries, nullptr, nullptr,
                   opt.adapt ? &opt.adapt_opts : nullptr);
      deterministic = replay.log.lines() == run.log.lines();
    }

    if (log_out.is_open()) {
      log_out << "== " << spec.name << " seed=" << seed << '\n';
      run.log.write(log_out);
    }
    // Rewritten after every plan so an interrupted multi-plan soak still
    // leaves valid observability files behind.
    try {
      if (obs_registry) {
        obs::write_metrics_file(*obs_registry, opt.metrics_path);
      }
      if (obs_trace) obs::write_trace_file(*obs_trace, opt.trace_path);
    } catch (const std::exception& e) {
      std::cerr << "quora_chaos: " << e.what() << '\n';
      return 2;
    }

    if (!opt.quiet) {
      std::cout << "plan " << spec.name << " (" << path << ")\n"
                << "  seed=" << seed << " horizon=" << horizon
                << " accesses=" << run.decided << " granted=" << run.granted
                << '\n'
                << "  retries=" << run.retries
                << " stale-rejections=" << run.stale_rejections
                << " qr-installs=" << run.installs << '\n'
                << "  messages sent=" << run.messages_sent
                << " dropped=" << run.messages_dropped
                << " duplicated=" << run.messages_duplicated << '\n';
      if (opt.adapt) {
        std::cout << "  adapt epochs=" << run.adapt_epochs
                  << " installs=" << run.adapt_installs << '\n';
      }
      std::cout << "  denials:";
      for (std::size_t r = 1; r < msg::kDenyReasonCount; ++r) {
        if (run.denied_by[r] == 0) continue;
        std::cout << ' '
                  << msg::deny_reason_name(static_cast<msg::DenyReason>(r))
                  << '=' << run.denied_by[r];
      }
      std::cout << "\n  log lines=" << run.log.size() << " hash=" << std::hex
                << run.log.hash() << std::dec << '\n';
    }

    const bool safe = run.safety.ok() && deterministic;
    any_unsafe = any_unsafe || !safe;
    if (!run.safety.ok()) {
      std::cout << "  SAFETY VIOLATIONS (" << run.safety.violations.size()
                << "):\n";
      for (const quora::msg::SafetyViolation& v : run.safety.violations) {
        std::cout << "    " << v.message << '\n';
      }
    }
    if (!deterministic) {
      std::cout << "  DETERMINISM MISMATCH: two same-seed runs diverged\n";
    }
    std::cout << (safe ? "SAFE " : "UNSAFE ") << spec.name << " ("
              << run.safety.reads_checked << " reads, "
              << run.safety.writes_checked << " writes checked)\n";
  }
  return any_unsafe ? 1 : 0;
}
