// quora_cli — drive the library from a shell.
//
//   quora_cli generate <kind> [args...] > topo.txt    emit a topology file
//   quora_cli info topo.txt                           structure summary
//   quora_cli measure topo.txt [options]              availability curves
//   quora_cli optimize topo.txt --alpha A [options]   optimal assignment
//
// `generate` kinds: ring N | topology N K | complete N | star N | grid W H |
//                   tree N
// `measure`/`optimize` options: --alpha A (repeatable for measure),
//   --batch N, --warmup N, --min-batches N, --max-batches N, --seed N,
//   --write-floor X (optimize), --surv (optimize on the SURV metric),
//   --stride N, --csv PATH, --svg PATH (measure),
//   --trace PATH, --metrics PATH (observability, docs/OBSERVABILITY.md)

#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "core/optimize.hpp"
#include "io/topology_io.hpp"
#include "metrics/experiment.hpp"
#include "net/builders.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "report/curve_report.hpp"
#include "report/svg_plot.hpp"
#include "report/table.hpp"

namespace {

using quora::report::TextTable;

[[noreturn]] void fail(const std::string& message) {
  std::cerr << "quora_cli: " << message << '\n';
  std::exit(2);
}

[[noreturn]] void usage() {
  std::cerr <<
      "usage:\n"
      "  quora_cli generate <ring N | topology N K | complete N | star N |\n"
      "                      grid W H | tree N>\n"
      "  quora_cli info <topology-file>\n"
      "  quora_cli measure <topology-file> [--alpha A]... [--batch N]\n"
      "            [--warmup N] [--min-batches N] [--max-batches N]\n"
      "            [--seed N] [--stride N] [--csv PATH] [--svg PATH]\n"
      "            [--trace PATH] [--metrics PATH]\n"
      "  quora_cli optimize <topology-file> --alpha A [--write-floor X]\n"
      "            [--omega W] [--surv] [--batch N] [--warmup N] [--seed N]\n"
      "            [--trace PATH] [--metrics PATH]\n";
  std::exit(2);
}

struct Options {
  std::vector<double> alphas;
  std::uint64_t batch = 150'000;
  std::uint64_t warmup = 20'000;
  std::uint32_t min_batches = 5;
  std::uint32_t max_batches = 8;
  std::uint64_t seed = 0xC0FFEE;
  unsigned stride = 7;
  double write_floor = -1.0;
  double omega = -1.0;
  bool surv = false;
  std::string csv;
  std::string svg;
  std::string trace;
  std::string metrics;
};

Options parse_options(int argc, char** argv, int first) {
  Options opt;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) fail("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--alpha") {
      opt.alphas.push_back(std::stod(value()));
    } else if (arg == "--batch") {
      opt.batch = std::stoull(value());
    } else if (arg == "--warmup") {
      opt.warmup = std::stoull(value());
    } else if (arg == "--min-batches") {
      opt.min_batches = static_cast<std::uint32_t>(std::stoul(value()));
    } else if (arg == "--max-batches") {
      opt.max_batches = static_cast<std::uint32_t>(std::stoul(value()));
    } else if (arg == "--seed") {
      opt.seed = std::stoull(value(), nullptr, 0);
    } else if (arg == "--stride") {
      opt.stride = static_cast<unsigned>(std::stoul(value()));
    } else if (arg == "--write-floor") {
      opt.write_floor = std::stod(value());
    } else if (arg == "--omega") {
      opt.omega = std::stod(value());
    } else if (arg == "--surv") {
      opt.surv = true;
    } else if (arg == "--csv") {
      opt.csv = value();
    } else if (arg == "--svg") {
      opt.svg = value();
    } else if (arg == "--trace") {
      opt.trace = value();
    } else if (arg == "--metrics") {
      opt.metrics = value();
    } else {
      fail("unknown option " + arg);
    }
  }
  return opt;
}

quora::metrics::CurveResult run_measurement(const quora::io::SystemSpec& spec,
                                            const Options& opt) {
  quora::sim::SimConfig config;
  config.warmup_accesses = opt.warmup;
  config.accesses_per_batch = opt.batch;
  quora::metrics::MeasurePolicy policy;
  if (!opt.alphas.empty()) policy.alphas = opt.alphas;
  policy.seed = opt.seed;
  policy.batch.min_batches = opt.min_batches;
  policy.batch.max_batches = opt.max_batches;
  if (spec.has_reliabilities()) {
    policy.profile = quora::sim::FailureProfile::from_reliabilities(
        config, spec.site_reliability, spec.link_reliability);
  }

  if ((!opt.trace.empty() || !opt.metrics.empty()) && !quora::obs::kEnabled) {
    std::cerr << "quora_cli: note: built with QUORA_OBS=OFF; --trace/--metrics "
                 "output will be empty\n";
  }
  std::optional<quora::obs::Registry> registry;
  std::optional<quora::obs::TraceRecorder> trace;
  if (!opt.metrics.empty()) policy.metrics = &registry.emplace();
  if (!opt.trace.empty()) policy.trace = &trace.emplace();

  auto result = quora::metrics::measure_curves(spec.topology, config, policy);
  if (!opt.metrics.empty()) {
    quora::obs::write_metrics_file(*registry, opt.metrics);
    std::cout << "metrics written to " << opt.metrics << '\n';
  }
  if (!opt.trace.empty()) {
    quora::obs::write_trace_file(*trace, opt.trace);
    std::cout << "trace written to " << opt.trace << '\n';
  }
  return result;
}

int cmd_generate(int argc, char** argv) {
  if (argc < 3) usage();
  const std::string kind = argv[2];
  const auto arg = [&](int i) -> std::uint32_t {
    if (2 + i >= argc) fail("generate " + kind + ": missing argument");
    return static_cast<std::uint32_t>(std::stoul(argv[2 + i]));
  };
  quora::net::Topology topo = [&] {
    if (kind == "ring") return quora::net::make_ring(arg(1));
    if (kind == "topology") return quora::net::make_ring_with_chords(arg(1), arg(2));
    if (kind == "complete") return quora::net::make_fully_connected(arg(1));
    if (kind == "star") return quora::net::make_star(arg(1));
    if (kind == "grid") return quora::net::make_grid(arg(1), arg(2));
    if (kind == "tree") return quora::net::make_binary_tree(arg(1));
    fail("unknown generate kind '" + kind + "'");
  }();
  quora::io::save_topology(std::cout, topo);
  return 0;
}

int cmd_info(int argc, char** argv) {
  if (argc < 3) usage();
  const quora::net::Topology topo = quora::io::load_topology_file(argv[2]);
  std::uint32_t min_degree = topo.site_count();
  std::uint32_t max_degree = 0;
  for (quora::net::SiteId s = 0; s < topo.site_count(); ++s) {
    min_degree = std::min(min_degree, topo.degree(s));
    max_degree = std::max(max_degree, topo.degree(s));
  }
  TextTable table({"property", "value"});
  table.add_row({"name", topo.name()});
  table.add_row({"sites", std::to_string(topo.site_count())});
  table.add_row({"links", std::to_string(topo.link_count())});
  table.add_row({"total votes (T)", std::to_string(topo.total_votes())});
  table.add_row({"max read quorum", std::to_string(topo.total_votes() / 2)});
  table.add_row({"degree min/max",
                 std::to_string(min_degree) + "/" + std::to_string(max_degree)});
  table.print(std::cout);
  return 0;
}

int cmd_measure(int argc, char** argv) {
  if (argc < 3) usage();
  const quora::io::SystemSpec spec = quora::io::load_system_file(argv[2]);
  const Options opt = parse_options(argc, argv, 3);
  const auto result = run_measurement(spec, opt);
  quora::report::print_curve_table(std::cout, result, opt.stride);
  if (!opt.csv.empty()) {
    std::ofstream out(opt.csv);
    quora::report::write_curve_csv(out, result);
    std::cout << "csv written to " << opt.csv << '\n';
  }
  if (!opt.svg.empty()) {
    quora::report::write_curve_svg_file(opt.svg, result);
    std::cout << "svg written to " << opt.svg << '\n';
  }
  return 0;
}

int cmd_optimize(int argc, char** argv) {
  if (argc < 3) usage();
  const quora::io::SystemSpec spec = quora::io::load_system_file(argv[2]);
  Options opt = parse_options(argc, argv, 3);
  if (opt.alphas.size() != 1) fail("optimize needs exactly one --alpha");
  const double alpha = opt.alphas[0];

  const auto result = run_measurement(spec, opt);
  const quora::core::AvailabilityCurve curve =
      opt.surv ? result.surv_curve() : result.pooled_curve();

  std::cout << "metric: " << (opt.surv ? "SURV" : "ACC") << ", alpha = "
            << TextTable::fmt(alpha, 2) << ", batches = " << result.batches
            << ", max CI half-width = "
            << TextTable::fmt(result.max_half_width, 4) << "\n\n";

  const auto unconstrained = quora::core::optimize_exhaustive(curve, alpha);
  TextTable table({"constraint", "q_r", "q_w", "availability", "write avail"});
  table.add_row({"none", std::to_string(unconstrained.q_r()),
                 std::to_string(unconstrained.q_w()),
                 TextTable::fmt(unconstrained.value, 4),
                 TextTable::fmt(curve.write_availability(unconstrained.q_r()), 4)});
  if (opt.write_floor >= 0.0) {
    const auto constrained =
        quora::core::optimize_write_constrained(curve, alpha, opt.write_floor);
    if (constrained) {
      table.add_row({"A_w >= " + TextTable::pct(opt.write_floor, 0),
                     std::to_string(constrained->q_r()),
                     std::to_string(constrained->q_w()),
                     TextTable::fmt(constrained->value, 4),
                     TextTable::fmt(
                         curve.write_availability(constrained->q_r()), 4)});
    } else {
      table.add_row({"A_w >= " + TextTable::pct(opt.write_floor, 0), "-", "-",
                     "infeasible", "-"});
    }
  }
  if (opt.omega >= 0.0) {
    // §5 weighted objective A(omega, alpha, q): write successes count
    // omega times a read success. The table's "availability" column shows
    // the weighted value, which is why it can exceed 1 for omega > 1.
    const auto weighted =
        quora::core::optimize_weighted(curve, alpha, opt.omega);
    table.add_row({"omega = " + TextTable::fmt(opt.omega, 2),
                   std::to_string(weighted.q_r()),
                   std::to_string(weighted.q_w()),
                   TextTable::fmt(weighted.value, 4),
                   TextTable::fmt(
                       curve.write_availability(weighted.q_r()), 4)});
  }
  table.print(std::cout);
  return 0;
}

} // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string command = argv[1];
  try {
    if (command == "generate") return cmd_generate(argc, argv);
    if (command == "info") return cmd_info(argc, argv);
    if (command == "measure") return cmd_measure(argc, argv);
    if (command == "optimize") return cmd_optimize(argc, argv);
  } catch (const std::exception& e) {
    fail(e.what());
  }
  usage();
}
