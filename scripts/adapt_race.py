#!/usr/bin/env python3
"""Drive `quora_chaos --race` on the adaptive-drift scenario and assert
the closed-loop acceptance property.

Usage:
    adapt_race.py --chaos-bin PATH [--examples DIR] [--seeds N]
                  [--report FILE.json] [--margin M] [--plan NAME]...

Runs each plan frozen and adaptive under N consecutive seeds and checks:

  1. both sides of every race report safe (no protocol-safety violation
     while the controller installs new assignments mid-chaos);
  2. the adaptive side actually closed the loop (epochs ticked and at
     least one install landed — a race the controller sat out proves
     nothing);
  3. the tail-window availability margin (adaptive - frozen over the
     post-drift half of the horizon) is at least --margin.

The JSON artifact (schema key "quora-adapt-race") is written by the
harness itself; this script only parses and judges it.

Exit status: 0 all checks hold, 1 a check failed, 2 usage/schema errors.
"""

import argparse
import json
import os
import subprocess
import sys

SCHEMA_KEY = "quora-adapt-race"

DEFAULT_PLANS = ["adaptive_drift_race.chaos"]


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--chaos-bin", required=True,
                    help="path to the quora_chaos binary")
    ap.add_argument("--examples", default="examples/chaos",
                    help="directory holding the shipped .chaos plans")
    ap.add_argument("--seeds", type=int, default=2,
                    help="seeds per plan (reduced matrix for CI)")
    ap.add_argument("--report", default="adapt-race.json",
                    help="JSON artifact path")
    ap.add_argument("--margin", type=float, default=0.02,
                    help="required tail-availability margin adaptive-frozen")
    ap.add_argument("--plan", action="append", default=None,
                    help="plan file name (repeatable; default: the shipped "
                         "adaptive-drift race)")
    args = ap.parse_args()

    plans = args.plan if args.plan else DEFAULT_PLANS
    plan_paths = [os.path.join(args.examples, p) for p in plans]
    for p in plan_paths:
        if not os.path.exists(p):
            print(f"adapt_race: missing plan {p}", file=sys.stderr)
            return 2

    cmd = [args.chaos_bin, "--race", "--adapt", "--seeds", str(args.seeds),
           "--report", args.report] + plan_paths
    print("+", " ".join(cmd), flush=True)
    proc = subprocess.run(cmd)
    # Exit 1 from the harness means an UNSAFE race; the margin judgement
    # below still wants the report, so only usage errors stop us here.
    if proc.returncode >= 2:
        print(f"adapt_race: harness exited {proc.returncode}", file=sys.stderr)
        return 2

    try:
        with open(args.report, "r", encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, ValueError) as e:
        print(f"adapt_race: cannot read {args.report}: {e}", file=sys.stderr)
        return 2
    if report.get(SCHEMA_KEY) != 1:
        print(f"adapt_race: {args.report} lacks the {SCHEMA_KEY} schema key",
              file=sys.stderr)
        return 2

    failed = False
    for plan in report.get("plans", []):
        name = plan.get("name", "?")
        frozen = plan.get("frozen", {})
        adaptive = plan.get("adaptive", {})

        for side_name, side in (("frozen", frozen), ("adaptive", adaptive)):
            if not side.get("safe", False):
                print(f"FAIL: {name} {side_name} side reported unsafe")
                failed = True

        if adaptive.get("epochs", 0) <= 0 or adaptive.get("installs", 0) <= 0:
            print(f"FAIL: {name} adaptive side never closed the loop "
                  f"(epochs={adaptive.get('epochs', 0)} "
                  f"installs={adaptive.get('installs', 0)})")
            failed = True

        margin = plan.get("tail_margin")
        if margin is None:
            print(f"FAIL: {name} report carries no tail_margin")
            failed = True
            continue
        verdict = "ok" if margin >= args.margin else "FAIL"
        print(f"{verdict}: {name} tail availability "
              f"frozen={frozen.get('tail_availability', 0):.4f} "
              f"adaptive={adaptive.get('tail_availability', 0):.4f} "
              f"margin={margin:+.4f} (need >= {args.margin})")
        if margin < args.margin:
            failed = True

    if not report.get("plans"):
        print("FAIL: report contains no plans")
        failed = True

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
