#!/usr/bin/env bash
# Fast pre-push lint: run quora_lint's token engine over only the C++
# files that changed relative to the merge base, instead of sweeping the
# whole tree.
#
#   scripts/lint_changed.sh [BASE_REF] [-- QUORA_LINT_ARGS...]
#
# BASE_REF defaults to origin/main when that ref exists, else main, else
# HEAD~1. The changed set is `git diff --merge-base` against it plus any
# staged/unstaged edits, filtered to tracked C++ sources under the sweep
# roots (src/, tools/, bench/). Zero changed files is a clean exit — the
# script is safe in hooks and CI on docs-only branches.
#
# The token engine needs no compile_commands.json and runs in
# milliseconds, so this is the loop you run on every commit; the full
# dual-engine sweep (AST engine over the whole tree, SARIF upload) stays
# in the CI lint-semantic job. See docs/STATIC_ANALYSIS.md.
#
# Exit status is quora_lint's: 0 clean, 1 findings, 2 usage/tooling
# problems (including a missing binary).

set -euo pipefail
cd "$(dirname "$0")/.."

base_ref=""
lint_args=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --help|-h)
      sed -n '2,20p' "$0" | sed 's/^# \{0,1\}//'
      exit 0
      ;;
    --)
      shift
      lint_args=("$@")
      break
      ;;
    *)
      if [[ -n "$base_ref" ]]; then
        echo "lint_changed.sh: unexpected argument '$1'" >&2
        exit 2
      fi
      base_ref="$1"
      shift
      ;;
  esac
done

if [[ -z "$base_ref" ]]; then
  if git rev-parse --verify --quiet origin/main >/dev/null; then
    base_ref=origin/main
  elif git rev-parse --verify --quiet main >/dev/null; then
    base_ref=main
  else
    base_ref=HEAD~1
  fi
fi

# Prefer the freshest build of the linter; any configured tree works
# because the token engine is always compiled in.
lint_bin=""
for candidate in build/tools/quora_lint/quora_lint \
                 build/lint/tools/quora_lint/quora_lint \
                 build/release/tools/quora_lint/quora_lint; do
  if [[ -x "$candidate" ]]; then
    lint_bin="$candidate"
    break
  fi
done
if [[ -z "$lint_bin" ]]; then
  echo "lint_changed.sh: no quora_lint binary found; build one first:" >&2
  echo "  cmake --preset release && cmake --build --preset release --target quora_lint" >&2
  exit 2
fi

# Changed-vs-merge-base plus working-tree edits, deduplicated. --diff-filter
# drops deletions (nothing to lint) and -z/null-delimited handles any path.
mapfile -d '' -t changed < <(
  {
    git diff --merge-base "$base_ref" --name-only --diff-filter=d -z
    git diff --name-only --diff-filter=d -z
    git diff --cached --name-only --diff-filter=d -z
  } | sort -zu
)

files=()
for f in "${changed[@]}"; do
  case "$f" in
    src/*|tools/*|bench/*) ;;
    *) continue ;;
  esac
  case "$f" in
    *.cpp|*.hpp|*.cc|*.hh|*.cxx|*.h) ;;
    *) continue ;;
  esac
  [[ -f "$f" ]] && files+=("$f")
done

if [[ ${#files[@]} -eq 0 ]]; then
  echo "lint_changed.sh: no changed C++ sources vs $base_ref — nothing to lint"
  exit 0
fi

echo "lint_changed.sh: ${#files[@]} changed file(s) vs $base_ref"
exec "$lint_bin" --engine=token --root . ${lint_args[@]+"${lint_args[@]}"} "${files[@]}"
