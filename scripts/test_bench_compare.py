#!/usr/bin/env python3
"""Tests for bench_compare.py: regression, improvement, and malformed
reports, driven through the real CLI with subprocess (ctest runs this via
the bench-compare-py test; see tests/CMakeLists.txt).

Standalone:  python3 scripts/test_bench_compare.py
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "bench_compare.py")


def report(cases, mode="quick", schema="quora-bench/1"):
    return {
        "schema": schema,
        "mode": mode,
        "cases": [{"name": n, "ns_per_op": ns} for n, ns in cases],
    }


class BenchCompareTest(unittest.TestCase):
    def setUp(self):
        self._dir = tempfile.TemporaryDirectory()
        self.addCleanup(self._dir.cleanup)

    def write(self, name, payload):
        path = os.path.join(self._dir.name, name)
        with open(path, "w", encoding="utf-8") as f:
            if isinstance(payload, str):
                f.write(payload)
            else:
                json.dump(payload, f)
        return path

    def run_compare(self, *argv):
        proc = subprocess.run(
            [sys.executable, SCRIPT, *argv],
            capture_output=True,
            text=True,
            check=False,
        )
        return proc.returncode, proc.stdout, proc.stderr

    def test_no_change_passes(self):
        base = self.write("base.json", report([("heap", 100.0)]))
        cur = self.write("cur.json", report([("heap", 100.0)]))
        code, out, _ = self.run_compare(base, cur)
        self.assertEqual(code, 0)
        self.assertIn("no case regressed", out)

    def test_regression_beyond_threshold_fails(self):
        base = self.write("base.json", report([("heap", 100.0), ("qr", 50.0)]))
        cur = self.write("cur.json", report([("heap", 140.0), ("qr", 50.0)]))
        code, out, _ = self.run_compare(base, cur)
        self.assertEqual(code, 1)
        self.assertIn("REGRESSED", out)
        self.assertIn("heap", out)

    def test_growth_within_threshold_passes(self):
        base = self.write("base.json", report([("heap", 100.0)]))
        cur = self.write("cur.json", report([("heap", 120.0)]))
        code, out, _ = self.run_compare(base, cur)  # default threshold 0.25
        self.assertEqual(code, 0)
        self.assertIn("ok", out)

    def test_custom_threshold(self):
        base = self.write("base.json", report([("heap", 100.0)]))
        cur = self.write("cur.json", report([("heap", 120.0)]))
        code, out, _ = self.run_compare(base, cur, "--threshold", "0.1")
        self.assertEqual(code, 1)
        self.assertIn("REGRESSED", out)

    def test_improvement_passes_and_is_labeled(self):
        base = self.write("base.json", report([("heap", 100.0)]))
        cur = self.write("cur.json", report([("heap", 60.0)]))
        code, out, _ = self.run_compare(base, cur)
        self.assertEqual(code, 0)
        self.assertIn("improved", out)

    def test_warn_only_masks_regression(self):
        base = self.write("base.json", report([("heap", 100.0)]))
        cur = self.write("cur.json", report([("heap", 1000.0)]))
        code, out, _ = self.run_compare(base, cur, "--warn-only")
        self.assertEqual(code, 0)
        self.assertIn("REGRESSED", out)
        self.assertIn("--warn-only", out)

    def test_one_sided_cases_reported_as_added_and_removed(self):
        base = self.write("base.json", report([("heap", 100.0), ("old", 10.0)]))
        cur = self.write("cur.json", report([("heap", 100.0), ("new", 10.0)]))
        code, out, _ = self.run_compare(base, cur)
        self.assertEqual(code, 0)
        self.assertIn("added (current only)", out)
        self.assertIn("removed (baseline only)", out)
        self.assertIn("added cases (no baseline): new", out)
        self.assertIn("removed cases (baseline only): old", out)

    def test_added_and_removed_never_regress(self):
        # One-sided cases must not affect the exit status even when the
        # shared cases regress under --warn-only's advisory reporting.
        base = self.write("base.json", report([("old", 10.0)]))
        cur = self.write("cur.json", report([("new", 99999.0)]))
        code, out, _ = self.run_compare(base, cur)
        self.assertEqual(code, 0)
        self.assertIn("no case regressed", out)

    def test_fail_on_regression_gates_past_warn_only(self):
        base = self.write("base.json", report([("heap", 100.0)]))
        cur = self.write("cur.json", report([("heap", 1000.0)]))
        code, out, _ = self.run_compare(
            base, cur, "--warn-only", "--fail-on-regression", "100"
        )
        self.assertEqual(code, 1)
        self.assertIn("hard gate", out)
        self.assertIn("heap", out)

    def test_fail_on_regression_within_limit_passes(self):
        # 40% growth: beyond the default 25% soft threshold (masked by
        # --warn-only) but inside the 100% hard gate.
        base = self.write("base.json", report([("heap", 100.0)]))
        cur = self.write("cur.json", report([("heap", 140.0)]))
        code, out, _ = self.run_compare(
            base, cur, "--warn-only", "--fail-on-regression", "100"
        )
        self.assertEqual(code, 0)
        self.assertIn("REGRESSED", out)
        self.assertNotIn("hard gate", out)

    def test_fail_on_regression_without_warn_only(self):
        base = self.write("base.json", report([("heap", 100.0)]))
        cur = self.write("cur.json", report([("heap", 300.0)]))
        code, out, _ = self.run_compare(base, cur, "--fail-on-regression", "50")
        self.assertEqual(code, 1)
        self.assertIn("hard gate", out)

    def test_negative_fail_on_regression_rejected(self):
        base = self.write("base.json", report([("heap", 100.0)]))
        cur = self.write("cur.json", report([("heap", 100.0)]))
        code, _, err = self.run_compare(base, cur, "--fail-on-regression", "-1")
        self.assertEqual(code, 2)
        self.assertIn("non-negative", err)

    def test_malformed_json_exits_2(self):
        base = self.write("base.json", report([("heap", 100.0)]))
        cur = self.write("cur.json", "{not json")
        code, _, err = self.run_compare(base, cur)
        self.assertEqual(code, 2)
        self.assertIn("cannot read", err)

    def test_missing_file_exits_2(self):
        base = self.write("base.json", report([("heap", 100.0)]))
        code, _, err = self.run_compare(base,
                                        os.path.join(self._dir.name, "no.json"))
        self.assertEqual(code, 2)
        self.assertIn("cannot read", err)

    def test_wrong_schema_exits_2(self):
        base = self.write("base.json", report([("heap", 100.0)]))
        cur = self.write("cur.json", report([("heap", 100.0)],
                                            schema="other-schema/9"))
        code, _, err = self.run_compare(base, cur)
        self.assertEqual(code, 2)
        self.assertIn("expected schema", err)

    def test_mode_mismatch_warns_by_default(self):
        base = self.write("base.json", report([("heap", 100.0)], mode="quick"))
        cur = self.write("cur.json", report([("heap", 100.0)], mode="full"))
        code, out, _ = self.run_compare(base, cur)
        self.assertEqual(code, 0)
        self.assertIn("modes differ", out)

    def test_require_same_mode_exits_2(self):
        base = self.write("base.json", report([("heap", 100.0)], mode="quick"))
        cur = self.write("cur.json", report([("heap", 100.0)], mode="full"))
        code, _, err = self.run_compare(base, cur, "--require-same-mode")
        self.assertEqual(code, 2)
        self.assertIn("modes differ", err)

    def test_negative_threshold_rejected(self):
        base = self.write("base.json", report([("heap", 100.0)]))
        cur = self.write("cur.json", report([("heap", 100.0)]))
        code, _, err = self.run_compare(base, cur, "--threshold", "-0.5")
        self.assertEqual(code, 2)
        self.assertIn("non-negative", err)


if __name__ == "__main__":
    unittest.main()
