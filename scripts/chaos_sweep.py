#!/usr/bin/env python3
"""Drive `quora_chaos --sweep` over the geo scenario matrix and assert
the failure-domain acceptance property.

Usage:
    chaos_sweep.py --chaos-bin PATH [--examples DIR] [--seeds N]
                   [--report FILE.json] [--margin M]

Runs the shipped geo plans under N consecutive seeds each and checks:

  1. every plan reports safe (no protocol-safety violation under chaos);
  2. the scripted full-region outage (rg0 down) degrades availability
     for the region-majority vote assignment but *not* for the
     domain-spread one: each surviving region (rg1, rg2) of
     geo-region-outage must beat the same region of
     geo-region-outage-weighted by at least --margin.

The JSON artifact (schema key "quora-chaos-sweep") is written by the
harness itself; this script only relocates nothing and parses it.

Exit status: 0 all checks hold, 1 a check failed, 2 usage/schema errors.
"""

import argparse
import json
import os
import subprocess
import sys

SCHEMA_KEY = "quora-chaos-sweep"

PLANS = [
    "geo_region_outage.chaos",
    "geo_region_outage_weighted.chaos",
    "geo_rack_cascade.chaos",
    "geo_gray_interregion.chaos",
    "geo_asymmetric_reassign.chaos",
]

SPREAD = "geo-region-outage"
WEIGHTED = "geo-region-outage-weighted"
SURVIVING_REGIONS = ["rg1", "rg2"]


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--chaos-bin", required=True,
                    help="path to the quora_chaos binary")
    ap.add_argument("--examples", default="examples/chaos",
                    help="directory holding the shipped .chaos plans")
    ap.add_argument("--seeds", type=int, default=2,
                    help="seeds per plan (reduced matrix for CI)")
    ap.add_argument("--report", default="chaos-sweep.json",
                    help="JSON artifact path")
    ap.add_argument("--margin", type=float, default=0.1,
                    help="required availability gap per surviving region")
    args = ap.parse_args()

    plan_paths = [os.path.join(args.examples, p) for p in PLANS]
    for p in plan_paths:
        if not os.path.exists(p):
            print(f"chaos_sweep: missing plan {p}", file=sys.stderr)
            return 2

    cmd = [args.chaos_bin, "--sweep", "--seeds", str(args.seeds),
           "--report", args.report] + plan_paths
    print("+", " ".join(cmd), flush=True)
    proc = subprocess.run(cmd)
    if proc.returncode != 0:
        print(f"chaos_sweep: harness exited {proc.returncode}",
              file=sys.stderr)
        return 1

    try:
        with open(args.report, "r", encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, ValueError) as e:
        print(f"chaos_sweep: cannot read {args.report}: {e}", file=sys.stderr)
        return 2
    if report.get(SCHEMA_KEY) != 1:
        print(f"chaos_sweep: {args.report} lacks the {SCHEMA_KEY} schema key",
              file=sys.stderr)
        return 2

    by_name = {p["name"]: p for p in report.get("plans", [])}
    failed = False

    for name in (p["name"] for p in report.get("plans", [])):
        if not by_name[name].get("safe", False):
            print(f"FAIL: plan {name} reported unsafe")
            failed = True

    def region_avail(plan_name, region):
        plan = by_name.get(plan_name)
        if plan is None:
            print(f"FAIL: plan {plan_name} missing from the report")
            return None
        for r in plan.get("regions", []):
            if r.get("region") == region:
                return r.get("availability")
        print(f"FAIL: plan {plan_name} has no region {region}")
        return None

    # The acceptance property: a full rg0 outage must hurt the
    # region-majority assignment everywhere, while the domain-spread
    # assignment keeps its surviving regions serving.
    for region in SURVIVING_REGIONS:
        spread = region_avail(SPREAD, region)
        weighted = region_avail(WEIGHTED, region)
        if spread is None or weighted is None:
            failed = True
            continue
        gap = spread - weighted
        verdict = "ok" if gap >= args.margin else "FAIL"
        print(f"{verdict}: {region} availability spread={spread:.4f} "
              f"weighted={weighted:.4f} gap={gap:+.4f} "
              f"(need >= {args.margin})")
        if gap < args.margin:
            failed = True

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
