#!/usr/bin/env python3
"""Compare two quora-bench JSON reports and flag perf regressions.

Usage:
    bench_compare.py BASELINE.json CURRENT.json [--threshold 0.25]
                     [--warn-only] [--require-same-mode]

For every case present in both reports, the primary metric is ns_per_op
(lower is better).  A case regresses when

    current.ns_per_op > baseline.ns_per_op * (1 + threshold)

Exit status: 0 when no case regresses (or --warn-only), 1 when at least
one does, 2 on usage or schema errors.

The reports come from `quora_bench --json` (and `bench/* --json`, which
emits the same "quora-bench/1" schema); see docs/PERFORMANCE.md.
"""

import argparse
import json
import sys

SCHEMA = "quora-bench/1"


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if report.get("schema") != SCHEMA:
        print(
            f"bench_compare: {path}: expected schema {SCHEMA!r}, "
            f"got {report.get('schema')!r}",
            file=sys.stderr,
        )
        sys.exit(2)
    return report


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed ns/op growth fraction before failing (default 0.25)",
    )
    parser.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but always exit 0",
    )
    parser.add_argument(
        "--require-same-mode",
        action="store_true",
        help="fail if the reports were produced in different modes "
        "(quick vs full numbers are not comparable)",
    )
    args = parser.parse_args()
    if args.threshold < 0:
        parser.error("--threshold must be non-negative")

    base = load(args.baseline)
    cur = load(args.current)

    mode_note = ""
    if base.get("mode") != cur.get("mode"):
        msg = (
            f"modes differ (baseline={base.get('mode')}, "
            f"current={cur.get('mode')}): deltas are indicative only"
        )
        if args.require_same_mode:
            print(f"bench_compare: {msg}", file=sys.stderr)
            sys.exit(2)
        mode_note = f"  [note: {msg}]"

    base_cases = {c["name"]: c for c in base.get("cases", [])}
    cur_cases = {c["name"]: c for c in cur.get("cases", [])}

    regressions = []
    width = max((len(n) for n in base_cases), default=12)
    print(
        f"{'case':<{width}}  {'base ns/op':>12}  {'cur ns/op':>12}  "
        f"{'delta':>8}  verdict"
    )
    for name in sorted(set(base_cases) | set(cur_cases)):
        b, c = base_cases.get(name), cur_cases.get(name)
        if b is None or c is None:
            side = "baseline" if b is None else "current"
            print(f"{name:<{width}}  {'-':>12}  {'-':>12}  {'-':>8}  "
                  f"MISSING in {side}")
            continue
        b_ns, c_ns = b["ns_per_op"], c["ns_per_op"]
        delta = (c_ns - b_ns) / b_ns if b_ns > 0 else 0.0
        regressed = delta > args.threshold
        verdict = "REGRESSED" if regressed else ("improved" if delta < 0 else "ok")
        print(
            f"{name:<{width}}  {b_ns:>12.2f}  {c_ns:>12.2f}  "
            f"{delta:>+7.1%}  {verdict}"
        )
        if regressed:
            regressions.append((name, delta))

    if mode_note:
        print(mode_note)
    if regressions:
        names = ", ".join(f"{n} ({d:+.1%})" for n, d in regressions)
        print(f"bench_compare: regression beyond {args.threshold:.0%}: {names}")
        if not args.warn_only:
            return 1
        print("bench_compare: --warn-only set, exiting 0")
    else:
        print(f"bench_compare: no case regressed beyond {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
