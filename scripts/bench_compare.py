#!/usr/bin/env python3
"""Compare two quora-bench JSON reports and flag perf regressions.

Usage:
    bench_compare.py BASELINE.json CURRENT.json [--threshold 0.25]
                     [--warn-only] [--require-same-mode]
                     [--fail-on-regression PCT]

For every case present in both reports, the primary metric is ns_per_op
(lower is better).  A case regresses when

    current.ns_per_op > baseline.ns_per_op * (1 + threshold)

Cases present in only one report are tolerated and reported as "added"
(current only — a new benchmark) or "removed" (baseline only — a retired
one); they never affect the exit status.

--fail-on-regression PCT is a hard gate: exit 1 when any case regresses
by more than PCT percent, even under --warn-only (the soft threshold
still prints its verdicts). Use it in CI lanes that want advisory
reporting at the default threshold but a firm ceiling against order-of-
magnitude cliffs.

Exit status: 0 when no case regresses (or --warn-only), 1 when at least
one does, 2 on usage or schema errors.

The reports come from `quora_bench --json` (and `bench/* --json`, which
emits the same "quora-bench/1" schema); see docs/PERFORMANCE.md.
"""

import argparse
import json
import sys

SCHEMA = "quora-bench/1"


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if report.get("schema") != SCHEMA:
        print(
            f"bench_compare: {path}: expected schema {SCHEMA!r}, "
            f"got {report.get('schema')!r}",
            file=sys.stderr,
        )
        sys.exit(2)
    return report


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed ns/op growth fraction before failing (default 0.25)",
    )
    parser.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but always exit 0",
    )
    parser.add_argument(
        "--require-same-mode",
        action="store_true",
        help="fail if the reports were produced in different modes "
        "(quick vs full numbers are not comparable)",
    )
    parser.add_argument(
        "--fail-on-regression",
        type=float,
        metavar="PCT",
        default=None,
        help="hard gate: exit 1 when any case regresses by more than PCT "
        "percent, even under --warn-only",
    )
    args = parser.parse_args()
    if args.threshold < 0:
        parser.error("--threshold must be non-negative")
    if args.fail_on_regression is not None and args.fail_on_regression < 0:
        parser.error("--fail-on-regression must be non-negative")

    base = load(args.baseline)
    cur = load(args.current)

    mode_note = ""
    if base.get("mode") != cur.get("mode"):
        msg = (
            f"modes differ (baseline={base.get('mode')}, "
            f"current={cur.get('mode')}): deltas are indicative only"
        )
        if args.require_same_mode:
            print(f"bench_compare: {msg}", file=sys.stderr)
            sys.exit(2)
        mode_note = f"  [note: {msg}]"

    base_cases = {c["name"]: c for c in base.get("cases", [])}
    cur_cases = {c["name"]: c for c in cur.get("cases", [])}

    regressions = []
    added = []
    removed = []
    width = max(
        (len(n) for n in set(base_cases) | set(cur_cases)), default=12
    )
    print(
        f"{'case':<{width}}  {'base ns/op':>12}  {'cur ns/op':>12}  "
        f"{'delta':>8}  verdict"
    )
    for name in sorted(set(base_cases) | set(cur_cases)):
        b, c = base_cases.get(name), cur_cases.get(name)
        if b is None:
            added.append(name)
            print(f"{name:<{width}}  {'-':>12}  "
                  f"{c['ns_per_op']:>12.2f}  {'-':>8}  added (current only)")
            continue
        if c is None:
            removed.append(name)
            print(f"{name:<{width}}  {b['ns_per_op']:>12.2f}  "
                  f"{'-':>12}  {'-':>8}  removed (baseline only)")
            continue
        b_ns, c_ns = b["ns_per_op"], c["ns_per_op"]
        delta = (c_ns - b_ns) / b_ns if b_ns > 0 else 0.0
        regressed = delta > args.threshold
        verdict = "REGRESSED" if regressed else ("improved" if delta < 0 else "ok")
        print(
            f"{name:<{width}}  {b_ns:>12.2f}  {c_ns:>12.2f}  "
            f"{delta:>+7.1%}  {verdict}"
        )
        if regressed:
            regressions.append((name, delta))

    if mode_note:
        print(mode_note)
    if added:
        print(f"bench_compare: added cases (no baseline): {', '.join(added)}")
    if removed:
        print(f"bench_compare: removed cases (baseline only): {', '.join(removed)}")

    hard_limit = (
        None
        if args.fail_on_regression is None
        else args.fail_on_regression / 100.0
    )
    hard_failures = [
        (n, d) for n, d in regressions if hard_limit is not None and d > hard_limit
    ]

    status = 0
    if regressions:
        names = ", ".join(f"{n} ({d:+.1%})" for n, d in regressions)
        print(f"bench_compare: regression beyond {args.threshold:.0%}: {names}")
        if not args.warn_only:
            status = 1
        else:
            print("bench_compare: --warn-only set, exiting 0")
    else:
        print(f"bench_compare: no case regressed beyond {args.threshold:.0%}")
    if hard_failures:
        names = ", ".join(f"{n} ({d:+.1%})" for n, d in hard_failures)
        print(
            f"bench_compare: hard gate --fail-on-regression "
            f"{args.fail_on_regression:g}% exceeded: {names}"
        )
        status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
