#!/usr/bin/env bash
# Reproduce every experiment in DESIGN.md §3 and collect the outputs.
#
#   scripts/reproduce.sh            # reduced scale (~1 minute)
#   scripts/reproduce.sh --paper    # the paper's exact protocol
#
# Results land in reproduce-out/: one .txt per experiment plus a combined
# report. Build first: cmake -B build -G Ninja && cmake --build build

set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--help" || "${1:-}" == "-h" ]]; then
  cat <<'USAGE'
usage: scripts/reproduce.sh [--paper] [BENCH_ARGS...]

Runs every experiment in DESIGN.md §3 and collects the outputs in
reproduce-out/. With no arguments a reduced-scale configuration runs in
about a minute; --paper restores the paper's exact measurement protocol.
Any extra arguments are forwarded verbatim to each bench binary.

Build first (CMakePresets.json defines the presets):
  cmake --preset release && cmake --build --preset release

To reproduce under sanitizers (contracts + ASan/UBSan active, slower):
  cmake --preset asan-ubsan && cmake --build --preset asan-ubsan
  BENCH_DIR=build/asan-ubsan/bench scripts/reproduce.sh

Validate configuration files without running anything:
  ./build/release/tools/quora_check examples/configs/*.quora

See docs/STATIC_ANALYSIS.md for the sanitizer presets, the contract
macro policy, and the quora-check audit reference.
USAGE
  exit 0
fi

SCALE_ARGS=("$@")
BENCH_DIR=${BENCH_DIR:-build/bench}
if [[ ! -d "$BENCH_DIR" ]]; then
  if [[ -d build/release/bench ]]; then
    BENCH_DIR=build/release/bench
  else
    cat >&2 <<'HINT'
reproduce.sh: no bench binaries found (looked in $BENCH_DIR, build/bench,
build/release/bench). Build the release preset first:

  cmake --preset release && cmake --build --preset release

or point BENCH_DIR at an existing build, e.g.:

  BENCH_DIR=build/asan-ubsan/bench scripts/reproduce.sh
HINT
    exit 2
  fi
fi
OUT_DIR=reproduce-out
mkdir -p "$OUT_DIR"

FIGURES=(fig2_topology0 fig3_topology1 fig4_topology2 fig5_topology4
         fig6_topology16 fig7_topology256 fig7x_topology4949)
TABLES=(tab_endpoints tab_read_write_ratio tab_write_constraint
        tab_analytic_validation tab_surv_metric tab_ahamad_ammar
        tab_vote_assignment tab_batch_diagnostics tab_multi_object
        tab_witnesses tab_access_skew tab_message_level)
ABLATIONS=(abl_estimator abl_optimizer abl_dynamic_qr abl_graduation
           abl_sensitivity abl_access_duration abl_protocol_survey)

run() {
  local name=$1; shift
  echo "== $name $*"
  "$BENCH_DIR/$name" "$@" | tee "$OUT_DIR/$name.txt"
  echo
}

: > "$OUT_DIR/report.txt"
{
  echo "quora reproduction run: $(date -u +%Y-%m-%dT%H:%M:%SZ)"
  echo "scale: ${SCALE_ARGS[*]:-default (reduced)}"
  echo
} | tee -a "$OUT_DIR/report.txt"

for b in "${FIGURES[@]}" "${TABLES[@]}" "${ABLATIONS[@]}"; do
  run "$b" "${SCALE_ARGS[@]}" | tee -a "$OUT_DIR/report.txt"
done

echo "== perf_microbench (fixed small budget)"
"$BENCH_DIR/perf_microbench" --benchmark_min_time=0.05 \
  | tee "$OUT_DIR/perf_microbench.txt" | tee -a "$OUT_DIR/report.txt"

echo
echo "all outputs in $OUT_DIR/ — compare against EXPERIMENTS.md"
