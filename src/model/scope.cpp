#include "model/scope.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

#include "fault/chaos_audit.hpp"
#include "io/topology_io.hpp"

namespace quora::model {
namespace {

/// Splits the raw text into the model-only directives (`depth`,
/// `states`) and the remaining chaos-dialect lines. Removed lines are
/// replaced with blanks so `io::ParseError` line numbers reported by the
/// downstream parser still match the original file.
struct SplitText {
  std::string chaos_text;
  std::uint64_t max_depth = Scope{}.max_depth;
  std::uint64_t max_states = Scope{}.max_states;
  bool has_depth = false;
  bool has_states = false;
};

SplitText split_model_text(std::istream& in) {
  SplitText out;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream ls(line);
    std::string directive;
    ls >> directive;
    if (directive == "depth" || directive == "states") {
      std::uint64_t value = 0;
      if (!(ls >> value) || value == 0) {
        throw io::ParseError(line_no,
                             "'" + directive + "' needs a positive count");
      }
      std::string trailing;
      if (ls >> trailing && trailing[0] != '#') {
        throw io::ParseError(line_no, "trailing junk after '" + directive +
                                          "': " + trailing);
      }
      if (directive == "depth") {
        out.max_depth = value;
        out.has_depth = true;
      } else {
        out.max_states = value;
        out.has_states = true;
      }
      out.chaos_text += '\n';
      continue;
    }
    out.chaos_text += line;
    out.chaos_text += '\n';
  }
  return out;
}

Scope scope_from_split(const SplitText& split) {
  Scope scope;
  scope.max_depth = split.max_depth;
  scope.max_states = split.max_states;
  std::istringstream chaos_in(split.chaos_text);
  scope.chaos = fault::load_chaos(chaos_in);
  bool glue = false;  // previous action was a fault we may extend
  for (const fault::Action& a : scope.chaos.plan.actions()) {
    if (a.kind == fault::Action::Kind::kAccess) {
      scope.accesses.push_back(a);
      glue = false;
      continue;
    }
    if (glue && !scope.faults.empty() &&
        scope.faults.back().back().time == a.time) {
      scope.faults.back().push_back(a);
    } else {
      scope.faults.push_back({a});
    }
    glue = true;
  }
  return scope;
}

} // namespace

Scope load_model(std::istream& in) {
  return scope_from_split(split_model_text(in));
}

Scope load_model_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open model scope: " + path);
  return load_model(in);
}

io::AuditReport audit_model(std::istream& in) {
  using io::AuditCode;
  using io::AuditSeverity;
  io::AuditReport report;
  const auto add = [&report](AuditSeverity sev, std::string msg) {
    report.findings.push_back(io::AuditFinding{AuditCode::kModelScopeConfig,
                                               sev, std::move(msg)});
  };
  const auto error = [&add](std::string msg) {
    add(AuditSeverity::kError, std::move(msg));
  };

  std::string text(std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>{});
  SplitText split;
  Scope scope;
  try {
    std::istringstream model_in(text);
    split = split_model_text(model_in);
    scope = scope_from_split(split);
  } catch (const std::exception& e) {
    report.findings.push_back(io::AuditFinding{
        AuditCode::kParseError, AuditSeverity::kError, e.what()});
    return report;
  }

  // Delegate the chaos-dialect checks (quorum consistency, site/link
  // ranges, mutation names) to the chaos auditor. Scopes are untimed, so
  // a synthetic far horizon keeps its schedule checks quiet.
  {
    std::string chaos_text = split.chaos_text;
    if (!(scope.chaos.horizon > 0.0)) chaos_text += "\nhorizon 1000000000\n";
    std::istringstream chaos_in(chaos_text);
    io::AuditReport chaos_report = fault::audit_chaos(chaos_in);
    for (io::AuditFinding& f : chaos_report.findings) {
      report.findings.push_back(std::move(f));
    }
  }
  if (scope.chaos.horizon > 0.0) {
    add(AuditSeverity::kWarning,
        "scope declares a 'horizon' but model exploration is untimed — the "
        "directive is ignored (use 'depth' to bound paths)");
  }
  if (scope.chaos.has_seed) {
    add(AuditSeverity::kWarning,
        "scope declares a 'seed' but model-mode transitions draw no "
        "randomness — the directive is ignored");
  }

  // Scope size: exploration is exponential in all of these.
  const std::uint32_t sites = scope.chaos.system->topology.site_count();
  if (sites > kMaxModelSites) {
    error("scope has " + std::to_string(sites) +
          " sites; bounded exploration handles at most " +
          std::to_string(kMaxModelSites));
  }
  if (scope.accesses.empty()) {
    error("scope schedules no 'access' action: with nothing submitted there "
          "is no protocol behaviour to check");
  } else if (scope.accesses.size() > kMaxModelAccesses) {
    error("scope schedules " + std::to_string(scope.accesses.size()) +
          " accesses; the explorer handles at most " +
          std::to_string(kMaxModelAccesses) + " concurrent accesses");
  }
  if (scope.faults.size() > kMaxModelFaults) {
    error("scope schedules " + std::to_string(scope.faults.size()) +
          " fault steps; the explorer handles at most " +
          std::to_string(kMaxModelFaults) +
          " (actions sharing an 'at' label fire as one atomic step)");
  }

  // Alphabet capability: model mode is deterministic and injector-free,
  // so anything stochastic or trigger-based cannot be expressed.
  std::vector<fault::Action> flat_faults;
  for (const std::vector<fault::Action>& group : scope.faults) {
    flat_faults.insert(flat_faults.end(), group.begin(), group.end());
  }
  for (const fault::Action& a : flat_faults) {
    using Kind = fault::Action::Kind;
    switch (a.kind) {
      case Kind::kArmCrashOnCommit:
        error("crash-on-commit triggers need the fault injector, which "
              "model mode does not attach — script 'site N down' / "
              "'site N up' pairs instead");
        break;
      case Kind::kSetAlpha:
      case Kind::kSetReliability:
      case Kind::kSetRho:
        error("regime shifts (alpha/reliability/rho) drive the Poisson "
              "processes, which model mode never schedules");
        break;
      default:
        break;
    }
  }
  if (!scope.chaos.plan.rules().empty()) {
    error("stochastic message windows ('window ... drop/delay/duplicate') "
          "cannot run under model exploration: every schedule is already "
          "enumerated deterministically");
  }
  if (!scope.chaos.plan.correlations().empty()) {
    error("'correlate' rules draw from the injector RNG, which model mode "
          "never consults");
  }

  // Budgets. The parser rejects zero, so only the upper bounds remain.
  if (scope.max_depth > kMaxModelDepth) {
    error("depth " + std::to_string(scope.max_depth) + " exceeds the bound " +
          std::to_string(kMaxModelDepth));
  }
  if (scope.max_states > kMaxModelStates) {
    error("state budget " + std::to_string(scope.max_states) +
          " exceeds the bound " + std::to_string(kMaxModelStates));
  }
  return report;
}

io::AuditReport audit_model_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open model scope: " + path);
  return audit_model(in);
}

} // namespace quora::model
