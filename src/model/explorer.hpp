#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "model/scope.hpp"
#include "msg/cluster.hpp"
#include "msg/invariants.hpp"
#include "net/types.hpp"

namespace quora::model {

/// One transition along an explored path. Identified by *content*
/// (descriptor fields + occurrence rank), never by queue sequence
/// number: a recorded trace must replay against a freshly built cluster,
/// and keep replaying as minimization drops earlier steps — both of
/// which renumber every event.
struct Choice {
  enum class Kind : std::uint8_t { kEvent = 0, kSubmit = 1, kFault = 2 };
  Kind kind = Kind::kEvent;
  /// kSubmit / kFault: position in the scope's access / fault alphabet.
  std::uint32_t index = 0;
  // kEvent descriptor: the enabled pending event to fire.
  msg::Cluster::ModelEventKind event_kind =
      msg::Cluster::ModelEventKind::kOther;
  net::SiteId target = 0;
  std::uint32_t link = 0;
  std::uint64_t request = 0;
  int phase = 0;
  msg::Message message{};  // deliveries only
  /// Rank among enabled events with an identical descriptor (enumeration
  /// order), disambiguating true duplicates.
  std::uint32_t occurrence = 0;

  /// One-line human rendering for counterexample listings.
  std::string describe(const Scope& scope) const;
};

/// A model-level property violation (beyond `msg::check_safety`):
/// `qr-monotonicity` (a site's stored assignment version decreased),
/// `quorum-intersection` (an installed assignment fails Gifford's
/// conditions), or `grant-without-quorum` (a granted access backed by
/// fewer votes than its assignment requires).
struct PropertyViolation {
  std::string code;
  std::string message;
};

/// A counterexample: what went wrong, and the schedule that gets there.
struct Violation {
  msg::SafetyReport safety;                   // check_safety findings
  std::vector<PropertyViolation> properties;  // model-level findings
  std::vector<Choice> trace;                  // schedule from the initial state
  /// Sorted, deduplicated violation identity ("which bug"): safety slugs
  /// plus property codes. Minimization preserves this set.
  std::vector<std::string> codes() const;
};

struct Stats {
  std::uint64_t explored = 0;      // states expanded (DFS entries)
  std::uint64_t transitions = 0;   // transitions fired
  std::uint64_t unique_states = 0; // distinct fingerprints seen
  std::uint64_t visited_hits = 0;  // revisits pruned by the visited set
  std::uint64_t sleep_pruned = 0;  // transitions pruned by DPOR sleep sets
  std::uint64_t max_depth_seen = 0;
  bool depth_capped = false;       // some path hit the depth bound
  bool state_capped = false;       // the state budget ran out
};

struct Options {
  /// Sleep-set partial-order reduction. Off = every interleaving (the
  /// cross-validation mode behind `quora_model --no-dpor`).
  bool dpor = true;
};

/// Bounded explicit-state exploration of a `.model` scope against the
/// real `msg::Cluster` protocol code. Depth-first over every admissible
/// schedule (per-direction FIFO is the only delivery-order constraint),
/// snapshotting the cluster by value at each branch point; at every state
/// it runs `msg::check_safety` plus the model-level properties and stops
/// at the first violation.
///
/// Reduction: sleep sets over a conservative independence relation —
/// deliveries/timers at distinct sites commute; submissions and faults
/// are dependent with everything. The visited set stores 128-bit
/// fingerprints (collision caveat: see docs/MODEL_CHECKING.md) and, with
/// DPOR on, applies the covering rule — a revisit is pruned only when a
/// cached exploration already covered at least the transitions the
/// current one would try.
///
/// The scope must outlive the explorer (the cluster borrows its
/// topology).
class Explorer {
public:
  explicit Explorer(const Scope& scope, Options opt = {});

  /// Explores until the first violation, exhaustion, or a budget cap.
  std::optional<Violation> run();
  const Stats& stats() const noexcept { return stats_; }

  /// Replays `trace` on a fresh cluster, checking after every step.
  /// Returns the violation at the first violating state (with `trace`
  /// truncated there), or nullopt if the schedule no longer applies or
  /// never violates.
  std::optional<Violation> replay(const std::vector<Choice>& trace) const;

  /// Greedy counterexample minimization: repeatedly drop any single step
  /// whose removal still replays to a violation covering the original
  /// code set, then truncate at the first violating state.
  std::vector<Choice> minimize(const Violation& seed) const;

private:
  struct Transition;
  struct SleepEntry;

  msg::Cluster make_cluster() const;
  std::vector<Transition> enabled_transitions(const msg::Cluster& c,
                                              std::uint32_t submitted,
                                              std::uint32_t faulted) const;
  void apply(msg::Cluster& c, const Transition& t, std::uint32_t& submitted,
             std::uint32_t& faulted) const;
  std::optional<Violation> check_state(
      const msg::Cluster& c, const std::vector<std::uint64_t>& prev_qr) const;
  std::vector<std::uint64_t> stored_qr_versions(const msg::Cluster& c) const;

  bool dfs(const msg::Cluster& cur, std::uint32_t submitted,
           std::uint32_t faulted, std::vector<SleepEntry> sleep,
           std::uint64_t depth, std::vector<std::uint64_t> prev_qr,
           std::vector<Choice>& path);

  const Scope* scope_;
  Options opt_;
  Stats stats_;
  std::optional<Violation> found_;
  /// fingerprint -> sleep-key sets it was explored under (each sorted).
  std::map<std::pair<std::uint64_t, std::uint64_t>,
           std::vector<std::vector<std::uint64_t>>>
      visited_;
};

} // namespace quora::model
