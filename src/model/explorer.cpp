#include "model/explorer.hpp"

#include <algorithm>
#include <utility>

#include "core/contracts.hpp"
#include "quorum/quorum_spec.hpp"

namespace quora::model {
namespace {

using msg::Cluster;

const char* message_kind_name(msg::Message::Kind k) {
  switch (k) {
    case msg::Message::Kind::kVoteRequest: return "vote-request";
    case msg::Message::Kind::kVoteReply: return "vote-reply";
    case msg::Message::Kind::kVoteDeny: return "vote-deny";
    case msg::Message::Kind::kCommitRequest: return "commit-request";
    case msg::Message::Kind::kCommitAck: return "commit-ack";
    case msg::Message::Kind::kAbort: return "abort";
  }
  return "?";
}

const char* event_kind_name(Cluster::ModelEventKind k) {
  switch (k) {
    case Cluster::ModelEventKind::kDelivery: return "deliver";
    case Cluster::ModelEventKind::kTimer: return "timer";
    case Cluster::ModelEventKind::kRetry: return "retry";
    case Cluster::ModelEventKind::kOther: return "event";
  }
  return "?";
}

/// Renders a scope fault action for counterexample listings.
std::string action_brief(const fault::Action& a) {
  using Kind = fault::Action::Kind;
  switch (a.kind) {
    case Kind::kSiteDown: return "site " + std::to_string(a.site) + " down";
    case Kind::kSiteUp: return "site " + std::to_string(a.site) + " up";
    case Kind::kLinkDown: return "link " + std::to_string(a.link) + " down";
    case Kind::kLinkUp: return "link " + std::to_string(a.link) + " up";
    case Kind::kPartition: return "partition";
    case Kind::kHeal: return "heal";
    case Kind::kHealLinks: return "heal-links";
    case Kind::kReassign:
      return "reassign " + std::to_string(a.next.q_r) + " " +
             std::to_string(a.next.q_w) + " from " + std::to_string(a.site);
    case Kind::kDomainDown: return "domain " + a.domain + " down";
    case Kind::kDomainUp: return "domain " + a.domain + " up";
    case Kind::kOneWayDown:
      return "oneway " + std::to_string(a.site) + " " +
             std::to_string(a.site_b) + " down";
    case Kind::kOneWayUp:
      return "oneway " + std::to_string(a.site) + " " +
             std::to_string(a.site_b) + " up";
    default: return "action";
  }
}

std::uint64_t mix64(std::uint64_t h, std::uint64_t w) {
  constexpr std::uint64_t kPrime = 1099511628211ull;
  for (int b = 0; b < 8; ++b) {
    h ^= (w >> (8 * b)) & 0xFFull;
    h *= kPrime;
  }
  return h;
}

/// True when the recorded descriptor names this enabled event.
bool same_descriptor(const Choice& c, const Cluster::ModelEvent& e) {
  if (c.event_kind != e.kind || c.target != e.target || c.link != e.index ||
      c.request != e.request || c.phase != e.phase) {
    return false;
  }
  if (e.kind != Cluster::ModelEventKind::kDelivery) return true;
  const msg::Message& a = c.message;
  const msg::Message& b = e.message;
  return a.kind == b.kind && a.is_write == b.is_write &&
         a.request == b.request && a.coordinator == b.coordinator &&
         a.sender == b.sender && a.replier == b.replier &&
         a.votes == b.votes && a.version == b.version && a.value == b.value &&
         a.qr_version == b.qr_version && a.qr_r == b.qr_r && a.qr_w == b.qr_w;
}

std::uint64_t descriptor_key(const Choice& c) {
  std::uint64_t h = 1469598103934665603ull;
  h = mix64(h, static_cast<std::uint64_t>(c.kind));
  h = mix64(h, c.index);
  h = mix64(h, static_cast<std::uint64_t>(c.event_kind));
  h = mix64(h, c.target);
  h = mix64(h, c.link);
  h = mix64(h, c.request);
  h = mix64(h, static_cast<std::uint64_t>(c.phase));
  h = mix64(h, c.occurrence);
  if (c.event_kind == Cluster::ModelEventKind::kDelivery) {
    const msg::Message& m = c.message;
    h = mix64(h, static_cast<std::uint64_t>(m.kind));
    h = mix64(h, m.is_write ? 1 : 0);
    h = mix64(h, m.request);
    h = mix64(h, m.sender);
    h = mix64(h, m.replier);
    h = mix64(h, m.version);
    h = mix64(h, m.qr_version);
  }
  return h;
}

} // namespace

std::string Choice::describe(const Scope& scope) const {
  switch (kind) {
    case Kind::kSubmit: {
      const fault::Action& a = scope.accesses[index];
      return std::string("submit ") + (a.is_read ? "read" : "write") +
             " at site " + std::to_string(a.site);
    }
    case Kind::kFault: {
      std::string out = "fault:";
      for (const fault::Action& a : scope.faults[index]) {
        out += " " + action_brief(a) + ";";
      }
      out.pop_back();
      return out;
    }
    case Kind::kEvent:
      break;
  }
  std::string out = event_kind_name(event_kind);
  if (event_kind == Cluster::ModelEventKind::kDelivery) {
    out += std::string(" ") + message_kind_name(message.kind) + " req " +
           std::to_string(message.request) + " -> site " +
           std::to_string(target) + " (link " + std::to_string(link) + ")";
  } else {
    out += " site " + std::to_string(target) + " req " +
           std::to_string(request) + " phase " + std::to_string(phase);
  }
  if (occurrence != 0) out += " #" + std::to_string(occurrence);
  return out;
}

std::vector<std::string> Violation::codes() const {
  std::vector<std::string> out;
  for (const msg::SafetyViolation& v : safety.violations) {
    out.push_back(msg::invariant_slug(v.code));
  }
  for (const PropertyViolation& p : properties) out.push_back(p.code);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

struct Explorer::Transition {
  Choice choice;
  std::uint64_t seq = 0;    // kEvent: live handle in the current state
  std::uint64_t key = 0;    // sleep-set / covering identity (content hash)
  net::SiteId site = 0;     // dependence site for kEvent
  bool global = false;      // kSubmit / kFault: dependent with everything
};

struct Explorer::SleepEntry {
  std::uint64_t key = 0;
  net::SiteId site = 0;
  bool global = false;
};

Explorer::Explorer(const Scope& scope, Options opt)
    : scope_(&scope), opt_(opt) {
  QUORA_PRECONDITION(scope.chaos.system.has_value(),
                     "scope must carry a parsed system");
}

msg::Cluster Explorer::make_cluster() const {
  const net::Topology& topo = scope_->chaos.system->topology;
  Cluster::Params params;
  params.model_mode = true;
  params.spec = scope_->chaos.has_quorum
                    ? scope_->chaos.quorum
                    : quorum::majority(topo.total_votes());
  for (const std::string& m : scope_->chaos.mutations) {
    if (m == "accept-stale-qr") params.mutations.accept_stale_qr = true;
    if (m == "skip-crash-cleanup") params.mutations.skip_crash_cleanup = true;
  }
  return Cluster(topo, params, /*seed=*/1);
}

std::vector<Explorer::Transition> Explorer::enabled_transitions(
    const msg::Cluster& c, std::uint32_t submitted,
    std::uint32_t faulted) const {
  // Submits and faults lead the list: DFS then tries the schedules that
  // interleave them early in the protocol first, which is where seeded
  // mutations bite — pure delivery permutations come after. Exhaustive
  // coverage does not depend on this order, only time-to-counterexample.
  std::vector<Transition> out;
  for (std::uint32_t i = 0; i < scope_->accesses.size(); ++i) {
    if ((submitted >> i) & 1u) continue;
    Transition t;
    t.choice.kind = Choice::Kind::kSubmit;
    t.choice.index = i;
    t.global = true;
    t.key = 0xACCE55ull << 32 | i;
    out.push_back(std::move(t));
  }
  for (std::uint32_t i = 0; i < scope_->faults.size(); ++i) {
    if ((faulted >> i) & 1u) continue;
    Transition t;
    t.choice.kind = Choice::Kind::kFault;
    t.choice.index = i;
    t.global = true;
    t.key = 0xFA17ull << 32 | i;
    out.push_back(std::move(t));
  }
  const std::vector<Cluster::ModelEvent> events = c.model_enabled_events();
  for (const Cluster::ModelEvent& e : events) {
    Transition t;
    t.choice.kind = Choice::Kind::kEvent;
    t.choice.event_kind = e.kind;
    t.choice.target = e.target;
    t.choice.link = e.index;
    t.choice.request = e.request;
    t.choice.phase = e.phase;
    t.choice.message = e.message;
    for (const Transition& prev : out) {
      if (prev.choice.kind == Choice::Kind::kEvent &&
          same_descriptor(prev.choice, e)) {
        ++t.choice.occurrence;
      }
    }
    t.seq = e.seq;
    t.site = e.target;
    t.key = descriptor_key(t.choice);
    out.push_back(std::move(t));
  }
  return out;
}

void Explorer::apply(msg::Cluster& c, const Transition& t,
                     std::uint32_t& submitted, std::uint32_t& faulted) const {
  switch (t.choice.kind) {
    case Choice::Kind::kEvent: {
      const bool fired = c.model_step_event(t.seq);
      QUORA_PRECONDITION(fired, "enabled event vanished before firing");
      break;
    }
    case Choice::Kind::kSubmit: {
      const fault::Action& a = scope_->accesses[t.choice.index];
      c.model_submit_access(a.site, a.is_read);
      submitted |= 1u << t.choice.index;
      break;
    }
    case Choice::Kind::kFault:
      // A fault step is atomic: every action in the group fires before
      // the next transition is chosen (e.g. `crash S for 0` = down+up).
      for (const fault::Action& a : scope_->faults[t.choice.index]) {
        c.model_apply_fault(a);
      }
      faulted |= 1u << t.choice.index;
      break;
  }
}

std::vector<std::uint64_t> Explorer::stored_qr_versions(
    const msg::Cluster& c) const {
  const net::Topology& topo = scope_->chaos.system->topology;
  std::vector<std::uint64_t> out(topo.site_count());
  for (net::SiteId s = 0; s < topo.site_count(); ++s) {
    out[s] = c.reassignment().stored(s).version;
  }
  return out;
}

std::optional<Violation> Explorer::check_state(
    const msg::Cluster& c, const std::vector<std::uint64_t>& prev_qr) const {
  Violation v;
  v.safety = msg::check_safety(c);

  // qr-monotonicity: §2.2 requires stored assignment versions to only
  // ever move forward; a decrease would resurrect a superseded quorum.
  const std::vector<std::uint64_t> cur_qr = stored_qr_versions(c);
  for (std::size_t s = 0; s < cur_qr.size(); ++s) {
    if (cur_qr[s] < prev_qr[s]) {
      v.properties.push_back(PropertyViolation{
          "qr-monotonicity",
          "site " + std::to_string(s) + " stored QR version went backwards: " +
              std::to_string(prev_qr[s]) + " -> " +
              std::to_string(cur_qr[s])});
    }
  }

  // quorum-intersection: every installed assignment must satisfy
  // Gifford's two conditions against the vote total.
  const net::Vote total = scope_->chaos.system->topology.total_votes();
  for (const Cluster::InstallRecord& r : c.installs()) {
    if (!r.spec.valid(total)) {
      v.properties.push_back(PropertyViolation{
          "quorum-intersection",
          "installed assignment v" + std::to_string(r.version) + " (" +
              std::to_string(r.spec.q_r) + ", " + std::to_string(r.spec.q_w) +
              ") violates the intersection conditions for T=" +
              std::to_string(total)});
    }
  }

  // grant-without-quorum: a granted access must be backed by at least a
  // quorum of votes under the assignment version it ran under.
  const auto spec_of = [&](std::uint64_t qr_version,
                           quorum::QuorumSpec& spec) {
    if (qr_version <= 1) {
      spec = scope_->chaos.has_quorum
                 ? scope_->chaos.quorum
                 : quorum::majority(total);
      return true;
    }
    for (const Cluster::InstallRecord& r : c.installs()) {
      if (r.version == qr_version) {
        spec = r.spec;
        return true;
      }
    }
    return false;
  };
  for (const msg::AccessOutcome& o : c.outcomes()) {
    if (!o.granted) continue;
    quorum::QuorumSpec spec;
    if (!spec_of(o.qr_version, spec)) {
      v.properties.push_back(PropertyViolation{
          "grant-without-quorum",
          "granted access at site " + std::to_string(o.origin) +
              " ran under QR version " + std::to_string(o.qr_version) +
              " which was never installed"});
      continue;
    }
    const bool ok = o.is_read ? spec.allows_read(o.votes_collected)
                              : spec.allows_write(o.votes_collected);
    if (!ok) {
      v.properties.push_back(PropertyViolation{
          "grant-without-quorum",
          std::string("granted ") + (o.is_read ? "read" : "write") +
              " at site " + std::to_string(o.origin) + " collected " +
              std::to_string(o.votes_collected) + " votes < quorum (" +
              std::to_string(o.is_read ? spec.q_r : spec.q_w) + ") under v" +
              std::to_string(o.qr_version)});
    }
  }

  if (v.safety.ok() && v.properties.empty()) return std::nullopt;
  return v;
}

bool Explorer::dfs(const msg::Cluster& cur, std::uint32_t submitted,
                   std::uint32_t faulted, std::vector<SleepEntry> sleep,
                   std::uint64_t depth, std::vector<std::uint64_t> prev_qr,
                   std::vector<Choice>& path) {
  ++stats_.explored;
  stats_.max_depth_seen = std::max(stats_.max_depth_seen, depth);

  if (std::optional<Violation> v = check_state(cur, prev_qr)) {
    v->trace = path;
    found_ = std::move(v);
    return true;
  }

  // Visited set with the DPOR covering rule: a fingerprint revisited
  // under sleep set S is pruned only if it was already explored under
  // some S' ⊆ S — then everything S would allow was already tried.
  std::vector<std::uint64_t> sleep_keys;
  sleep_keys.reserve(sleep.size());
  for (const SleepEntry& z : sleep) sleep_keys.push_back(z.key);
  std::sort(sleep_keys.begin(), sleep_keys.end());
  {
    std::vector<std::uint64_t> words;
    words.reserve(512);
    cur.model_serialize(words);
    words.push_back(submitted);
    words.push_back(faulted);
    std::uint64_t h1 = 1469598103934665603ull;
    std::uint64_t h2 = 0x9E3779B97F4A7C15ull;
    for (const std::uint64_t w : words) {
      h1 = mix64(h1, w);
      h2 = (h2 * 0x100000001B3ull) ^ (w + (h2 >> 7));
    }
    auto [it, fresh] = visited_.try_emplace(std::make_pair(h1, h2));
    if (fresh) {
      ++stats_.unique_states;
      if (stats_.unique_states > scope_->max_states) {
        stats_.state_capped = true;
        visited_.erase(it);
        return false;
      }
    } else {
      for (const std::vector<std::uint64_t>& cached : it->second) {
        if (std::includes(sleep_keys.begin(), sleep_keys.end(),
                          cached.begin(), cached.end())) {
          ++stats_.visited_hits;
          return false;
        }
      }
    }
    it->second.push_back(sleep_keys);
  }

  std::vector<Transition> all = enabled_transitions(cur, submitted, faulted);
  if (all.empty()) return false;  // quiescent: everything resolved

  std::vector<Transition> todo;
  todo.reserve(all.size());
  for (Transition& t : all) {
    const bool asleep =
        std::find(sleep_keys.begin(), sleep_keys.end(), t.key) !=
        sleep_keys.end();
    if (asleep) {
      ++stats_.sleep_pruned;
    } else {
      todo.push_back(std::move(t));
    }
  }
  if (todo.empty()) return false;

  if (depth >= scope_->max_depth) {
    stats_.depth_capped = true;
    return false;
  }

  const std::vector<std::uint64_t> cur_qr = stored_qr_versions(cur);
  std::vector<SleepEntry> sleep_work = std::move(sleep);
  for (const Transition& t : todo) {
    msg::Cluster child = cur;
    child.model_rebind();
    std::uint32_t child_submitted = submitted;
    std::uint32_t child_faulted = faulted;
    apply(child, t, child_submitted, child_faulted);
    ++stats_.transitions;

    // Sleep entries independent of t stay asleep in the child; a
    // dependent one is woken (its orderings relative to t now matter).
    std::vector<SleepEntry> child_sleep;
    for (const SleepEntry& z : sleep_work) {
      const bool dependent = z.global || t.global || z.site == t.site;
      if (!dependent) child_sleep.push_back(z);
    }

    path.push_back(t.choice);
    if (dfs(child, child_submitted, child_faulted, std::move(child_sleep),
            depth + 1, cur_qr, path)) {
      return true;
    }
    path.pop_back();
    if (stats_.state_capped) return false;

    if (opt_.dpor) {
      sleep_work.push_back(SleepEntry{t.key, t.site, t.global});
    }
  }
  return false;
}

std::optional<Violation> Explorer::run() {
  stats_ = Stats{};
  visited_.clear();
  found_.reset();

  msg::Cluster root = make_cluster();
  std::vector<Choice> path;
  dfs(root, 0, 0, {}, 0, stored_qr_versions(root), path);
  return std::move(found_);
}

std::optional<Violation> Explorer::replay(
    const std::vector<Choice>& trace) const {
  msg::Cluster c = make_cluster();
  std::uint32_t submitted = 0;
  std::uint32_t faulted = 0;
  std::vector<std::uint64_t> prev_qr = stored_qr_versions(c);
  std::vector<Choice> done;

  if (std::optional<Violation> v = check_state(c, prev_qr)) {
    v->trace = done;
    return v;
  }
  for (const Choice& choice : trace) {
    switch (choice.kind) {
      case Choice::Kind::kSubmit: {
        if (choice.index >= scope_->accesses.size() ||
            ((submitted >> choice.index) & 1u)) {
          return std::nullopt;
        }
        const fault::Action& a = scope_->accesses[choice.index];
        c.model_submit_access(a.site, a.is_read);
        submitted |= 1u << choice.index;
        break;
      }
      case Choice::Kind::kFault:
        if (choice.index >= scope_->faults.size() ||
            ((faulted >> choice.index) & 1u)) {
          return std::nullopt;
        }
        for (const fault::Action& a : scope_->faults[choice.index]) {
          c.model_apply_fault(a);
        }
        faulted |= 1u << choice.index;
        break;
      case Choice::Kind::kEvent: {
        std::uint64_t seq = 0;
        std::uint32_t seen = 0;
        bool matched = false;
        for (const msg::Cluster::ModelEvent& e : c.model_enabled_events()) {
          if (!same_descriptor(choice, e)) continue;
          if (seen++ == choice.occurrence) {
            seq = e.seq;
            matched = true;
            break;
          }
        }
        if (!matched || !c.model_step_event(seq)) return std::nullopt;
        break;
      }
    }
    done.push_back(choice);
    std::vector<std::uint64_t> cur_qr = stored_qr_versions(c);
    if (std::optional<Violation> v = check_state(c, prev_qr)) {
      v->trace = done;
      return v;
    }
    prev_qr = std::move(cur_qr);
  }
  return std::nullopt;
}

std::vector<Choice> Explorer::minimize(const Violation& seed) const {
  const std::vector<std::string> target = seed.codes();
  const auto covers = [&target](const Violation& v) {
    const std::vector<std::string> got = v.codes();
    return std::includes(got.begin(), got.end(), target.begin(),
                         target.end());
  };

  // The seed trace is already truncated at its first violating state;
  // re-replay to normalize in case the caller assembled it by hand.
  std::vector<Choice> best = seed.trace;
  if (std::optional<Violation> v = replay(best); v && covers(*v)) {
    best = v->trace;
  }

  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    for (std::size_t i = 0; i < best.size(); ++i) {
      std::vector<Choice> candidate;
      candidate.reserve(best.size() - 1);
      for (std::size_t j = 0; j < best.size(); ++j) {
        if (j != i) candidate.push_back(best[j]);
      }
      std::optional<Violation> v = replay(candidate);
      if (v && covers(*v)) {
        best = std::move(v->trace);  // also truncates
        shrunk = true;
        break;
      }
    }
  }
  return best;
}

} // namespace quora::model
