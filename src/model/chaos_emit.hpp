#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/explorer.hpp"
#include "model/scope.hpp"

namespace quora::model {

struct EmitOptions {
  /// Time of the first scheduled action in the emitted plan.
  double base_time = 1.0;
  /// Candidate inter-action spacings. Small steps are needed when the
  /// counterexample depends on a fault landing inside a message round
  /// trip (mean hop latency is 0.005 under the chaos defaults); large
  /// ones when each step must settle first. Tried in order.
  std::vector<double> step_grid = {0.002, 0.005, 0.02, 0.1, 1.0};
  /// Seeds 1..max_seed are tried per spacing.
  std::uint64_t max_seed = 48;
};

/// A `.chaos` rendering of a model counterexample.
struct EmittedChaos {
  std::string text;        // complete .chaos file content
  bool validated = false;  // an in-process replay reproduced the violation
  std::uint64_t seed = 1;  // the reproducing seed (when validated)
  double step = 1.0;       // the reproducing spacing (when validated)
};

/// Renders the submit/fault skeleton of a counterexample trace as a
/// timed `.chaos` plan that `quora_chaos` replays to the same
/// `check_safety` violation. The model's delivery orderings cannot be
/// scripted — the timed simulator owns message timing — so the emitter
/// searches a (spacing x seed) grid, running each candidate in-process
/// with `quora_chaos`'s exact run parameters, until one reproduces every
/// safety code of the violation; that seed is embedded in the plan.
/// Adjacent `site down` / `site up` pairs on one site collapse into
/// `crash S for 0`, whose in-flight messages survive (matching the
/// model's consecutive down/up transitions).
///
/// A violation carrying only model-level property codes (no
/// `check_safety` finding) is emitted unvalidated with `seed 1`.
EmittedChaos emit_chaos(const Scope& scope, const Violation& violation,
                        const EmitOptions& opt = {});

} // namespace quora::model
