#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "fault/fault_plan.hpp"
#include "io/config_audit.hpp"

namespace quora::model {

// Hard bounds on what the explorer will even attempt. Explicit-state
// enumeration is exponential in all three: every extra site multiplies
// the per-state delivery fan-out, every extra access or fault adds an
// always-enabled transition at every state along the way.
inline constexpr std::uint32_t kMaxModelSites = 4;
inline constexpr std::size_t kMaxModelAccesses = 3;
inline constexpr std::size_t kMaxModelFaults = 4;
inline constexpr std::uint64_t kMaxModelDepth = 256;
inline constexpr std::uint64_t kMaxModelStates = 100'000'000;

/// A parsed `.model` scope: the small world `quora_model` exhausts.
///
/// The file format is the `.chaos` dialect (topology text of
/// `io::load_system` + the directives of `fault::load_chaos`) with two
/// model-only directives, and one semantic twist: action *times are
/// labels*. The explorer fires the listed accesses and faults in every
/// admissible order at every position, so `at 1 link 0 down` means "the
/// alphabet contains cutting link 0", not "link 0 goes down at t=1".
///
/// ```
/// name stale-qr-scope
/// quorum 2 2
/// sites 3
/// link 0 1
/// link 1 2
///
/// at 1 access 0 read        # the accesses the explorer may submit
/// at 2 link 0 down          # the fault alphabet (each fires at most once)
/// at 3 reassign 2 2 from 2
/// at 4 link 0 up
///
/// depth 48                  # max transitions along any one path
/// states 2000000            # visited-set budget
/// mutate accept-stale-qr    # optional: seeded-mutation fixtures only
/// ```
///
/// Consecutive fault actions sharing one `at` label fire as a *single
/// atomic transition* — so `crash 0 for 0` (which the chaos parser
/// expands to a down/up pair at the same time) is one instantaneous
/// crash-restart step, not two independently scheduled faults. Give
/// actions distinct labels when the explorer should interleave between
/// them.
struct Scope {
  /// Max transitions along one explored path (the depth bound).
  std::uint64_t max_depth = 48;
  /// Visited-set budget; exploration stops (reported, not silent) beyond.
  std::uint64_t max_states = 1u << 21;
  /// Everything the chaos dialect carries: name, topology, initial
  /// quorum, mutations. `chaos.plan` keeps the raw action list; the
  /// split views below are what the explorer consumes.
  fault::ChaosSpec chaos;
  /// The kAccess actions, in file order (times ignored).
  std::vector<fault::Action> accesses;
  /// The fault alphabet, in file order. Each entry is one atomic
  /// transition; consecutive non-access actions that share an `at` label
  /// are grouped (notably `crash S for 0` = down+up in one step).
  std::vector<std::vector<fault::Action>> faults;

  const std::string& name() const noexcept { return chaos.name; }
};

/// Parses a `.model` scope; throws `io::ParseError` on malformed input.
/// Range/capability validation is `audit_model`'s job, not the parser's.
Scope load_model(std::istream& in);
Scope load_model_file(const std::string& path);

/// Static audit for `quora_check`: parse failures surface as
/// `kParseError`, out-of-range action targets reuse the chaos codes, and
/// everything model-specific — scope size, accesses, an alphabet entry
/// the model-mode cluster cannot express (stochastic windows, flaps,
/// correlations, crash-on-commit triggers, regime shifts), depth/state
/// budgets — lands under `AuditCode::kModelScopeConfig`.
io::AuditReport audit_model(std::istream& in);
io::AuditReport audit_model_file(const std::string& path);

} // namespace quora::model
