#include "model/chaos_emit.hpp"

#include <algorithm>
#include <sstream>

#include "fault/injector.hpp"
#include "io/topology_io.hpp"
#include "msg/cluster.hpp"
#include "msg/invariants.hpp"
#include "quorum/quorum_spec.hpp"

namespace quora::model {
namespace {

using fault::Action;

/// One scheduled step of the emitted plan. Adjacent down/up pairs on a
/// site collapse into a zero-duration crash: the timed simulator applies
/// both liveness flips at the same instant, so in-flight messages
/// survive — exactly the model's consecutive down/up transitions.
struct Step {
  Action action;
  bool is_crash = false;  // render as `crash S for 0`
};

std::string render_action(const Step& step) {
  const Action& a = step.action;
  using Kind = Action::Kind;
  if (step.is_crash) return "crash " + std::to_string(a.site) + " for 0";
  switch (a.kind) {
    case Kind::kSiteDown: return "site " + std::to_string(a.site) + " down";
    case Kind::kSiteUp: return "site " + std::to_string(a.site) + " up";
    case Kind::kLinkDown: return "link " + std::to_string(a.link) + " down";
    case Kind::kLinkUp: return "link " + std::to_string(a.link) + " up";
    case Kind::kPartition: {
      std::string out = "partition";
      for (std::size_t g = 0; g < a.groups.size(); ++g) {
        out += g == 0 ? " " : " | ";
        for (std::size_t i = 0; i < a.groups[g].size(); ++i) {
          if (i != 0) out += ',';
          out += std::to_string(a.groups[g][i]);
        }
      }
      return out;
    }
    case Kind::kHeal: return "heal";
    case Kind::kHealLinks: return "heal-links";
    case Kind::kReassign:
      return "reassign " + std::to_string(a.next.q_r) + " " +
             std::to_string(a.next.q_w) + " from " + std::to_string(a.site);
    case Kind::kDomainDown: return "domain " + a.domain + " down";
    case Kind::kDomainUp: return "domain " + a.domain + " up";
    case Kind::kOneWayDown:
      return "oneway " + std::to_string(a.site) + " " +
             std::to_string(a.site_b) + " down";
    case Kind::kOneWayUp:
      return "oneway " + std::to_string(a.site) + " " +
             std::to_string(a.site_b) + " up";
    case Kind::kAccess:
      return "access " + std::to_string(a.site) + " " +
             (a.is_read ? "read" : "write");
    default:
      // Audited out of model scopes (triggers, regime shifts).
      return "heal";
  }
}

void add_to_plan(fault::FaultPlan& plan, const Step& step, double t) {
  const Action& a = step.action;
  using Kind = Action::Kind;
  if (step.is_crash) {
    plan.crash(t, a.site, 0.0);
    return;
  }
  switch (a.kind) {
    case Kind::kSiteDown: plan.site_down(t, a.site); break;
    case Kind::kSiteUp: plan.site_up(t, a.site); break;
    case Kind::kLinkDown: plan.link_down(t, a.link); break;
    case Kind::kLinkUp: plan.link_up(t, a.link); break;
    case Kind::kPartition: plan.partition(t, a.groups); break;
    case Kind::kHeal: plan.heal(t); break;
    case Kind::kHealLinks: plan.heal_links(t); break;
    case Kind::kReassign: plan.reassign(t, a.site, a.next); break;
    case Kind::kDomainDown: plan.domain_down(t, a.domain); break;
    case Kind::kDomainUp: plan.domain_up(t, a.domain); break;
    case Kind::kOneWayDown: plan.oneway_down(t, a.site, a.site_b); break;
    case Kind::kOneWayUp: plan.oneway_up(t, a.site, a.site_b); break;
    case Kind::kAccess: plan.access(t, a.site, a.is_read); break;
    default: break;
  }
}

/// The submit/fault skeleton of the trace, with down/up pairs merged.
std::vector<Step> skeleton(const Scope& scope,
                           const std::vector<Choice>& trace) {
  std::vector<Step> steps;
  for (const Choice& c : trace) {
    if (c.kind == Choice::Kind::kSubmit) {
      steps.push_back(Step{scope.accesses[c.index], false});
    } else if (c.kind == Choice::Kind::kFault) {
      // Atomic groups flatten back to consecutive actions; the down/up
      // merge below re-creates `crash S for 0` for crash groups.
      for (const Action& a : scope.faults[c.index]) {
        steps.push_back(Step{a, false});
      }
    }
  }
  std::vector<Step> merged;
  for (std::size_t i = 0; i < steps.size(); ++i) {
    if (i + 1 < steps.size() &&
        steps[i].action.kind == Action::Kind::kSiteDown &&
        steps[i + 1].action.kind == Action::Kind::kSiteUp &&
        steps[i].action.site == steps[i + 1].action.site) {
      Step crash = steps[i];
      crash.is_crash = true;
      merged.push_back(crash);
      ++i;
    } else {
      merged.push_back(steps[i]);
    }
  }
  return merged;
}

std::vector<std::string> safety_codes(const msg::SafetyReport& report) {
  std::vector<std::string> out;
  for (const msg::SafetyViolation& v : report.violations) {
    out.push_back(msg::invariant_slug(v.code));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

/// Runs the candidate plan exactly the way `quora_chaos` would (same
/// params, same injector wiring — see run_plan there) and reports
/// whether every target safety code reproduces.
bool reproduces(const Scope& scope, const fault::FaultPlan& plan,
                std::uint64_t seed, double horizon,
                const std::vector<std::string>& target) {
  const net::Topology& topo = scope.chaos.system->topology;
  msg::Cluster::Params params;
  params.spec = scope.chaos.has_quorum
                    ? scope.chaos.quorum
                    : quorum::majority(topo.total_votes());
  params.max_retries = 2;
  for (const std::string& m : scope.chaos.mutations) {
    if (m == "accept-stale-qr") params.mutations.accept_stale_qr = true;
    if (m == "skip-crash-cleanup") params.mutations.skip_crash_cleanup = true;
  }
  params.config.reliability = 0.999999;
  params.config.rho = 1e-9;

  msg::Cluster cluster(topo, params, seed);
  fault::FaultInjector injector(plan, seed);
  cluster.attach_injector(&injector);
  cluster.run_until(horizon);

  const std::vector<std::string> got = safety_codes(msg::check_safety(cluster));
  return std::includes(got.begin(), got.end(), target.begin(), target.end());
}

} // namespace

EmittedChaos emit_chaos(const Scope& scope, const Violation& violation,
                        const EmitOptions& opt) {
  EmittedChaos out;
  const std::vector<Step> steps = skeleton(scope, violation.trace);
  const std::vector<std::string> target = safety_codes(violation.safety);

  // Grid search: the model's delivery orderings cannot be scripted, so
  // find a (spacing, seed) under which the timed simulator's natural
  // message timing re-creates the race.
  double step_dt = opt.step_grid.empty() ? 1.0 : opt.step_grid.front();
  if (!target.empty()) {
    for (const double dt : opt.step_grid) {
      fault::FaultPlan plan;
      double t = opt.base_time;
      for (const Step& s : steps) {
        add_to_plan(plan, s, t);
        t += dt;
      }
      const double horizon = t + 10.0;
      for (std::uint64_t seed = 1; seed <= opt.max_seed; ++seed) {
        if (reproduces(scope, plan, seed, horizon, target)) {
          out.validated = true;
          out.seed = seed;
          step_dt = dt;
          break;
        }
      }
      if (out.validated) break;
    }
  }

  std::ostringstream text;
  text << "# Counterexample emitted by quora_model from scope '"
       << scope.name() << "'.\n";
  text << "# Violates:";
  for (const std::string& c : violation.codes()) text << ' ' << c;
  text << "\n#\n# Model schedule (deliveries replay as comments only —\n"
          "# the timed run below re-creates them via the embedded seed";
  text << (out.validated ? ", validated in-process):\n"
                         : "; NOT validated in-process):\n");
  for (std::size_t i = 0; i < violation.trace.size(); ++i) {
    text << "#   " << (i + 1) << ". " << violation.trace[i].describe(scope)
         << '\n';
  }
  text << '\n';
  text << "name " << scope.name() << "-counterexample\n";
  text << "seed " << out.seed << '\n';

  double t = opt.base_time;
  double last = opt.base_time;
  for (const Step& s : steps) {
    (void)s;
    last = t;
    t += step_dt;
  }
  text << "horizon " << (last + 10.0) << '\n';
  if (scope.chaos.has_quorum) {
    text << "quorum " << scope.chaos.quorum.q_r << ' '
         << scope.chaos.quorum.q_w << '\n';
  }
  // save_system round-trips the topology, but its `name` line must go:
  // `name` is a chaos-level directive (load_chaos consumes it), so an
  // embedded topology name would clobber the plan name above — and an
  // empty one would not even parse.
  std::ostringstream system_text;
  io::save_system(system_text, *scope.chaos.system);
  std::istringstream system_lines(system_text.str());
  std::string system_line;
  while (std::getline(system_lines, system_line)) {
    if (system_line.rfind("name", 0) == 0) continue;
    text << system_line << '\n';
  }
  for (const std::string& m : scope.chaos.mutations) {
    text << "mutate " << m << '\n';
  }
  t = opt.base_time;
  for (const Step& s : steps) {
    text << "at " << t << ' ' << render_action(s) << '\n';
    t += step_dt;
  }
  out.step = step_dt;
  out.text = text.str();
  return out;
}

} // namespace quora::model
