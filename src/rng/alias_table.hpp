#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rng/xoshiro256ss.hpp"

namespace quora::rng {

/// Walker/Vose alias table: O(n) construction, O(1) sampling from an
/// arbitrary discrete distribution.
///
/// The simulator draws the submitting site of every access request from the
/// per-site distributions r_i / w_i (paper §4, step 1). With up to millions
/// of accesses per batch this must be constant-time; the alias method makes
/// non-uniform access patterns exactly as cheap as uniform ones.
class AliasTable {
public:
  /// Builds from non-negative weights (need not be normalized).
  /// Throws std::invalid_argument if empty or if the total weight is zero.
  explicit AliasTable(std::span<const double> weights);

  /// Draws an index proportional to its weight.
  std::size_t sample(Xoshiro256ss& gen) const {
    const std::size_t slot = static_cast<std::size_t>(
        gen.next_double() * static_cast<double>(prob_.size()));
    const std::size_t i = slot < prob_.size() ? slot : prob_.size() - 1;
    return gen.next_double() < prob_[i] ? i : alias_[i];
  }

  std::size_t size() const noexcept { return prob_.size(); }

  /// The normalized probability of index i (recomputed from the inputs;
  /// for testing and introspection).
  double probability(std::size_t i) const { return normalized_[i]; }

private:
  std::vector<double> prob_;        // acceptance threshold per slot
  std::vector<std::size_t> alias_;  // fallback index per slot
  std::vector<double> normalized_;  // input weights / total
};

} // namespace quora::rng
