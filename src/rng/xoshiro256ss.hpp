#pragma once

#include <array>
#include <cstdint>
#include <limits>

#include "rng/splitmix64.hpp"

namespace quora::rng {

/// xoshiro256** 1.0 (Blackman & Vigna 2018).
///
/// The simulation generator for the whole library. Chosen over
/// `std::mt19937_64` for speed, tiny state, and cheap *guaranteed-disjoint*
/// parallel streams via `jump()` (2^128 steps), which the batch runner uses
/// to give every simulation batch an independent stream while staying
/// bitwise reproducible from a single root seed.
///
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256ss {
public:
  using result_type = std::uint64_t;

  /// Seeds the 256-bit state by running SplitMix64 on `seed`, as the
  /// reference implementation recommends (never seeds to all-zero).
  explicit Xoshiro256ss(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.next();
  }

  /// Stream constructor: seed then apply `stream` jumps, giving streams
  /// separated by 2^128 steps each.
  Xoshiro256ss(std::uint64_t seed, std::uint64_t stream) noexcept : Xoshiro256ss(seed) {
    for (std::uint64_t i = 0; i < stream; ++i) jump();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Advance 2^128 steps. 2^128 non-overlapping subsequences exist.
  void jump() noexcept {
    static constexpr std::array<std::uint64_t, 4> kJump = {
        0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
        0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
    apply_polynomial(kJump);
  }

  /// Advance 2^192 steps (for nesting stream hierarchies).
  void long_jump() noexcept {
    static constexpr std::array<std::uint64_t, 4> kLongJump = {
        0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL,
        0x77710069854ee241ULL, 0x39109bb02acbe635ULL};
    apply_polynomial(kLongJump);
  }

  /// Uniform double in [0, 1) with 53 random bits.
  double next_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1] — safe as the argument of log().
  double next_double_open_zero() noexcept {
    return (static_cast<double>((*this)() >> 11) + 1.0) * 0x1.0p-53;
  }

private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  void apply_polynomial(const std::array<std::uint64_t, 4>& poly) noexcept;

  std::array<std::uint64_t, 4> state_{};
};

} // namespace quora::rng
