#pragma once

#include <cstdint>

namespace quora::rng {

/// SplitMix64 (Steele, Lea & Flood 2014) — a tiny, high-quality 64-bit mixer.
///
/// Used only to expand a user seed into the 256-bit state of
/// `Xoshiro256ss` and to derive decorrelated sub-seeds for named streams.
/// Never used as the simulation generator itself.
class SplitMix64 {
public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64-bit value; advances the state.
  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

private:
  std::uint64_t state_;
};

/// Stateless mix of two 64-bit values into one, for deriving stream seeds
/// from (seed, stream-id) pairs without constructing a generator.
constexpr std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t stream) noexcept {
  SplitMix64 sm(seed ^ (0x632be59bd9b4e019ULL * (stream + 1)));
  sm.next();
  return sm.next();
}

} // namespace quora::rng
