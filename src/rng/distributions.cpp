#include "rng/distributions.hpp"

#include <numeric>

namespace quora::rng {

std::size_t weighted_index_linear(Xoshiro256ss& gen, std::span<const double> weights) {
  assert(!weights.empty());
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  assert(total > 0.0);
  double u = gen.next_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u < 0.0) return i;
  }
  return weights.size() - 1; // numerical slack: u consumed the whole mass
}

} // namespace quora::rng
