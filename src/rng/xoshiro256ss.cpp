#include "rng/xoshiro256ss.hpp"

namespace quora::rng {

void Xoshiro256ss::apply_polynomial(const std::array<std::uint64_t, 4>& poly) noexcept {
  std::array<std::uint64_t, 4> acc{0, 0, 0, 0};
  for (const std::uint64_t word : poly) {
    for (int bit = 0; bit < 64; ++bit) {
      if (word & (std::uint64_t{1} << bit)) {
        for (std::size_t i = 0; i < acc.size(); ++i) acc[i] ^= state_[i];
      }
      (*this)();
    }
  }
  state_ = acc;
}

} // namespace quora::rng
