#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>
#include <span>

#include "rng/xoshiro256ss.hpp"

namespace quora::rng {

/// Exponential variate with the given mean (inverse-CDF method).
///
/// Every stochastic process in the paper's model — access submission,
/// component failure, component repair — is Poisson, i.e. has exponential
/// inter-event times, so this is the workhorse sampler of the simulator.
inline double exponential(Xoshiro256ss& gen, double mean) {
  assert(mean > 0.0);
  return -mean * std::log(gen.next_double_open_zero());
}

/// Uniform real in [lo, hi).
inline double uniform_real(Xoshiro256ss& gen, double lo, double hi) {
  assert(lo <= hi);
  return lo + (hi - lo) * gen.next_double();
}

/// Uniform integer in [0, bound) by Lemire's multiply-shift with rejection
/// (unbiased for every bound, branch-light for the common case).
inline std::uint64_t uniform_index(Xoshiro256ss& gen, std::uint64_t bound) {
  assert(bound > 0);
  std::uint64_t x = gen();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = gen();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

/// Bernoulli trial with success probability p.
inline bool bernoulli(Xoshiro256ss& gen, double p) {
  return gen.next_double() < p;
}

/// Sample an index in [0, weights.size()) proportional to `weights` by
/// linear scan. O(n) per draw — fine for one-off draws; for hot paths use
/// `AliasTable`.
std::size_t weighted_index_linear(Xoshiro256ss& gen, std::span<const double> weights);

} // namespace quora::rng
