#include "rng/alias_table.hpp"

#include <numeric>
#include <stdexcept>

namespace quora::rng {

AliasTable::AliasTable(std::span<const double> weights) {
  if (weights.empty()) throw std::invalid_argument("AliasTable: empty weights");
  for (const double w : weights) {
    if (!(w >= 0.0)) throw std::invalid_argument("AliasTable: negative or NaN weight");
  }
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (!(total > 0.0)) throw std::invalid_argument("AliasTable: zero total weight");

  const std::size_t n = weights.size();
  normalized_.resize(n);
  for (std::size_t i = 0; i < n; ++i) normalized_[i] = weights[i] / total;

  // Vose's stable construction: scale to mean 1, split into small/large,
  // pair each small slot with mass borrowed from a large one.
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = normalized_[i] * static_cast<double>(n);
  }

  prob_.assign(n, 1.0);
  alias_.resize(n);
  std::iota(alias_.begin(), alias_.end(), std::size_t{0});

  std::vector<std::size_t> small;
  std::vector<std::size_t> large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }

  while (!small.empty() && !large.empty()) {
    const std::size_t s = small.back();
    small.pop_back();
    const std::size_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Leftovers (either list) get probability 1 — pure float residue.
  for (const std::size_t i : small) prob_[i] = 1.0;
  for (const std::size_t i : large) prob_[i] = 1.0;
}

} // namespace quora::rng
