#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace quora::fault {

/// Append-only, deterministically formatted record of what a chaos run
/// did: fault actions applied, accesses decided, QR installs, stale
/// rejections, crash triggers. Two same-seed runs must produce
/// byte-identical logs — `hash()` gives CI a cheap equality witness, and
/// `lines()` gives tests the exact transcript to diff.
class EventLog {
public:
  /// Records one event at simulated time `t`. The time prefix is printed
  /// with a fixed `%.6f` format so identical doubles always produce
  /// identical bytes.
  void record(double t, std::string_view line);

  const std::vector<std::string>& lines() const noexcept { return lines_; }
  std::size_t size() const noexcept { return lines_.size(); }
  bool contains(std::string_view needle) const;

  void write(std::ostream& out) const;

  /// FNV-1a over every line including terminators.
  std::uint64_t hash() const noexcept;

private:
  std::vector<std::string> lines_;
};

} // namespace quora::fault
