#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "fault/fault_plan.hpp"
#include "obs/metrics.hpp"
#include "rng/xoshiro256ss.hpp"

namespace quora::fault {

/// What the injector decided for one departing message.
struct MessageFault {
  bool drop = false;
  bool duplicate = false;
  double extra_delay = 0.0;  // added to the primary copy's latency
  double dup_extra = 0.0;    // extra latency of the duplicate copy
};

/// The runtime half of a `FaultPlan`: a sorted timeline the cluster's
/// event loop replays, plus the per-message stochastic rules.
///
/// Determinism contract: the injector draws every random number from its
/// own xoshiro stream (one `jump()` away from the cluster's, so the two
/// can share a root seed without overlapping), and draws only as a pure
/// function of the (link, time) query sequence — which is itself
/// deterministic per seed. Two runs with the same plan, seed, and cluster
/// parameters therefore replay byte-identical event logs.
class FaultInjector {
public:
  /// Validates and compiles the plan; throws std::invalid_argument on
  /// negative times, probabilities outside [0,1], or inverted windows
  /// (`until < from`; an empty `from == until` window is legal and inert).
  /// (Range checks against a concrete topology are `audit_chaos`'s job.)
  FaultInjector(FaultPlan plan, std::uint64_t seed);

  /// Gives the injector the topology that domain-scoped rules and
  /// correlation rules resolve against. `Cluster::attach_injector` calls
  /// this automatically; `topo` must outlive the injector (pass nullptr to
  /// detach). Without a topology, domain-scoped rules match nothing and
  /// correlated failures never fire.
  void set_topology(const net::Topology* topo);

  /// Scheduled actions, stably sorted by time.
  const std::vector<Action>& timeline() const noexcept { return timeline_; }

  /// Consult the stochastic rules for one message departing on `link` at
  /// simulated time `now`. `mean_hop_latency` parameterizes the latency
  /// draw of a duplicate copy.
  MessageFault on_send(net::LinkId link, double now, double mean_hop_latency);

  /// Arm a crash-on-commit trigger (the cluster calls this when it applies
  /// a kArmCrashOnCommit timeline action).
  void arm_crash_on_commit(net::SiteId filter, double down_for);

  /// If an armed trigger matches `coordinator`, consume it and return the
  /// down-time the crashed site should stay failed for.
  std::optional<double> take_crash_on_commit(net::SiteId coordinator);

  bool has_rules() const noexcept { return !rules_.empty(); }
  std::size_t armed_crash_count() const noexcept { return armed_.size(); }

  /// True when the plan carries correlated-failure rules — lets the
  /// cluster skip the cascade hook entirely on legacy plans (no draws, so
  /// their transcripts stay byte-identical).
  bool has_correlations() const noexcept { return !correlations_.empty(); }

  /// A co-domain failure cascade for site `failed` going down: one
  /// Bernoulli draw per (rule, co-domain site) pair in deterministic
  /// (rule order, ascending site id) order, on the injector's own stream.
  /// Returns the fired (site, down_for) pairs, deduplicated keeping the
  /// first rule's down-time; `failed` itself is never returned. The caller
  /// decides what "down" means (and skips already-down sites) — the draw
  /// sequence happens regardless, keeping replays byte-stable.
  std::vector<std::pair<net::SiteId, double>> correlated_failures(
      net::SiteId failed);

  /// Observability: count what the stochastic rules actually did to the
  /// message stream (`fault.msg_drops` / `fault.msg_duplicates` /
  /// `fault.msg_delays`). Pure recording — the draw sequence is untouched.
  /// Pass nullptr to detach.
  void set_metrics(obs::Registry* registry);

private:
  bool rule_matches_link(std::size_t rule_index, net::LinkId link) const;

  std::vector<Action> timeline_;
  std::vector<MessageRule> rules_;
  std::vector<CorrelationRule> correlations_;
  const net::Topology* topo_ = nullptr;
  // Per-rule link mask for domain-scoped rules (empty for link-scoped
  // ones), rebuilt by set_topology.
  std::vector<std::vector<char>> rule_link_mask_;
  rng::Xoshiro256ss gen_;
  struct Armed {
    net::SiteId filter = kAnySite;
    double down_for = 0.0;
  };
  std::vector<Armed> armed_;
  obs::Counter obs_drops_;
  obs::Counter obs_duplicates_;
  obs::Counter obs_delays_;
};

} // namespace quora::fault
