#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "io/topology_io.hpp"
#include "net/types.hpp"
#include "quorum/quorum_spec.hpp"

namespace quora::fault {

/// Wildcards for rule and trigger targets.
inline constexpr net::SiteId kAnySite = 0xFFFFFFFFu;
inline constexpr net::LinkId kAllLinks = 0xFFFFFFFFu;

/// One scheduled action on a plan's timeline, applied by the cluster's
/// event loop exactly at `time` (simulated clock). Actions are the
/// *deterministic* half of a plan; `MessageRule` is the stochastic half.
struct Action {
  enum class Kind : std::uint8_t {
    kSiteDown,
    kSiteUp,
    kLinkDown,
    kLinkUp,
    kPartition,        // cut every link whose endpoints fall in different groups
    kHeal,             // bring every site and link back up
    kHealLinks,        // bring every link back up, leave site states alone
    kReassign,         // attempt a QR install (§2.2) from `site`
    kArmCrashOnCommit, // crash the next matching coordinator entering phase 2
    kDomainDown,       // crash every site inside failure domain `domain`
    kDomainUp,         // recover every site inside failure domain `domain`
    kOneWayDown,       // cut direction site -> site_b of link {site, site_b}
    kOneWayUp,         // restore that direction
    kSetAlpha,         // regime shift: read fraction becomes `value`
    kSetReliability,   // regime shift: component reliability becomes `value`
    kSetRho,           // regime shift: access/failure time-scale ratio
    kAccess,           // submit a scripted access (read/write) at `site` —
                       // deterministic, no RNG; counterexample replays and
                       // conformance scripts use this instead of Poisson
                       // arrivals
  };
  double time = 0.0;
  Kind kind = Kind::kSiteDown;
  net::SiteId site = 0;        // kSite*, kReassign origin, kArmCrashOnCommit
                               // filter, kOneWay* from-endpoint, kAccess origin
  net::SiteId site_b = 0;      // kOneWay* to-endpoint
  net::LinkId link = 0;        // kLink*
  quorum::QuorumSpec next{};   // kReassign: the assignment to install
  double duration = 0.0;       // kArmCrashOnCommit: down-time after the crash
                               // (0 = crash with immediate restart)
  std::vector<std::vector<net::SiteId>> groups;  // kPartition
  std::string domain;          // kDomain*: a domain path prefix, e.g. "rg0"
  double value = 0.0;          // kSet*: the new parameter value
  bool is_read = false;        // kAccess: read (true) or write (false)
};

/// A stochastic message-fault window. While the simulated clock is inside
/// the half-open interval [from, until) — a departure at exactly `from`
/// matches, one at exactly `until` does not, and `from == until` is an
/// inert window that matches nothing — every message departing on a
/// matching link runs the rule: drop with probability p, add exponential
/// extra latency, or deliver a duplicate. All randomness comes from the
/// injector's own RNG stream, so the cluster's draw sequence is untouched
/// and every run with the same seed replays bit-identically.
///
/// Link matching: `link` selects one link (or kAllLinks). Alternatively a
/// rule may be *domain-scoped* (gray failure confined to a domain
/// boundary): with `domain_a` set, the rule matches links with one
/// endpoint inside domain_a and the other inside domain_b — or, when
/// domain_b is "*", anywhere outside domain_a. Domain-scoped rules need
/// the injector to know the topology (`FaultInjector::set_topology`,
/// called automatically by `Cluster::attach_injector`); without it they
/// match nothing.
struct MessageRule {
  enum class Kind : std::uint8_t { kDrop, kDelay, kDuplicate };
  Kind kind = Kind::kDrop;
  double from = 0.0;
  double until = 0.0;
  double probability = 0.0;
  double mean_extra = 0.0;     // kDelay: mean of the exponential extra latency
  net::LinkId link = kAllLinks;
  std::string domain_a;        // empty = link-scoped rule
  std::string domain_b;        // second boundary, or "*" = outside domain_a
};

/// Correlated-failure model: whenever a site goes down (scripted action,
/// background failure, or crash-on-commit trigger), each *other* currently
/// up site sharing its failure domain at `level` also fails with
/// probability `probability`, staying down for `down_for`. Cascade victims
/// do not trigger further cascades (one level of contagion), and every
/// Bernoulli draw comes from the injector's RNG stream, keeping the
/// cluster's transcript byte-stable for a given seed.
struct CorrelationRule {
  /// Domain-path depth that must be shared: 1 = region, 2 = datacenter,
  /// 3 = rack in the canonical "rg/dc/rk" scheme.
  int level = 3;
  double probability = 0.0;
  double down_for = 10.0;
};

/// A composable fault scenario: a timeline of scheduled actions plus
/// stochastic message-fault windows. Build in C++ through the fluent
/// methods, or parse from a `.chaos` file via `load_chaos`.
class FaultPlan {
public:
  FaultPlan& site_down(double t, net::SiteId s);
  FaultPlan& site_up(double t, net::SiteId s);
  FaultPlan& link_down(double t, net::LinkId l);
  FaultPlan& link_up(double t, net::LinkId l);
  /// Sugar: site down at `t`, back up at `t + down_for`.
  FaultPlan& crash(double t, net::SiteId s, double down_for);
  FaultPlan& partition(double t, std::vector<std::vector<net::SiteId>> groups);
  FaultPlan& heal(double t);
  FaultPlan& heal_links(double t);
  /// Toggle a link down/up every `period` from `from` until `until`;
  /// guarantees the link ends up in the `up` state at `until`.
  FaultPlan& flap_link(net::LinkId l, double from, double until, double period);
  FaultPlan& reassign(double t, net::SiteId origin, quorum::QuorumSpec next);
  /// Arm a one-shot trigger: the next coordinator matching `site` (or any,
  /// with kAnySite) that floods a commit crashes immediately afterwards —
  /// the canonical partial-write scenario — and stays down for `down_for`
  /// (`0.0` = crash with immediate restart: volatile coordinator state is
  /// lost but the site is back up at the same instant).
  FaultPlan& arm_crash_on_commit(double t, net::SiteId site = kAnySite,
                                 double down_for = 10.0);
  /// Crash / recover every site inside domain path prefix `domain`.
  FaultPlan& domain_down(double t, std::string domain);
  FaultPlan& domain_up(double t, std::string domain);
  /// Cut / restore only the a -> b direction of link {a, b} (asymmetric
  /// partial partition; the reverse direction keeps delivering).
  FaultPlan& oneway_down(double t, net::SiteId a, net::SiteId b);
  FaultPlan& oneway_up(double t, net::SiteId a, net::SiteId b);
  /// Add a correlated-failure rule (see CorrelationRule).
  FaultPlan& correlate(int level, double probability, double down_for);
  /// Regime shifts: change the workload read fraction, the component
  /// reliability, or the access/failure ratio rho at `t`. Only draws
  /// *after* `t` use the new value, so runs stay deterministic; these are
  /// the drifting-alpha / failure-ramp scenarios the adaptive loop
  /// (src/adapt) is raced against.
  FaultPlan& set_alpha(double t, double alpha);
  FaultPlan& set_reliability(double t, double reliability);
  FaultPlan& set_rho(double t, double rho);
  /// Submit a scripted access at `origin` — deterministic (no Poisson
  /// draw, no read/write coin flip). This is how model-checker
  /// counterexamples replay their exact access sequence under
  /// `quora_chaos`.
  FaultPlan& access(double t, net::SiteId origin, bool is_read);

  FaultPlan& drop(double from, double until, double p,
                  net::LinkId link = kAllLinks);
  FaultPlan& delay(double from, double until, double p, double mean_extra,
                   net::LinkId link = kAllLinks);
  FaultPlan& duplicate(double from, double until, double p,
                       net::LinkId link = kAllLinks);
  /// Domain-scoped variants: the rule matches links crossing from
  /// `domain_a` to `domain_b` ("*" = anywhere outside domain_a).
  FaultPlan& drop_between(double from, double until, double p,
                          std::string domain_a, std::string domain_b);
  FaultPlan& delay_between(double from, double until, double p,
                           double mean_extra, std::string domain_a,
                           std::string domain_b);
  FaultPlan& duplicate_between(double from, double until, double p,
                               std::string domain_a, std::string domain_b);

  const std::vector<Action>& actions() const noexcept { return actions_; }
  const std::vector<MessageRule>& rules() const noexcept { return rules_; }
  const std::vector<CorrelationRule>& correlations() const noexcept {
    return correlations_;
  }
  bool empty() const noexcept {
    return actions_.empty() && rules_.empty() && correlations_.empty();
  }

private:
  std::vector<Action> actions_;
  std::vector<MessageRule> rules_;
  std::vector<CorrelationRule> correlations_;
};

/// A fully parsed `.chaos` scenario: plan + the system it runs against.
/// The file format embeds the topology text format of `io::load_system`
/// (sites/ring/chords/link/vote/... lines pass through untouched) and adds
/// the chaos directives documented in docs/FAULT_INJECTION.md:
///
/// ```
/// name clean-partition
/// seed 101
/// horizon 240
/// quorum 8 18
/// sites 25
/// ring
/// chords 4
///
/// at 60 partition 0-12 | 13-24
/// at 90 reassign 11 15 from 4
/// at 120 site 3 down
/// at 130 site 3 up
/// at 140 crash 5 for 20
/// at 150 crash-on-commit any for 20
/// at 160 heal
/// flap link 7 from 40 until 120 period 6
/// window 40 160 drop 0.15
/// window 40 160 delay 0.3 0.05
/// window 40 160 duplicate 0.1 link 3
///
/// # failure-domain directives (need `domain` / `geo` annotations):
/// at 60 domain rg0 down            # crash every site under rg0
/// at 120 domain rg0 up
/// at 80 oneway 3 7 down            # cut only the 3 -> 7 direction
/// at 100 oneway 3 7 up
/// correlate rack 0.8 for 30        # rack-mates of any failed site also
///                                  # fail with p=0.8 (region|dc|rack)
/// window 40 160 drop 0.3 between rg0 rg1   # gray inter-region link
/// window 40 160 delay 0.5 0.08 between rg0 *
///
/// # regime shifts (drifting workload / failure rates — see src/adapt):
/// at 200 alpha 0.2                 # read fraction drops to 20%
/// at 200 reliability 0.85          # components degrade to 85% reliable
/// at 200 rho 0.03125               # failures speed up relative to accesses
///
/// # scripted accesses (model-checker counterexample replays):
/// at 50 access 3 write             # submit one write at site 3, no RNG
/// at 55 access 0 read
///
/// # seeded protocol mutations (testing the checkers, never production):
/// mutate accept-stale-qr
/// mutate skip-crash-cleanup
/// ```
struct ChaosSpec {
  std::string name = "unnamed";
  std::uint64_t seed = 1;
  bool has_seed = false;
  double horizon = 0.0;         // 0 = not declared; the runner must supply one
  quorum::QuorumSpec quorum{};  // initial assignment
  bool has_quorum = false;
  /// Seeded known-bad protocol behaviours the run must enable
  /// (`msg::Cluster::Params::TestingMutations` slugs). Emitted into
  /// counterexample replays so a mutation-found bug reproduces under
  /// `quora_chaos`; `audit_chaos` warns on their presence.
  std::vector<std::string> mutations;
  std::optional<io::SystemSpec> system;  // always set on successful parse
  FaultPlan plan;
};

/// Parses a `.chaos` scenario; throws `io::ParseError` on malformed input.
/// Range validation against the topology (site/link ids, probabilities,
/// schedule sanity) is the job of `audit_chaos`, not the parser.
ChaosSpec load_chaos(std::istream& in);
ChaosSpec load_chaos_file(const std::string& path);

} // namespace quora::fault
