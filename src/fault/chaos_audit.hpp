#pragma once

#include <iosfwd>
#include <string>

#include "io/config_audit.hpp"

namespace quora::fault {

/// Static audit of a `.chaos` fault plan, the chaos-side twin of
/// `io::audit_config`: parses the scenario, then validates the schedule
/// (horizon present, windows well-formed, probabilities in range,
/// partition groups disjoint — `io::AuditCode::kChaosBadSchedule`) and
/// every component reference against the embedded topology
/// (`kChaosUnknownTarget`). Quorum directives — the initial assignment and
/// every `reassign` target — reuse the existing quorum codes
/// (`kQuorumRange`, `kQuorumIntersection`, `kWriteWriteIntersection`), so
/// one report vocabulary covers both file kinds. This is what quora-check
/// runs when handed a `.chaos` file.
io::AuditReport audit_chaos(std::istream& in);
io::AuditReport audit_chaos_file(const std::string& path);

} // namespace quora::fault
