#include "fault/chaos_audit.hpp"

#include <fstream>
#include <optional>
#include <set>
#include <sstream>
#include <string>

#include "fault/fault_plan.hpp"

namespace quora::fault {
namespace {

using io::AuditCode;
using io::AuditFinding;
using io::AuditReport;
using io::AuditSeverity;

class ChaosAuditor {
public:
  AuditReport run(std::istream& in) {
    std::optional<ChaosSpec> spec;
    try {
      spec = load_chaos(in);
    } catch (const std::exception& e) {
      error(AuditCode::kParseError, e.what());
      return std::move(report_);
    }
    const net::Topology& topo = spec->system->topology;
    const net::Vote total = topo.total_votes();

    if (!(spec->horizon > 0.0)) {
      error(AuditCode::kChaosBadSchedule,
            "plan declares no positive 'horizon': the soak runner cannot "
            "know when the scenario ends");
    }
    if (spec->has_quorum) audit_spec("initial quorum", spec->quorum, total);

    for (const Action& a : spec->plan.actions()) audit_action(a, topo, *spec);
    for (const MessageRule& r : spec->plan.rules()) audit_rule(r, topo, *spec);
    return std::move(report_);
  }

private:
  void error(AuditCode code, std::string message) {
    report_.findings.push_back(
        AuditFinding{code, AuditSeverity::kError, std::move(message)});
  }
  void warn(AuditCode code, std::string message) {
    report_.findings.push_back(
        AuditFinding{code, AuditSeverity::kWarning, std::move(message)});
  }

  void audit_spec(const std::string& label, const quorum::QuorumSpec& spec,
                  net::Vote total) {
    if (spec.q_r < 1 || spec.q_w < 1 || spec.q_r > total || spec.q_w > total) {
      error(AuditCode::kQuorumRange,
            label + " (" + std::to_string(spec.q_r) + ", " +
                std::to_string(spec.q_w) + ") outside [1, T=" +
                std::to_string(total) + "]");
      return;
    }
    if (spec.q_r + spec.q_w <= total) {
      error(AuditCode::kQuorumIntersection,
            label + ": q_r + q_w = " + std::to_string(spec.q_r + spec.q_w) +
                " <= T = " + std::to_string(total));
    }
    if (2 * spec.q_w <= total) {
      error(AuditCode::kWriteWriteIntersection,
            label + ": 2*q_w = " + std::to_string(2 * spec.q_w) +
                " <= T = " + std::to_string(total));
    }
  }

  void check_site(const char* what, double t, net::SiteId s,
                  const net::Topology& topo) {
    if (s >= topo.site_count()) {
      error(AuditCode::kChaosUnknownTarget,
            std::string(what) + " at t=" + std::to_string(t) +
                " names site " + std::to_string(s) + " but the topology has " +
                std::to_string(topo.site_count()) + " sites");
    }
  }

  void check_link(const char* what, double t, net::LinkId l,
                  const net::Topology& topo) {
    if (l >= topo.link_count()) {
      error(AuditCode::kChaosUnknownTarget,
            std::string(what) + " at t=" + std::to_string(t) +
                " names link " + std::to_string(l) + " but the topology has " +
                std::to_string(topo.link_count()) + " links");
    }
  }

  void audit_action(const Action& a, const net::Topology& topo,
                    const ChaosSpec& spec) {
    if (!(a.time >= 0.0)) {
      error(AuditCode::kChaosBadSchedule,
            "action scheduled at negative time " + std::to_string(a.time));
    }
    if (spec.horizon > 0.0 && a.time > spec.horizon) {
      warn(AuditCode::kChaosBadSchedule,
           "action at t=" + std::to_string(a.time) +
               " lies beyond the horizon (" + std::to_string(spec.horizon) +
               ") and will never fire");
    }
    switch (a.kind) {
      case Action::Kind::kSiteDown:
      case Action::Kind::kSiteUp:
        check_site("site action", a.time, a.site, topo);
        break;
      case Action::Kind::kLinkDown:
      case Action::Kind::kLinkUp:
        check_link("link action", a.time, a.link, topo);
        break;
      case Action::Kind::kPartition: {
        std::set<net::SiteId> seen;
        for (const auto& group : a.groups) {
          for (const net::SiteId s : group) {
            check_site("partition", a.time, s, topo);
            if (!seen.insert(s).second) {
              error(AuditCode::kChaosBadSchedule,
                    "partition at t=" + std::to_string(a.time) +
                        " lists site " + std::to_string(s) +
                        " in more than one group");
            }
          }
        }
        break;
      }
      case Action::Kind::kHeal:
      case Action::Kind::kHealLinks:
        break;
      case Action::Kind::kReassign:
        check_site("reassign", a.time, a.site, topo);
        audit_spec("reassign at t=" + std::to_string(a.time), a.next,
                   topo.total_votes());
        break;
      case Action::Kind::kArmCrashOnCommit:
        if (a.site != kAnySite) {
          check_site("crash-on-commit", a.time, a.site, topo);
        }
        if (!(a.duration > 0.0)) {
          error(AuditCode::kChaosBadSchedule,
                "crash-on-commit at t=" + std::to_string(a.time) +
                    " needs a positive down-time");
        }
        break;
    }
  }

  void audit_rule(const MessageRule& r, const net::Topology& topo,
                  const ChaosSpec& spec) {
    if (!(r.until > r.from) || !(r.from >= 0.0)) {
      error(AuditCode::kChaosBadSchedule,
            "window [" + std::to_string(r.from) + ", " +
                std::to_string(r.until) + ") is inverted, empty, or starts "
                "before t=0");
    }
    if (!(r.probability >= 0.0 && r.probability <= 1.0)) {
      error(AuditCode::kChaosBadSchedule,
            "window probability " + std::to_string(r.probability) +
                " outside [0, 1]");
    }
    if (r.kind == MessageRule::Kind::kDelay && !(r.mean_extra > 0.0)) {
      error(AuditCode::kChaosBadSchedule,
            "delay window needs a positive mean extra latency");
    }
    if (r.link != kAllLinks) check_link("window", r.from, r.link, topo);
    if (spec.horizon > 0.0 && r.from > spec.horizon) {
      warn(AuditCode::kChaosBadSchedule,
           "window starting at t=" + std::to_string(r.from) +
               " lies beyond the horizon and will never apply");
    }
  }

  AuditReport report_;
};

} // namespace

io::AuditReport audit_chaos(std::istream& in) { return ChaosAuditor().run(in); }

io::AuditReport audit_chaos_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open chaos plan: " + path);
  return audit_chaos(in);
}

} // namespace quora::fault
