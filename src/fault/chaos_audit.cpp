#include "fault/chaos_audit.hpp"

#include <fstream>
#include <optional>
#include <set>
#include <sstream>
#include <string>

#include "fault/fault_plan.hpp"

namespace quora::fault {
namespace {

using io::AuditCode;
using io::AuditFinding;
using io::AuditReport;
using io::AuditSeverity;

class ChaosAuditor {
public:
  AuditReport run(std::istream& in) {
    std::optional<ChaosSpec> spec;
    try {
      spec = load_chaos(in);
    } catch (const std::exception& e) {
      error(AuditCode::kParseError, e.what());
      return std::move(report_);
    }
    const net::Topology& topo = spec->system->topology;
    const net::Vote total = topo.total_votes();

    if (!(spec->horizon > 0.0)) {
      error(AuditCode::kChaosBadSchedule,
            "plan declares no positive 'horizon': the soak runner cannot "
            "know when the scenario ends");
    }
    if (spec->has_quorum) audit_spec("initial quorum", spec->quorum, total);

    for (const Action& a : spec->plan.actions()) audit_action(a, topo, *spec);
    for (const MessageRule& r : spec->plan.rules()) audit_rule(r, topo, *spec);
    for (const CorrelationRule& c : spec->plan.correlations()) {
      audit_correlation(c, topo);
    }
    for (const std::string& m : spec->mutations) {
      if (m != "accept-stale-qr" && m != "skip-crash-cleanup") {
        error(AuditCode::kChaosBadSchedule,
              "unknown mutation '" + m +
                  "' (known: accept-stale-qr, skip-crash-cleanup)");
      } else {
        warn(AuditCode::kChaosBadSchedule,
             "plan enables seeded protocol mutation '" + m +
                 "' — checker-validation fixtures only, never production");
      }
    }
    return std::move(report_);
  }

private:
  void error(AuditCode code, std::string message) {
    report_.findings.push_back(
        AuditFinding{code, AuditSeverity::kError, std::move(message)});
  }
  void warn(AuditCode code, std::string message) {
    report_.findings.push_back(
        AuditFinding{code, AuditSeverity::kWarning, std::move(message)});
  }

  void audit_spec(const std::string& label, const quorum::QuorumSpec& spec,
                  net::Vote total) {
    if (spec.q_r < 1 || spec.q_w < 1 || spec.q_r > total || spec.q_w > total) {
      error(AuditCode::kQuorumRange,
            label + " (" + std::to_string(spec.q_r) + ", " +
                std::to_string(spec.q_w) + ") outside [1, T=" +
                std::to_string(total) + "]");
      return;
    }
    if (spec.q_r + spec.q_w <= total) {
      error(AuditCode::kQuorumIntersection,
            label + ": q_r + q_w = " + std::to_string(spec.q_r + spec.q_w) +
                " <= T = " + std::to_string(total));
    }
    if (2 * spec.q_w <= total) {
      error(AuditCode::kWriteWriteIntersection,
            label + ": 2*q_w = " + std::to_string(2 * spec.q_w) +
                " <= T = " + std::to_string(total));
    }
  }

  void check_site(const char* what, double t, net::SiteId s,
                  const net::Topology& topo) {
    if (s >= topo.site_count()) {
      error(AuditCode::kChaosUnknownTarget,
            std::string(what) + " at t=" + std::to_string(t) +
                " names site " + std::to_string(s) + " but the topology has " +
                std::to_string(topo.site_count()) + " sites");
    }
  }

  void check_link(const char* what, double t, net::LinkId l,
                  const net::Topology& topo) {
    if (l >= topo.link_count()) {
      error(AuditCode::kChaosUnknownTarget,
            std::string(what) + " at t=" + std::to_string(t) +
                " names link " + std::to_string(l) + " but the topology has " +
                std::to_string(topo.link_count()) + " links");
    }
  }

  void audit_action(const Action& a, const net::Topology& topo,
                    const ChaosSpec& spec) {
    if (!(a.time >= 0.0)) {
      error(AuditCode::kChaosBadSchedule,
            "action scheduled at negative time " + std::to_string(a.time));
    }
    if (spec.horizon > 0.0 && a.time > spec.horizon) {
      warn(AuditCode::kChaosBadSchedule,
           "action at t=" + std::to_string(a.time) +
               " lies beyond the horizon (" + std::to_string(spec.horizon) +
               ") and will never fire");
    }
    switch (a.kind) {
      case Action::Kind::kSiteDown:
      case Action::Kind::kSiteUp:
        check_site("site action", a.time, a.site, topo);
        break;
      case Action::Kind::kLinkDown:
      case Action::Kind::kLinkUp:
        check_link("link action", a.time, a.link, topo);
        break;
      case Action::Kind::kPartition: {
        std::set<net::SiteId> seen;
        for (const auto& group : a.groups) {
          for (const net::SiteId s : group) {
            check_site("partition", a.time, s, topo);
            if (!seen.insert(s).second) {
              error(AuditCode::kChaosBadSchedule,
                    "partition at t=" + std::to_string(a.time) +
                        " lists site " + std::to_string(s) +
                        " in more than one group");
            }
          }
        }
        break;
      }
      case Action::Kind::kHeal:
      case Action::Kind::kHealLinks:
        break;
      case Action::Kind::kReassign:
        check_site("reassign", a.time, a.site, topo);
        audit_spec("reassign at t=" + std::to_string(a.time), a.next,
                   topo.total_votes());
        break;
      case Action::Kind::kArmCrashOnCommit:
        if (a.site != kAnySite) {
          check_site("crash-on-commit", a.time, a.site, topo);
        }
        // duration == 0 is the defined immediate-restart crash.
        if (!(a.duration >= 0.0)) {
          error(AuditCode::kChaosBadSchedule,
                "crash-on-commit at t=" + std::to_string(a.time) +
                    " needs a down-time >= 0");
        }
        break;
      case Action::Kind::kDomainDown:
      case Action::Kind::kDomainUp:
        check_domain("domain action", a.time, a.domain, topo);
        break;
      case Action::Kind::kOneWayDown:
      case Action::Kind::kOneWayUp:
        check_site("oneway", a.time, a.site, topo);
        check_site("oneway", a.time, a.site_b, topo);
        if (a.site < topo.site_count() && a.site_b < topo.site_count() &&
            !topo.has_link(a.site, a.site_b)) {
          error(AuditCode::kChaosUnknownTarget,
                "oneway at t=" + std::to_string(a.time) + " names link {" +
                    std::to_string(a.site) + ", " + std::to_string(a.site_b) +
                    "} but no such link exists");
        }
        break;
      case Action::Kind::kSetAlpha:
        if (!(a.value >= 0.0 && a.value <= 1.0)) {
          error(AuditCode::kChaosBadSchedule,
                "alpha shift at t=" + std::to_string(a.time) + " sets " +
                    std::to_string(a.value) + " outside [0, 1]");
        }
        break;
      case Action::Kind::kSetReliability:
        if (!(a.value > 0.0 && a.value < 1.0)) {
          error(AuditCode::kChaosBadSchedule,
                "reliability shift at t=" + std::to_string(a.time) + " sets " +
                    std::to_string(a.value) +
                    " outside (0, 1): the repair-time model needs a proper "
                    "fraction");
        }
        break;
      case Action::Kind::kSetRho:
        if (!(a.value > 0.0)) {
          error(AuditCode::kChaosBadSchedule,
                "rho shift at t=" + std::to_string(a.time) +
                    " needs a positive access/failure ratio");
        }
        break;
      case Action::Kind::kAccess:
        check_site("access", a.time, a.site, topo);
        break;
    }
  }

  void check_domain(const char* what, double t, const std::string& prefix,
                    const net::Topology& topo) {
    if (!topo.has_domains()) {
      error(AuditCode::kDomainConfig,
            std::string(what) + " at t=" + std::to_string(t) +
                " targets domain '" + prefix +
                "' but the topology declares no domains");
      return;
    }
    if (topo.sites_in_domain(prefix).empty()) {
      error(AuditCode::kDomainConfig,
            std::string(what) + " at t=" + std::to_string(t) +
                " targets domain '" + prefix + "' but no site belongs to it");
    }
  }

  void audit_correlation(const CorrelationRule& c, const net::Topology& topo) {
    if (c.level < 1 || c.level > 3) {
      error(AuditCode::kChaosBadSchedule,
            "correlate level " + std::to_string(c.level) +
                " outside 1 (region) .. 3 (rack)");
    }
    if (!(c.probability >= 0.0 && c.probability <= 1.0)) {
      error(AuditCode::kChaosBadSchedule,
            "correlate probability " + std::to_string(c.probability) +
                " outside [0, 1]");
    }
    if (!(c.down_for > 0.0)) {
      error(AuditCode::kChaosBadSchedule,
            "correlate needs a positive down-time");
    }
    if (!topo.has_domains()) {
      error(AuditCode::kDomainConfig,
            "correlate rule needs domain annotations but the topology "
            "declares none");
    }
  }

  void audit_rule(const MessageRule& r, const net::Topology& topo,
                  const ChaosSpec& spec) {
    // Windows are half-open [from, until): inverted windows are rejected,
    // but the empty from == until window is merely inert (warning).
    if (r.until < r.from || !(r.from >= 0.0)) {
      error(AuditCode::kChaosBadSchedule,
            "window [" + std::to_string(r.from) + ", " +
                std::to_string(r.until) + ") is inverted or starts "
                "before t=0");
    } else if (r.until == r.from) {
      warn(AuditCode::kChaosBadSchedule,
           "window [" + std::to_string(r.from) + ", " +
               std::to_string(r.until) + ") is empty and can never match");
    }
    if (!(r.probability >= 0.0 && r.probability <= 1.0)) {
      error(AuditCode::kChaosBadSchedule,
            "window probability " + std::to_string(r.probability) +
                " outside [0, 1]");
    }
    if (r.kind == MessageRule::Kind::kDelay && !(r.mean_extra > 0.0)) {
      error(AuditCode::kChaosBadSchedule,
            "delay window needs a positive mean extra latency");
    }
    if (r.link != kAllLinks) check_link("window", r.from, r.link, topo);
    if (!r.domain_a.empty()) {
      check_domain("window", r.from, r.domain_a, topo);
      if (r.domain_b != "*") check_domain("window", r.from, r.domain_b, topo);
      if (topo.has_domains()) {
        // The rule should actually select at least one link.
        bool any = false;
        for (net::LinkId l = 0; l < topo.link_count() && !any; ++l) {
          const net::Link& link = topo.link(l);
          const std::string& da = topo.domain(link.a);
          const std::string& db = topo.domain(link.b);
          const auto crosses = [&](const std::string& x,
                                   const std::string& y) {
            if (!net::Topology::domain_contains(r.domain_a, x)) return false;
            if (r.domain_b == "*") {
              return !net::Topology::domain_contains(r.domain_a, y);
            }
            return net::Topology::domain_contains(r.domain_b, y);
          };
          any = crosses(da, db) || crosses(db, da);
        }
        if (!any) {
          warn(AuditCode::kDomainConfig,
               "window between '" + r.domain_a + "' and '" + r.domain_b +
                   "' matches no link");
        }
      }
    }
    if (spec.horizon > 0.0 && r.from > spec.horizon) {
      warn(AuditCode::kChaosBadSchedule,
           "window starting at t=" + std::to_string(r.from) +
               " lies beyond the horizon and will never apply");
    }
  }

  AuditReport report_;
};

} // namespace

io::AuditReport audit_chaos(std::istream& in) { return ChaosAuditor().run(in); }

io::AuditReport audit_chaos_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open chaos plan: " + path);
  return audit_chaos(in);
}

} // namespace quora::fault
