#include "fault/fault_plan.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace quora::fault {
namespace {

using io::ParseError;

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw ParseError(line, what);
}

double need_double(std::istringstream& cells, std::size_t line,
                   const char* what) {
  double v = 0.0;
  if (!(cells >> v)) fail(line, std::string("expected ") + what);
  return v;
}

std::uint32_t need_u32(std::istringstream& cells, std::size_t line,
                       const char* what) {
  std::uint32_t v = 0;
  if (!(cells >> v)) fail(line, std::string("expected ") + what);
  return v;
}

void need_keyword(std::istringstream& cells, std::size_t line,
                  const std::string& keyword) {
  std::string word;
  if (!(cells >> word) || word != keyword) {
    fail(line, "expected keyword '" + keyword + "'");
  }
}

void reject_trailing(std::istringstream& cells, std::size_t line) {
  std::string extra;
  if (cells >> extra) fail(line, "trailing junk '" + extra + "'");
}

/// Parses one partition group token: a comma-separated list of site ids
/// and id ranges, e.g. `0-4,7,9-12`.
std::vector<net::SiteId> parse_group(const std::string& token,
                                     std::size_t line) {
  std::vector<net::SiteId> group;
  std::istringstream parts(token);
  std::string part;
  while (std::getline(parts, part, ',')) {
    if (part.empty()) fail(line, "empty member in partition group");
    const auto dash = part.find('-');
    try {
      if (dash == std::string::npos) {
        group.push_back(static_cast<net::SiteId>(std::stoul(part)));
      } else {
        const auto lo =
            static_cast<net::SiteId>(std::stoul(part.substr(0, dash)));
        const auto hi =
            static_cast<net::SiteId>(std::stoul(part.substr(dash + 1)));
        if (hi < lo) fail(line, "descending range '" + part + "'");
        for (net::SiteId s = lo; s <= hi; ++s) group.push_back(s);
      }
    } catch (const ParseError&) {
      throw;
    } catch (const std::exception&) {
      fail(line, "bad site id in partition group '" + part + "'");
    }
  }
  if (group.empty()) fail(line, "empty partition group");
  return group;
}

void parse_at(FaultPlan& plan, std::istringstream& cells, std::size_t line) {
  const double t = need_double(cells, line, "a time after 'at'");
  std::string what;
  if (!(cells >> what)) fail(line, "expected an action after the time");

  if (what == "site" || what == "link") {
    const std::uint32_t id = need_u32(cells, line, "a component id");
    std::string state;
    if (!(cells >> state) || (state != "down" && state != "up")) {
      fail(line, "expected 'down' or 'up'");
    }
    if (what == "site") {
      state == "down" ? plan.site_down(t, id) : plan.site_up(t, id);
    } else {
      state == "down" ? plan.link_down(t, id) : plan.link_up(t, id);
    }
  } else if (what == "crash") {
    const net::SiteId s = need_u32(cells, line, "a site id after 'crash'");
    need_keyword(cells, line, "for");
    plan.crash(t, s, need_double(cells, line, "a down-time after 'for'"));
  } else if (what == "partition") {
    std::vector<std::vector<net::SiteId>> groups;
    std::string token;
    std::string current;
    while (cells >> token) {
      if (token == "|") {
        groups.push_back(parse_group(current, line));
        current.clear();
      } else {
        current += token;  // allow `0-4, 7` style spacing inside a group
      }
    }
    if (current.empty()) fail(line, "partition needs at least two groups");
    groups.push_back(parse_group(current, line));
    if (groups.size() < 2) fail(line, "partition needs at least two groups");
    plan.partition(t, std::move(groups));
    return;  // consumed the whole line
  } else if (what == "heal") {
    plan.heal(t);
  } else if (what == "heal-links") {
    plan.heal_links(t);
  } else if (what == "reassign") {
    const net::Vote q_r = need_u32(cells, line, "q_r after 'reassign'");
    const net::Vote q_w = need_u32(cells, line, "q_w after 'reassign'");
    need_keyword(cells, line, "from");
    const net::SiteId origin = need_u32(cells, line, "an origin site");
    plan.reassign(t, origin, quorum::QuorumSpec{q_r, q_w});
  } else if (what == "crash-on-commit") {
    std::string target;
    if (!(cells >> target)) fail(line, "expected a site id or 'any'");
    net::SiteId filter = kAnySite;
    if (target != "any") {
      try {
        filter = static_cast<net::SiteId>(std::stoul(target));
      } catch (const std::exception&) {
        fail(line, "crash-on-commit target must be a site id or 'any'");
      }
    }
    double down_for = 10.0;
    std::string keyword;
    if (cells >> keyword) {
      if (keyword != "for") fail(line, "expected 'for' or end of line");
      down_for = need_double(cells, line, "a down-time after 'for'");
    }
    plan.arm_crash_on_commit(t, filter, down_for);
    return;
  } else if (what == "domain") {
    std::string path;
    std::string state;
    if (!(cells >> path >> state) || (state != "down" && state != "up")) {
      fail(line, "expected 'domain PATH down|up'");
    }
    state == "down" ? plan.domain_down(t, std::move(path))
                    : plan.domain_up(t, std::move(path));
  } else if (what == "oneway") {
    const net::SiteId a = need_u32(cells, line, "a from-site after 'oneway'");
    const net::SiteId b2 = need_u32(cells, line, "a to-site after 'oneway'");
    std::string state;
    if (!(cells >> state) || (state != "down" && state != "up")) {
      fail(line, "expected 'down' or 'up'");
    }
    state == "down" ? plan.oneway_down(t, a, b2) : plan.oneway_up(t, a, b2);
  } else if (what == "access") {
    const net::SiteId origin = need_u32(cells, line, "a site id after 'access'");
    std::string rw;
    if (!(cells >> rw) || (rw != "read" && rw != "write")) {
      fail(line, "expected 'read' or 'write' after the access origin");
    }
    plan.access(t, origin, rw == "read");
  } else if (what == "alpha") {
    plan.set_alpha(t, need_double(cells, line, "a value after 'alpha'"));
  } else if (what == "reliability") {
    plan.set_reliability(t,
                         need_double(cells, line, "a value after 'reliability'"));
  } else if (what == "rho") {
    plan.set_rho(t, need_double(cells, line, "a value after 'rho'"));
  } else {
    fail(line, "unknown action '" + what + "'");
  }
  reject_trailing(cells, line);
}

/// `correlate region|dc|rack P for D`
void parse_correlate(FaultPlan& plan, std::istringstream& cells,
                     std::size_t line) {
  std::string level_word;
  if (!(cells >> level_word)) fail(line, "expected region, dc or rack");
  int level = 0;
  if (level_word == "region") {
    level = 1;
  } else if (level_word == "dc") {
    level = 2;
  } else if (level_word == "rack") {
    level = 3;
  } else {
    fail(line, "correlate level must be region, dc or rack, got '" +
                   level_word + "'");
  }
  const double p = need_double(cells, line, "a probability");
  need_keyword(cells, line, "for");
  const double down_for = need_double(cells, line, "a down-time after 'for'");
  reject_trailing(cells, line);
  plan.correlate(level, p, down_for);
}

void parse_window(FaultPlan& plan, std::istringstream& cells,
                  std::size_t line) {
  const double from = need_double(cells, line, "a window start time");
  const double until = need_double(cells, line, "a window end time");
  std::string kind;
  if (!(cells >> kind)) fail(line, "expected drop/delay/duplicate");
  const double p = need_double(cells, line, "a probability");
  double mean_extra = 0.0;
  if (kind == "delay") {
    mean_extra = need_double(cells, line, "a mean extra latency");
  } else if (kind != "drop" && kind != "duplicate") {
    fail(line, "unknown window kind '" + kind + "'");
  }
  net::LinkId link = kAllLinks;
  std::string dom_a;
  std::string dom_b;
  std::string keyword;
  if (cells >> keyword) {
    if (keyword == "link") {
      link = need_u32(cells, line, "a link id after 'link'");
    } else if (keyword == "between") {
      if (!(cells >> dom_a >> dom_b)) {
        fail(line, "'between' needs two domain prefixes (or '*')");
      }
      if (dom_a == "*") fail(line, "the first 'between' domain cannot be '*'");
    } else {
      fail(line, "expected 'link', 'between' or end of line");
    }
    reject_trailing(cells, line);
  }
  if (!dom_a.empty()) {
    if (kind == "drop") {
      plan.drop_between(from, until, p, std::move(dom_a), std::move(dom_b));
    } else if (kind == "delay") {
      plan.delay_between(from, until, p, mean_extra, std::move(dom_a),
                         std::move(dom_b));
    } else {
      plan.duplicate_between(from, until, p, std::move(dom_a),
                             std::move(dom_b));
    }
  } else if (kind == "drop") {
    plan.drop(from, until, p, link);
  } else if (kind == "delay") {
    plan.delay(from, until, p, mean_extra, link);
  } else {
    plan.duplicate(from, until, p, link);
  }
}

void parse_flap(FaultPlan& plan, std::istringstream& cells, std::size_t line) {
  need_keyword(cells, line, "link");
  const net::LinkId l = need_u32(cells, line, "a link id");
  need_keyword(cells, line, "from");
  const double from = need_double(cells, line, "a start time");
  need_keyword(cells, line, "until");
  const double until = need_double(cells, line, "an end time");
  need_keyword(cells, line, "period");
  const double period = need_double(cells, line, "a period");
  reject_trailing(cells, line);
  if (!(period > 0.0)) fail(line, "flap period must be positive");
  if (!(until > from)) fail(line, "flap window must end after it starts");
  plan.flap_link(l, from, until, period);
}

} // namespace

FaultPlan& FaultPlan::site_down(double t, net::SiteId s) {
  Action a;
  a.time = t;
  a.kind = Action::Kind::kSiteDown;
  a.site = s;
  actions_.push_back(std::move(a));
  return *this;
}

FaultPlan& FaultPlan::site_up(double t, net::SiteId s) {
  Action a;
  a.time = t;
  a.kind = Action::Kind::kSiteUp;
  a.site = s;
  actions_.push_back(std::move(a));
  return *this;
}

FaultPlan& FaultPlan::link_down(double t, net::LinkId l) {
  Action a;
  a.time = t;
  a.kind = Action::Kind::kLinkDown;
  a.link = l;
  actions_.push_back(std::move(a));
  return *this;
}

FaultPlan& FaultPlan::link_up(double t, net::LinkId l) {
  Action a;
  a.time = t;
  a.kind = Action::Kind::kLinkUp;
  a.link = l;
  actions_.push_back(std::move(a));
  return *this;
}

FaultPlan& FaultPlan::crash(double t, net::SiteId s, double down_for) {
  return site_down(t, s).site_up(t + down_for, s);
}

FaultPlan& FaultPlan::partition(double t,
                                std::vector<std::vector<net::SiteId>> groups) {
  Action a;
  a.time = t;
  a.kind = Action::Kind::kPartition;
  a.groups = std::move(groups);
  actions_.push_back(std::move(a));
  return *this;
}

FaultPlan& FaultPlan::heal(double t) {
  Action a;
  a.time = t;
  a.kind = Action::Kind::kHeal;
  actions_.push_back(std::move(a));
  return *this;
}

FaultPlan& FaultPlan::heal_links(double t) {
  Action a;
  a.time = t;
  a.kind = Action::Kind::kHealLinks;
  actions_.push_back(std::move(a));
  return *this;
}

FaultPlan& FaultPlan::flap_link(net::LinkId l, double from, double until,
                                double period) {
  bool down = true;
  for (double t = from; t < until; t += period) {
    down ? link_down(t, l) : link_up(t, l);
    down = !down;
  }
  // Always hand the link back: a flap window never leaks a down link past
  // its end, so later plan stages start from a known state.
  link_up(until, l);
  return *this;
}

FaultPlan& FaultPlan::reassign(double t, net::SiteId origin,
                               quorum::QuorumSpec next) {
  Action a;
  a.time = t;
  a.kind = Action::Kind::kReassign;
  a.site = origin;
  a.next = next;
  actions_.push_back(std::move(a));
  return *this;
}

FaultPlan& FaultPlan::arm_crash_on_commit(double t, net::SiteId site,
                                          double down_for) {
  Action a;
  a.time = t;
  a.kind = Action::Kind::kArmCrashOnCommit;
  a.site = site;
  a.duration = down_for;
  actions_.push_back(std::move(a));
  return *this;
}

FaultPlan& FaultPlan::domain_down(double t, std::string domain) {
  Action a;
  a.time = t;
  a.kind = Action::Kind::kDomainDown;
  a.domain = std::move(domain);
  actions_.push_back(std::move(a));
  return *this;
}

FaultPlan& FaultPlan::domain_up(double t, std::string domain) {
  Action a;
  a.time = t;
  a.kind = Action::Kind::kDomainUp;
  a.domain = std::move(domain);
  actions_.push_back(std::move(a));
  return *this;
}

FaultPlan& FaultPlan::oneway_down(double t, net::SiteId a_site, net::SiteId b) {
  Action a;
  a.time = t;
  a.kind = Action::Kind::kOneWayDown;
  a.site = a_site;
  a.site_b = b;
  actions_.push_back(std::move(a));
  return *this;
}

FaultPlan& FaultPlan::oneway_up(double t, net::SiteId a_site, net::SiteId b) {
  Action a;
  a.time = t;
  a.kind = Action::Kind::kOneWayUp;
  a.site = a_site;
  a.site_b = b;
  actions_.push_back(std::move(a));
  return *this;
}

FaultPlan& FaultPlan::correlate(int level, double probability,
                                double down_for) {
  correlations_.push_back(CorrelationRule{level, probability, down_for});
  return *this;
}

FaultPlan& FaultPlan::set_alpha(double t, double alpha) {
  Action a;
  a.time = t;
  a.kind = Action::Kind::kSetAlpha;
  a.value = alpha;
  actions_.push_back(std::move(a));
  return *this;
}

FaultPlan& FaultPlan::set_reliability(double t, double reliability) {
  Action a;
  a.time = t;
  a.kind = Action::Kind::kSetReliability;
  a.value = reliability;
  actions_.push_back(std::move(a));
  return *this;
}

FaultPlan& FaultPlan::set_rho(double t, double rho) {
  Action a;
  a.time = t;
  a.kind = Action::Kind::kSetRho;
  a.value = rho;
  actions_.push_back(std::move(a));
  return *this;
}

FaultPlan& FaultPlan::access(double t, net::SiteId origin, bool is_read) {
  Action a;
  a.time = t;
  a.kind = Action::Kind::kAccess;
  a.site = origin;
  a.is_read = is_read;
  actions_.push_back(std::move(a));
  return *this;
}

FaultPlan& FaultPlan::drop(double from, double until, double p,
                           net::LinkId link) {
  rules_.push_back(MessageRule{MessageRule::Kind::kDrop, from, until, p, 0.0,
                               link});
  return *this;
}

FaultPlan& FaultPlan::delay(double from, double until, double p,
                            double mean_extra, net::LinkId link) {
  rules_.push_back(MessageRule{MessageRule::Kind::kDelay, from, until, p,
                               mean_extra, link});
  return *this;
}

FaultPlan& FaultPlan::duplicate(double from, double until, double p,
                                net::LinkId link) {
  rules_.push_back(MessageRule{MessageRule::Kind::kDuplicate, from, until, p,
                               0.0, link});
  return *this;
}

FaultPlan& FaultPlan::drop_between(double from, double until, double p,
                                   std::string domain_a,
                                   std::string domain_b) {
  rules_.push_back(MessageRule{MessageRule::Kind::kDrop, from, until, p, 0.0,
                               kAllLinks, std::move(domain_a),
                               std::move(domain_b)});
  return *this;
}

FaultPlan& FaultPlan::delay_between(double from, double until, double p,
                                    double mean_extra, std::string domain_a,
                                    std::string domain_b) {
  rules_.push_back(MessageRule{MessageRule::Kind::kDelay, from, until, p,
                               mean_extra, kAllLinks, std::move(domain_a),
                               std::move(domain_b)});
  return *this;
}

FaultPlan& FaultPlan::duplicate_between(double from, double until, double p,
                                        std::string domain_a,
                                        std::string domain_b) {
  rules_.push_back(MessageRule{MessageRule::Kind::kDuplicate, from, until, p,
                               0.0, kAllLinks, std::move(domain_a),
                               std::move(domain_b)});
  return *this;
}

ChaosSpec load_chaos(std::istream& in) {
  ChaosSpec spec;
  std::ostringstream system_text;
  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const auto hash = raw.find('#');
    const std::string line =
        hash == std::string::npos ? raw : raw.substr(0, hash);
    std::istringstream cells(line);
    std::string directive;
    if (!(cells >> directive)) {
      system_text << raw << '\n';
      continue;
    }
    if (directive == "name") {
      if (!(cells >> spec.name)) fail(line_no, "'name' needs a value");
      reject_trailing(cells, line_no);
    } else if (directive == "seed") {
      if (!(cells >> spec.seed)) fail(line_no, "'seed' needs a value");
      spec.has_seed = true;
      reject_trailing(cells, line_no);
    } else if (directive == "horizon") {
      spec.horizon = need_double(cells, line_no, "a duration after 'horizon'");
      reject_trailing(cells, line_no);
    } else if (directive == "quorum") {
      const net::Vote q_r = need_u32(cells, line_no, "q_r after 'quorum'");
      const net::Vote q_w = need_u32(cells, line_no, "q_w after 'quorum'");
      spec.quorum = quorum::QuorumSpec{q_r, q_w};
      spec.has_quorum = true;
      reject_trailing(cells, line_no);
    } else if (directive == "at") {
      parse_at(spec.plan, cells, line_no);
    } else if (directive == "window") {
      parse_window(spec.plan, cells, line_no);
    } else if (directive == "flap") {
      parse_flap(spec.plan, cells, line_no);
    } else if (directive == "correlate") {
      parse_correlate(spec.plan, cells, line_no);
    } else if (directive == "mutate") {
      std::string which;
      if (!(cells >> which)) fail(line_no, "'mutate' needs a mutation name");
      reject_trailing(cells, line_no);
      spec.mutations.push_back(std::move(which));
    } else {
      system_text << raw << '\n';  // a topology/system directive
    }
  }
  std::istringstream system_in(system_text.str());
  spec.system = io::load_system(system_in);
  return spec;
}

ChaosSpec load_chaos_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open chaos plan: " + path);
  return load_chaos(in);
}

} // namespace quora::fault
