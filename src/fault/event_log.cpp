#include "fault/event_log.hpp"

#include <cstdio>
#include <ostream>

namespace quora::fault {

void EventLog::record(double t, std::string_view line) {
  char prefix[40];
  std::snprintf(prefix, sizeof prefix, "t=%.6f ", t);
  std::string entry(prefix);
  entry.append(line);
  lines_.push_back(std::move(entry));
}

bool EventLog::contains(std::string_view needle) const {
  for (const std::string& line : lines_) {
    if (line.find(needle) != std::string::npos) return true;
  }
  return false;
}

void EventLog::write(std::ostream& out) const {
  for (const std::string& line : lines_) out << line << '\n';
}

std::uint64_t EventLog::hash() const noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a 64
  for (const std::string& line : lines_) {
    for (const char c : line) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 0x100000001b3ULL;
    }
    h ^= static_cast<std::uint8_t>('\n');
    h *= 0x100000001b3ULL;
  }
  return h;
}

} // namespace quora::fault
