#include "fault/injector.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "rng/distributions.hpp"

namespace quora::fault {
namespace {

void validate(const FaultPlan& plan) {
  for (const Action& a : plan.actions()) {
    if (!(a.time >= 0.0) || !std::isfinite(a.time)) {
      throw std::invalid_argument("FaultInjector: action scheduled at a "
                                  "negative or non-finite time");
    }
    // duration == 0.0 is the defined "crash with immediate restart": the
    // coordinator's volatile state is lost but the site never leaves the
    // up set. Only negative/non-finite down-times are nonsense.
    if (a.kind == Action::Kind::kArmCrashOnCommit &&
        (!(a.duration >= 0.0) || !std::isfinite(a.duration))) {
      throw std::invalid_argument(
          "FaultInjector: crash-on-commit needs a down-time >= 0");
    }
    if (a.kind == Action::Kind::kPartition && a.groups.size() < 2) {
      throw std::invalid_argument(
          "FaultInjector: a partition needs at least two groups");
    }
    if ((a.kind == Action::Kind::kDomainDown ||
         a.kind == Action::Kind::kDomainUp) &&
        a.domain.empty()) {
      throw std::invalid_argument(
          "FaultInjector: domain action needs a domain path");
    }
    if ((a.kind == Action::Kind::kOneWayDown ||
         a.kind == Action::Kind::kOneWayUp) &&
        a.site == a.site_b) {
      throw std::invalid_argument(
          "FaultInjector: one-way cut needs two distinct endpoints");
    }
  }
  for (const MessageRule& r : plan.rules()) {
    if (!(r.probability >= 0.0 && r.probability <= 1.0)) {
      throw std::invalid_argument(
          "FaultInjector: rule probability outside [0, 1]");
    }
    // [from, until) is half-open; from == until is a legal inert window
    // that can never match. Only truly inverted windows are rejected.
    if (!(r.until >= r.from) || !(r.from >= 0.0)) {
      throw std::invalid_argument("FaultInjector: rule window is inverted "
                                  "or starts before t=0");
    }
    if (r.kind == MessageRule::Kind::kDelay && !(r.mean_extra > 0.0)) {
      throw std::invalid_argument(
          "FaultInjector: delay rule needs a positive mean extra latency");
    }
    if (r.domain_a == "*") {
      throw std::invalid_argument(
          "FaultInjector: the first rule domain cannot be the wildcard");
    }
    if (!r.domain_a.empty() && r.domain_b.empty()) {
      throw std::invalid_argument(
          "FaultInjector: a domain-scoped rule needs both domains");
    }
  }
  for (const CorrelationRule& c : plan.correlations()) {
    if (c.level < 1 || c.level > 3) {
      throw std::invalid_argument(
          "FaultInjector: correlation level must be 1 (region), 2 (dc) or "
          "3 (rack)");
    }
    if (!(c.probability >= 0.0 && c.probability <= 1.0)) {
      throw std::invalid_argument(
          "FaultInjector: correlation probability outside [0, 1]");
    }
    if (!(c.down_for > 0.0) || !std::isfinite(c.down_for)) {
      throw std::invalid_argument(
          "FaultInjector: correlated failures need a positive down-time");
    }
  }
}

} // namespace

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t seed)
    : timeline_(plan.actions()),
      rules_(plan.rules()),
      correlations_(plan.correlations()),
      // Stream 1: one jump (2^128 steps) past the cluster's stream 0, so a
      // shared root seed never correlates the two draw sequences.
      gen_(seed, 1) {
  validate(plan);
  rule_link_mask_.assign(rules_.size(), {});
  std::stable_sort(timeline_.begin(), timeline_.end(),
                   [](const Action& a, const Action& b) {
                     return a.time < b.time;
                   });
}

void FaultInjector::set_topology(const net::Topology* topo) {
  topo_ = topo;
  rule_link_mask_.assign(rules_.size(), {});
  if (topo_ == nullptr) return;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const MessageRule& r = rules_[i];
    if (r.domain_a.empty()) continue;  // link-scoped, no mask needed
    std::vector<char> mask(topo_->link_count(), 0);
    for (net::LinkId l = 0; l < topo_->link_count(); ++l) {
      const net::Link& link = topo_->link(l);
      const std::string& da = topo_->domain(link.a);
      const std::string& db = topo_->domain(link.b);
      const auto crosses = [&](const std::string& x, const std::string& y) {
        if (!net::Topology::domain_contains(r.domain_a, x)) return false;
        if (r.domain_b == "*") {
          // "outside domain_a": annotated or not, y must not be inside a.
          return !net::Topology::domain_contains(r.domain_a, y);
        }
        return net::Topology::domain_contains(r.domain_b, y);
      };
      mask[l] = (crosses(da, db) || crosses(db, da)) ? 1 : 0;
    }
    rule_link_mask_[i] = std::move(mask);
  }
}

bool FaultInjector::rule_matches_link(std::size_t rule_index,
                                      net::LinkId link) const {
  const MessageRule& r = rules_[rule_index];
  if (r.domain_a.empty()) {
    return r.link == kAllLinks || r.link == link;
  }
  const std::vector<char>& mask = rule_link_mask_[rule_index];
  return link < mask.size() && mask[link] != 0;
}

void FaultInjector::set_metrics(obs::Registry* registry) {
  if (registry == nullptr) {
    obs_drops_ = obs::Counter{};
    obs_duplicates_ = obs::Counter{};
    obs_delays_ = obs::Counter{};
    return;
  }
  obs_drops_ = registry->counter("fault.msg_drops");
  obs_duplicates_ = registry->counter("fault.msg_duplicates");
  obs_delays_ = registry->counter("fault.msg_delays");
}

MessageFault FaultInjector::on_send(net::LinkId link, double now,
                                    double mean_hop_latency) {
  MessageFault fault;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const MessageRule& r = rules_[i];
    if (now < r.from || now >= r.until) continue;
    if (!rule_matches_link(i, link)) continue;
    switch (r.kind) {
      case MessageRule::Kind::kDrop:
        if (rng::bernoulli(gen_, r.probability)) fault.drop = true;
        break;
      case MessageRule::Kind::kDelay:
        if (rng::bernoulli(gen_, r.probability)) {
          fault.extra_delay += rng::exponential(gen_, r.mean_extra);
          QUORA_METRIC_ADD(obs_delays_, 1);
        }
        break;
      case MessageRule::Kind::kDuplicate:
        if (!fault.duplicate && rng::bernoulli(gen_, r.probability)) {
          fault.duplicate = true;
          fault.dup_extra = rng::exponential(gen_, mean_hop_latency);
          QUORA_METRIC_ADD(obs_duplicates_, 1);
        }
        break;
    }
  }
  if (fault.drop) QUORA_METRIC_ADD(obs_drops_, 1);
  return fault;
}

std::vector<std::pair<net::SiteId, double>> FaultInjector::correlated_failures(
    net::SiteId failed) {
  std::vector<std::pair<net::SiteId, double>> fired;
  if (correlations_.empty() || topo_ == nullptr ||
      failed >= topo_->site_count()) {
    return fired;
  }
  for (const CorrelationRule& rule : correlations_) {
    const std::string shared = topo_->domain_prefix(failed, rule.level);
    if (shared.empty()) continue;  // unannotated sites never correlate
    for (net::SiteId s = 0; s < topo_->site_count(); ++s) {
      if (s == failed) continue;
      if (!net::Topology::domain_contains(shared, topo_->domain(s))) continue;
      // Draw unconditionally — the sequence must depend only on the
      // (failed site) query order, not on who happens to be up.
      if (!rng::bernoulli(gen_, rule.probability)) continue;
      const auto already = std::find_if(
          fired.begin(), fired.end(),
          [s](const std::pair<net::SiteId, double>& f) { return f.first == s; });
      if (already == fired.end()) fired.emplace_back(s, rule.down_for);
    }
  }
  return fired;
}

void FaultInjector::arm_crash_on_commit(net::SiteId filter, double down_for) {
  armed_.push_back(Armed{filter, down_for});
}

std::optional<double> FaultInjector::take_crash_on_commit(
    net::SiteId coordinator) {
  for (std::size_t i = 0; i < armed_.size(); ++i) {
    if (armed_[i].filter == kAnySite || armed_[i].filter == coordinator) {
      const double down_for = armed_[i].down_for;
      armed_.erase(armed_.begin() + static_cast<std::ptrdiff_t>(i));
      return down_for;
    }
  }
  return std::nullopt;
}

} // namespace quora::fault
