#include "fault/injector.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "rng/distributions.hpp"

namespace quora::fault {
namespace {

void validate(const FaultPlan& plan) {
  for (const Action& a : plan.actions()) {
    if (!(a.time >= 0.0) || !std::isfinite(a.time)) {
      throw std::invalid_argument("FaultInjector: action scheduled at a "
                                  "negative or non-finite time");
    }
    if (a.kind == Action::Kind::kArmCrashOnCommit && !(a.duration > 0.0)) {
      throw std::invalid_argument(
          "FaultInjector: crash-on-commit needs a positive down-time");
    }
    if (a.kind == Action::Kind::kPartition && a.groups.size() < 2) {
      throw std::invalid_argument(
          "FaultInjector: a partition needs at least two groups");
    }
  }
  for (const MessageRule& r : plan.rules()) {
    if (!(r.probability >= 0.0 && r.probability <= 1.0)) {
      throw std::invalid_argument(
          "FaultInjector: rule probability outside [0, 1]");
    }
    if (!(r.until > r.from) || !(r.from >= 0.0)) {
      throw std::invalid_argument("FaultInjector: rule window is inverted, "
                                  "empty, or starts before t=0");
    }
    if (r.kind == MessageRule::Kind::kDelay && !(r.mean_extra > 0.0)) {
      throw std::invalid_argument(
          "FaultInjector: delay rule needs a positive mean extra latency");
    }
  }
}

} // namespace

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t seed)
    : timeline_(plan.actions()),
      rules_(plan.rules()),
      // Stream 1: one jump (2^128 steps) past the cluster's stream 0, so a
      // shared root seed never correlates the two draw sequences.
      gen_(seed, 1) {
  validate(plan);
  std::stable_sort(timeline_.begin(), timeline_.end(),
                   [](const Action& a, const Action& b) {
                     return a.time < b.time;
                   });
}

void FaultInjector::set_metrics(obs::Registry* registry) {
  if (registry == nullptr) {
    obs_drops_ = obs::Counter{};
    obs_duplicates_ = obs::Counter{};
    obs_delays_ = obs::Counter{};
    return;
  }
  obs_drops_ = registry->counter("fault.msg_drops");
  obs_duplicates_ = registry->counter("fault.msg_duplicates");
  obs_delays_ = registry->counter("fault.msg_delays");
}

MessageFault FaultInjector::on_send(net::LinkId link, double now,
                                    double mean_hop_latency) {
  MessageFault fault;
  for (const MessageRule& r : rules_) {
    if (now < r.from || now >= r.until) continue;
    if (r.link != kAllLinks && r.link != link) continue;
    switch (r.kind) {
      case MessageRule::Kind::kDrop:
        if (rng::bernoulli(gen_, r.probability)) fault.drop = true;
        break;
      case MessageRule::Kind::kDelay:
        if (rng::bernoulli(gen_, r.probability)) {
          fault.extra_delay += rng::exponential(gen_, r.mean_extra);
          QUORA_METRIC_ADD(obs_delays_, 1);
        }
        break;
      case MessageRule::Kind::kDuplicate:
        if (!fault.duplicate && rng::bernoulli(gen_, r.probability)) {
          fault.duplicate = true;
          fault.dup_extra = rng::exponential(gen_, mean_hop_latency);
          QUORA_METRIC_ADD(obs_duplicates_, 1);
        }
        break;
    }
  }
  if (fault.drop) QUORA_METRIC_ADD(obs_drops_, 1);
  return fault;
}

void FaultInjector::arm_crash_on_commit(net::SiteId filter, double down_for) {
  armed_.push_back(Armed{filter, down_for});
}

std::optional<double> FaultInjector::take_crash_on_commit(
    net::SiteId coordinator) {
  for (std::size_t i = 0; i < armed_.size(); ++i) {
    if (armed_[i].filter == kAnySite || armed_[i].filter == coordinator) {
      const double down_for = armed_[i].down_for;
      armed_.erase(armed_.begin() + static_cast<std::ptrdiff_t>(i));
      return down_for;
    }
  }
  return std::nullopt;
}

} // namespace quora::fault
