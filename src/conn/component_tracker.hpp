#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "conn/bitwords.hpp"
#include "conn/live_network.hpp"
#include "core/analysis_annotations.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace quora::conn {

/// Label given to sites that are currently down. Down sites belong to no
/// component; the paper regards them "as a member of a component of size
/// zero" for availability accounting.
inline constexpr std::int32_t kNoComponent = -1;

/// Partition structure of a `LiveNetwork`: connected components over up
/// sites and operational links, with per-component vote and size totals.
///
/// Maintenance is lazy and incremental. A query that observes the network
/// version moved replays the `LiveNetwork` delta journal:
///
///  - site/link **recovery** deltas only ever merge components, so they
///    are absorbed in place by a union-find over the component labels —
///    no graph traversal, no allocation;
///  - the first **failure** (or bulk) delta aborts the replay and triggers
///    one full rebuild into scratch buffers reused across rebuilds.
///
/// Under the paper's symmetric fail/repair model half of all network
/// events are recoveries, so this halves the rebuild count of the
/// version-dirty scheme it replaces, and steady-state refreshes perform
/// zero heap allocations.
///
/// The rebuild itself comes in two flavors, selected by the network:
///
///  - **dense** (site count within `LiveNetwork::kDenseAdjacencyMaxSites`):
///    a word-parallel frontier scan over the network's masked adjacency
///    rows. Each frontier site contributes one `next |= row & unassigned`
///    pass over packed 64-bit words — 64 neighbor-liveness tests per AND —
///    and component sizes are tallied by popcount over the harvested
///    words (votes collapse to popcount * v under a uniform assignment).
///    The word kernels are runtime-dispatched (AVX2 when available,
///    overridable via QUORA_SIMD=scalar) and bit-identical across
///    variants, so labels never depend on the dispatch decision.
///  - **sparse** (larger topologies): the original O(V+E) BFS over the
///    topology's CSR adjacency.
///
/// Both flavors produce identical labelings: components numbered by
/// lowest member site in ascending order, member lists ascending by site
/// id — the same canonical form `compact()` emits after incremental
/// merges, so member order no longer depends on which path produced the
/// partition.
///
/// Labels are compacted (dense, 0..component_count-1, numbered by lowest
/// member site) on demand: the cheap scalar queries (`component_votes`,
/// `component_size`, `connected`, `max_component_votes`,
/// `component_count`) never force a compaction, while the structural ones
/// (`component_of`, `members`, `votes_by_label`) do, so a label returned
/// by `component_of` always indexes `members`/`votes_by_label`
/// consistently. Spans returned by `members`/`votes_by_label`/
/// `member_words` are invalidated by the next refresh, as before.
class ComponentTracker {
public:
  explicit ComponentTracker(const LiveNetwork& live);

  // The queries below sit on the simulator's per-access hot path, so they
  // carry QUORA_HOT_PATH: L006 proves the whole lazy-refresh machinery
  // they pull in stays off the allocator in steady state (the ctor
  // pre-reserves every buffer; the refresh functions are QUORA_ALLOC_OK).

  /// Component label of `s`, or `kNoComponent` if the site is down.
  QUORA_HOT_PATH std::int32_t component_of(net::SiteId s) const;

  /// Total votes held by sites in s's component; 0 if s is down.
  QUORA_HOT_PATH net::Vote component_votes(net::SiteId s) const;

  /// Number of sites in s's component; 0 if s is down.
  QUORA_HOT_PATH std::uint32_t component_size(net::SiteId s) const;

  /// Number of components among up sites.
  QUORA_HOT_PATH std::uint32_t component_count() const;

  /// Votes held by the component with the most votes (0 if all sites are
  /// down). This is the quantity the SURV metric optimizes over
  /// (paper footnote 3).
  QUORA_HOT_PATH net::Vote max_component_votes() const;

  /// Sites of the component labeled `label` (see class docs for order).
  QUORA_HOT_PATH std::span<const net::SiteId> members(std::int32_t label) const;

  /// The same membership as packed site-indexed bitset words (bit s set
  /// iff site s belongs to `label`) — consumers holding their own
  /// site-bitsets can AND/popcount against this instead of looping the
  /// member list. Built into a scratch buffer on demand; invalidated by
  /// the next refresh or the next member_words call.
  QUORA_HOT_PATH QUORA_ALLOC_OK std::span<const bits::Word> member_words(
      std::int32_t label) const;

  /// True if both sites are up and currently connected.
  QUORA_HOT_PATH bool connected(net::SiteId a, net::SiteId b) const;

  /// Votes of every component, indexed by label.
  QUORA_HOT_PATH std::span<const net::Vote> votes_by_label() const;

  /// Work counters, for the perf harness (tools/quora_bench) and tests:
  /// how often the labeling was recomputed from scratch versus absorbed
  /// incrementally.
  struct Stats {
    std::uint64_t full_rebuilds = 0;        // O(V+E) BFS sweeps
    std::uint64_t incremental_applies = 0;  // delta batches merged in-place
    std::uint64_t compactions = 0;          // label renumber + member rebuild
  };
  const Stats& stats() const noexcept { return stats_; }

  /// Observability (optional, pure recording — queries and labels are
  /// unaffected). The recorder's clock should be the owning simulation's;
  /// rebuilds emit kTrackerRebuild with the network version and the number
  /// of sites relabeled. Metrics mirror the Stats counters under
  /// `tracker.*`. Pass nullptr to detach.
  void set_trace(obs::TraceRecorder* trace) noexcept { trace_ = trace; }
  void set_metrics(obs::Registry* registry);

  /// Re-point the tracker at a different (identically shaped) network.
  /// Needed after the owning simulation is copied by value — e.g. for
  /// model-checker snapshots — where the copied tracker must observe the
  /// copy's network, not the source's. All cached labels carry over; the
  /// next query revalidates against the new network's version counter.
  void rebind(const LiveNetwork& live) noexcept { live_ = &live; }

private:
  /// Hot-path refresh gate: no-op unless the network version moved.
  void sync() const {
    if (cached_version_ != live_->version()) sync_slow();
  }
  // QUORA_ALLOC_OK: these refresh paths append only into capacity the
  // constructor reserved up front, so their direct "growth" calls never
  // reach the allocator in steady state — the claim `quora_bench
  // --alloc-check` verifies at runtime.
  void sync_slow() const;
  QUORA_ALLOC_OK void rebuild() const;
  QUORA_ALLOC_OK void rebuild_dense() const;
  QUORA_ALLOC_OK void rebuild_sparse() const;
  QUORA_ALLOC_OK void build_member_csr() const;
  QUORA_ALLOC_OK void compact() const;
  QUORA_ALLOC_OK void apply_site_up(net::SiteId s) const;
  void apply_link_up(net::LinkId l) const;
  std::int32_t find(std::int32_t label) const;
  void unite(std::int32_t a, std::int32_t b) const;

  const LiveNetwork* live_;
  // Everything below is cache, maintained by sync()/rebuild()/compact().
  mutable std::uint64_t cached_version_;
  mutable bool compact_ = false;  // labels dense + member CSR valid
  mutable std::vector<std::int32_t> label_;
  mutable std::vector<std::int32_t> parent_;     // union-find over labels
  mutable std::vector<net::Vote> comp_votes_;    // valid at union-find roots
  mutable std::vector<std::uint32_t> comp_size_; // valid at union-find roots
  mutable std::uint32_t root_count_ = 0;
  mutable net::Vote max_votes_ = 0;
  mutable std::vector<net::SiteId> member_storage_;  // grouped by component
  mutable std::vector<std::size_t> member_offsets_;  // CSR over member_storage_
  mutable std::vector<net::SiteId> bfs_stack_;
  mutable std::vector<bits::Word> unassigned_words_;   // dense-rebuild scratch
  mutable std::vector<bits::Word> frontier_words_;     // dense-rebuild scratch
  mutable std::vector<bits::Word> member_words_scratch_;
  mutable std::vector<std::int32_t> remap_;          // compaction scratch
  mutable std::vector<net::Vote> votes_scratch_;
  mutable std::vector<std::uint32_t> size_scratch_;
  mutable std::vector<std::size_t> cursor_scratch_;
  mutable Stats stats_;
  obs::TraceRecorder* trace_ = nullptr;
  obs::Counter obs_full_rebuilds_;
  obs::Counter obs_incremental_applies_;
  obs::Counter obs_compactions_;
};

} // namespace quora::conn
