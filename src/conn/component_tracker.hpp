#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "conn/live_network.hpp"

namespace quora::conn {

/// Label given to sites that are currently down. Down sites belong to no
/// component; the paper regards them "as a member of a component of size
/// zero" for availability accounting.
inline constexpr std::int32_t kNoComponent = -1;

/// Partition structure of a `LiveNetwork`: connected components over up
/// sites and operational links, with per-component vote and size totals.
///
/// Recomputation is lazy: the full labeling is rebuilt (one O(V+E) BFS
/// sweep) only when a query observes that the network version moved. The
/// simulator's access events are roughly as frequent as failure events in
/// the paper's parameterization (rho = 1/128 with ~100 sites), so on
/// average each rebuild serves a handful of queries and no rebuild is ever
/// wasted on an unqueried state.
class ComponentTracker {
public:
  explicit ComponentTracker(const LiveNetwork& live);

  /// Component label of `s`, or `kNoComponent` if the site is down.
  std::int32_t component_of(net::SiteId s) const;

  /// Total votes held by sites in s's component; 0 if s is down.
  net::Vote component_votes(net::SiteId s) const;

  /// Number of sites in s's component; 0 if s is down.
  std::uint32_t component_size(net::SiteId s) const;

  /// Number of components among up sites.
  std::uint32_t component_count() const;

  /// Votes held by the component with the most votes (0 if all sites are
  /// down). This is the quantity the SURV metric optimizes over
  /// (paper footnote 3).
  net::Vote max_component_votes() const;

  /// Sites of the component labeled `label`, in discovery order.
  std::span<const net::SiteId> members(std::int32_t label) const;

  /// True if both sites are up and currently connected.
  bool connected(net::SiteId a, net::SiteId b) const;

  /// Votes of every component, indexed by label.
  std::span<const net::Vote> votes_by_label() const;

private:
  void refresh() const;

  const LiveNetwork* live_;
  // Cache, rebuilt when live_->version() != cached_version_.
  mutable std::uint64_t cached_version_;
  mutable std::vector<std::int32_t> label_;
  mutable std::vector<net::Vote> comp_votes_;
  mutable std::vector<std::uint32_t> comp_size_;
  mutable std::vector<net::SiteId> member_storage_;  // grouped by component
  mutable std::vector<std::size_t> member_offsets_;  // CSR over member_storage_
  mutable std::vector<net::SiteId> bfs_stack_;
};

} // namespace quora::conn
