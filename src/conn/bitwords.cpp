#include "conn/bitwords.hpp"

#include <bit>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace quora::conn::bits {

namespace detail {

void or_and_scalar(Word* dst, const Word* a, const Word* b,
                   std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) dst[i] |= a[i] & b[i];
}

std::uint64_t popcount_and_scalar(const Word* a, const Word* b,
                                  std::size_t n) noexcept {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i)
    total += static_cast<std::uint64_t>(std::popcount(a[i] & b[i]));
  return total;
}

#if defined(__x86_64__) || defined(__i386__)

__attribute__((target("avx2,popcnt"))) void or_and_avx2(Word* dst, const Word* a,
                                                 const Word* b,
                                                 std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    __m256i vd = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    vd = _mm256_or_si256(vd, _mm256_and_si256(va, vb));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), vd);
  }
  for (; i < n; ++i) dst[i] |= a[i] & b[i];
}

__attribute__((target("avx2,popcnt"))) std::uint64_t popcount_and_avx2(
    const Word* a, const Word* b, std::size_t n) noexcept {
  // AND four words at a time, then popcount each lane with the scalar
  // instruction — hardware POPCNT keeps both variants exact, and the
  // per-lane sums are associative over uint64, so the total is identical
  // to the scalar loop's.
  std::uint64_t total = 0;
  std::size_t i = 0;
  alignas(32) Word masked[4];
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_store_si256(reinterpret_cast<__m256i*>(masked),
                       _mm256_and_si256(va, vb));
    total += static_cast<std::uint64_t>(std::popcount(masked[0])) +
             static_cast<std::uint64_t>(std::popcount(masked[1])) +
             static_cast<std::uint64_t>(std::popcount(masked[2])) +
             static_cast<std::uint64_t>(std::popcount(masked[3]));
  }
  for (; i < n; ++i)
    total += static_cast<std::uint64_t>(std::popcount(a[i] & b[i]));
  return total;
}

#endif  // x86

bool avx2_selected() noexcept {
  // Resolved once; the env override is read before any kernel runs so the
  // selection cannot change mid-simulation. Immutable after init (L008:
  // this is configuration, not mutable shared state).
  static const bool selected = [] {
#if defined(__x86_64__) || defined(__i386__)
    const char* mode = std::getenv("QUORA_SIMD");
    if (mode != nullptr && std::strcmp(mode, "scalar") == 0) return false;
    return __builtin_cpu_supports("avx2") != 0;
#else
    return false;
#endif
  }();
  return selected;
}

}  // namespace detail

void or_and(Word* dst, const Word* a, const Word* b, std::size_t n) noexcept {
#if defined(__x86_64__) || defined(__i386__)
  if (detail::avx2_selected()) {
    detail::or_and_avx2(dst, a, b, n);
    return;
  }
#endif
  detail::or_and_scalar(dst, a, b, n);
}

std::uint64_t popcount_and(const Word* a, const Word* b,
                           std::size_t n) noexcept {
#if defined(__x86_64__) || defined(__i386__)
  if (detail::avx2_selected()) return detail::popcount_and_avx2(a, b, n);
#endif
  return detail::popcount_and_scalar(a, b, n);
}

const char* active_kernel() noexcept {
  return detail::avx2_selected() ? "avx2" : "scalar";
}

}  // namespace quora::conn::bits
