#pragma once

#include <cstddef>
#include <cstdint>

#include "core/analysis_annotations.hpp"

namespace quora::conn::bits {

/// Packed-bitset word primitives for the liveness/connectivity data path.
///
/// All state that used to live in one-byte-per-element flag arrays is also
/// maintained as packed 64-bit words (bit i of word i/64 = element i), so a
/// single AND batches 64 neighbor-liveness tests and a popcount tallies 64
/// memberships. The kernels below are the only place SIMD enters the
/// codebase; everything they compute is pure bitwise arithmetic, so the
/// AVX2 and scalar variants are bit-identical by construction — runtime
/// dispatch can never change a label, a vote total, or a golden transcript.
///
/// Dispatch: resolved once, on first use. The AVX2 path is taken when the
/// CPU reports AVX2 and the environment does not override it; setting
/// QUORA_SIMD=scalar forces the scalar path (the determinism suite runs
/// under both). QUORA_SIMD=avx2 on a CPU without AVX2 silently falls back
/// to scalar rather than faulting.

using Word = std::uint64_t;
inline constexpr std::uint32_t kWordBits = 64;

/// Number of 64-bit words needed to hold `n` bits.
constexpr std::size_t word_count(std::size_t n) noexcept {
  return (n + kWordBits - 1) / kWordBits;
}

/// dst[i] |= a[i] & b[i] for i in [0, n). This is the word-parallel BFS
/// frontier step: `a` is an adjacency-row bitset, `b` the not-yet-assigned
/// liveness words, `dst` the next frontier.
QUORA_HOT_PATH void or_and(Word* dst, const Word* a, const Word* b,
                           std::size_t n) noexcept;

/// Sum of popcount(a[i] & b[i]) for i in [0, n) — membership/vote tallies
/// over masked liveness words.
QUORA_HOT_PATH std::uint64_t popcount_and(const Word* a, const Word* b,
                                          std::size_t n) noexcept;

/// Name of the kernel the dispatcher selected: "avx2" or "scalar".
const char* active_kernel() noexcept;

namespace detail {
// Both variants exposed so tests can prove bit-identical outputs directly,
// independent of what the dispatcher picked on this machine.
void or_and_scalar(Word* dst, const Word* a, const Word* b,
                   std::size_t n) noexcept;
std::uint64_t popcount_and_scalar(const Word* a, const Word* b,
                                  std::size_t n) noexcept;
#if defined(__x86_64__) || defined(__i386__)
void or_and_avx2(Word* dst, const Word* a, const Word* b,
                 std::size_t n) noexcept;
std::uint64_t popcount_and_avx2(const Word* a, const Word* b,
                                std::size_t n) noexcept;
#endif
/// True when the dispatcher would select the AVX2 variants (CPU support
/// present and not overridden by QUORA_SIMD=scalar).
bool avx2_selected() noexcept;
}  // namespace detail

}  // namespace quora::conn::bits
