#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "conn/bitwords.hpp"
#include "net/topology.hpp"

namespace quora::conn {

/// The dynamic view of a `net::Topology`: which sites and links are
/// currently operational.
///
/// Failure semantics follow the paper's model (§5.1): links fail by failing
/// to transmit (no partial or byzantine failures), processors are
/// fail-stop, and all failures are eventually repaired. Every mutation that
/// actually changes state bumps `version()`, which downstream caches
/// (`ComponentTracker`) key on.
///
/// Up/down state is stored structure-of-arrays as packed 64-bit bitset
/// words (`site_up_words`/`link_up_words`) so consumers can test 64
/// elements per AND and tally memberships by popcount. The original
/// one-byte-per-element flag arrays are maintained in lockstep and remain
/// available through `site_up_flags`/`link_up_flags` — a migration shim
/// for consumers that still index per element.
///
/// For topologies up to `kDenseAdjacencyMaxSites` sites the network also
/// maintains *masked adjacency rows*: row `a` is a site-indexed bitset
/// whose bit `b` is set iff link {a, b} exists AND that link is up (site
/// liveness is deliberately not baked in; consumers AND rows against
/// `site_up_words` themselves). A link flip updates exactly two bits, and
/// the component tracker's rebuild becomes a word-parallel frontier scan
/// over these rows. Larger topologies skip the rows (quadratic bits) and
/// fall back to the CSR adjacency walk.
///
/// Alongside the version counter, a ring journal records *what* each
/// version bump changed. Consumers that fell at most `journal_capacity()`
/// versions behind can replay the deltas instead of re-deriving state from
/// scratch — this is what lets the component tracker absorb recovery
/// events incrementally and rebuild only on failures.
class LiveNetwork {
public:
  /// One effective state change. `kBulk` marks a compound mutation
  /// (`reset_all_up`) that is deliberately not itemized; replayers must
  /// fall back to a full re-derivation when they meet one.
  enum class DeltaKind : std::uint8_t {
    kSiteUp,
    kSiteDown,
    kLinkUp,
    kLinkDown,
    kBulk,
  };
  struct Delta {
    DeltaKind kind = DeltaKind::kBulk;
    std::uint32_t index = 0;  // site or link id; unused for kBulk
  };
  /// Default ring capacity of the delta journal. Must comfortably exceed
  /// the number of network events a consumer can fall behind by between
  /// queries; the simulator queries at access frequency, which the paper's
  /// rho = 1/128 keeps within a handful of events. Large chaos sweeps that
  /// batch more mutations between queries can raise the capacity at
  /// construction instead of eating a full rebuild per batch.
  static constexpr std::uint64_t kJournalCapacity = 256;

  /// Site-count ceiling for the dense masked adjacency rows. At this size
  /// the rows cost 2 * 4096^2 bits = 4 MiB; beyond it the quadratic layout
  /// loses to the CSR walk in both memory and rebuild time.
  static constexpr std::uint32_t kDenseAdjacencyMaxSites = 4096;

  /// `journal_capacity` must be a power of two >= 2 (ring-mask indexing);
  /// throws std::invalid_argument otherwise.
  explicit LiveNetwork(const net::Topology& topo,
                       std::uint64_t journal_capacity = kJournalCapacity);

  const net::Topology& topology() const noexcept { return *topo_; }

  bool is_site_up(net::SiteId s) const { return site_up_.at(s) != 0; }
  bool is_link_up(net::LinkId l) const { return link_up_.at(l) != 0; }

  /// Raw up/down flags (1 = up), for consumers that walk the whole
  /// topology and cannot afford per-element bounds checks.
  std::span<const std::uint8_t> site_up_flags() const noexcept { return site_up_; }
  std::span<const std::uint8_t> link_up_flags() const noexcept { return link_up_; }

  /// Packed liveness bitsets (bit i of word i/64 = element i up). Bits at
  /// and above site_count()/link_count() are always zero.
  std::span<const bits::Word> site_up_words() const noexcept {
    return site_words_;
  }
  std::span<const bits::Word> link_up_words() const noexcept {
    return link_words_;
  }

  /// True when the dense masked adjacency rows are maintained (site count
  /// within kDenseAdjacencyMaxSites).
  bool has_dense_adjacency() const noexcept { return row_words_ != 0; }

  /// Words per adjacency row (= word_count(site_count())); 0 when dense
  /// rows are disabled.
  std::size_t adjacency_row_words() const noexcept { return row_words_; }

  /// Masked adjacency row of site `a`: bit b set iff link {a, b} exists
  /// and is up. Only valid when has_dense_adjacency().
  const bits::Word* adjacency_row(net::SiteId a) const noexcept {
    return adj_rows_.data() + static_cast<std::size_t>(a) * row_words_;
  }

  /// A link transmits only when it and both endpoints are up.
  bool link_operational(net::LinkId l) const {
    const net::Link& e = topo_->link(l);
    return is_link_up(l) && is_site_up(e.a) && is_site_up(e.b);
  }

  /// Returns true if the call changed state.
  bool set_site_up(net::SiteId s, bool up);
  bool set_link_up(net::LinkId l, bool up);

  /// Restore every component to operational (the paper resets to the
  /// initial state before each batch). Journaled as one `kBulk` delta.
  void reset_all_up();

  std::uint32_t up_site_count() const noexcept { return up_sites_; }
  std::uint32_t up_link_count() const noexcept { return up_links_; }

  /// Monotone counter, bumped by every effective state change.
  std::uint64_t version() const noexcept { return version_; }

  /// Ring capacity of the delta journal (fixed at construction).
  std::uint64_t journal_capacity() const noexcept { return journal_mask_ + 1; }

  /// The delta that moved `version - 1` to `version`. Only meaningful for
  /// versions in (version() - journal_capacity(), version()]; older slots
  /// have been overwritten.
  Delta delta(std::uint64_t version) const noexcept {
    return journal_[version & journal_mask_];
  }

private:
  void journal(DeltaKind kind, std::uint32_t index) noexcept {
    ++version_;
    journal_[version_ & journal_mask_] = Delta{kind, index};
  }
  void set_word_bit(std::vector<bits::Word>& words, std::uint32_t i,
                    bool on) noexcept {
    const bits::Word mask = bits::Word{1} << (i % bits::kWordBits);
    if (on)
      words[i / bits::kWordBits] |= mask;
    else
      words[i / bits::kWordBits] &= ~mask;
  }

  const net::Topology* topo_;
  std::vector<std::uint8_t> site_up_;  // byte shim, kept in lockstep
  std::vector<std::uint8_t> link_up_;
  std::vector<bits::Word> site_words_;
  std::vector<bits::Word> link_words_;
  std::size_t row_words_ = 0;          // 0 = dense rows disabled
  std::vector<bits::Word> adj_rows_;   // masked by link liveness
  std::vector<bits::Word> topo_rows_;  // static topology rows, for resets
  std::uint32_t up_sites_ = 0;
  std::uint32_t up_links_ = 0;
  std::uint64_t version_ = 0;
  std::uint64_t journal_mask_;
  std::vector<Delta> journal_;
};

} // namespace quora::conn
