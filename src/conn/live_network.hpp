#pragma once

#include <cstdint>
#include <vector>

#include "net/topology.hpp"

namespace quora::conn {

/// The dynamic view of a `net::Topology`: which sites and links are
/// currently operational.
///
/// Failure semantics follow the paper's model (§5.1): links fail by failing
/// to transmit (no partial or byzantine failures), processors are
/// fail-stop, and all failures are eventually repaired. Every mutation that
/// actually changes state bumps `version()`, which downstream caches
/// (`ComponentTracker`) key on.
class LiveNetwork {
public:
  explicit LiveNetwork(const net::Topology& topo);

  const net::Topology& topology() const noexcept { return *topo_; }

  bool is_site_up(net::SiteId s) const { return site_up_.at(s) != 0; }
  bool is_link_up(net::LinkId l) const { return link_up_.at(l) != 0; }

  /// A link transmits only when it and both endpoints are up.
  bool link_operational(net::LinkId l) const {
    const net::Link& e = topo_->link(l);
    return is_link_up(l) && is_site_up(e.a) && is_site_up(e.b);
  }

  /// Returns true if the call changed state.
  bool set_site_up(net::SiteId s, bool up);
  bool set_link_up(net::LinkId l, bool up);

  /// Restore every component to operational (the paper resets to the
  /// initial state before each batch).
  void reset_all_up();

  std::uint32_t up_site_count() const noexcept { return up_sites_; }
  std::uint32_t up_link_count() const noexcept { return up_links_; }

  /// Monotone counter, bumped by every effective state change.
  std::uint64_t version() const noexcept { return version_; }

private:
  const net::Topology* topo_;
  std::vector<std::uint8_t> site_up_;
  std::vector<std::uint8_t> link_up_;
  std::uint32_t up_sites_ = 0;
  std::uint32_t up_links_ = 0;
  std::uint64_t version_ = 0;
};

} // namespace quora::conn
