#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "net/topology.hpp"

namespace quora::conn {

/// The dynamic view of a `net::Topology`: which sites and links are
/// currently operational.
///
/// Failure semantics follow the paper's model (§5.1): links fail by failing
/// to transmit (no partial or byzantine failures), processors are
/// fail-stop, and all failures are eventually repaired. Every mutation that
/// actually changes state bumps `version()`, which downstream caches
/// (`ComponentTracker`) key on.
///
/// Alongside the version counter, a small ring journal records *what* each
/// version bump changed. Consumers that fell at most `kJournalCapacity`
/// versions behind can replay the deltas instead of re-deriving state from
/// scratch — this is what lets the component tracker absorb recovery
/// events incrementally and rebuild only on failures.
class LiveNetwork {
public:
  /// One effective state change. `kBulk` marks a compound mutation
  /// (`reset_all_up`) that is deliberately not itemized; replayers must
  /// fall back to a full re-derivation when they meet one.
  enum class DeltaKind : std::uint8_t {
    kSiteUp,
    kSiteDown,
    kLinkUp,
    kLinkDown,
    kBulk,
  };
  struct Delta {
    DeltaKind kind = DeltaKind::kBulk;
    std::uint32_t index = 0;  // site or link id; unused for kBulk
  };
  /// Ring capacity of the delta journal (power of two). Must comfortably
  /// exceed the number of network events a consumer can fall behind by
  /// between queries; the simulator queries at access frequency, which the
  /// paper's rho = 1/128 keeps within a handful of events.
  static constexpr std::uint64_t kJournalCapacity = 256;

  explicit LiveNetwork(const net::Topology& topo);

  const net::Topology& topology() const noexcept { return *topo_; }

  bool is_site_up(net::SiteId s) const { return site_up_.at(s) != 0; }
  bool is_link_up(net::LinkId l) const { return link_up_.at(l) != 0; }

  /// Raw up/down flags (1 = up), for consumers that walk the whole
  /// topology and cannot afford per-element bounds checks.
  std::span<const std::uint8_t> site_up_flags() const noexcept { return site_up_; }
  std::span<const std::uint8_t> link_up_flags() const noexcept { return link_up_; }

  /// A link transmits only when it and both endpoints are up.
  bool link_operational(net::LinkId l) const {
    const net::Link& e = topo_->link(l);
    return is_link_up(l) && is_site_up(e.a) && is_site_up(e.b);
  }

  /// Returns true if the call changed state.
  bool set_site_up(net::SiteId s, bool up);
  bool set_link_up(net::LinkId l, bool up);

  /// Restore every component to operational (the paper resets to the
  /// initial state before each batch). Journaled as one `kBulk` delta.
  void reset_all_up();

  std::uint32_t up_site_count() const noexcept { return up_sites_; }
  std::uint32_t up_link_count() const noexcept { return up_links_; }

  /// Monotone counter, bumped by every effective state change.
  std::uint64_t version() const noexcept { return version_; }

  /// The delta that moved `version - 1` to `version`. Only meaningful for
  /// versions in (version() - kJournalCapacity, version()]; older slots
  /// have been overwritten.
  Delta delta(std::uint64_t version) const noexcept {
    return journal_[version & (kJournalCapacity - 1)];
  }

private:
  void journal(DeltaKind kind, std::uint32_t index) noexcept {
    ++version_;
    journal_[version_ & (kJournalCapacity - 1)] = Delta{kind, index};
  }

  const net::Topology* topo_;
  std::vector<std::uint8_t> site_up_;
  std::vector<std::uint8_t> link_up_;
  std::uint32_t up_sites_ = 0;
  std::uint32_t up_links_ = 0;
  std::uint64_t version_ = 0;
  std::array<Delta, kJournalCapacity> journal_{};
};

} // namespace quora::conn
