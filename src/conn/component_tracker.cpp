#include "conn/component_tracker.hpp"

#include <algorithm>
#include <bit>

#include "core/contracts.hpp"

namespace quora::conn {

ComponentTracker::ComponentTracker(const LiveNetwork& live) : live_(&live) {
  const auto n = live.topology().site_count();
  // Reserve once so steady-state refreshes never touch the allocator.
  // Incremental site recoveries append fresh labels, at most one per
  // journal slot between rebuilds, hence the extra headroom (sized by the
  // network's configured journal, not the default).
  const std::size_t max_labels = n + live.journal_capacity();
  label_.reserve(n);
  parent_.reserve(max_labels);
  comp_votes_.reserve(max_labels);
  comp_size_.reserve(max_labels);
  member_storage_.reserve(n);
  member_offsets_.reserve(n + 1);
  bfs_stack_.reserve(n);
  unassigned_words_.reserve(bits::word_count(n));
  frontier_words_.reserve(bits::word_count(n));
  member_words_scratch_.reserve(bits::word_count(n));
  remap_.reserve(max_labels);
  votes_scratch_.reserve(n);
  size_scratch_.reserve(n);
  cursor_scratch_.reserve(n + 1);
  rebuild();
}

std::int32_t ComponentTracker::find(std::int32_t label) const {
  std::int32_t root = label;
  while (parent_[static_cast<std::size_t>(root)] != root)
    root = parent_[static_cast<std::size_t>(root)];
  while (parent_[static_cast<std::size_t>(label)] != root) {
    const std::int32_t next = parent_[static_cast<std::size_t>(label)];
    parent_[static_cast<std::size_t>(label)] = root;
    label = next;
  }
  return root;
}

void ComponentTracker::unite(std::int32_t a, std::int32_t b) const {
  std::int32_t ra = find(a);
  std::int32_t rb = find(b);
  if (ra == rb) return;
  if (comp_size_[static_cast<std::size_t>(ra)] <
      comp_size_[static_cast<std::size_t>(rb)])
    std::swap(ra, rb);
  parent_[static_cast<std::size_t>(rb)] = ra;
  comp_votes_[static_cast<std::size_t>(ra)] +=
      comp_votes_[static_cast<std::size_t>(rb)];
  comp_size_[static_cast<std::size_t>(ra)] +=
      comp_size_[static_cast<std::size_t>(rb)];
  max_votes_ = std::max(max_votes_, comp_votes_[static_cast<std::size_t>(ra)]);
  --root_count_;
}

void ComponentTracker::apply_site_up(net::SiteId s) const {
  const net::Topology& topo = live_->topology();
  const auto lbl = static_cast<std::int32_t>(parent_.size());
  parent_.push_back(lbl);
  comp_votes_.push_back(topo.votes(s));
  comp_size_.push_back(1);
  label_[s] = lbl;
  ++root_count_;
  max_votes_ = std::max(max_votes_, comp_votes_.back());
  // Neighbor-up is judged by *our* labeling, not the live flags: a
  // neighbor that recovers later in the replay window still carries
  // kNoComponent here, and its own delta performs the union when we reach
  // it. Link state may be read from the live network because a link that
  // has gone down since this delta forces a full rebuild before the
  // replay commits, and early unions are erased by that rebuild.
  const std::uint8_t* link_up = live_->link_up_flags().data();
  for (const net::Topology::Edge& e : topo.neighbors(s)) {
    if (!link_up[e.link]) continue;
    if (label_[e.neighbor] == kNoComponent) continue;
    unite(lbl, label_[e.neighbor]);
  }
  compact_ = false;
}

void ComponentTracker::apply_link_up(net::LinkId l) const {
  const net::Link& e = live_->topology().link(l);
  const std::int32_t la = label_[e.a];
  const std::int32_t lb = label_[e.b];
  if (la == kNoComponent || lb == kNoComponent) return;
  unite(la, lb);
  compact_ = false;
}

void ComponentTracker::set_metrics(obs::Registry* registry) {
  if (registry == nullptr) {
    obs_full_rebuilds_ = obs::Counter{};
    obs_incremental_applies_ = obs::Counter{};
    obs_compactions_ = obs::Counter{};
    return;
  }
  obs_full_rebuilds_ = registry->counter("tracker.full_rebuilds");
  obs_incremental_applies_ = registry->counter("tracker.incremental_applies");
  obs_compactions_ = registry->counter("tracker.compactions");
}

void ComponentTracker::sync_slow() const {
  const std::uint64_t target = live_->version();
  if (target - cached_version_ > live_->journal_capacity()) {
    // Fell behind the ring journal; the missed deltas are gone.
    rebuild();
    return;
  }
  for (std::uint64_t v = cached_version_ + 1; v <= target; ++v) {
    const LiveNetwork::Delta d = live_->delta(v);
    switch (d.kind) {
      case LiveNetwork::DeltaKind::kSiteUp:
        apply_site_up(d.index);
        break;
      case LiveNetwork::DeltaKind::kLinkUp:
        apply_link_up(d.index);
        break;
      default:
        // Failures (and bulk resets) can split components; unions cannot
        // express that, so recompute the labeling outright.
        rebuild();
        return;
    }
  }
  cached_version_ = target;
  ++stats_.incremental_applies;
  QUORA_METRIC_ADD(obs_incremental_applies_, 1);
  QUORA_TRACE(trace_, obs::EventKind::kTrackerRebuild, 0, target, 0,
              /*full=*/0);
}

void ComponentTracker::rebuild_dense() const {
  // Word-parallel frontier scan over the network's masked adjacency rows.
  // `unassigned` starts as the up-site bitset; each frontier site ORs its
  // row (link-exists AND link-up) masked by `unassigned` into the next
  // frontier, so one AND tests 64 neighbors at once. Roots are taken in
  // ascending site order (lowest set bit of the lowest non-zero word), so
  // labels come out numbered by lowest member site — the same canonical
  // numbering compact() produces.
  const net::Topology& topo = live_->topology();
  const std::size_t words = live_->adjacency_row_words();
  const std::span<const bits::Word> site_up = live_->site_up_words();

  unassigned_words_.assign(site_up.begin(), site_up.end());
  frontier_words_.assign(words, 0);

  const bool uniform = topo.has_uniform_votes();
  const net::Vote uniform_vote = uniform ? topo.uniform_vote() : 0;

  for (std::size_t w = 0; w < words; ++w) {
    while (unassigned_words_[w] != 0) {
      const auto root = static_cast<net::SiteId>(
          w * bits::kWordBits +
          static_cast<std::uint32_t>(std::countr_zero(unassigned_words_[w])));
      const auto comp = static_cast<std::int32_t>(comp_votes_.size());
      net::Vote votes = uniform ? 0 : topo.votes(root);
      std::uint32_t size = 1;

      label_[root] = comp;
      unassigned_words_[w] &= unassigned_words_[w] - 1;
      bfs_stack_.clear();
      bfs_stack_.push_back(root);
      while (!bfs_stack_.empty()) {
        std::fill(frontier_words_.begin(), frontier_words_.end(),
                  bits::Word{0});
        for (const net::SiteId s : bfs_stack_)
          bits::or_and(frontier_words_.data(), live_->adjacency_row(s),
                       unassigned_words_.data(), words);
        bfs_stack_.clear();
        for (std::size_t i = 0; i < words; ++i) {
          bits::Word m = frontier_words_[i];
          if (m == 0) continue;
          unassigned_words_[i] &= ~m;
          size += static_cast<std::uint32_t>(std::popcount(m));
          while (m != 0) {
            const auto s = static_cast<net::SiteId>(
                i * bits::kWordBits +
                static_cast<std::uint32_t>(std::countr_zero(m)));
            m &= m - 1;
            label_[s] = comp;
            if (!uniform) votes += topo.votes(s);
            bfs_stack_.push_back(s);
          }
        }
      }
      if (uniform) votes = uniform_vote * size;
      comp_votes_.push_back(votes);
      comp_size_.push_back(size);
      max_votes_ = std::max(max_votes_, votes);
    }
  }
}

void ComponentTracker::rebuild_sparse() const {
  // O(V+E) BFS over the topology's CSR adjacency — the fallback for
  // topologies too large for quadratic adjacency rows. Liveness still
  // reads the byte shim: per-element probes gain nothing from packing.
  const net::Topology& topo = live_->topology();
  const std::uint32_t n = topo.site_count();
  const std::uint8_t* site_up = live_->site_up_flags().data();
  const std::uint8_t* link_up = live_->link_up_flags().data();

  for (net::SiteId root = 0; root < n; ++root) {
    if (!site_up[root] || label_[root] != kNoComponent) continue;
    const auto comp = static_cast<std::int32_t>(comp_votes_.size());
    net::Vote votes = 0;
    std::uint32_t size = 0;

    bfs_stack_.clear();
    bfs_stack_.push_back(root);
    label_[root] = comp;
    while (!bfs_stack_.empty()) {
      const net::SiteId s = bfs_stack_.back();
      bfs_stack_.pop_back();
      votes += topo.votes(s);
      ++size;
      for (const net::Topology::Edge& e : topo.neighbors(s)) {
        if (!link_up[e.link]) continue;
        if (!site_up[e.neighbor]) continue;
        if (label_[e.neighbor] != kNoComponent) continue;
        label_[e.neighbor] = comp;
        bfs_stack_.push_back(e.neighbor);
      }
    }
    comp_votes_.push_back(votes);
    comp_size_.push_back(size);
    max_votes_ = std::max(max_votes_, votes);
  }
}

void ComponentTracker::build_member_csr() const {
  // Member CSR via counting sort over the (dense) labels; members come
  // out ascending by site id for every component, regardless of which
  // rebuild flavor — or an earlier compaction — produced the labels.
  const std::uint32_t n = live_->topology().site_count();
  const std::size_t comp_count = comp_votes_.size();
  member_offsets_.assign(comp_count + 1, 0);
  for (net::SiteId s = 0; s < n; ++s) {
    const std::int32_t l = label_[s];
    if (l != kNoComponent) ++member_offsets_[static_cast<std::size_t>(l) + 1];
  }
  for (std::size_t i = 1; i <= comp_count; ++i)
    member_offsets_[i] += member_offsets_[i - 1];
  member_storage_.resize(member_offsets_[comp_count]);
  cursor_scratch_.assign(member_offsets_.begin(), member_offsets_.end() - 1);
  for (net::SiteId s = 0; s < n; ++s) {
    const std::int32_t l = label_[s];
    if (l == kNoComponent) continue;
    member_storage_[cursor_scratch_[static_cast<std::size_t>(l)]++] = s;
  }
}

void ComponentTracker::rebuild() const {
  ++stats_.full_rebuilds;

  const net::Topology& topo = live_->topology();

  label_.assign(topo.site_count(), kNoComponent);
  parent_.clear();
  comp_votes_.clear();
  comp_size_.clear();
  max_votes_ = 0;

  // Flavor by cost model, not just row availability: the dense pass reads
  // ~n^2/64 words (every live site ORs its full row once, plus a frontier
  // scan per BFS level), the CSR pass ~n + 2m edge probes. Dense wins on
  // dense graphs (complete-101: one row AND tests 64 neighbors) and loses
  // badly on deep narrow ones (ring-101: ~n/2 levels of whole-bitset
  // work for 2 real neighbors each), so require m >= n^2/64.
  const std::uint64_t n_sites = live_->topology().site_count();
  const bool dense_pays =
      64ull * live_->topology().link_count() >= n_sites * n_sites;
  if (live_->has_dense_adjacency() && dense_pays)
    rebuild_dense();
  else
    rebuild_sparse();

  for (std::size_t i = 0; i < comp_votes_.size(); ++i)
    parent_.push_back(static_cast<std::int32_t>(i));
  root_count_ = static_cast<std::uint32_t>(comp_votes_.size());
  build_member_csr();
  compact_ = true;
  // Vote and membership conservation under partitioning: components are
  // disjoint, cover exactly the up sites, and their vote totals never
  // exceed the system total T — the property every quorum decision and
  // the paper's availability accounting lean on.
  if constexpr (contracts::kActive) {
    std::uint64_t up_sites = 0;
    net::Vote partition_votes = 0;
    for (const std::uint32_t size : comp_size_) up_sites += size;
    for (const net::Vote v : comp_votes_) partition_votes += v;
    QUORA_INVARIANT(up_sites == live_->up_site_count(),
                    "components must partition exactly the up sites");
    QUORA_INVARIANT(member_storage_.size() == up_sites,
                    "member lists must cover each up site exactly once");
    QUORA_INVARIANT(partition_votes <= topo.total_votes(),
                    "partition components hold more votes than the system");
  }
  cached_version_ = live_->version();
  QUORA_METRIC_ADD(obs_full_rebuilds_, 1);
  QUORA_TRACE(trace_, obs::EventKind::kTrackerRebuild, 0, cached_version_,
              member_storage_.size(), /*full=*/1);
}

void ComponentTracker::compact() const {
  if (compact_) return;
  ++stats_.compactions;
  QUORA_METRIC_ADD(obs_compactions_, 1);

  const std::uint32_t n = live_->topology().site_count();
  remap_.assign(parent_.size(), kNoComponent);
  votes_scratch_.clear();
  size_scratch_.clear();

  // Dense labels, numbered by each component's lowest site id; a full
  // rebuild produces exactly this numbering, so labels do not depend on
  // which path (incremental or BFS) produced the partition.
  for (net::SiteId s = 0; s < n; ++s) {
    const std::int32_t l = label_[s];
    if (l == kNoComponent) continue;
    const auto r = static_cast<std::size_t>(find(l));
    if (remap_[r] == kNoComponent) {
      remap_[r] = static_cast<std::int32_t>(votes_scratch_.size());
      votes_scratch_.push_back(comp_votes_[r]);
      size_scratch_.push_back(comp_size_[r]);
    }
    label_[s] = remap_[r];
  }
  const std::size_t comp_count = votes_scratch_.size();
  comp_votes_.assign(votes_scratch_.begin(), votes_scratch_.end());
  comp_size_.assign(size_scratch_.begin(), size_scratch_.end());
  parent_.resize(comp_count);
  for (std::size_t i = 0; i < comp_count; ++i)
    parent_[i] = static_cast<std::int32_t>(i);

  build_member_csr();
  compact_ = true;

  if constexpr (contracts::kActive) {
    QUORA_INVARIANT(comp_count == root_count_,
                    "compaction must preserve the component count");
    QUORA_INVARIANT(member_storage_.size() == live_->up_site_count(),
                    "member lists must cover each up site exactly once");
  }
}

std::int32_t ComponentTracker::component_of(net::SiteId s) const {
  sync();
  compact();
  return label_.at(s);
}

net::Vote ComponentTracker::component_votes(net::SiteId s) const {
  sync();
  const std::int32_t c = label_.at(s);
  return c == kNoComponent ? 0 : comp_votes_[static_cast<std::size_t>(find(c))];
}

std::uint32_t ComponentTracker::component_size(net::SiteId s) const {
  sync();
  const std::int32_t c = label_.at(s);
  return c == kNoComponent ? 0 : comp_size_[static_cast<std::size_t>(find(c))];
}

std::uint32_t ComponentTracker::component_count() const {
  sync();
  return root_count_;
}

net::Vote ComponentTracker::max_component_votes() const {
  sync();
  return max_votes_;
}

std::span<const net::SiteId> ComponentTracker::members(std::int32_t label) const {
  sync();
  compact();
  const auto i = static_cast<std::size_t>(label);
  return {member_storage_.data() + member_offsets_.at(i),
          member_storage_.data() + member_offsets_.at(i + 1)};
}

std::span<const bits::Word> ComponentTracker::member_words(
    std::int32_t label) const {
  sync();
  compact();
  member_words_scratch_.assign(bits::word_count(live_->topology().site_count()),
                               bits::Word{0});
  for (const net::SiteId s : members(label))
    member_words_scratch_[s / bits::kWordBits] |= bits::Word{1}
                                                  << (s % bits::kWordBits);
  return member_words_scratch_;
}

bool ComponentTracker::connected(net::SiteId a, net::SiteId b) const {
  sync();
  const std::int32_t ca = label_.at(a);
  const std::int32_t cb = label_.at(b);
  return ca != kNoComponent && cb != kNoComponent && find(ca) == find(cb);
}

std::span<const net::Vote> ComponentTracker::votes_by_label() const {
  sync();
  compact();
  return comp_votes_;
}

} // namespace quora::conn
