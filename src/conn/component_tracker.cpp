#include "conn/component_tracker.hpp"

#include <algorithm>

#include "core/contracts.hpp"

namespace quora::conn {

ComponentTracker::ComponentTracker(const LiveNetwork& live)
    : live_(&live), cached_version_(live.version() - 1) {
  const auto n = live.topology().site_count();
  label_.assign(n, kNoComponent);
  bfs_stack_.reserve(n);
  refresh();
}

void ComponentTracker::refresh() const {
  if (cached_version_ == live_->version()) return;

  const net::Topology& topo = live_->topology();
  const std::uint32_t n = topo.site_count();

  label_.assign(n, kNoComponent);
  comp_votes_.clear();
  comp_size_.clear();
  member_storage_.clear();
  member_storage_.reserve(live_->up_site_count());
  member_offsets_.assign(1, 0);

  for (net::SiteId root = 0; root < n; ++root) {
    if (!live_->is_site_up(root) || label_[root] != kNoComponent) continue;
    const auto comp = static_cast<std::int32_t>(comp_votes_.size());
    net::Vote votes = 0;
    std::uint32_t size = 0;

    bfs_stack_.clear();
    bfs_stack_.push_back(root);
    label_[root] = comp;
    while (!bfs_stack_.empty()) {
      const net::SiteId s = bfs_stack_.back();
      bfs_stack_.pop_back();
      votes += topo.votes(s);
      ++size;
      member_storage_.push_back(s);
      for (const net::Topology::Edge& e : topo.neighbors(s)) {
        if (!live_->is_link_up(e.link)) continue;
        if (!live_->is_site_up(e.neighbor)) continue;
        if (label_[e.neighbor] != kNoComponent) continue;
        label_[e.neighbor] = comp;
        bfs_stack_.push_back(e.neighbor);
      }
    }
    comp_votes_.push_back(votes);
    comp_size_.push_back(size);
    member_offsets_.push_back(member_storage_.size());
  }
  // Vote and membership conservation under partitioning: components are
  // disjoint, cover exactly the up sites, and their vote totals never
  // exceed the system total T — the property every quorum decision and
  // the paper's availability accounting lean on.
  if constexpr (contracts::kActive) {
    std::uint64_t up_sites = 0;
    net::Vote partition_votes = 0;
    for (const std::uint32_t size : comp_size_) up_sites += size;
    for (const net::Vote v : comp_votes_) partition_votes += v;
    QUORA_INVARIANT(up_sites == live_->up_site_count(),
                    "components must partition exactly the up sites");
    QUORA_INVARIANT(member_storage_.size() == up_sites,
                    "member lists must cover each up site exactly once");
    QUORA_INVARIANT(partition_votes <= topo.total_votes(),
                    "partition components hold more votes than the system");
  }
  cached_version_ = live_->version();
}

std::int32_t ComponentTracker::component_of(net::SiteId s) const {
  refresh();
  return label_.at(s);
}

net::Vote ComponentTracker::component_votes(net::SiteId s) const {
  refresh();
  const std::int32_t c = label_.at(s);
  return c == kNoComponent ? 0 : comp_votes_[static_cast<std::size_t>(c)];
}

std::uint32_t ComponentTracker::component_size(net::SiteId s) const {
  refresh();
  const std::int32_t c = label_.at(s);
  return c == kNoComponent ? 0 : comp_size_[static_cast<std::size_t>(c)];
}

std::uint32_t ComponentTracker::component_count() const {
  refresh();
  return static_cast<std::uint32_t>(comp_votes_.size());
}

net::Vote ComponentTracker::max_component_votes() const {
  refresh();
  const auto it = std::max_element(comp_votes_.begin(), comp_votes_.end());
  return it == comp_votes_.end() ? 0 : *it;
}

std::span<const net::SiteId> ComponentTracker::members(std::int32_t label) const {
  refresh();
  const auto i = static_cast<std::size_t>(label);
  return {member_storage_.data() + member_offsets_.at(i),
          member_storage_.data() + member_offsets_.at(i + 1)};
}

bool ComponentTracker::connected(net::SiteId a, net::SiteId b) const {
  refresh();
  const std::int32_t ca = label_.at(a);
  return ca != kNoComponent && ca == label_.at(b);
}

std::span<const net::Vote> ComponentTracker::votes_by_label() const {
  refresh();
  return comp_votes_;
}

} // namespace quora::conn
