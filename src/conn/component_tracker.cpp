#include "conn/component_tracker.hpp"

#include <algorithm>

#include "core/contracts.hpp"

namespace quora::conn {

ComponentTracker::ComponentTracker(const LiveNetwork& live) : live_(&live) {
  const auto n = live.topology().site_count();
  // Reserve once so steady-state refreshes never touch the allocator.
  // Incremental site recoveries append fresh labels, at most one per
  // journal slot between rebuilds, hence the extra headroom.
  const std::size_t max_labels = n + LiveNetwork::kJournalCapacity;
  label_.reserve(n);
  parent_.reserve(max_labels);
  comp_votes_.reserve(max_labels);
  comp_size_.reserve(max_labels);
  member_storage_.reserve(n);
  member_offsets_.reserve(n + 1);
  bfs_stack_.reserve(n);
  remap_.reserve(max_labels);
  votes_scratch_.reserve(n);
  size_scratch_.reserve(n);
  cursor_scratch_.reserve(n);
  rebuild();
}

std::int32_t ComponentTracker::find(std::int32_t label) const {
  std::int32_t root = label;
  while (parent_[static_cast<std::size_t>(root)] != root)
    root = parent_[static_cast<std::size_t>(root)];
  while (parent_[static_cast<std::size_t>(label)] != root) {
    const std::int32_t next = parent_[static_cast<std::size_t>(label)];
    parent_[static_cast<std::size_t>(label)] = root;
    label = next;
  }
  return root;
}

void ComponentTracker::unite(std::int32_t a, std::int32_t b) const {
  std::int32_t ra = find(a);
  std::int32_t rb = find(b);
  if (ra == rb) return;
  if (comp_size_[static_cast<std::size_t>(ra)] <
      comp_size_[static_cast<std::size_t>(rb)])
    std::swap(ra, rb);
  parent_[static_cast<std::size_t>(rb)] = ra;
  comp_votes_[static_cast<std::size_t>(ra)] +=
      comp_votes_[static_cast<std::size_t>(rb)];
  comp_size_[static_cast<std::size_t>(ra)] +=
      comp_size_[static_cast<std::size_t>(rb)];
  max_votes_ = std::max(max_votes_, comp_votes_[static_cast<std::size_t>(ra)]);
  --root_count_;
}

void ComponentTracker::apply_site_up(net::SiteId s) const {
  const net::Topology& topo = live_->topology();
  const auto lbl = static_cast<std::int32_t>(parent_.size());
  parent_.push_back(lbl);
  comp_votes_.push_back(topo.votes(s));
  comp_size_.push_back(1);
  label_[s] = lbl;
  ++root_count_;
  max_votes_ = std::max(max_votes_, comp_votes_.back());
  // Neighbor-up is judged by *our* labeling, not the live flags: a
  // neighbor that recovers later in the replay window still carries
  // kNoComponent here, and its own delta performs the union when we reach
  // it. Link state may be read from the live network because a link that
  // has gone down since this delta forces a full rebuild before the
  // replay commits, and early unions are erased by that rebuild.
  const std::uint8_t* link_up = live_->link_up_flags().data();
  for (const net::Topology::Edge& e : topo.neighbors(s)) {
    if (!link_up[e.link]) continue;
    if (label_[e.neighbor] == kNoComponent) continue;
    unite(lbl, label_[e.neighbor]);
  }
  compact_ = false;
}

void ComponentTracker::apply_link_up(net::LinkId l) const {
  const net::Link& e = live_->topology().link(l);
  const std::int32_t la = label_[e.a];
  const std::int32_t lb = label_[e.b];
  if (la == kNoComponent || lb == kNoComponent) return;
  unite(la, lb);
  compact_ = false;
}

void ComponentTracker::set_metrics(obs::Registry* registry) {
  if (registry == nullptr) {
    obs_full_rebuilds_ = obs::Counter{};
    obs_incremental_applies_ = obs::Counter{};
    obs_compactions_ = obs::Counter{};
    return;
  }
  obs_full_rebuilds_ = registry->counter("tracker.full_rebuilds");
  obs_incremental_applies_ = registry->counter("tracker.incremental_applies");
  obs_compactions_ = registry->counter("tracker.compactions");
}

void ComponentTracker::sync_slow() const {
  const std::uint64_t target = live_->version();
  if (target - cached_version_ > LiveNetwork::kJournalCapacity) {
    // Fell behind the ring journal; the missed deltas are gone.
    rebuild();
    return;
  }
  for (std::uint64_t v = cached_version_ + 1; v <= target; ++v) {
    const LiveNetwork::Delta d = live_->delta(v);
    switch (d.kind) {
      case LiveNetwork::DeltaKind::kSiteUp:
        apply_site_up(d.index);
        break;
      case LiveNetwork::DeltaKind::kLinkUp:
        apply_link_up(d.index);
        break;
      default:
        // Failures (and bulk resets) can split components; unions cannot
        // express that, so recompute the labeling outright.
        rebuild();
        return;
    }
  }
  cached_version_ = target;
  ++stats_.incremental_applies;
  QUORA_METRIC_ADD(obs_incremental_applies_, 1);
  QUORA_TRACE(trace_, obs::EventKind::kTrackerRebuild, 0, target, 0,
              /*full=*/0);
}

void ComponentTracker::rebuild() const {
  ++stats_.full_rebuilds;

  const net::Topology& topo = live_->topology();
  const std::uint32_t n = topo.site_count();
  const std::uint8_t* site_up = live_->site_up_flags().data();
  const std::uint8_t* link_up = live_->link_up_flags().data();

  label_.assign(n, kNoComponent);
  parent_.clear();
  comp_votes_.clear();
  comp_size_.clear();
  member_storage_.clear();
  member_offsets_.assign(1, 0);
  max_votes_ = 0;

  for (net::SiteId root = 0; root < n; ++root) {
    if (!site_up[root] || label_[root] != kNoComponent) continue;
    const auto comp = static_cast<std::int32_t>(comp_votes_.size());
    net::Vote votes = 0;
    std::uint32_t size = 0;

    bfs_stack_.clear();
    bfs_stack_.push_back(root);
    label_[root] = comp;
    while (!bfs_stack_.empty()) {
      const net::SiteId s = bfs_stack_.back();
      bfs_stack_.pop_back();
      votes += topo.votes(s);
      ++size;
      member_storage_.push_back(s);
      for (const net::Topology::Edge& e : topo.neighbors(s)) {
        if (!link_up[e.link]) continue;
        if (!site_up[e.neighbor]) continue;
        if (label_[e.neighbor] != kNoComponent) continue;
        label_[e.neighbor] = comp;
        bfs_stack_.push_back(e.neighbor);
      }
    }
    parent_.push_back(comp);
    comp_votes_.push_back(votes);
    comp_size_.push_back(size);
    member_offsets_.push_back(member_storage_.size());
    max_votes_ = std::max(max_votes_, votes);
  }
  root_count_ = static_cast<std::uint32_t>(comp_votes_.size());
  compact_ = true;
  // Vote and membership conservation under partitioning: components are
  // disjoint, cover exactly the up sites, and their vote totals never
  // exceed the system total T — the property every quorum decision and
  // the paper's availability accounting lean on.
  if constexpr (contracts::kActive) {
    std::uint64_t up_sites = 0;
    net::Vote partition_votes = 0;
    for (const std::uint32_t size : comp_size_) up_sites += size;
    for (const net::Vote v : comp_votes_) partition_votes += v;
    QUORA_INVARIANT(up_sites == live_->up_site_count(),
                    "components must partition exactly the up sites");
    QUORA_INVARIANT(member_storage_.size() == up_sites,
                    "member lists must cover each up site exactly once");
    QUORA_INVARIANT(partition_votes <= topo.total_votes(),
                    "partition components hold more votes than the system");
  }
  cached_version_ = live_->version();
  QUORA_METRIC_ADD(obs_full_rebuilds_, 1);
  QUORA_TRACE(trace_, obs::EventKind::kTrackerRebuild, 0, cached_version_,
              member_storage_.size(), /*full=*/1);
}

void ComponentTracker::compact() const {
  if (compact_) return;
  ++stats_.compactions;
  QUORA_METRIC_ADD(obs_compactions_, 1);

  const std::uint32_t n = live_->topology().site_count();
  remap_.assign(parent_.size(), kNoComponent);
  votes_scratch_.clear();
  size_scratch_.clear();

  // Dense labels, numbered by each component's lowest site id; a full
  // rebuild produces exactly this numbering, so labels do not depend on
  // which path (incremental or BFS) produced the partition.
  for (net::SiteId s = 0; s < n; ++s) {
    const std::int32_t l = label_[s];
    if (l == kNoComponent) continue;
    const auto r = static_cast<std::size_t>(find(l));
    if (remap_[r] == kNoComponent) {
      remap_[r] = static_cast<std::int32_t>(votes_scratch_.size());
      votes_scratch_.push_back(comp_votes_[r]);
      size_scratch_.push_back(comp_size_[r]);
    }
    label_[s] = remap_[r];
  }
  const std::size_t comp_count = votes_scratch_.size();
  comp_votes_.assign(votes_scratch_.begin(), votes_scratch_.end());
  comp_size_.assign(size_scratch_.begin(), size_scratch_.end());
  parent_.resize(comp_count);
  for (std::size_t i = 0; i < comp_count; ++i)
    parent_[i] = static_cast<std::int32_t>(i);

  // Member CSR via counting sort; members come out in ascending site id.
  member_offsets_.assign(comp_count + 1, 0);
  for (net::SiteId s = 0; s < n; ++s) {
    const std::int32_t l = label_[s];
    if (l != kNoComponent) ++member_offsets_[static_cast<std::size_t>(l) + 1];
  }
  for (std::size_t i = 1; i <= comp_count; ++i)
    member_offsets_[i] += member_offsets_[i - 1];
  member_storage_.resize(member_offsets_[comp_count]);
  cursor_scratch_.assign(member_offsets_.begin(), member_offsets_.end() - 1);
  for (net::SiteId s = 0; s < n; ++s) {
    const std::int32_t l = label_[s];
    if (l == kNoComponent) continue;
    member_storage_[cursor_scratch_[static_cast<std::size_t>(l)]++] = s;
  }
  compact_ = true;

  if constexpr (contracts::kActive) {
    QUORA_INVARIANT(comp_count == root_count_,
                    "compaction must preserve the component count");
    QUORA_INVARIANT(member_storage_.size() == live_->up_site_count(),
                    "member lists must cover each up site exactly once");
  }
}

std::int32_t ComponentTracker::component_of(net::SiteId s) const {
  sync();
  compact();
  return label_.at(s);
}

net::Vote ComponentTracker::component_votes(net::SiteId s) const {
  sync();
  const std::int32_t c = label_.at(s);
  return c == kNoComponent ? 0 : comp_votes_[static_cast<std::size_t>(find(c))];
}

std::uint32_t ComponentTracker::component_size(net::SiteId s) const {
  sync();
  const std::int32_t c = label_.at(s);
  return c == kNoComponent ? 0 : comp_size_[static_cast<std::size_t>(find(c))];
}

std::uint32_t ComponentTracker::component_count() const {
  sync();
  return root_count_;
}

net::Vote ComponentTracker::max_component_votes() const {
  sync();
  return max_votes_;
}

std::span<const net::SiteId> ComponentTracker::members(std::int32_t label) const {
  sync();
  compact();
  const auto i = static_cast<std::size_t>(label);
  return {member_storage_.data() + member_offsets_.at(i),
          member_storage_.data() + member_offsets_.at(i + 1)};
}

bool ComponentTracker::connected(net::SiteId a, net::SiteId b) const {
  sync();
  const std::int32_t ca = label_.at(a);
  const std::int32_t cb = label_.at(b);
  return ca != kNoComponent && cb != kNoComponent && find(ca) == find(cb);
}

std::span<const net::Vote> ComponentTracker::votes_by_label() const {
  sync();
  compact();
  return comp_votes_;
}

} // namespace quora::conn
