#include "conn/live_network.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace quora::conn {

LiveNetwork::LiveNetwork(const net::Topology& topo,
                         std::uint64_t journal_capacity)
    : topo_(&topo),
      site_up_(topo.site_count(), 1),
      link_up_(topo.link_count(), 1),
      site_words_(bits::word_count(topo.site_count()), 0),
      link_words_(bits::word_count(topo.link_count()), 0),
      up_sites_(topo.site_count()),
      up_links_(topo.link_count()) {
  if (journal_capacity < 2 || !std::has_single_bit(journal_capacity))
    throw std::invalid_argument(
        "LiveNetwork: journal capacity must be a power of two >= 2");
  journal_mask_ = journal_capacity - 1;
  journal_.assign(journal_capacity, Delta{});

  // All-up initial state: set bits [0, count) and leave tail bits zero —
  // consumers popcount whole words and must never see ghost elements.
  for (std::uint32_t s = 0; s < topo.site_count(); ++s)
    set_word_bit(site_words_, s, true);
  for (std::uint32_t l = 0; l < topo.link_count(); ++l)
    set_word_bit(link_words_, l, true);

  if (topo.site_count() > 0 && topo.site_count() <= kDenseAdjacencyMaxSites) {
    row_words_ = bits::word_count(topo.site_count());
    const std::size_t total = row_words_ * topo.site_count();
    topo_rows_.assign(total, 0);
    for (const net::Link& e : topo.links()) {
      topo_rows_[e.a * row_words_ + e.b / bits::kWordBits] |=
          bits::Word{1} << (e.b % bits::kWordBits);
      topo_rows_[e.b * row_words_ + e.a / bits::kWordBits] |=
          bits::Word{1} << (e.a % bits::kWordBits);
    }
    adj_rows_ = topo_rows_;  // every link starts up
  }
}

bool LiveNetwork::set_site_up(net::SiteId s, bool up) {
  std::uint8_t& flag = site_up_.at(s);
  if ((flag != 0) == up) return false;
  flag = up ? 1 : 0;
  set_word_bit(site_words_, s, up);
  up_sites_ += up ? 1u : -1u;
  journal(up ? DeltaKind::kSiteUp : DeltaKind::kSiteDown, s);
  return true;
}

bool LiveNetwork::set_link_up(net::LinkId l, bool up) {
  std::uint8_t& flag = link_up_.at(l);
  if ((flag != 0) == up) return false;
  flag = up ? 1 : 0;
  set_word_bit(link_words_, l, up);
  if (row_words_ != 0) {
    // A link flip touches exactly two row bits; the rows stay an exact
    // mirror of "link exists AND link up" with no rebuild.
    const net::Link& e = topo_->link(l);
    const bits::Word ma = bits::Word{1} << (e.a % bits::kWordBits);
    const bits::Word mb = bits::Word{1} << (e.b % bits::kWordBits);
    bits::Word& row_ab = adj_rows_[e.a * row_words_ + e.b / bits::kWordBits];
    bits::Word& row_ba = adj_rows_[e.b * row_words_ + e.a / bits::kWordBits];
    if (up) {
      row_ab |= mb;
      row_ba |= ma;
    } else {
      row_ab &= ~mb;
      row_ba &= ~ma;
    }
  }
  up_links_ += up ? 1u : -1u;
  journal(up ? DeltaKind::kLinkUp : DeltaKind::kLinkDown, l);
  return true;
}

void LiveNetwork::reset_all_up() {
  bool changed = false;
  for (auto& f : site_up_) {
    if (!f) {
      f = 1;
      changed = true;
    }
  }
  for (auto& f : link_up_) {
    if (!f) {
      f = 1;
      changed = true;
    }
  }
  if (changed) {
    // Re-derive the packed state wholesale; cheaper than itemizing and the
    // bulk path is off the per-event hot path anyway.
    std::fill(site_words_.begin(), site_words_.end(), bits::Word{0});
    std::fill(link_words_.begin(), link_words_.end(), bits::Word{0});
    for (std::uint32_t s = 0; s < topo_->site_count(); ++s)
      set_word_bit(site_words_, s, true);
    for (std::uint32_t l = 0; l < topo_->link_count(); ++l)
      set_word_bit(link_words_, l, true);
    if (row_words_ != 0)
      std::copy(topo_rows_.begin(), topo_rows_.end(), adj_rows_.begin());
  }
  up_sites_ = topo_->site_count();
  up_links_ = topo_->link_count();
  // One version bump for the whole compound change, exactly as before the
  // journal existed; kBulk tells replayers to re-derive rather than merge.
  if (changed) journal(DeltaKind::kBulk, 0);
}

} // namespace quora::conn
