#include "conn/live_network.hpp"

namespace quora::conn {

LiveNetwork::LiveNetwork(const net::Topology& topo)
    : topo_(&topo),
      site_up_(topo.site_count(), 1),
      link_up_(topo.link_count(), 1),
      up_sites_(topo.site_count()),
      up_links_(topo.link_count()) {}

bool LiveNetwork::set_site_up(net::SiteId s, bool up) {
  std::uint8_t& flag = site_up_.at(s);
  if ((flag != 0) == up) return false;
  flag = up ? 1 : 0;
  up_sites_ += up ? 1u : -1u;
  journal(up ? DeltaKind::kSiteUp : DeltaKind::kSiteDown, s);
  return true;
}

bool LiveNetwork::set_link_up(net::LinkId l, bool up) {
  std::uint8_t& flag = link_up_.at(l);
  if ((flag != 0) == up) return false;
  flag = up ? 1 : 0;
  up_links_ += up ? 1u : -1u;
  journal(up ? DeltaKind::kLinkUp : DeltaKind::kLinkDown, l);
  return true;
}

void LiveNetwork::reset_all_up() {
  bool changed = false;
  for (auto& f : site_up_) {
    if (!f) {
      f = 1;
      changed = true;
    }
  }
  for (auto& f : link_up_) {
    if (!f) {
      f = 1;
      changed = true;
    }
  }
  up_sites_ = topo_->site_count();
  up_links_ = topo_->link_count();
  // One version bump for the whole compound change, exactly as before the
  // journal existed; kBulk tells replayers to re-derive rather than merge.
  if (changed) journal(DeltaKind::kBulk, 0);
}

} // namespace quora::conn
