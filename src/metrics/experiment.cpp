#include "metrics/experiment.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "metrics/collectors.hpp"
#include "sim/batch.hpp"
#include "sim/simulator.hpp"

namespace quora::metrics {
namespace {

struct BatchOutput {
  std::unique_ptr<VotesSeenCollector> collector;
};

/// One independent replication: fresh simulator on stream `b`, warm-up,
/// then one measured batch of accesses.
BatchOutput run_one_batch(const net::Topology& topo, const sim::SimConfig& config,
                          const MeasurePolicy& policy, std::uint32_t b) {
  sim::AccessSpec spec;
  spec.alpha = policy.sampling_alpha;
  spec.read_weights = policy.read_weights;
  spec.write_weights = policy.write_weights;
  sim::Simulator simulator(topo, config, spec, policy.profile, policy.seed, b);
  if (policy.metrics != nullptr) simulator.set_metrics(policy.metrics);
  // The recorder is single-threaded: only stream 0 carries it, and that
  // batch always runs (streams are the batch index, wave after wave).
  if (policy.trace != nullptr && b == 0) simulator.set_trace(policy.trace);
  simulator.run_accesses(config.warmup_accesses);

  BatchOutput out;
  out.collector = std::make_unique<VotesSeenCollector>(topo);
  simulator.add_access_observer(out.collector.get());
  simulator.run_accesses(config.accesses_per_batch);
  return out;
}

} // namespace

CurveResult measure_curves(const net::Topology& topo, const sim::SimConfig& config,
                           const MeasurePolicy& policy) {
  if (policy.alphas.empty()) {
    throw std::invalid_argument("measure_curves: no evaluation alphas");
  }
  if (!(policy.sampling_alpha > 0.0 && policy.sampling_alpha < 1.0)) {
    throw std::invalid_argument("measure_curves: sampling_alpha must be in (0,1)");
  }
  config.validate();

  CurveResult result;
  result.topology_name = topo.name();
  result.total = topo.total_votes();
  result.alphas = policy.alphas;
  const net::Vote max_q = result.total / 2;
  if (max_q < 1) throw std::invalid_argument("measure_curves: too few votes");
  for (net::Vote q = 1; q <= max_q; ++q) result.q_values.push_back(q);

  const std::size_t n_alpha = policy.alphas.size();
  const std::size_t n_q = result.q_values.size();
  std::vector<std::vector<stats::BatchMeansController>> grid(n_alpha);
  for (auto& row : grid) {
    row.assign(n_q, stats::BatchMeansController(policy.batch));
  }

  VotesSeenCollector pooled(topo);
  const unsigned threads =
      policy.threads == 0 ? sim::default_thread_count() : policy.threads;

  std::uint32_t done = 0;
  const std::uint32_t min_b = policy.batch.min_batches;
  const std::uint32_t max_b = std::max(policy.batch.max_batches, min_b);

  const auto any_needs_more = [&] {
    for (const auto& row : grid) {
      for (const auto& cell : row) {
        if (cell.needs_more()) return true;
      }
    }
    return false;
  };

  while (done < max_b) {
    // First wave fills the minimum batch count; later waves add one
    // thread-width at a time until every cell's CI is tight enough.
    const std::uint32_t target =
        done == 0 ? min_b : std::min<std::uint32_t>(max_b, done + std::max(1u, threads));
    const std::uint32_t wave = target - done;

    std::vector<BatchOutput> outputs(wave);
    sim::for_each_batch(wave, threads, [&](std::uint32_t i) {
      outputs[i] = run_one_batch(topo, config, policy, done + i);
    });

    for (const BatchOutput& out : outputs) {
      const core::AvailabilityCurve curve(out.collector->read_pdf(),
                                          out.collector->write_pdf());
      for (std::size_t a = 0; a < n_alpha; ++a) {
        for (std::size_t qi = 0; qi < n_q; ++qi) {
          grid[a][qi].add_batch(curve.availability(policy.alphas[a],
                                                   result.q_values[qi]));
        }
      }
      pooled.merge(*out.collector);
    }
    done = target;
    if (!any_needs_more()) break;
  }

  result.batches = done;
  result.mean.assign(n_alpha, std::vector<double>(n_q, 0.0));
  result.half_width.assign(n_alpha, std::vector<double>(n_q, 0.0));
  for (std::size_t a = 0; a < n_alpha; ++a) {
    for (std::size_t qi = 0; qi < n_q; ++qi) {
      const stats::ConfidenceInterval ci = grid[a][qi].interval();
      result.mean[a][qi] = ci.mean;
      result.half_width[a][qi] = ci.half_width;
      result.max_half_width = std::max(result.max_half_width, ci.half_width);
    }
  }
  result.r_pdf = pooled.read_pdf();
  result.w_pdf = pooled.write_pdf();
  result.surv_pdf = pooled.max_component_pdf();
  return result;
}

} // namespace quora::metrics
