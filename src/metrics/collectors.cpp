#include "metrics/collectors.hpp"

#include <stdexcept>

namespace quora::metrics {

VotesSeenCollector::VotesSeenCollector(const net::Topology& topo, Options options)
    : topo_(&topo),
      options_(options),
      read_(topo.total_votes()),
      write_(topo.total_votes()),
      max_comp_(topo.total_votes()) {
  if (options_.per_site) {
    per_site_.assign(topo.site_count(), stats::IntHistogram(topo.total_votes()));
  }
}

void VotesSeenCollector::on_access(const sim::Simulator& sim,
                                   const sim::AccessEvent& ev) {
  ++accesses_;
  const net::Vote v = sim.tracker().component_votes(ev.site);
  (ev.is_read ? read_ : write_).add(v);
  if (options_.per_site) per_site_[ev.site].add(v);
  if (options_.track_max_component) {
    max_comp_.add(sim.tracker().max_component_votes());
  }
}

const stats::IntHistogram& VotesSeenCollector::site_hist(net::SiteId s) const {
  if (!options_.per_site) {
    throw std::logic_error("VotesSeenCollector: per-site tracking not enabled");
  }
  return per_site_.at(s);
}

core::VotePdf VotesSeenCollector::combined_pdf() const {
  stats::IntHistogram pooled(read_.max_value());
  pooled.merge(read_);
  pooled.merge(write_);
  return pooled.pdf();
}

void VotesSeenCollector::merge(const VotesSeenCollector& other) {
  accesses_ += other.accesses_;
  read_.merge(other.read_);
  write_.merge(other.write_);
  max_comp_.merge(other.max_comp_);
  if (options_.per_site && other.options_.per_site) {
    if (per_site_.size() != other.per_site_.size()) {
      throw std::invalid_argument("VotesSeenCollector::merge: site count mismatch");
    }
    for (std::size_t i = 0; i < per_site_.size(); ++i) {
      per_site_[i].merge(other.per_site_[i]);
    }
  }
}

ProtocolMeter::ProtocolMeter(Decide decide) : decide_(std::move(decide)) {
  if (!decide_) throw std::invalid_argument("ProtocolMeter: empty decider");
}

void ProtocolMeter::on_access(const sim::Simulator& sim, const sim::AccessEvent& ev) {
  const bool granted = decide_(sim, ev);
  if (ev.is_read) {
    ++reads_;
    if (granted) ++reads_granted_;
  } else {
    ++writes_;
    if (granted) ++writes_granted_;
  }
}

double ProtocolMeter::availability() const {
  const std::uint64_t total = reads_ + writes_;
  return total == 0 ? 0.0
                    : static_cast<double>(reads_granted_ + writes_granted_) /
                          static_cast<double>(total);
}

double ProtocolMeter::read_availability() const {
  return reads_ == 0 ? 0.0
                     : static_cast<double>(reads_granted_) / static_cast<double>(reads_);
}

double ProtocolMeter::write_availability() const {
  return writes_ == 0 ? 0.0
                      : static_cast<double>(writes_granted_) /
                            static_cast<double>(writes_);
}

ProtocolMeter::Decide static_decider(const quorum::QuorumConsensus& engine) {
  return [&engine](const sim::Simulator& sim, const sim::AccessEvent& ev) {
    const auto type =
        ev.is_read ? quorum::AccessType::kRead : quorum::AccessType::kWrite;
    return engine.request(sim.tracker(), ev.site, type).granted;
  };
}

} // namespace quora::metrics
