#pragma once

#include <cstdint>
#include <deque>

#include "quorum/quorum_spec.hpp"
#include "sim/simulator.hpp"

namespace quora::metrics {

/// Availability under *non-instantaneous* accesses — a deliberate
/// departure from the paper's model, which assumes "all events ... occur
/// instantaneously[;] therefore no site or link can either fail or
/// recover while an access request is processing" (§5.1). Here an access
/// occupies a fixed window of simulated time and commits only if
///
///   (a) its quorum was met at submission, and
///   (b) the membership of the submitting site's component was undisturbed
///       for the whole window (a conservative, two-phase-locking-like
///       rule: any membership change aborts).
///
/// `duration = 0` reproduces the instantaneous model exactly, so sweeping
/// the duration measures how load-bearing the paper's assumption is.
///
/// Implementation: accesses are recorded as pending with their component
/// membership fingerprint; every subsequent network event inside the
/// window re-fingerprints the component and marks the access disturbed on
/// mismatch. Events arrive in time order, so pendings are settled exactly
/// when their window closes.
class TimedProtocolMeter : public sim::AccessObserver, public sim::NetworkObserver {
public:
  TimedProtocolMeter(quorum::QuorumSpec spec, double duration);

  void on_access(const sim::Simulator& sim, const sim::AccessEvent& ev) override;
  void on_network_change(const sim::Simulator& sim, sim::EventKind kind,
                         std::uint32_t index) override;

  /// Settle every pending access whose window has closed by `now`.
  /// Called internally; expose for end-of-run draining.
  void settle_until(double now);

  std::uint64_t completed() const noexcept { return granted_ + denied_; }
  std::uint64_t granted() const noexcept { return granted_; }
  std::uint64_t aborted_by_disturbance() const noexcept { return disturbed_; }

  double availability() const {
    const std::uint64_t total = completed();
    return total == 0 ? 0.0
                      : static_cast<double>(granted_) / static_cast<double>(total);
  }

private:
  struct Pending {
    double deadline = 0.0;
    net::SiteId site = 0;
    bool is_read = false;
    bool quorum_met = false;
    bool disturbed = false;
    std::uint64_t fingerprint = 0;
  };

  static std::uint64_t fingerprint_component(const sim::Simulator& sim,
                                             net::SiteId site);

  quorum::QuorumSpec spec_;
  double duration_;
  std::deque<Pending> pending_;
  std::uint64_t granted_ = 0;
  std::uint64_t denied_ = 0;
  std::uint64_t disturbed_ = 0;
};

} // namespace quora::metrics
