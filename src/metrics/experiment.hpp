#pragma once

#include <string>
#include <vector>

#include "core/availability.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/config.hpp"
#include "stats/batch_means.hpp"

namespace quora::metrics {

/// How to run one availability-curve experiment (one paper figure).
struct MeasurePolicy {
  /// Evaluation read-rates — the figures use {0, .25, .50, .75, 1}.
  std::vector<double> alphas{0.0, 0.25, 0.5, 0.75, 1.0};
  /// Read/write labeling used while *sampling*; must be inside (0,1) so
  /// both the r and w histograms fill. (Evaluation alphas are applied
  /// afterwards through the Figure-1 decomposition, so this choice only
  /// affects estimator variance, not the estimate.)
  double sampling_alpha = 0.5;
  std::uint64_t seed = 0xC0FFEEULL;
  unsigned threads = 0;  // 0 => sim::default_thread_count()
  stats::BatchMeansController::Policy batch{};
  /// Optional heterogeneous reliabilities (empty = the uniform paper
  /// model from SimConfig).
  sim::FailureProfile profile{};
  /// Optional non-uniform submission distributions — the r_i / w_i of
  /// Figure 1 step 1. Empty vectors mean uniform (the paper's
  /// experiments); when set, the measured mixtures converge to
  /// r(v) = sum_i r_i f_i(v) and w(v) = sum_i w_i f_i(v) automatically.
  std::vector<double> read_weights;
  std::vector<double> write_weights;
  /// Optional observability sinks (borrowed; may be nullptr). The
  /// registry is thread-safe and attaches to every parallel batch
  /// simulator; the trace recorder is single-threaded and attaches to
  /// the stream-0 batch simulator only — one representative replication,
  /// enough for event forensics without cross-thread racing.
  obs::Registry* metrics = nullptr;
  obs::TraceRecorder* trace = nullptr;
};

/// Availability as a function of (alpha, q_r) with batch-means confidence
/// intervals — the data behind one of the paper's Figures 2-7.
struct CurveResult {
  std::string topology_name;
  net::Vote total = 0;
  std::vector<double> alphas;
  std::vector<net::Vote> q_values;              // 1..floor(T/2)
  std::vector<std::vector<double>> mean;        // [alpha index][q index]
  std::vector<std::vector<double>> half_width;  // [alpha index][q index]
  std::uint32_t batches = 0;
  double max_half_width = 0.0;

  // Pooled distribution estimates across all batches.
  core::VotePdf r_pdf;
  core::VotePdf w_pdf;
  core::VotePdf surv_pdf;  // votes in the largest component

  /// Availability curve built from the pooled estimates; feed this to the
  /// optimizers of core/optimize.hpp.
  core::AvailabilityCurve pooled_curve() const {
    return core::AvailabilityCurve(r_pdf, w_pdf);
  }

  /// SURV-metric curve (footnote 3): the same machinery applied to the
  /// largest-component distribution.
  core::AvailabilityCurve surv_curve() const {
    return core::AvailabilityCurve(surv_pdf);
  }
};

/// Runs the paper's full measurement protocol for one topology: warm up,
/// run batches (in parallel, one RNG stream each), compute per-batch
/// A(alpha, q_r) for the whole grid, and keep adding batches until every
/// grid cell's CI half-width meets the policy or the batch cap is hit.
CurveResult measure_curves(const net::Topology& topo, const sim::SimConfig& config,
                           const MeasurePolicy& policy);

} // namespace quora::metrics
