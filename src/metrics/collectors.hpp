#pragma once

#include <functional>

#include "core/component_dist.hpp"
#include "quorum/protocols.hpp"
#include "sim/simulator.hpp"
#include "stats/histogram.hpp"

namespace quora::metrics {

/// The on-line estimator of §4.2, piggy-backed on access processing: at
/// every access it records how many votes the submitting site can reach.
///
/// Three views of those samples are kept:
///  - read / write histograms, converging to the mixtures r(v) and w(v);
///  - optionally a per-site histogram, converging to f_i(v);
///  - the votes of the *largest* component, converging to the distribution
///    the SURV metric needs (footnote 3). Access epochs are Poisson, so by
///    PASTA these samples are unbiased time averages.
class VotesSeenCollector : public sim::AccessObserver {
public:
  struct Options {
    bool per_site = false;
    bool track_max_component = true;
  };

  explicit VotesSeenCollector(const net::Topology& topo)
      : VotesSeenCollector(topo, Options{}) {}
  VotesSeenCollector(const net::Topology& topo, Options options);

  void on_access(const sim::Simulator& sim, const sim::AccessEvent& ev) override;

  std::uint64_t accesses() const noexcept { return accesses_; }

  const stats::IntHistogram& read_hist() const noexcept { return read_; }
  const stats::IntHistogram& write_hist() const noexcept { return write_; }
  const stats::IntHistogram& max_component_hist() const noexcept { return max_comp_; }
  const stats::IntHistogram& site_hist(net::SiteId s) const;

  /// Estimated r(v) / w(v) mixtures (paper step 2).
  core::VotePdf read_pdf() const { return read_.pdf(); }
  core::VotePdf write_pdf() const { return write_.pdf(); }
  /// Reads and writes pooled — the right estimator when r_i = w_i (the
  /// paper's uniform experiments, where r(v) = w(v)).
  core::VotePdf combined_pdf() const;
  /// Estimated f_i(v) for one site (requires Options::per_site).
  core::VotePdf site_pdf(net::SiteId s) const { return site_hist(s).pdf(); }
  /// Distribution of votes in the largest component (SURV).
  core::VotePdf max_component_pdf() const { return max_comp_.pdf(); }

  /// Pool another collector's counts (domains must match).
  void merge(const VotesSeenCollector& other);

private:
  const net::Topology* topo_;
  Options options_;
  std::uint64_t accesses_ = 0;
  stats::IntHistogram read_;
  stats::IntHistogram write_;
  stats::IntHistogram max_comp_;
  std::vector<stats::IntHistogram> per_site_;
};

/// Measures ACC for one concrete protocol configuration by counting
/// grants. `decide` returns whether the access is granted; adapters for
/// the static engine, QR and dynamic voting are one-line lambdas.
class ProtocolMeter : public sim::AccessObserver {
public:
  using Decide = std::function<bool(const sim::Simulator&, const sim::AccessEvent&)>;

  explicit ProtocolMeter(Decide decide);

  void on_access(const sim::Simulator& sim, const sim::AccessEvent& ev) override;

  std::uint64_t reads() const noexcept { return reads_; }
  std::uint64_t writes() const noexcept { return writes_; }
  std::uint64_t reads_granted() const noexcept { return reads_granted_; }
  std::uint64_t writes_granted() const noexcept { return writes_granted_; }

  /// Fraction of all accesses granted (the paper's ACC).
  double availability() const;
  double read_availability() const;
  double write_availability() const;

private:
  Decide decide_;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  std::uint64_t reads_granted_ = 0;
  std::uint64_t writes_granted_ = 0;
};

/// Adapter: meter a static quorum consensus engine.
ProtocolMeter::Decide static_decider(const quorum::QuorumConsensus& engine);

} // namespace quora::metrics
