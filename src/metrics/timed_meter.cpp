#include "metrics/timed_meter.hpp"

#include <stdexcept>

namespace quora::metrics {

TimedProtocolMeter::TimedProtocolMeter(quorum::QuorumSpec spec, double duration)
    : spec_(spec), duration_(duration) {
  if (!(duration >= 0.0)) {
    throw std::invalid_argument("TimedProtocolMeter: negative duration");
  }
}

std::uint64_t TimedProtocolMeter::fingerprint_component(const sim::Simulator& sim,
                                                        net::SiteId site) {
  const std::int32_t comp = sim.tracker().component_of(site);
  if (comp == conn::kNoComponent) return 0;
  // FNV-1a over the sorted (discovery-ordered, deterministic) member list.
  std::uint64_t h = 1469598103934665603ULL;
  for (const net::SiteId s : sim.tracker().members(comp)) {
    h ^= s + 1;
    h *= 1099511628211ULL;
  }
  return h;
}

void TimedProtocolMeter::settle_until(double now) {
  while (!pending_.empty() && pending_.front().deadline <= now) {
    const Pending& p = pending_.front();
    if (p.quorum_met && !p.disturbed) {
      ++granted_;
    } else {
      ++denied_;
      if (p.quorum_met && p.disturbed) ++disturbed_;
    }
    pending_.pop_front();
  }
}

void TimedProtocolMeter::on_access(const sim::Simulator& sim,
                                   const sim::AccessEvent& ev) {
  settle_until(ev.time);

  Pending p;
  p.deadline = ev.time + duration_;
  p.site = ev.site;
  p.is_read = ev.is_read;
  const net::Vote votes = sim.tracker().component_votes(ev.site);
  p.quorum_met =
      ev.is_read ? spec_.allows_read(votes) : spec_.allows_write(votes);
  p.fingerprint = fingerprint_component(sim, ev.site);
  if (duration_ == 0.0) {
    // Instantaneous: settle immediately (the paper's model).
    p.quorum_met ? ++granted_ : ++denied_;
    return;
  }
  pending_.push_back(p);
}

void TimedProtocolMeter::on_network_change(const sim::Simulator& sim,
                                           sim::EventKind /*kind*/,
                                           std::uint32_t /*index*/) {
  settle_until(sim.now());
  for (Pending& p : pending_) {
    if (!p.disturbed &&
        fingerprint_component(sim, p.site) != p.fingerprint) {
      p.disturbed = true;
    }
  }
}

} // namespace quora::metrics
