#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "conn/component_tracker.hpp"
#include "conn/live_network.hpp"
#include "core/analysis_annotations.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rng/alias_table.hpp"
#include "rng/xoshiro256ss.hpp"
#include "sim/config.hpp"
#include "sim/event.hpp"

namespace quora::sim {

class Simulator;

/// One access request, as delivered to observers. Votes reachable from the
/// submitting site are queried through `Simulator::tracker()`; a down
/// submitting site yields zero votes (the paper's "component of size zero").
struct AccessEvent {
  double time = 0.0;
  net::SiteId site = 0;
  bool is_read = false;
};

/// Receives every access event during measured simulation.
class AccessObserver {
public:
  virtual ~AccessObserver() = default;
  virtual void on_access(const Simulator& sim, const AccessEvent& ev) = 0;
};

/// Receives a notification after every site/link failure or recovery.
/// Dynamic protocols (quorum reassignment, dynamic voting) react here.
class NetworkObserver {
public:
  virtual ~NetworkObserver() = default;
  virtual void on_network_change(const Simulator& sim, EventKind kind,
                                 std::uint32_t index) = 0;
};

/// Steady-state discrete event simulator of the paper's system model
/// (§5.1–5.2): fail-stop sites, bidirectional fallible links, Poisson
/// failure/repair/access processes, instantaneous events.
///
/// Deterministic: one RNG stream drives everything, event ties break by
/// insertion order, so a (seed, stream) pair fully determines a run.
class Simulator {
public:
  Simulator(const net::Topology& topo, SimConfig config, AccessSpec spec,
            std::uint64_t seed, std::uint64_t stream = 0);

  /// As above, with heterogeneous per-component failure parameters. Sites
  /// or links whose mu_fail is infinite never fail.
  Simulator(const net::Topology& topo, SimConfig config, AccessSpec spec,
            FailureProfile profile, std::uint64_t seed, std::uint64_t stream = 0);

  /// Process events until `count` further access events have occurred.
  /// Hot path and (future) sim-shard entry point: everything reachable
  /// from here must stay allocation-free in steady state (L006) and may
  /// only touch sim-shard state (L007/L008).
  QUORA_HOT_PATH QUORA_SHARD_ENTRY(sim) void run_accesses(std::uint64_t count);

  /// Process exactly one queued event — the same dispatch `run_accesses`
  /// performs per iteration — and return it. Single-stepping is the
  /// checkpoint-restore entry point: together with `rebind()` it lets a
  /// driver (debugger, model harness) snapshot the simulator by value and
  /// advance the copy and the original independently. The queue never
  /// drains: the Poisson failure/repair/access processes reschedule
  /// themselves, so `step_one` always has an event to pop.
  Event step_one();

  /// Restore the initial all-up state, clear the clock, reschedule, and
  /// rewind the RNG — a subsequent run replays this simulator's history
  /// exactly. Observers stay attached. (The paper resets before each
  /// batch; independent batches come from distinct streams, not reset.)
  void reset();

  /// Fix internal cross-references after a by-value copy: the component
  /// tracker must observe this simulator's live network, not the
  /// source's. Call on every snapshot/restore copy before use. Observers
  /// and recorders are borrowed pointers and stay shared — copying a
  /// simulator with a trace recorder attached is not supported (two
  /// clocks, one recorder).
  void rebind() noexcept { tracker_.rebind(live_); }

  /// Observers are notified in registration order; they are borrowed, not
  /// owned, and must outlive the simulator or be removed first.
  void add_access_observer(AccessObserver* obs) {
    access_obs_.push_back(obs);
    solo_access_obs_ = access_obs_.size() == 1 ? obs : nullptr;
  }
  void add_network_observer(NetworkObserver* obs) {
    network_obs_.push_back(obs);
    solo_network_obs_ = network_obs_.size() == 1 ? obs : nullptr;
  }
  void clear_observers() noexcept {
    access_obs_.clear();
    network_obs_.clear();
    solo_access_obs_ = nullptr;
    solo_network_obs_ = nullptr;
  }

  /// Change the read fraction for subsequent accesses — lets experiments
  /// model a shifting read/write mix mid-run (§4.3's motivating scenario).
  void set_access_alpha(double alpha);

  double now() const noexcept { return now_; }
  const net::Topology& topology() const noexcept { return *topo_; }
  const conn::LiveNetwork& network() const noexcept { return live_; }
  const conn::ComponentTracker& tracker() const noexcept { return tracker_; }
  const SimConfig& config() const noexcept { return config_; }
  const AccessSpec& access_spec() const noexcept { return spec_; }

  struct Counters {
    std::uint64_t accesses = 0;
    std::uint64_t site_failures = 0;
    std::uint64_t site_recoveries = 0;
    std::uint64_t link_failures = 0;
    std::uint64_t link_recoveries = 0;
  };
  const Counters& counters() const noexcept { return counters_; }

  /// Observability: pure recording, provably inert (the golden
  /// determinism suite replays with these attached and asserts
  /// byte-identical transcripts). The recorder is clocked on this
  /// simulator's simulated time and shared with the component tracker;
  /// one recorder per simulator — recorders are not thread-safe. The
  /// registry IS thread-safe and may be shared across parallel batch
  /// simulators. Pass nullptr to detach.
  void set_trace(obs::TraceRecorder* trace);
  void set_metrics(obs::Registry* registry);

private:
  void schedule_initial_events();
  QUORA_HOT_PATH void handle(const Event& e);

  // The measurement loop almost always runs exactly one observer of each
  // kind; dispatching through a cached pointer skips the vector iteration
  // (load, bounds, increment) that would otherwise precede every virtual
  // call on the hot path.
  // Analysis boundaries: dynamic dispatch into registered observers is
  // fan-out the call graph cannot follow; each observer carries its own
  // determinism/allocation guarantees (the golden suite replays with them
  // attached).
  QUORA_ANALYSIS_BOUNDARY void notify_network(EventKind kind, std::uint32_t index) {
    if (solo_network_obs_ != nullptr) {
      solo_network_obs_->on_network_change(*this, kind, index);
      return;
    }
    for (NetworkObserver* obs : network_obs_) obs->on_network_change(*this, kind, index);
  }
  QUORA_ANALYSIS_BOUNDARY void notify_access(const AccessEvent& ev) {
    if (solo_access_obs_ != nullptr) {
      solo_access_obs_->on_access(*this, ev);
      return;
    }
    for (AccessObserver* obs : access_obs_) obs->on_access(*this, ev);
  }

  double site_mu_fail(net::SiteId s) const;
  double site_mu_repair(net::SiteId s) const;
  double link_mu_fail(net::LinkId l) const;
  double link_mu_repair(net::LinkId l) const;

  const net::Topology* topo_;
  SimConfig config_;
  AccessSpec spec_;
  FailureProfile profile_;
  std::uint64_t seed_;
  std::uint64_t stream_;

  // Mutable per-run state, owned by the (future) sim shard: nothing
  // outside a sim-shard entry point may reach it (L007).
  QUORA_SHARD_LOCAL(sim) conn::LiveNetwork live_;
  QUORA_SHARD_LOCAL(sim) conn::ComponentTracker tracker_;
  QUORA_SHARD_LOCAL(sim) rng::Xoshiro256ss gen_;
  QUORA_SHARD_LOCAL(sim) EventQueue queue_;
  QUORA_SHARD_LOCAL(sim) double now_ = 0.0;
  double access_interarrival_ = 0.0;  // mu_access / n: merged process mean

  // Site choice per access: uniform unless weights were given.
  std::optional<rng::AliasTable> read_sites_;
  std::optional<rng::AliasTable> write_sites_;

  QUORA_SHARD_LOCAL(sim) Counters counters_;
  obs::TraceRecorder* trace_ = nullptr;
  obs::Counter obs_accesses_;
  obs::Counter obs_site_failures_;
  obs::Counter obs_site_recoveries_;
  obs::Counter obs_link_failures_;
  obs::Counter obs_link_recoveries_;
  std::vector<AccessObserver*> access_obs_;
  std::vector<NetworkObserver*> network_obs_;
  AccessObserver* solo_access_obs_ = nullptr;    // set iff exactly one registered
  NetworkObserver* solo_network_obs_ = nullptr;  // set iff exactly one registered
};

} // namespace quora::sim
