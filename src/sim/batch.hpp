#pragma once

#include <cstdint>
#include <functional>

namespace quora::sim {

/// Number of worker threads to use by default: hardware concurrency,
/// at least 1.
unsigned default_thread_count();

/// Runs `body(batch_index)` for every index in [0, batches), fanning out
/// over at most `threads` workers.
///
/// This is the library's parallelism idiom (see the HPC guides): batches
/// are statistically independent replications, each with its own RNG
/// stream, simulator and collector — zero shared mutable state — so the
/// fan-out is embarrassingly parallel and results are identical to a
/// serial loop. Exceptions thrown by `body` are rethrown on the caller's
/// thread (first one wins).
void for_each_batch(std::uint32_t batches, unsigned threads,
                    const std::function<void(std::uint32_t)>& body);

} // namespace quora::sim
