#include "sim/batch.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace quora::sim {

unsigned default_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void for_each_batch(std::uint32_t batches, unsigned threads,
                    const std::function<void(std::uint32_t)>& body) {
  if (batches == 0) return;
  const unsigned workers = std::min<unsigned>(threads == 0 ? 1 : threads, batches);

  if (workers <= 1) {
    for (std::uint32_t b = 0; b < batches; ++b) body(b);
    return;
  }

  std::atomic<std::uint32_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  {
    std::vector<std::jthread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        for (;;) {
          const std::uint32_t b = next.fetch_add(1, std::memory_order_relaxed);
          if (b >= batches) return;
          try {
            body(b);
          } catch (...) {
            const std::scoped_lock lock(error_mutex);
            if (!first_error) first_error = std::current_exception();
            return;
          }
        }
      });
    }
  } // jthreads join here

  if (first_error) std::rethrow_exception(first_error);
}

} // namespace quora::sim
