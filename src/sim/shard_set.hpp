#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/topology.hpp"
#include "sim/config.hpp"
#include "sim/simulator.hpp"

namespace quora::sim {

/// A set of independent simulation shards of one scenario, stepped in
/// parallel inside a batch.
///
/// Each shard is a full `Simulator` over the same topology/config/spec,
/// seeded with the same seed but a distinct RNG stream (`stream0 + i`), so
/// shards are statistically independent replications with zero shared
/// mutable state — exactly the property `for_each_batch`'s fan-out idiom
/// requires. `run_accesses` advances every shard by the same access count
/// using that idiom; because shards share nothing, the parallel run is
/// bit-identical to stepping them serially in shard order, which the
/// determinism suite asserts.
///
/// This is the intra-batch counterpart to the experiment layer's
/// batch-level fan-out: a batch that needs more samples than one stream
/// provides splits into shards instead of longer runs, keeping wall-clock
/// bounded as topologies grow.
class ShardSet {
public:
  ShardSet(const net::Topology& topo, SimConfig config, AccessSpec spec,
           std::uint64_t seed, std::uint32_t shard_count,
           std::uint64_t stream0 = 0) {
    shards_.reserve(shard_count);
    for (std::uint32_t i = 0; i < shard_count; ++i)
      shards_.push_back(std::make_unique<Simulator>(topo, config, spec, seed,
                                                    stream0 + i));
  }

  std::uint32_t shard_count() const noexcept {
    return static_cast<std::uint32_t>(shards_.size());
  }

  Simulator& shard(std::uint32_t i) { return *shards_.at(i); }
  const Simulator& shard(std::uint32_t i) const { return *shards_.at(i); }

  /// Advances every shard by `per_shard` access events, fanning out over
  /// at most `threads` workers (1 = serial reference order).
  void run_accesses(std::uint64_t per_shard, unsigned threads);

  /// Element-wise sum of every shard's counters.
  Simulator::Counters aggregate_counters() const;

private:
  std::vector<std::unique_ptr<Simulator>> shards_;
};

} // namespace quora::sim
