#pragma once

#include <cstdint>
#include <vector>

#include "core/analysis_annotations.hpp"
#include "sim/event.hpp"

namespace quora::sim {

/// An event with its shard of origin; what ShardedEventQueue::pop returns.
struct ShardEvent {
  double time = 0.0;
  std::uint32_t shard = 0;
  std::uint64_t seq = 0;  // per-shard insertion order
  EventKind kind = EventKind::kAccess;
  std::uint32_t index = 0;
};

/// `EventQueue` partitioned into per-shard 4-ary heaps with a deterministic
/// global merge (ROADMAP item 4).
///
/// Each shard owns an independent implicit 4-ary min-heap (the same layout
/// and sift idiom as `EventQueue`) and its own sequence counter, so
/// producers bound to distinct shards never contend and a shard's heap can
/// be filled/drained by its own thread during parallel stepping. The
/// global pop order is the total order
///
///     (time, shard, seq)
///
/// — earliest time first, ties across shards broken by shard id, ties
/// within a shard by insertion order. When every event time is unique
/// (the simulator's exponential draws in practice), this order is
/// identical to a single `EventQueue`'s `(time, seq)` order, which the
/// determinism suite asserts on interleaved workloads; only exact
/// cross-shard time ties order by shard rather than by global insertion.
///
/// The merge scans the shard tops linearly. With the shard counts this
/// code targets (≤ 64: one per worker, not one per site) the scan is a
/// handful of comparisons against contiguous cached keys and beats a
/// dedicated merge heap's pointer chasing; revisit if shard counts grow.
class ShardedEventQueue {
public:
  explicit ShardedEventQueue(std::uint32_t shard_count)
      : heaps_(shard_count), next_seq_(shard_count, 0) {}

  std::uint32_t shard_count() const noexcept {
    return static_cast<std::uint32_t>(heaps_.size());
  }

  QUORA_HOT_PATH void push(std::uint32_t shard, double time, EventKind kind,
                           std::uint32_t index) {
    std::vector<Entry>& h = heaps_.at(shard);
    // quora-lint: allow(L006) amortized growth: every pop hands back a slot, so steady state never reallocates; quora_bench --alloc-check enforces it
    h.push_back(Entry{time, next_seq_[shard]++, kind, index});
    sift_up(h, h.size() - 1);
  }

  bool empty() const noexcept {
    for (const std::vector<Entry>& h : heaps_)
      if (!h.empty()) return false;
    return true;
  }

  std::size_t size() const noexcept {
    std::size_t total = 0;
    for (const std::vector<Entry>& h : heaps_) total += h.size();
    return total;
  }

  /// Size of one shard's heap (for tests and load balance probes).
  std::size_t shard_size(std::uint32_t shard) const {
    return heaps_.at(shard).size();
  }

  /// Pops the globally next event under (time, shard, seq). Precondition:
  /// !empty().
  QUORA_HOT_PATH ShardEvent pop() {
    // Linear tournament over shard tops: lowest (time, shard) wins; the
    // per-shard heap already surfaced the lowest (time, seq) of its shard.
    const std::uint32_t shards = shard_count();
    std::uint32_t best = shards;  // first non-empty shard
    for (std::uint32_t s = 0; s < shards; ++s) {
      if (heaps_[s].empty()) continue;
      if (best == shards || entry_earlier(heaps_[s].front(), heaps_[best].front()))
        best = s;
    }
    std::vector<Entry>& h = heaps_[best];
    const Entry e = h.front();
    const Entry last = h.back();
    h.pop_back();
    if (!h.empty()) sift_hole_down(h, last);
    return ShardEvent{e.time, best, e.seq, e.kind, e.index};
  }

  /// Reset to a freshly-constructed state: every shard's capacity is
  /// released and its sequence counter restarts, mirroring
  /// EventQueue::clear()'s replay-determinism contract.
  void clear() {
    for (std::vector<Entry>& h : heaps_) std::vector<Entry>().swap(h);
    for (std::uint64_t& s : next_seq_) s = 0;
  }

private:
  struct Entry {
    double time = 0.0;
    std::uint64_t seq = 0;
    EventKind kind = EventKind::kAccess;
    std::uint32_t index = 0;
  };

  static bool entry_earlier(const Entry& a, const Entry& b) noexcept {
    // Shard ids differ by construction of the scan order (lower shard is
    // seen first and wins ties), so (time) alone decides here; strict <
    // keeps the earlier shard on equal times.
    return a.time < b.time;
  }

  static bool earlier(const Entry& a, const Entry& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  static bool earlier_nb(const Entry& a, const Entry& b) noexcept {
    return static_cast<int>(a.time < b.time) |
           (static_cast<int>(a.time == b.time) &
            static_cast<int>(a.seq < b.seq));
  }

  static void sift_up(std::vector<Entry>& heap, std::size_t i) {
    Entry* const h = heap.data();
    const Entry e = h[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 2;
      if (!earlier(e, h[parent])) break;
      h[i] = h[parent];
      i = parent;
    }
    h[i] = e;
  }

  static void sift_hole_down(std::vector<Entry>& heap, const Entry e) {
    Entry* const h = heap.data();
    const std::size_t n = heap.size();
    std::size_t i = 0;
    std::size_t first;
    while ((first = (i << 2) + 1) + 4 <= n) {
      const std::size_t lo = first + earlier_nb(h[first + 1], h[first]);
      const std::size_t hi = first + 2 + earlier_nb(h[first + 3], h[first + 2]);
      const std::size_t best = earlier_nb(h[hi], h[lo]) ? hi : lo;
      h[i] = h[best];
      i = best;
    }
    if (first < n) {
      std::size_t best = first;
      for (std::size_t c = first + 1; c < n; ++c) {
        if (earlier(h[c], h[best])) best = c;
      }
      h[i] = h[best];
      i = best;
    }
    h[i] = e;
    sift_up(heap, i);
  }

  std::vector<std::vector<Entry>> heaps_;
  std::vector<std::uint64_t> next_seq_;
};

} // namespace quora::sim
