#pragma once

#include <cstdint>
#include <queue>
#include <vector>

namespace quora::sim {

/// The five event kinds of the paper's model (§5.2): component failures and
/// recoveries plus data access requests. All events are instantaneous; no
/// component changes state while an access is processing (guaranteed here
/// by construction — each event is handled atomically).
enum class EventKind : std::uint8_t {
  kSiteFail,
  kSiteRecover,
  kLinkFail,
  kLinkRecover,
  kAccess,
};

struct Event {
  double time = 0.0;
  std::uint64_t seq = 0;  // insertion order; deterministic tie-break
  EventKind kind = EventKind::kAccess;
  std::uint32_t index = 0;  // site or link id; unused for kAccess
};

/// Min-heap of events ordered by (time, seq). The seq tie-break makes event
/// processing a total order, so simulations are bitwise reproducible.
class EventQueue {
public:
  void push(double time, EventKind kind, std::uint32_t index) {
    heap_.push(Event{time, next_seq_++, kind, index});
  }

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }

  Event pop() {
    Event e = heap_.top();
    heap_.pop();
    return e;
  }

  void clear() {
    heap_ = {};
    next_seq_ = 0;
  }

private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

} // namespace quora::sim
