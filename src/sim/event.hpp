#pragma once

#include <cstdint>
#include <vector>

#include "core/analysis_annotations.hpp"

namespace quora::sim {

/// The five event kinds of the paper's model (§5.2): component failures and
/// recoveries plus data access requests. All events are instantaneous; no
/// component changes state while an access is processing (guaranteed here
/// by construction — each event is handled atomically).
enum class EventKind : std::uint8_t {
  kSiteFail,
  kSiteRecover,
  kLinkFail,
  kLinkRecover,
  kAccess,
};

struct Event {
  double time = 0.0;
  std::uint64_t seq = 0;  // insertion order; deterministic tie-break
  EventKind kind = EventKind::kAccess;
  std::uint32_t index = 0;  // site or link id; unused for kAccess
};

/// Min-heap of events ordered by (time, seq). The seq tie-break makes event
/// processing a total order, so simulations are bitwise reproducible.
///
/// Implemented as an implicit 4-ary heap rather than std::priority_queue's
/// binary one: sift-downs touch a quarter as many levels and the four
/// children share a cache line, which matters because pop() dominates the
/// simulator's event loop. Because every (time, seq) key is unique the pop
/// order — and therefore every simulation trace — is identical to the
/// binary heap's, independent of arity.
class EventQueue {
public:
  QUORA_HOT_PATH void push(double time, EventKind kind, std::uint32_t index) {
    // quora-lint: allow(L006) amortized growth: every pop hands back a slot, so steady state never reallocates; quora_bench --alloc-check enforces it
    heap_.push_back(Event{time, next_seq_++, kind, index});
    sift_up(heap_.size() - 1);
  }

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }

  /// Backing-store capacity, exposed so tests can assert that clear()
  /// genuinely released memory.
  std::size_t capacity() const noexcept { return heap_.capacity(); }

  QUORA_HOT_PATH Event pop() {
    Event e = heap_.front();
    const Event last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_hole_down(last);
    return e;
  }

  /// Reset to a freshly-constructed state: the heap's capacity is released
  /// (not retained) so a cleared queue holds no memory, and the sequence
  /// counter restarts so replays from a cleared queue stay deterministic.
  void clear() {
    std::vector<Event>().swap(heap_);
    next_seq_ = 0;
  }

private:
  static bool earlier(const Event& a, const Event& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  /// Same predicate without short-circuiting: both legs evaluate, so the
  /// compiler can lower the descent's child selection to flag ops + cmov
  /// instead of data-dependent branches (random keys mispredict ~50%).
  static bool earlier_nb(const Event& a, const Event& b) noexcept {
    return static_cast<int>(a.time < b.time) |
           (static_cast<int>(a.time == b.time) &
            static_cast<int>(a.seq < b.seq));
  }

  void sift_up(std::size_t i) {
    Event* const h = heap_.data();
    const Event e = h[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 2;
      if (!earlier(e, h[parent])) break;
      h[i] = h[parent];
      i = parent;
    }
    h[i] = e;
  }

  /// Root removal, libstdc++-style: sink the root hole to a leaf choosing
  /// the min child per level (no compare against `e` on the way down),
  /// drop the former last element `e` into the leaf hole, and sift it
  /// back up. On random keys `e` rarely climbs, so this does strictly
  /// fewer unpredictable comparisons than the classic early-exit descent.
  void sift_hole_down(const Event e) {
    Event* const h = heap_.data();
    const std::size_t n = heap_.size();
    std::size_t i = 0;
    std::size_t first;
    while ((first = (i << 2) + 1) + 4 <= n) {
      // Tournament-min over the four children; branchless by construction.
      const std::size_t lo = first + earlier_nb(h[first + 1], h[first]);
      const std::size_t hi = first + 2 + earlier_nb(h[first + 3], h[first + 2]);
      const std::size_t best = earlier_nb(h[hi], h[lo]) ? hi : lo;
      h[i] = h[best];
      i = best;
    }
    if (first < n) {  // partial bottom level
      std::size_t best = first;
      for (std::size_t c = first + 1; c < n; ++c) {
        if (earlier(h[c], h[best])) best = c;
      }
      h[i] = h[best];
      i = best;
    }
    h[i] = e;
    sift_up(i);
  }

  std::vector<Event> heap_;
  std::uint64_t next_seq_ = 0;
};

} // namespace quora::sim
