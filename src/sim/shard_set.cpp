#include "sim/shard_set.hpp"

#include "sim/batch.hpp"

namespace quora::sim {

void ShardSet::run_accesses(std::uint64_t per_shard, unsigned threads) {
  for_each_batch(shard_count(), threads, [this, per_shard](std::uint32_t i) {
    shards_[i]->run_accesses(per_shard);
  });
}

Simulator::Counters ShardSet::aggregate_counters() const {
  Simulator::Counters total;
  for (const std::unique_ptr<Simulator>& s : shards_) {
    const Simulator::Counters& c = s->counters();
    total.accesses += c.accesses;
    total.site_failures += c.site_failures;
    total.site_recoveries += c.site_recoveries;
    total.link_failures += c.link_failures;
    total.link_recoveries += c.link_recoveries;
  }
  return total;
}

} // namespace quora::sim
