#include "sim/config.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

namespace quora::sim {

void SimConfig::validate() const {
  if (!(mu_access > 0.0)) throw std::invalid_argument("SimConfig: mu_access <= 0");
  if (!(rho > 0.0)) throw std::invalid_argument("SimConfig: rho <= 0");
  if (!(reliability > 0.0 && reliability < 1.0)) {
    throw std::invalid_argument("SimConfig: reliability must be in (0,1)");
  }
}

void FailureProfile::validate(std::uint32_t site_count, std::uint32_t link_count) const {
  const auto check = [](const std::vector<double>& fail,
                        const std::vector<double>& repair, std::size_t count,
                        const char* what) {
    if (fail.empty() != repair.empty()) {
      throw std::invalid_argument(std::string("FailureProfile: ") + what +
                                  " fail/repair must be provided together");
    }
    if (!fail.empty() && (fail.size() != count || repair.size() != count)) {
      throw std::invalid_argument(std::string("FailureProfile: ") + what +
                                  " size mismatch");
    }
    for (const double x : fail) {
      if (!(x > 0.0)) {
        throw std::invalid_argument(std::string("FailureProfile: ") + what +
                                    " mu_fail must be positive");
      }
    }
    for (const double x : repair) {
      if (!(x > 0.0) || std::isinf(x)) {
        throw std::invalid_argument(std::string("FailureProfile: ") + what +
                                    " mu_repair must be positive and finite");
      }
    }
  };
  check(site_mu_fail, site_mu_repair, site_count, "site");
  check(link_mu_fail, link_mu_repair, link_count, "link");
}

FailureProfile FailureProfile::from_reliabilities(const SimConfig& config,
                                                  const std::vector<double>& site_rel,
                                                  const std::vector<double>& link_rel) {
  const double repair = config.mu_repair();
  const auto convert = [repair](double rel) {
    if (!(rel > 0.0 && rel <= 1.0)) {
      throw std::invalid_argument(
          "FailureProfile::from_reliabilities: reliability outside (0,1]");
    }
    // reliability = mu_fail / (mu_fail + mu_repair); rel == 1 never fails.
    return rel == 1.0 ? std::numeric_limits<double>::infinity()
                      : repair * rel / (1.0 - rel);
  };
  FailureProfile profile;
  profile.site_mu_fail.reserve(site_rel.size());
  for (const double rel : site_rel) profile.site_mu_fail.push_back(convert(rel));
  profile.site_mu_repair.assign(site_rel.size(), repair);
  profile.link_mu_fail.reserve(link_rel.size());
  for (const double rel : link_rel) profile.link_mu_fail.push_back(convert(rel));
  profile.link_mu_repair.assign(link_rel.size(), repair);
  return profile;
}

void AccessSpec::validate(std::uint32_t site_count) const {
  if (!(alpha >= 0.0 && alpha <= 1.0)) {
    throw std::invalid_argument("AccessSpec: alpha must be in [0,1]");
  }
  if (!read_weights.empty() && read_weights.size() != site_count) {
    throw std::invalid_argument("AccessSpec: read_weights size != site count");
  }
  if (!write_weights.empty() && write_weights.size() != site_count) {
    throw std::invalid_argument("AccessSpec: write_weights size != site count");
  }
}

} // namespace quora::sim
