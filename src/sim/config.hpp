#pragma once

#include <cstdint>
#include <vector>

namespace quora::sim {

/// Stochastic parameters of the paper's simulation study (§5.2).
///
/// Defaults reproduce the paper exactly:
///  - per-site access submission is Poisson with mean inter-access time
///    mu_access = 1;
///  - rho = mu_access / mu_fail = 1/128 relates access and failure time
///    scales, so mu_fail = 128;
///  - every component (site or link alike) is 96% reliable:
///    mu_fail / (mu_fail + mu_repair) = 0.96, so mu_repair = mu_fail / 24;
///  - 100,000 warm-up accesses precede measurement, batches are 1,000,000
///    accesses.
struct SimConfig {
  double mu_access = 1.0;
  double rho = 1.0 / 128.0;
  double reliability = 0.96;
  std::uint64_t warmup_accesses = 100'000;
  std::uint64_t accesses_per_batch = 1'000'000;

  /// Mean up-time of a site or link: mu_access / rho.
  double mu_fail() const { return mu_access / rho; }

  /// Mean down-time, from reliability = mu_fail / (mu_fail + mu_repair).
  double mu_repair() const { return mu_fail() * (1.0 - reliability) / reliability; }

  /// Throws std::invalid_argument when parameters are out of range.
  void validate() const;
};

/// Optional per-component overrides of the uniform failure model —
/// heterogeneous reliabilities (e.g. the §4.2 bus network: a fallible bus
/// hub, perfectly reliable taps). Empty vectors mean "uniform from
/// SimConfig"; an infinite mu_fail entry means the component never fails.
struct FailureProfile {
  std::vector<double> site_mu_fail;
  std::vector<double> site_mu_repair;
  std::vector<double> link_mu_fail;
  std::vector<double> link_mu_repair;

  bool empty() const noexcept {
    return site_mu_fail.empty() && site_mu_repair.empty() &&
           link_mu_fail.empty() && link_mu_repair.empty();
  }

  /// Throws std::invalid_argument on inconsistent sizes or non-positive
  /// rates. Each vector must be empty or match its component count, and
  /// fail/repair vectors must be provided together.
  void validate(std::uint32_t site_count, std::uint32_t link_count) const;

  /// Convenience: a profile where the given reliability fractions are met
  /// with the same repair time scale as `config`.
  static FailureProfile from_reliabilities(const SimConfig& config,
                                           const std::vector<double>& site_rel,
                                           const std::vector<double>& link_rel);
};

/// Who submits accesses, and how reads mix with writes (§4 step 1).
///
/// `alpha` is the fraction of accesses that are reads. `read_weights` /
/// `write_weights` are the paper's r_i / w_i: the distribution of read
/// (write) submissions over sites. Empty weight vectors mean uniform —
/// the paper's experimental setting, where r(v) = w(v).
struct AccessSpec {
  double alpha = 0.5;
  std::vector<double> read_weights;   // empty => uniform
  std::vector<double> write_weights;  // empty => uniform

  /// Throws std::invalid_argument on bad alpha or mismatched weight sizes.
  void validate(std::uint32_t site_count) const;
};

} // namespace quora::sim
