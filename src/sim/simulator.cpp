#include "sim/simulator.hpp"

#include <cmath>
#include <stdexcept>

#include "rng/distributions.hpp"

namespace quora::sim {

Simulator::Simulator(const net::Topology& topo, SimConfig config, AccessSpec spec,
                     std::uint64_t seed, std::uint64_t stream)
    : Simulator(topo, config, std::move(spec), FailureProfile{}, seed, stream) {}

Simulator::Simulator(const net::Topology& topo, SimConfig config, AccessSpec spec,
                     FailureProfile profile, std::uint64_t seed, std::uint64_t stream)
    : topo_(&topo),
      config_(config),
      spec_(std::move(spec)),
      profile_(std::move(profile)),
      seed_(seed),
      stream_(stream),
      live_(topo),
      tracker_(live_),
      gen_(seed, stream) {
  config_.validate();
  spec_.validate(topo.site_count());
  profile_.validate(topo.site_count(), topo.link_count());
  access_interarrival_ = config_.mu_access / static_cast<double>(topo.site_count());
  if (!spec_.read_weights.empty()) read_sites_.emplace(spec_.read_weights);
  if (!spec_.write_weights.empty()) write_sites_.emplace(spec_.write_weights);
  schedule_initial_events();
}

double Simulator::site_mu_fail(net::SiteId s) const {
  return profile_.site_mu_fail.empty() ? config_.mu_fail() : profile_.site_mu_fail[s];
}
double Simulator::site_mu_repair(net::SiteId s) const {
  return profile_.site_mu_repair.empty() ? config_.mu_repair()
                                         : profile_.site_mu_repair[s];
}
double Simulator::link_mu_fail(net::LinkId l) const {
  return profile_.link_mu_fail.empty() ? config_.mu_fail() : profile_.link_mu_fail[l];
}
double Simulator::link_mu_repair(net::LinkId l) const {
  return profile_.link_mu_repair.empty() ? config_.mu_repair()
                                         : profile_.link_mu_repair[l];
}

void Simulator::schedule_initial_events() {
  for (net::SiteId s = 0; s < topo_->site_count(); ++s) {
    const double mu = site_mu_fail(s);
    if (std::isfinite(mu)) {
      queue_.push(now_ + rng::exponential(gen_, mu), EventKind::kSiteFail, s);
    }
  }
  for (net::LinkId l = 0; l < topo_->link_count(); ++l) {
    const double mu = link_mu_fail(l);
    if (std::isfinite(mu)) {
      queue_.push(now_ + rng::exponential(gen_, mu), EventKind::kLinkFail, l);
    }
  }
  queue_.push(now_ + rng::exponential(gen_, access_interarrival_), EventKind::kAccess, 0);
}

void Simulator::set_trace(obs::TraceRecorder* trace) {
  trace_ = trace;
  if (trace != nullptr) trace->set_clock(&now_);
  tracker_.set_trace(trace);
}

void Simulator::set_metrics(obs::Registry* registry) {
  if (registry == nullptr) {
    obs_accesses_ = obs::Counter{};
    obs_site_failures_ = obs::Counter{};
    obs_site_recoveries_ = obs::Counter{};
    obs_link_failures_ = obs::Counter{};
    obs_link_recoveries_ = obs::Counter{};
  } else {
    obs_accesses_ = registry->counter("sim.accesses");
    obs_site_failures_ = registry->counter("sim.site_failures");
    obs_site_recoveries_ = registry->counter("sim.site_recoveries");
    obs_link_failures_ = registry->counter("sim.link_failures");
    obs_link_recoveries_ = registry->counter("sim.link_recoveries");
  }
  tracker_.set_metrics(registry);
}

void Simulator::set_access_alpha(double alpha) {
  if (!(alpha >= 0.0 && alpha <= 1.0)) {
    throw std::invalid_argument("set_access_alpha: alpha must be in [0,1]");
  }
  spec_.alpha = alpha;
}

void Simulator::reset() {
  live_.reset_all_up();
  queue_.clear();
  now_ = 0.0;
  counters_ = Counters{};
  gen_ = rng::Xoshiro256ss(seed_, stream_);  // exact replay of this run
  schedule_initial_events();
}

Event Simulator::step_one() {
  const Event e = queue_.pop();
  now_ = e.time;
  handle(e);
  return e;
}

void Simulator::run_accesses(std::uint64_t count) {
  std::uint64_t remaining = count;
  while (remaining > 0) {
    const Event e = queue_.pop();
    now_ = e.time;
    if (e.kind == EventKind::kAccess) --remaining;
    handle(e);
  }
}

void Simulator::handle(const Event& e) {
  switch (e.kind) {
    case EventKind::kSiteFail: {
      live_.set_site_up(e.index, false);
      ++counters_.site_failures;
      QUORA_METRIC_ADD(obs_site_failures_, 1);
      QUORA_TRACE(trace_, obs::EventKind::kFaultInject, e.index, 0, 0,
                  obs::kFaultSite);
      queue_.push(now_ + rng::exponential(gen_, site_mu_repair(e.index)),
                  EventKind::kSiteRecover, e.index);
      notify_network(e.kind, e.index);
      break;
    }
    case EventKind::kSiteRecover: {
      live_.set_site_up(e.index, true);
      ++counters_.site_recoveries;
      QUORA_METRIC_ADD(obs_site_recoveries_, 1);
      QUORA_TRACE(trace_, obs::EventKind::kFaultHeal, e.index, 0, 0,
                  obs::kFaultSite);
      queue_.push(now_ + rng::exponential(gen_, site_mu_fail(e.index)),
                  EventKind::kSiteFail, e.index);
      notify_network(e.kind, e.index);
      break;
    }
    case EventKind::kLinkFail: {
      live_.set_link_up(e.index, false);
      ++counters_.link_failures;
      QUORA_METRIC_ADD(obs_link_failures_, 1);
      QUORA_TRACE(trace_, obs::EventKind::kFaultInject, e.index, 0, 0,
                  obs::kFaultLink);
      queue_.push(now_ + rng::exponential(gen_, link_mu_repair(e.index)),
                  EventKind::kLinkRecover, e.index);
      notify_network(e.kind, e.index);
      break;
    }
    case EventKind::kLinkRecover: {
      live_.set_link_up(e.index, true);
      ++counters_.link_recoveries;
      QUORA_METRIC_ADD(obs_link_recoveries_, 1);
      QUORA_TRACE(trace_, obs::EventKind::kFaultHeal, e.index, 0, 0,
                  obs::kFaultLink);
      queue_.push(now_ + rng::exponential(gen_, link_mu_fail(e.index)),
                  EventKind::kLinkFail, e.index);
      notify_network(e.kind, e.index);
      break;
    }
    case EventKind::kAccess: {
      ++counters_.accesses;
      AccessEvent ev;
      ev.time = now_;
      ev.is_read = rng::bernoulli(gen_, spec_.alpha);
      if (ev.is_read) {
        ev.site = read_sites_ ? static_cast<net::SiteId>(read_sites_->sample(gen_))
                              : static_cast<net::SiteId>(rng::uniform_index(
                                    gen_, topo_->site_count()));
      } else {
        ev.site = write_sites_ ? static_cast<net::SiteId>(write_sites_->sample(gen_))
                               : static_cast<net::SiteId>(rng::uniform_index(
                                     gen_, topo_->site_count()));
      }
      QUORA_METRIC_ADD(obs_accesses_, 1);
      QUORA_TRACE(trace_, obs::EventKind::kAccessSubmit, ev.site,
                  counters_.accesses, 0, ev.is_read ? 1 : 0);
      notify_access(ev);
      queue_.push(now_ + rng::exponential(gen_, access_interarrival_),
                  EventKind::kAccess, 0);
      break;
    }
  }
}

} // namespace quora::sim
