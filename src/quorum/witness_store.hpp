#pragma once

#include <cstdint>
#include <vector>

#include "conn/component_tracker.hpp"
#include "net/topology.hpp"
#include "quorum/quorum_spec.hpp"

namespace quora::quorum {

/// Replicated object with *witnesses* (Pâris; the lineage of the paper's
/// reference [17]): some sites hold votes and a version number but **no
/// data**. Witnesses are cheap — no storage, no update bandwidth — yet
/// their votes count toward quorums, raising the probability that a
/// component can act.
///
/// Correctness changes subtly versus `ReplicatedStore`: a component can
/// reach a read quorum *through witnesses* while holding only stale data
/// copies. The witness version numbers make that situation detectable —
/// the read is granted by votes but must then find a data copy carrying
/// the newest version known to the component; otherwise it is refused
/// ("data inaccessible"). One-copy serializability is preserved: a stale
/// value is never returned; the price is paid in availability, which the
/// witness-placement bench quantifies.
class WitnessStore {
public:
  /// `is_witness[s]` marks vote-holding, data-less sites. At least one
  /// site must hold data.
  WitnessStore(const net::Topology& topo, std::vector<bool> is_witness);

  bool is_witness(net::SiteId s) const { return is_witness_.at(s); }
  std::uint32_t data_copy_count() const noexcept { return data_copies_; }

  struct WriteResult {
    bool granted = false;
    std::uint64_t version = 0;
  };

  /// Quorum-checked write: updates data at every non-witness member and
  /// version numbers everywhere in the component.
  WriteResult write(const conn::ComponentTracker& tracker, const QuorumSpec& spec,
                    net::SiteId origin, std::uint64_t value);

  struct ReadResult {
    bool granted = false;         // quorum reached
    bool data_accessible = false; // a copy with the newest known version
    std::uint64_t value = 0;
    std::uint64_t version = 0;
    bool current = false;         // version == globally latest commit
  };

  /// Quorum-checked read. `granted && !data_accessible` is the
  /// witness-specific refusal: enough votes, but every current copy is
  /// outside the component.
  ReadResult read(const conn::ComponentTracker& tracker, const QuorumSpec& spec,
                  net::SiteId origin) const;

  std::uint64_t committed_version() const noexcept { return committed_version_; }

private:
  const net::Topology* topo_;
  std::vector<bool> is_witness_;
  std::uint32_t data_copies_ = 0;
  std::vector<std::uint64_t> version_;  // all sites
  std::vector<std::uint64_t> value_;    // meaningful at data sites only
  std::uint64_t committed_version_ = 0;
};

/// Vote assignment and witness mask for "replace the `witnesses` lowest-
/// degree sites' data with witnesses" — the placement heuristic used by
/// the bench (witnesses are cheapest where data would be least useful).
std::vector<bool> witness_mask_lowest_degree(const net::Topology& topo,
                                             std::uint32_t witnesses);

} // namespace quora::quorum
