#pragma once

#include <cstdint>

#include "net/types.hpp"

namespace quora::quorum {

/// A quorum assignment (q_r, q_w) for a system with T total votes
/// (Gifford's weighted voting, paper §2.1).
///
/// Consistency requires
///   1. q_r + q_w > T   (reads see the most recent write), and
///   2. q_w > T/2       (writes see the most recent write; no two
///                       simultaneous writes).
struct QuorumSpec {
  net::Vote q_r = 0;
  net::Vote q_w = 0;

  friend bool operator==(const QuorumSpec&, const QuorumSpec&) = default;

  /// Both consistency conditions against total votes T, plus basic range
  /// sanity (quorums positive and at most T).
  bool valid(net::Vote total) const noexcept {
    return q_r >= 1 && q_w >= 1 && q_r <= total && q_w <= total &&
           q_r + q_w > total && 2 * q_w > total;
  }

  bool allows_read(net::Vote votes_collected) const noexcept {
    return votes_collected >= q_r;
  }
  bool allows_write(net::Vote votes_collected) const noexcept {
    return votes_collected >= q_w;
  }
};

/// The paper's canonical parameterization: q_r is the free variable in
/// [1, floor(T/2)] and q_w = T - q_r + 1 saturates condition 1.
QuorumSpec from_read_quorum(net::Vote total, net::Vote q_r);

/// Majority consensus (Thomas 1979): every access needs a strict majority,
/// q_r = q_w = floor(T/2) + 1. (The paper's §2.1 equivalence
/// "q_r = floor(T/2), q_w = floor(T/2)+1" satisfies condition 1 only for
/// even T — for odd T those quorums sum to exactly T and two disjoint
/// components could hold them simultaneously — so the factory returns the
/// always-valid strict-majority form.)
QuorumSpec majority(net::Vote total);

/// Read-one/write-all: q_r = 1, q_w = T.
QuorumSpec read_one_write_all(net::Vote total);

/// Largest valid read quorum for T total votes: floor(T/2). Requiring more
/// than T/2 votes for reads is never useful (paper §2.1).
net::Vote max_read_quorum(net::Vote total);

} // namespace quora::quorum
