#pragma once

#include <cstdint>
#include <vector>

#include "conn/component_tracker.hpp"
#include "net/topology.hpp"
#include "quorum/quorum_spec.hpp"

namespace quora::quorum {

/// A single replicated data object with one copy per site, each carrying a
/// value and a version number.
///
/// This is the substrate on which one-copy serializability is *checked*
/// rather than assumed: a granted write installs a new version at every
/// site of the writer's component; a granted read returns the
/// highest-version copy in the reader's component and reports whether that
/// version is the globally most recent committed one. Under a valid
/// quorum assignment (q_r + q_w > T, q_w > T/2) `ReadResult::current` must
/// always be true — the test suite asserts this over long random
/// fail/recover histories.
class ReplicatedStore {
public:
  explicit ReplicatedStore(const net::Topology& topo);

  struct WriteResult {
    bool granted = false;
    std::uint64_t version = 0;  // version installed (when granted)
  };

  struct ReadResult {
    bool granted = false;
    std::uint64_t value = 0;
    std::uint64_t version = 0;
    bool current = false;  // version == latest committed version
  };

  /// Attempt a write of `value` from `origin` under `spec`.
  WriteResult write(const conn::ComponentTracker& tracker, const QuorumSpec& spec,
                    net::SiteId origin, std::uint64_t value);

  /// Attempt a read from `origin` under `spec`.
  ReadResult read(const conn::ComponentTracker& tracker, const QuorumSpec& spec,
                  net::SiteId origin) const;

  /// Copy the highest-version replica in origin's component onto every
  /// member — the data synchronization that must accompany a quorum
  /// reassignment install (see core::install_and_sync). No quorum check
  /// is made here; callers gate the operation. No-op for a down origin.
  void refresh_component(const conn::ComponentTracker& tracker, net::SiteId origin);

  std::uint64_t committed_version() const noexcept { return committed_version_; }

  struct Copy {
    std::uint64_t value = 0;
    std::uint64_t version = 0;
  };
  const Copy& copy_at(net::SiteId s) const { return copies_.at(s); }

private:
  const net::Topology* topo_;
  std::vector<Copy> copies_;
  std::uint64_t committed_version_ = 0;
};

} // namespace quora::quorum
