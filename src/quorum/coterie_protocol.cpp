#include "quorum/coterie_protocol.hpp"

#include <stdexcept>

#include "core/contracts.hpp"

namespace quora::quorum {

CoterieProtocol::CoterieProtocol(const net::Topology& topo, Coterie read,
                                 Coterie write)
    : topo_(&topo), read_(std::move(read)), write_(std::move(write)) {
  if (topo.site_count() > 64) {
    throw std::invalid_argument("CoterieProtocol: more than 64 sites");
  }
  if (!bicoterie_consistent(read_, write_)) {
    throw std::invalid_argument("CoterieProtocol: inconsistent bicoterie");
  }
}

SiteSet CoterieProtocol::component_set(const conn::ComponentTracker& tracker,
                                       net::SiteId origin) const {
  const std::int32_t comp = tracker.component_of(origin);
  if (comp == conn::kNoComponent) return 0;
  // The coterie universe is capped at 64 sites (ctor), so the tracker's
  // packed membership words are exactly one SiteSet — no per-member loop.
  const SiteSet set = tracker.member_words(comp).front();
  QUORA_INVARIANT(static_cast<std::uint32_t>(popcount(set)) ==
                      tracker.component_size(origin),
                  "component bitmask must contain exactly the tracked members");
  return set;
}

Decision CoterieProtocol::request(const conn::ComponentTracker& tracker,
                                  net::SiteId origin, AccessType type) const {
  Decision d;
  const SiteSet available = component_set(tracker, origin);
  d.votes_collected = static_cast<net::Vote>(popcount(available));
  const Coterie& coterie = type == AccessType::kRead ? read_ : write_;
  d.granted = coterie.can_operate(available);
  return d;
}

CoterieProtocol make_vote_coterie_protocol(const net::Topology& topo,
                                           const QuorumSpec& spec) {
  if (!spec.valid(topo.total_votes())) {
    throw std::invalid_argument("make_vote_coterie_protocol: invalid spec");
  }
  return CoterieProtocol(
      topo, coterie_from_votes(topo.vote_assignment(), spec.q_r),
      coterie_from_votes(topo.vote_assignment(), spec.q_w));
}

} // namespace quora::quorum
