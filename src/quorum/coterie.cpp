#include "quorum/coterie.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/contracts.hpp"

namespace quora::quorum {

Coterie::Coterie(std::vector<SiteSet> quorums) : quorums_(std::move(quorums)) {
  std::sort(quorums_.begin(), quorums_.end());
  quorums_.erase(std::unique(quorums_.begin(), quorums_.end()), quorums_.end());
}

bool Coterie::has_intersection_property() const {
  for (std::size_t i = 0; i < quorums_.size(); ++i) {
    for (std::size_t j = i + 1; j < quorums_.size(); ++j) {
      if (!intersects(quorums_[i], quorums_[j])) return false;
    }
  }
  return true;
}

bool Coterie::is_minimal() const {
  for (std::size_t i = 0; i < quorums_.size(); ++i) {
    for (std::size_t j = 0; j < quorums_.size(); ++j) {
      if (i != j && subset_of(quorums_[i], quorums_[j])) return false;
    }
  }
  return true;
}

bool Coterie::is_coterie() const {
  if (quorums_.empty()) return false;
  if (std::any_of(quorums_.begin(), quorums_.end(),
                  [](SiteSet q) { return q == 0; })) {
    return false;
  }
  return has_intersection_property() && is_minimal();
}

bool Coterie::can_operate(SiteSet available) const {
  return std::any_of(quorums_.begin(), quorums_.end(),
                     [available](SiteSet q) { return subset_of(q, available); });
}

bool Coterie::dominates(const Coterie& other) const {
  if (*this == other) return false;
  return std::all_of(other.quorums_.begin(), other.quorums_.end(),
                     [this](SiteSet d) {
                       return std::any_of(
                           quorums_.begin(), quorums_.end(),
                           [d](SiteSet c) { return subset_of(c, d); });
                     });
}

Coterie coterie_from_votes(std::span<const net::Vote> votes, net::Vote threshold) {
  const std::size_t n = votes.size();
  if (n > 24) {
    throw std::invalid_argument("coterie_from_votes: too many sites (max 24)");
  }
  if (threshold == 0) throw std::invalid_argument("coterie_from_votes: zero threshold");

  std::vector<SiteSet> groups;
  const SiteSet limit = SiteSet{1} << n;
  for (SiteSet mask = 1; mask < limit; ++mask) {
    net::Vote sum = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (SiteSet{1} << i)) sum += votes[i];
    }
    if (sum < threshold) continue;
    // Minimal iff dropping any single member falls below the threshold.
    bool minimal = true;
    for (std::size_t i = 0; i < n && minimal; ++i) {
      if ((mask & (SiteSet{1} << i)) && sum - votes[i] >= threshold) minimal = false;
    }
    if (minimal) groups.push_back(mask);
  }
  Coterie result(std::move(groups));
  // Vote groups at a common threshold are minimal by construction; pairwise
  // intersection additionally holds whenever the threshold is a write-style
  // majority (2*threshold > T). Both checks are O(k^2), so they are guarded
  // for the huge families near threshold = T/2.
  if constexpr (contracts::kActive) {
    if (result.quorums().size() < 512) {
      QUORA_INVARIANT(result.is_minimal(),
                      "coterie_from_votes produced a non-minimal family");
      net::Vote total = 0;
      for (const net::Vote v : votes) total += v;
      QUORA_INVARIANT(2 * threshold <= total ||
                          result.has_intersection_property(),
                      "majority-threshold vote groups must pairwise intersect");
    }
  }
  return result;
}

namespace {

/// Recursive tree-quorum enumeration for the subtree rooted at `node`
/// within a heap-numbered complete binary tree of `n` sites.
std::vector<SiteSet> tree_quorums(std::uint32_t node, std::uint32_t n) {
  const std::uint32_t left = 2 * node + 1;
  const std::uint32_t right = 2 * node + 2;
  const SiteSet self = SiteSet{1} << node;
  if (left >= n) return {self};  // leaf

  const std::vector<SiteSet> l = tree_quorums(left, n);
  const std::vector<SiteSet> r = tree_quorums(right, n);
  std::vector<SiteSet> out;
  // Root plus a quorum of one child subtree...
  for (const SiteSet q : l) out.push_back(self | q);
  for (const SiteSet q : r) out.push_back(self | q);
  // ...or quorums of both subtrees (root may be down).
  for (const SiteSet a : l) {
    for (const SiteSet b : r) out.push_back(a | b);
  }
  return out;
}

/// Drops supersets so the family is minimal.
std::vector<SiteSet> minimize(std::vector<SiteSet> groups) {
  std::vector<SiteSet> minimal;
  for (const SiteSet g : groups) {
    bool dominated = false;
    for (const SiteSet other : groups) {
      if (other != g && subset_of(other, g)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) minimal.push_back(g);
  }
  return minimal;
}

} // namespace

Coterie tree_coterie(std::uint32_t depth) {
  if (depth < 1 || depth > 4) {
    throw std::invalid_argument("tree_coterie: depth must be in [1, 4]");
  }
  const std::uint32_t n = (1u << depth) - 1;
  Coterie result(minimize(tree_quorums(0, n)));
  QUORA_INVARIANT(result.is_coterie(),
                  "tree quorums must form a coterie after minimization");
  return result;
}

GridBicoterie grid_bicoterie(std::uint32_t rows, std::uint32_t cols) {
  if (rows == 0 || cols == 0 || rows * cols > 64) {
    throw std::invalid_argument("grid_bicoterie: grid must fit in 64 sites");
  }
  // Column covers: one site from each column -> rows^cols groups.
  double cover_count = 1.0;
  for (std::uint32_t c = 0; c < cols; ++c) cover_count *= rows;
  if (cover_count > 4096.0) {
    throw std::invalid_argument("grid_bicoterie: too many cover groups");
  }
  const auto site = [cols](std::uint32_t r, std::uint32_t c) {
    return SiteSet{1} << (r * cols + c);
  };

  std::vector<SiteSet> covers;
  std::vector<std::uint32_t> pick(cols, 0);
  for (;;) {
    SiteSet s = 0;
    for (std::uint32_t c = 0; c < cols; ++c) s |= site(pick[c], c);
    covers.push_back(s);
    std::uint32_t c = 0;
    while (c < cols) {
      if (++pick[c] < rows) break;
      pick[c] = 0;
      ++c;
    }
    if (c == cols) break;
  }

  std::vector<SiteSet> writes;
  for (std::uint32_t full = 0; full < cols; ++full) {
    SiteSet column = 0;
    for (std::uint32_t r = 0; r < rows; ++r) column |= site(r, full);
    for (const SiteSet cover : covers) writes.push_back(column | cover);
  }

  GridBicoterie grid{Coterie(minimize(covers)), Coterie(minimize(writes))};
  // The set-system form of §2.1's conditions: every read cover meets every
  // write group, and write groups pairwise intersect. O(k^2) — guard the
  // largest grids.
  if constexpr (contracts::kActive) {
    if (grid.read.quorums().size() * grid.write.quorums().size() < 1u << 18) {
      QUORA_INVARIANT(bicoterie_consistent(grid.read, grid.write),
                      "grid read/write bicoterie lost consistency");
    }
  }
  return grid;
}

bool bicoterie_consistent(const Coterie& read, const Coterie& write) {
  if (write.quorums().empty()) return false;
  if (!write.has_intersection_property()) return false;
  for (const SiteSet r : read.quorums()) {
    for (const SiteSet w : write.quorums()) {
      if (!intersects(r, w)) return false;
    }
  }
  return true;
}

} // namespace quora::quorum
