#include "quorum/witness_store.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace quora::quorum {

WitnessStore::WitnessStore(const net::Topology& topo, std::vector<bool> is_witness)
    : topo_(&topo),
      is_witness_(std::move(is_witness)),
      version_(topo.site_count(), 0),
      value_(topo.site_count(), 0) {
  if (is_witness_.size() != topo.site_count()) {
    throw std::invalid_argument("WitnessStore: witness mask size mismatch");
  }
  for (net::SiteId s = 0; s < topo.site_count(); ++s) {
    if (!is_witness_[s]) ++data_copies_;
  }
  if (data_copies_ == 0) {
    throw std::invalid_argument("WitnessStore: at least one data copy required");
  }
}

WitnessStore::WriteResult WitnessStore::write(const conn::ComponentTracker& tracker,
                                              const QuorumSpec& spec,
                                              net::SiteId origin,
                                              std::uint64_t value) {
  WriteResult result;
  const net::Vote votes = tracker.component_votes(origin);
  if (!spec.allows_write(votes)) return result;

  // A write must land on at least one data copy, or the value would be
  // stored nowhere (witnesses cannot hold it).
  const std::int32_t comp = tracker.component_of(origin);
  const auto members = tracker.members(comp);
  const bool any_data = std::any_of(members.begin(), members.end(),
                                    [&](net::SiteId s) { return !is_witness_[s]; });
  if (!any_data) return result;

  result.granted = true;
  result.version = ++committed_version_;
  for (const net::SiteId s : members) {
    version_[s] = result.version;
    if (!is_witness_[s]) value_[s] = value;
  }
  return result;
}

WitnessStore::ReadResult WitnessStore::read(const conn::ComponentTracker& tracker,
                                            const QuorumSpec& spec,
                                            net::SiteId origin) const {
  ReadResult result;
  const net::Vote votes = tracker.component_votes(origin);
  if (!spec.allows_read(votes)) return result;
  result.granted = true;

  const std::int32_t comp = tracker.component_of(origin);
  std::uint64_t newest = 0;
  for (const net::SiteId s : tracker.members(comp)) {
    newest = std::max(newest, version_[s]);
  }
  for (const net::SiteId s : tracker.members(comp)) {
    if (!is_witness_[s] && version_[s] == newest) {
      result.data_accessible = true;
      result.value = value_[s];
      result.version = newest;
      break;
    }
  }
  // granted && !data_accessible: votes sufficed but every copy carrying
  // the newest known version is a witness — refuse rather than serve a
  // possibly stale copy.
  result.current = result.data_accessible && newest == committed_version_;
  return result;
}

std::vector<bool> witness_mask_lowest_degree(const net::Topology& topo,
                                             std::uint32_t witnesses) {
  if (witnesses >= topo.site_count()) {
    throw std::invalid_argument(
        "witness_mask_lowest_degree: need at least one data copy");
  }
  std::vector<net::SiteId> order(topo.site_count());
  std::iota(order.begin(), order.end(), net::SiteId{0});
  std::stable_sort(order.begin(), order.end(), [&](net::SiteId a, net::SiteId b) {
    return topo.degree(a) < topo.degree(b);
  });
  std::vector<bool> mask(topo.site_count(), false);
  for (std::uint32_t i = 0; i < witnesses; ++i) mask[order[i]] = true;
  return mask;
}

} // namespace quora::quorum
