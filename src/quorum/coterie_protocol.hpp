#pragma once

#include "conn/component_tracker.hpp"
#include "net/topology.hpp"
#include "quorum/coterie.hpp"
#include "quorum/protocols.hpp"

namespace quora::quorum {

/// Consistency control driven directly by a read/write bicoterie rather
/// than votes — the strictly more general mechanism of Garcia-Molina &
/// Barbara that the paper's footnote 1 points to. An access is granted
/// iff some quorum group of the relevant coterie lies entirely inside the
/// submitting site's component.
///
/// Vote-derived coteries reproduce `QuorumConsensus` decisions exactly
/// (asserted by the test suite); non-vote coteries (e.g. tree quorums,
/// grids) express protocols weighted voting cannot.
///
/// Site count is limited to 64 (bitmask representation).
class CoterieProtocol {
public:
  /// Validates `bicoterie_consistent(read, write)` and the site-count
  /// limit; throws std::invalid_argument otherwise.
  CoterieProtocol(const net::Topology& topo, Coterie read, Coterie write);

  /// Decision for an access at `origin`. `Decision::votes_collected`
  /// reports the component's up-site count (there are no votes here).
  Decision request(const conn::ComponentTracker& tracker, net::SiteId origin,
                   AccessType type) const;

  const Coterie& read_coterie() const noexcept { return read_; }
  const Coterie& write_coterie() const noexcept { return write_; }

  /// The up-members of origin's component as a bitmask (0 if origin is
  /// down) — the "available" set the coteries are tested against.
  SiteSet component_set(const conn::ComponentTracker& tracker,
                        net::SiteId origin) const;

private:
  const net::Topology* topo_;
  Coterie read_;
  Coterie write_;
};

/// The bicoterie induced by a vote assignment and quorum pair: minimal
/// site groups whose votes reach q_r (reads) and q_w (writes).
CoterieProtocol make_vote_coterie_protocol(const net::Topology& topo,
                                           const QuorumSpec& spec);

} // namespace quora::quorum
