#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/types.hpp"

namespace quora::quorum {

/// A set of sites as a bitmask; the coterie machinery is an analysis tool
/// for systems of at most 64 sites (paper footnote 1 credits coteries,
/// Garcia-Molina & Barbara JACM 1985, as the general mechanism subsuming
/// vote/quorum assignments).
using SiteSet = std::uint64_t;

inline bool subset_of(SiteSet a, SiteSet b) noexcept { return (a & ~b) == 0; }
inline bool intersects(SiteSet a, SiteSet b) noexcept { return (a & b) != 0; }
inline int popcount(SiteSet s) noexcept { return __builtin_popcountll(s); }

/// A coterie: a family of pairwise-intersecting, minimal site groups.
class Coterie {
public:
  Coterie() = default;

  /// Sorts and deduplicates; does not validate — use `is_coterie()`.
  explicit Coterie(std::vector<SiteSet> quorums);

  std::span<const SiteSet> quorums() const noexcept { return quorums_; }
  bool empty() const noexcept { return quorums_.empty(); }

  /// Every pair of quorums intersects.
  bool has_intersection_property() const;

  /// No quorum contains another.
  bool is_minimal() const;

  /// Non-empty, no empty quorum, intersection property and minimality —
  /// the full Garcia-Molina & Barbara definition.
  bool is_coterie() const;

  /// True iff some quorum is contained in `available` — i.e. the group of
  /// currently reachable sites can act.
  bool can_operate(SiteSet available) const;

  /// Garcia-Molina & Barbara domination: C dominates D iff C != D and
  /// every quorum of D contains some quorum of C (so C can operate
  /// whenever D can, and strictly more often).
  bool dominates(const Coterie& other) const;

  friend bool operator==(const Coterie&, const Coterie&) = default;

private:
  std::vector<SiteSet> quorums_;
};

/// All minimal vote-quorum groups: subsets whose votes reach `threshold`
/// and which are minimal with that property. Throws for more than 24
/// sites (the enumeration is exponential by nature — the paper cites this
/// as the reason exhaustive coterie search stops at ~7 sites).
Coterie coterie_from_votes(std::span<const net::Vote> votes, net::Vote threshold);

/// A read/write bicoterie is consistent iff every read group intersects
/// every write group and write groups pairwise intersect — the set-system
/// form of conditions 1 and 2 of §2.1.
bool bicoterie_consistent(const Coterie& read, const Coterie& write);

/// --- Classic non-vote coteries ----------------------------------------
/// Garcia-Molina & Barbara prove vote assignments generate only a strict
/// subset of coteries; these two classics live outside it (for most
/// sizes), demonstrating what the general mechanism buys.

/// Tree quorums (Agrawal & El Abbadi): over a complete binary tree of
/// n = 2^depth - 1 sites (heap numbering: root 0, children 2i+1, 2i+2), a
/// quorum is — recursively — the root plus a quorum of ONE child subtree,
/// or quorums of BOTH child subtrees (tolerating a dead root). Leaves:
/// the leaf itself. Quorum sizes range from depth (root-to-leaf path,
/// all-up case) to about n/2. Throws for depth outside [1, 4].
Coterie tree_coterie(std::uint32_t depth);

/// Grid bicoterie (Cheung, Ammar & Ahamad): sites arranged rows x cols
/// (site = r*cols + c). A read quorum covers every column with one site;
/// a write quorum is one full column plus a cover of the others. Reads
/// cost cols sites, writes rows + cols - 1 — both o(n). Throws when the
/// grid exceeds 64 sites or 4096 generated groups.
struct GridBicoterie {
  Coterie read;
  Coterie write;
};
GridBicoterie grid_bicoterie(std::uint32_t rows, std::uint32_t cols);

} // namespace quora::quorum
