#include "quorum/protocols.hpp"

#include <stdexcept>

namespace quora::quorum {

QuorumConsensus::QuorumConsensus(const net::Topology& topo, QuorumSpec spec)
    : topo_(&topo), spec_(spec), total_(topo.total_votes()) {
  if (!spec_.valid(total_)) {
    throw std::invalid_argument("QuorumConsensus: invalid quorum assignment");
  }
}

Decision QuorumConsensus::request(const conn::ComponentTracker& tracker,
                                  net::SiteId origin, AccessType type) const {
  Decision d;
  d.votes_collected = tracker.component_votes(origin);
  d.granted = type == AccessType::kRead ? spec_.allows_read(d.votes_collected)
                                        : spec_.allows_write(d.votes_collected);
  return d;
}

void QuorumConsensus::set_spec(QuorumSpec spec) {
  if (!spec.valid(total_)) {
    throw std::invalid_argument("QuorumConsensus::set_spec: invalid assignment");
  }
  spec_ = spec;
}

std::vector<net::Vote> primary_copy_votes(std::uint32_t site_count,
                                          net::SiteId primary) {
  if (primary >= site_count) {
    throw std::invalid_argument("primary_copy_votes: primary out of range");
  }
  std::vector<net::Vote> votes(site_count, 0);
  votes[primary] = 1;
  return votes;
}

} // namespace quora::quorum
