#pragma once

#include <string>
#include <vector>

#include "conn/component_tracker.hpp"
#include "net/topology.hpp"
#include "quorum/quorum_spec.hpp"

namespace quora::quorum {

enum class AccessType : std::uint8_t { kRead, kWrite };

/// Outcome of one access request under quorum consensus.
struct Decision {
  bool granted = false;
  net::Vote votes_collected = 0;
};

/// The static quorum consensus protocol (§2.1): an access submitted at a
/// site collects the votes of every site in its current component and is
/// granted iff they meet the relevant quorum. A down origin site collects
/// zero votes and is always denied.
class QuorumConsensus {
public:
  QuorumConsensus(const net::Topology& topo, QuorumSpec spec);

  Decision request(const conn::ComponentTracker& tracker, net::SiteId origin,
                   AccessType type) const;

  const QuorumSpec& spec() const noexcept { return spec_; }
  net::Vote total_votes() const noexcept { return total_; }

  /// Install a new assignment (used by the dynamic reassignment driver;
  /// validates against T).
  void set_spec(QuorumSpec spec);

private:
  const net::Topology* topo_;
  QuorumSpec spec_;
  net::Vote total_;
};

/// Vote vector realizing the primary copy protocol (§2.1): all votes at
/// `primary`, so with q_r = q_w = 1 accesses succeed exactly in the
/// component containing the primary site.
std::vector<net::Vote> primary_copy_votes(std::uint32_t site_count,
                                          net::SiteId primary);

} // namespace quora::quorum
