#include "quorum/replicated_store.hpp"

namespace quora::quorum {

ReplicatedStore::ReplicatedStore(const net::Topology& topo)
    : topo_(&topo), copies_(topo.site_count()) {}

ReplicatedStore::WriteResult ReplicatedStore::write(
    const conn::ComponentTracker& tracker, const QuorumSpec& spec,
    net::SiteId origin, std::uint64_t value) {
  WriteResult result;
  const net::Vote votes = tracker.component_votes(origin);
  if (!spec.allows_write(votes)) return result;

  result.granted = true;
  result.version = ++committed_version_;
  const std::int32_t comp = tracker.component_of(origin);
  for (const net::SiteId s : tracker.members(comp)) {
    copies_[s] = Copy{value, result.version};
  }
  return result;
}

void ReplicatedStore::refresh_component(const conn::ComponentTracker& tracker,
                                        net::SiteId origin) {
  const std::int32_t comp = tracker.component_of(origin);
  if (comp == conn::kNoComponent) return;
  const auto members = tracker.members(comp);
  Copy best = copies_[members.front()];
  for (const net::SiteId s : members) {
    if (copies_[s].version > best.version) best = copies_[s];
  }
  for (const net::SiteId s : members) copies_[s] = best;
}

ReplicatedStore::ReadResult ReplicatedStore::read(
    const conn::ComponentTracker& tracker, const QuorumSpec& spec,
    net::SiteId origin) const {
  ReadResult result;
  const net::Vote votes = tracker.component_votes(origin);
  if (!spec.allows_read(votes)) return result;

  result.granted = true;
  const std::int32_t comp = tracker.component_of(origin);
  for (const net::SiteId s : tracker.members(comp)) {
    if (copies_[s].version >= result.version) {
      result.version = copies_[s].version;
      result.value = copies_[s].value;
    }
  }
  result.current = result.version == committed_version_;
  return result;
}

} // namespace quora::quorum
