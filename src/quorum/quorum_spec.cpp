#include "quorum/quorum_spec.hpp"

#include <stdexcept>

namespace quora::quorum {

QuorumSpec from_read_quorum(net::Vote total, net::Vote q_r) {
  if (total == 0) throw std::invalid_argument("from_read_quorum: zero total votes");
  if (q_r < 1 || q_r > max_read_quorum(total)) {
    throw std::invalid_argument("from_read_quorum: q_r outside [1, floor(T/2)]");
  }
  return QuorumSpec{q_r, total - q_r + 1};
}

QuorumSpec majority(net::Vote total) {
  if (total < 2) throw std::invalid_argument("majority: need at least 2 votes");
  return QuorumSpec{total / 2 + 1, total / 2 + 1};
}

QuorumSpec read_one_write_all(net::Vote total) {
  if (total == 0) throw std::invalid_argument("read_one_write_all: zero total votes");
  return QuorumSpec{1, total};
}

net::Vote max_read_quorum(net::Vote total) { return total / 2; }

} // namespace quora::quorum
