#include "quorum/quorum_spec.hpp"

#include <stdexcept>

#include "core/contracts.hpp"

namespace quora::quorum {

QuorumSpec from_read_quorum(net::Vote total, net::Vote q_r) {
  if (total == 0) throw std::invalid_argument("from_read_quorum: zero total votes");
  if (q_r < 1 || q_r > max_read_quorum(total)) {
    throw std::invalid_argument("from_read_quorum: q_r outside [1, floor(T/2)]");
  }
  const QuorumSpec spec{q_r, total - q_r + 1};
  QUORA_INVARIANT(spec.valid(total),
                  "canonical q_w = T - q_r + 1 must satisfy both consistency "
                  "conditions for q_r in [1, floor(T/2)]");
  return spec;
}

QuorumSpec majority(net::Vote total) {
  if (total < 2) throw std::invalid_argument("majority: need at least 2 votes");
  const QuorumSpec spec{total / 2 + 1, total / 2 + 1};
  QUORA_INVARIANT(spec.valid(total),
                  "strict-majority quorums must intersect for any T >= 2");
  return spec;
}

QuorumSpec read_one_write_all(net::Vote total) {
  if (total == 0) throw std::invalid_argument("read_one_write_all: zero total votes");
  return QuorumSpec{1, total};
}

net::Vote max_read_quorum(net::Vote total) { return total / 2; }

} // namespace quora::quorum
