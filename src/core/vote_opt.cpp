#include "core/vote_opt.hpp"

#include <cmath>
#include <stdexcept>

#include "core/component_dist.hpp"

namespace quora::core {

VotePdf ahamad_ammar_site_pdf(std::uint32_t n, double p) {
  return fully_connected_site_pdf(n, p, 1.0);
}

double exact_availability(std::span<const double> site_reliability,
                          std::span<const net::Vote> votes, double alpha,
                          const quorum::QuorumSpec& spec) {
  const std::size_t n = site_reliability.size();
  if (n == 0 || n > 20) {
    throw std::invalid_argument("exact_availability: need 1..20 sites");
  }
  if (votes.size() != n) {
    throw std::invalid_argument("exact_availability: votes size mismatch");
  }
  if (!(alpha >= 0.0 && alpha <= 1.0)) {
    throw std::invalid_argument("exact_availability: alpha outside [0,1]");
  }
  for (const double p : site_reliability) {
    if (!(p >= 0.0 && p <= 1.0)) {
      throw std::invalid_argument("exact_availability: reliability outside [0,1]");
    }
  }

  // Sum over all up-sets S: P(S) * (|S|/n) * [alpha*1{v(S)>=q_r} +
  // (1-alpha)*1{v(S)>=q_w}]. The |S|/n factor is the probability the
  // access originates at an up site (uniform access; down origins fail).
  long double total = 0.0L;
  const std::uint32_t limit = 1u << n;
  for (std::uint32_t mask = 0; mask < limit; ++mask) {
    long double prob = 1.0L;
    net::Vote vote_sum = 0;
    std::uint32_t up = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) {
        prob *= site_reliability[i];
        vote_sum += votes[i];
        ++up;
      } else {
        prob *= 1.0L - static_cast<long double>(site_reliability[i]);
      }
    }
    if (prob == 0.0L || up == 0) continue;
    const long double origin_up =
        static_cast<long double>(up) / static_cast<long double>(n);
    const long double reads = spec.allows_read(vote_sum) ? alpha : 0.0;
    const long double writes = spec.allows_write(vote_sum) ? 1.0 - alpha : 0.0;
    total += prob * origin_up * (reads + writes);
  }
  return static_cast<double>(total);
}

VoteOptResult optimize_vote_assignment(std::span<const double> site_reliability,
                                       double alpha, net::Vote max_votes_per_site) {
  const std::size_t n = site_reliability.size();
  if (n == 0 || n > 8) {
    throw std::invalid_argument("optimize_vote_assignment: need 1..8 sites");
  }
  if (max_votes_per_site == 0 || max_votes_per_site > 8) {
    throw std::invalid_argument(
        "optimize_vote_assignment: max_votes_per_site in 1..8");
  }

  VoteOptResult best;
  net::Vote best_total = 0;
  std::vector<net::Vote> votes(n, 0);

  const auto consider = [&](const quorum::QuorumSpec& spec, net::Vote total) {
    const double a = exact_availability(site_reliability, votes, alpha, spec);
    ++best.configurations_evaluated;
    const bool first = best.votes.empty();
    const bool strictly_better = a > best.availability + 1e-15;
    const bool tie_fewer_votes =
        std::abs(a - best.availability) <= 1e-15 && total < best_total;
    if (first || strictly_better || tie_fewer_votes) {
      best.votes.assign(votes.begin(), votes.end());
      best.spec = spec;
      best.availability = a;
      best_total = total;
    }
  };

  // Odometer over all (max+1)^n vote vectors.
  for (;;) {
    net::Vote total = 0;
    for (const net::Vote v : votes) total += v;
    if (total == 1) {
      consider(quorum::QuorumSpec{1, 1}, total);  // the only valid pair
    } else if (total >= 2) {
      // The non-dominated frontier is q_r + q_w = T + 1 with q_w > T/2;
      // sweeping q_w covers the strict-majority point (q_r = q_w =
      // (T+1)/2 for odd T) that the paper's q_r <= floor(T/2) plotting
      // range stops just short of.
      for (net::Vote q_w = total / 2 + 1; q_w <= total; ++q_w) {
        consider(quorum::QuorumSpec{total - q_w + 1, q_w}, total);
      }
    }
    // Advance the odometer.
    std::size_t i = 0;
    while (i < n) {
      if (votes[i] < max_votes_per_site) {
        ++votes[i];
        break;
      }
      votes[i] = 0;
      ++i;
    }
    if (i == n) break;
  }
  return best;
}

} // namespace quora::core
