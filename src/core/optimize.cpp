#include "core/optimize.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

#include "core/contracts.hpp"

namespace quora::core {
namespace {

/// Memoizing objective over the integer lattice [1, floor(T/2)].
class Evaluator {
public:
  Evaluator(const AvailabilityCurve& curve, std::function<double(net::Vote)> objective)
      : curve_(&curve),
        objective_(std::move(objective)),
        cache_(curve.max_read_quorum() + 1, kUnset) {}

  double at(net::Vote q) {
    QUORA_PRECONDITION(q >= 1 && q <= max_q(),
                       "optimizers may only probe q_r in [1, floor(T/2)]");
    double& slot = cache_.at(q);
    if (slot == kUnset) {
      slot = objective_(q);
      ++evaluations_;
    }
    return slot;
  }

  /// Linear interpolation between lattice points, for Brent.
  double at_continuous(double x) {
    const double lo = std::floor(x);
    const double hi = std::ceil(x);
    const auto qlo = static_cast<net::Vote>(lo);
    if (lo == hi) return at(qlo);
    const double t = x - lo;
    return (1.0 - t) * at(qlo) + t * at(static_cast<net::Vote>(hi));
  }

  net::Vote max_q() const { return curve_->max_read_quorum(); }
  std::uint32_t evaluations() const { return evaluations_; }

  OptResult result(net::Vote best_q) {
    OptResult r;
    r.spec = quorum::from_read_quorum(curve_->total_votes(), best_q);
    r.value = at(best_q);
    r.evaluations = evaluations_;
    // The Figure-1 search must hand back an assignment the protocol can
    // actually run: canonical (q_w saturates condition 1) and intersecting.
    QUORA_INVARIANT(r.spec.valid(curve_->total_votes()),
                    "optimizer returned a non-intersecting assignment");
    QUORA_INVARIANT(r.spec.q_w == curve_->total_votes() - r.spec.q_r + 1,
                    "optimizer left the canonical q_w = T - q_r + 1 family");
    return r;
  }

private:
  static constexpr double kUnset = -1.0;  // objectives are probabilities >= 0

  const AvailabilityCurve* curve_;
  std::function<double(net::Vote)> objective_;
  std::vector<double> cache_;
  std::uint32_t evaluations_ = 0;
};

net::Vote argmax_range(Evaluator& eval, net::Vote lo, net::Vote hi) {
  net::Vote best = lo;
  for (net::Vote q = lo; q <= hi; ++q) {
    if (eval.at(q) > eval.at(best)) best = q;
  }
  return best;
}

OptResult run_exhaustive(Evaluator eval) {
  const net::Vote best = argmax_range(eval, 1, eval.max_q());
  return eval.result(best);
}

OptResult run_golden(Evaluator eval) {
  constexpr double kInvPhi = 0.6180339887498949;
  net::Vote best = 1;
  const net::Vote hi = eval.max_q();
  if (eval.at(hi) > eval.at(best)) best = hi;  // endpoints first (§5.3)

  double a = 1.0;
  double b = static_cast<double>(hi);
  while (b - a > 3.0) {
    const auto x1 = static_cast<net::Vote>(std::lround(b - (b - a) * kInvPhi));
    const auto x2 = static_cast<net::Vote>(std::lround(a + (b - a) * kInvPhi));
    const net::Vote lo_probe = std::min(x1, x2);
    const net::Vote hi_probe = std::max(x1, x2);
    if (eval.at(lo_probe) > eval.at(best)) best = lo_probe;
    if (eval.at(hi_probe) > eval.at(best)) best = hi_probe;
    if (eval.at(lo_probe) >= eval.at(hi_probe)) {
      b = static_cast<double>(hi_probe);
    } else {
      a = static_cast<double>(lo_probe);
    }
  }
  const net::Vote final_best = argmax_range(eval, static_cast<net::Vote>(a),
                                            static_cast<net::Vote>(b));
  if (eval.at(final_best) > eval.at(best)) best = final_best;
  return eval.result(best);
}

OptResult run_brent(Evaluator eval) {
  // Brent's minimization of -f over [1, max_q] on the piecewise-linear
  // extension; bookkeeping follows Numerical Recipes BRENT.
  constexpr double kCGold = 0.3819660112501051;
  constexpr double kTol = 1e-4;
  constexpr int kMaxIter = 100;

  const double a0 = 1.0;
  const double b0 = static_cast<double>(eval.max_q());
  double a = a0;
  double b = b0;
  double x = a + kCGold * (b - a);
  double w = x;
  double v = x;
  double fx = -eval.at_continuous(x);
  double fw = fx;
  double fv = fx;
  double d = 0.0;
  double e = 0.0;

  for (int iter = 0; iter < kMaxIter; ++iter) {
    const double xm = 0.5 * (a + b);
    const double tol1 = kTol * std::abs(x) + 1e-10;
    const double tol2 = 2.0 * tol1;
    if (std::abs(x - xm) <= tol2 - 0.5 * (b - a)) break;
    bool use_golden = true;
    if (std::abs(e) > tol1) {
      const double r = (x - w) * (fx - fv);
      double q = (x - v) * (fx - fw);
      double p = (x - v) * q - (x - w) * r;
      q = 2.0 * (q - r);
      if (q > 0.0) p = -p;
      q = std::abs(q);
      const double e_prev = e;
      e = d;
      if (std::abs(p) < std::abs(0.5 * q * e_prev) && p > q * (a - x) &&
          p < q * (b - x)) {
        d = p / q;
        const double u_try = x + d;
        if (u_try - a < tol2 || b - u_try < tol2) {
          d = xm >= x ? tol1 : -tol1;
        }
        use_golden = false;
      }
    }
    if (use_golden) {
      e = x >= xm ? a - x : b - x;
      d = kCGold * e;
    }
    const double u = std::abs(d) >= tol1 ? x + d : x + (d >= 0 ? tol1 : -tol1);
    const double fu = -eval.at_continuous(u);
    if (fu <= fx) {
      if (u >= x) {
        a = x;
      } else {
        b = x;
      }
      v = w;
      fv = fw;
      w = x;
      fw = fx;
      x = u;
      fx = fu;
    } else {
      if (u < x) {
        a = u;
      } else {
        b = u;
      }
      if (fu <= fw || w == x) {
        v = w;
        fv = fw;
        w = u;
        fw = fu;
      } else if (fu <= fv || v == x || v == w) {
        v = u;
        fv = fu;
      }
    }
  }

  // Round the continuous optimum to the best nearby lattice point and
  // always probe the endpoints (§5.3: optima favor the extremes).
  net::Vote best = 1;
  const net::Vote hi = eval.max_q();
  if (eval.at(hi) > eval.at(best)) best = hi;
  const auto center = static_cast<net::Vote>(
      std::clamp<long>(std::lround(x), 1L, static_cast<long>(hi)));
  for (long delta = -1; delta <= 1; ++delta) {
    const long q = static_cast<long>(center) + delta;
    if (q < 1 || q > static_cast<long>(hi)) continue;
    const auto qq = static_cast<net::Vote>(q);
    if (eval.at(qq) > eval.at(best)) best = qq;
  }
  return eval.result(best);
}

} // namespace

OptResult optimize_exhaustive(const AvailabilityCurve& curve, double alpha) {
  return run_exhaustive(
      Evaluator(curve, [&](net::Vote q) { return curve.availability(alpha, q); }));
}

OptResult optimize_golden(const AvailabilityCurve& curve, double alpha) {
  return run_golden(
      Evaluator(curve, [&](net::Vote q) { return curve.availability(alpha, q); }));
}

OptResult optimize_brent(const AvailabilityCurve& curve, double alpha) {
  return run_brent(
      Evaluator(curve, [&](net::Vote q) { return curve.availability(alpha, q); }));
}

std::optional<net::Vote> min_feasible_q_r(const AvailabilityCurve& curve,
                                          double min_write_availability) {
  // W(T-q+1) is nondecreasing in q, so binary-search the first feasible q.
  net::Vote lo = 1;
  net::Vote hi = curve.max_read_quorum();
  if (curve.write_availability(hi) < min_write_availability) return std::nullopt;
  while (lo < hi) {
    const net::Vote mid = lo + (hi - lo) / 2;
    if (curve.write_availability(mid) >= min_write_availability) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

std::optional<OptResult> optimize_write_constrained(const AvailabilityCurve& curve,
                                                    double alpha,
                                                    double min_write_availability) {
  const auto q_lo = min_feasible_q_r(curve, min_write_availability);
  if (!q_lo) return std::nullopt;
  Evaluator eval(curve, [&](net::Vote q) { return curve.availability(alpha, q); });
  const net::Vote best = argmax_range(eval, *q_lo, eval.max_q());
  return eval.result(best);
}

OptResult optimize_weighted(const AvailabilityCurve& curve, double alpha,
                            double omega) {
  return run_exhaustive(Evaluator(
      curve, [&, omega](net::Vote q) { return curve.weighted(omega, alpha, q); }));
}

} // namespace quora::core
