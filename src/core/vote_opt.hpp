#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/component_dist.hpp"
#include "net/types.hpp"
#include "quorum/quorum_spec.hpp"

namespace quora::core {

/// --- The Ahamad & Ammar model (paper reference [1]) -------------------
///
/// "If two sites are operational then they can communicate": links are
/// perfect, so the network never partitions and the component of an up
/// site is exactly the set of up sites. The paper uses this model's
/// analytic results (optima at extreme quorum values; majority optimal
/// over wide parameter ranges) as the baseline its simulation extends to
/// fallible links.

/// f_i(v) for the Ahamad-Ammar model with uniform one-vote sites:
/// binomial over the other n-1 sites. Equivalent to
/// `fully_connected_site_pdf(n, p, 1.0)`, provided as a named model.
VotePdf ahamad_ammar_site_pdf(std::uint32_t n, double p);

/// Exact availability of an arbitrary (votes, spec) configuration in the
/// Ahamad-Ammar model with per-site reliabilities, by enumeration over
/// all 2^n up/down subsets. Uniform access over all sites (accesses to
/// down sites fail, matching the paper's ACC accounting).
/// Throws for more than 20 sites.
double exact_availability(std::span<const double> site_reliability,
                          std::span<const net::Vote> votes, double alpha,
                          const quorum::QuorumSpec& spec);

/// --- Optimal vote assignment (paper references [7, 8]) ----------------
///
/// Garcia-Molina & Barbara showed vote assignments are a proper subset of
/// coteries; Cheung, Ahamad & Ammar searched vote+quorum space
/// exhaustively for up to seven sites. This reproduces that baseline:
/// exhaustive search over all vote vectors with total at most
/// `max_total_votes` and all canonical quorum pairs, scoring each with
/// `exact_availability`. Exponential by nature — intended for small n
/// exactly as in the literature.

struct VoteOptResult {
  std::vector<net::Vote> votes;
  quorum::QuorumSpec spec;
  double availability = 0.0;
  std::uint64_t configurations_evaluated = 0;
};

/// Searches vote vectors (each site 0..max_votes_per_site, zero-vote
/// sites allowed, at least one vote total) and canonical quorum pairs
/// q_w = T - q_r + 1. Ties prefer fewer total votes, then smaller q_r.
/// Throws for n > 8 or max_votes_per_site > 8 (search-space guard).
VoteOptResult optimize_vote_assignment(std::span<const double> site_reliability,
                                       double alpha,
                                       net::Vote max_votes_per_site = 3);

} // namespace quora::core
