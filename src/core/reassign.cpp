#include "core/reassign.hpp"

#include <stdexcept>

#include "core/contracts.hpp"

namespace quora::core {
namespace {

/// Packed (q_r, q_w) payload for qr-install / qr-adopt trace events.
[[maybe_unused]] std::uint64_t pack_spec(const quorum::QuorumSpec& spec) {
  return (static_cast<std::uint64_t>(spec.q_r) << 16) |
         static_cast<std::uint64_t>(spec.q_w);
}

} // namespace

void QuorumReassignment::set_metrics(obs::Registry* registry) {
  if (registry == nullptr) {
    obs_installs_ = obs::Counter{};
    obs_adopts_ = obs::Counter{};
    return;
  }
  obs_installs_ = registry->counter("qr.installs");
  obs_adopts_ = registry->counter("qr.adopts");
}

QuorumReassignment::QuorumReassignment(const net::Topology& topo,
                                       quorum::QuorumSpec initial)
    : topo_(&topo), total_(topo.total_votes()) {
  if (!initial.valid(total_)) {
    throw std::invalid_argument("QuorumReassignment: invalid initial assignment");
  }
  stored_.assign(topo.site_count(), Assignment{initial, 1});
}

QuorumReassignment::Assignment QuorumReassignment::effective(
    const conn::ComponentTracker& tracker, net::SiteId origin) const {
  const std::int32_t comp = tracker.component_of(origin);
  if (comp == conn::kNoComponent) return stored_.at(origin);
  Assignment best = stored_.at(origin);
  for (const net::SiteId s : tracker.members(comp)) {
    if (stored_[s].version > best.version) best = stored_[s];
  }
  // §2.2: a component always operates on the newest assignment any member
  // knows — never older than the origin's own view.
  QUORA_INVARIANT(best.version >= stored_.at(origin).version,
                  "effective assignment regressed below the origin's version");
  QUORA_INVARIANT(best.spec.valid(total_),
                  "stored QR assignment lost quorum intersection");
  return best;
}

quorum::Decision QuorumReassignment::request(const conn::ComponentTracker& tracker,
                                             net::SiteId origin,
                                             quorum::AccessType type) const {
  quorum::Decision d;
  d.votes_collected = tracker.component_votes(origin);
  const quorum::QuorumSpec spec = effective(tracker, origin).spec;
  d.granted = type == quorum::AccessType::kRead
                  ? spec.allows_read(d.votes_collected)
                  : spec.allows_write(d.votes_collected);
  return d;
}

bool QuorumReassignment::try_install(const conn::ComponentTracker& tracker,
                                     net::SiteId origin, quorum::QuorumSpec next) {
  if (!next.valid(total_)) return false;
  const std::int32_t comp = tracker.component_of(origin);
  if (comp == conn::kNoComponent) return false;

  const Assignment current = effective(tracker, origin);
  if (next == current.spec) return false;
  const net::Vote votes = tracker.component_votes(origin);
  if (!current.spec.allows_write(votes)) return false;

  const Assignment installed{next, current.version + 1};
  QUORA_INVARIANT(installed.version > current.version,
                  "QR install must strictly advance the version number");
  for (const net::SiteId s : tracker.members(comp)) {
    // Monotonicity across the component: `current` already holds the max
    // member version, so no member can be ahead of the install.
    QUORA_ASSERT(stored_[s].version <= current.version,
                 "a component member was ahead of the effective assignment");
    stored_[s] = installed;
  }
  if (installed.version > latest_version_) latest_version_ = installed.version;
  ++epoch_;
  QUORA_METRIC_ADD(obs_installs_, 1);
  QUORA_TRACE(trace_, obs::EventKind::kQrInstall, origin, installed.version,
              pack_spec(next));
  return true;
}

bool install_and_sync(QuorumReassignment& qr, quorum::ReplicatedStore& store,
                      const conn::ComponentTracker& tracker, net::SiteId origin,
                      quorum::QuorumSpec next) {
  if (!qr.try_install(tracker, origin, next)) return false;
  store.refresh_component(tracker, origin);
  return true;
}

bool QuorumReassignment::adopt(net::SiteId s, const Assignment& a) {
  if (!a.spec.valid(total_)) return false;
  Assignment& mine = stored_.at(s);
  if (a.version <= mine.version) return false;
  mine = a;
  // Gossip can only redistribute installed assignments, never mint one, so
  // the system-wide latest version is untouched by construction.
  QUORA_INVARIANT(a.version <= latest_version_,
                  "adopted a QR version newer than any install");
  ++epoch_;
  QUORA_METRIC_ADD(obs_adopts_, 1);
  QUORA_TRACE(trace_, obs::EventKind::kQrAdopt, s, a.version,
              pack_spec(a.spec));
  return true;
}

void QuorumReassignment::propagate(const conn::ComponentTracker& tracker) {
  bool changed = false;
  const auto count = static_cast<std::int32_t>(tracker.component_count());
  for (std::int32_t comp = 0; comp < count; ++comp) {
    const auto members = tracker.members(comp);
    Assignment best = stored_.at(members.front());
    for (const net::SiteId s : members) {
      if (stored_[s].version > best.version) best = stored_[s];
    }
    for (const net::SiteId s : members) {
      // Propagation only ever moves versions forward (§2.2 monotonicity).
      QUORA_ASSERT(best.version >= stored_[s].version,
                   "propagate would overwrite a newer assignment");
      if (stored_[s].version != best.version) {
        stored_[s] = best;
        changed = true;
      }
    }
  }
  if (changed) ++epoch_;
}

void propagate_and_sync(QuorumReassignment& qr, quorum::ReplicatedStore& store,
                        const conn::ComponentTracker& tracker) {
  qr.propagate(tracker);
  const auto count = static_cast<std::int32_t>(tracker.component_count());
  for (std::int32_t comp = 0; comp < count; ++comp) {
    store.refresh_component(tracker, tracker.members(comp).front());
  }
}

} // namespace quora::core
