#include "core/availability.hpp"

#include <cmath>
#include <stdexcept>

#include "core/contracts.hpp"

namespace quora::core {

AvailabilityCurve::AvailabilityCurve(VotePdf r, VotePdf w)
    : r_(std::move(r)), w_(std::move(w)) {
  if (r_.empty() || r_.size() != w_.size()) {
    throw std::invalid_argument("AvailabilityCurve: mismatched densities");
  }
  total_ = static_cast<net::Vote>(r_.size() - 1);
  if (total_ < 2) {
    throw std::invalid_argument("AvailabilityCurve: need at least 2 votes");
  }
  build_tails();
}

AvailabilityCurve::AvailabilityCurve(const VotePdf& both)
    : AvailabilityCurve(both, both) {}

void AvailabilityCurve::build_tails() {
  r_tail_.assign(total_ + 2, 0.0);
  w_tail_.assign(total_ + 2, 0.0);
  long double r_acc = 0.0L;
  long double w_acc = 0.0L;
  for (net::Vote v = total_; v != static_cast<net::Vote>(-1); --v) {
    r_acc += r_[v];
    w_acc += w_[v];
    r_tail_[v] = static_cast<double>(r_acc);
    w_tail_[v] = static_cast<double>(w_acc);
    if (v == 0) break;
  }
  // R(0) and W(0) are the total probability mass of the input mixtures —
  // the f_i(v) densities of Figure 1 step 2 must each sum to ~1, so a
  // drifted estimator or a bad hand-built pdf is caught here rather than
  // silently skewing every availability value downstream.
  QUORA_INVARIANT(std::abs(r_tail_[0] - 1.0) < 1e-6,
                  "read mixture r(v) must be a probability density");
  QUORA_INVARIANT(std::abs(w_tail_[0] - 1.0) < 1e-6,
                  "write mixture w(v) must be a probability density");
}

double AvailabilityCurve::availability(double alpha, net::Vote q_r) const {
  return weighted(1.0, alpha, q_r);
}

double AvailabilityCurve::value(double alpha, net::Vote q_r, net::Vote q_w) const {
  if (q_r < 1 || q_r > total_ || q_w < 1 || q_w > total_) {
    throw std::out_of_range("AvailabilityCurve::value: quorum outside [1, T]");
  }
  if (!(alpha >= 0.0 && alpha <= 1.0)) {
    throw std::invalid_argument("AvailabilityCurve: alpha outside [0,1]");
  }
  return alpha * read_tail(q_r) + (1.0 - alpha) * write_tail(q_w);
}

double AvailabilityCurve::weighted(double omega, double alpha, net::Vote q_r) const {
  if (q_r < 1 || q_r > max_read_quorum()) {
    throw std::out_of_range("AvailabilityCurve: q_r outside [1, floor(T/2)]");
  }
  if (!(alpha >= 0.0 && alpha <= 1.0)) {
    throw std::invalid_argument("AvailabilityCurve: alpha outside [0,1]");
  }
  return alpha * read_tail(q_r) + omega * (1.0 - alpha) * write_tail(total_ - q_r + 1);
}

double AvailabilityCurve::conditional_on_up(double alpha, net::Vote q_r) const {
  const double p_up = alpha * (1.0 - r_[0]) + (1.0 - alpha) * (1.0 - w_[0]);
  if (p_up <= 0.0) return 0.0;
  return availability(alpha, q_r) / p_up;
}

} // namespace quora::core
