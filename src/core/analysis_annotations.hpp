#pragma once

// Source-annotation vocabulary consumed by tools/quora_lint's
// whole-program checks (L006–L008, see docs/STATIC_ANALYSIS.md).
//
// The annotations are analysis-only: under Clang they expand to
// [[clang::annotate("quora::...")]] attributes the AST engine reads
// straight off the declarations; everywhere else they expand to nothing.
// Either way they contribute zero code, so Release codegen, determinism
// goldens, and BENCH_* numbers are unaffected. The token engine never
// sees the expansion at all — it recognizes the macro spellings
// lexically, which is why the vocabulary is macros rather than bare
// attributes.
//
// Vocabulary:
//
//   QUORA_HOT_PATH
//     On a function: every call chain rooted here must be free of heap
//     allocation (operator new/delete, container growth, string
//     construction). Checked by L006; backed at runtime by
//     `quora_bench --alloc-check`.
//
//   QUORA_SHARD_ENTRY(domain)
//     On a function: the entry point a future shard of `domain` (e.g.
//     sim, msg) will drive in parallel. Roots the reachability used by
//     L007 (cross-shard state) and L008 (unshared globals).
//
//   QUORA_SHARD_LOCAL(domain)
//     On a data member: state owned by one shard of `domain`. L007
//     rejects reaching it from another domain's entry points, rejects
//     placing it on static-storage symbols, and rejects combining it
//     with QUORA_SHARD_SHARED.
//
//   QUORA_SHARD_SHARED
//     On a variable/member: mutable state deliberately shared across
//     shards (synchronization is the owner's problem, and documented at
//     the declaration). Exempts the symbol from L008.
//
//   QUORA_ANALYSIS_BOUNDARY
//     On a function: stop call-graph traversal here. For dynamic
//     dispatch fan-out the analyzer cannot meaningfully follow (e.g.
//     observer notification); the callee side carries its own
//     guarantees.
//
//   QUORA_ALLOC_OK
//     On a function: its *direct* allocations are amortized to zero in
//     steady state (pre-reserved capacity, setup-only growth), so L006
//     skips the body's own allocation facts while still analyzing its
//     callees. The claim is not taken on faith: `quora_bench
//     --alloc-check` asserts the counter stays flat across the
//     annotated hot paths.

#if defined(__clang__)
#define QUORA_ANNOTATION(text) [[clang::annotate(text)]]
#else
#define QUORA_ANNOTATION(text)
#endif

#define QUORA_HOT_PATH QUORA_ANNOTATION("quora::hot_path")
#define QUORA_SHARD_ENTRY(domain) QUORA_ANNOTATION("quora::shard_entry:" #domain)
#define QUORA_SHARD_LOCAL(domain) QUORA_ANNOTATION("quora::shard_local:" #domain)
#define QUORA_SHARD_SHARED QUORA_ANNOTATION("quora::shard_shared")
#define QUORA_ANALYSIS_BOUNDARY QUORA_ANNOTATION("quora::analysis_boundary")
#define QUORA_ALLOC_OK QUORA_ANNOTATION("quora::alloc_ok")
