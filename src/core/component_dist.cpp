#include "core/component_dist.hpp"

#include <cmath>
#include <limits>
#include <string>
#include <stdexcept>

#include "core/contracts.hpp"

namespace quora::core {
namespace {

long double log_binomial(std::uint32_t n, std::uint32_t k) {
  if (k > n) return -std::numeric_limits<long double>::infinity();
  return std::lgamma(static_cast<long double>(n) + 1.0L) -
         std::lgamma(static_cast<long double>(k) + 1.0L) -
         std::lgamma(static_cast<long double>(n - k) + 1.0L);
}

void check_probability(double x, const char* what) {
  if (!(x >= 0.0 && x <= 1.0)) {
    throw std::invalid_argument(std::string(what) + " must be in [0,1]");
  }
}

} // namespace

double pdf_total(const VotePdf& pdf) {
  long double total = 0.0L;
  for (const double x : pdf) total += x;
  return static_cast<double>(total);
}

bool is_valid_pdf(const VotePdf& pdf, double tol) {
  if (pdf.empty()) return false;
  for (const double x : pdf) {
    if (!(x >= -tol)) return false;
  }
  return std::abs(pdf_total(pdf) - 1.0) <= tol;
}

double pdf_mean(const VotePdf& pdf) {
  long double acc = 0.0L;
  for (std::size_t v = 0; v < pdf.size(); ++v) {
    acc += static_cast<long double>(v) * pdf[v];
  }
  return static_cast<double>(acc);
}

VotePdf mix_pdfs(const std::vector<VotePdf>& pdfs, const std::vector<double>& weights) {
  if (pdfs.empty()) throw std::invalid_argument("mix_pdfs: no densities");
  if (pdfs.size() != weights.size()) {
    throw std::invalid_argument("mix_pdfs: weights size mismatch");
  }
  const std::size_t domain = pdfs.front().size();
  long double weight_total = 0.0L;
  for (const double w : weights) {
    if (!(w >= 0.0)) throw std::invalid_argument("mix_pdfs: negative weight");
    weight_total += w;
  }
  if (std::abs(static_cast<double>(weight_total) - 1.0) > 1e-9) {
    throw std::invalid_argument("mix_pdfs: weights must sum to 1");
  }
  VotePdf out(domain, 0.0);
  for (std::size_t i = 0; i < pdfs.size(); ++i) {
    if (pdfs[i].size() != domain) {
      throw std::invalid_argument("mix_pdfs: domain mismatch");
    }
    for (std::size_t v = 0; v < domain; ++v) out[v] += weights[i] * pdfs[i][v];
  }
  // Step 2 of Figure 1: r(v) = sum_i r_i f_i(v) stays a density exactly
  // when every f_i is one. Callers feed estimator output here, so a
  // drifted histogram normalization surfaces immediately.
  if constexpr (contracts::kActive) {
    bool all_unit = true;
    for (const VotePdf& pdf : pdfs) all_unit = all_unit && is_valid_pdf(pdf, 1e-6);
    QUORA_INVARIANT(!all_unit || is_valid_pdf(out, 1e-6),
                    "mixture of unit-mass densities lost probability mass");
  }
  return out;
}

std::vector<double> gilbert_rel_table(std::uint32_t m, double r) {
  check_probability(r, "gilbert_rel: r");
  if (m == 0) throw std::invalid_argument("gilbert_rel: m must be positive");
  std::vector<double> out(m + 1, 0.0);
  out[0] = 1.0;  // vacuous
  out[1] = 1.0;
  if (r == 1.0) {
    for (std::uint32_t k = 2; k <= m; ++k) out[k] = 1.0;
    return out;
  }
  if (r == 0.0) return out;  // Rel(k>1, 0) = 0

  const long double log_q = std::log(static_cast<long double>(1.0 - r));
  std::vector<long double> rel(m + 1, 0.0L);
  rel[1] = 1.0L;
  for (std::uint32_t k = 2; k <= m; ++k) {
    long double sum = 0.0L;
    for (std::uint32_t i = 1; i < k; ++i) {
      // C(k-1, i-1) (1-r)^{i(k-i)} Rel(i, r)
      const long double log_term =
          log_binomial(k - 1, i - 1) +
          static_cast<long double>(i) * static_cast<long double>(k - i) * log_q;
      sum += std::exp(log_term) * rel[i];
    }
    long double value = 1.0L - sum;
    if (value < 0.0L) value = 0.0L;  // float residue near r -> 0
    if (value > 1.0L) value = 1.0L;
    rel[k] = value;
    out[k] = static_cast<double>(value);
  }
  return out;
}

double gilbert_rel(std::uint32_t m, double r) {
  return gilbert_rel_table(m, r)[m];
}

VotePdf ring_site_pdf(std::uint32_t n, double p, double r) {
  check_probability(p, "ring_site_pdf: p");
  check_probability(r, "ring_site_pdf: r");
  if (n < 3) throw std::invalid_argument("ring_site_pdf: need at least 3 sites");

  VotePdf pdf(n + 1, 0.0);
  pdf[0] = 1.0 - p;

  const long double lp = static_cast<long double>(p);
  const long double lr = static_cast<long double>(r);
  for (std::uint32_t v = 1; v <= n; ++v) {
    const long double lv = static_cast<long double>(v);
    const long double base = lv * std::pow(lp, lv) * std::pow(lr, lv - 1);
    long double value;
    if (v == n) {
      // Entire ring: all sites up and at most one of the n links down.
      value = base * (1.0L - lr) + std::pow(lp, lv) * std::pow(lr, lv);
    } else if (v == n - 1) {
      // Chain of n-1 sites: the excluded site is down, or up with both of
      // its incident links down.
      value = base * ((1.0L - lp) + lp * (1.0L - lr) * (1.0L - lr));
    } else {
      // Interior chain: blocked on both sides (next site down or link
      // down, independently per side).
      const long double block = 1.0L - lp * lr;
      value = base * block * block;
    }
    pdf[v] = static_cast<double>(value);
  }
  QUORA_INVARIANT(is_valid_pdf(pdf, 1e-6),
                  "ring closed form must produce a probability density");
  return pdf;
}

VotePdf fully_connected_site_pdf(std::uint32_t n, double p, double r) {
  check_probability(p, "fully_connected_site_pdf: p");
  check_probability(r, "fully_connected_site_pdf: r");
  if (n < 2) throw std::invalid_argument("fully_connected_site_pdf: need >= 2 sites");

  VotePdf pdf(n + 1, 0.0);
  pdf[0] = 1.0 - p;

  const long double lp = static_cast<long double>(p);
  const long double lr = static_cast<long double>(r);
  const std::vector<double> rel = gilbert_rel_table(n, r);
  for (std::uint32_t v = 1; v <= n; ++v) {
    // An up outside site is excluded iff all of its v links into the
    // component are down.
    const long double exclude =
        (1.0L - lp) + lp * std::pow(1.0L - lr, static_cast<long double>(v));
    const long double value = std::exp(log_binomial(n - 1, v - 1)) *
                              std::pow(lp, static_cast<long double>(v)) *
                              std::pow(exclude, static_cast<long double>(n - v)) *
                              static_cast<long double>(rel[v]);
    pdf[v] = static_cast<double>(value);
  }
  QUORA_INVARIANT(is_valid_pdf(pdf, 1e-6),
                  "fully-connected closed form must produce a density");
  return pdf;
}

VotePdf bus_site_pdf(std::uint32_t n, double p, double r, BusArchitecture arch) {
  check_probability(p, "bus_site_pdf: p");
  check_probability(r, "bus_site_pdf: r");
  if (n < 2) throw std::invalid_argument("bus_site_pdf: need >= 2 sites");

  VotePdf pdf(n + 1, 0.0);
  const long double lp = static_cast<long double>(p);
  const long double lr = static_cast<long double>(r);

  const auto bus_up_term = [&](std::uint32_t v) {
    // Bus up: the component is exactly the set of up sites; our site plus
    // v-1 of the other n-1.
    return std::exp(log_binomial(n - 1, v - 1)) *
           std::pow(lp, static_cast<long double>(v)) *
           std::pow(1.0L - lp, static_cast<long double>(n - v)) * lr;
  };

  switch (arch) {
    case BusArchitecture::kSitesDieWithBus: {
      // Bus down kills every site; otherwise binomial over the other sites.
      pdf[0] = static_cast<double>((1.0L - lr) + lr * (1.0L - lp));
      for (std::uint32_t v = 1; v <= n; ++v) {
        pdf[v] = static_cast<double>(bus_up_term(v));
      }
      break;
    }
    case BusArchitecture::kSitesSurviveBus: {
      pdf[0] = 1.0 - p;
      // Alone iff up and (bus down, or every other site down).
      pdf[1] = static_cast<double>(
          lp * ((1.0L - lr) + lr * std::pow(1.0L - lp,
                                             static_cast<long double>(n - 1))));
      for (std::uint32_t v = 2; v <= n; ++v) {
        pdf[v] = static_cast<double>(bus_up_term(v));
      }
      break;
    }
  }
  // This is precisely the f(1) discrepancy noted in the header: the exact
  // expression sums to 1 where the paper's printed form does not.
  QUORA_INVARIANT(is_valid_pdf(pdf, 1e-6),
                  "bus closed form must produce a probability density");
  return pdf;
}

} // namespace quora::core
