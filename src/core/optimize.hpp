#pragma once

#include <optional>

#include "core/availability.hpp"
#include "quorum/quorum_spec.hpp"

namespace quora::core {

/// Result of an optimal-quorum-assignment search (Figure 1, step 4).
struct OptResult {
  quorum::QuorumSpec spec;        // q_w = T - q_r + 1 always
  double value = 0.0;             // objective at the optimum
  std::uint32_t evaluations = 0;  // objective evaluations performed

  net::Vote q_r() const noexcept { return spec.q_r; }
  net::Vote q_w() const noexcept { return spec.q_w; }
};

/// Exhaustive scan of q_r in [1, floor(T/2)] — the paper's "naive, yet
/// polynomial" baseline. Ties break toward the smaller q_r (cheaper
/// reads).
OptResult optimize_exhaustive(const AvailabilityCurve& curve, double alpha);

/// Golden-section search over the integer lattice, exploiting the paper's
/// empirical finding (§5.3, and Ahamad & Ammar analytically) that optima
/// fall at the extreme quorum values: endpoints are always probed, then a
/// golden-section bracket refines the interior. Exact on unimodal curves;
/// a heuristic otherwise (compared against exhaustive in the ablation
/// bench).
OptResult optimize_golden(const AvailabilityCurve& curve, double alpha);

/// Brent's method (Numerical Recipes §10.2) on the piecewise-linear
/// continuous extension of A, followed by rounding to the best adjacent
/// lattice point; endpoints also probed. Same caveats as golden-section.
OptResult optimize_brent(const AvailabilityCurve& curve, double alpha);

/// §5.4: maximize A(alpha, q_r) subject to the write-throughput floor
/// A(0, q_r) = W(T - q_r + 1) >= min_write_availability. Returns nullopt
/// when no q_r satisfies the constraint. Since W(T-q+1) is nondecreasing
/// in q, the feasible set is a suffix [q_lo, floor(T/2)].
std::optional<OptResult> optimize_write_constrained(const AvailabilityCurve& curve,
                                                    double alpha,
                                                    double min_write_availability);

/// Smallest feasible q_r for the write constraint, if any.
std::optional<net::Vote> min_feasible_q_r(const AvailabilityCurve& curve,
                                          double min_write_availability);

/// §5.4's first technique: maximize the weighted objective
/// alpha*R(q) + omega*(1-alpha)*W(T-q+1).
OptResult optimize_weighted(const AvailabilityCurve& curve, double alpha,
                            double omega);

} // namespace quora::core
