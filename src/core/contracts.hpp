#pragma once

#include <cstdio>
#include <cstdlib>

/// Contract macros for the invariants the paper's correctness arguments
/// rest on (quorum intersection, vote conservation, QR version
/// monotonicity, probability-mass conservation).
///
/// Policy (see docs/STATIC_ANALYSIS.md):
///  - `QUORA_PRECONDITION` guards what a *caller* must establish,
///  - `QUORA_ASSERT` guards a local step inside an algorithm,
///  - `QUORA_INVARIANT` guards a structural property that must hold on
///    every exit path (postconditions included).
/// All three are active in Debug builds and in sanitizer builds
/// (`QUORA_SANITIZE` defines `QUORA_ENABLE_CONTRACTS=1`), and compile to
/// `((void)0)` in plain Release builds — so contract expressions must be
/// side-effect free. API-level validation that users can trigger with bad
/// input stays as thrown exceptions; contracts cover what should be
/// impossible once that validation passed.
///
/// `QUORA_ENABLE_CONTRACTS` may be pre-defined (0 or 1) by the build
/// system to override the NDEBUG default.
#if !defined(QUORA_ENABLE_CONTRACTS)
#if defined(NDEBUG)
#define QUORA_ENABLE_CONTRACTS 0
#else
#define QUORA_ENABLE_CONTRACTS 1
#endif
#endif

namespace quora::contracts {

/// True when contract macros expand to live checks in this translation
/// unit. Tests use this to decide whether to expect a death or a no-op.
inline constexpr bool kActive = QUORA_ENABLE_CONTRACTS != 0;

/// Reports a violated contract on stderr and aborts. Kept out-of-line of
/// the macro so every expansion is a single call; `noexcept` + `abort`
/// (rather than an exception) so a violated invariant can never be
/// swallowed by a catch block and keep running on corrupt state.
[[noreturn]] inline void violation_handler(const char* kind, const char* expr,
                                           const char* file, long line,
                                           const char* message) noexcept {
  std::fprintf(stderr, "quora: %s failed: %s\n  at %s:%ld\n  %s\n", kind, expr,
               file, line, message);
  std::fflush(stderr);
  std::abort();
}

} // namespace quora::contracts

#if QUORA_ENABLE_CONTRACTS
#define QUORA_CONTRACT_CHECK_(kind, expr, msg)                               \
  ((expr) ? static_cast<void>(0)                                             \
          : ::quora::contracts::violation_handler(kind, #expr, __FILE__,     \
                                                  __LINE__, msg))
#else
#define QUORA_CONTRACT_CHECK_(kind, expr, msg) static_cast<void>(0)
#endif

/// A local algorithmic step that must hold at this point.
#define QUORA_ASSERT(expr, msg) QUORA_CONTRACT_CHECK_("assertion", expr, msg)

/// A structural property of the data (quorum intersection, conserved
/// votes, monotone versions, unit probability mass).
#define QUORA_INVARIANT(expr, msg) QUORA_CONTRACT_CHECK_("invariant", expr, msg)

/// A condition the caller must have established before entry.
#define QUORA_PRECONDITION(expr, msg) \
  QUORA_CONTRACT_CHECK_("precondition", expr, msg)
