#pragma once

#include "core/component_dist.hpp"
#include "net/types.hpp"

namespace quora::core {

/// The availability function of the paper's Figure 1, step 3, precomputed
/// from the mixtures r(v) and w(v):
///
///   A(alpha, q_r) = alpha * R(q_r) + (1 - alpha) * W(T - q_r + 1)
///
/// where R(q) = sum_{k >= q} r(k) is the probability an arbitrary read
/// lands in a component with at least q votes (and W likewise for writes).
/// Tail sums are materialized once, so each evaluation is O(1).
class AvailabilityCurve {
public:
  /// `r` and `w` are densities over votes 0..T (equal domains).
  AvailabilityCurve(VotePdf r, VotePdf w);

  /// Both access types drawn from one density (r = w) — the paper's
  /// uniform-access experiments, and the SURV variant of footnote 3.
  explicit AvailabilityCurve(const VotePdf& both);

  net::Vote total_votes() const noexcept { return total_; }
  /// Largest admissible read quorum, floor(T/2).
  net::Vote max_read_quorum() const noexcept { return total_ / 2; }

  /// R(q): probability a read request sees at least q votes. q may be
  /// 0..T+1 (R(0) = 1, R(T+1) = 0).
  double read_tail(net::Vote q) const { return r_tail_.at(q); }
  /// W(q): probability a write request sees at least q votes.
  double write_tail(net::Vote q) const { return w_tail_.at(q); }

  /// Probability a read is granted with read quorum q_r.
  double read_availability(net::Vote q_r) const { return read_tail(q_r); }
  /// Probability a write is granted when q_w = T - q_r + 1.
  double write_availability(net::Vote q_r) const {
    return write_tail(total_ - q_r + 1);
  }

  /// A(alpha, q_r); q_r must lie in [1, floor(T/2)].
  double availability(double alpha, net::Vote q_r) const;

  /// A for an arbitrary assignment (q_r, q_w), not necessarily of the
  /// canonical q_w = T - q_r + 1 family — e.g. strict-majority
  /// q_r = q_w = floor(T/2)+1. Quorums must lie in [1, T].
  double value(double alpha, net::Vote q_r, net::Vote q_w) const;

  /// §5.4's weighted objective A(omega, alpha, q_r): writes scaled by
  /// omega in the linear combination.
  double weighted(double omega, double alpha, net::Vote q_r) const;

  /// A'(alpha, q_r) = A / P(origin operational): availability conditioned
  /// on the submitting site being up (footnote 4; pA' = A under uniform
  /// access with site reliability p).
  double conditional_on_up(double alpha, net::Vote q_r) const;

  const VotePdf& r_pdf() const noexcept { return r_; }
  const VotePdf& w_pdf() const noexcept { return w_; }

private:
  void build_tails();

  VotePdf r_;
  VotePdf w_;
  net::Vote total_ = 0;
  std::vector<double> r_tail_;  // index q in [0, T+1]
  std::vector<double> w_tail_;
};

} // namespace quora::core
