#pragma once

#include <cstdint>
#include <vector>

#include "net/types.hpp"

namespace quora::core {

/// A probability density over vote counts: pdf[v] is the probability that
/// the component containing a given site holds exactly v votes, for
/// v = 0..T. pdf[0] is the mass of the site itself being down (the paper
/// regards a down site as belonging to a component of size zero).
using VotePdf = std::vector<double>;

/// Validates that `pdf` is a density: entries non-negative, sum within
/// `tol` of 1. Returns the sum.
double pdf_total(const VotePdf& pdf);
bool is_valid_pdf(const VotePdf& pdf, double tol = 1e-9);

/// Mean of the density.
double pdf_mean(const VotePdf& pdf);

/// Mixture sum_i weights[i] * pdfs[i] — the paper's step 2:
/// r(v) = sum_i r_i f_i(v). Weights must sum to 1 (within 1e-9) and all
/// pdfs share a domain.
VotePdf mix_pdfs(const std::vector<VotePdf>& pdfs, const std::vector<double>& weights);

/// --- Closed forms of §4.2 (one copy and one vote per site, so T = n) ---

/// Gilbert's recursive all-terminal reliability of a complete graph on m
/// sites whose links are up independently with probability r (sites do not
/// fail): Rel(m,r) = 1 - sum_{i=1}^{m-1} C(m-1, i-1) (1-r)^{i(m-i)} Rel(i,r).
/// Computed in long double; exact enough for m in the hundreds.
double gilbert_rel(std::uint32_t m, double r);

/// All of Rel(1..m, r) in one O(m^2) pass — the fully-connected density
/// needs every prefix, and recomputing per size would cost O(m^3).
std::vector<double> gilbert_rel_table(std::uint32_t m, double r);

/// Ring of n sites: density of the votes in the component of any fixed
/// site, with site reliability p and link reliability r.
VotePdf ring_site_pdf(std::uint32_t n, double p, double r);

/// Fully-connected network of n sites:
/// f(v) = C(n-1, v-1) p^v ((1-p) + p(1-r)^v)^(n-v) Rel(v, r).
VotePdf fully_connected_site_pdf(std::uint32_t n, double p, double r);

/// Single-bus network architectures of §4.2.
enum class BusArchitecture : std::uint8_t {
  /// No site functions while the bus is down: bus failure sends every
  /// site to a zero-vote component.
  kSitesDieWithBus,
  /// Sites survive bus failure as singleton components.
  kSitesSurviveBus,
};

/// Single-bus network of n sites, bus reliability r, site reliability p.
///
/// Note: for the kSitesSurviveBus case the paper prints f(1) = p, which
/// cannot be a density (it already sums to 1 with f(0) = 1-p before any
/// v >= 2 term). We implement the exact expression
/// f(1) = p[(1-r) + r(1-p)^(n-1)] — an operational site is alone iff the
/// bus is down or every other site is down — which does sum to 1; the
/// discrepancy is recorded in EXPERIMENTS.md.
VotePdf bus_site_pdf(std::uint32_t n, double p, double r, BusArchitecture arch);

} // namespace quora::core
