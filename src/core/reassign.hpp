#pragma once

#include <cstdint>
#include <vector>

#include "conn/component_tracker.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "quorum/protocols.hpp"
#include "quorum/quorum_spec.hpp"
#include "quorum/replicated_store.hpp"

namespace quora::core {

/// The quorum reassignment protocol (QR, paper §2.2).
///
/// Every copy stores a quorum assignment and a version number (initially
/// 1). The assignment *in effect* for an access submitted at site x is the
/// highest-version assignment stored at any up site of x's component. A
/// new assignment may be installed only from a component holding at least
/// a write quorum of votes under the assignment currently in effect there;
/// installation stamps version+1 on every up member.
///
/// Safety (proved in §2.2, asserted by our tests): because an installing
/// component holds q_w votes under the old assignment and q_r + q_w > T,
/// no other component can reach even a read quorum until some installer
/// site joins it — at which point it learns the new assignment. Hence no
/// access is ever granted under a superseded assignment.
///
/// One-copy serializability needs one step the paper leaves implicit:
/// installation must also *synchronize the data object* across the
/// installing component. The component holds a write quorum under the old
/// assignment, so it provably contains a copy of the most recent write;
/// unless that copy is spread to all members at install time, a later
/// read quorum under the new assignment — which need not intersect any
/// old write quorum — can miss it. Our randomized integration test
/// reproduces exactly that stale read when the sync is skipped; use
/// `install_and_sync` when a `quorum::ReplicatedStore` carries real data.
class QuorumReassignment {
public:
  struct Assignment {
    quorum::QuorumSpec spec;
    std::uint64_t version = 1;
  };

  QuorumReassignment(const net::Topology& topo, quorum::QuorumSpec initial);

  /// The assignment in effect for accesses submitted at `origin`: the
  /// max-version assignment among up sites of origin's component. A down
  /// origin reports its own stored assignment (it cannot access anyway).
  Assignment effective(const conn::ComponentTracker& tracker,
                       net::SiteId origin) const;

  /// Decide an access under the effective assignment.
  quorum::Decision request(const conn::ComponentTracker& tracker,
                           net::SiteId origin, quorum::AccessType type) const;

  /// Attempt to install `next` from origin's component. Fails (returns
  /// false) if origin is down, the component lacks a write quorum under
  /// the effective (old) assignment, `next` is invalid for T, or `next`
  /// equals the effective assignment (no-op installs are suppressed).
  bool try_install(const conn::ComponentTracker& tracker, net::SiteId origin,
                   quorum::QuorumSpec next);

  /// Adopt `a` at site `s` if it is strictly newer than what `s` stores —
  /// the per-message gossip path of §2.2's merge rule, used by the
  /// message-level cluster when a protocol message carries a newer
  /// assignment than the receiver's. Never regresses a version and ignores
  /// assignments that are invalid for T. Returns true if `s` changed.
  bool adopt(net::SiteId s, const Assignment& a);

  /// Copy the max-version assignment of each component to all its up
  /// members — the state update the paper performs when components merge.
  /// `effective()` already looks through to the max version, so this only
  /// compacts state; it never changes behaviour.
  void propagate(const conn::ComponentTracker& tracker);

  /// Version of the most recently installed assignment, system-wide.
  std::uint64_t latest_version() const noexcept { return latest_version_; }

  /// Mutation counter: bumped whenever any site's stored assignment
  /// changes (install, adopt, or propagate). Unlike `latest_version()`,
  /// which gossip does not move, this invalidates caches of *any* derived
  /// per-site state — `msg::Cluster` keys its effective-assignment cache
  /// on it.
  std::uint64_t epoch() const noexcept { return epoch_; }

  const Assignment& stored(net::SiteId s) const { return stored_.at(s); }
  net::Vote total_votes() const noexcept { return total_; }

  /// Observability: successful installs emit kQrInstall and successful
  /// adoptions kQrAdopt (pure recording — protocol decisions unchanged).
  /// The recorder must share the owning simulation's clock. Metrics land
  /// under `qr.installs` / `qr.adopts`. Pass nullptr to detach.
  void set_trace(obs::TraceRecorder* trace) noexcept { trace_ = trace; }
  void set_metrics(obs::Registry* registry);

private:
  const net::Topology* topo_;
  net::Vote total_;
  std::vector<Assignment> stored_;
  std::uint64_t latest_version_ = 1;
  std::uint64_t epoch_ = 0;
  obs::TraceRecorder* trace_ = nullptr;
  obs::Counter obs_installs_;
  obs::Counter obs_adopts_;
};

/// Install `next` through `qr` and, on success, synchronize `store`'s
/// copies across the installing component — the coupling required for
/// one-copy serializability under reassignment (see the class docs).
bool install_and_sync(QuorumReassignment& qr, quorum::ReplicatedStore& store,
                      const conn::ComponentTracker& tracker, net::SiteId origin,
                      quorum::QuorumSpec next);

/// Merge-time counterpart of `install_and_sync`: propagate assignments
/// within every component AND synchronize the data alongside. Assignment
/// awareness without the data is dangerous — a site that learns a new
/// small read quorum and then partitions away from every installer would
/// serve stale reads; carrying the newest copy with the assignment
/// message closes that hole.
void propagate_and_sync(QuorumReassignment& qr, quorum::ReplicatedStore& store,
                        const conn::ComponentTracker& tracker);

} // namespace quora::core
