#pragma once

#include <span>
#include <string>
#include <vector>

#include "net/types.hpp"

namespace quora::net {

/// Immutable network structure: sites, undirected links, and the vote
/// assignment of the (single, fully replicated) data object.
///
/// This is the paper's system model (§5.1): sites and bi-directional links,
/// either of which may be down at any instant; the up/down state lives in
/// the simulator (`sim::NetworkState`), not here.
///
/// Adjacency is stored in CSR form so component searches touch contiguous
/// memory — the connectivity tracker walks this on every topology-changing
/// event.
class Topology {
public:
  /// Builds a topology; validates that links reference existing distinct
  /// sites and contain no duplicates (throws std::invalid_argument).
  /// `votes` must have one entry per site.
  Topology(std::string name, std::uint32_t site_count, std::vector<Link> links,
           std::vector<Vote> votes);

  /// Convenience: uniform one-vote-per-site assignment (the paper's setup).
  Topology(std::string name, std::uint32_t site_count, std::vector<Link> links);

  const std::string& name() const noexcept { return name_; }
  std::uint32_t site_count() const noexcept { return site_count_; }
  std::uint32_t link_count() const noexcept {
    return static_cast<std::uint32_t>(links_.size());
  }
  std::span<const Link> links() const noexcept { return links_; }
  const Link& link(LinkId id) const { return links_.at(id); }

  Vote votes(SiteId s) const { return votes_.at(s); }
  std::span<const Vote> vote_assignment() const noexcept { return votes_; }
  /// Total votes T in the system.
  Vote total_votes() const noexcept { return total_votes_; }

  /// Neighbors of `s` as (neighbor site, connecting link) pairs.
  struct Edge {
    SiteId neighbor;
    LinkId link;
  };
  std::span<const Edge> neighbors(SiteId s) const {
    return {adjacency_.data() + offsets_.at(s),
            adjacency_.data() + offsets_.at(s + 1)};
  }

  std::uint32_t degree(SiteId s) const {
    return static_cast<std::uint32_t>(offsets_.at(s + 1) - offsets_.at(s));
  }

  /// True if an undirected link {a, b} exists.
  bool has_link(SiteId a, SiteId b) const;

private:
  std::string name_;
  std::uint32_t site_count_;
  std::vector<Link> links_;
  std::vector<Vote> votes_;
  Vote total_votes_ = 0;
  std::vector<std::size_t> offsets_;  // CSR row offsets, size site_count+1
  std::vector<Edge> adjacency_;       // CSR payload, size 2*link_count
};

} // namespace quora::net
