#pragma once

#include <span>
#include <string>
#include <vector>

#include "net/types.hpp"

namespace quora::net {

/// Immutable network structure: sites, undirected links, and the vote
/// assignment of the (single, fully replicated) data object.
///
/// This is the paper's system model (§5.1): sites and bi-directional links,
/// either of which may be down at any instant; the up/down state lives in
/// the simulator (`sim::NetworkState`), not here.
///
/// Adjacency is stored in CSR form so component searches touch contiguous
/// memory — the connectivity tracker walks this on every topology-changing
/// event.
class Topology {
public:
  /// Builds a topology; validates that links reference existing distinct
  /// sites and contain no duplicates (throws std::invalid_argument).
  /// `votes` must have one entry per site.
  Topology(std::string name, std::uint32_t site_count, std::vector<Link> links,
           std::vector<Vote> votes);

  /// Convenience: uniform one-vote-per-site assignment (the paper's setup).
  Topology(std::string name, std::uint32_t site_count, std::vector<Link> links);

  const std::string& name() const noexcept { return name_; }
  std::uint32_t site_count() const noexcept { return site_count_; }
  std::uint32_t link_count() const noexcept {
    return static_cast<std::uint32_t>(links_.size());
  }
  std::span<const Link> links() const noexcept { return links_; }
  const Link& link(LinkId id) const { return links_.at(id); }

  Vote votes(SiteId s) const { return votes_.at(s); }
  std::span<const Vote> vote_assignment() const noexcept { return votes_; }
  /// Total votes T in the system.
  Vote total_votes() const noexcept { return total_votes_; }

  /// True when every site carries the same vote weight (the paper's
  /// uniform assignment). Lets component tallies collapse to
  /// popcount * uniform_vote() instead of a per-site gather.
  bool has_uniform_votes() const noexcept { return uniform_votes_; }

  /// The common per-site weight; only meaningful under has_uniform_votes().
  Vote uniform_vote() const noexcept { return votes_.front(); }

  /// Neighbors of `s` as (neighbor site, connecting link) pairs.
  struct Edge {
    SiteId neighbor;
    LinkId link;
  };
  std::span<const Edge> neighbors(SiteId s) const {
    return {adjacency_.data() + offsets_.at(s),
            adjacency_.data() + offsets_.at(s + 1)};
  }

  std::uint32_t degree(SiteId s) const {
    return static_cast<std::uint32_t>(offsets_.at(s + 1) - offsets_.at(s));
  }

  /// True if an undirected link {a, b} exists.
  bool has_link(SiteId a, SiteId b) const;

  /// Returns the link id of {a, b}, or link_count() when absent.
  LinkId find_link(SiteId a, SiteId b) const;

  // --- Failure-domain annotations (chaos engine v2) ---------------------
  //
  // Every site may carry an optional slash-separated domain path, e.g.
  // "rg0/dc1/rk2" for region rg0, datacenter dc1, rack rk2. Paths are
  // free-form (any depth >= 1); a *domain* is any path prefix, so "rg0"
  // names the whole region and "rg0/dc1" one datacenter inside it. Sites
  // without a path ("" — the default) belong to no domain. Annotations are
  // strictly opt-in: an unannotated topology behaves exactly as before.

  /// Assigns `path` to site `s`. Components must be non-empty and contain
  /// only [A-Za-z0-9_.-]; throws std::invalid_argument otherwise. An empty
  /// path clears the annotation. Re-assignment overwrites (last wins) so
  /// the static auditor — not the parser — can flag duplicates.
  void set_domain(SiteId s, std::string path);

  /// The site's domain path, or "" when unannotated.
  const std::string& domain(SiteId s) const;

  /// True when at least one site carries a domain path.
  bool has_domains() const noexcept { return !domains_.empty(); }

  /// True when `site_domain` lies inside domain `prefix`: equal, or
  /// `prefix` followed by '/' is a proper prefix ("rg0" contains
  /// "rg0/dc1" but not "rg01"). An empty prefix contains every
  /// *annotated* site; an empty site_domain is contained by nothing.
  static bool domain_contains(const std::string& prefix,
                              const std::string& site_domain);

  /// Sites whose domain path lies inside `prefix`, ascending by id.
  std::vector<SiteId> sites_in_domain(const std::string& prefix) const;

  /// First `levels` components of the site's domain path ("" when the site
  /// is unannotated). levels=1 yields the region, 2 the datacenter, 3 the
  /// rack in the canonical three-level scheme.
  std::string domain_prefix(SiteId s, int levels) const;

  /// Distinct top-level domain components (regions), sorted. Empty when
  /// the topology has no domain annotations.
  std::vector<std::string> regions() const;

  // --- Per-link latency classes -----------------------------------------

  /// Annotates link `l` with a latency class (throws std::invalid_argument
  /// on negative base/jitter or unknown link).
  void set_link_latency(LinkId l, LinkLatency latency);

  /// The link's latency class; default-constructed ({0, 0}) when the link
  /// is unannotated.
  LinkLatency link_latency(LinkId l) const;

  /// True when at least one link carries a latency class.
  bool has_link_latencies() const noexcept { return !link_latencies_.empty(); }

private:
  std::string name_;
  std::uint32_t site_count_;
  std::vector<Link> links_;
  std::vector<Vote> votes_;
  Vote total_votes_ = 0;
  bool uniform_votes_ = false;
  std::vector<std::size_t> offsets_;  // CSR row offsets, size site_count+1
  std::vector<Edge> adjacency_;       // CSR payload, size 2*link_count
  // Lazily sized: empty until the first annotation (the common legacy case
  // pays nothing), then site_count_/link_count() entries.
  std::vector<std::string> domains_;
  std::vector<LinkLatency> link_latencies_;
};

} // namespace quora::net
