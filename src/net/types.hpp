#pragma once

#include <cstdint>

namespace quora::net {

/// Index of a site (node) in a topology; dense in [0, site_count).
using SiteId = std::uint32_t;

/// Index of a link (undirected edge) in a topology; dense in [0, link_count).
using LinkId = std::uint32_t;

/// Number of votes held by a copy (Gifford weighted voting). The paper's
/// experiments use one vote per site; the library supports arbitrary
/// non-negative weights.
using Vote = std::uint32_t;

/// An undirected link between two distinct sites.
struct Link {
  SiteId a = 0;
  SiteId b = 0;

  friend bool operator==(const Link&, const Link&) = default;
};

/// Latency class of a link: a deterministic propagation floor plus the mean
/// of an exponential jitter term. A message traversing the link takes
/// `base + Exp(jitter)` seconds (just `base` when `jitter == 0`).
///
/// The default-constructed class is the sentinel "unannotated": the cluster
/// then falls back to the uniform `Params::mean_hop_latency` draw, which is
/// what keeps legacy topologies byte-identical with pre-domain transcripts.
struct LinkLatency {
  double base = 0.0;    // deterministic floor, seconds (>= 0)
  double jitter = 0.0;  // mean of the exponential jitter term, seconds (>= 0)

  friend bool operator==(const LinkLatency&, const LinkLatency&) = default;
};

} // namespace quora::net
