#pragma once

#include <cstdint>

namespace quora::net {

/// Index of a site (node) in a topology; dense in [0, site_count).
using SiteId = std::uint32_t;

/// Index of a link (undirected edge) in a topology; dense in [0, link_count).
using LinkId = std::uint32_t;

/// Number of votes held by a copy (Gifford weighted voting). The paper's
/// experiments use one vote per site; the library supports arbitrary
/// non-negative weights.
using Vote = std::uint32_t;

/// An undirected link between two distinct sites.
struct Link {
  SiteId a = 0;
  SiteId b = 0;

  friend bool operator==(const Link&, const Link&) = default;
};

} // namespace quora::net
