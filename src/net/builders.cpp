#include "net/builders.hpp"

#include <algorithm>
#include <bit>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>

#include "rng/xoshiro256ss.hpp"

namespace quora::net {
namespace {

std::vector<Link> ring_links(std::uint32_t n) {
  std::vector<Link> links;
  links.reserve(n);
  for (SiteId i = 0; i < n; ++i) links.push_back(Link{i, (i + 1) % n});
  return links;
}

} // namespace

std::vector<std::uint32_t> spread_order(std::uint32_t n) {
  if (n == 0) return {};
  const std::uint32_t bits = n <= 1 ? 1 : std::bit_width(n - 1);
  std::vector<std::uint32_t> order;
  order.reserve(n);
  for (std::uint32_t i = 0; i < (1u << bits); ++i) {
    std::uint32_t rev = 0;
    for (std::uint32_t b = 0; b < bits; ++b) {
      if (i & (1u << b)) rev |= 1u << (bits - 1 - b);
    }
    if (rev < n) order.push_back(rev);
  }
  return order;
}

std::vector<Link> chord_order(std::uint32_t n) {
  if (n < 4) return {}; // a ring on 3 sites is already complete
  const std::vector<std::uint32_t> offsets = spread_order(n);
  std::set<std::pair<SiteId, SiteId>> seen;
  for (SiteId i = 0; i < n; ++i) {
    seen.insert(std::minmax<SiteId>(i, (i + 1) % n)); // ring edges excluded
  }
  std::vector<Link> chords;
  chords.reserve(static_cast<std::size_t>(n) * (n - 1) / 2 - n);
  for (std::uint32_t skip = n / 2; skip >= 2; --skip) {
    for (const std::uint32_t start : offsets) {
      const SiteId a = start;
      const SiteId b = (start + skip) % n;
      const auto key = std::minmax(a, b);
      if (seen.insert(key).second) chords.push_back(Link{key.first, key.second});
    }
  }
  return chords;
}

Topology make_ring(std::uint32_t n) {
  if (n < 3) throw std::invalid_argument("make_ring: need at least 3 sites");
  return Topology("ring-" + std::to_string(n), n, ring_links(n));
}

Topology make_ring_with_chords(std::uint32_t n, std::uint32_t chords) {
  if (n < 3) throw std::invalid_argument("make_ring_with_chords: need at least 3 sites");
  const std::vector<Link> all_chords = chord_order(n);
  if (chords > all_chords.size()) {
    throw std::invalid_argument("make_ring_with_chords: more chords than available");
  }
  std::vector<Link> links = ring_links(n);
  links.insert(links.end(), all_chords.begin(), all_chords.begin() + chords);
  return Topology("topology-" + std::to_string(chords) + "-n" + std::to_string(n), n,
                  std::move(links));
}

Topology make_fully_connected(std::uint32_t n) {
  if (n < 2) throw std::invalid_argument("make_fully_connected: need at least 2 sites");
  std::vector<Link> links;
  links.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (SiteId a = 0; a < n; ++a) {
    for (SiteId b = a + 1; b < n; ++b) links.push_back(Link{a, b});
  }
  return Topology("complete-" + std::to_string(n), n, std::move(links));
}

Topology make_star(std::uint32_t n, Vote hub_votes, Vote leaf_votes) {
  if (n < 2) throw std::invalid_argument("make_star: need at least 2 sites");
  std::vector<Link> links;
  links.reserve(n - 1);
  for (SiteId leaf = 1; leaf < n; ++leaf) links.push_back(Link{0, leaf});
  std::vector<Vote> votes(n, leaf_votes);
  votes[0] = hub_votes;
  return Topology("star-" + std::to_string(n), n, std::move(links), std::move(votes));
}

Topology make_grid(std::uint32_t width, std::uint32_t height) {
  if (width == 0 || height == 0) throw std::invalid_argument("make_grid: empty grid");
  const std::uint32_t n = width * height;
  std::vector<Link> links;
  for (std::uint32_t y = 0; y < height; ++y) {
    for (std::uint32_t x = 0; x < width; ++x) {
      const SiteId s = y * width + x;
      if (x + 1 < width) links.push_back(Link{s, s + 1});
      if (y + 1 < height) links.push_back(Link{s, s + width});
    }
  }
  return Topology("grid-" + std::to_string(width) + "x" + std::to_string(height), n,
                  std::move(links));
}

Topology make_binary_tree(std::uint32_t n) {
  if (n == 0) throw std::invalid_argument("make_binary_tree: no sites");
  std::vector<Link> links;
  links.reserve(n - 1);
  for (SiteId i = 1; i < n; ++i) links.push_back(Link{(i - 1) / 2, i});
  return Topology("tree-" + std::to_string(n), n, std::move(links));
}

Topology make_erdos_renyi(std::uint32_t n, double p, std::uint64_t seed) {
  if (n == 0) throw std::invalid_argument("make_erdos_renyi: no sites");
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("make_erdos_renyi: bad p");
  rng::Xoshiro256ss gen(seed);
  std::vector<Link> links;
  for (SiteId a = 0; a < n; ++a) {
    for (SiteId b = a + 1; b < n; ++b) {
      if (gen.next_double() < p) links.push_back(Link{a, b});
    }
  }
  return Topology("gnp-" + std::to_string(n), n, std::move(links));
}

} // namespace quora::net
