#include "net/builders.hpp"

#include <algorithm>
#include <bit>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>

#include "rng/xoshiro256ss.hpp"

namespace quora::net {
namespace {

std::vector<Link> ring_links(std::uint32_t n) {
  std::vector<Link> links;
  links.reserve(n);
  for (SiteId i = 0; i < n; ++i) links.push_back(Link{i, (i + 1) % n});
  return links;
}

} // namespace

std::vector<std::uint32_t> spread_order(std::uint32_t n) {
  if (n == 0) return {};
  const std::uint32_t bits = n <= 1 ? 1 : std::bit_width(n - 1);
  std::vector<std::uint32_t> order;
  order.reserve(n);
  for (std::uint32_t i = 0; i < (1u << bits); ++i) {
    std::uint32_t rev = 0;
    for (std::uint32_t b = 0; b < bits; ++b) {
      if (i & (1u << b)) rev |= 1u << (bits - 1 - b);
    }
    if (rev < n) order.push_back(rev);
  }
  return order;
}

std::vector<Link> chord_order(std::uint32_t n) {
  if (n < 4) return {}; // a ring on 3 sites is already complete
  const std::vector<std::uint32_t> offsets = spread_order(n);
  std::set<std::pair<SiteId, SiteId>> seen;
  for (SiteId i = 0; i < n; ++i) {
    seen.insert(std::minmax<SiteId>(i, (i + 1) % n)); // ring edges excluded
  }
  std::vector<Link> chords;
  chords.reserve(static_cast<std::size_t>(n) * (n - 1) / 2 - n);
  for (std::uint32_t skip = n / 2; skip >= 2; --skip) {
    for (const std::uint32_t start : offsets) {
      const SiteId a = start;
      const SiteId b = (start + skip) % n;
      const auto key = std::minmax(a, b);
      if (seen.insert(key).second) chords.push_back(Link{key.first, key.second});
    }
  }
  return chords;
}

Topology make_ring(std::uint32_t n) {
  if (n < 3) throw std::invalid_argument("make_ring: need at least 3 sites");
  return Topology("ring-" + std::to_string(n), n, ring_links(n));
}

Topology make_ring_with_chords(std::uint32_t n, std::uint32_t chords) {
  if (n < 3) throw std::invalid_argument("make_ring_with_chords: need at least 3 sites");
  const std::vector<Link> all_chords = chord_order(n);
  if (chords > all_chords.size()) {
    throw std::invalid_argument("make_ring_with_chords: more chords than available");
  }
  std::vector<Link> links = ring_links(n);
  links.insert(links.end(), all_chords.begin(), all_chords.begin() + chords);
  return Topology("topology-" + std::to_string(chords) + "-n" + std::to_string(n), n,
                  std::move(links));
}

Topology make_fully_connected(std::uint32_t n) {
  if (n < 2) throw std::invalid_argument("make_fully_connected: need at least 2 sites");
  std::vector<Link> links;
  links.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (SiteId a = 0; a < n; ++a) {
    for (SiteId b = a + 1; b < n; ++b) links.push_back(Link{a, b});
  }
  return Topology("complete-" + std::to_string(n), n, std::move(links));
}

Topology make_star(std::uint32_t n, Vote hub_votes, Vote leaf_votes) {
  if (n < 2) throw std::invalid_argument("make_star: need at least 2 sites");
  std::vector<Link> links;
  links.reserve(n - 1);
  for (SiteId leaf = 1; leaf < n; ++leaf) links.push_back(Link{0, leaf});
  std::vector<Vote> votes(n, leaf_votes);
  votes[0] = hub_votes;
  return Topology("star-" + std::to_string(n), n, std::move(links), std::move(votes));
}

Topology make_grid(std::uint32_t width, std::uint32_t height) {
  if (width == 0 || height == 0) throw std::invalid_argument("make_grid: empty grid");
  const std::uint32_t n = width * height;
  std::vector<Link> links;
  for (std::uint32_t y = 0; y < height; ++y) {
    for (std::uint32_t x = 0; x < width; ++x) {
      const SiteId s = y * width + x;
      if (x + 1 < width) links.push_back(Link{s, s + 1});
      if (y + 1 < height) links.push_back(Link{s, s + width});
    }
  }
  return Topology("grid-" + std::to_string(width) + "x" + std::to_string(height), n,
                  std::move(links));
}

Topology make_binary_tree(std::uint32_t n) {
  if (n == 0) throw std::invalid_argument("make_binary_tree: no sites");
  std::vector<Link> links;
  links.reserve(n - 1);
  for (SiteId i = 1; i < n; ++i) links.push_back(Link{(i - 1) / 2, i});
  return Topology("tree-" + std::to_string(n), n, std::move(links));
}

Topology make_geo(const GeoSpec& spec) {
  if (spec.regions == 0 || spec.dcs_per_region == 0 || spec.racks_per_dc == 0 ||
      spec.sites_per_rack == 0) {
    throw std::invalid_argument("make_geo: every tier needs at least 1 member");
  }
  const std::uint32_t sites_per_dc = spec.racks_per_dc * spec.sites_per_rack;
  const std::uint32_t sites_per_region = spec.dcs_per_region * sites_per_dc;
  const std::uint32_t n = spec.regions * sites_per_region;
  const auto site = [&](std::uint32_t r, std::uint32_t d, std::uint32_t k,
                        std::uint32_t i) -> SiteId {
    return ((r * spec.dcs_per_region + d) * spec.racks_per_dc + k) *
               spec.sites_per_rack +
           i;
  };

  std::vector<Link> links;
  std::vector<LinkLatency> latencies;
  const auto add = [&](SiteId a, SiteId b, LinkLatency lat) {
    links.push_back(Link{a, b});
    latencies.push_back(lat);
  };

  for (std::uint32_t r = 0; r < spec.regions; ++r) {
    for (std::uint32_t d = 0; d < spec.dcs_per_region; ++d) {
      for (std::uint32_t k = 0; k < spec.racks_per_dc; ++k) {
        // Complete graph within the rack.
        for (std::uint32_t i = 0; i < spec.sites_per_rack; ++i) {
          for (std::uint32_t j = i + 1; j < spec.sites_per_rack; ++j) {
            add(site(r, d, k, i), site(r, d, k, j), spec.intra_rack);
          }
        }
        // Rack leaders complete within the DC.
        for (std::uint32_t k2 = k + 1; k2 < spec.racks_per_dc; ++k2) {
          add(site(r, d, k, 0), site(r, d, k2, 0), spec.intra_dc);
        }
      }
      // DC leaders complete within the region.
      for (std::uint32_t d2 = d + 1; d2 < spec.dcs_per_region; ++d2) {
        add(site(r, d, 0, 0), site(r, d2, 0, 0), spec.inter_dc);
      }
    }
    // One inter-region link per DC index, so losing a single DC leader
    // cannot sever a region pair when dcs_per_region >= 2.
    for (std::uint32_t r2 = r + 1; r2 < spec.regions; ++r2) {
      for (std::uint32_t d = 0; d < spec.dcs_per_region; ++d) {
        add(site(r, d, 0, 0), site(r2, d, 0, 0), spec.inter_region);
      }
    }
  }

  Topology topo("geo-" + std::to_string(spec.regions) + "x" +
                    std::to_string(spec.dcs_per_region) + "x" +
                    std::to_string(spec.racks_per_dc) + "x" +
                    std::to_string(spec.sites_per_rack),
                n, std::move(links));
  for (LinkId l = 0; l < latencies.size(); ++l) {
    topo.set_link_latency(l, latencies[l]);
  }
  for (std::uint32_t r = 0; r < spec.regions; ++r) {
    for (std::uint32_t d = 0; d < spec.dcs_per_region; ++d) {
      for (std::uint32_t k = 0; k < spec.racks_per_dc; ++k) {
        const std::string path = "rg" + std::to_string(r) + "/dc" +
                                 std::to_string(d) + "/rk" + std::to_string(k);
        for (std::uint32_t i = 0; i < spec.sites_per_rack; ++i) {
          topo.set_domain(site(r, d, k, i), path);
        }
      }
    }
  }
  return topo;
}

Topology make_erdos_renyi(std::uint32_t n, double p, std::uint64_t seed) {
  if (n == 0) throw std::invalid_argument("make_erdos_renyi: no sites");
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("make_erdos_renyi: bad p");
  rng::Xoshiro256ss gen(seed);
  std::vector<Link> links;
  for (SiteId a = 0; a < n; ++a) {
    for (SiteId b = a + 1; b < n; ++b) {
      if (gen.next_double() < p) links.push_back(Link{a, b});
    }
  }
  return Topology("gnp-" + std::to_string(n), n, std::move(links));
}

} // namespace quora::net
