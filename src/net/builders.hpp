#pragma once

#include <cstdint>
#include <vector>

#include "net/topology.hpp"

namespace quora::net {

/// Ring of n sites (n >= 3): site i linked to (i+1) mod n.
/// The paper's Topology 0.
Topology make_ring(std::uint32_t n);

/// Ring of n sites plus `chords` additional links — the paper's
/// "Topology k" family (§5.1): k ∈ {0, 1, 2, 4, 16, 256, 4949} for n = 101.
///
/// The paper defers exact chord placement to its companion report [14],
/// which is not available; we substitute a deterministic, maximally-spread
/// rule (see DESIGN.md §4): chords are enumerated by decreasing skip length
/// starting at floor(n/2), and within each skip the starting offsets follow
/// a bit-reversal (van der Corput) order so that any prefix of the sequence
/// is evenly spread around the ring. `chords` may run all the way to
/// n(n-1)/2 - n, at which point the graph is complete.
Topology make_ring_with_chords(std::uint32_t n, std::uint32_t chords);

/// Complete graph on n sites — the paper's Topology 4949 for n = 101.
Topology make_fully_connected(std::uint32_t n);

/// Star: hub = site 0, leaves 1..n-1. With `hub_votes` = 0 this is the
/// simulable stand-in for a single-bus network in which the bus itself
/// holds no copy (paper §4.2's bus density functions).
Topology make_star(std::uint32_t n, Vote hub_votes = 1, Vote leaf_votes = 1);

/// w×h grid with 4-neighborhood.
Topology make_grid(std::uint32_t width, std::uint32_t height);

/// Complete binary tree on n sites (site 0 the root; children of i are
/// 2i+1, 2i+2).
Topology make_binary_tree(std::uint32_t n);

/// G(n, p) Erdős–Rényi graph, deterministic in `seed`. Isolated vertices
/// are allowed; callers wanting connectivity should test for it.
Topology make_erdos_renyi(std::uint32_t n, double p, std::uint64_t seed);

/// Geometry of a geo-distributed deployment: `regions` regions, each with
/// `dcs_per_region` datacenters, each datacenter `racks_per_dc` racks of
/// `sites_per_rack` sites. Sites are numbered region-major, so region r
/// spans a contiguous id range; every site gets the domain path
/// "rg<r>/dc<d>/rk<k>".
///
/// Link structure (deterministic, redundancy chosen so no single site
/// failure partitions the graph when every tier has >= 2 members):
///   - complete graph within each rack              (intra_rack latency)
///   - complete graph over rack leaders within a DC (intra_dc latency)
///   - complete graph over DC leaders in a region   (inter_dc latency)
///   - for each region pair, one link per DC index
///     between the two regions' DC leaders          (inter_region latency)
/// A tier with a single member contributes no links at that tier.
struct GeoSpec {
  std::uint32_t regions = 3;
  std::uint32_t dcs_per_region = 2;
  std::uint32_t racks_per_dc = 1;
  std::uint32_t sites_per_rack = 4;
  LinkLatency intra_rack{0.0002, 0.0001};
  LinkLatency intra_dc{0.0005, 0.0005};
  LinkLatency inter_dc{0.002, 0.001};
  LinkLatency inter_region{0.03, 0.01};
};

/// Geo-distributed variant of the Table-1 topologies: builds the GeoSpec
/// deployment with uniform one-vote sites, domain paths on every site, and
/// a latency class on every link. Name: "geo-<R>x<D>x<K>x<S>".
Topology make_geo(const GeoSpec& spec);

/// The deterministic chord enumeration used by `make_ring_with_chords`,
/// exposed for tests and for documenting the exact placement: returns the
/// full candidate order (all n(n-1)/2 - n chords for odd n).
std::vector<Link> chord_order(std::uint32_t n);

/// Bit-reversal permutation of 0..n-1 (smallest power of two >= n, values
/// >= n dropped): any prefix is near-evenly spread over [0, n).
std::vector<std::uint32_t> spread_order(std::uint32_t n);

} // namespace quora::net
