#include "net/topology.hpp"

#include <algorithm>
#include <numeric>
#include <set>
#include <stdexcept>
#include <utility>

namespace quora::net {

Topology::Topology(std::string name, std::uint32_t site_count, std::vector<Link> links,
                   std::vector<Vote> votes)
    : name_(std::move(name)),
      site_count_(site_count),
      links_(std::move(links)),
      votes_(std::move(votes)) {
  if (site_count_ == 0) throw std::invalid_argument("Topology: no sites");
  if (votes_.size() != site_count_) {
    throw std::invalid_argument("Topology: votes size != site count");
  }

  std::set<std::pair<SiteId, SiteId>> seen;
  for (const Link& l : links_) {
    if (l.a >= site_count_ || l.b >= site_count_) {
      throw std::invalid_argument("Topology: link references unknown site");
    }
    if (l.a == l.b) throw std::invalid_argument("Topology: self-loop link");
    const auto key = std::minmax(l.a, l.b);
    if (!seen.insert(key).second) {
      throw std::invalid_argument("Topology: duplicate link");
    }
  }

  total_votes_ = std::accumulate(votes_.begin(), votes_.end(), Vote{0});
  uniform_votes_ =
      std::all_of(votes_.begin(), votes_.end(),
                  [this](const Vote v) { return v == votes_.front(); });

  // CSR construction: count degrees, prefix-sum, fill.
  offsets_.assign(site_count_ + 1, 0);
  for (const Link& l : links_) {
    ++offsets_[l.a + 1];
    ++offsets_[l.b + 1];
  }
  for (std::size_t i = 1; i < offsets_.size(); ++i) offsets_[i] += offsets_[i - 1];

  adjacency_.resize(links_.size() * 2);
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (LinkId id = 0; id < links_.size(); ++id) {
    const Link& l = links_[id];
    adjacency_[cursor[l.a]++] = Edge{l.b, id};
    adjacency_[cursor[l.b]++] = Edge{l.a, id};
  }
}

Topology::Topology(std::string name, std::uint32_t site_count, std::vector<Link> links)
    : Topology(std::move(name), site_count, std::move(links),
               std::vector<Vote>(site_count, Vote{1})) {}

bool Topology::has_link(SiteId a, SiteId b) const {
  return find_link(a, b) != link_count();
}

LinkId Topology::find_link(SiteId a, SiteId b) const {
  if (a >= site_count_ || b >= site_count_) return link_count();
  for (const Edge& e : neighbors(a)) {
    if (e.neighbor == b) return e.link;
  }
  return link_count();
}

namespace {

bool valid_domain_path(const std::string& path) {
  if (path.empty() || path.front() == '/' || path.back() == '/') return false;
  bool component_empty = true;
  for (const char c : path) {
    if (c == '/') {
      if (component_empty) return false;  // "a//b"
      component_empty = true;
      continue;
    }
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) return false;
    component_empty = false;
  }
  return !component_empty;
}

} // namespace

void Topology::set_domain(SiteId s, std::string path) {
  if (s >= site_count_) {
    throw std::invalid_argument("Topology: domain for unknown site");
  }
  if (!path.empty() && !valid_domain_path(path)) {
    throw std::invalid_argument("Topology: malformed domain path '" + path + "'");
  }
  if (path.empty() && domains_.empty()) return;  // clearing a no-op
  if (domains_.empty()) domains_.resize(site_count_);
  domains_[s] = std::move(path);
}

const std::string& Topology::domain(SiteId s) const {
  static const std::string kEmpty;
  if (s >= site_count_) throw std::out_of_range("Topology: domain of unknown site");
  return domains_.empty() ? kEmpty : domains_[s];
}

bool Topology::domain_contains(const std::string& prefix,
                               const std::string& site_domain) {
  if (site_domain.empty()) return false;
  if (prefix.empty()) return true;
  if (site_domain.size() < prefix.size()) return false;
  if (site_domain.compare(0, prefix.size(), prefix) != 0) return false;
  return site_domain.size() == prefix.size() ||
         site_domain[prefix.size()] == '/';
}

std::vector<SiteId> Topology::sites_in_domain(const std::string& prefix) const {
  std::vector<SiteId> out;
  if (domains_.empty()) return out;
  for (SiteId s = 0; s < site_count_; ++s) {
    if (domain_contains(prefix, domains_[s])) out.push_back(s);
  }
  return out;
}

std::string Topology::domain_prefix(SiteId s, int levels) const {
  const std::string& path = domain(s);
  if (path.empty() || levels <= 0) return {};
  std::size_t pos = 0;
  for (int i = 0; i < levels; ++i) {
    pos = path.find('/', pos);
    if (pos == std::string::npos) return path;  // shallower than requested
    ++pos;
  }
  return path.substr(0, pos - 1);
}

std::vector<std::string> Topology::regions() const {
  std::vector<std::string> out;
  if (domains_.empty()) return out;
  for (SiteId s = 0; s < site_count_; ++s) {
    std::string region = domain_prefix(s, 1);
    if (region.empty()) continue;
    if (std::find(out.begin(), out.end(), region) == out.end()) {
      out.push_back(std::move(region));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void Topology::set_link_latency(LinkId l, LinkLatency latency) {
  if (l >= link_count()) {
    throw std::invalid_argument("Topology: latency for unknown link");
  }
  if (latency.base < 0.0 || latency.jitter < 0.0) {
    throw std::invalid_argument("Topology: negative link latency");
  }
  if (link_latencies_.empty()) link_latencies_.resize(link_count());
  link_latencies_[l] = latency;
}

LinkLatency Topology::link_latency(LinkId l) const {
  if (l >= link_count()) throw std::out_of_range("Topology: latency of unknown link");
  return link_latencies_.empty() ? LinkLatency{} : link_latencies_[l];
}

} // namespace quora::net
