#include "net/topology.hpp"

#include <algorithm>
#include <numeric>
#include <set>
#include <stdexcept>
#include <utility>

namespace quora::net {

Topology::Topology(std::string name, std::uint32_t site_count, std::vector<Link> links,
                   std::vector<Vote> votes)
    : name_(std::move(name)),
      site_count_(site_count),
      links_(std::move(links)),
      votes_(std::move(votes)) {
  if (site_count_ == 0) throw std::invalid_argument("Topology: no sites");
  if (votes_.size() != site_count_) {
    throw std::invalid_argument("Topology: votes size != site count");
  }

  std::set<std::pair<SiteId, SiteId>> seen;
  for (const Link& l : links_) {
    if (l.a >= site_count_ || l.b >= site_count_) {
      throw std::invalid_argument("Topology: link references unknown site");
    }
    if (l.a == l.b) throw std::invalid_argument("Topology: self-loop link");
    const auto key = std::minmax(l.a, l.b);
    if (!seen.insert(key).second) {
      throw std::invalid_argument("Topology: duplicate link");
    }
  }

  total_votes_ = std::accumulate(votes_.begin(), votes_.end(), Vote{0});

  // CSR construction: count degrees, prefix-sum, fill.
  offsets_.assign(site_count_ + 1, 0);
  for (const Link& l : links_) {
    ++offsets_[l.a + 1];
    ++offsets_[l.b + 1];
  }
  for (std::size_t i = 1; i < offsets_.size(); ++i) offsets_[i] += offsets_[i - 1];

  adjacency_.resize(links_.size() * 2);
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (LinkId id = 0; id < links_.size(); ++id) {
    const Link& l = links_[id];
    adjacency_[cursor[l.a]++] = Edge{l.b, id};
    adjacency_[cursor[l.b]++] = Edge{l.a, id};
  }
}

Topology::Topology(std::string name, std::uint32_t site_count, std::vector<Link> links)
    : Topology(std::move(name), site_count, std::move(links),
               std::vector<Vote>(site_count, Vote{1})) {}

bool Topology::has_link(SiteId a, SiteId b) const {
  if (a >= site_count_ || b >= site_count_) return false;
  const auto adj = neighbors(a);
  return std::any_of(adj.begin(), adj.end(),
                     [b](const Edge& e) { return e.neighbor == b; });
}

} // namespace quora::net
