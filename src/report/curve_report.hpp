#pragma once

#include <iosfwd>
#include <string>

#include "metrics/experiment.hpp"

namespace quora::report {

/// Renders one measured figure (availability vs q_r, one column per
/// alpha) exactly in the shape the paper plots, plus a footer giving each
/// alpha's optimal assignment — what Figure-1's step 4 selects from the
/// measured data.
///
/// `stride` thins the q_r rows for terminal readability (every point is
/// still used for the optima); stride 1 prints all rows.
void print_curve_table(std::ostream& os, const metrics::CurveResult& result,
                       unsigned stride = 1);

/// Same series as CSV: header `q_r,alpha_...` then one row per q_r.
void write_curve_csv(std::ostream& os, const metrics::CurveResult& result);

/// One-line summary of the optimum for a given alpha from the pooled
/// curve, e.g. "alpha=0.75: q_r=1 q_w=101 A=0.7213".
std::string optimum_line(const metrics::CurveResult& result, double alpha);

} // namespace quora::report
