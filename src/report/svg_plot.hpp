#pragma once

#include <iosfwd>
#include <string>

#include "metrics/experiment.hpp"

namespace quora::report {

/// Renders a measured figure as a standalone SVG — the literal
/// regeneration of the paper's Figures 2-7: availability (y, 0..1)
/// against read quorum q_r (x, 1..floor(T/2)), one polyline per alpha,
/// labeled like the paper ("the curves ... represent, from bottom to top,
/// alpha = 0, .25, .50, .75, and 1").
///
/// Dependency-free output: axes, gridlines, series, legend, CI whiskers
/// at every `whisker_stride`-th point (0 disables whiskers).
struct SvgOptions {
  unsigned width = 720;
  unsigned height = 480;
  unsigned whisker_stride = 7;
  std::string title;  // defaults to the topology name
};

void write_curve_svg(std::ostream& os, const metrics::CurveResult& result,
                     const SvgOptions& options = {});

/// Convenience: write to `path`; throws std::runtime_error on I/O failure.
void write_curve_svg_file(const std::string& path,
                          const metrics::CurveResult& result,
                          const SvgOptions& options = {});

} // namespace quora::report
