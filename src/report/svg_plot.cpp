#include "report/svg_plot.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace quora::report {
namespace {

constexpr unsigned kMarginLeft = 64;
constexpr unsigned kMarginRight = 150;  // legend gutter
constexpr unsigned kMarginTop = 40;
constexpr unsigned kMarginBottom = 48;

// Colorblind-safe series palette (Okabe-Ito), bottom-to-top curves.
constexpr const char* kColors[] = {"#0072B2", "#E69F00", "#009E73",
                                   "#D55E00", "#CC79A7", "#56B4E9",
                                   "#F0E442", "#000000"};

std::string fmt(double x, int precision = 2) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << x;
  return ss.str();
}

} // namespace

void write_curve_svg(std::ostream& os, const metrics::CurveResult& result,
                     const SvgOptions& options) {
  if (result.q_values.empty() || result.alphas.empty()) {
    throw std::invalid_argument("write_curve_svg: empty result");
  }
  const double plot_w =
      static_cast<double>(options.width - kMarginLeft - kMarginRight);
  const double plot_h =
      static_cast<double>(options.height - kMarginTop - kMarginBottom);
  const double x_min = result.q_values.front();
  const double x_max = result.q_values.back();

  const auto x_of = [&](double q) {
    return kMarginLeft + (q - x_min) / std::max(1.0, x_max - x_min) * plot_w;
  };
  const auto y_of = [&](double a) {
    return kMarginTop + (1.0 - std::clamp(a, 0.0, 1.0)) * plot_h;
  };

  const std::string title =
      options.title.empty() ? result.topology_name : options.title;

  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << options.width
     << "\" height=\"" << options.height << "\" viewBox=\"0 0 " << options.width
     << ' ' << options.height << "\">\n"
     << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n"
     << "<text x=\"" << kMarginLeft << "\" y=\"24\" font-family=\"sans-serif\""
     << " font-size=\"15\" font-weight=\"bold\">" << title << "</text>\n"
     << "<text x=\"" << kMarginLeft << "\" y=\"" << options.height - 12
     << "\" font-family=\"sans-serif\" font-size=\"12\">read quorum q_r"
     << "  (q_w = T - q_r + 1, T = " << result.total << ")</text>\n";

  // Horizontal gridlines + y labels at 0, .25, .5, .75, 1.
  for (int i = 0; i <= 4; ++i) {
    const double a = 0.25 * i;
    const double y = y_of(a);
    os << "<line x1=\"" << kMarginLeft << "\" y1=\"" << y << "\" x2=\""
       << kMarginLeft + plot_w << "\" y2=\"" << y
       << "\" stroke=\"#dddddd\" stroke-width=\"1\"/>\n"
       << "<text x=\"" << kMarginLeft - 8 << "\" y=\"" << y + 4
       << "\" text-anchor=\"end\" font-family=\"sans-serif\" font-size=\"11\">"
       << fmt(a) << "</text>\n";
  }
  // X ticks: first, quarters, last.
  for (int i = 0; i <= 4; ++i) {
    const double q = x_min + (x_max - x_min) * i / 4.0;
    const double x = x_of(q);
    os << "<line x1=\"" << x << "\" y1=\"" << kMarginTop + plot_h << "\" x2=\""
       << x << "\" y2=\"" << kMarginTop + plot_h + 5
       << "\" stroke=\"#333333\"/>\n"
       << "<text x=\"" << x << "\" y=\"" << kMarginTop + plot_h + 18
       << "\" text-anchor=\"middle\" font-family=\"sans-serif\""
       << " font-size=\"11\">" << static_cast<int>(q + 0.5) << "</text>\n";
  }
  // Axes.
  os << "<rect x=\"" << kMarginLeft << "\" y=\"" << kMarginTop << "\" width=\""
     << plot_w << "\" height=\"" << plot_h
     << "\" fill=\"none\" stroke=\"#333333\" stroke-width=\"1\"/>\n"
     << "<text x=\"16\" y=\"" << kMarginTop + plot_h / 2
     << "\" font-family=\"sans-serif\" font-size=\"12\" transform=\"rotate(-90 16 "
     << kMarginTop + plot_h / 2 << ")\" text-anchor=\"middle\">availability"
     << "</text>\n";

  // Series (one polyline per alpha) + optional CI whiskers + legend.
  for (std::size_t a = 0; a < result.alphas.size(); ++a) {
    const char* color = kColors[a % std::size(kColors)];
    os << "<polyline fill=\"none\" stroke=\"" << color
       << "\" stroke-width=\"1.8\" points=\"";
    for (std::size_t qi = 0; qi < result.q_values.size(); ++qi) {
      os << fmt(x_of(result.q_values[qi]), 1) << ','
         << fmt(y_of(result.mean[a][qi]), 1) << ' ';
    }
    os << "\"/>\n";

    if (options.whisker_stride > 0) {
      for (std::size_t qi = 0; qi < result.q_values.size();
           qi += options.whisker_stride) {
        const double x = x_of(result.q_values[qi]);
        const double lo = y_of(result.mean[a][qi] - result.half_width[a][qi]);
        const double hi = y_of(result.mean[a][qi] + result.half_width[a][qi]);
        os << "<line x1=\"" << fmt(x, 1) << "\" y1=\"" << fmt(lo, 1)
           << "\" x2=\"" << fmt(x, 1) << "\" y2=\"" << fmt(hi, 1)
           << "\" stroke=\"" << color << "\" stroke-width=\"1\"/>\n";
      }
    }

    const double ly = kMarginTop + 16.0 * static_cast<double>(a);
    os << "<line x1=\"" << kMarginLeft + plot_w + 12 << "\" y1=\"" << ly
       << "\" x2=\"" << kMarginLeft + plot_w + 34 << "\" y2=\"" << ly
       << "\" stroke=\"" << color << "\" stroke-width=\"2\"/>\n"
       << "<text x=\"" << kMarginLeft + plot_w + 40 << "\" y=\"" << ly + 4
       << "\" font-family=\"sans-serif\" font-size=\"11\">alpha = "
       << fmt(result.alphas[a]) << "</text>\n";
  }

  os << "<text x=\"" << kMarginLeft + plot_w << "\" y=\"24\" text-anchor=\"end\""
     << " font-family=\"sans-serif\" font-size=\"10\" fill=\"#666666\">"
     << result.batches << " batches, max CI half-width "
     << fmt(result.max_half_width, 4) << "</text>\n"
     << "</svg>\n";
}

void write_curve_svg_file(const std::string& path,
                          const metrics::CurveResult& result,
                          const SvgOptions& options) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_curve_svg_file: cannot open " + path);
  write_curve_svg(out, result, options);
}

} // namespace quora::report
