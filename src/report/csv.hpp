#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace quora::report {

/// Minimal RFC-4180 CSV emitter, for piping bench series into plotting
/// tools to redraw the paper's figures.
class CsvWriter {
public:
  explicit CsvWriter(std::ostream& os) : os_(&os) {}

  void row(const std::vector<std::string>& cells);

  /// Quotes a cell iff it contains a comma, quote or newline.
  static std::string escape(const std::string& cell);

private:
  std::ostream* os_;
};

} // namespace quora::report
