#include "report/curve_report.hpp"

#include <ostream>
#include <sstream>

#include "core/optimize.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"

namespace quora::report {

void print_curve_table(std::ostream& os, const metrics::CurveResult& result,
                       unsigned stride) {
  if (stride == 0) stride = 1;
  std::vector<std::string> header{"q_r", "q_w"};
  for (const double a : result.alphas) {
    header.push_back("alpha=" + TextTable::fmt(a, 2));
  }
  TextTable table(std::move(header));

  for (std::size_t qi = 0; qi < result.q_values.size(); ++qi) {
    const bool last = qi + 1 == result.q_values.size();
    if (qi % stride != 0 && !last) continue;
    const net::Vote q = result.q_values[qi];
    std::vector<std::string> row{std::to_string(q),
                                 std::to_string(result.total - q + 1)};
    for (std::size_t a = 0; a < result.alphas.size(); ++a) {
      row.push_back(TextTable::fmt(result.mean[a][qi], 4));
    }
    table.add_row(std::move(row));
  }
  os << result.topology_name << "  (T=" << result.total
     << ", batches=" << result.batches
     << ", max CI half-width=" << TextTable::fmt(result.max_half_width, 4) << ")\n";
  table.print(os);
  for (const double a : result.alphas) os << optimum_line(result, a) << '\n';
}

void write_curve_csv(std::ostream& os, const metrics::CurveResult& result) {
  CsvWriter csv(os);
  std::vector<std::string> header{"q_r", "q_w"};
  for (const double a : result.alphas) {
    header.push_back("alpha_" + TextTable::fmt(a, 2));
    header.push_back("ci_" + TextTable::fmt(a, 2));
  }
  csv.row(header);
  for (std::size_t qi = 0; qi < result.q_values.size(); ++qi) {
    const net::Vote q = result.q_values[qi];
    std::vector<std::string> row{std::to_string(q),
                                 std::to_string(result.total - q + 1)};
    for (std::size_t a = 0; a < result.alphas.size(); ++a) {
      row.push_back(TextTable::fmt(result.mean[a][qi], 6));
      row.push_back(TextTable::fmt(result.half_width[a][qi], 6));
    }
    csv.row(row);
  }
}

std::string optimum_line(const metrics::CurveResult& result, double alpha) {
  const core::AvailabilityCurve curve = result.pooled_curve();
  const core::OptResult best = core::optimize_exhaustive(curve, alpha);
  std::ostringstream ss;
  ss << "optimal @ alpha=" << TextTable::fmt(alpha, 2) << ": q_r=" << best.q_r()
     << " q_w=" << best.q_w() << "  A=" << TextTable::fmt(best.value, 4);
  return ss.str();
}

} // namespace quora::report
