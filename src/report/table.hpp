#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace quora::report {

/// Fixed-width text table with automatic column sizing — the output format
/// of every bench binary, so regenerated paper rows line up readably in a
/// terminal and in EXPERIMENTS.md code blocks.
class TextTable {
public:
  /// Column headers define the column count; subsequent rows must match.
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// A full-width separator line is drawn before the next row added.
  void add_separator();

  void print(std::ostream& os) const;

  std::size_t rows() const noexcept { return rows_.size(); }

  /// Fixed-precision float formatting helpers.
  static std::string fmt(double value, int precision = 4);
  static std::string pct(double fraction, int precision = 1);

private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty row == separator
};

} // namespace quora::report
