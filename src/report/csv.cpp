#include "report/csv.hpp"

#include <ostream>

namespace quora::report {

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) *os_ << ',';
    *os_ << escape(cells[i]);
  }
  *os_ << '\n';
}

} // namespace quora::report
