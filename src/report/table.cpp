#include "report/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace quora::report {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("TextTable: empty header");
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("TextTable: cell count mismatch");
  }
  rows_.push_back(std::move(cells));
}

void TextTable::add_separator() { rows_.emplace_back(); }

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(width[c]))
         << std::right << row[c];
    }
    os << '\n';
  };
  const auto print_rule = [&] {
    std::size_t total = 0;
    for (const std::size_t w : width) total += w;
    total += 2 * (width.size() - 1);
    os << std::string(total, '-') << '\n';
  };

  print_row(header_);
  print_rule();
  for (const auto& row : rows_) {
    if (row.empty()) {
      print_rule();
    } else {
      print_row(row);
    }
  }
}

std::string TextTable::fmt(double value, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << value;
  return ss.str();
}

std::string TextTable::pct(double fraction, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << fraction * 100.0 << '%';
  return ss.str();
}

} // namespace quora::report
