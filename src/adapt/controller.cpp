#include "adapt/controller.hpp"

#include <stdexcept>

#include "core/availability.hpp"
#include "core/optimize.hpp"

namespace quora::adapt {

void AdaptiveController::Options::validate() const {
  if (!(epoch_length > 0.0)) {
    throw std::invalid_argument("adapt: epoch_length must be positive");
  }
  if (!(threshold >= 0.0 && threshold <= 1.0)) {
    throw std::invalid_argument("adapt: threshold outside [0, 1]");
  }
  if (dwell < 1) {
    throw std::invalid_argument("adapt: dwell must be at least 1 epoch");
  }
  if (!(min_write_availability >= 0.0 && min_write_availability <= 1.0)) {
    throw std::invalid_argument("adapt: write floor outside [0, 1]");
  }
  if (!(omega > 0.0)) {
    throw std::invalid_argument("adapt: omega must be positive");
  }
  if (!(site_reliability > 0.0 && site_reliability <= 1.0)) {
    throw std::invalid_argument("adapt: site reliability outside (0, 1]");
  }
  if (!(min_samples >= 0.0)) {
    throw std::invalid_argument("adapt: min_samples must be non-negative");
  }
  if (!(forget > 0.0 && forget <= 1.0)) {
    throw std::invalid_argument("adapt: forget factor outside (0, 1]");
  }
}

AdaptiveController::AdaptiveController(std::uint32_t site_count,
                                       net::Vote total_votes, Options opts)
    : opts_(opts), hist_(site_count, total_votes) {
  opts_.validate();
}

AdaptiveController::Decision AdaptiveController::epoch(
    double alpha, quorum::QuorumSpec current) {
  ++epochs_;
  Decision d;
  d.spec = current;
  if (hist_.total_samples() < opts_.min_samples) {
    streak_ = 0;
    hist_.decay(opts_.forget);
    return d;
  }

  const core::VotePdf mixture = hist_.pooled_pdf(opts_.site_reliability);
  const core::AvailabilityCurve curve(mixture);
  d.evaluated = true;
  // The effective assignment need not come from the canonical family
  // (e.g. strict majority), so evaluate it through the general form.
  d.current_value =
      opts_.objective == Objective::kWeighted
          ? alpha * curve.read_tail(current.q_r) +
                opts_.omega * (1.0 - alpha) * curve.write_tail(current.q_w)
          : curve.value(alpha, current.q_r, current.q_w);

  core::OptResult opt;
  switch (opts_.objective) {
    case Objective::kAvailability:
      opt = core::optimize_exhaustive(curve, alpha);
      break;
    case Objective::kWriteConstrained: {
      const auto constrained = core::optimize_write_constrained(
          curve, alpha, opts_.min_write_availability);
      if (!constrained) {
        // No q_r meets the floor under the current empirical mixture:
        // report infeasible and hold the present assignment.
        d.feasible = false;
        d.candidate_value = d.current_value;
        streak_ = 0;
        hist_.decay(opts_.forget);
        return d;
      }
      opt = *constrained;
      break;
    }
    case Objective::kWeighted:
      opt = core::optimize_weighted(curve, alpha, opts_.omega);
      break;
  }

  d.spec = opt.spec;
  d.candidate_value = opt.value;
  d.predicted_gain = d.candidate_value - d.current_value;

  if (opt.spec != current && d.predicted_gain > opts_.threshold) {
    if (opt.spec == streak_spec_) {
      ++streak_;
    } else {
      streak_spec_ = opt.spec;
      streak_ = 1;
    }
  } else {
    streak_ = 0;
  }
  d.streak = streak_;
  if (streak_ >= opts_.dwell) {
    d.install = true;
    ++installs_;
    streak_ = 0;
  }
  hist_.decay(opts_.forget);
  return d;
}

const char* objective_name(AdaptiveController::Objective objective) {
  switch (objective) {
    case AdaptiveController::Objective::kAvailability: return "availability";
    case AdaptiveController::Objective::kWriteConstrained:
      return "write-constrained";
    case AdaptiveController::Objective::kWeighted: return "weighted";
  }
  return "unknown";
}

} // namespace quora::adapt
