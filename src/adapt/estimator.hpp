#pragma once

#include <cstdint>
#include <vector>

#include "core/component_dist.hpp"
#include "net/types.hpp"

namespace quora::adapt {

/// Per-site on-line histogram of component vote totals — the paper's
/// empirical f_i(v) estimator taken live (§2.2 "each site determines the
/// relative frequency f_i(v)"). Site i samples, at communication instants
/// while it is operational, how many votes its partition component holds;
/// the counts estimate the *conditional* density f_i(v | site i up).
///
/// Footnote 4 supplies the unconditioning at read-out: a site only ever
/// observes while operational, and p * A' = A relates the conditional
/// availability A' to the absolute one, so the absolute density is
///
///   f_i(0) = (1 - p) + p * c_i(0) / n_i,    f_i(v) = p * c_i(v) / n_i
///
/// with p the site's steady-state reliability, c_i(v) the observed count
/// and n_i the sample total. (c_i(0) is nonzero only for zero-vote sites,
/// which can sit alone in a zero-vote component while up.)
///
/// Counts are doubles so `decay` can apply exponential forgetting — the
/// knob that lets the adaptive loop track drifting failure regimes
/// instead of averaging them away. No RNG, no clock: callers feed samples
/// and epochs deterministically.
class EmpiricalVoteHistogram {
public:
  EmpiricalVoteHistogram(std::uint32_t site_count, net::Vote total_votes);

  /// One observation at `site`: its component currently holds `votes`
  /// votes. Callers must only record while the site is operational — the
  /// conditioning in `site_pdf` assumes it.
  void record(net::SiteId site, net::Vote votes);

  std::uint32_t site_count() const noexcept { return sites_; }
  net::Vote total_votes() const noexcept { return total_; }
  double samples(net::SiteId site) const;
  double total_samples() const noexcept { return total_samples_; }
  double count(net::SiteId site, net::Vote v) const;

  /// Footnote-4 conditioned read-out for one site (see the class docs).
  /// With no samples yet the density degenerates to the prior
  /// "everything reachable": mass p at v = T, 1 - p at 0.
  core::VotePdf site_pdf(net::SiteId site, double p) const;

  /// Pooled read-out across every site: counts summed before
  /// normalization, so each site weighs in proportionally to its observed
  /// traffic — the empirical analogue of the Figure-1 mixture
  /// r(v) = sum_i r_i f_i(v) when sampling happens at access instants.
  core::VotePdf pooled_pdf(double p) const;

  /// Exponential forgetting: every count (and sample total) is scaled by
  /// `factor` in [0, 1]. 1 keeps the full history; smaller values bias
  /// the estimate toward recent epochs.
  void decay(double factor);
  void reset();

private:
  std::uint32_t sites_;
  net::Vote total_;
  std::vector<double> counts_;        // sites_ rows of (total_ + 1), row-major
  std::vector<double> site_samples_;  // per-site sample totals
  double total_samples_ = 0.0;
};

/// L1 distance between two densities over the same vote domain — the
/// convergence metric of the estimator oracle tests.
double l1_distance(const core::VotePdf& a, const core::VotePdf& b);

} // namespace quora::adapt
