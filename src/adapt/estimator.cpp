#include "adapt/estimator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/contracts.hpp"

namespace quora::adapt {

EmpiricalVoteHistogram::EmpiricalVoteHistogram(std::uint32_t site_count,
                                               net::Vote total_votes)
    : sites_(site_count), total_(total_votes) {
  if (site_count == 0 || total_votes == 0) {
    throw std::invalid_argument(
        "EmpiricalVoteHistogram: need at least one site and one vote");
  }
  counts_.assign(static_cast<std::size_t>(sites_) * (total_ + 1), 0.0);
  site_samples_.assign(sites_, 0.0);
}

void EmpiricalVoteHistogram::record(net::SiteId site, net::Vote votes) {
  QUORA_PRECONDITION(site < sites_ && votes <= total_,
                     "EmpiricalVoteHistogram::record: sample out of range");
  counts_[static_cast<std::size_t>(site) * (total_ + 1) + votes] += 1.0;
  site_samples_[site] += 1.0;
  total_samples_ += 1.0;
}

double EmpiricalVoteHistogram::samples(net::SiteId site) const {
  return site_samples_.at(site);
}

double EmpiricalVoteHistogram::count(net::SiteId site, net::Vote v) const {
  if (site >= sites_ || v > total_) {
    throw std::out_of_range("EmpiricalVoteHistogram::count: out of range");
  }
  return counts_[static_cast<std::size_t>(site) * (total_ + 1) + v];
}

namespace {

core::VotePdf condition_on_up(const double* counts, double n, net::Vote total,
                              double p) {
  core::VotePdf pdf(total + 1, 0.0);
  if (!(n > 0.0)) {
    // No evidence yet: the optimistic prior (all votes reachable while
    // up). Callers gate on a minimum sample count before optimizing, so
    // this only shapes the degenerate early-epoch read-outs.
    pdf[0] = 1.0 - p;
    pdf[total] = p;
    return pdf;
  }
  // Footnote 4: observed mass is conditional on the site being up; scale
  // by p and park the complementary mass at v = 0 (down site = zero-vote
  // component).
  pdf[0] = 1.0 - p + p * counts[0] / n;
  for (net::Vote v = 1; v <= total; ++v) pdf[v] = p * counts[v] / n;
  return pdf;
}

} // namespace

core::VotePdf EmpiricalVoteHistogram::site_pdf(net::SiteId site,
                                               double p) const {
  if (site >= sites_) {
    throw std::out_of_range("EmpiricalVoteHistogram::site_pdf: bad site");
  }
  if (!(p > 0.0 && p <= 1.0)) {
    throw std::invalid_argument(
        "EmpiricalVoteHistogram::site_pdf: reliability outside (0, 1]");
  }
  return condition_on_up(
      counts_.data() + static_cast<std::size_t>(site) * (total_ + 1),
      site_samples_[site], total_, p);
}

core::VotePdf EmpiricalVoteHistogram::pooled_pdf(double p) const {
  if (!(p > 0.0 && p <= 1.0)) {
    throw std::invalid_argument(
        "EmpiricalVoteHistogram::pooled_pdf: reliability outside (0, 1]");
  }
  std::vector<double> pooled(total_ + 1, 0.0);
  for (std::uint32_t s = 0; s < sites_; ++s) {
    const double* row = counts_.data() + static_cast<std::size_t>(s) * (total_ + 1);
    for (net::Vote v = 0; v <= total_; ++v) pooled[v] += row[v];
  }
  return condition_on_up(pooled.data(), total_samples_, total_, p);
}

void EmpiricalVoteHistogram::decay(double factor) {
  if (!(factor >= 0.0 && factor <= 1.0)) {
    throw std::invalid_argument(
        "EmpiricalVoteHistogram::decay: factor outside [0, 1]");
  }
  if (factor == 1.0) return;
  for (double& c : counts_) c *= factor;
  for (double& n : site_samples_) n *= factor;
  total_samples_ *= factor;
}

void EmpiricalVoteHistogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0.0);
  std::fill(site_samples_.begin(), site_samples_.end(), 0.0);
  total_samples_ = 0.0;
}

double l1_distance(const core::VotePdf& a, const core::VotePdf& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("l1_distance: mismatched vote domains");
  }
  double d = 0.0;
  for (std::size_t v = 0; v < a.size(); ++v) d += std::fabs(a[v] - b[v]);
  return d;
}

} // namespace quora::adapt
