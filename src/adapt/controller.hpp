#pragma once

#include <cstdint>

#include "adapt/estimator.hpp"
#include "quorum/quorum_spec.hpp"

namespace quora::adapt {

/// The optimize half of the sense -> optimize -> install loop: each epoch
/// it reads the empirical mixture out of the histogram (footnote-4
/// conditioned), re-runs the Figure-1 optimizer over it — plain
/// availability, the §5.4 write-constrained variant A(0, q_r) >= A_w, or
/// the §5.4 weighted objective A(omega, alpha, q) — and gates the
/// resulting candidate behind hysteresis: an install is recommended only
/// after the predicted gain over the currently effective assignment has
/// exceeded `threshold` for `dwell` consecutive epochs *for the same
/// candidate*. A candidate change or a sub-threshold epoch resets the
/// streak, so assignment flapping under a noisy estimate is structurally
/// impossible.
///
/// Deterministic by construction: no RNG, no wall clock — epochs are
/// whatever sim events the driver turns into `epoch()` calls, and two
/// runs that feed identical samples make identical decisions.
class AdaptiveController {
public:
  enum class Objective : std::uint8_t {
    kAvailability,      // maximize A(alpha, q_r) (Figure 1)
    kWriteConstrained,  // maximize A s.t. A(0, q_r) >= A_w (§5.4)
    kWeighted,          // maximize alpha*R(q) + omega*(1-alpha)*W(T-q+1)
  };

  struct Options {
    /// Simulated seconds between estimation epochs.
    double epoch_length = 50.0;
    /// Minimum predicted (absolute) availability gain to count toward the
    /// dwell streak.
    double threshold = 0.02;
    /// Consecutive above-threshold epochs required before an install.
    std::uint32_t dwell = 2;
    Objective objective = Objective::kAvailability;
    /// §5.4 write floor A_w (kWriteConstrained only).
    double min_write_availability = 0.0;
    /// Write weight omega (kWeighted only).
    double omega = 1.0;
    /// Steady-state site reliability p for footnote-4 unconditioning.
    double site_reliability = 0.96;
    /// Pooled samples required before the optimizer runs at all.
    double min_samples = 64.0;
    /// Per-epoch histogram decay; 1 = cumulative, < 1 tracks drift.
    double forget = 1.0;
    /// Also sample component votes on every message delivery (not just at
    /// access submission). Delivery sampling weights states by traffic
    /// carried, biasing the estimate toward well-connected periods; the
    /// default samples at Poisson access instants, which see time
    /// averages (PASTA) and converge to the closed-form f_i(v).
    bool sample_deliveries = false;

    /// Throws std::invalid_argument on out-of-range knobs.
    void validate() const;
  };

  /// One epoch's verdict, returned to the driver (which owns the actual
  /// QR install machinery and the transcript).
  struct Decision {
    bool evaluated = false;   // enough samples to run the optimizer
    bool feasible = true;     // write-constrained floor satisfiable
    bool install = false;     // hysteresis cleared: install `spec` now
    quorum::QuorumSpec spec{};      // the optimizer's candidate
    double current_value = 0.0;     // objective at the effective assignment
    double candidate_value = 0.0;   // objective at `spec`
    double predicted_gain = 0.0;    // candidate_value - current_value
    std::uint32_t streak = 0;       // dwell progress after this epoch
  };

  AdaptiveController(std::uint32_t site_count, net::Vote total_votes,
                     Options opts);

  EmpiricalVoteHistogram& histogram() noexcept { return hist_; }
  const EmpiricalVoteHistogram& histogram() const noexcept { return hist_; }
  const Options& options() const noexcept { return opts_; }

  /// Run one estimation epoch against the currently effective assignment.
  /// Applies the per-epoch forgetting factor on the way out. When the
  /// decision says install, the streak resets — the next campaign starts
  /// from scratch whether or not the driver's install attempt succeeds
  /// (a refused install means the component lacked a write quorum; its
  /// evidence is stale either way).
  Decision epoch(double alpha, quorum::QuorumSpec current);

  std::uint64_t epochs() const noexcept { return epochs_; }
  std::uint64_t installs_recommended() const noexcept { return installs_; }

private:
  Options opts_;
  EmpiricalVoteHistogram hist_;
  quorum::QuorumSpec streak_spec_{};  // candidate the current streak backs
  std::uint32_t streak_ = 0;
  std::uint64_t epochs_ = 0;
  std::uint64_t installs_ = 0;
};

const char* objective_name(AdaptiveController::Objective objective);

} // namespace quora::adapt
