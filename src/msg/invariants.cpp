#include "msg/invariants.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace quora::msg {
namespace {

constexpr std::size_t kMaxReported = 50;

template <typename... Args>
void violation(SafetyReport& report, Invariant code, const char* fmt,
               Args... args) {
  if (report.violations.size() >= kMaxReported) return;
  char buf[256];
  const int prefix =
      std::snprintf(buf, sizeof buf, "[%s] ", invariant_slug(code));
  std::snprintf(buf + prefix, sizeof buf - static_cast<std::size_t>(prefix),
                fmt, args...);
  report.violations.push_back(SafetyViolation{code, std::string(buf)});
}

} // namespace

const char* invariant_slug(Invariant code) noexcept {
  switch (code) {
    case Invariant::kReadConsistency: return "stale-read";
    case Invariant::kUniqueVersions: return "duplicate-version";
    case Invariant::kFreshAssignment: return "stale-assignment";
    case Invariant::kCausalTimes: return "acausal-decision";
    case Invariant::kCommitOrder: return "commit-order";
  }
  return "unknown";
}

const char* invariant_summary(Invariant code) noexcept {
  switch (code) {
    case Invariant::kReadConsistency:
      return "a granted read returns a version at least as new as every "
             "write decided before it was submitted";
    case Invariant::kUniqueVersions:
      return "no two granted writes commit the same version number";
    case Invariant::kFreshAssignment:
      return "no access is granted under a QR assignment older than one "
             "installed before the access was submitted";
    case Invariant::kCausalTimes:
      return "every outcome decides at or after its submission, at a "
             "finite time";
    case Invariant::kCommitOrder:
      return "commit records are appended in nondecreasing decision-time "
             "order";
  }
  return "unknown";
}

SafetyReport check_safety(const SafetyView& view) {
  static const std::vector<AccessOutcome> kNoOutcomes;
  static const std::vector<Cluster::CommitRecord> kNoCommits;
  static const std::vector<Cluster::InstallRecord> kNoInstalls;
  SafetyReport report;
  const std::vector<AccessOutcome>& outcomes =
      view.outcomes != nullptr ? *view.outcomes : kNoOutcomes;
  const std::vector<Cluster::CommitRecord>& commits =
      view.commits != nullptr ? *view.commits : kNoCommits;
  const std::vector<Cluster::InstallRecord>& installs =
      view.installs != nullptr ? *view.installs : kNoInstalls;

  // Commits and installs are appended in decision order, so a prefix
  // maximum over each gives "newest thing decided by time t" via one
  // binary search per access.
  std::vector<std::uint64_t> commit_prefix_max(commits.size());
  for (std::size_t i = 0; i < commits.size(); ++i) {
    commit_prefix_max[i] = commits[i].version;
    if (i > 0) {
      commit_prefix_max[i] = std::max(commit_prefix_max[i], commit_prefix_max[i - 1]);
      if (commits[i].decide_time < commits[i - 1].decide_time) {
        violation(report, Invariant::kCommitOrder,
                  "commit log out of order at index %zu", i);
      }
    }
  }
  std::vector<std::uint64_t> install_prefix_max(installs.size());
  for (std::size_t i = 0; i < installs.size(); ++i) {
    install_prefix_max[i] = installs[i].version;
    if (i > 0) {
      install_prefix_max[i] =
          std::max(install_prefix_max[i], install_prefix_max[i - 1]);
    }
  }
  const auto decided_before = [](double t) {
    return [t](const auto& record) { return record.decide_time <= t; };
  };

  for (const AccessOutcome& o : outcomes) {
    // Invariant 4: causal, finite decision times.
    if (!(o.decide_time >= o.submit_time) || !std::isfinite(o.decide_time)) {
      violation(report, Invariant::kCausalTimes,
                "acausal decision: submit=%.6f decide=%.6f origin=%u",
                o.submit_time, o.decide_time, o.origin);
    }
    if (!o.granted) continue;

    if (o.is_read) {
      ++report.reads_checked;
      // Invariant 1: the read must observe every write decided before it
      // was submitted.
      const auto it = std::partition_point(commits.begin(), commits.end(),
                                           decided_before(o.submit_time));
      if (it != commits.begin()) {
        const std::uint64_t floor =
            commit_prefix_max[static_cast<std::size_t>(it - commits.begin()) - 1];
        if (o.version < floor) {
          violation(report, Invariant::kReadConsistency,
                    "stale read: origin=%u submit=%.6f returned v=%llu but "
                    "v=%llu was decided earlier",
                    o.origin, o.submit_time,
                    static_cast<unsigned long long>(o.version),
                    static_cast<unsigned long long>(floor));
        }
      }
    } else {
      ++report.writes_checked;
    }

    // Invariant 3: no component operates on a superseded QR assignment.
    const auto it = std::partition_point(installs.begin(), installs.end(),
                                         decided_before(o.submit_time));
    if (it != installs.begin()) {
      const std::uint64_t newest =
          install_prefix_max[static_cast<std::size_t>(it - installs.begin()) - 1];
      if (o.qr_version < newest) {
        violation(report, Invariant::kFreshAssignment,
                  "stale-assignment grant: origin=%u submit=%.6f ran under "
                  "qrv=%llu but qrv=%llu was installed earlier",
                  o.origin, o.submit_time,
                  static_cast<unsigned long long>(o.qr_version),
                  static_cast<unsigned long long>(newest));
      }
    }
  }

  // Invariant 2: committed versions are unique — two concurrent writes
  // never both commit the same version number.
  std::vector<std::uint64_t> versions;
  versions.reserve(commits.size());
  for (const Cluster::CommitRecord& c : commits) versions.push_back(c.version);
  std::sort(versions.begin(), versions.end());
  for (std::size_t i = 1; i < versions.size(); ++i) {
    if (versions[i] == versions[i - 1]) {
      violation(report, Invariant::kUniqueVersions,
                "duplicate commit version v=%llu",
                static_cast<unsigned long long>(versions[i]));
    }
  }

  return report;
}

SafetyReport check_safety(const Cluster& cluster) {
  SafetyView view;
  view.outcomes = &cluster.outcomes();
  view.commits = &cluster.commits();
  view.installs = &cluster.installs();
  return check_safety(view);
}

} // namespace quora::msg
