#pragma once

#include <cstdint>

#include "net/types.hpp"

namespace quora::msg {

/// Coordination-protocol messages. The paper's model decides accesses
/// instantaneously from global state; this layer implements what a real
/// site actually does — Gifford's two-phase weighted voting over the
/// network:
///
///   phase 1 (both kinds): flood kVoteRequest through the component;
///     every reachable site answers with its votes and its copy's
///     version (kVoteReply, relayed hop-by-hop back along the flood's
///     parent pointers). A site grants its vote to at most one in-flight
///     WRITE at a time (a lease, released when the commit applies or the
///     lease expires) — without this, two concurrent writes in one
///     component could both assemble q_w votes and mint duplicate
///     versions, the race the paper's instantaneous-access model hides;
///   reads decide as soon as q_r votes have replied (value = the
///     highest-version copy among repliers);
///   phase 2 (writes): flood kCommitRequest carrying the new value and
///     version = highest seen + 1; sites apply and answer kCommitAck;
///     the write succeeds when acked votes reach q_w;
///   abort (writes): a coordination that times out floods kAbort so its
///     leased votes are released immediately instead of lingering until
///     lease expiry and starving subsequent writes.
///
/// Messages carry full provenance so intermediate sites can relay without
/// own state beyond the flood parent.
struct Message {
  enum class Kind : std::uint8_t {
    kVoteRequest,
    kVoteReply,
    kVoteDeny,  // write vote refused (leased elsewhere): enables fast abort
    kCommitRequest,
    kCommitAck,
    kAbort,  // failed write coordination: release leased votes
  };

  Kind kind = Kind::kVoteRequest;
  bool is_write = false;            // kVoteRequest: write requests lease votes
  std::uint64_t request = 0;        // coordination id, globally unique
  net::SiteId coordinator = 0;      // where replies/acks must end up
  net::SiteId sender = 0;           // immediate hop sender
  net::SiteId replier = 0;          // original author of a reply/ack
  net::Vote votes = 0;              // replier's votes
  std::uint64_t version = 0;        // replier's copy / commit version
  std::uint64_t value = 0;          // replier's copy / commit value

  /// QR reassignment piggyback (§2.2): every message carries its author's
  /// stored assignment. Receivers adopt strictly newer versions (gossip
  /// anti-entropy); a voter whose stored version exceeds a request's
  /// denies it — the stale-version rejection that keeps a superseded
  /// assignment from ever assembling a quorum.
  std::uint64_t qr_version = 0;
  net::Vote qr_r = 0;
  net::Vote qr_w = 0;
};

} // namespace quora::msg
