#pragma once

#include <string>
#include <vector>

#include "msg/cluster.hpp"

namespace quora::msg {

/// Result of a post-run safety audit: every violated invariant, as one
/// human-readable line each. Empty == the run was safe.
struct SafetyReport {
  std::vector<std::string> violations;
  std::uint64_t reads_checked = 0;
  std::uint64_t writes_checked = 0;
  bool ok() const noexcept { return violations.empty(); }
};

/// Audit a finished (or paused) run of `cluster` against the protocol's
/// safety invariants. These must hold under ANY fault plan — partitions,
/// flaps, message drop/duplication, crash-during-commit:
///
///  1. Real-time read consistency: a granted read returns a version at
///     least as new as every write whose commit was *decided* before the
///     read was submitted.
///  2. Unique versions: no two granted writes commit the same version
///     number (the write-lease + quorum-intersection guarantee).
///  3. No stale-assignment operation: no access is granted under a QR
///     assignment version older than an assignment whose installation was
///     decided before the access was submitted (§2.2 safety).
///  4. Causal decision times: every outcome decides at or after its
///     submission, and times are finite.
///
/// Liveness (availability) is deliberately NOT checked here — fault plans
/// are free to make the system unavailable; they must never make it wrong.
SafetyReport check_safety(const Cluster& cluster);

} // namespace quora::msg
