#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "msg/cluster.hpp"

namespace quora::msg {

/// Machine-readable identifiers for the safety invariants audited by
/// `check_safety`. Every violation carries exactly one of these codes so
/// tools (`quora_chaos`, `quora_model`, the seeded-mutation harness) can
/// match violations without parsing prose.
enum class Invariant : std::uint8_t {
  /// 1. Real-time read consistency: a granted read returns a version at
  ///    least as new as every write whose commit was *decided* before the
  ///    read was submitted.
  kReadConsistency = 0,
  /// 2. Unique versions: no two granted writes commit the same version
  ///    number (the write-lease + quorum-intersection guarantee).
  kUniqueVersions = 1,
  /// 3. No stale-assignment operation: no access is granted under a QR
  ///    assignment version older than an assignment whose installation was
  ///    decided before the access was submitted (§2.2 safety).
  kFreshAssignment = 2,
  /// 4. Causal decision times: every outcome decides at or after its
  ///    submission, and times are finite.
  kCausalTimes = 3,
  /// 5. Commit-log order: commit records are appended in nondecreasing
  ///    decision-time order (a precondition for the binary searches the
  ///    other invariants rely on).
  kCommitOrder = 4,
};

inline constexpr std::size_t kInvariantCount = 5;

/// Stable kebab-case slug for an invariant code. Violation messages are
/// prefixed with `[slug]` so text output stays greppable by code.
const char* invariant_slug(Invariant code) noexcept;

/// One-line description of what the invariant demands.
const char* invariant_summary(Invariant code) noexcept;

/// A single violated invariant: the code plus a human-readable line
/// (always prefixed with `[slug] `).
struct SafetyViolation {
  Invariant code = Invariant::kReadConsistency;
  std::string message;
};

/// Result of a post-run safety audit: every violated invariant, one
/// entry each. Empty == the run was safe.
struct SafetyReport {
  std::vector<SafetyViolation> violations;
  std::uint64_t reads_checked = 0;
  std::uint64_t writes_checked = 0;
  bool ok() const noexcept { return violations.empty(); }
  bool has(Invariant code) const noexcept {
    for (const SafetyViolation& v : violations) {
      if (v.code == code) return true;
    }
    return false;
  }
};

/// A borrowed view of the three histories `check_safety` audits. Lets
/// unit tests hand-craft violating states, and lets the model checker
/// audit mid-run snapshots, without building a full `Cluster`.
struct SafetyView {
  const std::vector<AccessOutcome>* outcomes = nullptr;
  const std::vector<Cluster::CommitRecord>* commits = nullptr;
  const std::vector<Cluster::InstallRecord>* installs = nullptr;
};

/// Audit the given histories against the protocol's safety invariants
/// (see `Invariant` above). These must hold under ANY fault plan —
/// partitions, flaps, message drop/duplication, crash-during-commit.
///
/// Liveness (availability) is deliberately NOT checked here — fault plans
/// are free to make the system unavailable; they must never make it wrong.
SafetyReport check_safety(const SafetyView& view);

/// Convenience overload auditing a finished (or paused) run of `cluster`.
SafetyReport check_safety(const Cluster& cluster);

} // namespace quora::msg
