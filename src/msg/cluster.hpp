#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "conn/component_tracker.hpp"
#include "conn/live_network.hpp"
#include "msg/message.hpp"
#include "net/topology.hpp"
#include "quorum/quorum_spec.hpp"
#include "rng/xoshiro256ss.hpp"
#include "sim/config.hpp"
#include "sim/event.hpp"

namespace quora::msg {

/// One access as the coordinator finally resolved it.
struct AccessOutcome {
  double submit_time = 0.0;
  double decide_time = 0.0;
  net::SiteId origin = 0;
  bool is_read = false;
  bool granted = false;
  std::uint64_t version = 0;  // read: version returned; write: version written
  std::uint64_t value = 0;    // read result
  /// What the paper's instantaneous oracle (component votes at submit
  /// time) would have decided — for paired comparison.
  bool oracle_granted = false;
};

/// A message-level simulation of the quorum consensus protocol: fail-stop
/// sites exchanging the Message protocol over FIFO links with exponential
/// per-hop latencies, under the paper's Poisson failure/repair/access
/// model. This is the §5.1 system model *without* the instantaneous-event
/// simplification — accesses take real rounds, races with failures and
/// all.
///
/// Semantics:
///  - links are FIFO per direction and silently drop messages that are in
///    flight when the link or an endpoint is down at delivery time;
///  - a failed site loses all volatile coordination state but keeps its
///    copy (persistent storage); recovering sites resume with stale
///    volatile state cleared;
///  - accesses submitted at down sites fail immediately (the paper's ACC
///    accounting);
///  - every phase runs against a timeout; no quorum by the deadline means
///    denial. Partial writes (commit flooded, ack quorum missed) are
///    possible and deliberately not rolled back — version numbers carry
///    the usual weighted-voting semantics.
///
/// Real-time consistency guarantee (asserted by the tests): a granted
/// read returns a version at least as new as every write whose commit
/// *decision* preceded the read's submission.
class Cluster {
public:
  struct Params {
    quorum::QuorumSpec spec;
    double mean_hop_latency = 0.005;  // per link traversal
    double phase_timeout = 0.5;       // per coordination phase
    /// Write-vote lease lifetime; must exceed the coordinator's total
    /// window so a vote is never granted twice while still countable.
    /// 0 = auto (2.5 x phase_timeout).
    double lease_timeout = 0.0;
    double alpha = 0.5;
    sim::SimConfig config;            // mu_access, rho, reliability
  };

  Cluster(const net::Topology& topo, Params params, std::uint64_t seed);

  /// Run until `count` further accesses have been *decided* (granted,
  /// denied, or aborted by coordinator failure).
  void run_decided_accesses(std::uint64_t count);

  const std::vector<AccessOutcome>& outcomes() const noexcept { return outcomes_; }

  /// Fraction granted among decided accesses / among oracle decisions.
  double availability() const;
  double oracle_availability() const;

  /// Highest version whose write decision has been recorded, and the
  /// decision log for real-time consistency checks.
  struct CommitRecord {
    std::uint64_t version = 0;
    double decide_time = 0.0;
  };
  const std::vector<CommitRecord>& commits() const noexcept { return commits_; }

  std::uint64_t messages_sent() const noexcept { return messages_sent_; }
  double now() const noexcept { return now_; }
  const conn::LiveNetwork& network() const noexcept { return live_; }

private:
  struct Pending {  // coordinator-side state
    bool is_read = false;
    int phase = 1;
    double submit_time = 0.0;
    bool oracle_granted = false;
    net::Vote votes = 0;        // phase-1 votes collected
    net::Vote denied = 0;       // phase-1 votes refused (leased elsewhere)
    net::Vote acked = 0;        // phase-2 votes acked
    std::set<net::SiteId> repliers;
    std::set<net::SiteId> ackers;
    std::uint64_t best_version = 0;
    std::uint64_t best_value = 0;
    std::uint64_t write_value = 0;
  };

  struct FloodState {  // per (site, flood id): dedup + reverse path
    net::LinkId parent_link = 0;
    bool has_parent = false;
  };

  struct Copy {
    std::uint64_t value = 0;
    std::uint64_t version = 0;
  };

  struct Lease {  // write-vote lease: one in-flight write per site
    std::uint64_t request = 0;
    double expiry = 0.0;
    bool held(double now) const { return request != 0 && now < expiry; }
  };

  // Event plumbing (kinds beyond sim::EventKind: deliveries and timers).
  enum class Kind : std::uint8_t {
    kSiteFail,
    kSiteRecover,
    kLinkFail,
    kLinkRecover,
    kAccess,
    kDelivery,
    kTimer,
  };
  struct Event {
    double time = 0.0;
    std::uint64_t seq = 0;
    Kind kind = Kind::kAccess;
    std::uint32_t index = 0;      // site/link
    Message message{};            // kDelivery
    net::SiteId target = 0;       // kDelivery destination, kTimer owner
    std::uint64_t request = 0;    // kTimer
    int phase = 0;                // kTimer
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void push(Event e);
  void send(net::SiteId from, net::LinkId link, const Message& m);
  void flood(net::SiteId from, std::uint64_t flood_id, const Message& m,
             net::LinkId except_link, bool has_except);
  void relay_toward_coordinator(net::SiteId at, const Message& m);
  void handle_delivery(const Event& e);
  void handle_timer(const Event& e);
  void handle_access(net::SiteId origin);
  void decide(net::SiteId coordinator, std::uint64_t request, bool granted);
  void on_site_failed(net::SiteId s);
  std::uint64_t flood_key(std::uint64_t request, int phase) const {
    return request * 4 + static_cast<std::uint64_t>(phase - 1);  // phases 1..3
  }

  const net::Topology* topo_;
  Params params_;
  conn::LiveNetwork live_;
  conn::ComponentTracker tracker_;
  rng::Xoshiro256ss gen_;

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::uint64_t next_seq_ = 0;
  double now_ = 0.0;

  std::vector<Copy> copies_;
  std::vector<Lease> leases_;
  std::vector<std::map<std::uint64_t, Pending>> pending_;     // per site
  std::vector<std::map<std::uint64_t, FloodState>> floods_;   // per site
  std::vector<double> fifo_clock_;                            // per directed link
  std::uint64_t next_request_ = 1;
  std::uint64_t decided_ = 0;

  std::vector<AccessOutcome> outcomes_;
  std::vector<CommitRecord> commits_;
  std::uint64_t messages_sent_ = 0;
};

} // namespace quora::msg
