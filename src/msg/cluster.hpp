#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <queue>
#include <set>
#include <string>
#include <vector>

#include "adapt/controller.hpp"
#include "conn/component_tracker.hpp"
#include "conn/live_network.hpp"
#include "core/analysis_annotations.hpp"
#include "core/reassign.hpp"
#include "fault/event_log.hpp"
#include "fault/injector.hpp"
#include "msg/message.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "quorum/quorum_spec.hpp"
#include "rng/xoshiro256ss.hpp"
#include "sim/config.hpp"
#include "sim/event.hpp"

namespace quora::msg {

/// Why an access was denied; `kNone` on grants. Distinct codes let the
/// chaos harness and the message-level benchmarks report *which* failure
/// mode ate an access instead of a bare denial count.
enum class DenyReason : std::uint8_t {
  kNone,              // granted
  kOriginDown,        // submitted at a failed site (the paper's ACC rule)
  kTimeout,           // a phase deadline passed with no retry budget used
  kNoQuorum,          // provably unreachable: vote-deny mass or lease conflict
  kCoordinatorCrash,  // the coordinating site failed mid-protocol
  kStaleAssignment,   // a voter held a newer QR assignment version (§2.2)
  kAbandoned,         // retries exhausted or the access budget ran out
};
inline constexpr std::size_t kDenyReasonCount = 7;

/// Stable kebab-case slug for reports and event logs.
const char* deny_reason_name(DenyReason reason);

/// One access as the coordinator finally resolved it.
struct AccessOutcome {
  double submit_time = 0.0;
  double decide_time = 0.0;
  net::SiteId origin = 0;
  bool is_read = false;
  bool granted = false;
  DenyReason deny_reason = DenyReason::kNone;
  std::uint32_t attempts = 0;         // retries consumed (0 = first try decided)
  std::uint64_t version = 0;  // read: version returned; write: version written
  std::uint64_t value = 0;    // read result
  /// Votes backing the grant: phase-1 votes for reads, phase-2 acks for
  /// writes (0 on denials). The model checker asserts every grant is
  /// backed by a quorum under the assignment it ran under.
  net::Vote votes_collected = 0;
  /// QR assignment version the coordination ran under.
  std::uint64_t qr_version = 1;
  /// What the paper's instantaneous oracle (component votes at submit
  /// time) would have decided — for paired comparison.
  bool oracle_granted = false;
};

/// A message-level simulation of the quorum consensus protocol: fail-stop
/// sites exchanging the Message protocol over FIFO links with exponential
/// per-hop latencies, under the paper's Poisson failure/repair/access
/// model. This is the §5.1 system model *without* the instantaneous-event
/// simplification — accesses take real rounds, races with failures and
/// all.
///
/// Semantics:
///  - links are FIFO per direction and silently drop messages that are in
///    flight when the link or an endpoint is down at delivery time;
///  - a failed site loses all volatile coordination state but keeps its
///    copy (persistent storage); recovering sites resume with stale
///    volatile state cleared;
///  - accesses submitted at down sites fail immediately (the paper's ACC
///    accounting);
///  - every phase runs against a timeout; with a retry budget the
///    coordinator re-floods under jittered exponential backoff, else the
///    access resolves denied with a reason code. Partial writes (commit
///    flooded, ack quorum missed) are possible and deliberately not rolled
///    back — version numbers carry the usual weighted-voting semantics;
///  - every site stores a QR assignment (spec, version); messages gossip
///    the newest known assignment, and a voter that is ahead of a request's
///    version denies it (stale-version rejection, §2.2).
///
/// Deterministic fault injection: attach a `fault::FaultInjector` to
/// script partitions, flaps, crashes, message drop/delay/duplication, and
/// QR reassignments against the run, and a `fault::EventLog` to capture a
/// byte-stable transcript. Same topology, params, seed, and plan replay
/// identically.
///
/// Real-time consistency guarantee (asserted by the tests): a granted
/// read returns a version at least as new as every write whose commit
/// *decision* preceded the read's submission.
class Cluster {
public:
  struct Params {
    quorum::QuorumSpec spec;
    double mean_hop_latency = 0.005;  // per link traversal
    double phase_timeout = 0.5;       // per coordination phase (phase 1)
    /// Phase-2 (commit/ack) deadline; 0 = same as phase_timeout.
    double commit_timeout = 0.0;
    /// Write-vote lease lifetime; must exceed one attempt's total window
    /// so a vote is never granted twice while still countable. 0 = auto
    /// (1.5 x phase_timeout + commit deadline).
    double lease_timeout = 0.0;
    /// Phase-1 retries after a timeout before the access is abandoned.
    /// 0 preserves the classic deny-on-first-timeout behaviour.
    std::uint32_t max_retries = 0;
    /// First backoff delay; doubles per retry. 0 = auto (phase_timeout/4).
    double backoff_base = 0.0;
    /// Fraction of each backoff randomized around its nominal value.
    double backoff_jitter = 0.5;
    /// Wall-clock budget per access across all retries; a retry is never
    /// scheduled past submit + budget. 0 = unlimited.
    double access_budget = 0.0;
    double alpha = 0.5;
    sim::SimConfig config;            // mu_access, rho, reliability

    /// Seeded known-bad behaviours, used to validate that the model
    /// checker and the chaos harness actually catch protocol bugs. All
    /// false in production; nothing on any code path branches on them
    /// when off, so transcripts stay byte-identical.
    struct TestingMutations {
      /// Drop the §2.2 stale-version rejection: a voter grants requests
      /// stamped with a superseded QR assignment version.
      bool accept_stale_qr = false;
      /// Skip the crash-during-commit cleanup: a failed coordinator keeps
      /// its in-progress coordinations instead of resolving them, so a
      /// restarted site can assemble a quorum from pre-crash replies.
      bool skip_crash_cleanup = false;
      bool any() const noexcept { return accept_stale_qr || skip_crash_cleanup; }
    };
    TestingMutations mutations;

    /// Model-checker mode (`tools/quora_model`): the explorer drives the
    /// cluster one transition at a time under an untimed-asynchrony
    /// abstraction. Construction then schedules no Poisson background
    /// events, forces unit deterministic hop latencies (send() draws no
    /// randomness), disables retries, and makes write-vote leases
    /// effectively infinite (released only by commit/abort/crash) — a
    /// finite lease would let arbitrary event reordering fabricate
    /// lease-expiry races no timed schedule exhibits. See the model_*
    /// methods and docs/MODEL_CHECKING.md.
    bool model_mode = false;

    /// Hard cap on `max_retries`: backoff doubles per attempt, so budgets
    /// beyond this overflow any plausible schedule long before they run.
    /// Construction throws on larger values.
    static constexpr std::uint32_t kMaxRetryBudget = 64;
  };

  Cluster(const net::Topology& topo, Params params, std::uint64_t seed);

  /// Attach a fault injector (non-owning; must outlive the run). Pushes
  /// the plan's timeline into the event queue — call before running.
  void attach_injector(fault::FaultInjector* injector);

  /// Attach an event log (non-owning) capturing decisions, fault actions,
  /// installs, and stale rejections.
  void attach_log(fault::EventLog* log);

  /// Attach the adaptive quorum-optimization loop (non-owning; must
  /// outlive the run). Schedules the controller's estimation epochs as
  /// simulator events (one every `epoch_length` simulated seconds, the
  /// first one epoch from now) and starts feeding the per-site vote
  /// histogram: every access submitted at an operational site records its
  /// component's vote total (and, with `sample_deliveries`, so does every
  /// delivered message at its receiving site). When an epoch's decision
  /// clears the hysteresis gate, the §2.2 QR install machinery runs from
  /// the lowest-numbered operational site, exactly like a scripted
  /// reassign action. Detached (the default), nothing here executes and
  /// transcripts are byte-identical to pre-adaptive builds.
  void attach_adaptive(adapt::AdaptiveController* controller);

  /// Run until `count` further accesses have been *decided* (granted,
  /// denied, or aborted by coordinator failure).
  ///
  /// Entry points of the (future) msg shard: L007/L008 prove that nothing
  /// reachable from here touches another shard's QUORA_SHARD_LOCAL state
  /// or an undeclared mutable global. (No QUORA_HOT_PATH here — the
  /// message protocol's per-access maps and flood state allocate by
  /// design.)
  QUORA_SHARD_ENTRY(msg) void run_decided_accesses(std::uint64_t count);

  /// Run until the simulated clock reaches `t_end` (the soak-harness
  /// driver: fault plans are scheduled in absolute time).
  QUORA_SHARD_ENTRY(msg) void run_until(double t_end);

  const std::vector<AccessOutcome>& outcomes() const noexcept { return outcomes_; }

  /// Fraction granted among decided accesses / among oracle decisions.
  double availability() const;
  double oracle_availability() const;

  /// Highest version whose write decision has been recorded, and the
  /// decision log for real-time consistency checks.
  struct CommitRecord {
    std::uint64_t version = 0;
    double decide_time = 0.0;
  };
  const std::vector<CommitRecord>& commits() const noexcept { return commits_; }

  /// QR installs performed by fault-plan reassign actions.
  struct InstallRecord {
    std::uint64_t version = 0;
    double decide_time = 0.0;
    net::SiteId origin = 0;
    quorum::QuorumSpec spec{};
  };
  const std::vector<InstallRecord>& installs() const noexcept { return installs_; }
  const core::QuorumReassignment& reassignment() const noexcept { return qr_; }

  std::uint64_t messages_sent() const noexcept { return messages_sent_; }
  std::uint64_t messages_dropped() const noexcept { return messages_dropped_; }
  std::uint64_t messages_duplicated() const noexcept { return messages_duplicated_; }
  /// Messages discarded at delivery time by a one-way link cut.
  std::uint64_t oneway_losses() const noexcept { return oneway_losses_; }
  std::uint64_t retries() const noexcept { return retries_; }
  std::uint64_t stale_rejections() const noexcept { return stale_rejections_; }
  double now() const noexcept { return now_; }
  const conn::LiveNetwork& network() const noexcept { return live_; }

  /// Observability: pure recording — protocol decisions, message fates,
  /// and every RNG draw are untouched (the golden chaos transcript is
  /// replayed with both attached to prove it). The recorder is clocked on
  /// this cluster's simulated time and shared with the QR protocol and
  /// the component tracker; one recorder per cluster (recorders are not
  /// thread-safe). The registry is thread-safe and is also forwarded to
  /// an attached fault injector, in either attach order. Pass nullptr to
  /// detach.
  void set_trace(obs::TraceRecorder* trace);
  void set_metrics(obs::Registry* registry);

  // ---- Model-checker interface (Params::model_mode only) --------------
  // The explorer owns the schedule: it enumerates the enabled transitions
  // of a state, fires one, and snapshots/restores the cluster by value
  // (call model_rebind() on every copy). The logical clock advances by
  // exactly 1 per transition, so decision/submission timestamps order by
  // firing sequence — which is what `check_safety`'s real-time
  // comparisons then audit. See docs/MODEL_CHECKING.md.

  enum class ModelEventKind : std::uint8_t {
    kDelivery = 0,
    kTimer = 1,
    kRetry = 2,
    kOther = 3,
  };
  /// One enabled transition. `seq` is the stable handle for
  /// model_step_event and stays valid until the event fires.
  struct ModelEvent {
    std::uint64_t seq = 0;
    ModelEventKind kind = ModelEventKind::kOther;
    net::SiteId target = 0;     // delivery destination / timer owner
    std::uint32_t index = 0;    // link id (deliveries)
    std::uint64_t request = 0;  // timer/retry coordination id
    int phase = 0;              // timer phase
    Message message{};          // deliveries only
  };

  /// The currently enabled transitions. Links are FIFO per direction, so
  /// only the earliest pending delivery of each directed link is enabled —
  /// later ones cannot overtake it under any timing. Timers and retries
  /// are always enabled ("the replies were slow").
  std::vector<ModelEvent> model_enabled_events() const;
  /// Fire the pending event with sequence number `seq` (must be enabled).
  /// Returns false if no such event is pending.
  bool model_step_event(std::uint64_t seq);
  /// Submit one access deterministically (no Poisson arrival, no RNG).
  void model_submit_access(net::SiteId origin, bool is_read);
  /// Apply one fault-plan action immediately as its own transition.
  void model_apply_fault(const fault::Action& action);
  /// Serialize every behaviour-relevant piece of state (liveness, copies,
  /// leases, coordinations, stored assignments, pending-event multiset,
  /// safety-history digest) into `out` — the canonical form two states
  /// compare equal under. Absolute times are excluded by design.
  void model_serialize(std::vector<std::uint64_t>& out) const;
  /// 128-bit FNV-style hash of model_serialize (collision caveat: the
  /// visited set stores hashes, not states — see docs/MODEL_CHECKING.md).
  std::array<std::uint64_t, 2> model_fingerprint() const;
  /// Fix internal cross-references after a by-value copy: the component
  /// tracker must observe this cluster's network, not the source's. Must
  /// be called on every snapshot/restore copy before use. (Copying a
  /// cluster with a trace recorder attached is not supported.)
  void model_rebind() noexcept { tracker_.rebind(live_); }

private:
  struct Pending {  // coordinator-side state
    bool is_read = false;
    int phase = 1;
    double submit_time = 0.0;
    bool oracle_granted = false;
    std::uint32_t attempt = 0;  // retries consumed so far
    quorum::QuorumSpec spec{};  // assignment snapshot for this attempt
    std::uint64_t qr_version = 1;
    net::Vote votes = 0;        // phase-1 votes collected
    net::Vote denied = 0;       // phase-1 votes refused (leased elsewhere)
    net::Vote acked = 0;        // phase-2 votes acked
    std::set<net::SiteId> repliers;
    std::set<net::SiteId> ackers;
    std::uint64_t best_version = 0;
    std::uint64_t best_value = 0;
    std::uint64_t write_value = 0;
    // Observability-only state; absent from a QUORA_OBS=OFF build.
    QUORA_OBS_ONLY(
        double obs_attempt_start = 0.0;   // this attempt's phase 1 began
        double obs_phase2_start = 0.0;    // the commit flood departed
        std::uint64_t obs_prev_request = 0;)  // id this retry superseded
  };

  struct FloodState {  // per (site, flood id): dedup + reverse path
    net::LinkId parent_link = 0;
    bool has_parent = false;
  };

  struct Copy {
    std::uint64_t value = 0;
    std::uint64_t version = 0;
  };

  struct Lease {  // write-vote lease: one in-flight write per site
    std::uint64_t request = 0;
    double expiry = 0.0;
    bool held(double now) const { return request != 0 && now < expiry; }
  };

  // Per-site cache of the oracle inputs (reachable votes + effective QR
  // assignment). `effective()` walks the whole component, so recomputing
  // it for every access dominates the access path on dense topologies;
  // the pair (network version, QR epoch) keys precisely the state the
  // answer depends on, making this a behaviour-preserving memo.
  struct OracleEntry {
    std::uint64_t net_version = ~std::uint64_t{0};  // miss on first use
    std::uint64_t qr_epoch = ~std::uint64_t{0};
    net::Vote votes = 0;
    core::QuorumReassignment::Assignment assign{};
  };

  // Event plumbing (kinds beyond sim::EventKind: deliveries and timers).
  enum class Kind : std::uint8_t {
    kSiteFail,
    kSiteRecover,
    kLinkFail,
    kLinkRecover,
    kAccess,
    kDelivery,
    kTimer,
    kFault,   // a fault-plan timeline action (index into the timeline)
    kRetry,   // backoff expired: restart phase 1 for a pending request
    /// A correlated-failure victim recovers. Unlike kSiteRecover this
    /// draws nothing and reschedules nothing — the site's own Poisson
    /// fail/repair process continues independently, so legacy plans
    /// replay byte-identically whether or not correlations exist.
    kFaultRecover,
    /// An adaptive estimation epoch (only scheduled when a controller is
    /// attached; draws nothing — the control loop is RNG-free).
    kAdaptEpoch,
  };
  struct Event {
    double time = 0.0;
    std::uint64_t seq = 0;
    Kind kind = Kind::kAccess;
    std::uint32_t index = 0;      // site/link/timeline entry
    Message message{};            // kDelivery
    net::SiteId target = 0;       // kDelivery destination, kTimer/kRetry owner
    std::uint64_t request = 0;    // kTimer/kRetry
    int phase = 0;                // kTimer
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void push(Event e);
  void step(const Event& e);
  void send(net::SiteId from, net::LinkId link, const Message& m);
  void flood(net::SiteId from, std::uint64_t flood_id, const Message& m,
             net::LinkId except_link, bool has_except);
  void relay_toward_coordinator(net::SiteId at, const Message& m);
  void handle_delivery(const Event& e);
  void handle_timer(const Event& e);
  /// Model mode only: drop timers/retries whose request has been decided
  /// or whose phase was superseded — handle_timer would ignore them, so
  /// firing one is a pure no-op transition that only multiplies states.
  void model_purge_dead_timers();
  void handle_access(net::SiteId origin);
  /// The RNG-free tail of handle_access: allocate a request id, record
  /// the oracle verdict, and start coordinating. The Poisson driver draws
  /// read/write first; the model checker and scripted `access` fault
  /// actions pass `is_read` explicitly.
  void submit_access(net::SiteId origin, bool is_read);
  void start_coordination(net::SiteId origin, std::uint64_t request);
  void retry(net::SiteId coordinator, std::uint64_t old_request);
  void decide(net::SiteId coordinator, std::uint64_t request, bool granted,
              DenyReason reason = DenyReason::kNone);
  void abort_flood(net::SiteId coordinator, std::uint64_t request);
  void on_site_failed(net::SiteId s);
  /// Consult the injector's correlation rules after `failed` went down and
  /// crash the co-domain victims that fire (skipping already-down sites;
  /// the draw sequence happens regardless — see FaultInjector).
  void maybe_cascade(net::SiteId failed);
  /// Per-domain (region-level) grant/deny/latency breakdown; no-op on
  /// unannotated topologies or sites outside every region.
  void record_region(net::SiteId origin, bool granted, double latency);
  void apply_fault(const fault::Action& action);
  void handle_adapt_epoch();
  /// Shared §2.2 install sequence (scripted reassigns and adaptive
  /// installs): try_install + component data sync + InstallRecord.
  /// Returns false when the component lacked a write quorum (or the
  /// assignment was invalid / a no-op).
  bool install_assignment(net::SiteId origin, quorum::QuorumSpec next);
  void sync_component_copies(net::SiteId origin);
  /// True if a crash-on-commit trigger fired and crashed `coordinator`.
  bool maybe_crash_on_commit(net::SiteId coordinator, std::uint64_t request);
  void stamp(Message& m, net::SiteId author) const;
  void maybe_adopt(net::SiteId here, const Message& m);
  double commit_deadline() const {
    return params_.commit_timeout > 0.0 ? params_.commit_timeout
                                        : params_.phase_timeout;
  }
  std::uint64_t flood_key(std::uint64_t request, int phase) const {
    return request * 4 + static_cast<std::uint64_t>(phase - 1);  // phases 1..3
  }

  const net::Topology* topo_;
  Params params_;
  /// Per-link hop latency, resolved once at construction: an annotated
  /// link keeps its topology class; an unannotated one becomes
  /// {0, mean_hop_latency}, i.e. pure exponential jitter — the exact
  /// legacy draw, so unannotated runs stay byte-identical.
  std::vector<net::LinkLatency> hop_latency_;
  /// site -> index into region_names_ (kNoRegion when unannotated).
  std::vector<std::uint32_t> site_region_;
  std::vector<std::string> region_names_;
  static constexpr std::uint32_t kNoRegion = 0xFFFFFFFFu;
  // Mutable protocol state owned by the (future) msg shard (L007).
  QUORA_SHARD_LOCAL(msg) conn::LiveNetwork live_;
  QUORA_SHARD_LOCAL(msg) conn::ComponentTracker tracker_;
  QUORA_SHARD_LOCAL(msg) core::QuorumReassignment qr_;
  QUORA_SHARD_LOCAL(msg) rng::Xoshiro256ss gen_;
  fault::FaultInjector* injector_ = nullptr;
  fault::EventLog* log_ = nullptr;
  adapt::AdaptiveController* adaptive_ = nullptr;
  /// First outcome index of the current estimation epoch — the window the
  /// realized-gain metric is computed over.
  std::size_t adapt_window_start_ = 0;
  /// Availability of the epoch window that preceded the last adaptive
  /// install; the next epoch reports realized gain against it.
  double adapt_pre_install_avail_ = 0.0;
  bool adapt_realized_pending_ = false;

  QUORA_SHARD_LOCAL(msg) std::priority_queue<Event, std::vector<Event>, Later> queue_;
  /// Model mode only: pending events live here (flat, scannable, erasable
  /// by seq) instead of in the priority queue — the explorer, not time,
  /// decides what fires next.
  QUORA_SHARD_LOCAL(msg) std::vector<Event> model_queue_;
  QUORA_SHARD_LOCAL(msg) std::uint64_t next_seq_ = 0;
  QUORA_SHARD_LOCAL(msg) double now_ = 0.0;

  QUORA_SHARD_LOCAL(msg) std::vector<Copy> copies_;
  QUORA_SHARD_LOCAL(msg) std::vector<Lease> leases_;
  QUORA_SHARD_LOCAL(msg) std::vector<OracleEntry> oracle_cache_;                   // per site
  QUORA_SHARD_LOCAL(msg) std::vector<std::map<std::uint64_t, Pending>> pending_;   // per site
  QUORA_SHARD_LOCAL(msg) std::vector<std::map<std::uint64_t, FloodState>> floods_; // per site
  QUORA_SHARD_LOCAL(msg) std::vector<double> fifo_clock_;  // per directed link
  /// One-way cuts, indexed like fifo_clock_ (2*link + dir). A blocked
  /// direction silently discards at delivery time, mirroring how in-flight
  /// messages die with a downed link — but LiveNetwork (and thus the
  /// oracle's component view) still sees the link as up: a gray failure.
  QUORA_SHARD_LOCAL(msg) std::vector<char> dir_blocked_;
  std::uint64_t next_request_ = 1;
  std::uint64_t decided_ = 0;

  std::vector<AccessOutcome> outcomes_;
  std::vector<CommitRecord> commits_;
  std::vector<InstallRecord> installs_;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t messages_dropped_ = 0;
  std::uint64_t messages_duplicated_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t stale_rejections_ = 0;
  std::uint64_t oneway_losses_ = 0;

  obs::TraceRecorder* trace_ = nullptr;
  obs::Registry* registry_ = nullptr;  // kept to forward to a late injector
  obs::Counter obs_accesses_;
  obs::Counter obs_grants_;
  obs::Counter obs_retries_;
  std::array<obs::Counter, kDenyReasonCount> obs_denies_;  // by DenyReason
  obs::Histogram obs_access_latency_;
  obs::Histogram obs_phase1_latency_;
  obs::Histogram obs_commit_latency_;
  // Per-region (level-1 domain) breakdowns, indexed like region_names_.
  std::vector<obs::Counter> obs_region_grants_;
  std::vector<obs::Counter> obs_region_denies_;
  std::vector<obs::Histogram> obs_region_latency_;
  // Adaptive-loop instrumentation (attach_adaptive).
  obs::Counter obs_adapt_epochs_;
  obs::Counter obs_adapt_installs_;
  obs::Counter obs_adapt_refused_;
  obs::Histogram obs_adapt_predicted_gain_;
  obs::Histogram obs_adapt_realized_gain_;
};

} // namespace quora::msg
