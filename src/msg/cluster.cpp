#include "msg/cluster.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "core/contracts.hpp"
#include "rng/distributions.hpp"

namespace quora::msg {
namespace {

/// Deterministic formatting helper for event-log lines.
template <std::size_t N, typename... Args>
void logf(fault::EventLog* log, double t, char (&buf)[N], const char* fmt,
          Args... args) {
  if (log == nullptr) return;
  std::snprintf(buf, N, fmt, args...);
  log->record(t, buf);
}

} // namespace

const char* deny_reason_name(DenyReason reason) {
  switch (reason) {
    case DenyReason::kNone: return "none";
    case DenyReason::kOriginDown: return "origin-down";
    case DenyReason::kTimeout: return "timeout";
    case DenyReason::kNoQuorum: return "no-quorum";
    case DenyReason::kCoordinatorCrash: return "coordinator-crash";
    case DenyReason::kStaleAssignment: return "stale-assignment";
    case DenyReason::kAbandoned: return "abandoned";
  }
  return "unknown";
}

Cluster::Cluster(const net::Topology& topo, Params params, std::uint64_t seed)
    : topo_(&topo),
      params_(params),
      live_(topo),
      tracker_(live_),
      qr_(topo, params.spec),
      gen_(seed) {
  params_.config.validate();
  if (!params_.spec.valid(topo.total_votes())) {
    throw std::invalid_argument("Cluster: invalid quorum assignment");
  }
  if (!(params_.mean_hop_latency > 0.0) || !(params_.phase_timeout > 0.0)) {
    throw std::invalid_argument("Cluster: latency and timeout must be positive");
  }
  if (!(params_.alpha >= 0.0 && params_.alpha <= 1.0)) {
    throw std::invalid_argument("Cluster: alpha outside [0,1]");
  }
  if (params_.commit_timeout < 0.0 || params_.backoff_base < 0.0 ||
      params_.access_budget < 0.0 || params_.lease_timeout < 0.0 ||
      !(params_.backoff_jitter >= 0.0 && params_.backoff_jitter <= 1.0)) {
    throw std::invalid_argument("Cluster: negative retry/timeout parameter");
  }
  if (params_.max_retries > Params::kMaxRetryBudget) {
    throw std::invalid_argument(
        "Cluster: max_retries exceeds kMaxRetryBudget (64): doubling "
        "backoff overflows any plausible schedule first");
  }
  // The throws above use `!(x > 0)` style comparisons that a NaN slips
  // through; contracts catch what validation cannot express.
  QUORA_PRECONDITION(std::isfinite(params_.mean_hop_latency) &&
                         std::isfinite(params_.phase_timeout) &&
                         std::isfinite(params_.commit_timeout) &&
                         std::isfinite(params_.lease_timeout) &&
                         std::isfinite(params_.backoff_base) &&
                         std::isfinite(params_.backoff_jitter) &&
                         std::isfinite(params_.access_budget) &&
                         std::isfinite(params_.alpha),
                     "Cluster::Params: every timing parameter must be finite");

  if (params_.model_mode) {
    // Untimed-asynchrony abstraction: the explorer fires events in any
    // order and the logical clock ticks once per transition, so a finite
    // lease would let reordering fabricate lease-expiry races that no
    // timed schedule exhibits. Leases release only via commit, abort, or
    // crash. Retries are disabled for the same reason (their backoff
    // draws jitter; the model relation must be RNG-free).
    params_.lease_timeout = 1e12;
    params_.max_retries = 0;
    params_.backoff_jitter = 0.0;
  } else if (params_.lease_timeout <= 0.0) {
    // One attempt's worst-case window: phase 1 plus the commit deadline,
    // with slack. Retries abort the old request id first, so the lease
    // only ever has to cover a single attempt.
    params_.lease_timeout = 1.5 * params_.phase_timeout + commit_deadline();
  }
  copies_.assign(topo.site_count(), Copy{});
  leases_.assign(topo.site_count(), Lease{});
  oracle_cache_.assign(topo.site_count(), OracleEntry{});
  pending_.resize(topo.site_count());
  floods_.resize(topo.site_count());
  fifo_clock_.assign(2 * static_cast<std::size_t>(topo.link_count()), 0.0);
  dir_blocked_.assign(2 * static_cast<std::size_t>(topo.link_count()), 0);

  hop_latency_.assign(topo.link_count(), net::LinkLatency{});
  for (net::LinkId l = 0; l < topo.link_count(); ++l) {
    const net::LinkLatency lat = topo.link_latency(l);
    // Unannotated links ({0,0}) resolve to pure exponential jitter with
    // the uniform mean: base 0 + Exp(mean_hop_latency) is the exact
    // legacy draw, so unannotated runs replay byte-identically.
    hop_latency_[l] = (lat.base > 0.0 || lat.jitter > 0.0)
                          ? lat
                          : net::LinkLatency{0.0, params_.mean_hop_latency};
  }
  if (params_.model_mode) {
    // Unit base, zero jitter: send() draws no randomness, and arrival
    // times only matter for per-direction FIFO ordering.
    hop_latency_.assign(topo.link_count(), net::LinkLatency{1.0, 0.0});
  }

  if (topo.has_domains()) {
    region_names_ = topo.regions();
    site_region_.assign(topo.site_count(), kNoRegion);
    for (net::SiteId s = 0; s < topo.site_count(); ++s) {
      const std::string rg = topo.domain_prefix(s, 1);
      if (rg.empty()) continue;
      for (std::size_t i = 0; i < region_names_.size(); ++i) {
        if (region_names_[i] == rg) {
          site_region_[s] = static_cast<std::uint32_t>(i);
          break;
        }
      }
    }
  }

  if (params_.model_mode) return;  // no Poisson background events

  const double mu_f = params_.config.mu_fail();
  for (net::SiteId s = 0; s < topo.site_count(); ++s) {
    push(Event{now_ + rng::exponential(gen_, mu_f), 0, Kind::kSiteFail, s, {}, 0,
               0, 0});
  }
  for (net::LinkId l = 0; l < topo.link_count(); ++l) {
    push(Event{now_ + rng::exponential(gen_, mu_f), 0, Kind::kLinkFail, l, {}, 0,
               0, 0});
  }
  const double interarrival =
      params_.config.mu_access / static_cast<double>(topo.site_count());
  push(Event{now_ + rng::exponential(gen_, interarrival), 0, Kind::kAccess, 0, {},
             0, 0, 0});
}

void Cluster::set_trace(obs::TraceRecorder* trace) {
  trace_ = trace;
  if (trace != nullptr) trace->set_clock(&now_);
  qr_.set_trace(trace);
  tracker_.set_trace(trace);
}

void Cluster::set_metrics(obs::Registry* registry) {
  registry_ = registry;
  obs_region_grants_.assign(region_names_.size(), obs::Counter{});
  obs_region_denies_.assign(region_names_.size(), obs::Counter{});
  obs_region_latency_.assign(region_names_.size(), obs::Histogram{});
  if (registry == nullptr) {
    obs_accesses_ = obs::Counter{};
    obs_grants_ = obs::Counter{};
    obs_retries_ = obs::Counter{};
    obs_denies_.fill(obs::Counter{});
    obs_access_latency_ = obs::Histogram{};
    obs_phase1_latency_ = obs::Histogram{};
    obs_commit_latency_ = obs::Histogram{};
    obs_adapt_epochs_ = obs::Counter{};
    obs_adapt_installs_ = obs::Counter{};
    obs_adapt_refused_ = obs::Counter{};
    obs_adapt_predicted_gain_ = obs::Histogram{};
    obs_adapt_realized_gain_ = obs::Histogram{};
  } else {
    obs_accesses_ = registry->counter("cluster.accesses");
    obs_grants_ = registry->counter("cluster.grants");
    obs_retries_ = registry->counter("cluster.retries");
    // One deny counter per reason code; index 0 (kNone) stays detached.
    for (std::size_t r = 1; r < kDenyReasonCount; ++r) {
      obs_denies_[r] = registry->counter(
          std::string("cluster.denies.") +
          deny_reason_name(static_cast<DenyReason>(r)));
    }
    const std::vector<double> latency_buckets{0.001, 0.002, 0.005, 0.01,
                                              0.02,  0.05,  0.1,   0.2,
                                              0.5,   1.0,   2.0,   5.0};
    obs_access_latency_ =
        registry->histogram("cluster.access_latency_seconds", latency_buckets);
    obs_phase1_latency_ =
        registry->histogram("cluster.phase1_seconds", latency_buckets);
    obs_commit_latency_ =
        registry->histogram("cluster.commit_seconds", latency_buckets);
    obs_adapt_epochs_ = registry->counter("adapt.epochs");
    obs_adapt_installs_ = registry->counter("adapt.installs");
    obs_adapt_refused_ = registry->counter("adapt.installs_refused");
    // Gains can be negative (a mispredicted install); bucket both tails.
    const std::vector<double> gain_buckets{-0.5, -0.2, -0.1, -0.05, -0.02,
                                           0.0,  0.02, 0.05, 0.1,   0.2, 0.5};
    obs_adapt_predicted_gain_ =
        registry->histogram("adapt.predicted_gain", gain_buckets);
    obs_adapt_realized_gain_ =
        registry->histogram("adapt.realized_gain", gain_buckets);
    // Per-domain breakdown: one grant/deny counter pair and one latency
    // histogram per region (level-1 domain) of an annotated topology.
    for (std::size_t r = 0; r < region_names_.size(); ++r) {
      const std::string prefix = "cluster.domain." + region_names_[r];
      obs_region_grants_[r] = registry->counter(prefix + ".grants");
      obs_region_denies_[r] = registry->counter(prefix + ".denies");
      obs_region_latency_[r] = registry->histogram(
          prefix + ".access_latency_seconds", latency_buckets);
    }
  }
  qr_.set_metrics(registry);
  tracker_.set_metrics(registry);
  if (injector_ != nullptr) injector_->set_metrics(registry);
}

void Cluster::attach_injector(fault::FaultInjector* injector) {
  injector_ = injector;
  injector->set_topology(topo_);
  if (registry_ != nullptr) injector->set_metrics(registry_);
  const auto& timeline = injector->timeline();
  for (std::size_t i = 0; i < timeline.size(); ++i) {
    Event e;
    e.time = timeline[i].time;
    e.kind = Kind::kFault;
    e.index = static_cast<std::uint32_t>(i);
    push(e);
  }
}

void Cluster::attach_log(fault::EventLog* log) { log_ = log; }

void Cluster::attach_adaptive(adapt::AdaptiveController* controller) {
  adaptive_ = controller;
  if (controller == nullptr) return;
  if (controller->histogram().site_count() != topo_->site_count() ||
      controller->histogram().total_votes() != topo_->total_votes()) {
    throw std::invalid_argument(
        "Cluster::attach_adaptive: controller sized for a different system");
  }
  adapt_window_start_ = outcomes_.size();
  push(Event{now_ + controller->options().epoch_length, 0, Kind::kAdaptEpoch,
             0, {}, 0, 0, 0});
}

void Cluster::push(Event e) {
  e.seq = next_seq_++;
  if (params_.model_mode) {
    model_queue_.push_back(e);
    return;
  }
  queue_.push(e);
}

void Cluster::stamp(Message& m, net::SiteId author) const {
  const core::QuorumReassignment::Assignment& a = qr_.stored(author);
  m.qr_version = a.version;
  m.qr_r = a.spec.q_r;
  m.qr_w = a.spec.q_w;
}

void Cluster::maybe_adopt(net::SiteId here, const Message& m) {
  if (m.qr_version > qr_.stored(here).version) {
    qr_.adopt(here, core::QuorumReassignment::Assignment{
                        quorum::QuorumSpec{m.qr_r, m.qr_w}, m.qr_version});
  }
}

void Cluster::send(net::SiteId from, net::LinkId link, const Message& m) {
  const net::Link& edge = topo_->link(link);
  const net::SiteId to = edge.a == from ? edge.b : edge.a;
  const std::size_t dir =
      2 * static_cast<std::size_t>(link) + (edge.a == from ? 0 : 1);

  const net::LinkLatency& hop = hop_latency_[link];
  fault::MessageFault fate;
  if (injector_ != nullptr && injector_->has_rules()) {
    // The duplicate-copy latency draw is parameterized by this link's
    // mean hop latency (= mean_hop_latency on unannotated topologies).
    fate = injector_->on_send(link, now_, hop.base + hop.jitter);
  }

  double hop_latency = hop.base + fate.extra_delay;
  if (hop.jitter > 0.0) hop_latency += rng::exponential(gen_, hop.jitter);
  const double arrival = std::max(fifo_clock_[dir], now_ + hop_latency);
  fifo_clock_[dir] = arrival;  // FIFO per direction
  ++messages_sent_;

  Event e;
  e.time = arrival;
  e.kind = Kind::kDelivery;
  e.index = link;
  e.target = to;
  e.message = m;
  e.message.sender = from;
  if (fate.drop) {
    // Lost mid-flight. The FIFO clock already advanced past its would-be
    // arrival, so later messages keep their ordering.
    ++messages_dropped_;
  } else {
    push(e);
  }
  if (fate.duplicate) {
    ++messages_sent_;
    ++messages_duplicated_;
    const double dup_arrival = std::max(fifo_clock_[dir], arrival + fate.dup_extra);
    fifo_clock_[dir] = dup_arrival;
    Event dup = e;
    dup.time = dup_arrival;
    push(dup);
  }
}

void Cluster::flood(net::SiteId from, std::uint64_t flood_id, const Message& m,
                    net::LinkId except_link, bool has_except) {
  (void)flood_id;
  for (const net::Topology::Edge& edge : topo_->neighbors(from)) {
    if (has_except && edge.link == except_link) continue;
    send(from, edge.link, m);
  }
}

void Cluster::relay_toward_coordinator(net::SiteId at, const Message& m) {
  const int phase = (m.kind == Message::Kind::kVoteReply ||
                     m.kind == Message::Kind::kVoteDeny)
                        ? 1
                        : 2;
  const auto it = floods_[at].find(flood_key(m.request, phase));
  if (it == floods_[at].end() || !it->second.has_parent) return;  // path lost
  send(at, it->second.parent_link, m);
}

void Cluster::handle_access(net::SiteId origin) {
  const bool is_read = rng::bernoulli(gen_, params_.alpha);
  submit_access(origin, is_read);
}

void Cluster::submit_access(net::SiteId origin, bool is_read) {
  const std::uint64_t request = next_request_++;
  QUORA_METRIC_ADD(obs_accesses_, 1);
  QUORA_TRACE(trace_, obs::EventKind::kAccessSubmit, origin, request, 0,
              is_read ? std::uint8_t{1} : std::uint8_t{0});

  // Oracle: the paper's instantaneous decision from global state, under
  // the assignment in effect for origin's component (§2.2). Memoized per
  // site against the (network version, QR epoch) pair — see OracleEntry.
  OracleEntry& oc = oracle_cache_[origin];
  if (oc.net_version != live_.version() || oc.qr_epoch != qr_.epoch()) {
    oc.votes = tracker_.component_votes(origin);
    oc.assign = qr_.effective(tracker_, origin);
    oc.net_version = live_.version();
    oc.qr_epoch = qr_.epoch();
  }
  const net::Vote oracle_votes = oc.votes;
  const quorum::QuorumSpec oracle_spec = oc.assign.spec;
  const bool oracle = is_read ? oracle_spec.allows_read(oracle_votes)
                              : oracle_spec.allows_write(oracle_votes);

  if (!live_.is_site_up(origin)) {
    AccessOutcome out;
    out.submit_time = now_;
    out.decide_time = now_;
    out.origin = origin;
    out.is_read = is_read;
    out.granted = false;
    out.deny_reason = DenyReason::kOriginDown;
    out.qr_version = qr_.stored(origin).version;
    out.oracle_granted = oracle;
    outcomes_.push_back(out);
    ++decided_;
    QUORA_METRIC_ADD(
        obs_denies_[static_cast<std::size_t>(DenyReason::kOriginDown)], 1);
    QUORA_METRIC_RECORD(obs_access_latency_, 0.0);
    record_region(origin, false, 0.0);
    QUORA_TRACE(trace_, obs::EventKind::kAccessDeny, origin, request, 0,
                static_cast<std::uint8_t>(DenyReason::kOriginDown));
    char buf[160];
    logf(log_, now_, buf, "decide id=%llu origin=%u %s denied reason=%s",
         static_cast<unsigned long long>(request), origin,
         is_read ? "read" : "write", deny_reason_name(out.deny_reason));
    return;
  }

  // Adaptive estimator tap: accesses are Poisson arrivals, so sampling the
  // component vote total at submit instants yields unbiased time averages
  // (PASTA). The down-origin path above never records, which is exactly the
  // footnote-4 "sites observe only while operational" censoring the
  // estimator's read-out conditioning undoes.
  if (adaptive_ != nullptr) adaptive_->histogram().record(origin, oracle_votes);

  Pending p;
  p.is_read = is_read;
  p.submit_time = now_;
  p.oracle_granted = oracle;
  p.write_value = request;  // written payload: the request id (test-visible)
  pending_[origin][request] = p;
  start_coordination(origin, request);
}

void Cluster::start_coordination(net::SiteId origin, std::uint64_t request) {
  Pending& p = pending_[origin][request];
  // Fresh attempt: snapshot the locally stored assignment and copy. A
  // retry re-reads both — the previous attempt may have adopted a newer
  // QR assignment from a stale-deny, or seen a commit land locally.
  const core::QuorumReassignment::Assignment assign = qr_.stored(origin);
  p.spec = assign.spec;
  p.qr_version = assign.version;
  p.phase = 1;
  p.votes = topo_->votes(origin);
  p.denied = 0;
  p.acked = 0;
  p.repliers.clear();
  p.repliers.insert(origin);
  p.ackers.clear();
  p.best_version = copies_[origin].version;
  p.best_value = copies_[origin].value;
  QUORA_OBS_ONLY(p.obs_attempt_start = now_;)
  QUORA_TRACE(trace_, obs::EventKind::kRoundStart, origin, request,
              p.obs_prev_request, static_cast<std::uint8_t>(p.attempt));

  if (!p.is_read) {
    Lease& lease = leases_[origin];
    if (lease.held(now_) && lease.request != request) {
      // Our own vote is leased to another in-flight write: this write
      // cannot proceed from here right now.
      decide(origin, request, false, DenyReason::kNoQuorum);
      return;
    }
    lease = Lease{request, now_ + params_.lease_timeout};
  }

  floods_[origin][flood_key(request, 1)] = FloodState{0, false};

  Message m;
  m.kind = Message::Kind::kVoteRequest;
  m.is_write = !p.is_read;
  m.request = request;
  m.coordinator = origin;
  stamp(m, origin);
  flood(origin, flood_key(request, 1), m, 0, false);

  Event timer;
  timer.time = now_ + params_.phase_timeout;
  timer.kind = Kind::kTimer;
  timer.target = origin;
  timer.request = request;
  timer.phase = 1;
  push(timer);

  // Single-site quorums decide immediately.
  Pending& live_p = pending_[origin][request];
  if (live_p.is_read && live_p.spec.allows_read(live_p.votes)) {
    decide(origin, request, true);
  } else if (!live_p.is_read && live_p.spec.allows_write(live_p.votes)) {
    // Degenerate write quorum: apply locally, done.
    live_p.phase = 2;
    QUORA_METRIC_RECORD(obs_phase1_latency_, now_ - live_p.obs_attempt_start);
    QUORA_OBS_ONLY(live_p.obs_phase2_start = now_;)
    live_p.best_version = live_p.best_version + 1;
    copies_[origin] = Copy{live_p.write_value, live_p.best_version};
    if (leases_[origin].request == request) leases_[origin] = Lease{};
    live_p.acked = topo_->votes(origin);
    live_p.ackers.insert(origin);
    if (maybe_crash_on_commit(origin, request)) return;
    decide(origin, request, true);
  }
}

void Cluster::retry(net::SiteId coordinator, std::uint64_t old_request) {
  const auto it = pending_[coordinator].find(old_request);
  Pending p = std::move(it->second);
  pending_[coordinator].erase(it);
  if (!p.is_read) {
    // Release our own lease and flood an abort so remote leases for the
    // dead attempt free up instead of starving the retry.
    if (leases_[coordinator].request == old_request) {
      leases_[coordinator] = Lease{};
    }
    abort_flood(coordinator, old_request);
  }

  ++p.attempt;
  ++retries_;
  QUORA_METRIC_ADD(obs_retries_, 1);
  QUORA_OBS_ONLY(p.obs_prev_request = old_request;)
  const std::uint64_t request = next_request_++;
  const double base = params_.backoff_base > 0.0 ? params_.backoff_base
                                                 : 0.25 * params_.phase_timeout;
  double backoff =
      base * std::pow(2.0, static_cast<double>(p.attempt) - 1.0);
  if (params_.backoff_jitter > 0.0) {
    // Jitter around the nominal value, in [1 - j/2, 1 + j/2).
    backoff *= 1.0 - 0.5 * params_.backoff_jitter +
               params_.backoff_jitter * gen_.next_double();
  }

  char buf[160];
  logf(log_, now_, buf, "retry id=%llu origin=%u attempt=%u next=%llu",
       static_cast<unsigned long long>(old_request), coordinator, p.attempt,
       static_cast<unsigned long long>(request));

  pending_[coordinator].emplace(request, std::move(p));
  Event e;
  e.time = now_ + backoff;
  e.kind = Kind::kRetry;
  e.target = coordinator;
  e.request = request;
  push(e);
}

void Cluster::decide(net::SiteId coordinator, std::uint64_t request,
                     bool granted, DenyReason reason) {
  const auto it = pending_[coordinator].find(request);
  if (it == pending_[coordinator].end()) return;
  const Pending& p = it->second;

  AccessOutcome out;
  out.submit_time = p.submit_time;
  out.decide_time = now_;
  out.origin = coordinator;
  out.is_read = p.is_read;
  out.granted = granted;
  out.deny_reason =
      granted ? DenyReason::kNone
              : (reason == DenyReason::kNone ? DenyReason::kTimeout : reason);
  out.attempts = p.attempt;
  out.votes_collected = granted ? (p.is_read ? p.votes : p.acked) : 0;
  out.qr_version = p.qr_version;
  out.oracle_granted = p.oracle_granted;
  out.version = p.best_version;
  out.value = p.is_read ? p.best_value : p.write_value;
  outcomes_.push_back(out);
  if (!p.is_read && granted) {
    commits_.push_back(CommitRecord{p.best_version, now_});
  }

  QUORA_TRACE(trace_, obs::EventKind::kRoundFinish, coordinator, request, 0,
              static_cast<std::uint8_t>(p.phase));
  if (granted) {
    QUORA_METRIC_ADD(obs_grants_, 1);
    QUORA_TRACE(trace_, obs::EventKind::kAccessGrant, coordinator, request,
                out.version, static_cast<std::uint8_t>(p.attempt));
  } else {
    QUORA_METRIC_ADD(
        obs_denies_[static_cast<std::size_t>(out.deny_reason)], 1);
    QUORA_TRACE(trace_, obs::EventKind::kAccessDeny, coordinator, request,
                out.version, static_cast<std::uint8_t>(out.deny_reason));
  }
  QUORA_METRIC_RECORD(obs_access_latency_, now_ - p.submit_time);
  record_region(coordinator, granted, now_ - p.submit_time);
  QUORA_OBS_ONLY(if (p.phase == 2) {
    QUORA_METRIC_RECORD(obs_commit_latency_, now_ - p.obs_phase2_start);
  } else {
    QUORA_METRIC_RECORD(obs_phase1_latency_, now_ - p.obs_attempt_start);
  })

  char buf[200];
  logf(log_, now_, buf,
       "decide id=%llu origin=%u %s %s reason=%s qrv=%llu v=%llu attempt=%u",
       static_cast<unsigned long long>(request), coordinator,
       p.is_read ? "read" : "write", granted ? "granted" : "denied",
       deny_reason_name(out.deny_reason),
       static_cast<unsigned long long>(out.qr_version),
       static_cast<unsigned long long>(out.version), p.attempt);

  const bool abort_write = !p.is_read && !granted;
  pending_[coordinator].erase(it);
  ++decided_;

  if (abort_write) abort_flood(coordinator, request);
}

void Cluster::abort_flood(net::SiteId coordinator, std::uint64_t request) {
  if (!live_.is_site_up(coordinator)) return;
  // Release leased votes proactively; lease expiry covers the sites an
  // abort cannot reach.
  if (leases_[coordinator].request == request) leases_[coordinator] = Lease{};
  Message abort;
  abort.kind = Message::Kind::kAbort;
  abort.request = request;
  abort.coordinator = coordinator;
  stamp(abort, coordinator);
  floods_[coordinator][flood_key(request, 3)] = FloodState{0, false};
  flood(coordinator, flood_key(request, 3), abort, 0, false);
}

void Cluster::handle_delivery(const Event& e) {
  // In-flight messages die with the link or the destination.
  if (!live_.is_link_up(e.index) || !live_.is_site_up(e.target)) return;
  // One-way cuts discard at delivery time too — but invisibly to
  // LiveNetwork, so the oracle still believes the link works (gray).
  const std::size_t dir = 2 * static_cast<std::size_t>(e.index) +
                          (topo_->link(e.index).b == e.target ? 0 : 1);
  if (dir_blocked_[dir] != 0) {
    ++oneway_losses_;
    return;
  }
  const Message& m = e.message;
  const net::SiteId here = e.target;

  // §2.2 gossip: every message carries its author's assignment; any
  // receiver behind it adopts before acting.
  maybe_adopt(here, m);

  // Optional estimator tap at delivery instants. Off by default: deliveries
  // cluster in well-connected periods, so this sample is size-biased toward
  // large components (unlike the PASTA-clean access tap).
  if (adaptive_ != nullptr && adaptive_->options().sample_deliveries) {
    adaptive_->histogram().record(here, tracker_.component_votes(here));
  }

  switch (m.kind) {
    case Message::Kind::kVoteRequest: {
      const std::uint64_t fk = flood_key(m.request, 1);
      if (floods_[here].contains(fk)) return;  // already participated
      floods_[here][fk] = FloodState{e.index, true};

      const std::uint64_t my_version = qr_.stored(here).version;
      if (m.qr_version < my_version && !params_.mutations.accept_stale_qr) {
        // Stale-version rejection (§2.2): the coordinator is running a
        // superseded assignment. Refuse the vote and carry the newer
        // assignment back so it can adopt.
        Message reply;
        reply.kind = Message::Kind::kVoteDeny;
        reply.request = m.request;
        reply.coordinator = m.coordinator;
        reply.replier = here;
        reply.votes = topo_->votes(here);
        reply.version = copies_[here].version;
        reply.value = copies_[here].value;
        stamp(reply, here);
        send(here, e.index, reply);
        flood(here, fk, m, e.index, true);
        return;
      }

      bool vote_granted = true;
      if (m.is_write) {
        Lease& lease = leases_[here];
        if (lease.held(now_) && lease.request != m.request) {
          vote_granted = false;  // vote already leased to another write
        } else {
          lease = Lease{m.request, now_ + params_.lease_timeout};
        }
      }
      Message reply;
      reply.kind = vote_granted ? Message::Kind::kVoteReply
                                : Message::Kind::kVoteDeny;
      reply.request = m.request;
      reply.coordinator = m.coordinator;
      reply.replier = here;
      reply.votes = topo_->votes(here);
      reply.version = copies_[here].version;
      reply.value = copies_[here].value;
      stamp(reply, here);
      send(here, e.index, reply);
      flood(here, fk, m, e.index, true);  // the flood continues regardless
      return;
    }
    case Message::Kind::kCommitRequest: {
      const std::uint64_t fk = flood_key(m.request, 2);
      if (floods_[here].contains(fk)) return;
      floods_[here][fk] = FloodState{e.index, true};

      if (m.version > copies_[here].version) {
        copies_[here] = Copy{m.value, m.version};
      }
      if (leases_[here].request == m.request) leases_[here] = Lease{};
      Message ack;
      ack.kind = Message::Kind::kCommitAck;
      ack.request = m.request;
      ack.coordinator = m.coordinator;
      ack.replier = here;
      ack.votes = topo_->votes(here);
      ack.version = m.version;
      stamp(ack, here);
      send(here, e.index, ack);
      flood(here, fk, m, e.index, true);
      return;
    }
    case Message::Kind::kVoteDeny: {
      if (here != m.coordinator) {
        relay_toward_coordinator(here, m);
        return;
      }
      const auto it = pending_[here].find(m.request);
      if (it == pending_[here].end() || it->second.phase != 1) return;
      Pending& p = it->second;
      if (!p.repliers.insert(m.replier).second) return;
      if (m.qr_version > p.qr_version) {
        // The replier holds a newer QR assignment than this coordination
        // ran under: the access must not proceed. (We already adopted the
        // newer assignment above; fresh accesses use it.)
        ++stale_rejections_;
        char buf[160];
        logf(log_, now_, buf,
             "stale-reject id=%llu coord=%u coord_qrv=%llu seen_qrv=%llu",
             static_cast<unsigned long long>(m.request), here,
             static_cast<unsigned long long>(p.qr_version),
             static_cast<unsigned long long>(m.qr_version));
        decide(here, m.request, false, DenyReason::kStaleAssignment);
        return;
      }
      p.denied += m.votes;
      // Fast abort: a write quorum is no longer reachable.
      if (!p.is_read && topo_->total_votes() - p.denied < p.spec.q_w) {
        decide(here, m.request, false, DenyReason::kNoQuorum);
      }
      return;
    }
    case Message::Kind::kVoteReply: {
      if (here != m.coordinator) {
        relay_toward_coordinator(here, m);
        return;
      }
      const auto it = pending_[here].find(m.request);
      if (it == pending_[here].end() || it->second.phase != 1) return;
      Pending& p = it->second;
      if (!p.repliers.insert(m.replier).second) return;
      p.votes += m.votes;
      if (m.version > p.best_version) {
        p.best_version = m.version;
        p.best_value = m.value;
      }
      if (p.is_read) {
        if (p.spec.allows_read(p.votes)) decide(here, m.request, true);
        return;
      }
      if (p.spec.allows_write(p.votes)) {
        // Phase 2: install the new version everywhere reachable.
        p.phase = 2;
        QUORA_METRIC_RECORD(obs_phase1_latency_, now_ - p.obs_attempt_start);
        QUORA_OBS_ONLY(p.obs_phase2_start = now_;)
        p.best_version = p.best_version + 1;
        copies_[here] = Copy{p.write_value, p.best_version};
        if (leases_[here].request == m.request) leases_[here] = Lease{};
        p.acked = topo_->votes(here);
        p.ackers.insert(here);
        floods_[here][flood_key(m.request, 2)] = FloodState{0, false};

        Message commit;
        commit.kind = Message::Kind::kCommitRequest;
        commit.request = m.request;
        commit.coordinator = here;
        commit.version = p.best_version;
        commit.value = p.write_value;
        stamp(commit, here);
        flood(here, flood_key(m.request, 2), commit, 0, false);

        Event timer;
        timer.time = now_ + commit_deadline();
        timer.kind = Kind::kTimer;
        timer.target = here;
        timer.request = m.request;
        timer.phase = 2;
        push(timer);

        // The partial-write scenario: the commit flood has departed, the
        // ack quorum has not assembled — a scripted crash lands exactly in
        // the gap.
        if (maybe_crash_on_commit(here, m.request)) return;

        if (p.spec.allows_write(p.acked)) decide(here, m.request, true);
      }
      return;
    }
    case Message::Kind::kAbort: {
      const std::uint64_t fk = flood_key(m.request, 3);
      if (floods_[here].contains(fk)) return;
      floods_[here][fk] = FloodState{e.index, true};
      if (leases_[here].request == m.request) leases_[here] = Lease{};
      flood(here, fk, m, e.index, true);
      return;
    }
    case Message::Kind::kCommitAck: {
      if (here != m.coordinator) {
        relay_toward_coordinator(here, m);
        return;
      }
      const auto it = pending_[here].find(m.request);
      if (it == pending_[here].end() || it->second.phase != 2) return;
      Pending& p = it->second;
      if (!p.ackers.insert(m.replier).second) return;
      p.acked += m.votes;
      if (p.spec.allows_write(p.acked)) decide(here, m.request, true);
      return;
    }
  }
}

void Cluster::handle_timer(const Event& e) {
  const auto it = pending_[e.target].find(e.request);
  if (it == pending_[e.target].end()) return;    // already decided
  if (it->second.phase != e.phase) return;       // superseded by phase 2
  const Pending& p = it->second;
  const bool budget_ok =
      params_.access_budget <= 0.0 ||
      now_ - p.submit_time < params_.access_budget;
  if (e.phase == 1 && p.attempt < params_.max_retries && budget_ok &&
      live_.is_site_up(e.target)) {
    retry(e.target, e.request);
    return;
  }
  decide(e.target, e.request, false,
         p.attempt > 0 ? DenyReason::kAbandoned : DenyReason::kTimeout);
}

bool Cluster::maybe_crash_on_commit(net::SiteId coordinator,
                                    std::uint64_t request) {
  if (injector_ == nullptr) return false;
  const std::optional<double> down_for =
      injector_->take_crash_on_commit(coordinator);
  if (!down_for) return false;
  char buf[120];
  logf(log_, now_, buf, "crash-on-commit coord=%u id=%llu down_for=%.6f",
       coordinator, static_cast<unsigned long long>(request), *down_for);
  QUORA_TRACE(trace_, obs::EventKind::kFaultInject, coordinator, request, 0,
              obs::kFaultSite);
  live_.set_site_up(coordinator, false);
  on_site_failed(coordinator);
  maybe_cascade(coordinator);
  if (*down_for > 0.0) {
    push(Event{now_ + *down_for, 0, Kind::kSiteRecover, coordinator, {}, 0, 0,
               0});
  } else {
    // duration == 0: crash with immediate restart. Volatile coordination
    // state is gone (the pending request just resolved coordinator-crash)
    // but the site never observably leaves the up set — no recovery event,
    // no extra Poisson rescheduling, no RNG draw.
    live_.set_site_up(coordinator, true);
    QUORA_TRACE(trace_, obs::EventKind::kFaultHeal, coordinator, request, 0,
                obs::kFaultSite);
  }
  return true;
}

void Cluster::on_site_failed(net::SiteId s) {
  // Fail-stop: volatile coordination state is lost; every in-progress
  // coordination this site led resolves as denied right now. (The seeded
  // mutation keeps the coordinations alive across the crash — the bug the
  // model checker must rediscover as a duplicate commit version.)
  if (!params_.mutations.skip_crash_cleanup) {
    while (!pending_[s].empty()) {
      decide(s, pending_[s].begin()->first, false,
             DenyReason::kCoordinatorCrash);
    }
  }
  floods_[s].clear();
  leases_[s] = Lease{};  // volatile
}

void Cluster::maybe_cascade(net::SiteId failed) {
  // Legacy plans carry no correlation rules: no draws, so their
  // transcripts stay byte-identical.
  if (injector_ == nullptr || !injector_->has_correlations()) return;
  char buf[160];
  for (const auto& [victim, down_for] : injector_->correlated_failures(failed)) {
    if (!live_.set_site_up(victim, false)) continue;  // already down
    on_site_failed(victim);
    logf(log_, now_, buf, "fault correlated site=%u with=%u down_for=%.6f",
         victim, failed, down_for);
    QUORA_TRACE(trace_, obs::EventKind::kFaultInject, victim, 0, failed,
                obs::kFaultSite);
    // One level of contagion only: victims recover via kFaultRecover and
    // never cascade themselves, so a rack rule cannot melt the fleet.
    push(Event{now_ + down_for, 0, Kind::kFaultRecover, victim, {}, 0, 0, 0});
  }
}

void Cluster::record_region(net::SiteId origin, bool granted, double latency) {
  if (site_region_.empty()) return;
  const std::uint32_t r = site_region_[origin];
  if (r == kNoRegion || r >= obs_region_grants_.size()) return;
  if (granted) {
    QUORA_METRIC_ADD(obs_region_grants_[r], 1);
  } else {
    QUORA_METRIC_ADD(obs_region_denies_[r], 1);
  }
  QUORA_METRIC_RECORD(obs_region_latency_[r], latency);
}

void Cluster::sync_component_copies(net::SiteId origin) {
  const std::int32_t comp = tracker_.component_of(origin);
  if (comp == conn::kNoComponent) return;
  const auto members = tracker_.members(comp);
  Copy best = copies_[origin];
  for (const net::SiteId s : members) {
    if (copies_[s].version > best.version) best = copies_[s];
  }
  for (const net::SiteId s : members) copies_[s] = best;
}

void Cluster::apply_fault(const fault::Action& action) {
  using K = fault::Action::Kind;
  char buf[160];
  switch (action.kind) {
    case K::kSiteDown: {
      const bool changed = live_.set_site_up(action.site, false);
      if (changed) on_site_failed(action.site);
      logf(log_, now_, buf, "fault site-down %u", action.site);
      QUORA_TRACE(trace_, obs::EventKind::kFaultInject, action.site, 0, 0,
                  obs::kFaultSite);
      if (changed) maybe_cascade(action.site);
      break;
    }
    case K::kSiteUp:
      live_.set_site_up(action.site, true);
      logf(log_, now_, buf, "fault site-up %u", action.site);
      QUORA_TRACE(trace_, obs::EventKind::kFaultHeal, action.site, 0, 0,
                  obs::kFaultSite);
      break;
    case K::kLinkDown:
      live_.set_link_up(action.link, false);
      logf(log_, now_, buf, "fault link-down %u", action.link);
      QUORA_TRACE(trace_, obs::EventKind::kFaultInject, action.link, 0, 0,
                  obs::kFaultLink);
      break;
    case K::kLinkUp:
      live_.set_link_up(action.link, true);
      logf(log_, now_, buf, "fault link-up %u", action.link);
      QUORA_TRACE(trace_, obs::EventKind::kFaultHeal, action.link, 0, 0,
                  obs::kFaultLink);
      break;
    case K::kPartition: {
      std::vector<std::int32_t> group(topo_->site_count(), -1);
      for (std::size_t g = 0; g < action.groups.size(); ++g) {
        for (const net::SiteId s : action.groups[g]) {
          if (s < topo_->site_count()) group[s] = static_cast<std::int32_t>(g);
        }
      }
      std::uint32_t cut = 0;
      for (net::LinkId l = 0; l < topo_->link_count(); ++l) {
        const net::Link& edge = topo_->link(l);
        if (group[edge.a] != -1 && group[edge.b] != -1 &&
            group[edge.a] != group[edge.b]) {
          if (live_.set_link_up(l, false)) ++cut;
        }
      }
      logf(log_, now_, buf, "fault partition groups=%u cut=%u",
           static_cast<std::uint32_t>(action.groups.size()), cut);
      QUORA_TRACE(trace_, obs::EventKind::kFaultInject, 0, 0, cut,
                  obs::kFaultPartition);
      break;
    }
    case K::kHeal:
      live_.reset_all_up();
      logf(log_, now_, buf, "fault heal");
      QUORA_TRACE(trace_, obs::EventKind::kFaultHeal, 0, 0, 0,
                  obs::kFaultHealAll);
      break;
    case K::kHealLinks:
      for (net::LinkId l = 0; l < topo_->link_count(); ++l) {
        live_.set_link_up(l, true);
      }
      logf(log_, now_, buf, "fault heal-links");
      QUORA_TRACE(trace_, obs::EventKind::kFaultHeal, 0, 0, 1,
                  obs::kFaultHealAll);
      break;
    case K::kReassign: {
      if (install_assignment(action.site, action.next)) {
        logf(log_, now_, buf, "fault reassign origin=%u qr=(%u,%u) v=%llu installed",
             action.site, action.next.q_r, action.next.q_w,
             static_cast<unsigned long long>(qr_.stored(action.site).version));
      } else {
        logf(log_, now_, buf, "fault reassign origin=%u qr=(%u,%u) refused",
             action.site, action.next.q_r, action.next.q_w);
      }
      break;
    }
    case K::kArmCrashOnCommit:
      injector_->arm_crash_on_commit(action.site, action.duration);
      logf(log_, now_, buf, "fault arm-crash-on-commit site=%u",
           action.site);
      break;
    case K::kDomainDown: {
      // Scripted whole-domain outages do not cascade: the blast radius is
      // exactly the named domain, so scenarios stay composable.
      std::uint32_t downed = 0;
      for (const net::SiteId s : topo_->sites_in_domain(action.domain)) {
        if (live_.set_site_up(s, false)) {
          on_site_failed(s);
          ++downed;
        }
      }
      logf(log_, now_, buf, "fault domain-down %s sites=%u",
           action.domain.c_str(), downed);
      QUORA_TRACE(trace_, obs::EventKind::kFaultInject, 0, 0, downed,
                  obs::kFaultSite);
      break;
    }
    case K::kDomainUp: {
      std::uint32_t upped = 0;
      for (const net::SiteId s : topo_->sites_in_domain(action.domain)) {
        if (live_.set_site_up(s, true)) ++upped;
      }
      logf(log_, now_, buf, "fault domain-up %s sites=%u",
           action.domain.c_str(), upped);
      QUORA_TRACE(trace_, obs::EventKind::kFaultHeal, 0, 0, upped,
                  obs::kFaultSite);
      break;
    }
    case K::kSetAlpha:
      // Regime shifts mutate the parameter in place; only draws made after
      // this instant see the new value, so the run stays deterministic.
      params_.alpha = action.value;
      logf(log_, now_, buf, "fault set-alpha %.6f", action.value);
      break;
    case K::kSetReliability:
      params_.config.reliability = action.value;
      logf(log_, now_, buf, "fault set-reliability %.6f", action.value);
      break;
    case K::kSetRho:
      params_.config.rho = action.value;
      logf(log_, now_, buf, "fault set-rho %.9f", action.value);
      break;
    case K::kAccess:
      // Scripted access: deterministic — no Poisson draw, no read/write
      // coin flip — so counterexample replays pin the exact sequence the
      // model checker explored.
      logf(log_, now_, buf, "fault access origin=%u %s", action.site,
           action.is_read ? "read" : "write");
      submit_access(action.site, action.is_read);
      break;
    case K::kOneWayDown:
    case K::kOneWayUp: {
      const bool down = action.kind == K::kOneWayDown;
      const net::LinkId l = topo_->find_link(action.site, action.site_b);
      if (l == topo_->link_count()) {
        // audit_chaos flags this statically; at runtime it is a no-op.
        logf(log_, now_, buf, "fault oneway-%s %u->%u no-link",
             down ? "down" : "up", action.site, action.site_b);
        break;
      }
      const std::size_t dir = 2 * static_cast<std::size_t>(l) +
                              (topo_->link(l).b == action.site_b ? 0 : 1);
      dir_blocked_[dir] = down ? 1 : 0;
      logf(log_, now_, buf, "fault oneway-%s %u->%u link=%u",
           down ? "down" : "up", action.site, action.site_b, l);
      QUORA_TRACE(trace_,
                  down ? obs::EventKind::kFaultInject : obs::EventKind::kFaultHeal,
                  l, 0, 0, obs::kFaultLink);
      break;
    }
  }
}

void Cluster::step(const Event& e) {
  const double mu_f = params_.config.mu_fail();
  const double mu_r = params_.config.mu_repair();
  switch (e.kind) {
    case Kind::kSiteFail:
      live_.set_site_up(e.index, false);
      on_site_failed(e.index);
      QUORA_TRACE(trace_, obs::EventKind::kFaultInject, e.index, 0, 0,
                  obs::kFaultSite);
      push(Event{now_ + rng::exponential(gen_, mu_r), 0, Kind::kSiteRecover,
                 e.index, {}, 0, 0, 0});
      maybe_cascade(e.index);
      break;
    case Kind::kSiteRecover:
      live_.set_site_up(e.index, true);
      QUORA_TRACE(trace_, obs::EventKind::kFaultHeal, e.index, 0, 0,
                  obs::kFaultSite);
      push(Event{now_ + rng::exponential(gen_, mu_f), 0, Kind::kSiteFail,
                 e.index, {}, 0, 0, 0});
      break;
    case Kind::kLinkFail:
      live_.set_link_up(e.index, false);
      QUORA_TRACE(trace_, obs::EventKind::kFaultInject, e.index, 0, 0,
                  obs::kFaultLink);
      push(Event{now_ + rng::exponential(gen_, mu_r), 0, Kind::kLinkRecover,
                 e.index, {}, 0, 0, 0});
      break;
    case Kind::kLinkRecover:
      live_.set_link_up(e.index, true);
      QUORA_TRACE(trace_, obs::EventKind::kFaultHeal, e.index, 0, 0,
                  obs::kFaultLink);
      push(Event{now_ + rng::exponential(gen_, mu_f), 0, Kind::kLinkFail,
                 e.index, {}, 0, 0, 0});
      break;
    case Kind::kAccess: {
      const auto origin = static_cast<net::SiteId>(
          rng::uniform_index(gen_, topo_->site_count()));
      handle_access(origin);
      const double interarrival =
          params_.config.mu_access / static_cast<double>(topo_->site_count());
      push(Event{now_ + rng::exponential(gen_, interarrival), 0, Kind::kAccess,
                 0, {}, 0, 0, 0});
      break;
    }
    case Kind::kDelivery:
      handle_delivery(e);
      break;
    case Kind::kTimer:
      handle_timer(e);
      break;
    case Kind::kFault:
      apply_fault(injector_->timeline()[e.index]);
      break;
    case Kind::kRetry: {
      const auto it = pending_[e.target].find(e.request);
      // The coordinator may have crashed while backing off (the pending
      // entry resolves as coordinator-crash when the site fails).
      if (it == pending_[e.target].end()) break;
      if (!live_.is_site_up(e.target)) break;
      start_coordination(e.target, e.request);
      break;
    }
    case Kind::kFaultRecover:
      // A correlated-failure victim comes back. No Poisson rescheduling
      // and no draw: the site's own fail/repair process runs on.
      live_.set_site_up(e.index, true);
      QUORA_TRACE(trace_, obs::EventKind::kFaultHeal, e.index, 0, 0,
                  obs::kFaultSite);
      break;
    case Kind::kAdaptEpoch:
      handle_adapt_epoch();
      break;
  }
}

bool Cluster::install_assignment(net::SiteId origin, quorum::QuorumSpec next) {
  if (!live_.is_site_up(origin) ||
      !qr_.try_install(tracker_, origin, next)) {
    return false;
  }
  // §2.2 one-copy serializability: the installing component holds a write
  // quorum under the old assignment, so it contains the newest copy —
  // spread it alongside the assignment, or a read quorum under the new
  // assignment could miss it (see core/reassign.hpp).
  sync_component_copies(origin);
  installs_.push_back(
      InstallRecord{qr_.stored(origin).version, now_, origin, next});
  return true;
}

void Cluster::handle_adapt_epoch() {
  char buf[200];
  // Epoch-window availability over the accesses decided since the previous
  // epoch boundary; this is the realized side of the predicted/realized
  // gain ledger.
  const std::size_t end = outcomes_.size();
  std::uint64_t granted = 0;
  for (std::size_t i = adapt_window_start_; i < end; ++i) {
    granted += outcomes_[i].granted ? 1 : 0;
  }
  const std::size_t window = end - adapt_window_start_;
  const double window_avail =
      window > 0 ? static_cast<double>(granted) / static_cast<double>(window)
                 : 0.0;
  adapt_window_start_ = end;

  QUORA_METRIC_ADD(obs_adapt_epochs_, 1);
  if (adapt_realized_pending_ && window > 0) {
    QUORA_METRIC_RECORD(obs_adapt_realized_gain_,
                        window_avail - adapt_pre_install_avail_);
    logf(log_, now_, buf, "adapt realized avail=%.6f delta=%+.6f",
         window_avail, window_avail - adapt_pre_install_avail_);
    adapt_realized_pending_ = false;
  }

  // The loop's view of "current" is the assignment in effect at the
  // lowest-numbered operational site — the same site that would originate
  // an install, so prediction and installation agree on the baseline.
  net::SiteId origin = 0;
  bool any_up = false;
  for (net::SiteId s = 0; s < topo_->site_count(); ++s) {
    if (live_.is_site_up(s)) {
      origin = s;
      any_up = true;
      break;
    }
  }
  if (any_up) {
    const quorum::QuorumSpec current = qr_.effective(tracker_, origin).spec;
    const adapt::AdaptiveController::Decision d =
        adaptive_->epoch(params_.alpha, current);
    if (d.evaluated) {
      QUORA_METRIC_RECORD(obs_adapt_predicted_gain_, d.predicted_gain);
      logf(log_, now_, buf,
           "adapt epoch avail=%.6f cur=(%u,%u) cand=(%u,%u) gain=%+.6f "
           "streak=%u%s",
           window_avail, current.q_r, current.q_w, d.spec.q_r, d.spec.q_w,
           d.predicted_gain, d.streak, d.feasible ? "" : " infeasible");
    } else {
      logf(log_, now_, buf, "adapt epoch avail=%.6f warming", window_avail);
    }
    if (d.install) {
      if (install_assignment(origin, d.spec)) {
        QUORA_METRIC_ADD(obs_adapt_installs_, 1);
        adapt_pre_install_avail_ = window_avail;
        adapt_realized_pending_ = true;
        logf(log_, now_, buf,
             "adapt install origin=%u qr=(%u,%u) v=%llu predicted=%+.6f",
             origin, d.spec.q_r, d.spec.q_w,
             static_cast<unsigned long long>(qr_.stored(origin).version),
             d.predicted_gain);
      } else {
        QUORA_METRIC_ADD(obs_adapt_refused_, 1);
        logf(log_, now_, buf, "adapt install origin=%u qr=(%u,%u) refused",
             origin, d.spec.q_r, d.spec.q_w);
      }
    }
  } else {
    logf(log_, now_, buf, "adapt epoch skipped: no operational site");
  }
  push(Event{now_ + adaptive_->options().epoch_length, 0, Kind::kAdaptEpoch, 0,
             {}, 0, 0, 0});
}

void Cluster::run_decided_accesses(std::uint64_t count) {
  const std::uint64_t target = decided_ + count;
  while (decided_ < target) {
    Event e = queue_.top();
    queue_.pop();
    now_ = e.time;
    step(e);
  }
}

void Cluster::run_until(double t_end) {
  while (!queue_.empty() && queue_.top().time <= t_end) {
    Event e = queue_.top();
    queue_.pop();
    now_ = e.time;
    step(e);
  }
  now_ = t_end;
}

double Cluster::availability() const {
  if (outcomes_.empty()) return 0.0;
  std::uint64_t granted = 0;
  for (const AccessOutcome& o : outcomes_) granted += o.granted ? 1 : 0;
  return static_cast<double>(granted) / static_cast<double>(outcomes_.size());
}

double Cluster::oracle_availability() const {
  if (outcomes_.empty()) return 0.0;
  std::uint64_t granted = 0;
  for (const AccessOutcome& o : outcomes_) granted += o.oracle_granted ? 1 : 0;
  return static_cast<double>(granted) / static_cast<double>(outcomes_.size());
}

} // namespace quora::msg
