#include "msg/cluster.hpp"

#include <stdexcept>

#include "rng/distributions.hpp"

namespace quora::msg {

Cluster::Cluster(const net::Topology& topo, Params params, std::uint64_t seed)
    : topo_(&topo),
      params_(params),
      live_(topo),
      tracker_(live_),
      gen_(seed) {
  params_.config.validate();
  if (!params_.spec.valid(topo.total_votes())) {
    throw std::invalid_argument("Cluster: invalid quorum assignment");
  }
  if (!(params_.mean_hop_latency > 0.0) || !(params_.phase_timeout > 0.0)) {
    throw std::invalid_argument("Cluster: latency and timeout must be positive");
  }
  if (!(params_.alpha >= 0.0 && params_.alpha <= 1.0)) {
    throw std::invalid_argument("Cluster: alpha outside [0,1]");
  }

  if (params_.lease_timeout <= 0.0) {
    params_.lease_timeout = 2.5 * params_.phase_timeout;
  }
  copies_.assign(topo.site_count(), Copy{});
  leases_.assign(topo.site_count(), Lease{});
  pending_.resize(topo.site_count());
  floods_.resize(topo.site_count());
  fifo_clock_.assign(2 * static_cast<std::size_t>(topo.link_count()), 0.0);

  const double mu_f = params_.config.mu_fail();
  for (net::SiteId s = 0; s < topo.site_count(); ++s) {
    push(Event{now_ + rng::exponential(gen_, mu_f), 0, Kind::kSiteFail, s, {}, 0,
               0, 0});
  }
  for (net::LinkId l = 0; l < topo.link_count(); ++l) {
    push(Event{now_ + rng::exponential(gen_, mu_f), 0, Kind::kLinkFail, l, {}, 0,
               0, 0});
  }
  const double interarrival =
      params_.config.mu_access / static_cast<double>(topo.site_count());
  push(Event{now_ + rng::exponential(gen_, interarrival), 0, Kind::kAccess, 0, {},
             0, 0, 0});
}

void Cluster::push(Event e) {
  e.seq = next_seq_++;
  queue_.push(e);
}

void Cluster::send(net::SiteId from, net::LinkId link, const Message& m) {
  const net::Link& edge = topo_->link(link);
  const net::SiteId to = edge.a == from ? edge.b : edge.a;
  const std::size_t dir =
      2 * static_cast<std::size_t>(link) + (edge.a == from ? 0 : 1);
  const double arrival = std::max(fifo_clock_[dir],
                                  now_ + rng::exponential(gen_, params_.mean_hop_latency));
  fifo_clock_[dir] = arrival;  // FIFO per direction
  ++messages_sent_;

  Event e;
  e.time = arrival;
  e.kind = Kind::kDelivery;
  e.index = link;
  e.target = to;
  e.message = m;
  e.message.sender = from;
  push(e);
}

void Cluster::flood(net::SiteId from, std::uint64_t flood_id, const Message& m,
                    net::LinkId except_link, bool has_except) {
  (void)flood_id;
  for (const net::Topology::Edge& edge : topo_->neighbors(from)) {
    if (has_except && edge.link == except_link) continue;
    send(from, edge.link, m);
  }
}

void Cluster::relay_toward_coordinator(net::SiteId at, const Message& m) {
  const int phase = (m.kind == Message::Kind::kVoteReply ||
                     m.kind == Message::Kind::kVoteDeny)
                        ? 1
                        : 2;
  const auto it = floods_[at].find(flood_key(m.request, phase));
  if (it == floods_[at].end() || !it->second.has_parent) return;  // path lost
  send(at, it->second.parent_link, m);
}

void Cluster::handle_access(net::SiteId origin) {
  const std::uint64_t request = next_request_++;
  const bool is_read = rng::bernoulli(gen_, params_.alpha);

  // Oracle: the paper's instantaneous decision from global state.
  const net::Vote oracle_votes = tracker_.component_votes(origin);
  const bool oracle = is_read ? params_.spec.allows_read(oracle_votes)
                              : params_.spec.allows_write(oracle_votes);

  if (!live_.is_site_up(origin)) {
    AccessOutcome out;
    out.submit_time = now_;
    out.decide_time = now_;
    out.origin = origin;
    out.is_read = is_read;
    out.granted = false;
    out.oracle_granted = oracle;
    outcomes_.push_back(out);
    ++decided_;
    return;
  }

  Pending p;
  p.is_read = is_read;
  p.submit_time = now_;
  p.oracle_granted = oracle;
  p.votes = topo_->votes(origin);
  p.repliers.insert(origin);
  p.best_version = copies_[origin].version;
  p.best_value = copies_[origin].value;
  p.write_value = request;  // written payload: the request id (test-visible)
  pending_[origin][request] = p;
  floods_[origin][flood_key(request, 1)] = FloodState{0, false};

  if (!is_read) {
    Lease& lease = leases_[origin];
    if (lease.held(now_)) {
      // Our own vote is leased to another in-flight write: this write
      // cannot proceed from here right now.
      decide(origin, request, false);
      return;
    }
    lease = Lease{request, now_ + params_.lease_timeout};
  }

  Message m;
  m.kind = Message::Kind::kVoteRequest;
  m.is_write = !is_read;
  m.request = request;
  m.coordinator = origin;
  flood(origin, flood_key(request, 1), m, 0, false);

  Event timer;
  timer.time = now_ + params_.phase_timeout;
  timer.kind = Kind::kTimer;
  timer.target = origin;
  timer.request = request;
  timer.phase = 1;
  push(timer);

  // Single-site quorums decide immediately.
  Pending& live_p = pending_[origin][request];
  if (is_read && params_.spec.allows_read(live_p.votes)) {
    decide(origin, request, true);
  } else if (!is_read && params_.spec.allows_write(live_p.votes)) {
    // Degenerate write quorum: apply locally, done.
    live_p.phase = 2;
    live_p.best_version = live_p.best_version + 1;
    copies_[origin] = Copy{live_p.write_value, live_p.best_version};
    if (leases_[origin].request == request) leases_[origin] = Lease{};
    live_p.acked = topo_->votes(origin);
    live_p.ackers.insert(origin);
    decide(origin, request, true);
  }
}

void Cluster::decide(net::SiteId coordinator, std::uint64_t request, bool granted) {
  const auto it = pending_[coordinator].find(request);
  if (it == pending_[coordinator].end()) return;
  const Pending& p = it->second;

  AccessOutcome out;
  out.submit_time = p.submit_time;
  out.decide_time = now_;
  out.origin = coordinator;
  out.is_read = p.is_read;
  out.granted = granted;
  out.oracle_granted = p.oracle_granted;
  out.version = p.best_version;
  out.value = p.is_read ? p.best_value : p.write_value;
  outcomes_.push_back(out);
  if (!p.is_read && granted) {
    commits_.push_back(CommitRecord{p.best_version, now_});
  }
  const bool abort_write = !p.is_read && !granted;
  pending_[coordinator].erase(it);
  ++decided_;

  if (abort_write && live_.is_site_up(coordinator)) {
    // Release leased votes proactively; lease expiry covers the sites an
    // abort cannot reach.
    if (leases_[coordinator].request == request) leases_[coordinator] = Lease{};
    Message abort;
    abort.kind = Message::Kind::kAbort;
    abort.request = request;
    abort.coordinator = coordinator;
    floods_[coordinator][flood_key(request, 3)] = FloodState{0, false};
    flood(coordinator, flood_key(request, 3), abort, 0, false);
  }
}

void Cluster::handle_delivery(const Event& e) {
  // In-flight messages die with the link or the destination.
  if (!live_.is_link_up(e.index) || !live_.is_site_up(e.target)) return;
  const Message& m = e.message;
  const net::SiteId here = e.target;

  switch (m.kind) {
    case Message::Kind::kVoteRequest: {
      const std::uint64_t fk = flood_key(m.request, 1);
      if (floods_[here].contains(fk)) return;  // already participated
      floods_[here][fk] = FloodState{e.index, true};

      bool vote_granted = true;
      if (m.is_write) {
        Lease& lease = leases_[here];
        if (lease.held(now_) && lease.request != m.request) {
          vote_granted = false;  // vote already leased to another write
        } else {
          lease = Lease{m.request, now_ + params_.lease_timeout};
        }
      }
      Message reply;
      reply.kind = vote_granted ? Message::Kind::kVoteReply
                                : Message::Kind::kVoteDeny;
      reply.request = m.request;
      reply.coordinator = m.coordinator;
      reply.replier = here;
      reply.votes = topo_->votes(here);
      reply.version = copies_[here].version;
      reply.value = copies_[here].value;
      send(here, e.index, reply);
      flood(here, fk, m, e.index, true);  // the flood continues regardless
      return;
    }
    case Message::Kind::kCommitRequest: {
      const std::uint64_t fk = flood_key(m.request, 2);
      if (floods_[here].contains(fk)) return;
      floods_[here][fk] = FloodState{e.index, true};

      if (m.version > copies_[here].version) {
        copies_[here] = Copy{m.value, m.version};
      }
      if (leases_[here].request == m.request) leases_[here] = Lease{};
      Message ack;
      ack.kind = Message::Kind::kCommitAck;
      ack.request = m.request;
      ack.coordinator = m.coordinator;
      ack.replier = here;
      ack.votes = topo_->votes(here);
      ack.version = m.version;
      send(here, e.index, ack);
      flood(here, fk, m, e.index, true);
      return;
    }
    case Message::Kind::kVoteDeny: {
      if (here != m.coordinator) {
        relay_toward_coordinator(here, m);
        return;
      }
      const auto it = pending_[here].find(m.request);
      if (it == pending_[here].end() || it->second.phase != 1) return;
      Pending& p = it->second;
      if (!p.repliers.insert(m.replier).second) return;
      p.denied += m.votes;
      // Fast abort: a write quorum is no longer reachable.
      if (!p.is_read &&
          topo_->total_votes() - p.denied < params_.spec.q_w) {
        decide(here, m.request, false);
      }
      return;
    }
    case Message::Kind::kVoteReply: {
      if (here != m.coordinator) {
        relay_toward_coordinator(here, m);
        return;
      }
      const auto it = pending_[here].find(m.request);
      if (it == pending_[here].end() || it->second.phase != 1) return;
      Pending& p = it->second;
      if (!p.repliers.insert(m.replier).second) return;
      p.votes += m.votes;
      if (m.version > p.best_version) {
        p.best_version = m.version;
        p.best_value = m.value;
      }
      if (p.is_read) {
        if (params_.spec.allows_read(p.votes)) decide(here, m.request, true);
        return;
      }
      if (params_.spec.allows_write(p.votes)) {
        // Phase 2: install the new version everywhere reachable.
        p.phase = 2;
        p.best_version = p.best_version + 1;
        copies_[here] = Copy{p.write_value, p.best_version};
        if (leases_[here].request == m.request) leases_[here] = Lease{};
        p.acked = topo_->votes(here);
        p.ackers.insert(here);
        floods_[here][flood_key(m.request, 2)] = FloodState{0, false};

        Message commit;
        commit.kind = Message::Kind::kCommitRequest;
        commit.request = m.request;
        commit.coordinator = here;
        commit.version = p.best_version;
        commit.value = p.write_value;
        flood(here, flood_key(m.request, 2), commit, 0, false);

        Event timer;
        timer.time = now_ + params_.phase_timeout;
        timer.kind = Kind::kTimer;
        timer.target = here;
        timer.request = m.request;
        timer.phase = 2;
        push(timer);

        if (params_.spec.allows_write(p.acked)) decide(here, m.request, true);
      }
      return;
    }
    case Message::Kind::kAbort: {
      const std::uint64_t fk = flood_key(m.request, 3);
      if (floods_[here].contains(fk)) return;
      floods_[here][fk] = FloodState{e.index, true};
      if (leases_[here].request == m.request) leases_[here] = Lease{};
      flood(here, fk, m, e.index, true);
      return;
    }
    case Message::Kind::kCommitAck: {
      if (here != m.coordinator) {
        relay_toward_coordinator(here, m);
        return;
      }
      const auto it = pending_[here].find(m.request);
      if (it == pending_[here].end() || it->second.phase != 2) return;
      Pending& p = it->second;
      if (!p.ackers.insert(m.replier).second) return;
      p.acked += m.votes;
      if (params_.spec.allows_write(p.acked)) decide(here, m.request, true);
      return;
    }
  }
}

void Cluster::handle_timer(const Event& e) {
  const auto it = pending_[e.target].find(e.request);
  if (it == pending_[e.target].end()) return;    // already decided
  if (it->second.phase != e.phase) return;       // superseded by phase 2
  decide(e.target, e.request, false);
}

void Cluster::on_site_failed(net::SiteId s) {
  // Fail-stop: volatile coordination state is lost; every in-progress
  // coordination this site led resolves as denied right now.
  while (!pending_[s].empty()) {
    decide(s, pending_[s].begin()->first, false);
  }
  floods_[s].clear();
  leases_[s] = Lease{};  // volatile
}

void Cluster::run_decided_accesses(std::uint64_t count) {
  const std::uint64_t target = decided_ + count;
  const double mu_f = params_.config.mu_fail();
  const double mu_r = params_.config.mu_repair();
  const double interarrival =
      params_.config.mu_access / static_cast<double>(topo_->site_count());

  while (decided_ < target) {
    Event e = queue_.top();
    queue_.pop();
    now_ = e.time;
    switch (e.kind) {
      case Kind::kSiteFail:
        live_.set_site_up(e.index, false);
        on_site_failed(e.index);
        push(Event{now_ + rng::exponential(gen_, mu_r), 0, Kind::kSiteRecover,
                   e.index, {}, 0, 0, 0});
        break;
      case Kind::kSiteRecover:
        live_.set_site_up(e.index, true);
        push(Event{now_ + rng::exponential(gen_, mu_f), 0, Kind::kSiteFail,
                   e.index, {}, 0, 0, 0});
        break;
      case Kind::kLinkFail:
        live_.set_link_up(e.index, false);
        push(Event{now_ + rng::exponential(gen_, mu_r), 0, Kind::kLinkRecover,
                   e.index, {}, 0, 0, 0});
        break;
      case Kind::kLinkRecover:
        live_.set_link_up(e.index, true);
        push(Event{now_ + rng::exponential(gen_, mu_f), 0, Kind::kLinkFail,
                   e.index, {}, 0, 0, 0});
        break;
      case Kind::kAccess: {
        const auto origin = static_cast<net::SiteId>(
            rng::uniform_index(gen_, topo_->site_count()));
        handle_access(origin);
        push(Event{now_ + rng::exponential(gen_, interarrival), 0, Kind::kAccess,
                   0, {}, 0, 0, 0});
        break;
      }
      case Kind::kDelivery:
        handle_delivery(e);
        break;
      case Kind::kTimer:
        handle_timer(e);
        break;
    }
  }
}

double Cluster::availability() const {
  if (outcomes_.empty()) return 0.0;
  std::uint64_t granted = 0;
  for (const AccessOutcome& o : outcomes_) granted += o.granted ? 1 : 0;
  return static_cast<double>(granted) / static_cast<double>(outcomes_.size());
}

double Cluster::oracle_availability() const {
  if (outcomes_.empty()) return 0.0;
  std::uint64_t granted = 0;
  for (const AccessOutcome& o : outcomes_) granted += o.oracle_granted ? 1 : 0;
  return static_cast<double>(granted) / static_cast<double>(outcomes_.size());
}

} // namespace quora::msg
