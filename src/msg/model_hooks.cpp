#include <algorithm>
#include <limits>
#include <utility>

#include "core/contracts.hpp"
#include "msg/cluster.hpp"

// Model-checker hooks for msg::Cluster (Params::model_mode). The explorer
// (src/model) owns the schedule: it reads the enabled transitions, fires
// one by sequence number, and snapshots the cluster by value. Everything
// here is off the simulation hot path — quora_bench never sets model_mode.

namespace quora::msg {
namespace {

/// FNV-1a over the canonical word stream, byte by byte.
std::uint64_t fnv1a(const std::vector<std::uint64_t>& words, std::uint64_t h) {
  constexpr std::uint64_t kPrime = 1099511628211ull;
  for (const std::uint64_t w : words) {
    for (int b = 0; b < 8; ++b) {
      h ^= (w >> (8 * b)) & 0xFFull;
      h *= kPrime;
    }
  }
  return h;
}

/// Second, structurally different mix (splitmix64 chaining) so the two
/// fingerprint halves do not collide together.
std::uint64_t splitmix_chain(const std::vector<std::uint64_t>& words,
                             std::uint64_t h) {
  for (const std::uint64_t w : words) {
    std::uint64_t z = w + h + 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    h = (h * 31) ^ (z ^ (z >> 31));
  }
  return h;
}

} // namespace

std::vector<Cluster::ModelEvent> Cluster::model_enabled_events() const {
  QUORA_PRECONDITION(params_.model_mode,
                     "model_enabled_events needs Params::model_mode");
  // Per directed link, find the earliest pending delivery by (time, seq):
  // links are FIFO per direction, so only that head is enabled — a later
  // delivery on the same direction cannot overtake it under any timing.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<std::pair<double, std::uint64_t>> head(
      dir_blocked_.size(), {kInf, ~std::uint64_t{0}});
  const auto dir_of = [this](const Event& e) {
    return 2 * static_cast<std::size_t>(e.index) +
           (topo_->link(e.index).b == e.target ? 0 : 1);
  };
  for (const Event& e : model_queue_) {
    if (e.kind != Kind::kDelivery) continue;
    const std::size_t dir = dir_of(e);
    if (e.time < head[dir].first ||
        (e.time == head[dir].first && e.seq < head[dir].second)) {
      head[dir] = {e.time, e.seq};
    }
  }

  std::vector<ModelEvent> out;
  out.reserve(model_queue_.size());
  for (const Event& e : model_queue_) {
    ModelEvent me;
    me.seq = e.seq;
    me.target = e.target;
    me.index = e.index;
    me.request = e.request;
    me.phase = e.phase;
    switch (e.kind) {
      case Kind::kDelivery:
        if (head[dir_of(e)].second != e.seq) continue;  // behind the FIFO head
        me.kind = ModelEventKind::kDelivery;
        me.message = e.message;
        break;
      case Kind::kTimer:
        me.kind = ModelEventKind::kTimer;
        break;
      case Kind::kRetry:
        me.kind = ModelEventKind::kRetry;
        break;
      default:
        // Nothing else is ever scheduled in model mode (no Poisson events,
        // no injector timeline) — but enumerate defensively.
        me.kind = ModelEventKind::kOther;
        break;
    }
    out.push_back(me);
  }
  return out;
}

void Cluster::model_purge_dead_timers() {
  // handle_timer ignores a timer whose request is decided or whose phase
  // was superseded, and with max_retries == 0 (model mode) phases only
  // advance — so such an event can never do anything again. Dropping it
  // here merges every "fire the dead timer now vs. later" pair of states.
  model_queue_.erase(
      std::remove_if(model_queue_.begin(), model_queue_.end(),
                     [this](const Event& e) {
                       if (e.kind != Kind::kTimer && e.kind != Kind::kRetry) {
                         return false;
                       }
                       const auto it = pending_[e.target].find(e.request);
                       if (it == pending_[e.target].end()) return true;
                       return e.kind == Kind::kTimer &&
                              it->second.phase != e.phase;
                     }),
      model_queue_.end());
}

bool Cluster::model_step_event(std::uint64_t seq) {
  QUORA_PRECONDITION(params_.model_mode,
                     "model_step_event needs Params::model_mode");
  for (std::size_t i = 0; i < model_queue_.size(); ++i) {
    if (model_queue_[i].seq != seq) continue;
    const Event e = model_queue_[i];
    model_queue_.erase(model_queue_.begin() +
                       static_cast<std::ptrdiff_t>(i));
    // Logical clock: one tick per transition. Submission and decision
    // timestamps then order by firing sequence, which is exactly the
    // linearization `check_safety`'s real-time comparisons audit.
    now_ += 1.0;
    step(e);
    model_purge_dead_timers();
    return true;
  }
  return false;
}

void Cluster::model_submit_access(net::SiteId origin, bool is_read) {
  QUORA_PRECONDITION(params_.model_mode,
                     "model_submit_access needs Params::model_mode");
  now_ += 1.0;
  submit_access(origin, is_read);
  model_purge_dead_timers();
}

void Cluster::model_apply_fault(const fault::Action& action) {
  QUORA_PRECONDITION(params_.model_mode,
                     "model_apply_fault needs Params::model_mode");
  QUORA_PRECONDITION(action.kind != fault::Action::Kind::kArmCrashOnCommit,
                     "model mode has no injector to arm (audit rejects this)");
  now_ += 1.0;
  apply_fault(action);
  model_purge_dead_timers();
}

void Cluster::model_serialize(std::vector<std::uint64_t>& out) const {
  QUORA_PRECONDITION(params_.model_mode,
                     "model_serialize needs Params::model_mode");
  const auto u = [&out](std::uint64_t v) { out.push_back(v); };

  // Newest record decided at or before `t` — the floor a pending access
  // will eventually be audited against. Storing the floor instead of the
  // raw submit timestamp keeps the encoding time-free.
  const auto floor_of = [](const auto& records, double t) {
    std::uint64_t f = 0;
    for (const auto& r : records) {
      if (r.decide_time <= t && r.version > f) f = r.version;
    }
    return f;
  };

  // Liveness + gray cuts.
  for (net::SiteId s = 0; s < topo_->site_count(); ++s) {
    u(live_.is_site_up(s) ? 1 : 0);
  }
  for (net::LinkId l = 0; l < topo_->link_count(); ++l) {
    u(live_.is_link_up(l) ? 1 : 0);
  }
  for (const char b : dir_blocked_) u(static_cast<std::uint64_t>(b));

  // Per-site durable + volatile protocol state. std::map iteration is in
  // key order, so the encoding is canonical by construction.
  for (net::SiteId s = 0; s < topo_->site_count(); ++s) {
    u(copies_[s].value);
    u(copies_[s].version);
    u(leases_[s].request);  // expiry is effectively infinite in model mode
    const core::QuorumReassignment::Assignment& a = qr_.stored(s);
    u(a.version);
    u(a.spec.q_r);
    u(a.spec.q_w);

    u(pending_[s].size());
    for (const auto& [req, p] : pending_[s]) {
      u(req);
      u(p.is_read ? 1 : 0);
      u(static_cast<std::uint64_t>(p.phase));
      u(p.attempt);
      u(p.spec.q_r);
      u(p.spec.q_w);
      u(p.qr_version);
      u(p.votes);
      u(p.denied);
      u(p.acked);
      u(p.repliers.size());
      for (const net::SiteId r : p.repliers) u(r);
      u(p.ackers.size());
      for (const net::SiteId r : p.ackers) u(r);
      u(p.best_version);
      u(p.best_value);
      u(p.write_value);
      u(p.oracle_granted ? 1 : 0);
      u(floor_of(commits_, p.submit_time));
      u(floor_of(installs_, p.submit_time));
    }

    u(floods_[s].size());
    for (const auto& [key, fs] : floods_[s]) {
      u(key);
      u(fs.has_parent ? 1 : 0);
      u(fs.has_parent ? fs.parent_link : 0);
    }
  }
  u(next_request_);

  // Safety-history digest: the slice of the past that constrains *future*
  // verdicts. Committed versions as a sorted multiset (a future commit
  // duplicating any of them violates uniqueness) and the newest install
  // (the stale-assignment floor of every future access).
  std::vector<std::uint64_t> versions;
  versions.reserve(commits_.size());
  for (const CommitRecord& c : commits_) versions.push_back(c.version);
  std::sort(versions.begin(), versions.end());
  u(versions.size());
  for (const std::uint64_t v : versions) u(v);
  std::uint64_t newest_install = 0;
  for (const InstallRecord& r : installs_) {
    newest_install = std::max(newest_install, r.version);
  }
  u(newest_install);

  // In-flight events as a canonical multiset. Deliveries carry their
  // directed link and FIFO rank (position in that direction's pending
  // order) instead of absolute times; two states whose queues differ only
  // in timestamps — but agree on per-direction order — encode equal,
  // which is the whole point of the untimed abstraction.
  const auto dir_of = [this](const Event& e) {
    return 2 * static_cast<std::size_t>(e.index) +
           (topo_->link(e.index).b == e.target ? 0 : 1);
  };
  const auto fifo_rank = [&](const Event& e) {
    std::uint64_t rank = 0;
    const std::size_t dir = dir_of(e);
    for (const Event& o : model_queue_) {
      if (o.kind != Kind::kDelivery || dir_of(o) != dir) continue;
      if (o.time < e.time || (o.time == e.time && o.seq < e.seq)) ++rank;
    }
    return rank;
  };
  std::vector<std::vector<std::uint64_t>> encodings;
  encodings.reserve(model_queue_.size());
  for (const Event& e : model_queue_) {
    std::vector<std::uint64_t> enc;
    switch (e.kind) {
      case Kind::kDelivery: {
        const Message& m = e.message;
        enc = {1,
               dir_of(e),
               fifo_rank(e),
               static_cast<std::uint64_t>(m.kind),
               m.is_write ? 1u : 0u,
               m.request,
               m.coordinator,
               m.sender,
               m.replier,
               m.votes,
               m.version,
               m.value,
               m.qr_version,
               m.qr_r,
               m.qr_w};
        break;
      }
      case Kind::kTimer:
        enc = {2, e.target, e.request, static_cast<std::uint64_t>(e.phase)};
        break;
      case Kind::kRetry:
        enc = {3, e.target, e.request};
        break;
      default:
        enc = {4, static_cast<std::uint64_t>(e.kind), e.index, e.target,
               e.request};
        break;
    }
    encodings.push_back(std::move(enc));
  }
  std::sort(encodings.begin(), encodings.end());
  u(encodings.size());
  for (const std::vector<std::uint64_t>& enc : encodings) {
    u(enc.size());
    for (const std::uint64_t w : enc) u(w);
  }
}

std::array<std::uint64_t, 2> Cluster::model_fingerprint() const {
  std::vector<std::uint64_t> words;
  words.reserve(256);
  model_serialize(words);
  return {fnv1a(words, 1469598103934665603ull),
          splitmix_chain(words, 0x9E3779B97F4A7C15ull)};
}

} // namespace quora::msg
