#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/obs.hpp"

namespace quora::obs {

class Registry;

/// Handle to one counter slot. Resolved once at registration; the hot
/// path is a bounds check plus a relaxed atomic add into a thread-local
/// buffer (or nothing at all for a default-constructed handle).
class Counter {
public:
  Counter() = default;
  void add(std::uint64_t n = 1) const;
  bool valid() const noexcept { return registry_ != nullptr; }

private:
  friend class Registry;
  Counter(Registry* r, std::uint32_t slot) : registry_(r), slot_(slot) {}
  Registry* registry_ = nullptr;
  std::uint32_t slot_ = 0;
};

/// Handle to one gauge: a last-write-wins value stored centrally with
/// relaxed atomics (gauges are rare writes, so no thread-local buffering).
class Gauge {
public:
  Gauge() = default;
  void set(std::int64_t value) const;
  bool valid() const noexcept { return registry_ != nullptr; }

private:
  friend class Registry;
  Gauge(Registry* r, std::uint32_t index) : registry_(r), index_(index) {}
  Registry* registry_ = nullptr;
  std::uint32_t index_ = 0;
};

/// Handle to a fixed-bucket histogram: `bounds` are inclusive upper
/// bounds, with one implicit overflow bucket past the last bound. A
/// record is one bucket search (branch-free linear scan over a handful of
/// doubles) plus the same relaxed thread-local add a counter pays.
class Histogram {
public:
  Histogram() = default;
  void record(double value) const;
  bool valid() const noexcept { return registry_ != nullptr; }

private:
  friend class Registry;
  Histogram(Registry* r, std::uint32_t def) : registry_(r), def_(def) {}
  Registry* registry_ = nullptr;
  std::uint32_t def_ = 0;
};

/// Metrics registry: named counters, gauges, and fixed-bucket histograms.
///
/// Concurrency design ("lock-free enough"): every recording thread gets
/// its own buffer of atomic slots, created on first use and owned by the
/// registry; `add`/`record` touch only that buffer with relaxed atomics,
/// so there is no cross-thread contention on the hot path. `flush()`
/// drains every thread's buffer into the central totals under the
/// registry mutex (relaxed exchange per slot — the mutex orders the merge
/// itself, the atomics make the concurrent adds race-free). Registration
/// is idempotent: re-registering a name of the same kind returns the same
/// handle; re-registering with a different kind (or different histogram
/// bounds) throws std::invalid_argument.
///
/// A handle registered *after* another thread already created its buffer
/// falls back to adding directly to the central totals under the mutex —
/// correct, just slower — so register everything up front.
class Registry {
public:
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  Histogram histogram(std::string_view name, std::vector<double> bounds);

  /// Drains every thread buffer into the central totals.
  void flush();

  struct HistogramValue {
    std::string name;
    std::vector<double> bounds;          // inclusive upper bounds
    std::vector<std::uint64_t> counts;   // bounds.size() + 1 (overflow)
    std::uint64_t total = 0;
  };
  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;  // sorted
    std::vector<std::pair<std::string, std::int64_t>> gauges;     // sorted
    std::vector<HistogramValue> histograms;                       // sorted
  };
  /// flush() + a consistent, name-sorted view of everything.
  Snapshot snapshot();

  /// Deterministic text dump (sorted by name), used by --metrics flags.
  void write_text(std::ostream& out);

private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  enum class Kind : std::uint8_t { kCounter, kHistogram };
  struct Def {
    Kind kind = Kind::kCounter;
    std::string name;
    std::uint32_t slot = 0;           // first slot in the slot array
    std::vector<double> bounds;       // histograms only
    std::uint32_t slot_count() const {
      return kind == Kind::kCounter
                 ? 1
                 : static_cast<std::uint32_t>(bounds.size() + 1);
    }
  };
  struct ThreadBuf {
    std::unique_ptr<std::atomic<std::uint64_t>[]> slots;
    std::uint32_t size = 0;
  };

  void add_slot(std::uint32_t slot, std::uint64_t n);
  ThreadBuf* local_buf();
  void flush_locked();

  const std::uint64_t generation_;  // distinguishes recycled addresses in TLS
  std::mutex mu_;
  std::vector<Def> defs_;
  std::vector<std::pair<std::string, std::uint32_t>> gauge_names_;
  std::uint32_t slot_count_ = 0;
  std::vector<std::uint64_t> totals_;                   // merged values
  std::vector<std::unique_ptr<ThreadBuf>> buffers_;     // all threads
  std::vector<std::unique_ptr<std::atomic<std::int64_t>>> gauges_;
};

/// Writes `registry.write_text` to `path`; throws std::runtime_error on
/// I/O failure.
void write_metrics_file(Registry& registry, const std::string& path);

// --- hot-path macros -------------------------------------------------
//
// Instrumentation call sites go through these so a QUORA_OBS=OFF build
// contains no trace of them. `handle` is a Counter/Histogram/Gauge; all
// three tolerate being default-constructed (no registry attached).
#if defined(QUORA_OBS_ENABLED)
#define QUORA_METRIC_ADD(handle, n) (handle).add(n)
#define QUORA_METRIC_RECORD(handle, v) (handle).record(v)
#define QUORA_METRIC_SET(handle, v) (handle).set(v)
#else
#define QUORA_METRIC_ADD(handle, n) ((void)0)
#define QUORA_METRIC_RECORD(handle, v) ((void)0)
#define QUORA_METRIC_SET(handle, v) ((void)0)
#endif

} // namespace quora::obs
