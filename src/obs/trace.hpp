#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/obs.hpp"

namespace quora::obs {

/// Event taxonomy of the structured trace (docs/OBSERVABILITY.md).
/// Payload field meaning varies per kind; the table below is normative.
///
///   kind             site          request        a              x
///   ---------------- ------------- -------------- -------------- -----------
///   access-submit    origin        request id     0              1 if read
///   access-grant     coordinator   request id     version        attempts
///   access-deny      coordinator   request id     version        DenyReason
///   round-start      coordinator   request id     prev id or 0   attempt
///   round-finish     coordinator   request id     0              phase ended
///
/// Retries re-coordinate under a fresh request id; round-start's `a`
/// carries the superseded attempt's id (0 on first attempts) so readers
/// can chain an access's whole retry lineage back to its submit event.
///   qr-install       origin        new version    q_r<<16|q_w    0
///   qr-adopt         adopter       new version    q_r<<16|q_w    0
///   fault-inject     site/link     action index   0              FaultKind
///   fault-heal       site/link     action index   0              FaultKind
///   tracker-rebuild  0             network ver    sites visited  1 if full
enum class EventKind : std::uint8_t {
  kAccessSubmit,
  kAccessGrant,
  kAccessDeny,
  kRoundStart,
  kRoundFinish,
  kQrInstall,
  kQrAdopt,
  kFaultInject,
  kFaultHeal,
  kTrackerRebuild,
};
inline constexpr std::size_t kEventKindCount = 10;

/// Stable kebab-case slug, mirrored by tools/quora_trace's parser.
const char* event_kind_name(EventKind kind);

/// `x` payload of fault-inject / fault-heal events: what failed or healed.
inline constexpr std::uint8_t kFaultSite = 0;
inline constexpr std::uint8_t kFaultLink = 1;
inline constexpr std::uint8_t kFaultPartition = 2;
inline constexpr std::uint8_t kFaultHealAll = 3;

/// One trace record. Fixed-size POD so the ring is a flat array.
struct TraceEvent {
  double time = 0.0;
  std::uint64_t request = 0;
  std::uint64_t a = 0;
  std::uint32_t site = 0;
  EventKind kind = EventKind::kAccessSubmit;
  std::uint8_t x = 0;
};

/// Bounded ring of typed events with sim-time timestamps.
///
/// Overflow policy: the ring overwrites the *oldest* event and counts the
/// overwrite in `dropped()` — a trace that survived a long soak keeps the
/// most recent window, which is where the interesting failure usually is.
///
/// Timestamps come from an external clock (`set_clock` with a pointer to
/// the owner's simulated-time variable), so one recorder can be shared by
/// a simulator and the trackers/protocols hanging off it. Not thread-safe:
/// one recorder per simulation, like the simulations themselves.
class TraceRecorder {
public:
  explicit TraceRecorder(std::size_t capacity = 1 << 16);

  /// `now` must outlive the recorder (or be reset); nullptr reverts to
  /// explicit `record_at` times only.
  void set_clock(const double* now) noexcept { clock_ = now; }

  void record(EventKind kind, std::uint32_t site, std::uint64_t request,
              std::uint64_t a = 0, std::uint8_t x = 0) {
    record_at(clock_ != nullptr ? *clock_ : 0.0, kind, site, request, a, x);
  }
  void record_at(double t, EventKind kind, std::uint32_t site,
                 std::uint64_t request, std::uint64_t a = 0, std::uint8_t x = 0);

  std::size_t capacity() const noexcept { return ring_.size(); }
  /// Events currently held (<= capacity).
  std::size_t size() const noexcept { return held_; }
  /// Events ever recorded, including overwritten ones.
  std::uint64_t recorded() const noexcept { return recorded_; }
  /// Events lost to ring overflow.
  std::uint64_t dropped() const noexcept { return recorded_ - held_; }

  /// i-th oldest retained event, i in [0, size()).
  const TraceEvent& at(std::size_t i) const;

  void clear();

  /// Chrome trace_event JSON (open in ui.perfetto.dev or
  /// chrome://tracing). Round start/finish become async "b"/"e" pairs
  /// keyed by request id; everything else is an instant event. Timestamps
  /// are exported in microseconds of simulated time.
  void write_chrome_json(std::ostream& out) const;

  /// Compact text transcript, one event per line:
  ///   <time %.9f> <kind> <site> <request> <a> <x>
  /// This is what tools/quora_trace summarizes.
  void write_text(std::ostream& out) const;

private:
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;   // next write position
  std::size_t held_ = 0;
  std::uint64_t recorded_ = 0;
  const double* clock_ = nullptr;
};

/// Writes the trace to `path`: Chrome JSON when the path ends in ".json",
/// the compact text transcript otherwise. Throws std::runtime_error on
/// I/O failure.
void write_trace_file(const TraceRecorder& trace, const std::string& path);

// --- hot-path macro --------------------------------------------------
//
// `rec` is a TraceRecorder*; the whole call site vanishes in a
// QUORA_OBS=OFF build.
#if defined(QUORA_OBS_ENABLED)
#define QUORA_TRACE(rec, ...) \
  do {                        \
    if ((rec) != nullptr) (rec)->record(__VA_ARGS__); \
  } while (0)
#else
#define QUORA_TRACE(rec, ...) ((void)0)
#endif

} // namespace quora::obs
