#pragma once

/// Compile-time gate for the observability layer.
///
/// The build system defines QUORA_OBS_ENABLED=1 when the layer is
/// compiled in (cmake -DQUORA_OBS=ON, the default). The obs *library* —
/// Registry, TraceRecorder, the exporters — is always built so tools can
/// link it in either mode; what the gate removes is every instrumentation
/// call site in the hot paths (the QUORA_TRACE / QUORA_METRIC macros in
/// trace.hpp and metrics.hpp expand to nothing), so a QUORA_OBS=OFF build
/// pays literally zero instructions for observability.

namespace quora::obs {

#if defined(QUORA_OBS_ENABLED)
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

} // namespace quora::obs

/// Wraps statements that should only exist in instrumented builds
/// (e.g. stashing a phase-start timestamp that only a histogram reads).
#if defined(QUORA_OBS_ENABLED)
#define QUORA_OBS_ONLY(...) __VA_ARGS__
#else
#define QUORA_OBS_ONLY(...)
#endif
