#include "obs/trace.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <stdexcept>

namespace quora::obs {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kAccessSubmit: return "access-submit";
    case EventKind::kAccessGrant: return "access-grant";
    case EventKind::kAccessDeny: return "access-deny";
    case EventKind::kRoundStart: return "round-start";
    case EventKind::kRoundFinish: return "round-finish";
    case EventKind::kQrInstall: return "qr-install";
    case EventKind::kQrAdopt: return "qr-adopt";
    case EventKind::kFaultInject: return "fault-inject";
    case EventKind::kFaultHeal: return "fault-heal";
    case EventKind::kTrackerRebuild: return "tracker-rebuild";
  }
  return "unknown";
}

TraceRecorder::TraceRecorder(std::size_t capacity)
    : ring_(capacity == 0 ? 1 : capacity) {}

void TraceRecorder::record_at(double t, EventKind kind, std::uint32_t site,
                              std::uint64_t request, std::uint64_t a,
                              std::uint8_t x) {
  TraceEvent& e = ring_[head_];
  e.time = t;
  e.kind = kind;
  e.site = site;
  e.request = request;
  e.a = a;
  e.x = x;
  head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
  if (held_ < ring_.size()) ++held_;
  ++recorded_;
}

const TraceEvent& TraceRecorder::at(std::size_t i) const {
  // Oldest event sits at head_ when the ring has wrapped, at 0 otherwise.
  const std::size_t oldest = held_ == ring_.size() ? head_ : 0;
  std::size_t idx = oldest + i;
  if (idx >= ring_.size()) idx -= ring_.size();
  return ring_[idx];
}

void TraceRecorder::clear() {
  head_ = 0;
  held_ = 0;
  recorded_ = 0;
}

void TraceRecorder::write_text(std::ostream& out) const {
  char buf[160];
  for (std::size_t i = 0; i < held_; ++i) {
    const TraceEvent& e = at(i);
    std::snprintf(buf, sizeof(buf), "%.9f %s %u %llu %llu %u\n", e.time,
                  event_kind_name(e.kind), e.site,
                  static_cast<unsigned long long>(e.request),
                  static_cast<unsigned long long>(e.a),
                  static_cast<unsigned>(e.x));
    out << buf;
  }
}

void TraceRecorder::write_chrome_json(std::ostream& out) const {
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  char buf[256];
  for (std::size_t i = 0; i < held_; ++i) {
    const TraceEvent& e = at(i);
    const double ts_us = e.time * 1e6;  // simulated seconds -> microseconds
    const char* name = event_kind_name(e.kind);
    out << (i == 0 ? "\n" : ",\n");
    if (e.kind == EventKind::kRoundStart || e.kind == EventKind::kRoundFinish) {
      // Async begin/end keyed by request id: rounds at one coordinator
      // may overlap, so thread-scoped B/E nesting would be invalid.
      std::snprintf(buf, sizeof(buf),
                    "  {\"name\": \"round\", \"cat\": \"quorum\", \"ph\": "
                    "\"%s\", \"id\": %llu, \"ts\": %.3f, \"pid\": 0, \"tid\": "
                    "%u, \"args\": {\"x\": %u}}",
                    e.kind == EventKind::kRoundStart ? "b" : "e",
                    static_cast<unsigned long long>(e.request), ts_us, e.site,
                    static_cast<unsigned>(e.x));
    } else {
      std::snprintf(buf, sizeof(buf),
                    "  {\"name\": \"%s\", \"ph\": \"i\", \"s\": \"t\", \"ts\": "
                    "%.3f, \"pid\": 0, \"tid\": %u, \"args\": {\"request\": "
                    "%llu, \"a\": %llu, \"x\": %u}}",
                    name, ts_us, e.site,
                    static_cast<unsigned long long>(e.request),
                    static_cast<unsigned long long>(e.a),
                    static_cast<unsigned>(e.x));
    }
    out << buf;
  }
  out << "\n]}\n";
}

void write_trace_file(const TraceRecorder& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open trace file " + path);
  const bool json =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  if (json) {
    trace.write_chrome_json(out);
  } else {
    trace.write_text(out);
  }
}

} // namespace quora::obs
