#include "obs/metrics.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <stdexcept>

namespace quora::obs {
namespace {

std::atomic<std::uint64_t> g_generation{1};

} // namespace

void Counter::add(std::uint64_t n) const {
  if (registry_ != nullptr) registry_->add_slot(slot_, n);
}

void Gauge::set(std::int64_t value) const {
  if (registry_ == nullptr) return;
  registry_->gauges_[index_]->store(value, std::memory_order_relaxed);
}

void Histogram::record(double value) const {
  if (registry_ == nullptr) return;
  // defs_ never shrinks and a Def's slot/bounds never change after
  // registration, so reading them without the mutex is safe.
  const Registry::Def& def = registry_->defs_[def_];
  std::uint32_t bucket = 0;
  const std::uint32_t n = static_cast<std::uint32_t>(def.bounds.size());
  while (bucket < n && value > def.bounds[bucket]) ++bucket;
  registry_->add_slot(def.slot + bucket, 1);
}

Registry::Registry()
    : generation_(g_generation.fetch_add(1, std::memory_order_relaxed)) {}

Registry::~Registry() = default;

Counter Registry::counter(std::string_view name) {
  const std::scoped_lock lock(mu_);
  for (std::size_t i = 0; i < defs_.size(); ++i) {
    if (defs_[i].name != name) continue;
    if (defs_[i].kind != Kind::kCounter) {
      throw std::invalid_argument("Registry: '" + std::string(name) +
                                  "' already registered as a histogram");
    }
    return Counter(this, defs_[i].slot);
  }
  Def def;
  def.kind = Kind::kCounter;
  def.name = std::string(name);
  def.slot = slot_count_;
  defs_.push_back(def);
  slot_count_ += 1;
  totals_.resize(slot_count_, 0);
  return Counter(this, def.slot);
}

Gauge Registry::gauge(std::string_view name) {
  const std::scoped_lock lock(mu_);
  for (const auto& [gname, index] : gauge_names_) {
    if (gname == name) return Gauge(this, index);
  }
  const auto index = static_cast<std::uint32_t>(gauges_.size());
  gauges_.push_back(std::make_unique<std::atomic<std::int64_t>>(0));
  gauge_names_.emplace_back(std::string(name), index);
  return Gauge(this, index);
}

Histogram Registry::histogram(std::string_view name, std::vector<double> bounds) {
  if (bounds.empty()) {
    throw std::invalid_argument("Registry: histogram needs at least one bound");
  }
  if (!std::is_sorted(bounds.begin(), bounds.end())) {
    throw std::invalid_argument("Registry: histogram bounds must be ascending");
  }
  const std::scoped_lock lock(mu_);
  for (std::size_t i = 0; i < defs_.size(); ++i) {
    if (defs_[i].name != name) continue;
    if (defs_[i].kind != Kind::kHistogram) {
      throw std::invalid_argument("Registry: '" + std::string(name) +
                                  "' already registered as a counter");
    }
    if (defs_[i].bounds != bounds) {
      throw std::invalid_argument("Registry: '" + std::string(name) +
                                  "' re-registered with different bounds");
    }
    return Histogram(this, static_cast<std::uint32_t>(i));
  }
  Def def;
  def.kind = Kind::kHistogram;
  def.name = std::string(name);
  def.slot = slot_count_;
  def.bounds = std::move(bounds);
  slot_count_ += def.slot_count();
  defs_.push_back(std::move(def));
  totals_.resize(slot_count_, 0);
  return Histogram(this, static_cast<std::uint32_t>(defs_.size() - 1));
}

Registry::ThreadBuf* Registry::local_buf() {
  // Per-thread cache of (registry, generation) -> buffer. Generations
  // keep a stale cache entry from matching a new registry that happens to
  // be allocated at a recycled address.
  struct TlsEntry {
    const Registry* registry = nullptr;
    std::uint64_t generation = 0;
    ThreadBuf* buf = nullptr;
  };
  thread_local std::vector<TlsEntry> cache;
  for (const TlsEntry& e : cache) {
    if (e.registry == this && e.generation == generation_) return e.buf;
  }
  auto buf = std::make_unique<ThreadBuf>();
  ThreadBuf* raw = buf.get();
  {
    const std::scoped_lock lock(mu_);
    raw->size = slot_count_;
    if (raw->size > 0) {
      raw->slots = std::make_unique<std::atomic<std::uint64_t>[]>(raw->size);
      for (std::uint32_t i = 0; i < raw->size; ++i) {
        raw->slots[i].store(0, std::memory_order_relaxed);
      }
    }
    buffers_.push_back(std::move(buf));
  }
  cache.push_back(TlsEntry{this, generation_, raw});
  return raw;
}

void Registry::add_slot(std::uint32_t slot, std::uint64_t n) {
  ThreadBuf* buf = local_buf();
  if (slot < buf->size) {
    buf->slots[slot].fetch_add(n, std::memory_order_relaxed);
    return;
  }
  // Slot registered after this thread's buffer was sized: fold straight
  // into the totals. Rare by design (register handles up front).
  const std::scoped_lock lock(mu_);
  totals_[slot] += n;
}

void Registry::flush_locked() {
  for (const auto& buf : buffers_) {
    for (std::uint32_t i = 0; i < buf->size; ++i) {
      totals_[i] += buf->slots[i].exchange(0, std::memory_order_relaxed);
    }
  }
}

void Registry::flush() {
  const std::scoped_lock lock(mu_);
  flush_locked();
}

Registry::Snapshot Registry::snapshot() {
  const std::scoped_lock lock(mu_);
  flush_locked();
  Snapshot snap;
  for (const Def& def : defs_) {
    if (def.kind == Kind::kCounter) {
      snap.counters.emplace_back(def.name, totals_[def.slot]);
    } else {
      HistogramValue h;
      h.name = def.name;
      h.bounds = def.bounds;
      h.counts.assign(def.slot_count(), 0);
      for (std::uint32_t i = 0; i < def.slot_count(); ++i) {
        h.counts[i] = totals_[def.slot + i];
        h.total += h.counts[i];
      }
      snap.histograms.push_back(std::move(h));
    }
  }
  for (const auto& [name, index] : gauge_names_) {
    snap.gauges.emplace_back(name,
                             gauges_[index]->load(std::memory_order_relaxed));
  }
  const auto by_name = [](const auto& a, const auto& b) { return a.first < b.first; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(),
            [](const HistogramValue& a, const HistogramValue& b) {
              return a.name < b.name;
            });
  return snap;
}

void Registry::write_text(std::ostream& out) {
  const Snapshot snap = snapshot();
  for (const auto& [name, value] : snap.counters) {
    out << "counter " << name << ' ' << value << '\n';
  }
  for (const auto& [name, value] : snap.gauges) {
    out << "gauge " << name << ' ' << value << '\n';
  }
  for (const HistogramValue& h : snap.histograms) {
    out << "histogram " << h.name << " total=" << h.total << '\n';
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      out << "  le=";
      if (i < h.bounds.size()) {
        out << h.bounds[i];
      } else {
        out << "+inf";
      }
      out << ' ' << h.counts[i] << '\n';
    }
  }
}

void write_metrics_file(Registry& registry, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open metrics file " + path);
  registry.write_text(out);
}

} // namespace quora::obs
