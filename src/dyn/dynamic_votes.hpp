#pragma once

#include <cstdint>
#include <vector>

#include "conn/component_tracker.hpp"
#include "net/topology.hpp"
#include "quorum/protocols.hpp"

namespace quora::dyn {

/// Dynamic *vote* reassignment in the style of Barbara, Garcia-Molina &
/// Spauster (paper references [4, 5]): instead of adjusting quorum sizes
/// (QR) or the electorate (dynamic voting), the protocol reassigns the
/// vote weights themselves — typically stripping votes from failed sites
/// so the survivors regain a majority.
///
/// A version-numbered vote *vector* is replicated at every site; the
/// vector in effect for an access is the highest-version one stored at an
/// up member of the submitting site's component. Accesses need a strict
/// majority of the effective vector's total (the references' mutual-
/// exclusion setting — no read/write distinction, like dynamic voting).
/// A new vector may be installed only from a component holding a strict
/// majority under the *old* effective vector; the §2.2-style argument
/// then guarantees no component ever operates under a superseded vector
/// (see docs/THEORY.md §3 — the proof only uses that each version's vote
/// totals are fixed, which holds per version here too).
class DynamicVotes {
public:
  explicit DynamicVotes(const net::Topology& topo);

  struct VoteState {
    std::vector<net::Vote> votes;
    std::uint64_t version = 1;
  };

  /// Highest-version state among up members of origin's component; a down
  /// origin reports its own stored state.
  VoteState effective(const conn::ComponentTracker& tracker,
                      net::SiteId origin) const;

  /// Access decision: strict majority of the effective vector's total.
  quorum::Decision request(const conn::ComponentTracker& tracker,
                           net::SiteId origin) const;

  /// Install `new_votes` from origin's component. Requires: origin up, a
  /// strict majority of the old effective vector inside the component, a
  /// positive new total, and a genuinely different vector. Stamps every
  /// up member with version+1.
  bool try_install(const conn::ComponentTracker& tracker, net::SiteId origin,
                   std::vector<net::Vote> new_votes);

  /// The references' "overthrow" policy with re-enfranchisement: each
  /// component member keeps its current votes (at least one — recovered
  /// sites that were stripped while down rejoin the electorate), everyone
  /// outside goes to zero, and the lowest-id member gets +1 if the total
  /// would be even (strict majorities of odd totals cannot tie).
  std::vector<net::Vote> overthrow_votes(const conn::ComponentTracker& tracker,
                                         net::SiteId origin) const;

  std::uint64_t latest_version() const noexcept { return latest_version_; }
  const VoteState& stored(net::SiteId s) const { return stored_.at(s); }

  static net::Vote total_of(const std::vector<net::Vote>& votes);

private:
  const net::Topology* topo_;
  std::vector<VoteState> stored_;
  std::uint64_t latest_version_ = 1;
};

} // namespace quora::dyn
