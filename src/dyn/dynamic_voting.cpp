#include "dyn/dynamic_voting.hpp"

namespace quora::dyn {

DynamicVoting::DynamicVoting(const net::Topology& topo)
    : state_(topo.site_count(), CopyState{0, topo.site_count()}) {}

bool DynamicVoting::attempt_update(const conn::ComponentTracker& tracker,
                                   net::SiteId origin) {
  const std::int32_t comp = tracker.component_of(origin);
  if (comp == conn::kNoComponent) return false;
  const auto members = tracker.members(comp);

  std::uint64_t max_version = 0;
  for (const net::SiteId s : members) {
    max_version = std::max(max_version, state_[s].version);
  }
  std::uint32_t holders = 0;
  std::uint32_t last_cardinality = 0;
  for (const net::SiteId s : members) {
    if (state_[s].version == max_version) {
      ++holders;
      last_cardinality = state_[s].cardinality;
    }
  }
  // Majority of the last update's participants must be present. (The
  // strict inequality rejects exact halves; we omit the tie-breaking
  // distinguished-site refinement of the TODS version.)
  if (2 * holders <= last_cardinality) return false;

  const CopyState next{max_version + 1,
                       static_cast<std::uint32_t>(members.size())};
  for (const net::SiteId s : members) state_[s] = next;
  ++committed_;
  return true;
}

} // namespace quora::dyn
