#pragma once

#include <cstdint>
#include <vector>

#include "conn/component_tracker.hpp"
#include "net/topology.hpp"

namespace quora::dyn {

/// Dynamic voting in the style of Jajodia & Mutchler (SIGMOD 1987 /
/// TODS 1990) — paper references [12, 13]. This is the classic *dynamic*
/// baseline that the quorum reassignment protocol is contrasted with: it
/// adapts the electorate rather than the quorum sizes, and makes no
/// read/write distinction.
///
/// Each copy stores a version number VN and an update-site cardinality SC
/// (the number of copies that took part in the last update). A partition
/// P may perform an update iff it contains strictly more than half of the
/// copies that participated in the most recent update it knows of:
/// with M = max VN over P and I = {s in P : VN_s = M}, the update proceeds
/// iff 2|I| > SC_of_any_member_of_I; afterwards every copy in P gets
/// VN = M+1 and SC = |P|.
class DynamicVoting {
public:
  explicit DynamicVoting(const net::Topology& topo);

  /// Attempt an update from `origin`; returns whether it committed. A down
  /// origin always fails.
  bool attempt_update(const conn::ComponentTracker& tracker, net::SiteId origin);

  struct CopyState {
    std::uint64_t version = 0;
    std::uint32_t cardinality = 0;
  };
  const CopyState& state(net::SiteId s) const { return state_.at(s); }

  /// Total updates committed, equal to the highest version in the system.
  std::uint64_t committed_updates() const noexcept { return committed_; }

private:
  std::vector<CopyState> state_;
  std::uint64_t committed_ = 0;
};

} // namespace quora::dyn
