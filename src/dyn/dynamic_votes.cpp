#include "dyn/dynamic_votes.hpp"

#include <algorithm>
#include <numeric>

#include "core/contracts.hpp"

namespace quora::dyn {

DynamicVotes::DynamicVotes(const net::Topology& topo) : topo_(&topo) {
  VoteState initial;
  initial.votes.assign(topo.site_count(), 0);
  for (net::SiteId s = 0; s < topo.site_count(); ++s) {
    initial.votes[s] = topo.votes(s);
  }
  initial.version = 1;
  stored_.assign(topo.site_count(), initial);
}

net::Vote DynamicVotes::total_of(const std::vector<net::Vote>& votes) {
  return std::accumulate(votes.begin(), votes.end(), net::Vote{0});
}

DynamicVotes::VoteState DynamicVotes::effective(
    const conn::ComponentTracker& tracker, net::SiteId origin) const {
  const std::int32_t comp = tracker.component_of(origin);
  if (comp == conn::kNoComponent) return stored_.at(origin);
  const VoteState* best = &stored_.at(origin);
  for (const net::SiteId s : tracker.members(comp)) {
    if (stored_[s].version > best->version) best = &stored_[s];
  }
  return *best;
}

quorum::Decision DynamicVotes::request(const conn::ComponentTracker& tracker,
                                       net::SiteId origin) const {
  quorum::Decision d;
  const std::int32_t comp = tracker.component_of(origin);
  if (comp == conn::kNoComponent) return d;
  const VoteState state = effective(tracker, origin);
  net::Vote collected = 0;
  for (const net::SiteId s : tracker.members(comp)) collected += state.votes[s];
  // Vote conservation: one component can never gather more votes than the
  // whole epoch holds, so two disjoint components can never both reach a
  // majority of the same vote state.
  QUORA_INVARIANT(collected <= total_of(state.votes),
                  "component collected more votes than the epoch total");
  d.votes_collected = collected;
  d.granted = 2 * collected > total_of(state.votes);  // strict majority
  return d;
}

bool DynamicVotes::try_install(const conn::ComponentTracker& tracker,
                               net::SiteId origin,
                               std::vector<net::Vote> new_votes) {
  if (new_votes.size() != topo_->site_count()) return false;
  if (total_of(new_votes) == 0) return false;
  const std::int32_t comp = tracker.component_of(origin);
  if (comp == conn::kNoComponent) return false;
  if (!request(tracker, origin).granted) return false;  // majority under OLD

  const VoteState current = effective(tracker, origin);
  if (new_votes == current.votes) return false;

  VoteState installed;
  installed.votes = std::move(new_votes);
  installed.version = current.version + 1;
  QUORA_INVARIANT(installed.version > current.version,
                  "vote reassignment must strictly advance the epoch");
  for (const net::SiteId s : tracker.members(comp)) {
    QUORA_ASSERT(stored_[s].version <= current.version,
                 "a component member was ahead of the effective vote state");
    stored_[s] = installed;
  }
  latest_version_ = std::max(latest_version_, installed.version);
  return true;
}

std::vector<net::Vote> DynamicVotes::overthrow_votes(
    const conn::ComponentTracker& tracker, net::SiteId origin) const {
  const VoteState current = effective(tracker, origin);
  std::vector<net::Vote> votes(topo_->site_count(), 0);
  const std::int32_t comp = tracker.component_of(origin);
  if (comp == conn::kNoComponent) return votes;
  // Members keep their weight but are never disenfranchised (a recovered
  // site that was overthrown while down gets a vote back on rejoining);
  // outsiders are stripped.
  for (const net::SiteId s : tracker.members(comp)) {
    votes[s] = std::max<net::Vote>(current.votes[s], 1);
  }
  if (total_of(votes) % 2 == 0) {
    const auto members = tracker.members(comp);
    const net::SiteId lowest = *std::min_element(members.begin(), members.end());
    ++votes[lowest];
  }
  // An odd total means no future partition can split the votes into two
  // exact halves — overthrow must never manufacture a tie.
  QUORA_INVARIANT(total_of(votes) % 2 == 1,
                  "overthrow votes must total an odd number");
  return votes;
}

} // namespace quora::dyn
