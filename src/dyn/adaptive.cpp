#include "dyn/adaptive.hpp"

#include "core/contracts.hpp"
#include "core/optimize.hpp"

namespace quora::dyn {

AdaptiveReassigner::AdaptiveReassigner(const net::Topology& topo,
                                       core::QuorumReassignment& qr, Options options)
    : topo_(&topo),
      qr_(&qr),
      options_(options),
      votes_seen_(topo.total_votes() + 1, 0.0) {}

double AdaptiveReassigner::estimated_alpha() const {
  const double total = read_weight_ + write_weight_;
  return total > 0.0 ? read_weight_ / total : 0.5;
}

void AdaptiveReassigner::on_access(const sim::Simulator& sim,
                                   const sim::AccessEvent& ev) {
  const net::Vote v = sim.tracker().component_votes(ev.site);
  votes_seen_[v] += 1.0;
  (ev.is_read ? read_weight_ : write_weight_) += 1.0;
  ++samples_;
  ++since_reassess_;
  if (since_reassess_ >= options_.reassess_every && samples_ >= options_.min_samples) {
    maybe_reassess(sim, ev.site);
    since_reassess_ = 0;
  }
}

void AdaptiveReassigner::maybe_reassess(const sim::Simulator& sim,
                                        net::SiteId origin) {
  // Normalize the decayed histogram into a density; the same samples serve
  // both mixtures because reads and writes are drawn from one stream here
  // (uniform access — the paper's setting).
  double total = 0.0;
  for (const double x : votes_seen_) total += x;
  if (total <= 0.0) return;
  core::VotePdf pdf(votes_seen_.size());
  for (std::size_t i = 0; i < pdf.size(); ++i) pdf[i] = votes_seen_[i] / total;
  QUORA_INVARIANT(core::is_valid_pdf(pdf, 1e-9),
                  "normalized votes-seen histogram must be a density");

  const core::AvailabilityCurve curve(pdf);
  const double alpha = estimated_alpha();
  QUORA_ASSERT(alpha >= 0.0 && alpha <= 1.0,
               "estimated read fraction escaped [0, 1]");
  core::OptResult best = core::optimize_exhaustive(curve, alpha);
  if (options_.min_write_availability > 0.0) {
    const auto constrained = core::optimize_write_constrained(
        curve, alpha, options_.min_write_availability);
    if (constrained) best = *constrained;
    // Infeasible floor: fall through to the unconstrained optimum rather
    // than freeze — a degraded network may not admit any write quorum.
  }
  const core::QuorumReassignment::Assignment current =
      qr_->effective(sim.tracker(), origin);
  const double current_value = curve.value(alpha, current.spec.q_r, current.spec.q_w);

  if (best.value - current_value > options_.improvement_threshold &&
      !(best.spec == current.spec)) {
    if (qr_->try_install(sim.tracker(), origin, best.spec)) ++installs_;
  }

  for (double& x : votes_seen_) x *= options_.decay;
  read_weight_ *= options_.decay;
  write_weight_ *= options_.decay;
}

} // namespace quora::dyn
