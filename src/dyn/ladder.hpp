#pragma once

#include <cstdint>
#include <vector>

#include "core/reassign.hpp"
#include "sim/simulator.hpp"

namespace quora::dyn {

/// Demand-driven quorum graduation over an ordered ladder of assignments
/// — our concrete answer to Herlihy's dynamic quorum adjustment (TODS
/// 1987), which the paper reviews and criticizes for leaving the level
/// selection/ordering mechanism unspecified and unevaluated (§1).
///
/// The ladder is the canonical family q_w = T - q_r + 1 ordered by q_r.
/// Instead of re-estimating the component-size distribution (the
/// AdaptiveReassigner's strategy), the agent watches *denials*: a burst
/// of read denials is evidence q_r is too high, a burst of write denials
/// that q_w is (i.e. q_r too low). When one side's denial share crosses a
/// threshold, the agent steps the assignment one rung in the helpful
/// direction — through the QR protocol, so every step inherits §2.2
/// safety. A denied component can never graduate itself (installation
/// needs a write quorum under the old assignment, which the denied
/// component by definition lacks); steps are executed opportunistically
/// from components that can.
class LadderAgent : public sim::AccessObserver {
public:
  struct Options {
    /// Accesses per decision window.
    std::uint64_t window = 2'000;
    /// Minimum share of denials (among all accesses in the window) before
    /// any step is attempted.
    double denial_trigger = 0.05;
    /// Required dominance of one denial type over the other, as a
    /// fraction of all denials, before stepping toward it.
    double dominance = 0.65;
    /// Largest single step, in ladder rungs.
    net::Vote max_step = 8;
  };

  LadderAgent(const net::Topology& topo, core::QuorumReassignment& qr)
      : LadderAgent(topo, qr, Options{}) {}
  LadderAgent(const net::Topology& topo, core::QuorumReassignment& qr,
              Options options);

  void on_access(const sim::Simulator& sim, const sim::AccessEvent& ev) override;

  std::uint64_t graduations() const noexcept { return graduations_; }
  std::uint64_t read_denials() const noexcept { return read_denials_total_; }
  std::uint64_t write_denials() const noexcept { return write_denials_total_; }

private:
  void maybe_step(const sim::Simulator& sim, net::SiteId origin);

  const net::Topology* topo_;
  core::QuorumReassignment* qr_;
  Options options_;
  net::Vote max_q_ = 0;

  std::uint64_t window_accesses_ = 0;
  std::uint64_t window_read_denials_ = 0;
  std::uint64_t window_write_denials_ = 0;
  std::uint64_t read_denials_total_ = 0;
  std::uint64_t write_denials_total_ = 0;
  std::uint64_t graduations_ = 0;
};

} // namespace quora::dyn
