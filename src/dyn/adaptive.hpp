#pragma once

#include <cstdint>
#include <vector>

#include "core/availability.hpp"
#include "core/reassign.hpp"
#include "sim/simulator.hpp"

namespace quora::dyn {

/// The closed loop of §4.3: estimate the component-size distribution
/// on-line from the access stream, periodically run the Figure-1
/// optimizer, and install improved assignments through the QR protocol.
///
/// Sampling follows the paper's suggestion of piggy-backing on access
/// processing: each access contributes one (votes-reachable) sample and
/// one read/write label, from which both the mixtures and the current
/// read-rate alpha are estimated. Samples are exponentially decayed at
/// every reassessment so the agent tracks workload and failure-regime
/// shifts instead of averaging over the whole past.
class AdaptiveReassigner : public sim::AccessObserver {
public:
  struct Options {
    /// Accesses between optimization passes.
    std::uint64_t reassess_every = 2'000;
    /// Samples required before the first install may happen.
    std::uint64_t min_samples = 4'000;
    /// Install only when the predicted availability gain exceeds this
    /// (the paper's "differs significantly").
    double improvement_threshold = 0.01;
    /// Retained fraction of sample weight at each reassessment.
    double decay = 0.5;
    /// Minimum write availability demanded of any installed assignment
    /// (§5.4's constraint, applied to the agent's own installs). This is
    /// not merely a throughput preference: an agent that installs
    /// q_w = T can essentially never reassign again — installation itself
    /// requires a write quorum under the old assignment — so a floor of 0
    /// lets one read-heavy phase lock the system into read-one/write-all
    /// forever. Set to 0 to reproduce exactly that pathology (the
    /// abl_dynamic_qr bench does).
    double min_write_availability = 0.05;
  };

  AdaptiveReassigner(const net::Topology& topo, core::QuorumReassignment& qr)
      : AdaptiveReassigner(topo, qr, Options{}) {}
  AdaptiveReassigner(const net::Topology& topo, core::QuorumReassignment& qr,
                     Options options);

  void on_access(const sim::Simulator& sim, const sim::AccessEvent& ev) override;

  /// Number of successful installs performed so far.
  std::uint64_t installs() const noexcept { return installs_; }
  /// Current estimate of the read fraction alpha.
  double estimated_alpha() const;

private:
  void maybe_reassess(const sim::Simulator& sim, net::SiteId origin);

  const net::Topology* topo_;
  core::QuorumReassignment* qr_;
  Options options_;

  std::vector<double> votes_seen_;  // decayed histogram over 0..T
  double read_weight_ = 0.0;
  double write_weight_ = 0.0;
  std::uint64_t since_reassess_ = 0;
  std::uint64_t samples_ = 0;
  std::uint64_t installs_ = 0;
};

} // namespace quora::dyn
