#include "dyn/ladder.hpp"

#include <algorithm>

#include "core/contracts.hpp"

namespace quora::dyn {

LadderAgent::LadderAgent(const net::Topology& topo, core::QuorumReassignment& qr,
                         Options options)
    : topo_(&topo),
      qr_(&qr),
      options_(options),
      max_q_(quorum::max_read_quorum(topo.total_votes())) {}

void LadderAgent::on_access(const sim::Simulator& sim, const sim::AccessEvent& ev) {
  const auto type =
      ev.is_read ? quorum::AccessType::kRead : quorum::AccessType::kWrite;
  const quorum::Decision d = qr_->request(sim.tracker(), ev.site, type);
  ++window_accesses_;
  if (!d.granted && d.votes_collected > 0) {
    // Denials from down origins carry no quorum signal; skip them.
    if (ev.is_read) {
      ++window_read_denials_;
      ++read_denials_total_;
    } else {
      ++window_write_denials_;
      ++write_denials_total_;
    }
  }
  if (window_accesses_ >= options_.window) {
    maybe_step(sim, ev.site);
    window_accesses_ = 0;
    window_read_denials_ = 0;
    window_write_denials_ = 0;
  }
}

void LadderAgent::maybe_step(const sim::Simulator& sim, net::SiteId origin) {
  const std::uint64_t denials = window_read_denials_ + window_write_denials_;
  if (denials == 0) return;
  const double denial_share =
      static_cast<double>(denials) / static_cast<double>(window_accesses_);
  if (denial_share < options_.denial_trigger) return;

  const double read_share =
      static_cast<double>(window_read_denials_) / static_cast<double>(denials);

  const core::QuorumReassignment::Assignment current =
      qr_->effective(sim.tracker(), origin);
  // Non-canonical current assignments (e.g. strict majority) are mapped
  // onto the nearest rung before stepping.
  const net::Vote current_rung = std::clamp<net::Vote>(current.spec.q_r, 1, max_q_);

  net::Vote target = current_rung;
  if (read_share >= options_.dominance) {
    // Reads starved: step down toward q_r = 1. Scale the step with how
    // lopsided the window is, up to max_step.
    const auto step = std::max<net::Vote>(
        1, static_cast<net::Vote>(static_cast<double>(options_.max_step) *
                                  denial_share));
    target = current_rung > step ? current_rung - step : 1;
  } else if (1.0 - read_share >= options_.dominance) {
    const auto step = std::max<net::Vote>(
        1, static_cast<net::Vote>(static_cast<double>(options_.max_step) *
                                  denial_share));
    target = std::min<net::Vote>(max_q_, current_rung + step);
  } else {
    return;  // mixed signal — stay put
  }
  if (target == current_rung && current.spec.q_r == current_rung) return;

  QUORA_ASSERT(target >= 1 && target <= max_q_,
               "ladder stepped outside the admissible rung range");
  const quorum::QuorumSpec next =
      quorum::from_read_quorum(topo_->total_votes(), target);
  QUORA_INVARIANT(next.valid(topo_->total_votes()),
                  "ladder would install a non-intersecting assignment");
  if (qr_->try_install(sim.tracker(), origin, next)) ++graduations_;
}

} // namespace quora::dyn
