#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "conn/component_tracker.hpp"
#include "net/topology.hpp"
#include "quorum/quorum_spec.hpp"
#include "quorum/replicated_store.hpp"

namespace quora::db {

using ObjectId = std::uint32_t;

/// A replicated database of several independent data objects, each fully
/// replicated with its own quorum assignment — the multi-object setting
/// the paper's title implies and its single-object analysis plugs into:
/// objects have different read/write mixes, so Figure 1 gives each its
/// own optimal (q_r, q_w).
///
/// Single-object accesses delegate to the per-object store. Transactions
/// touch several objects atomically *within one partition component*:
/// every operation's quorum must be satisfiable from the submitting
/// site's component or the whole transaction aborts (all-or-nothing, no
/// partial effects). One-copy serializability per object follows from the
/// per-object quorum conditions exactly as in the single-object case, and
/// transaction atomicity is by construction (validate all, then apply).
class Database {
public:
  struct ObjectConfig {
    std::string name;
    quorum::QuorumSpec spec;
  };

  /// Throws if any spec is invalid for the topology's total votes or any
  /// object name repeats.
  Database(const net::Topology& topo, std::vector<ObjectConfig> objects);

  std::uint32_t object_count() const noexcept {
    return static_cast<std::uint32_t>(objects_.size());
  }
  const std::string& object_name(ObjectId id) const { return objects_.at(id).name; }
  const quorum::QuorumSpec& object_spec(ObjectId id) const {
    return objects_.at(id).spec;
  }
  /// Lookup by name; throws std::out_of_range if absent.
  ObjectId object_id(const std::string& name) const;

  /// Re-assign one object's quorums (e.g. from a per-object optimizer).
  /// Validates the spec. In a live system this must ride the QR protocol;
  /// here the caller is responsible for that discipline (see
  /// core::QuorumReassignment).
  void set_object_spec(ObjectId id, const quorum::QuorumSpec& spec);

  quorum::ReplicatedStore::ReadResult read(const conn::ComponentTracker& tracker,
                                           net::SiteId origin, ObjectId id) const;
  quorum::ReplicatedStore::WriteResult write(const conn::ComponentTracker& tracker,
                                             net::SiteId origin, ObjectId id,
                                             std::uint64_t value);

  /// One operation of a transaction.
  struct Op {
    ObjectId object = 0;
    bool is_write = false;
    std::uint64_t value = 0;  // written value (ignored for reads)
  };

  struct TxnResult {
    bool committed = false;
    /// Values observed by the read ops, in op order (empty if aborted).
    std::vector<std::uint64_t> reads;
  };

  /// Validate-then-apply: if every op's quorum is met in origin's
  /// component, perform all reads and writes; otherwise change nothing.
  TxnResult execute(const conn::ComponentTracker& tracker, net::SiteId origin,
                    std::span<const Op> ops);

  /// Per-object access counters (all accesses routed through this
  /// Database) — the raw material for estimating each object's alpha.
  struct ObjectStats {
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t reads_granted = 0;
    std::uint64_t writes_granted = 0;

    double alpha_estimate() const {
      const std::uint64_t total = reads + writes;
      return total == 0 ? 0.5 : static_cast<double>(reads) /
                                    static_cast<double>(total);
    }
  };
  const ObjectStats& stats(ObjectId id) const { return stats_.at(id); }

private:
  struct Object {
    std::string name;
    quorum::QuorumSpec spec;
    quorum::ReplicatedStore store;
  };

  const net::Topology* topo_;
  std::vector<Object> objects_;
  mutable std::vector<ObjectStats> stats_;
};

} // namespace quora::db
