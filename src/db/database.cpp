#include "db/database.hpp"

#include <set>
#include <stdexcept>

namespace quora::db {

Database::Database(const net::Topology& topo, std::vector<ObjectConfig> objects)
    : topo_(&topo) {
  if (objects.empty()) throw std::invalid_argument("Database: no objects");
  std::set<std::string> names;
  objects_.reserve(objects.size());
  for (ObjectConfig& config : objects) {
    if (!config.spec.valid(topo.total_votes())) {
      throw std::invalid_argument("Database: invalid spec for object '" +
                                  config.name + "'");
    }
    if (!names.insert(config.name).second) {
      throw std::invalid_argument("Database: duplicate object name '" +
                                  config.name + "'");
    }
    objects_.push_back(Object{std::move(config.name), config.spec,
                              quorum::ReplicatedStore(topo)});
  }
  stats_.assign(objects_.size(), ObjectStats{});
}

ObjectId Database::object_id(const std::string& name) const {
  for (ObjectId id = 0; id < objects_.size(); ++id) {
    if (objects_[id].name == name) return id;
  }
  throw std::out_of_range("Database: unknown object '" + name + "'");
}

void Database::set_object_spec(ObjectId id, const quorum::QuorumSpec& spec) {
  if (!spec.valid(topo_->total_votes())) {
    throw std::invalid_argument("Database::set_object_spec: invalid spec");
  }
  objects_.at(id).spec = spec;
}

quorum::ReplicatedStore::ReadResult Database::read(
    const conn::ComponentTracker& tracker, net::SiteId origin, ObjectId id) const {
  const Object& object = objects_.at(id);
  const auto result =
      object.store.read(tracker, object.spec, origin);
  ++stats_[id].reads;
  stats_[id].reads_granted += result.granted ? 1 : 0;
  return result;
}

quorum::ReplicatedStore::WriteResult Database::write(
    const conn::ComponentTracker& tracker, net::SiteId origin, ObjectId id,
    std::uint64_t value) {
  Object& object = objects_.at(id);
  const auto result = object.store.write(tracker, object.spec, origin, value);
  ++stats_[id].writes;
  stats_[id].writes_granted += result.granted ? 1 : 0;
  return result;
}

Database::TxnResult Database::execute(const conn::ComponentTracker& tracker,
                                      net::SiteId origin,
                                      std::span<const Op> ops) {
  TxnResult result;
  const net::Vote votes = tracker.component_votes(origin);

  // Validation phase: every op's quorum must be met before anything runs.
  bool all_met = true;
  for (const Op& op : ops) {
    const quorum::QuorumSpec& spec = objects_.at(op.object).spec;
    const bool met =
        op.is_write ? spec.allows_write(votes) : spec.allows_read(votes);
    if (!met) all_met = false;
  }
  // Account every op against its object, committed or not.
  for (const Op& op : ops) {
    if (op.is_write) {
      ++stats_[op.object].writes;
      stats_[op.object].writes_granted += all_met ? 1 : 0;
    } else {
      ++stats_[op.object].reads;
      stats_[op.object].reads_granted += all_met ? 1 : 0;
    }
  }
  if (!all_met) return result;

  // Apply phase: quorum checks can no longer fail (same component view).
  result.committed = true;
  for (const Op& op : ops) {
    Object& object = objects_[op.object];
    if (op.is_write) {
      object.store.write(tracker, object.spec, origin, op.value);
    } else {
      const auto r = object.store.read(tracker, object.spec, origin);
      result.reads.push_back(r.value);
    }
  }
  return result;
}

} // namespace quora::db
