#pragma once

#include <cmath>
#include <cstdint>

namespace quora::stats {

/// Numerically stable single-pass mean/variance accumulator
/// (Welford's online algorithm).
class RunningStat {
public:
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_ || count_ == 1) min_ = x;
    if (x > max_ || count_ == 1) max_ = x;
  }

  void merge(const RunningStat& other) noexcept {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double n1 = static_cast<double>(count_);
    const double n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = n1 + n2;
    mean_ += delta * n2 / n;
    m2_ += other.m2_ + delta * delta * n1 * n2 / n;
    count_ += other.count_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

  std::uint64_t count() const noexcept { return count_; }
  double mean() const noexcept { return mean_; }
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

  /// Unbiased sample variance; 0 for fewer than two observations.
  double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const noexcept { return std::sqrt(variance()); }

  /// Standard error of the mean; 0 for fewer than two observations.
  double sem() const noexcept {
    return count_ > 1 ? stddev() / std::sqrt(static_cast<double>(count_)) : 0.0;
  }

private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

} // namespace quora::stats
