#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace quora::stats {

/// Dense histogram over the integer domain [0, max_value].
///
/// The central data structure of the on-line estimator (paper §4.2): each
/// access samples the number of votes in the submitting site's component —
/// an integer in [0, T] — and the normalized histogram converges to the
/// component-size density f_i(v).
class IntHistogram {
public:
  IntHistogram() = default;
  explicit IntHistogram(std::uint32_t max_value) : counts_(max_value + 1, 0) {}

  void add(std::uint32_t value, std::uint64_t weight = 1);

  /// Elementwise sum; the other histogram must have the same domain.
  void merge(const IntHistogram& other);

  std::uint32_t max_value() const noexcept {
    return counts_.empty() ? 0 : static_cast<std::uint32_t>(counts_.size() - 1);
  }
  std::uint64_t count(std::uint32_t value) const { return counts_.at(value); }
  std::uint64_t total() const noexcept { return total_; }
  std::span<const std::uint64_t> counts() const noexcept { return counts_; }

  /// Normalized density: pdf()[v] = count(v) / total(). Empty total yields
  /// the all-zero vector.
  std::vector<double> pdf() const;

  /// Upper-tail mass sum_{v >= k} pdf(v). k beyond the domain yields 0;
  /// k == 0 yields 1 (for non-empty histograms).
  double tail_mass(std::uint32_t k) const;

  double mean() const;

private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

} // namespace quora::stats
