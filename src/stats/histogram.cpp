#include "stats/histogram.hpp"

#include <stdexcept>

namespace quora::stats {

void IntHistogram::add(std::uint32_t value, std::uint64_t weight) {
  if (value >= counts_.size()) {
    throw std::out_of_range("IntHistogram::add: value beyond domain");
  }
  counts_[value] += weight;
  total_ += weight;
}

void IntHistogram::merge(const IntHistogram& other) {
  if (other.counts_.size() != counts_.size()) {
    throw std::invalid_argument("IntHistogram::merge: domain mismatch");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
}

std::vector<double> IntHistogram::pdf() const {
  std::vector<double> p(counts_.size(), 0.0);
  if (total_ == 0) return p;
  const double inv = 1.0 / static_cast<double>(total_);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    p[i] = static_cast<double>(counts_[i]) * inv;
  }
  return p;
}

double IntHistogram::tail_mass(std::uint32_t k) const {
  if (total_ == 0) return 0.0;
  std::uint64_t acc = 0;
  for (std::size_t v = k; v < counts_.size(); ++v) acc += counts_[v];
  return static_cast<double>(acc) / static_cast<double>(total_);
}

double IntHistogram::mean() const {
  if (total_ == 0) return 0.0;
  double acc = 0.0;
  for (std::size_t v = 0; v < counts_.size(); ++v) {
    acc += static_cast<double>(v) * static_cast<double>(counts_[v]);
  }
  return acc / static_cast<double>(total_);
}

} // namespace quora::stats
