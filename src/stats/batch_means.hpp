#pragma once

#include <cstdint>
#include <vector>

#include "stats/running_stat.hpp"

namespace quora::stats {

/// A mean with a symmetric confidence interval.
struct ConfidenceInterval {
  double mean = 0.0;
  double half_width = 0.0;
  double confidence = 0.95;
  std::uint32_t batches = 0;

  double lo() const noexcept { return mean - half_width; }
  double hi() const noexcept { return mean + half_width; }
  bool contains(double x) const noexcept { return lo() <= x && x <= hi(); }
};

/// The paper's replication protocol (§5.2): independent batches of the
/// simulation, each restarted from the initial state, averaged until the
/// 95% Student-t confidence interval has half-width at most 0.5%
/// (absolute, availability is a fraction in [0,1]); between 5 and 18
/// batches are used.
class BatchMeansController {
public:
  struct Policy {
    std::uint32_t min_batches = 5;
    std::uint32_t max_batches = 18;
    double confidence = 0.95;
    double target_half_width = 0.005;
  };

  BatchMeansController() = default;
  explicit BatchMeansController(Policy policy) : policy_(policy) {}

  void add_batch(double batch_mean) {
    batches_.push_back(batch_mean);
    stat_.add(batch_mean);
  }

  std::uint32_t batch_count() const noexcept {
    return static_cast<std::uint32_t>(batches_.size());
  }

  /// True when another batch is required under the paper's stopping rule.
  bool needs_more() const;

  /// The interval over the batch means collected so far.
  ConfidenceInterval interval() const;

  const Policy& policy() const noexcept { return policy_; }
  const std::vector<double>& batch_means() const noexcept { return batches_; }

private:
  Policy policy_{};
  std::vector<double> batches_;
  RunningStat stat_;
};

} // namespace quora::stats
