#include "stats/student_t.hpp"

#include <array>
#include <cmath>
#include <stdexcept>

namespace quora::stats {
namespace {

struct TableRow {
  double t90;
  double t95;
  double t99;
};

// Two-sided critical values t_{df, 1 - alpha/2} for df = 1..30.
constexpr std::array<TableRow, 30> kTable = {{
    {6.314, 12.706, 63.657}, {2.920, 4.303, 9.925},  {2.353, 3.182, 5.841},
    {2.132, 2.776, 4.604},   {2.015, 2.571, 4.032},  {1.943, 2.447, 3.707},
    {1.895, 2.365, 3.499},   {1.860, 2.306, 3.355},  {1.833, 2.262, 3.250},
    {1.812, 2.228, 3.169},   {1.796, 2.201, 3.106},  {1.782, 2.179, 3.055},
    {1.771, 2.160, 3.012},   {1.761, 2.145, 2.977},  {1.753, 2.131, 2.947},
    {1.746, 2.120, 2.921},   {1.740, 2.110, 2.898},  {1.734, 2.101, 2.878},
    {1.729, 2.093, 2.861},   {1.725, 2.086, 2.845},  {1.721, 2.080, 2.831},
    {1.717, 2.074, 2.819},   {1.714, 2.069, 2.807},  {1.711, 2.064, 2.797},
    {1.708, 2.060, 2.787},   {1.706, 2.056, 2.779},  {1.703, 2.052, 2.771},
    {1.701, 2.048, 2.763},   {1.699, 2.045, 2.756},  {1.697, 2.042, 2.750},
}};

// Anchors above df=30 for linear interpolation in 1/df, the standard trick
// for the slowly varying tail of the t table.
constexpr TableRow kRow40 = {1.684, 2.021, 2.704};
constexpr TableRow kRow60 = {1.671, 2.000, 2.660};
constexpr TableRow kRow120 = {1.658, 1.980, 2.617};
constexpr TableRow kRowInf = {1.645, 1.960, 2.576};

double pick(const TableRow& row, double confidence) {
  if (confidence == 0.90) return row.t90;
  if (confidence == 0.95) return row.t95;
  if (confidence == 0.99) return row.t99;
  throw std::invalid_argument("t_critical: confidence must be 0.90, 0.95 or 0.99");
}

double interpolate(const TableRow& lo, double dfLo, const TableRow& hi, double dfHi,
                   double df, double confidence) {
  const double a = pick(lo, confidence);
  const double b = pick(hi, confidence);
  const double x = (1.0 / df - 1.0 / dfLo) / (1.0 / dfHi - 1.0 / dfLo);
  return a + (b - a) * x;
}

} // namespace

double t_critical(std::uint32_t df, double confidence) {
  if (df == 0) throw std::invalid_argument("t_critical: df must be positive");
  if (df <= kTable.size()) return pick(kTable[df - 1], confidence);
  const auto d = static_cast<double>(df);
  if (df <= 40) return interpolate(kTable.back(), 30, kRow40, 40, d, confidence);
  if (df <= 60) return interpolate(kRow40, 40, kRow60, 60, d, confidence);
  if (df <= 120) return interpolate(kRow60, 60, kRow120, 120, d, confidence);
  return pick(kRowInf, confidence);
}

} // namespace quora::stats
