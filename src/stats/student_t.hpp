#pragma once

#include <cstdint>

namespace quora::stats {

/// Two-sided Student-t critical value t_{df, 1-conf/2}.
///
/// The paper reports "95% confidence interval with an interval half-size of
/// at most ±0.5%", computed from 5–18 batch means — i.e. 4–17 degrees of
/// freedom, squarely in the regime where the t correction over the normal
/// quantile matters.
///
/// Supports confidence in {0.90, 0.95, 0.99}; exact table for df <= 30,
/// interpolated for 30 < df <= 120, normal quantile beyond.
double t_critical(std::uint32_t df, double confidence = 0.95);

} // namespace quora::stats
