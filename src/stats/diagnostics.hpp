#pragma once

#include <cstdint>
#include <span>

namespace quora::stats {

/// Diagnostics justifying the batch-means methodology the paper relies
/// on: batch means must be effectively independent and identically
/// distributed for the Student-t interval to be honest.

/// Sample autocorrelation of `series` at the given lag, using the
/// standard biased (1/n) normalization. Returns 0 for lags outside
/// [1, n-1] or a constant series.
double autocorrelation(std::span<const double> series, std::uint32_t lag);

/// Von Neumann ratio: mean squared successive difference over the
/// variance. For i.i.d. data it concentrates near 2; values well below 2
/// indicate positive serial correlation (batches too short), values well
/// above 2 negative correlation. Returns 2 for degenerate inputs
/// (fewer than 2 points or zero variance) — the "no evidence against
/// independence" value.
double von_neumann_ratio(std::span<const double> series);

/// Effective sample size implied by an AR(1) fit to the series:
/// n * (1 - rho1) / (1 + rho1) with rho1 clamped to [0, 1). Equals n for
/// uncorrelated batches.
double effective_sample_size(std::span<const double> series);

} // namespace quora::stats
