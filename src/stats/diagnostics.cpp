#include "stats/diagnostics.hpp"

#include <algorithm>
#include <cmath>

namespace quora::stats {
namespace {

double series_mean(std::span<const double> series) {
  double sum = 0.0;
  for (const double x : series) sum += x;
  return sum / static_cast<double>(series.size());
}

} // namespace

double autocorrelation(std::span<const double> series, std::uint32_t lag) {
  const std::size_t n = series.size();
  if (n < 2 || lag == 0 || lag >= n) return 0.0;
  const double mean = series_mean(series);
  double denom = 0.0;
  for (const double x : series) denom += (x - mean) * (x - mean);
  if (denom == 0.0) return 0.0;
  double numer = 0.0;
  for (std::size_t i = 0; i + lag < n; ++i) {
    numer += (series[i] - mean) * (series[i + lag] - mean);
  }
  return numer / denom;
}

double von_neumann_ratio(std::span<const double> series) {
  const std::size_t n = series.size();
  if (n < 2) return 2.0;
  const double mean = series_mean(series);
  double variance = 0.0;
  for (const double x : series) variance += (x - mean) * (x - mean);
  variance /= static_cast<double>(n);
  if (variance == 0.0) return 2.0;
  double msd = 0.0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const double d = series[i + 1] - series[i];
    msd += d * d;
  }
  msd /= static_cast<double>(n - 1);
  return msd / variance;
}

double effective_sample_size(std::span<const double> series) {
  const std::size_t n = series.size();
  if (n < 2) return static_cast<double>(n);
  const double rho1 = std::clamp(autocorrelation(series, 1), 0.0, 0.999999);
  return static_cast<double>(n) * (1.0 - rho1) / (1.0 + rho1);
}

} // namespace quora::stats
