#include "stats/batch_means.hpp"

#include "stats/student_t.hpp"

namespace quora::stats {

bool BatchMeansController::needs_more() const {
  const std::uint32_t n = batch_count();
  if (n < policy_.min_batches) return true;
  if (n >= policy_.max_batches) return false;
  return interval().half_width > policy_.target_half_width;
}

ConfidenceInterval BatchMeansController::interval() const {
  ConfidenceInterval ci;
  ci.confidence = policy_.confidence;
  ci.batches = batch_count();
  ci.mean = stat_.mean();
  if (ci.batches >= 2) {
    ci.half_width = t_critical(ci.batches - 1, policy_.confidence) * stat_.sem();
  }
  return ci;
}

} // namespace quora::stats
