#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "net/topology.hpp"

namespace quora::io {

/// Parse failure with 1-based line number context.
class ParseError : public std::runtime_error {
public:
  ParseError(std::size_t line, const std::string& what)
      : std::runtime_error("line " + std::to_string(line) + ": " + what),
        line_(line) {}
  std::size_t line() const noexcept { return line_; }

private:
  std::size_t line_;
};

/// A parsed system description: the topology plus optional heterogeneous
/// reliabilities (empty vectors = the uniform model of SimConfig).
/// Convert to a simulator profile with
/// `sim::FailureProfile::from_reliabilities`.
struct SystemSpec {
  net::Topology topology;
  std::vector<double> site_reliability;  // empty or one entry per site
  std::vector<double> link_reliability;  // empty or one entry per link

  bool has_reliabilities() const noexcept {
    return !site_reliability.empty() || !link_reliability.empty();
  }
};

/// Loads a system from the line-oriented text format:
///
/// ```
/// # comments and blank lines ignored
/// sites 101            # required, first directive
/// name my-network      # optional display name
/// ring                 # add ring links 0-1, 1-2, ..., n-1 - 0
/// chords 16            # add the first K spread chords (DESIGN.md rule)
/// complete             # add every missing pair
/// link 3 77            # one explicit link (duplicate links are errors)
/// vote 5 3             # site 5 holds 3 votes (default 1)
/// vote default 2       # change the default for sites not set explicitly
/// site_rel 0 0.99      # per-site reliability (default 0.96 via SimConfig)
/// site_rel default 0.9
/// link_rel 3 77 0.85   # per-link reliability; the link must exist by EOF
/// link_rel default 0.99
/// domain 5 rg0/dc1/rk0 # failure-domain path (last assignment wins)
/// link_lat 3 77 0.03 0.01   # latency class: base + Exp(jitter) seconds
/// link_lat default 0.002 0.001
/// geo 3 2 1 4          # geo builder: regions/dcs/racks/sites-per-rack;
///                      # must match `sites`, precede any link directive
/// ```
///
/// Builder directives (`ring`, `chords`, `complete`) skip links that
/// already exist; explicit `link` lines must be unique. Reliability
/// vectors are produced only when at least one `*_rel` directive appears.
/// Throws `ParseError` on malformed input.
SystemSpec load_system(std::istream& in);
SystemSpec load_system_file(const std::string& path);

/// Topology-only convenience wrappers over `load_system`.
net::Topology load_topology(std::istream& in);

/// Convenience file loader; throws std::runtime_error if unreadable.
net::Topology load_topology_file(const std::string& path);

/// Writes a topology in the same format (explicit `link` lines only, so
/// the output round-trips regardless of how the input was built).
void save_topology(std::ostream& out, const net::Topology& topo);

/// As above, plus `site_rel`/`link_rel` lines when the spec carries
/// reliabilities. Round-trips through `load_system`.
void save_system(std::ostream& out, const SystemSpec& spec);

} // namespace quora::io
