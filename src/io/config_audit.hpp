#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "io/topology_io.hpp"
#include "quorum/quorum_spec.hpp"

namespace quora::io {

/// Machine-readable finding codes for `audit_config` / quora-check. Each
/// distinct failure mode gets its own code so CI and tests can assert on
/// the *reason* a configuration was rejected, not just the rejection.
enum class AuditCode {
  kParseError,            // the file does not parse at all
  kQuorumRange,           // q_r or q_w outside [1, T]
  kQuorumIntersection,    // q_r + q_w <= T: a read and a write can miss
  kWriteWriteIntersection,// 2*q_w <= T: two disjoint writes possible
  kDominatedAssignment,   // q_w > T - q_r + 1: a strictly better q_w exists
  kVoteSumMismatch,       // declared `total_votes` != sum of site votes
  kStaleQrVersion,        // some site still holds an old QR version
  kUnreachableQuorum,     // no static component can ever assemble a quorum
  kUnreachableVotes,      // votes stranded outside the main static component
  kZeroVoteSite,          // a site holds no votes (witness-style; warning)
  kEvenVoteTotal,         // even T: vote-assignment coteries are dominated
  kCoterieIntersection,   // enumerated write groups fail pairwise intersection
  kCoterieMinimality,     // enumerated quorum groups are not an antichain
  kChaosBadSchedule,      // .chaos plan: inverted window, bad probability,
                          // missing horizon, overlapping partition groups
  kChaosUnknownTarget,    // .chaos plan names a site/link the topology lacks
  kDomainConfig,          // failure-domain problems: duplicate/overlapping
                          // domain definitions, or a chaos directive naming
                          // a domain no site belongs to
  kAdaptConfig,           // adaptive-loop block problems: hysteresis
                          // threshold outside [0,1], dwell < 1 epoch,
                          // non-positive epoch length, write floor no vote
                          // assignment can meet, or adaptation enabled with
                          // QR gossip disabled (installs could never spread)
  kModelScopeConfig,      // .model scope problems: site count beyond the
                          // explorable bound, no/too many scripted accesses,
                          // a fault the model-mode cluster cannot express
                          // (stochastic windows, crash-on-commit triggers,
                          // regime shifts), or depth/state budgets outside
                          // the tractable range
};

/// Stable kebab-case slug for a code (what the report prints).
const char* audit_code_name(AuditCode code);

enum class AuditSeverity { kWarning, kError };

struct AuditFinding {
  AuditCode code;
  AuditSeverity severity;
  std::string message;
};

/// Result of statically auditing one configuration file.
struct AuditReport {
  std::vector<AuditFinding> findings;

  std::size_t error_count() const;
  std::size_t warning_count() const;
  /// True when nothing rose to error severity.
  bool ok() const { return error_count() == 0; }
  bool has(AuditCode code) const;
};

/// Audits the extended check-configuration format: everything
/// `load_system` accepts (see topology_io.hpp) plus three checker-only
/// directives that describe the quorum state to validate:
///
/// ```
/// quorum 3 5            # audit this (q_r, q_w) assignment
/// total_votes 7         # declared vote total, cross-checked against sum
/// qr_version 2 4        # site 2 believes QR version 4
/// qr_version default 5
///
/// # adaptive-loop block (src/adapt), audited under kAdaptConfig:
/// adapt on              # closed-loop reoptimization enabled
/// adapt_epoch 50        # epoch length in simulated seconds (> 0)
/// adapt_threshold 0.02  # hysteresis gain threshold, in [0, 1]
/// adapt_dwell 2         # epochs the gain must persist (>= 1)
/// adapt_min_write 0.5   # §5.4 write floor A(0, q_r) >= A_w, in [0, 1]
/// adapt_p 0.96          # assumed site reliability for the floor check
/// gossip on             # §2.2 QR propagation (off + adapt on = error)
/// ```
///
/// Without a `quorum` directive the canonical family q_w = T - q_r + 1 is
/// assumed and only the structural audits run. Checker directives are
/// stripped before the remainder is handed to `io::load_system`, so every
/// topology/vote/reliability feature keeps its one parser.
AuditReport audit_config(std::istream& in);
AuditReport audit_config_file(const std::string& path);

/// Writes the report, one finding per line:
/// `error\tquorum-intersection\tmessage...` — stable, grep- and
/// machine-friendly (this is what quora-check emits and CI parses).
void write_report(std::ostream& out, const AuditReport& report);

/// Same content as a JSON array of {code, severity, path, message}
/// objects — the shared CI artifact schema also emitted by `quora_lint
/// --json` (which adds tag/line/column; consumers must treat fields as
/// optional). `path` names the audited file in every object; when empty
/// the field is omitted (stream-based audits have no file).
void write_report_json(std::ostream& out, const AuditReport& report,
                       std::string_view path = {});

/// One finding as a JSON object (no surrounding array), for callers that
/// assemble a combined array across several reports — quora_check emits
/// a single array covering every FILE argument this way.
void write_finding_json(std::ostream& out, const AuditFinding& finding,
                        std::string_view path);

// ---------------------------------------------------------------------------
// SARIF 2.1.0 — the shared static-analysis interchange writer behind
// `quora_lint --sarif` and `quora_check --sarif`, consumed by GitHub
// code scanning. Tool-agnostic: callers map their finding type onto
// SarifResult rows and their check taxonomy onto SarifRule entries.

/// One reportingDescriptor in the driver's rule table.
struct SarifRule {
  std::string id;                 // stable rule id: "L006", "quorum-range"
  std::string name;               // kebab-case short name
  std::string short_description;  // one-line summary
};

/// One result. `level` must be a SARIF level: "error", "warning",
/// "note", or "none". An empty `path` omits the physical location
/// (stream-based audits have no file); line/column 0 omit the region.
struct SarifResult {
  std::string rule_id;
  std::string level;
  std::string message;
  std::string path;    // repo-relative artifact URI
  unsigned line = 0;   // 1-based
  unsigned column = 0; // 1-based
};

/// Writes a complete single-run SARIF 2.1.0 log: `$schema` + `version`,
/// one run whose tool.driver carries `tool_name`/`tool_version` and the
/// rule table, and one result per row (with ruleIndex resolved against
/// the table when the id is present there).
void write_sarif(std::ostream& out, std::string_view tool_name,
                 std::string_view tool_version,
                 const std::vector<SarifRule>& rules,
                 const std::vector<SarifResult>& results);

/// The audit-check taxonomy as SARIF rules (every AuditCode).
std::vector<SarifRule> audit_sarif_rules();

/// Maps one audit finding onto a SARIF result row.
SarifResult audit_sarif_result(const AuditFinding& finding,
                               std::string_view path);

} // namespace quora::io
