#include "io/config_audit.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <optional>
#include <ostream>
#include <sstream>
#include <vector>

#include "quorum/coterie.hpp"

namespace quora::io {
namespace {

/// Checker-only directives peeled off before `load_system` sees the rest.
struct CheckDirectives {
  std::optional<quorum::QuorumSpec> quorum;
  std::optional<net::Vote> declared_total;
  std::optional<std::uint64_t> version_default;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> versions;  // site, v
  // Adaptive-loop block (src/adapt); audited under kAdaptConfig.
  bool adapt_declared = false;  // any adapt* / gossip directive appeared
  std::optional<bool> adapt_enabled;
  std::optional<double> adapt_epoch;
  std::optional<double> adapt_threshold;
  std::optional<std::int64_t> adapt_dwell;
  std::optional<double> adapt_min_write;
  std::optional<double> adapt_p;
  std::optional<bool> gossip_enabled;
  std::string system_text;  // remainder, for load_system
};

[[noreturn]] void parse_fail(std::size_t line, const std::string& what) {
  throw ParseError(line, what);
}

CheckDirectives split_directives(std::istream& in) {
  CheckDirectives d;
  std::ostringstream rest;
  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const auto hash = raw.find('#');
    const std::string line = hash == std::string::npos ? raw : raw.substr(0, hash);
    std::istringstream cells(line);
    std::string directive;
    if (!(cells >> directive)) {
      rest << raw << '\n';
      continue;
    }
    if (directive == "quorum") {
      net::Vote q_r = 0;
      net::Vote q_w = 0;
      if (!(cells >> q_r >> q_w)) parse_fail(line_no, "'quorum' needs q_r and q_w");
      d.quorum = quorum::QuorumSpec{q_r, q_w};
    } else if (directive == "total_votes") {
      net::Vote t = 0;
      if (!(cells >> t)) parse_fail(line_no, "'total_votes' needs a count");
      d.declared_total = t;
    } else if (directive == "qr_version") {
      std::string target;
      std::uint64_t v = 0;
      if (!(cells >> target >> v)) {
        parse_fail(line_no, "'qr_version' needs a site (or 'default') and a version");
      }
      if (target == "default") {
        d.version_default = v;
      } else {
        std::uint64_t site = 0;
        try {
          site = std::stoull(target);
        } catch (const std::exception&) {
          parse_fail(line_no, "'qr_version' site must be numeric or 'default'");
        }
        d.versions.emplace_back(site, v);
      }
    } else if (directive == "adapt" || directive == "gossip") {
      std::string state;
      if (!(cells >> state) || (state != "on" && state != "off")) {
        parse_fail(line_no, "'" + directive + "' needs 'on' or 'off'");
      }
      d.adapt_declared = true;
      if (directive == "adapt") {
        d.adapt_enabled = (state == "on");
      } else {
        d.gossip_enabled = (state == "on");
      }
    } else if (directive == "adapt_epoch" || directive == "adapt_threshold" ||
               directive == "adapt_min_write" || directive == "adapt_p") {
      double v = 0.0;
      if (!(cells >> v)) parse_fail(line_no, "'" + directive + "' needs a value");
      d.adapt_declared = true;
      if (directive == "adapt_epoch") d.adapt_epoch = v;
      else if (directive == "adapt_threshold") d.adapt_threshold = v;
      else if (directive == "adapt_min_write") d.adapt_min_write = v;
      else d.adapt_p = v;
    } else if (directive == "adapt_dwell") {
      std::int64_t n = 0;
      if (!(cells >> n)) parse_fail(line_no, "'adapt_dwell' needs an epoch count");
      d.adapt_declared = true;
      d.adapt_dwell = n;
    } else {
      rest << raw << '\n';
      continue;
    }
    std::string extra;
    if (cells >> extra) parse_fail(line_no, "trailing junk '" + extra + "'");
  }
  d.system_text = rest.str();
  return d;
}

class Auditor {
public:
  AuditReport run(std::istream& in) {
    CheckDirectives d;
    std::optional<SystemSpec> spec;
    try {
      d = split_directives(in);
      std::istringstream system_in(d.system_text);
      spec = load_system(system_in);
    } catch (const std::exception& e) {
      error(AuditCode::kParseError, e.what());
      return std::move(report_);
    }
    const net::Topology& topo = spec->topology;
    const net::Vote total = topo.total_votes();

    audit_votes(topo, d);
    audit_static_components(topo, d);
    audit_quorum(topo, d);
    audit_versions(topo, d);
    audit_domains(topo, d);
    audit_adapt(topo, d);
    if (d.quorum && d.quorum->valid(total)) audit_coteries(topo, *d.quorum);
    return std::move(report_);
  }

private:
  void add(AuditCode code, AuditSeverity severity, std::string message) {
    report_.findings.push_back(AuditFinding{code, severity, std::move(message)});
  }
  void error(AuditCode code, std::string message) {
    add(code, AuditSeverity::kError, std::move(message));
  }
  void warn(AuditCode code, std::string message) {
    add(code, AuditSeverity::kWarning, std::move(message));
  }

  // Failure-domain discipline. The parser is deliberately lax (duplicate
  // `domain` lines are last-wins) so this audit — not a hard parse error —
  // is where conflicting definitions surface.
  void audit_domains(const net::Topology& topo, const CheckDirectives& d) {
    // Duplicate `domain SITE ...` lines in the source text.
    std::istringstream lines(d.system_text);
    std::string raw;
    std::vector<std::string> seen_targets;
    while (std::getline(lines, raw)) {
      const auto hash = raw.find('#');
      std::istringstream cells(hash == std::string::npos ? raw
                                                         : raw.substr(0, hash));
      std::string directive;
      std::string target;
      if (!(cells >> directive >> target) || directive != "domain") continue;
      if (std::find(seen_targets.begin(), seen_targets.end(), target) !=
          seen_targets.end()) {
        error(AuditCode::kDomainConfig,
              "site " + target +
                  " has more than one 'domain' definition (last wins; "
                  "remove the overlap)");
      } else {
        seen_targets.push_back(target);
      }
    }
    if (!topo.has_domains()) return;
    // A site whose full path is an interior node of another site's path
    // ("rg0" vs "rg0/dc1") makes domain membership ambiguous to readers.
    std::vector<std::string> paths;
    for (net::SiteId s = 0; s < topo.site_count(); ++s) {
      const std::string& p = topo.domain(s);
      if (!p.empty() &&
          std::find(paths.begin(), paths.end(), p) == paths.end()) {
        paths.push_back(p);
      }
    }
    for (const std::string& a : paths) {
      for (const std::string& b : paths) {
        if (a.size() < b.size() && net::Topology::domain_contains(a, b)) {
          warn(AuditCode::kDomainConfig,
               "domain '" + a + "' is both a site's full path and an "
               "ancestor of '" + b + "': overlapping domain definitions");
        }
      }
    }
  }

  void audit_votes(const net::Topology& topo, const CheckDirectives& d) {
    const net::Vote total = topo.total_votes();
    if (d.declared_total && *d.declared_total != total) {
      error(AuditCode::kVoteSumMismatch,
            "declared total_votes " + std::to_string(*d.declared_total) +
                " but site votes sum to " + std::to_string(total));
    }
    std::uint32_t zero_vote_sites = 0;
    for (net::SiteId s = 0; s < topo.site_count(); ++s) {
      if (topo.votes(s) == 0) ++zero_vote_sites;
    }
    if (zero_vote_sites > 0) {
      warn(AuditCode::kZeroVoteSite,
           std::to_string(zero_vote_sites) +
               " site(s) hold zero votes (witness-style copies: they can "
               "store data but never contribute to a quorum)");
    }
    if (total % 2 == 0) {
      warn(AuditCode::kEvenVoteTotal,
           "total votes T = " + std::to_string(total) +
               " is even: every vote assignment with an even total is "
               "dominated (an odd-total assignment operates strictly more "
               "often; Garcia-Molina & Barbara)");
    }
  }

  /// Static connectivity of the topology graph itself — everything up.
  /// Votes stranded outside the largest static component can never merge
  /// with it, so quorums above that component's vote total are dead.
  void audit_static_components(const net::Topology& topo,
                               const CheckDirectives& d) {
    const std::uint32_t n = topo.site_count();
    std::vector<std::int32_t> label(n, -1);
    std::vector<net::SiteId> stack;
    std::vector<net::Vote> comp_votes;
    for (net::SiteId root = 0; root < n; ++root) {
      if (label[root] != -1) continue;
      const auto comp = static_cast<std::int32_t>(comp_votes.size());
      net::Vote votes = 0;
      stack.assign(1, root);
      label[root] = comp;
      while (!stack.empty()) {
        const net::SiteId s = stack.back();
        stack.pop_back();
        votes += topo.votes(s);
        for (const net::Topology::Edge& e : topo.neighbors(s)) {
          if (label[e.neighbor] != -1) continue;
          label[e.neighbor] = comp;
          stack.push_back(e.neighbor);
        }
      }
      comp_votes.push_back(votes);
    }
    max_static_votes_ = *std::max_element(comp_votes.begin(), comp_votes.end());
    if (comp_votes.size() > 1) {
      const net::Vote stranded =
          topo.total_votes() - max_static_votes_;
      error(AuditCode::kUnreachableVotes,
            "topology splits into " + std::to_string(comp_votes.size()) +
                " static components; " + std::to_string(stranded) +
                " vote(s) can never join the largest component (" +
                std::to_string(max_static_votes_) + " of " +
                std::to_string(topo.total_votes()) + " votes)");
    }
    // A quorum that exceeds what the best-connected component can ever
    // assemble is unreachable even with zero failures.
    if (d.quorum &&
        (d.quorum->q_r > max_static_votes_ || d.quorum->q_w > max_static_votes_)) {
      error(AuditCode::kUnreachableQuorum,
            "q_r=" + std::to_string(d.quorum->q_r) + ", q_w=" +
                std::to_string(d.quorum->q_w) +
                " but no static component can assemble more than " +
                std::to_string(max_static_votes_) + " vote(s)");
    }
  }

  void audit_quorum(const net::Topology& topo, const CheckDirectives& d) {
    if (!d.quorum) return;
    const net::Vote total = topo.total_votes();
    const quorum::QuorumSpec spec = *d.quorum;
    if (spec.q_r < 1 || spec.q_w < 1 || spec.q_r > total || spec.q_w > total) {
      error(AuditCode::kQuorumRange,
            "quorum (" + std::to_string(spec.q_r) + ", " +
                std::to_string(spec.q_w) + ") outside [1, T=" +
                std::to_string(total) + "]");
      return;  // the remaining conditions are meaningless out of range
    }
    if (spec.q_r + spec.q_w <= total) {
      error(AuditCode::kQuorumIntersection,
            "q_r + q_w = " + std::to_string(spec.q_r + spec.q_w) +
                " <= T = " + std::to_string(total) +
                ": a read quorum and a write quorum can be disjoint, so a "
                "read may miss the latest write (condition 1 of §2.1)");
    }
    if (2 * spec.q_w <= total) {
      error(AuditCode::kWriteWriteIntersection,
            "2*q_w = " + std::to_string(2 * spec.q_w) + " <= T = " +
                std::to_string(total) +
                ": two components could write simultaneously (condition 2 "
                "of §2.1)");
    }
    if (spec.q_r + spec.q_w > total + 1) {
      warn(AuditCode::kDominatedAssignment,
           "q_w = " + std::to_string(spec.q_w) + " exceeds T - q_r + 1 = " +
               std::to_string(total - spec.q_r + 1) +
               ": the canonical assignment with the same q_r intersects "
               "identically and operates strictly more often");
    }
  }

  void audit_versions(const net::Topology& topo, const CheckDirectives& d) {
    if (!d.version_default && d.versions.empty()) return;
    const std::uint64_t fallback = d.version_default.value_or(1);
    std::vector<std::uint64_t> version(topo.site_count(), fallback);
    for (const auto& [site, v] : d.versions) {
      if (site >= topo.site_count()) {
        error(AuditCode::kParseError,
              "qr_version names site " + std::to_string(site) +
                  " but the topology has " + std::to_string(topo.site_count()) +
                  " sites");
        return;
      }
      version[site] = v;
    }
    const std::uint64_t newest = *std::max_element(version.begin(), version.end());
    std::uint32_t stale = 0;
    for (const std::uint64_t v : version) {
      if (v < newest) ++stale;
    }
    if (stale > 0) {
      error(AuditCode::kStaleQrVersion,
            std::to_string(stale) +
                " site(s) hold a QR version older than " +
                std::to_string(newest) +
                ": the §2.2 monotonicity discipline requires every merge "
                "to adopt the newest assignment before serving accesses");
    }
  }

  /// Static sanity for the adaptive-loop block (src/adapt). The controller
  /// itself revalidates at attach time; this audit catches the same
  /// mistakes before a long soak run is launched.
  void audit_adapt(const net::Topology& topo, const CheckDirectives& d) {
    if (!d.adapt_declared) return;
    const bool enabled = d.adapt_enabled.value_or(false);
    if (d.adapt_threshold &&
        !(*d.adapt_threshold >= 0.0 && *d.adapt_threshold <= 1.0)) {
      error(AuditCode::kAdaptConfig,
            "adapt_threshold " + std::to_string(*d.adapt_threshold) +
                " outside [0, 1]: the hysteresis gate compares predicted "
                "availability gains, which are probabilities");
    }
    if (d.adapt_dwell && *d.adapt_dwell < 1) {
      error(AuditCode::kAdaptConfig,
            "adapt_dwell " + std::to_string(*d.adapt_dwell) +
                " < 1 epoch: the installer would fire on a single noisy "
                "estimate, defeating the hysteresis");
    }
    if (d.adapt_epoch && !(*d.adapt_epoch > 0.0)) {
      error(AuditCode::kAdaptConfig,
            "adapt_epoch " + std::to_string(*d.adapt_epoch) +
                " must be positive simulated seconds");
    }
    if (d.adapt_p && !(*d.adapt_p > 0.0 && *d.adapt_p <= 1.0)) {
      error(AuditCode::kAdaptConfig,
            "adapt_p " + std::to_string(*d.adapt_p) +
                " outside (0, 1]: footnote-4 conditioning divides by the "
                "operational probability");
    }
    if (enabled && d.gossip_enabled && !*d.gossip_enabled) {
      error(AuditCode::kAdaptConfig,
            "adapt on with gossip off: an installed reassignment could "
            "never propagate (§2.2 carries assignments on messages), so "
            "the loop would fork the system's view of the quorum");
    }
    if (d.adapt_min_write) {
      const double floor = *d.adapt_min_write;
      if (!(floor >= 0.0 && floor <= 1.0)) {
        error(AuditCode::kAdaptConfig,
              "adapt_min_write " + std::to_string(floor) + " outside [0, 1]");
        return;
      }
      // Best achievable write availability under *independent* site
      // failures with reliability p: the most write-favorable canonical
      // assignment has q_w = T - floor(T/2) + 1 (q_r at its §3 ceiling).
      // If even P[V >= q_w] under the full vote distribution misses the
      // floor, no assignment the optimizer can ever pick satisfies §5.4 —
      // the constrained stage would report infeasible every epoch.
      const net::Vote total = topo.total_votes();
      if (total == 0) return;
      const double p = d.adapt_p.value_or(0.96);
      std::vector<double> dist(static_cast<std::size_t>(total) + 1, 0.0);
      dist[0] = 1.0;
      for (net::SiteId s = 0; s < topo.site_count(); ++s) {
        const net::Vote v = topo.votes(s);
        if (v == 0) continue;
        for (std::size_t k = dist.size(); k-- > v;) {
          dist[k] = dist[k] * (1.0 - p) + dist[k - v] * p;
        }
        dist[0] *= 1.0 - p;
        for (std::size_t k = 1; k < static_cast<std::size_t>(v); ++k) {
          dist[k] *= 1.0 - p;
        }
      }
      const net::Vote best_q_w = total - total / 2 + 1 > total
                                     ? total
                                     : total - total / 2 + 1;
      double best_w = 0.0;
      for (std::size_t k = best_q_w; k < dist.size(); ++k) best_w += dist[k];
      if (best_w + 1e-9 < floor) {
        error(AuditCode::kAdaptConfig,
              "adapt_min_write " + std::to_string(floor) +
                  " is infeasible for this topology: even the most "
                  "write-favorable assignment (q_w = " +
                  std::to_string(best_q_w) + ") reaches only W = " +
                  std::to_string(best_w) + " at site reliability p = " +
                  std::to_string(p));
      }
    }
  }

  /// Set-system cross-check for small systems: enumerate the minimal vote
  /// groups and verify the Garcia-Molina & Barbara properties directly.
  void audit_coteries(const net::Topology& topo, const quorum::QuorumSpec& spec) {
    constexpr std::uint32_t kMaxSites = 20;
    constexpr std::size_t kMaxGroups = 4096;
    if (topo.site_count() > kMaxSites) return;
    const quorum::Coterie read =
        quorum::coterie_from_votes(topo.vote_assignment(), spec.q_r);
    const quorum::Coterie write =
        quorum::coterie_from_votes(topo.vote_assignment(), spec.q_w);
    if (read.quorums().size() > kMaxGroups || write.quorums().size() > kMaxGroups) {
      return;
    }
    if (!write.has_intersection_property()) {
      error(AuditCode::kCoterieIntersection,
            "enumerated write groups are not pairwise intersecting "
            "(set-system witness of the 2*q_w > T violation)");
    }
    if (!read.is_minimal() || !write.is_minimal()) {
      error(AuditCode::kCoterieMinimality,
            "enumerated quorum groups are not an antichain");
    }
    if (!quorum::bicoterie_consistent(read, write)) {
      // Distinct from the vote-level check: this is the enumerated witness
      // that some concrete read group misses some concrete write group.
      error(AuditCode::kCoterieIntersection,
            "a concrete read group and write group fail to intersect");
    }
  }

  AuditReport report_;
  net::Vote max_static_votes_ = 0;
};

const char* severity_name(AuditSeverity severity) {
  return severity == AuditSeverity::kError ? "error" : "warning";
}

void write_json_string(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default: out << c;
    }
  }
  out << '"';
}

} // namespace

const char* audit_code_name(AuditCode code) {
  switch (code) {
    case AuditCode::kParseError: return "parse-error";
    case AuditCode::kQuorumRange: return "quorum-range";
    case AuditCode::kQuorumIntersection: return "quorum-intersection";
    case AuditCode::kWriteWriteIntersection: return "write-write-intersection";
    case AuditCode::kDominatedAssignment: return "dominated-assignment";
    case AuditCode::kVoteSumMismatch: return "vote-sum-mismatch";
    case AuditCode::kStaleQrVersion: return "stale-qr-version";
    case AuditCode::kUnreachableQuorum: return "unreachable-quorum";
    case AuditCode::kUnreachableVotes: return "unreachable-votes";
    case AuditCode::kZeroVoteSite: return "zero-vote-site";
    case AuditCode::kEvenVoteTotal: return "even-vote-total";
    case AuditCode::kCoterieIntersection: return "coterie-intersection";
    case AuditCode::kCoterieMinimality: return "coterie-minimality";
    case AuditCode::kChaosBadSchedule: return "chaos-bad-schedule";
    case AuditCode::kChaosUnknownTarget: return "chaos-unknown-target";
    case AuditCode::kDomainConfig: return "domain-config";
    case AuditCode::kAdaptConfig: return "adapt-config";
    case AuditCode::kModelScopeConfig: return "model-scope-config";
  }
  return "unknown";
}

std::size_t AuditReport::error_count() const {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(), [](const AuditFinding& f) {
        return f.severity == AuditSeverity::kError;
      }));
}

std::size_t AuditReport::warning_count() const {
  return findings.size() - error_count();
}

bool AuditReport::has(AuditCode code) const {
  return std::any_of(findings.begin(), findings.end(),
                     [code](const AuditFinding& f) { return f.code == code; });
}

AuditReport audit_config(std::istream& in) { return Auditor().run(in); }

AuditReport audit_config_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open config file: " + path);
  return audit_config(in);
}

void write_report(std::ostream& out, const AuditReport& report) {
  for (const AuditFinding& f : report.findings) {
    out << severity_name(f.severity) << '\t' << audit_code_name(f.code) << '\t'
        << f.message << '\n';
  }
}

void write_finding_json(std::ostream& out, const AuditFinding& finding,
                        std::string_view path) {
  out << "{\"code\": ";
  write_json_string(out, audit_code_name(finding.code));
  out << ", \"severity\": ";
  write_json_string(out, severity_name(finding.severity));
  if (!path.empty()) {
    out << ", \"path\": ";
    write_json_string(out, std::string(path));
  }
  out << ", \"message\": ";
  write_json_string(out, finding.message);
  out << "}";
}

void write_report_json(std::ostream& out, const AuditReport& report,
                       std::string_view path) {
  out << "[";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    out << (i == 0 ? "\n  " : ",\n  ");
    write_finding_json(out, report.findings[i], path);
  }
  out << (report.findings.empty() ? "]\n" : "\n]\n");
}

void write_sarif(std::ostream& out, std::string_view tool_name,
                 std::string_view tool_version,
                 const std::vector<SarifRule>& rules,
                 const std::vector<SarifResult>& results) {
  out << "{\n"
         "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/"
         "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n"
         "  \"version\": \"2.1.0\",\n"
         "  \"runs\": [\n"
         "    {\n"
         "      \"tool\": {\n"
         "        \"driver\": {\n"
         "          \"name\": ";
  write_json_string(out, std::string(tool_name));
  if (!tool_version.empty()) {
    out << ",\n          \"version\": ";
    write_json_string(out, std::string(tool_version));
  }
  out << ",\n          \"rules\": [";
  for (std::size_t i = 0; i < rules.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "            {\"id\": ";
    write_json_string(out, rules[i].id);
    out << ", \"name\": ";
    write_json_string(out, rules[i].name);
    out << ", \"shortDescription\": {\"text\": ";
    write_json_string(out, rules[i].short_description);
    out << "}}";
  }
  out << (rules.empty() ? "]\n" : "\n          ]\n");
  out << "        }\n"
         "      },\n"
         "      \"results\": [";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SarifResult& r = results[i];
    out << (i == 0 ? "\n" : ",\n") << "        {\"ruleId\": ";
    write_json_string(out, r.rule_id);
    for (std::size_t j = 0; j < rules.size(); ++j) {
      if (rules[j].id == r.rule_id) {
        out << ", \"ruleIndex\": " << j;
        break;
      }
    }
    out << ", \"level\": ";
    write_json_string(out, r.level);
    out << ", \"message\": {\"text\": ";
    write_json_string(out, r.message);
    out << "}";
    if (!r.path.empty()) {
      out << ", \"locations\": [{\"physicalLocation\": "
             "{\"artifactLocation\": {\"uri\": ";
      write_json_string(out, r.path);
      out << "}";
      if (r.line > 0) {
        out << ", \"region\": {\"startLine\": " << r.line;
        if (r.column > 0) out << ", \"startColumn\": " << r.column;
        out << "}";
      }
      out << "}}]";
    }
    out << "}";
  }
  out << (results.empty() ? "]\n" : "\n      ]\n");
  out << "    }\n"
         "  ]\n"
         "}\n";
}

std::vector<SarifRule> audit_sarif_rules() {
  static constexpr AuditCode kAll[] = {
      AuditCode::kParseError,
      AuditCode::kQuorumRange,
      AuditCode::kQuorumIntersection,
      AuditCode::kWriteWriteIntersection,
      AuditCode::kDominatedAssignment,
      AuditCode::kVoteSumMismatch,
      AuditCode::kStaleQrVersion,
      AuditCode::kUnreachableQuorum,
      AuditCode::kUnreachableVotes,
      AuditCode::kZeroVoteSite,
      AuditCode::kEvenVoteTotal,
      AuditCode::kCoterieIntersection,
      AuditCode::kCoterieMinimality,
      AuditCode::kChaosBadSchedule,
      AuditCode::kChaosUnknownTarget,
      AuditCode::kDomainConfig,
      AuditCode::kAdaptConfig,
      AuditCode::kModelScopeConfig,
  };
  std::vector<SarifRule> rules;
  for (const AuditCode code : kAll) {
    SarifRule rule;
    rule.id = audit_code_name(code);
    rule.name = audit_code_name(code);
    rule.short_description =
        "configuration audit: " + std::string(audit_code_name(code));
    rules.push_back(std::move(rule));
  }
  return rules;
}

SarifResult audit_sarif_result(const AuditFinding& finding,
                               std::string_view path) {
  SarifResult r;
  r.rule_id = audit_code_name(finding.code);
  r.level = finding.severity == AuditSeverity::kError ? "error" : "warning";
  r.message = finding.message;
  r.path = std::string(path);
  return r;
}

} // namespace quora::io
