#include "io/topology_io.hpp"

#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <algorithm>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "net/builders.hpp"

namespace quora::io {
namespace {

struct Builder {
  std::string name = "topology";
  std::uint32_t sites = 0;
  bool sites_seen = false;
  net::Vote default_vote = 1;
  std::vector<std::pair<net::SiteId, net::Vote>> explicit_votes;
  std::vector<net::Link> links;
  std::set<std::pair<net::SiteId, net::SiteId>> link_set;
  // Reliability directives, resolved after all links exist.
  bool any_rel = false;
  double site_rel_default = 0.96;
  double link_rel_default = 0.96;
  std::vector<std::pair<net::SiteId, double>> site_rels;
  struct LinkRel {
    net::SiteId a;
    net::SiteId b;
    double rel;
    std::size_t line;
  };
  std::vector<LinkRel> link_rels;
  // Domain / latency annotations, resolved after all links exist.
  struct DomainDecl {
    net::SiteId site;
    std::string path;
    std::size_t line;
  };
  std::vector<DomainDecl> domains;
  bool any_lat = false;
  bool has_lat_default = false;
  net::LinkLatency lat_default;
  struct LinkLat {
    net::SiteId a;
    net::SiteId b;
    net::LinkLatency lat;
    std::size_t line;
  };
  std::vector<LinkLat> link_lats;

  bool add_link(net::SiteId a, net::SiteId b) {
    const auto key = std::minmax(a, b);
    if (!link_set.insert(key).second) return false;
    links.push_back(net::Link{key.first, key.second});
    return true;
  }
};

net::SiteId parse_site(const Builder& b, const std::string& token,
                       std::size_t line) {
  std::size_t pos = 0;
  unsigned long value = 0;
  try {
    value = std::stoul(token, &pos);
  } catch (const std::exception&) {
    throw ParseError(line, "expected a site id, got '" + token + "'");
  }
  if (pos != token.size()) {
    throw ParseError(line, "trailing junk in site id '" + token + "'");
  }
  if (value >= b.sites) {
    throw ParseError(line, "site " + token + " out of range (sites " +
                               std::to_string(b.sites) + ")");
  }
  return static_cast<net::SiteId>(value);
}

} // namespace

SystemSpec load_system(std::istream& in) {
  Builder b;
  std::string raw;
  std::size_t line_no = 0;

  while (std::getline(in, raw)) {
    ++line_no;
    const auto hash = raw.find('#');
    const std::string line = hash == std::string::npos ? raw : raw.substr(0, hash);
    std::istringstream cells(line);
    std::string directive;
    if (!(cells >> directive)) continue;  // blank / comment-only

    if (directive == "sites") {
      if (b.sites_seen) throw ParseError(line_no, "duplicate 'sites' directive");
      if (!(cells >> b.sites) || b.sites == 0) {
        throw ParseError(line_no, "'sites' needs a positive count");
      }
      b.sites_seen = true;
      continue;
    }
    if (!b.sites_seen) {
      throw ParseError(line_no, "'sites N' must precede '" + directive + "'");
    }

    if (directive == "name") {
      if (!(cells >> b.name)) throw ParseError(line_no, "'name' needs a value");
    } else if (directive == "ring") {
      if (b.sites < 3) throw ParseError(line_no, "'ring' needs at least 3 sites");
      for (net::SiteId i = 0; i < b.sites; ++i) {
        b.add_link(i, (i + 1) % b.sites);
      }
    } else if (directive == "chords") {
      std::uint32_t k = 0;
      if (!(cells >> k)) throw ParseError(line_no, "'chords' needs a count");
      const auto order = net::chord_order(b.sites);
      if (k > order.size()) {
        throw ParseError(line_no, "only " + std::to_string(order.size()) +
                                      " chords exist for " +
                                      std::to_string(b.sites) + " sites");
      }
      for (std::uint32_t i = 0; i < k; ++i) b.add_link(order[i].a, order[i].b);
    } else if (directive == "complete") {
      for (net::SiteId a = 0; a < b.sites; ++a) {
        for (net::SiteId bb = a + 1; bb < b.sites; ++bb) b.add_link(a, bb);
      }
    } else if (directive == "link") {
      std::string sa;
      std::string sb;
      if (!(cells >> sa >> sb)) throw ParseError(line_no, "'link' needs two sites");
      const net::SiteId a = parse_site(b, sa, line_no);
      const net::SiteId bb = parse_site(b, sb, line_no);
      if (a == bb) throw ParseError(line_no, "self-loop link");
      if (!b.add_link(a, bb)) throw ParseError(line_no, "duplicate link");
    } else if (directive == "vote") {
      std::string target;
      net::Vote v = 0;
      if (!(cells >> target >> v)) {
        throw ParseError(line_no, "'vote' needs a site (or 'default') and a count");
      }
      if (target == "default") {
        b.default_vote = v;
      } else {
        b.explicit_votes.emplace_back(parse_site(b, target, line_no), v);
      }
    } else if (directive == "site_rel") {
      std::string target;
      double rel = 0.0;
      if (!(cells >> target >> rel) || !(rel > 0.0 && rel <= 1.0)) {
        throw ParseError(line_no,
                         "'site_rel' needs a site (or 'default') and a "
                         "reliability in (0,1]");
      }
      b.any_rel = true;
      if (target == "default") {
        b.site_rel_default = rel;
      } else {
        b.site_rels.emplace_back(parse_site(b, target, line_no), rel);
      }
    } else if (directive == "link_rel") {
      std::string sa;
      double rel = 0.0;
      if (!(cells >> sa)) {
        throw ParseError(line_no, "'link_rel' needs endpoints or 'default'");
      }
      b.any_rel = true;
      if (sa == "default") {
        if (!(cells >> rel) || !(rel > 0.0 && rel <= 1.0)) {
          throw ParseError(line_no, "'link_rel default' needs a reliability");
        }
        b.link_rel_default = rel;
      } else {
        std::string sb;
        if (!(cells >> sb >> rel) || !(rel > 0.0 && rel <= 1.0)) {
          throw ParseError(line_no,
                           "'link_rel' needs two sites and a reliability in "
                           "(0,1]");
        }
        b.link_rels.push_back(Builder::LinkRel{parse_site(b, sa, line_no),
                                               parse_site(b, sb, line_no), rel,
                                               line_no});
      }
    } else if (directive == "domain") {
      std::string target;
      std::string path;
      if (!(cells >> target >> path)) {
        throw ParseError(line_no, "'domain' needs a site and a path");
      }
      // Last assignment wins (the static auditor flags duplicates).
      b.domains.push_back(Builder::DomainDecl{parse_site(b, target, line_no),
                                              std::move(path), line_no});
    } else if (directive == "link_lat") {
      std::string sa;
      if (!(cells >> sa)) {
        throw ParseError(line_no, "'link_lat' needs endpoints or 'default'");
      }
      b.any_lat = true;
      net::LinkLatency lat;
      if (sa == "default") {
        if (!(cells >> lat.base >> lat.jitter) || lat.base < 0.0 ||
            lat.jitter < 0.0) {
          throw ParseError(line_no,
                           "'link_lat default' needs base and jitter >= 0");
        }
        b.has_lat_default = true;
        b.lat_default = lat;
      } else {
        std::string sb;
        if (!(cells >> sb >> lat.base >> lat.jitter) || lat.base < 0.0 ||
            lat.jitter < 0.0) {
          throw ParseError(
              line_no, "'link_lat' needs two sites, a base and a jitter >= 0");
        }
        b.link_lats.push_back(Builder::LinkLat{parse_site(b, sa, line_no),
                                               parse_site(b, sb, line_no), lat,
                                               line_no});
      }
    } else if (directive == "geo") {
      net::GeoSpec geo;
      if (!(cells >> geo.regions >> geo.dcs_per_region >> geo.racks_per_dc >>
            geo.sites_per_rack)) {
        throw ParseError(line_no,
                         "'geo' needs four tier counts: regions dcs racks "
                         "sites-per-rack");
      }
      if (!b.links.empty()) {
        throw ParseError(line_no, "'geo' must precede any link directive");
      }
      const std::uint64_t product = std::uint64_t{geo.regions} *
                                    geo.dcs_per_region * geo.racks_per_dc *
                                    geo.sites_per_rack;
      if (product == 0 || product != b.sites) {
        throw ParseError(line_no, "'geo' tier product " +
                                      std::to_string(product) +
                                      " != sites " + std::to_string(b.sites));
      }
      const net::Topology geo_topo = net::make_geo(geo);
      b.any_lat = true;
      for (net::LinkId l = 0; l < geo_topo.link_count(); ++l) {
        const net::Link& gl = geo_topo.link(l);
        b.add_link(gl.a, gl.b);
        b.link_lats.push_back(
            Builder::LinkLat{gl.a, gl.b, geo_topo.link_latency(l), line_no});
      }
      for (net::SiteId s = 0; s < geo_topo.site_count(); ++s) {
        b.domains.push_back(Builder::DomainDecl{s, geo_topo.domain(s), line_no});
      }
    } else {
      throw ParseError(line_no, "unknown directive '" + directive + "'");
    }

    std::string extra;
    if (cells >> extra) {
      throw ParseError(line_no, "trailing junk '" + extra + "'");
    }
  }

  if (!b.sites_seen) throw ParseError(line_no, "missing 'sites' directive");
  std::vector<net::Vote> votes(b.sites, b.default_vote);
  for (const auto& [site, v] : b.explicit_votes) votes[site] = v;

  SystemSpec spec{net::Topology(b.name, b.sites, b.links, std::move(votes)),
                  {},
                  {}};
  if (b.any_rel) {
    spec.site_reliability.assign(b.sites, b.site_rel_default);
    for (const auto& [site, rel] : b.site_rels) spec.site_reliability[site] = rel;
    spec.link_reliability.assign(b.links.size(), b.link_rel_default);
    for (const Builder::LinkRel& lr : b.link_rels) {
      const auto key = std::minmax(lr.a, lr.b);
      bool found = false;
      for (std::size_t i = 0; i < b.links.size(); ++i) {
        if (std::minmax(b.links[i].a, b.links[i].b) == key) {
          spec.link_reliability[i] = lr.rel;
          found = true;
          break;
        }
      }
      if (!found) {
        throw ParseError(lr.line, "'link_rel' names a link that does not exist");
      }
    }
  }
  for (Builder::DomainDecl& d : b.domains) {
    try {
      spec.topology.set_domain(d.site, std::move(d.path));
    } catch (const std::invalid_argument& e) {
      throw ParseError(d.line, e.what());
    }
  }
  if (b.any_lat) {
    if (b.has_lat_default) {
      for (net::LinkId l = 0; l < spec.topology.link_count(); ++l) {
        spec.topology.set_link_latency(l, b.lat_default);
      }
    }
    for (const Builder::LinkLat& ll : b.link_lats) {
      const net::LinkId l = spec.topology.find_link(ll.a, ll.b);
      if (l == spec.topology.link_count()) {
        throw ParseError(ll.line, "'link_lat' names a link that does not exist");
      }
      spec.topology.set_link_latency(l, ll.lat);
    }
  }
  return spec;
}

SystemSpec load_system_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open topology file: " + path);
  return load_system(in);
}

net::Topology load_topology(std::istream& in) { return load_system(in).topology; }

net::Topology load_topology_file(const std::string& path) {
  return load_system_file(path).topology;
}

void save_topology(std::ostream& out, const net::Topology& topo) {
  out << "# quora topology\n";
  out << "sites " << topo.site_count() << '\n';
  out << "name " << topo.name() << '\n';
  for (net::SiteId s = 0; s < topo.site_count(); ++s) {
    if (topo.votes(s) != 1) out << "vote " << s << ' ' << topo.votes(s) << '\n';
  }
  for (const net::Link& l : topo.links()) {
    out << "link " << l.a << ' ' << l.b << '\n';
  }
  if (topo.has_domains()) {
    for (net::SiteId s = 0; s < topo.site_count(); ++s) {
      if (!topo.domain(s).empty()) {
        out << "domain " << s << ' ' << topo.domain(s) << '\n';
      }
    }
  }
  if (topo.has_link_latencies()) {
    out << std::setprecision(17);
    for (net::LinkId l = 0; l < topo.link_count(); ++l) {
      const net::LinkLatency lat = topo.link_latency(l);
      out << "link_lat " << topo.link(l).a << ' ' << topo.link(l).b << ' '
          << lat.base << ' ' << lat.jitter << '\n';
    }
  }
}

void save_system(std::ostream& out, const SystemSpec& spec) {
  save_topology(out, spec.topology);
  const auto write_rels = [&out](const std::vector<double>& rels, auto emit) {
    for (std::size_t i = 0; i < rels.size(); ++i) emit(i, rels[i]);
  };
  out << std::setprecision(17);
  if (!spec.site_reliability.empty()) {
    write_rels(spec.site_reliability, [&](std::size_t i, double rel) {
      out << "site_rel " << i << ' ' << rel << '\n';
    });
  }
  if (!spec.link_reliability.empty()) {
    write_rels(spec.link_reliability, [&](std::size_t i, double rel) {
      const net::Link& l = spec.topology.link(static_cast<net::LinkId>(i));
      out << "link_rel " << l.a << ' ' << l.b << ' ' << rel << '\n';
    });
  }
}

} // namespace quora::io
