// The quorum protocol as it actually runs on the wire: a small cluster
// executing Gifford-style two-phase weighted voting with flooded vote
// requests, write-vote leases, commits, acks and timeouts (src/msg) —
// side by side with the paper's instantaneous oracle on the same event
// stream.
//
// Usage: protocol_trace [hop_latency]   (default 0.02 time units)

#include <cstdlib>
#include <iostream>

#include "msg/cluster.hpp"
#include "net/builders.hpp"
#include "report/table.hpp"

int main(int argc, char** argv) {
  using quora::report::TextTable;

  const double latency = argc > 1 ? std::atof(argv[1]) : 0.02;

  const quora::net::Topology topo = quora::net::make_ring_with_chords(15, 2);
  quora::msg::Cluster::Params params;
  params.spec = quora::quorum::from_read_quorum(15, 5);  // q_r=5, q_w=11
  params.mean_hop_latency = latency;
  params.phase_timeout = std::max(1.0, 30.0 * latency);
  params.alpha = 0.6;

  quora::msg::Cluster cluster(topo, params, /*seed=*/2026);
  cluster.run_decided_accesses(5'000);

  std::cout << "cluster: " << topo.name() << ", q_r=" << params.spec.q_r
            << " q_w=" << params.spec.q_w << ", hop latency "
            << TextTable::fmt(latency, 3) << "\n\n";

  // A short trace of individual outcomes.
  TextTable trace({"t(submit)", "site", "kind", "outcome", "version",
                   "decide latency"});
  std::size_t shown = 0;
  for (const auto& o : cluster.outcomes()) {
    if (shown >= 12) break;
    if (o.submit_time < 100.0) continue;  // skip warm start
    trace.add_row({TextTable::fmt(o.submit_time, 2), std::to_string(o.origin),
                   o.is_read ? "read" : "write",
                   o.granted ? "granted" : "denied", std::to_string(o.version),
                   TextTable::fmt(o.decide_time - o.submit_time, 3)});
    ++shown;
  }
  trace.print(std::cout);

  std::cout << "\ntotals over " << cluster.outcomes().size() << " accesses:\n"
            << "  implementation availability: "
            << TextTable::fmt(cluster.availability(), 4) << '\n'
            << "  instantaneous-oracle availability: "
            << TextTable::fmt(cluster.oracle_availability(), 4) << '\n'
            << "  committed writes: " << cluster.commits().size() << '\n'
            << "  messages: " << cluster.messages_sent() << "  (~"
            << TextTable::fmt(static_cast<double>(cluster.messages_sent()) /
                                  static_cast<double>(cluster.outcomes().size()),
                              1)
            << " per access)\n"
            << "\nTry a slower network (protocol_trace 0.2): the oracle "
               "holds steady while the\nreal protocol pays for timeouts and "
               "write-lease contention — the gap the\npaper's instantaneous "
               "model abstracts away.\n";
  return 0;
}
