// Adaptive quorum reassignment in action (§2.2 + §4.3 end to end).
//
// A 45-site network serves a workload that flips between a read-heavy day
// mix and a write-heavy night mix. An AdaptiveReassigner watches the
// access stream, re-estimates the component-size distribution and the
// read rate on-line, and installs better assignments through the
// version-numbered QR protocol whenever the predicted gain is large
// enough. The log below shows each phase's effective assignment drifting
// to that phase's optimum — and the safety counter proving no access was
// ever granted under a stale assignment.

#include <iostream>

#include "core/reassign.hpp"
#include "dyn/adaptive.hpp"
#include "metrics/collectors.hpp"
#include "net/builders.hpp"
#include "quorum/quorum_spec.hpp"
#include "report/table.hpp"
#include "sim/simulator.hpp"

int main() {
  using quora::report::TextTable;

  const quora::net::Topology topo = quora::net::make_ring_with_chords(45, 4);
  const quora::net::Vote total = topo.total_votes();

  quora::core::QuorumReassignment qr(topo, quora::quorum::majority(total));
  quora::dyn::AdaptiveReassigner::Options options;
  options.min_write_availability = 0.20;  // stay reassignable (see 5.4)
  quora::dyn::AdaptiveReassigner agent(topo, qr, options);

  std::uint64_t stale_grants = 0;
  quora::metrics::ProtocolMeter meter([&](const quora::sim::Simulator& sim,
                                          const quora::sim::AccessEvent& ev) {
    const auto type = ev.is_read ? quora::quorum::AccessType::kRead
                                 : quora::quorum::AccessType::kWrite;
    const auto decision = qr.request(sim.tracker(), ev.site, type);
    if (decision.granted &&
        qr.effective(sim.tracker(), ev.site).version != qr.latest_version()) {
      ++stale_grants;
    }
    return decision.granted;
  });

  quora::sim::SimConfig config;
  config.warmup_accesses = 5'000;

  quora::sim::AccessSpec spec;
  spec.alpha = 0.9;
  quora::sim::Simulator sim(topo, config, spec, /*seed=*/2026);
  sim.run_accesses(config.warmup_accesses);
  sim.add_access_observer(&meter);
  sim.add_access_observer(&agent);

  std::cout << "network: " << topo.name() << " (T=" << total
            << "), initial assignment: strict majority q_r=q_w=" << total / 2 + 1
            << "\n\n";

  TextTable table({"phase", "alpha", "accesses", "effective q_r/q_w (end)",
                   "version", "installs so far", "est. alpha"});
  const double phase_alpha[] = {0.9, 0.1, 0.9, 0.1, 0.9};
  std::uint64_t accesses = 0;
  for (std::size_t ph = 0; ph < std::size(phase_alpha); ++ph) {
    sim.set_access_alpha(phase_alpha[ph]);
    sim.run_accesses(60'000);
    accesses += 60'000;
    const auto eff = qr.effective(sim.tracker(), /*origin=*/0);
    table.add_row({std::to_string(ph + 1), TextTable::fmt(phase_alpha[ph], 1),
                   std::to_string(accesses),
                   std::to_string(eff.spec.q_r) + "/" + std::to_string(eff.spec.q_w),
                   std::to_string(eff.version), std::to_string(agent.installs()),
                   TextTable::fmt(agent.estimated_alpha(), 2)});
  }
  table.print(std::cout);

  std::cout << "\noverall availability under QR: "
            << TextTable::fmt(meter.availability(), 4)
            << "  (reads " << TextTable::fmt(meter.read_availability(), 4)
            << ", writes " << TextTable::fmt(meter.write_availability(), 4) << ")\n"
            << "accesses granted under a stale assignment: " << stale_grants
            << " (the QR protocol guarantees 0)\n"
            << "\nRead-heavy phases pull q_r down toward 1; write-heavy phases "
               "push it back up\ntoward majority — all installs ride the "
               "version-numbered QR protocol of 2.2.\n";
  return 0;
}
