// Capacity planning with a write SLA (§5.4 as a user-facing workflow).
//
// Scenario: an operations team runs a 35-site replicated configuration
// store. Reads dominate (alpha = 0.85), so the unconstrained optimum is
// read-one/write-all — but deployments must still be able to *write*
// configuration updates. The team requires a minimum write availability
// and wants the best read availability subject to that floor.
//
// Usage: capacity_planning [alpha] [write_floor]
//        defaults: alpha=0.85, write_floor=0.25

#include <cstdlib>
#include <iostream>

#include "core/optimize.hpp"
#include "metrics/experiment.hpp"
#include "net/builders.hpp"
#include "report/table.hpp"

int main(int argc, char** argv) {
  using quora::report::TextTable;

  const double alpha = argc > 1 ? std::atof(argv[1]) : 0.85;
  const double floor = argc > 2 ? std::atof(argv[2]) : 0.25;

  const quora::net::Topology topo = quora::net::make_ring_with_chords(35, 1);
  quora::sim::SimConfig config;
  config.warmup_accesses = 10'000;
  config.accesses_per_batch = 60'000;

  quora::metrics::MeasurePolicy policy;
  policy.alphas = {alpha};
  policy.batch.min_batches = 4;
  policy.batch.max_batches = 6;

  std::cout << "measuring " << topo.name() << " (T=" << topo.total_votes()
            << " votes) under the paper's failure model...\n\n";
  const auto curves = quora::metrics::measure_curves(topo, config, policy);
  const quora::core::AvailabilityCurve curve = curves.pooled_curve();

  const auto unconstrained = quora::core::optimize_exhaustive(curve, alpha);
  std::cout << "unconstrained optimum for alpha=" << TextTable::fmt(alpha, 2)
            << ": q_r=" << unconstrained.q_r() << ", q_w=" << unconstrained.q_w()
            << ", A=" << TextTable::fmt(unconstrained.value, 4)
            << " -- but write availability is only "
            << TextTable::pct(curve.write_availability(unconstrained.q_r()), 2)
            << "\n\n";

  TextTable table({"write SLA", "q_r", "q_w", "overall A", "read A", "write A"});
  for (const double sla : {floor / 2.0, floor, floor * 1.5}) {
    const auto best = quora::core::optimize_write_constrained(curve, alpha, sla);
    if (!best) {
      table.add_row({TextTable::pct(sla, 0), "-", "-", "infeasible", "-", "-"});
      continue;
    }
    table.add_row({TextTable::pct(sla, 0), std::to_string(best->q_r()),
                   std::to_string(best->q_w()), TextTable::fmt(best->value, 4),
                   TextTable::fmt(curve.read_availability(best->q_r()), 4),
                   TextTable::fmt(curve.write_availability(best->q_r()), 4)});
  }
  table.print(std::cout);

  std::cout << "\nPick the row matching your SLA; each is the *highest possible* "
               "availability\ngiven that floor (paper 5.4's constrained optimum)."
            << '\n';
  return 0;
}
