// Topology explorer: how does network shape change the optimal quorum
// assignment and the availability it buys?
//
// Compares ring / ring+chords / grid / tree / star / complete graphs of
// roughly equal size under the same failure model and read mix, printing
// each topology's optimal assignment, its availability, and the penalty
// for running plain majority instead.
//
// Usage: topology_explorer [alpha]   (default 0.6)

#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/optimize.hpp"
#include "metrics/experiment.hpp"
#include "net/builders.hpp"
#include "quorum/quorum_spec.hpp"
#include "report/table.hpp"

int main(int argc, char** argv) {
  using quora::report::TextTable;

  const double alpha = argc > 1 ? std::atof(argv[1]) : 0.6;

  std::vector<quora::net::Topology> topologies;
  topologies.push_back(quora::net::make_ring(36));
  topologies.push_back(quora::net::make_ring_with_chords(36, 6));
  topologies.push_back(quora::net::make_grid(6, 6));
  topologies.push_back(quora::net::make_binary_tree(36));
  topologies.push_back(quora::net::make_star(36));
  topologies.push_back(quora::net::make_fully_connected(36));

  quora::sim::SimConfig config;
  config.warmup_accesses = 10'000;
  config.accesses_per_batch = 50'000;

  quora::metrics::MeasurePolicy policy;
  policy.alphas = {alpha};
  policy.batch.min_batches = 4;
  policy.batch.max_batches = 6;

  std::cout << "alpha = " << TextTable::fmt(alpha, 2)
            << ", site/link reliability 0.96, one vote per site\n\n";

  TextTable table({"topology", "links", "opt q_r", "opt q_w", "A(opt)",
                   "A(majority)", "majority penalty"});
  for (const auto& topo : topologies) {
    const auto curves = quora::metrics::measure_curves(topo, config, policy);
    const auto curve = curves.pooled_curve();
    const auto best = quora::core::optimize_exhaustive(curve, alpha);
    const auto maj = quora::quorum::majority(topo.total_votes());
    const double a_maj = curve.value(alpha, maj.q_r, maj.q_w);
    table.add_row({topo.name(), std::to_string(topo.link_count()),
                   std::to_string(best.q_r()), std::to_string(best.q_w()),
                   TextTable::fmt(best.value, 4), TextTable::fmt(a_maj, 4),
                   TextTable::pct(best.value - a_maj, 1)});
  }
  table.print(std::cout);

  std::cout << "\nSparse topologies fragment into small components, so only "
               "tiny read quorums\nsucceed; dense ones keep a giant component "
               "alive and majority is near-optimal\n(the paper's 5.3/5.5 "
               "conclusions, here across six network families).\n";
  return 0;
}
