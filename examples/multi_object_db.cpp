// A small replicated database with three objects whose read/write mixes
// differ wildly — and per-object optimal quorum assignments from one
// shared measurement.
//
//   catalog  alpha = 0.98  (almost never written)
//   orders   alpha = 0.40  (write-heavy)
//   session  alpha = 0.75  (mixed)
//
// The component-size distribution is a property of the *network*, not of
// any object, so a single measurement pass feeds the Figure-1 optimizer
// once per object. The table compares each object's availability under
// its own optimum against a one-size-fits-all majority database.

#include <iostream>
#include <vector>

#include "core/optimize.hpp"
#include "db/database.hpp"
#include "metrics/experiment.hpp"
#include "net/builders.hpp"
#include "quorum/quorum_spec.hpp"
#include "report/table.hpp"

int main() {
  using quora::report::TextTable;

  const quora::net::Topology topo = quora::net::make_ring_with_chords(31, 3);
  const quora::net::Vote total = topo.total_votes();

  struct Workload {
    const char* name;
    double alpha;
  };
  const std::vector<Workload> objects{
      {"catalog", 0.98}, {"orders", 0.40}, {"session", 0.75}};

  // One measurement serves every object.
  quora::sim::SimConfig config;
  config.warmup_accesses = 10'000;
  config.accesses_per_batch = 80'000;
  quora::metrics::MeasurePolicy policy;
  policy.alphas.clear();
  for (const Workload& w : objects) policy.alphas.push_back(w.alpha);
  policy.batch.min_batches = 5;
  policy.batch.max_batches = 8;
  const auto curves = quora::metrics::measure_curves(topo, config, policy);
  const quora::core::AvailabilityCurve curve = curves.pooled_curve();

  const quora::quorum::QuorumSpec majority = quora::quorum::majority(total);
  std::vector<quora::db::Database::ObjectConfig> configs;

  TextTable table({"object", "alpha", "optimal q_r/q_w", "A(optimal)",
                   "A(majority)", "gain"});
  for (const Workload& w : objects) {
    const auto best = quora::core::optimize_write_constrained(curve, w.alpha,
                                                              /*A_w floor=*/0.10)
                          .value_or(quora::core::optimize_exhaustive(curve, w.alpha));
    const double a_majority = curve.value(w.alpha, majority.q_r, majority.q_w);
    table.add_row({w.name, TextTable::fmt(w.alpha, 2),
                   std::to_string(best.q_r()) + "/" + std::to_string(best.q_w()),
                   TextTable::fmt(best.value, 4), TextTable::fmt(a_majority, 4),
                   TextTable::pct(best.value - a_majority, 1)});
    configs.push_back({w.name, best.spec});
  }
  table.print(std::cout);

  // The assignments drop straight into the database layer.
  quora::db::Database db(topo, std::move(configs));
  std::cout << "\ndatabase ready: " << db.object_count()
            << " objects, per-object assignments installed\n"
            << "(each object keeps a 10% write-availability floor — 5.4's "
               "constraint —\nso deploys can still write the catalog during "
               "partitions)\n";
  return 0;
}
