// Heterogeneous deployment: two datacenters joined by a flaky WAN link —
// and a demonstration of the paper's central operational argument (§4.3):
// quorum assignments derived from an abstract model are only as good as
// the model, while assignments derived from *measured* component-size
// distributions reflect the failure modes that actually happen.
//
// DC-A has three solid machines, DC-B two cheaper ones; the WAN is the
// least reliable component. We:
//
//   1. plan votes+quorums with the exhaustive non-partitionable search
//      (core/vote_opt — the Ahamad-Ammar model: links never fail);
//   2. re-optimize the quorums with the paper's Figure-1 algorithm on the
//      *measured* distribution, WAN flaps and all;
//   3. validate both plans by independent partition-aware simulation.

#include <iostream>
#include <vector>

#include "core/optimize.hpp"
#include "core/vote_opt.hpp"
#include "metrics/collectors.hpp"
#include "metrics/experiment.hpp"
#include "net/topology.hpp"
#include "quorum/protocols.hpp"
#include "report/table.hpp"
#include "sim/simulator.hpp"

namespace {

using quora::report::TextTable;

double simulate(const quora::net::Topology& topo,
                const quora::sim::FailureProfile& profile,
                const quora::quorum::QuorumSpec& spec, double alpha,
                std::uint64_t seed) {
  const quora::quorum::QuorumConsensus engine(topo, spec);
  quora::sim::AccessSpec access;
  access.alpha = alpha;
  quora::sim::SimConfig config;
  config.warmup_accesses = 10'000;
  quora::sim::Simulator sim(topo, config, access, profile, seed);
  sim.run_accesses(config.warmup_accesses);
  quora::metrics::ProtocolMeter meter(quora::metrics::static_decider(engine));
  sim.add_access_observer(&meter);
  sim.run_accesses(300'000);
  return meter.availability();
}

} // namespace

int main() {
  // Sites 0-2: DC-A (reliable); sites 3-4: DC-B (cheaper).
  const std::vector<double> site_rel{0.99, 0.99, 0.99, 0.92, 0.92};
  constexpr double kWanRel = 0.85;
  constexpr double kLanRel = 0.999;
  constexpr double kAlpha = 0.7;

  const std::vector<quora::net::Link> links{
      {0, 1}, {0, 2}, {1, 2},  // DC-A mesh
      {3, 4},                  // DC-B pair
      {0, 3},                  // WAN
  };
  std::vector<double> link_rel(links.size(), kLanRel);
  link_rel.back() = kWanRel;

  quora::sim::SimConfig config;
  config.warmup_accesses = 10'000;
  config.accesses_per_batch = 120'000;
  const auto profile =
      quora::sim::FailureProfile::from_reliabilities(config, site_rel, link_rel);

  // Step 1: vote plan from the model that ignores link failures.
  const auto plan = quora::core::optimize_vote_assignment(site_rel, kAlpha, 3);
  std::string votes_str;
  for (const auto v : plan.votes) votes_str += std::to_string(v) + " ";
  std::cout << "non-partitionable plan: votes = " << votes_str
            << " q_r/q_w = " << plan.spec.q_r << "/" << plan.spec.q_w
            << "  predicted A = " << TextTable::fmt(plan.availability, 4)
            << "\n";

  // Step 2: measure the real component-size distribution for this vote
  // assignment (WAN flaps included) and re-run the Figure-1 optimizer.
  const quora::net::Topology weighted("two-dc-weighted", 5, links, plan.votes);
  quora::metrics::MeasurePolicy policy;
  policy.alphas = {kAlpha};
  policy.batch.min_batches = 5;
  policy.batch.max_batches = 8;
  policy.profile = profile;
  const auto curves = quora::metrics::measure_curves(weighted, config, policy);
  const auto measured = quora::core::optimize_exhaustive(curves.pooled_curve(),
                                                         kAlpha);
  std::cout << "measured-distribution plan: same votes, q_r/q_w = "
            << measured.q_r() << "/" << measured.q_w()
            << "  predicted A = " << TextTable::fmt(measured.value, 4) << "\n\n";

  // Step 3: validate everything by independent simulation.
  const quora::net::Topology uniform("two-dc-uniform", 5, links);
  const auto maj = quora::quorum::majority(uniform.total_votes());

  TextTable table({"configuration", "votes", "q_r/q_w", "predicted A",
                   "simulated A"});
  table.add_row({"uniform votes, majority", "1 1 1 1 1",
                 std::to_string(maj.q_r) + "/" + std::to_string(maj.q_w), "-",
                 TextTable::fmt(simulate(uniform, profile, maj, kAlpha, 11), 4)});
  table.add_row({"model-planned quorums", votes_str,
                 std::to_string(plan.spec.q_r) + "/" +
                     std::to_string(plan.spec.q_w),
                 TextTable::fmt(plan.availability, 4),
                 TextTable::fmt(
                     simulate(weighted, profile, plan.spec, kAlpha, 12), 4)});
  table.add_row({"measured-curve quorums", votes_str,
                 std::to_string(measured.q_r()) + "/" +
                     std::to_string(measured.q_w()),
                 TextTable::fmt(measured.value, 4),
                 TextTable::fmt(
                     simulate(weighted, profile, measured.spec, kAlpha, 13), 4)});
  table.print(std::cout);

  std::cout << "\nThe no-partition model overpredicts its own plan by ~8 "
               "points (the WAN flap\nis its blind spot) while the measured "
               "curve predicts within noise — and when\nthe blind spot does "
               "shift the optimum, only the measured curve can see it.\nThat "
               "is the paper's case (4.3) for on-line estimation over "
               "off-line models.\n";
  return 0;
}
