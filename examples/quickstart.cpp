// Quickstart: find the optimal quorum assignment for a replicated object
// on a 25-site ring-with-chords network, straight from the paper's
// Figure-1 algorithm.
//
//   1. model the network                    (net::make_ring_with_chords)
//   2. estimate the component-size density  (metrics::measure_curves — the
//      on-line estimator of §4.2 running inside the event simulator)
//   3. maximize A(alpha, q_r)               (core::optimize_exhaustive)
//
// Build & run:  ./build/examples/quickstart

#include <iostream>

#include "core/optimize.hpp"
#include "metrics/experiment.hpp"
#include "net/builders.hpp"
#include "report/table.hpp"

int main() {
  using quora::report::TextTable;

  // A 25-site ring with 4 extra chords; one copy and one vote per site.
  const quora::net::Topology topo = quora::net::make_ring_with_chords(25, 4);

  // The paper's stochastic model, scaled down for an instant demo.
  quora::sim::SimConfig config;
  config.warmup_accesses = 5'000;
  config.accesses_per_batch = 40'000;

  quora::metrics::MeasurePolicy policy;
  policy.alphas = {0.0, 0.5, 0.9};
  policy.batch.min_batches = 4;
  policy.batch.max_batches = 6;

  const quora::metrics::CurveResult curves =
      quora::metrics::measure_curves(topo, config, policy);
  const quora::core::AvailabilityCurve curve = curves.pooled_curve();

  std::cout << "network: " << topo.name() << "  T=" << topo.total_votes()
            << " votes\n\n";

  TextTable table({"alpha", "optimal q_r", "optimal q_w", "availability",
                   "read avail", "write avail"});
  for (const double alpha : policy.alphas) {
    const quora::core::OptResult best = quora::core::optimize_exhaustive(curve, alpha);
    table.add_row({TextTable::fmt(alpha, 2), std::to_string(best.q_r()),
                   std::to_string(best.q_w()), TextTable::fmt(best.value, 4),
                   TextTable::fmt(curve.read_availability(best.q_r()), 4),
                   TextTable::fmt(curve.write_availability(best.q_r()), 4)});
  }
  table.print(std::cout);

  std::cout << "\nHigher read rates pull the optimum toward q_r = 1 "
               "(read-one/write-all);\nwrite-heavy mixes favor majority "
               "quorums — exactly the paper's §5.3 story.\n";
  return 0;
}
