// Tests for the closed-form component-size densities of §4.2 — each one is
// cross-checked against exact brute-force enumeration over all site/link
// up-down states of a small network, so the formulas (including Gilbert's
// recursion) are verified against first principles, not just themselves.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/component_dist.hpp"
#include "net/builders.hpp"
#include "net/topology.hpp"

namespace quora::core {
namespace {

/// Exact distribution of the vote count of site 0's component, by summing
/// over every up/down state of all sites and links. Exponential in
/// n + links — for test-sized networks only.
VotePdf enumerate_site0_pdf(const net::Topology& topo, double p, double r) {
  const std::uint32_t n = topo.site_count();
  const std::uint32_t m = topo.link_count();
  VotePdf pdf(topo.total_votes() + 1, 0.0);

  for (std::uint32_t sites = 0; sites < (1u << n); ++sites) {
    double p_sites = 1.0;
    for (std::uint32_t i = 0; i < n; ++i) {
      p_sites *= (sites >> i & 1) ? p : (1.0 - p);
    }
    for (std::uint32_t links = 0; links < (1u << m); ++links) {
      double prob = p_sites;
      for (std::uint32_t l = 0; l < m; ++l) {
        prob *= (links >> l & 1) ? r : (1.0 - r);
      }
      // BFS from site 0 over up sites/links.
      net::Vote votes = 0;
      if (sites & 1) {
        std::vector<std::uint8_t> seen(n, 0);
        std::vector<std::uint32_t> stack{0};
        seen[0] = 1;
        while (!stack.empty()) {
          const std::uint32_t s = stack.back();
          stack.pop_back();
          votes += topo.votes(s);
          for (const auto& e : topo.neighbors(s)) {
            if (!(links >> e.link & 1)) continue;
            if (!(sites >> e.neighbor & 1)) continue;
            if (seen[e.neighbor]) continue;
            seen[e.neighbor] = 1;
            stack.push_back(e.neighbor);
          }
        }
      }
      pdf[votes] += prob;
    }
  }
  return pdf;
}

void expect_pdfs_equal(const VotePdf& a, const VotePdf& b, double tol,
                       const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t v = 0; v < a.size(); ++v) {
    EXPECT_NEAR(a[v], b[v], tol) << what << " at v=" << v;
  }
}

TEST(PdfHelpers, TotalValidMeanMix) {
  const VotePdf good{0.25, 0.25, 0.5};
  EXPECT_NEAR(pdf_total(good), 1.0, 1e-15);
  EXPECT_TRUE(is_valid_pdf(good));
  EXPECT_DOUBLE_EQ(pdf_mean(good), 1.25);

  EXPECT_FALSE(is_valid_pdf(VotePdf{0.5, 0.4}));       // sums to 0.9
  EXPECT_FALSE(is_valid_pdf(VotePdf{1.5, -0.5}));      // negative entry
  EXPECT_FALSE(is_valid_pdf(VotePdf{}));               // empty

  const VotePdf other{1.0, 0.0, 0.0};
  const VotePdf mixed = mix_pdfs({good, other}, {0.5, 0.5});
  EXPECT_NEAR(mixed[0], 0.625, 1e-15);
  EXPECT_NEAR(mixed[2], 0.25, 1e-15);
  EXPECT_TRUE(is_valid_pdf(mixed));

  EXPECT_THROW(mix_pdfs({}, {}), std::invalid_argument);
  EXPECT_THROW(mix_pdfs({good}, {0.9}), std::invalid_argument);
  EXPECT_THROW(mix_pdfs({good, VotePdf{1.0}}, {0.5, 0.5}), std::invalid_argument);
}

TEST(GilbertRel, SmallClosedForms) {
  // Rel(2,r) = r. Rel(3,r) = r^3 + 3 r^2 (1-r) (any 2 of 3 links, or all).
  for (const double r : {0.1, 0.5, 0.9, 0.96}) {
    EXPECT_NEAR(gilbert_rel(2, r), r, 1e-12);
    EXPECT_NEAR(gilbert_rel(3, r), r * r * r + 3 * r * r * (1 - r), 1e-12);
  }
}

TEST(GilbertRel, MatchesBruteForceEnumeration) {
  // All-terminal reliability of K_m by enumerating every link subset.
  for (const std::uint32_t m : {4u, 5u}) {
    const net::Topology complete = net::make_fully_connected(m);
    for (const double r : {0.3, 0.7, 0.96}) {
      // Sites perfect (p = 1): P(component of 0 has all m votes) = Rel.
      const VotePdf exact = enumerate_site0_pdf(complete, 1.0, r);
      EXPECT_NEAR(gilbert_rel(m, r), exact[m], 1e-10) << "m=" << m << " r=" << r;
    }
  }
}

TEST(GilbertRel, EdgeCasesAndMonotonicity) {
  EXPECT_DOUBLE_EQ(gilbert_rel(1, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(gilbert_rel(7, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(gilbert_rel(7, 0.0), 0.0);
  EXPECT_THROW(gilbert_rel(0, 0.5), std::invalid_argument);
  EXPECT_THROW(gilbert_rel(5, 1.5), std::invalid_argument);
  double prev = 0.0;
  for (const double r : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const double rel = gilbert_rel(6, r);
    EXPECT_GT(rel, prev);
    prev = rel;
  }
}

TEST(GilbertRel, LargeArgumentStaysInRange) {
  for (const std::uint32_t m : {50u, 101u, 200u}) {
    const double rel = gilbert_rel(m, 0.96);
    EXPECT_GE(rel, 0.0);
    EXPECT_LE(rel, 1.0);
    EXPECT_GT(rel, 0.999);  // dense graphs with reliable links ~ connected
  }
}

TEST(RingPdf, IsAProbabilityDensity) {
  for (const std::uint32_t n : {3u, 10u, 101u}) {
    for (const double p : {0.5, 0.9, 0.96}) {
      for (const double r : {0.5, 0.9, 0.96}) {
        const VotePdf pdf = ring_site_pdf(n, p, r);
        EXPECT_TRUE(is_valid_pdf(pdf, 1e-9))
            << "n=" << n << " p=" << p << " r=" << r
            << " total=" << pdf_total(pdf);
      }
    }
  }
}

TEST(RingPdf, MatchesBruteForceEnumeration) {
  for (const std::uint32_t n : {4u, 5u, 6u}) {
    const net::Topology ring = net::make_ring(n);
    for (const double p : {0.7, 0.96}) {
      for (const double r : {0.8, 0.96}) {
        const VotePdf exact = enumerate_site0_pdf(ring, p, r);
        const VotePdf formula = ring_site_pdf(n, p, r);
        expect_pdfs_equal(formula, exact, 1e-10,
                          "ring n=" + std::to_string(n));
      }
    }
  }
}

TEST(RingPdf, DegenerateParameters) {
  // Perfect everything: the whole ring, always.
  const VotePdf perfect = ring_site_pdf(5, 1.0, 1.0);
  EXPECT_NEAR(perfect[5], 1.0, 1e-12);
  // Dead links: alone iff up.
  const VotePdf isolated = ring_site_pdf(5, 0.9, 0.0);
  EXPECT_NEAR(isolated[1], 0.9, 1e-12);
  EXPECT_NEAR(isolated[0], 0.1, 1e-12);
  EXPECT_THROW(ring_site_pdf(2, 0.9, 0.9), std::invalid_argument);
}

TEST(FullyConnectedPdf, IsAProbabilityDensity) {
  for (const std::uint32_t n : {2u, 5u, 25u, 101u}) {
    const VotePdf pdf = fully_connected_site_pdf(n, 0.96, 0.96);
    EXPECT_TRUE(is_valid_pdf(pdf, 1e-9)) << "n=" << n << " total=" << pdf_total(pdf);
  }
}

TEST(FullyConnectedPdf, MatchesBruteForceEnumeration) {
  for (const std::uint32_t n : {3u, 4u, 5u}) {
    const net::Topology complete = net::make_fully_connected(n);
    for (const double p : {0.7, 0.96}) {
      for (const double r : {0.6, 0.96}) {
        const VotePdf exact = enumerate_site0_pdf(complete, p, r);
        const VotePdf formula = fully_connected_site_pdf(n, p, r);
        expect_pdfs_equal(formula, exact, 1e-10,
                          "complete n=" + std::to_string(n));
      }
    }
  }
}

TEST(FullyConnectedPdf, MassConcentratesAtFullSize) {
  // Reliable dense network: either you're down or you see almost everyone.
  const VotePdf pdf = fully_connected_site_pdf(101, 0.96, 0.96);
  EXPECT_NEAR(pdf[0], 0.04, 1e-9);
  double top = 0.0;
  for (std::uint32_t v = 90; v <= 101; ++v) top += pdf[v];
  EXPECT_GT(top, 0.95);
}

TEST(BusPdf, BothArchitecturesAreDensities) {
  for (const std::uint32_t n : {2u, 10u, 50u}) {
    for (const auto arch :
         {BusArchitecture::kSitesDieWithBus, BusArchitecture::kSitesSurviveBus}) {
      const VotePdf pdf = bus_site_pdf(n, 0.9, 0.8, arch);
      EXPECT_TRUE(is_valid_pdf(pdf, 1e-9))
          << "n=" << n << " total=" << pdf_total(pdf);
    }
  }
}

TEST(BusPdf, MatchesDirectEnumeration) {
  // Enumerate the bus model from its definition: the bus is up w.p. r;
  // sites are up independently w.p. p.
  constexpr std::uint32_t n = 6;
  constexpr double p = 0.85;
  constexpr double r = 0.75;

  VotePdf die(n + 1, 0.0);
  VotePdf survive(n + 1, 0.0);
  for (int bus = 0; bus < 2; ++bus) {
    const double p_bus = bus ? r : 1.0 - r;
    for (std::uint32_t sites = 0; sites < (1u << n); ++sites) {
      double prob = p_bus;
      std::uint32_t up = 0;
      for (std::uint32_t i = 0; i < n; ++i) {
        const bool s_up = (sites >> i & 1) != 0;
        prob *= s_up ? p : 1.0 - p;
        up += s_up;
      }
      const bool site0_up = (sites & 1) != 0;
      // kSitesDieWithBus: bus down => everyone effectively down.
      die[(bus && site0_up) ? up : 0] += prob;
      // kSitesSurviveBus: bus down => singleton if up.
      survive[site0_up ? (bus ? up : 1) : 0] += prob;
    }
  }

  expect_pdfs_equal(bus_site_pdf(n, p, r, BusArchitecture::kSitesDieWithBus), die,
                    1e-12, "bus die");
  expect_pdfs_equal(bus_site_pdf(n, p, r, BusArchitecture::kSitesSurviveBus),
                    survive, 1e-12, "bus survive");
}

TEST(BusPdf, PaperTypoIsCorrected) {
  // The paper prints f(1) = p for the survive architecture, which cannot
  // be a density (f(0) = 1-p already, so everything else would get zero).
  // Our exact f(1) = p[(1-r) + r(1-p)^(n-1)] is strictly less than p.
  const VotePdf pdf = bus_site_pdf(10, 0.9, 0.8, BusArchitecture::kSitesSurviveBus);
  EXPECT_LT(pdf[1], 0.9);
  EXPECT_NEAR(pdf[1], 0.9 * (0.2 + 0.8 * std::pow(0.1, 9)), 1e-12);
  EXPECT_NEAR(pdf[0], 0.1, 1e-12);
}

TEST(AllClosedForms, ParameterGuards) {
  EXPECT_THROW(ring_site_pdf(5, -0.1, 0.5), std::invalid_argument);
  EXPECT_THROW(ring_site_pdf(5, 0.5, 1.1), std::invalid_argument);
  EXPECT_THROW(fully_connected_site_pdf(1, 0.5, 0.5), std::invalid_argument);
  EXPECT_THROW(bus_site_pdf(1, 0.5, 0.5, BusArchitecture::kSitesDieWithBus),
               std::invalid_argument);
}

} // namespace
} // namespace quora::core
