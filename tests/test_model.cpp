// Unit coverage of src/model: the `.model` scope parser/auditor and the
// bounded explorer on scopes small enough to exhaust in milliseconds.
// The end-to-end seeded-mutation checks live in test_model_mutations.cpp
// (sanitizer-slow suite) and the ctest harness targets.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "io/config_audit.hpp"
#include "io/topology_io.hpp"
#include "model/explorer.hpp"
#include "model/scope.hpp"

namespace {

using quora::io::AuditCode;
using quora::io::AuditReport;
using quora::io::AuditSeverity;
using quora::model::Explorer;
using quora::model::Options;
using quora::model::Scope;
using quora::model::Violation;

Scope parse(const std::string& text) {
  std::istringstream in(text);
  return quora::model::load_model(in);
}

AuditReport audit(const std::string& text) {
  std::istringstream in(text);
  return quora::model::audit_model(in);
}

std::size_t errors_with(const AuditReport& report, AuditCode code) {
  std::size_t n = 0;
  for (const auto& f : report.findings) {
    if (f.code == code && f.severity == AuditSeverity::kError) ++n;
  }
  return n;
}

constexpr const char* kTinyScope =
    "name unit-tiny\n"
    "quorum 1 2\n"
    "sites 2\n"
    "link 0 1\n"
    "at 1 access 0 write\n"
    "depth 24\n"
    "states 100000\n";

TEST(ModelScope, ParsesDirectivesAndSplitsActions) {
  const Scope scope = parse(
      "name split\n"
      "quorum 2 2\n"
      "sites 3\n"
      "ring\n"
      "at 1 access 0 write\n"
      "at 2 access 2 read\n"
      "at 3 link 0 down\n"
      "at 4 link 0 up\n"
      "depth 32\n"
      "states 5000\n");
  EXPECT_EQ(scope.name(), "split");
  EXPECT_EQ(scope.max_depth, 32u);
  EXPECT_EQ(scope.max_states, 5000u);
  ASSERT_EQ(scope.accesses.size(), 2u);
  EXPECT_FALSE(scope.accesses[0].is_read);
  EXPECT_TRUE(scope.accesses[1].is_read);
  ASSERT_EQ(scope.faults.size(), 2u);  // distinct labels: two atomic steps
  EXPECT_EQ(scope.faults[0].size(), 1u);
  EXPECT_EQ(scope.faults[1].size(), 1u);
}

TEST(ModelScope, CrashFormsOneAtomicFaultGroup) {
  // `crash S for 0` expands to a down/up pair sharing one label — the
  // explorer must fire it as a single instantaneous transition.
  const Scope scope = parse(
      "quorum 2 2\nsites 3\nring\n"
      "at 1 access 0 write\n"
      "at 2 crash 1 for 0\n");
  ASSERT_EQ(scope.faults.size(), 1u);
  ASSERT_EQ(scope.faults[0].size(), 2u);
  EXPECT_EQ(scope.faults[0][0].kind, quora::fault::Action::Kind::kSiteDown);
  EXPECT_EQ(scope.faults[0][1].kind, quora::fault::Action::Kind::kSiteUp);
}

TEST(ModelScope, DistinctLabelsStaySeparateSteps) {
  const Scope scope = parse(
      "quorum 2 2\nsites 3\nring\n"
      "at 1 access 0 write\n"
      "at 2 site 1 down\n"
      "at 3 site 1 up\n");
  ASSERT_EQ(scope.faults.size(), 2u);
}

TEST(ModelScope, DepthDirectiveValidates) {
  EXPECT_THROW(parse("depth 0\n"), quora::io::ParseError);
  EXPECT_THROW(parse("depth\n"), quora::io::ParseError);
  EXPECT_THROW(parse("states 10 trailing\n"), quora::io::ParseError);
}

TEST(ModelScope, ParseErrorKeepsOriginalLineNumbers) {
  // depth/states lines are stripped before the chaos parser runs; blank
  // substitution must keep downstream line numbers aligned.
  try {
    parse("depth 10\nstates 20\nbogus-directive 1\n");
    FAIL() << "expected ParseError";
  } catch (const quora::io::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(ModelAudit, AcceptsAWellFormedScope) {
  EXPECT_TRUE(audit(kTinyScope).ok());
}

TEST(ModelAudit, FlagsScopeBeyondTheExplorableBounds) {
  const AuditReport report = audit(
      "quorum 4 4\nsites 6\nring\n"
      "at 1 link 0 down\n"
      "depth 100000\nstates 200000000\n");
  // 6 sites, no access, depth and states over their caps: four errors.
  EXPECT_EQ(errors_with(report, AuditCode::kModelScopeConfig), 4u);
}

TEST(ModelAudit, FlagsAlphabetTheModelCannotExpress) {
  const AuditReport report = audit(
      "quorum 2 2\nsites 3\nring\n"
      "at 1 access 0 write\n"
      "at 2 crash-on-commit any for 10\n"
      "at 3 reliability 0.5\n"
      "window 1 5 drop 0.5\n");
  EXPECT_EQ(errors_with(report, AuditCode::kModelScopeConfig), 3u);
}

TEST(ModelAudit, WarnsOnIgnoredTimedDirectives) {
  const AuditReport report = audit(
      "quorum 1 2\nsites 2\nlink 0 1\n"
      "seed 7\nhorizon 50\n"
      "at 1 access 0 write\n");
  EXPECT_TRUE(report.ok());  // warnings only
  std::size_t warnings = 0;
  for (const auto& f : report.findings) {
    if (f.code == AuditCode::kModelScopeConfig &&
        f.severity == AuditSeverity::kWarning) {
      ++warnings;
    }
  }
  EXPECT_EQ(warnings, 2u);
}

TEST(ModelExplorer, ExhaustsATinyScopeSafely) {
  const Scope scope = parse(kTinyScope);
  Explorer explorer(scope);
  EXPECT_FALSE(explorer.run().has_value());
  const quora::model::Stats& stats = explorer.stats();
  EXPECT_GT(stats.unique_states, 1u);
  EXPECT_FALSE(stats.state_capped);
  EXPECT_FALSE(stats.depth_capped);
  EXPECT_EQ(stats.explored, stats.transitions + 1);  // a DFS tree
}

TEST(ModelExplorer, DporAgreesWithFullExploration) {
  const Scope scope = parse(
      "quorum 2 2\nsites 3\nlink 0 1\nlink 1 2\n"
      "at 1 access 0 write\n"
      "at 2 access 2 read\n"
      "depth 32\nstates 100000\n");
  Explorer with_dpor(scope, Options{/*dpor=*/true});
  Explorer without(scope, Options{/*dpor=*/false});
  EXPECT_FALSE(with_dpor.run().has_value());
  EXPECT_FALSE(without.run().has_value());
  // Both complete the scope, agree on the reachable unique states, and
  // DPOR does strictly less work.
  EXPECT_EQ(with_dpor.stats().unique_states, without.stats().unique_states);
  EXPECT_GT(with_dpor.stats().sleep_pruned, 0u);
  EXPECT_EQ(without.stats().sleep_pruned, 0u);
  EXPECT_LE(with_dpor.stats().transitions, without.stats().transitions);
}

TEST(ModelExplorer, StateBudgetCapsAreReported) {
  Scope scope = parse(
      "quorum 2 2\nsites 3\nring\n"
      "at 1 access 0 write\n"
      "at 2 access 2 write\n");
  scope.max_states = 50;
  Explorer explorer(scope);
  EXPECT_FALSE(explorer.run().has_value());
  EXPECT_TRUE(explorer.stats().state_capped);
}

TEST(ModelExplorer, ReplayOfAnEmptyTraceIsSafe) {
  const Scope scope = parse(kTinyScope);
  const Explorer explorer(scope);
  EXPECT_FALSE(explorer.replay({}).has_value());
}

} // namespace
