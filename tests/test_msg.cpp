// Tests for the message-level protocol implementation: flooding,
// two-phase writes, timeouts, failure races, and the real-time
// consistency guarantee against the instantaneous oracle.

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "msg/cluster.hpp"
#include "net/builders.hpp"

namespace quora::msg {
namespace {

Cluster::Params reliable_params(net::Vote total, net::Vote q_r) {
  Cluster::Params p;
  p.spec = quorum::from_read_quorum(total, q_r);
  p.mean_hop_latency = 0.001;
  p.phase_timeout = 2.0;
  p.alpha = 0.5;
  p.config.reliability = 0.999999;  // effectively failure-free
  p.config.rho = 1e-9;
  return p;
}

TEST(Cluster, ValidatesParams) {
  const net::Topology topo = net::make_ring(5);
  Cluster::Params p = reliable_params(5, 2);
  p.spec = quorum::QuorumSpec{2, 3};  // 2+3 = T: invalid
  EXPECT_THROW(Cluster(topo, p, 1), std::invalid_argument);
  p = reliable_params(5, 2);
  p.mean_hop_latency = 0.0;
  EXPECT_THROW(Cluster(topo, p, 1), std::invalid_argument);
  p = reliable_params(5, 2);
  p.alpha = 2.0;
  EXPECT_THROW(Cluster(topo, p, 1), std::invalid_argument);
  p = reliable_params(5, 2);
  p.lease_timeout = -1.0;
  EXPECT_THROW(Cluster(topo, p, 1), std::invalid_argument);
  p = reliable_params(5, 2);
  p.phase_timeout = -0.5;
  EXPECT_THROW(Cluster(topo, p, 1), std::invalid_argument);
  p = reliable_params(5, 2);
  p.max_retries = Cluster::Params::kMaxRetryBudget + 1;
  EXPECT_THROW(Cluster(topo, p, 1), std::invalid_argument);
  p = reliable_params(5, 2);
  p.max_retries = Cluster::Params::kMaxRetryBudget;  // the boundary is legal
  EXPECT_NO_THROW(Cluster(topo, p, 1));
}

TEST(Cluster, FailureFreeNetworkGrantsEverything) {
  const net::Topology topo = net::make_ring_with_chords(9, 2);
  Cluster cluster(topo, reliable_params(9, 4), 7);
  cluster.run_decided_accesses(500);
  EXPECT_EQ(cluster.outcomes().size(), 500u);
  // Concurrent writes can still collide on vote leases (the real
  // mutual-exclusion cost the oracle model hides), but with abort-based
  // lease release the loss is tiny.
  EXPECT_GT(cluster.availability(), 0.98);
  EXPECT_DOUBLE_EQ(cluster.oracle_availability(), 1.0);
  EXPECT_GT(cluster.messages_sent(), 1000u);
}

TEST(Cluster, WritesPropagateToReads) {
  const net::Topology topo = net::make_ring(7);
  Cluster cluster(topo, reliable_params(7, 3), 9);
  cluster.run_decided_accesses(400);

  // Some writes committed, and every granted read after the first commit
  // returns a nonzero version/value.
  ASSERT_FALSE(cluster.commits().empty());
  const double first_commit = cluster.commits().front().decide_time;
  std::uint64_t checked = 0;
  for (const AccessOutcome& o : cluster.outcomes()) {
    if (o.is_read && o.granted && o.submit_time > first_commit) {
      EXPECT_GT(o.version, 0u);
      ++checked;
    }
  }
  EXPECT_GT(checked, 10u);
}

TEST(Cluster, CommitVersionsAreStrictlyIncreasing) {
  const net::Topology topo = net::make_ring_with_chords(9, 2);
  Cluster cluster(topo, reliable_params(9, 4), 11);
  cluster.run_decided_accesses(600);
  const auto& commits = cluster.commits();
  ASSERT_GT(commits.size(), 10u);
  for (std::size_t i = 1; i < commits.size(); ++i) {
    EXPECT_GT(commits[i].version, commits[i - 1].version);
  }
}

TEST(Cluster, DeterministicPerSeed) {
  const net::Topology topo = net::make_ring(7);
  const auto run = [&](std::uint64_t seed) {
    Cluster cluster(topo, reliable_params(7, 3), seed);
    cluster.run_decided_accesses(300);
    return std::tuple{cluster.availability(), cluster.messages_sent(),
                      cluster.now()};
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

TEST(Cluster, RealTimeConsistencyUnderFailures) {
  // The headline guarantee: a granted read returns a version at least as
  // new as every write that was *decided committed* before the read was
  // submitted — under the full failure model with in-flight message loss.
  const net::Topology topo = net::make_ring_with_chords(13, 3);
  Cluster::Params p;
  p.spec = quorum::from_read_quorum(13, 5);
  p.mean_hop_latency = 0.01;
  p.phase_timeout = 1.0;
  p.alpha = 0.5;
  p.config.reliability = 0.92;  // aggressive failures
  Cluster cluster(topo, p, 13);
  cluster.run_decided_accesses(4'000);

  const auto& commits = cluster.commits();
  std::uint64_t granted_reads = 0;
  for (const AccessOutcome& o : cluster.outcomes()) {
    if (!o.is_read || !o.granted) continue;
    ++granted_reads;
    std::uint64_t floor_version = 0;
    for (const auto& c : commits) {
      if (c.decide_time <= o.submit_time) {
        floor_version = std::max(floor_version, c.version);
      }
    }
    EXPECT_GE(o.version, floor_version)
        << "read at t=" << o.submit_time << " missed a committed write";
  }
  EXPECT_GT(granted_reads, 400u);
  EXPECT_GT(commits.size(), 100u);
}

TEST(Cluster, AvailabilityConvergesToOracleAtLowLatency) {
  const net::Topology topo = net::make_ring_with_chords(13, 3);
  Cluster::Params p;
  p.spec = quorum::from_read_quorum(13, 5);
  p.alpha = 0.5;
  p.config.reliability = 0.94;
  p.phase_timeout = 1.0;

  p.mean_hop_latency = 0.0005;  // vanishing latency
  Cluster fast(topo, p, 21);
  fast.run_decided_accesses(6'000);
  EXPECT_NEAR(fast.availability(), fast.oracle_availability(), 0.04);

  p.mean_hop_latency = 0.25;  // slow network: timeouts and races bite
  Cluster slow(topo, p, 21);
  slow.run_decided_accesses(6'000);
  EXPECT_LT(slow.availability(), slow.oracle_availability() - 0.02);
}

TEST(Cluster, PartitionDeniesMinorityCoordinators) {
  // With failures disabled but the topology pre-partitioned by parameter
  // choice we can't cut links directly (the cluster owns its network), so
  // instead: a harsh-failure run must contain denied accesses whose
  // oracle also denied — and *no* case where the message protocol grants
  // while the oracle's component lacked the votes at submit time... the
  // message protocol may only be MORE conservative than the oracle
  // (votes can be lost to races, never conjured).
  const net::Topology topo = net::make_ring(11);
  Cluster::Params p;
  p.spec = quorum::from_read_quorum(11, 4);
  p.mean_hop_latency = 0.01;
  p.phase_timeout = 1.0;
  p.alpha = 0.5;
  p.config.reliability = 0.90;
  Cluster cluster(topo, p, 33);
  cluster.run_decided_accesses(4'000);

  std::uint64_t conservative = 0;
  for (const AccessOutcome& o : cluster.outcomes()) {
    if (o.granted) {
      // Granted by messages => a quorum actually replied; the oracle at
      // submit time must have seen those votes reachable too, except for
      // recoveries mid-flight. Allow the rare recovery race but count it.
      if (!o.oracle_granted) ++conservative;
    }
  }
  // Mid-coordination recoveries can add votes the submit-time oracle
  // lacked, but they must be rare.
  EXPECT_LT(static_cast<double>(conservative),
            0.01 * static_cast<double>(cluster.outcomes().size()));
}

TEST(Cluster, SlowNetworkTimesOutInsteadOfHanging) {
  const net::Topology topo = net::make_ring(9);
  Cluster::Params p;
  p.spec = quorum::from_read_quorum(9, 4);
  p.mean_hop_latency = 2.0;   // hops slower than the timeout
  p.phase_timeout = 0.5;
  p.alpha = 0.5;
  p.config.reliability = 0.999999;
  p.config.rho = 1e-9;
  Cluster cluster(topo, p, 17);
  cluster.run_decided_accesses(300);
  // Everything decides (no hangs), and most non-trivial quorums fail.
  EXPECT_EQ(cluster.outcomes().size(), 300u);
  EXPECT_LT(cluster.availability(), 0.2);
  EXPECT_DOUBLE_EQ(cluster.oracle_availability(), 1.0);
}

TEST(Cluster, WriteConflictsAreTheOnlyFailureFreeLoss) {
  // In a failure-free network every denial must be a write (lease
  // conflict or fast-deny) — reads have nothing to collide on.
  const net::Topology topo = net::make_ring_with_chords(9, 2);
  Cluster cluster(topo, reliable_params(9, 4), 23);
  cluster.run_decided_accesses(2'000);
  for (const AccessOutcome& o : cluster.outcomes()) {
    if (!o.granted) {
      EXPECT_FALSE(o.is_read) << "a read was denied without failures";
    }
  }
}

TEST(Cluster, MessageVolumeScalesWithTopology) {
  // Floods visit each link a bounded number of times per coordination;
  // denser topologies pay proportionally more messages.
  const net::Topology sparse = net::make_ring(15);
  const net::Topology dense = net::make_ring_with_chords(15, 30);
  Cluster a(sparse, reliable_params(15, 7), 29);
  Cluster b(dense, reliable_params(15, 7), 29);
  a.run_decided_accesses(200);
  b.run_decided_accesses(200);
  EXPECT_GT(b.messages_sent(), a.messages_sent());
  // Sanity bound: per access at most a small multiple of 2E messages per
  // round across <= 3 rounds plus relays.
  EXPECT_LT(a.messages_sent(), 200u * 2u * 15u * 12u);
}

TEST(Cluster, OutcomeClockIsMonotoneAndDecidesAfterSubmit) {
  const net::Topology topo = net::make_ring(9);
  Cluster::Params p;
  p.spec = quorum::from_read_quorum(9, 3);
  p.mean_hop_latency = 0.02;
  p.phase_timeout = 0.5;
  p.alpha = 0.5;
  p.config.reliability = 0.93;
  Cluster cluster(topo, p, 41);
  cluster.run_decided_accesses(1'500);
  for (const AccessOutcome& o : cluster.outcomes()) {
    EXPECT_GE(o.decide_time, o.submit_time);
  }
  // Commit log times are nondecreasing (appended at decision time).
  const auto& commits = cluster.commits();
  for (std::size_t i = 1; i < commits.size(); ++i) {
    EXPECT_GE(commits[i].decide_time, commits[i - 1].decide_time);
  }
}

} // namespace
} // namespace quora::msg
