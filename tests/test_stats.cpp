// Tests for the stats substrate: Welford accumulation, Student-t critical
// values, the paper's batch-means stopping rule, integer histograms.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/batch_means.hpp"
#include "stats/histogram.hpp"
#include "stats/running_stat.hpp"
#include "stats/student_t.hpp"

namespace quora::stats {
namespace {

TEST(RunningStat, EmptyIsZero) {
  const RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.sem(), 0.0);
}

TEST(RunningStat, KnownMoments) {
  RunningStat s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of the classic dataset: sum sq dev = 32, / (n-1) = 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_NEAR(s.sem(), std::sqrt(32.0 / 7.0 / 8.0), 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat s;
  s.add(3.5);
  EXPECT_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 3.5);
  EXPECT_EQ(s.max(), 3.5);
}

TEST(RunningStat, MergeMatchesSequential) {
  RunningStat all;
  RunningStat left;
  RunningStat right;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    all.add(x);
    (i < 20 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a;
  a.add(1.0);
  a.add(2.0);
  RunningStat b;
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(StudentT, ExactTableValues) {
  EXPECT_DOUBLE_EQ(t_critical(1, 0.95), 12.706);
  EXPECT_DOUBLE_EQ(t_critical(4, 0.95), 2.776);   // 5 batches
  EXPECT_DOUBLE_EQ(t_critical(17, 0.95), 2.110);  // 18 batches
  EXPECT_DOUBLE_EQ(t_critical(10, 0.90), 1.812);
  EXPECT_DOUBLE_EQ(t_critical(10, 0.99), 3.169);
  EXPECT_DOUBLE_EQ(t_critical(30, 0.95), 2.042);
}

TEST(StudentT, InterpolatedRegionIsMonotoneAndBracketed) {
  const double t35 = t_critical(35, 0.95);
  EXPECT_LT(t35, t_critical(30, 0.95));
  EXPECT_GT(t35, t_critical(40, 0.95));
  const double t80 = t_critical(80, 0.95);
  EXPECT_LT(t80, t_critical(60, 0.95));
  EXPECT_GT(t80, t_critical(120, 0.95));
}

TEST(StudentT, LargeDfApproachesNormal) {
  EXPECT_DOUBLE_EQ(t_critical(10000, 0.95), 1.960);
  EXPECT_DOUBLE_EQ(t_critical(10000, 0.99), 2.576);
}

TEST(StudentT, Errors) {
  EXPECT_THROW(t_critical(0, 0.95), std::invalid_argument);
  EXPECT_THROW(t_critical(5, 0.80), std::invalid_argument);
}

TEST(BatchMeans, NeedsMinimumBatches) {
  BatchMeansController c;  // paper policy: 5..18, 95%, 0.5%
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(c.needs_more());
    c.add_batch(0.5);  // zero variance — precision is already perfect
  }
  EXPECT_TRUE(c.needs_more());  // still under 5 batches
  c.add_batch(0.5);
  EXPECT_FALSE(c.needs_more());  // 5 batches and half-width 0
}

TEST(BatchMeans, StopsAtMaxEvenIfWide) {
  BatchMeansController::Policy policy;
  policy.min_batches = 2;
  policy.max_batches = 4;
  policy.target_half_width = 1e-9;
  BatchMeansController c(policy);
  double v = 0.0;
  for (int i = 0; i < 4; ++i) c.add_batch(v += 0.1);  // high variance
  EXPECT_FALSE(c.needs_more());
  EXPECT_EQ(c.interval().batches, 4u);
  EXPECT_GT(c.interval().half_width, 1e-9);
}

TEST(BatchMeans, IntervalMatchesHandComputation) {
  BatchMeansController c;
  const std::vector<double> means{0.50, 0.52, 0.48, 0.51, 0.49};
  for (const double m : means) c.add_batch(m);
  const ConfidenceInterval ci = c.interval();
  EXPECT_NEAR(ci.mean, 0.50, 1e-12);
  // s = sqrt(sum dev^2 / 4) = sqrt(0.001/4); hw = t(4) * s / sqrt(5).
  const double s = std::sqrt(0.001 / 4.0);
  EXPECT_NEAR(ci.half_width, 2.776 * s / std::sqrt(5.0), 1e-9);
  EXPECT_TRUE(ci.contains(0.50));
  EXPECT_FALSE(ci.contains(0.60));
  EXPECT_DOUBLE_EQ(ci.lo(), ci.mean - ci.half_width);
  EXPECT_DOUBLE_EQ(ci.hi(), ci.mean + ci.half_width);
}

TEST(BatchMeans, ContinuesWhileWide) {
  BatchMeansController c;  // target 0.005
  c.add_batch(0.40);
  c.add_batch(0.60);
  c.add_batch(0.50);
  c.add_batch(0.45);
  c.add_batch(0.55);
  EXPECT_TRUE(c.needs_more());  // spread way beyond 0.5%
}

TEST(IntHistogram, AddAndQuery) {
  IntHistogram h(10);
  h.add(0);
  h.add(5, 3);
  h.add(10);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(5), 3u);
  EXPECT_EQ(h.max_value(), 10u);
  EXPECT_THROW(h.add(11), std::out_of_range);
}

TEST(IntHistogram, PdfNormalizes) {
  IntHistogram h(4);
  h.add(1);
  h.add(1);
  h.add(3);
  h.add(4);
  const auto pdf = h.pdf();
  EXPECT_EQ(pdf.size(), 5u);
  EXPECT_DOUBLE_EQ(pdf[1], 0.5);
  EXPECT_DOUBLE_EQ(pdf[3], 0.25);
  double total = 0.0;
  for (const double p : pdf) total += p;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(IntHistogram, EmptyPdfIsZero) {
  const IntHistogram h(3);
  for (const double p : h.pdf()) EXPECT_EQ(p, 0.0);
  EXPECT_EQ(h.tail_mass(0), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(IntHistogram, TailMass) {
  IntHistogram h(5);
  for (std::uint32_t v = 0; v <= 5; ++v) h.add(v);  // uniform over 0..5
  EXPECT_DOUBLE_EQ(h.tail_mass(0), 1.0);
  EXPECT_DOUBLE_EQ(h.tail_mass(3), 0.5);
  EXPECT_DOUBLE_EQ(h.tail_mass(5), 1.0 / 6.0);
  EXPECT_DOUBLE_EQ(h.tail_mass(6), 0.0);  // beyond domain
}

TEST(IntHistogram, Mean) {
  IntHistogram h(10);
  h.add(2, 2);
  h.add(8, 2);
  EXPECT_DOUBLE_EQ(h.mean(), 5.0);
}

TEST(IntHistogram, MergeAndDomainMismatch) {
  IntHistogram a(3);
  IntHistogram b(3);
  a.add(1);
  b.add(2, 4);
  a.merge(b);
  EXPECT_EQ(a.total(), 5u);
  EXPECT_EQ(a.count(2), 4u);
  IntHistogram c(4);
  EXPECT_THROW(a.merge(c), std::invalid_argument);
}

} // namespace
} // namespace quora::stats
